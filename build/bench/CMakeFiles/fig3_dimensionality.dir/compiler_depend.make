# Empty compiler generated dependencies file for fig3_dimensionality.
# This may be replaced when dependencies are built.
