file(REMOVE_RECURSE
  "CMakeFiles/geacc_util.dir/util/flags.cc.o"
  "CMakeFiles/geacc_util.dir/util/flags.cc.o.d"
  "CMakeFiles/geacc_util.dir/util/logging.cc.o"
  "CMakeFiles/geacc_util.dir/util/logging.cc.o.d"
  "CMakeFiles/geacc_util.dir/util/memory.cc.o"
  "CMakeFiles/geacc_util.dir/util/memory.cc.o.d"
  "CMakeFiles/geacc_util.dir/util/rng.cc.o"
  "CMakeFiles/geacc_util.dir/util/rng.cc.o.d"
  "CMakeFiles/geacc_util.dir/util/string_util.cc.o"
  "CMakeFiles/geacc_util.dir/util/string_util.cc.o.d"
  "CMakeFiles/geacc_util.dir/util/table.cc.o"
  "CMakeFiles/geacc_util.dir/util/table.cc.o.d"
  "libgeacc_util.a"
  "libgeacc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geacc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
