// Conflict relation between events (paper Definition 3).
//
// Two events conflict if no user can attend both — overlapping timetables,
// or venues too far apart to travel between. The graph stores the symmetric
// relation with both an O(1) pair-membership test and per-event adjacency
// lists (solvers iterate a user's matched events and test conflicts, so both
// access patterns matter).

#ifndef GEACC_CORE_CONFLICT_GRAPH_H_
#define GEACC_CORE_CONFLICT_GRAPH_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/types.h"

namespace geacc {

class Rng;

class ConflictGraph {
 public:
  ConflictGraph() : num_events_(0) {}
  explicit ConflictGraph(int num_events);

  // Adds the unordered conflicting pair {a, b}. Self-conflicts and
  // duplicates are rejected (duplicates are a no-op).
  void AddConflict(EventId a, EventId b);

  // Grows the event id space; existing conflicts are preserved. Shrinking
  // is not supported (dynamic instances tombstone removed events).
  void Resize(int num_events);

  // Removes every conflict pair incident to `v` (used when a dynamic
  // instance retires an event). Returns the number of pairs removed.
  int64_t RemoveConflictsOf(EventId v);

  bool AreConflicting(EventId a, EventId b) const;

  // Events conflicting with `v`, sorted ascending.
  const std::vector<EventId>& ConflictsOf(EventId v) const;

  int num_events() const { return num_events_; }
  int64_t num_conflict_pairs() const {
    return static_cast<int64_t>(pairs_.size());
  }

  // |CF| / (|V|(|V|-1)/2) — the x-axis of the paper's conflict experiments.
  double Density() const;

  bool empty() const { return pairs_.empty(); }

  // Uniformly samples `round(density * |V|(|V|-1)/2)` distinct pairs.
  static ConflictGraph Random(int num_events, double density, Rng& rng);

  // Complete conflict graph (density 1): every event pair conflicts.
  static ConflictGraph Complete(int num_events);

  uint64_t ByteEstimate() const;

 private:
  static uint64_t Key(EventId a, EventId b) {
    if (a > b) std::swap(a, b);
    return PairKey(a, b);
  }

  int num_events_;
  std::vector<std::vector<EventId>> adjacency_;
  std::unordered_set<uint64_t> pairs_;
};

}  // namespace geacc

#endif  // GEACC_CORE_CONFLICT_GRAPH_H_
