// Randomized mutation-trace fuzzing of the dynamic engine: after every
// single Apply() the maintained arrangement must be feasible for the live
// instance and the incrementally tracked MaxSum must match a from-scratch
// recompute — across index backends, tight repair budgets, and aggressive
// drift fallbacks.

#include <gtest/gtest.h>

#include <vector>

#include "algo/solvers.h"
#include "dyn/dynamic_instance.h"
#include "dyn/incremental_arranger.h"
#include "gen/trace_gen.h"

namespace geacc {
namespace {

TraceGenConfig SmallChurnConfig(uint64_t seed) {
  TraceGenConfig config;
  config.initial_events = 8;
  config.initial_users = 40;
  config.dim = 4;
  config.num_mutations = 120;
  config.seed = seed;
  return config;
}

// Replays `trace` under `options`, asserting the invariants at every epoch.
void ReplayAndCheck(const MutationTrace& trace, const RepairOptions& options) {
  DynamicInstance dynamic(trace.initial);
  IncrementalArranger arranger(&dynamic, options);
  arranger.FullResolve();
  ASSERT_EQ(arranger.Validate(), "") << "after bootstrap";
  for (size_t i = 0; i < trace.mutations.size(); ++i) {
    arranger.Apply(trace.mutations[i]);
    ASSERT_EQ(arranger.Validate(), "")
        << "epoch " << i + 1 << ": " << trace.mutations[i].DebugString();
    ASSERT_NEAR(arranger.max_sum(), arranger.RecomputeMaxSum(), 1e-9)
        << "epoch " << i + 1;
  }
  EXPECT_EQ(arranger.stats().mutations,
            static_cast<int64_t>(trace.mutations.size()));
}

TEST(DynFuzz, DefaultOptionsStayFeasibleAndConsistent) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    const MutationTrace trace = GenerateTrace(SmallChurnConfig(seed));
    ReplayAndCheck(trace, RepairOptions{});
  }
}

TEST(DynFuzz, TinyRepairBudgetNeverBreaksFeasibility) {
  RepairOptions options;
  options.repair_budget = 3;
  options.drift_threshold = 0.0;
  for (uint64_t seed = 10; seed <= 12; ++seed) {
    const MutationTrace trace = GenerateTrace(SmallChurnConfig(seed));
    ReplayAndCheck(trace, options);
  }
}

TEST(DynFuzz, AggressiveDriftFallbackStaysConsistent) {
  RepairOptions options;
  options.drift_threshold = 0.001;
  const MutationTrace trace = GenerateTrace(SmallChurnConfig(20));
  ReplayAndCheck(trace, options);
}

TEST(DynFuzz, AlternateIndexBackendsAgreeWithLinear) {
  // Same trace, different k-NN backends: cursors enumerate in the same
  // (similarity desc, id asc) contract order, so the final arrangements
  // must be identical.
  const MutationTrace trace = GenerateTrace(SmallChurnConfig(30));
  std::vector<std::pair<EventId, UserId>> reference;
  for (const char* index : {"linear", "kdtree", "vafile", "idistance"}) {
    RepairOptions options;
    options.index = index;
    options.drift_threshold = 0.0;
    DynamicInstance dynamic(trace.initial);
    IncrementalArranger arranger(&dynamic, options);
    arranger.FullResolve();
    for (const Mutation& mutation : trace.mutations) {
      arranger.Apply(mutation);
      ASSERT_EQ(arranger.Validate(), "") << index;
    }
    if (reference.empty()) {
      reference = arranger.arrangement().SortedPairs();
    } else {
      EXPECT_EQ(arranger.arrangement().SortedPairs(), reference) << index;
    }
  }
}

TEST(DynFuzz, GeneratorIsDeterministic) {
  const TraceGenConfig config = SmallChurnConfig(7);
  const MutationTrace a = GenerateTrace(config);
  const MutationTrace b = GenerateTrace(config);
  ASSERT_EQ(a.mutations.size(), b.mutations.size());
  for (size_t i = 0; i < a.mutations.size(); ++i) {
    EXPECT_EQ(a.mutations[i].DebugString(), b.mutations[i].DebugString())
        << "mutation " << i;
  }
}

TEST(DynFuzz, GeneratedMutationsReplayCleanlyThroughTheInstance) {
  // Every generated mutation must be valid at its epoch even without the
  // arranger in the loop (ids alive, capacities >= 1).
  const MutationTrace trace = GenerateTrace(SmallChurnConfig(40));
  DynamicInstance dynamic(trace.initial);
  for (const Mutation& mutation : trace.mutations) {
    dynamic.Apply(mutation);
  }
  EXPECT_EQ(dynamic.epoch(),
            static_cast<int64_t>(trace.mutations.size()));
}

TEST(DynFuzz, FinalQualityTracksTheOracle) {
  // With the default drift fallback the maintained MaxSum should stay
  // close to a from-scratch greedy solve of the final instance.
  const MutationTrace trace = GenerateTrace(SmallChurnConfig(50));
  DynamicInstance dynamic(trace.initial);
  IncrementalArranger arranger(&dynamic);  // drift_threshold = 0.1
  arranger.FullResolve();
  for (const Mutation& mutation : trace.mutations) {
    arranger.Apply(mutation);
  }
  const Instance final_state = dynamic.Snapshot();
  const double oracle = CreateSolver("greedy")
                            ->Solve(final_state)
                            .arrangement.MaxSum(final_state);
  EXPECT_GE(arranger.max_sum(), 0.80 * oracle);
}

}  // namespace
}  // namespace geacc
