// Fig. 6: effectiveness of Prune-GEACC's pruning rule against exhaustive
// search (the same recursion with the Lemma 6 bound disabled).
//
//   6a: mean recursion depth at prune events, settings (|V|,|U|) = (5,10)
//       and (5,15) — compared with the maximum depths 50 and 75;
//   6b: running time, Prune vs Exhaustive, (5,10);
//   6c: number of complete searches;
//   6d: number of Search-GEACC invocations.
//
// Expected shape (paper): mean prune depth ≪ max depth; Prune is orders
// of magnitude cheaper than Exhaustive on every counter.
//
// Tractability: exhaustive search at the paper's default c_u ~ U[1,4] can
// require ~10^10+ recursion nodes. The default here uses c_u ~ U[1,2]
// (every qualitative claim is preserved; see EXPERIMENTS.md); pass
// --max_cu 4 --paper for the full setting (slow) — a safety valve caps
// exhaustive search at --max_invocations nodes and reports truncation.

#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "algo/solvers.h"
#include "gen/synthetic.h"
#include "util/string_util.h"
#include "util/table.h"

namespace {

struct Setting {
  int num_events;
  int num_users;
};

}  // namespace

int main(int argc, char** argv) {
  geacc::bench::CommonFlags common;
  int max_cu = 2;
  int64_t max_invocations = 200'000'000;
  geacc::FlagSet flags;
  common.Register(flags);
  flags.AddInt("max_cu", &max_cu,
               "user capacity upper bound (paper default is 4; 2 keeps "
               "exhaustive search tractable)");
  flags.AddInt("max_invocations", &max_invocations,
               "safety cap on exhaustive Search invocations (0 = unlimited)");
  flags.Parse(argc, argv);
  geacc::bench::ReportContext report("fig6_pruning", flags, common);
  if (common.paper) max_invocations = 0;

  // ---- Fig 6a: mean prune depth for (5,10) and (5,15). ----
  geacc::Table depth_table(geacc::StrFormat(
      "Fig 6a: mean recursion depth at prune events (c_v~U[1,10], "
      "c_u~U[1,%d]); max depths are 50 and 75",
      max_cu));
  depth_table.SetHeader({"rho", "|V|=5,|U|=10", "|V|=5,|U|=15"});

  // ---- Fig 6b-d: prune (clique bound vs lemma6) vs exhaustive on
  // (5,10). The "prune-lemma6" series isolates the conflict-aware
  // tightening (algo/bounds.h): same solver, bound="lemma6". ----
  geacc::Table time_table("Fig 6b: running time (s), |V|=5, |U|=10");
  geacc::Table complete_table("Fig 6c: # complete searches");
  geacc::Table invocation_table("Fig 6d: # Search-GEACC invocations");
  for (geacc::Table* table : {&time_table, &complete_table,
                              &invocation_table}) {
    table->SetHeader({"rho", "prune", "prune-lemma6", "exhaustive"});
  }

  // --threads feeds the solvers' internal fan-out (arrangements and
  // MaxSum are thread-invariant; search-effort counters can vary, see
  // prune_solver.h). The truncated exhaustive run stays serial by design.
  geacc::SolverOptions prune_options;
  prune_options.threads = common.threads;
  common.ApplySolverOptions(&prune_options);
  geacc::SolverOptions lemma6_options = prune_options;
  lemma6_options.bound = "lemma6";
  geacc::SolverOptions exhaustive_options;
  exhaustive_options.threads = common.threads;
  common.ApplySolverOptions(&exhaustive_options);
  exhaustive_options.max_search_invocations = max_invocations;
  const auto prune = geacc::CreateSolver("prune", prune_options);
  const auto lemma6 = geacc::CreateSolver("prune", lemma6_options);
  const auto exhaustive =
      geacc::CreateSolver("exhaustive", exhaustive_options);

  auto make_instance = [&](const Setting& setting, double density,
                           int rep) {
    geacc::SyntheticConfig synth;
    synth.num_events = setting.num_events;
    synth.num_users = setting.num_users;
    synth.event_capacity = geacc::DistributionSpec::Uniform(1.0, 10.0);
    synth.user_capacity =
        geacc::DistributionSpec::Uniform(1.0, static_cast<double>(max_cu));
    synth.conflict_density = density;
    synth.seed = static_cast<uint64_t>(common.seed) + rep * 7919;
    return geacc::GenerateSynthetic(synth);
  };

  bool any_truncated = false;
  for (const double density : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const std::string label = geacc::StrFormat("%.2f", density);

    // 6a over both settings (prune only).
    std::vector<std::string> depth_row = {label};
    for (const Setting setting : {Setting{5, 10}, Setting{5, 15}}) {
      double depth_sum = 0.0;
      for (int rep = 0; rep < common.reps; ++rep) {
        const geacc::Instance instance =
            make_instance(setting, density, rep);
        const geacc::RunRecord record =
            geacc::RunSolver(*prune, instance, common.selfcheck);
        depth_sum += record.stats.MeanPruneDepth();
      }
      depth_row.push_back(
          geacc::StrFormat("%.1f", depth_sum / common.reps));
    }
    depth_table.AddRow(depth_row);

    // 6b–d on (5,10): prune (clique) vs prune-lemma6 vs exhaustive.
    struct Accum {
      const char* report_name;
      const geacc::Solver* solver;
      double time = 0.0, cpu = 0.0, sum = 0.0;
      double complete = 0.0, invocations = 0.0;
      std::map<std::string, int64_t> counters;
    };
    Accum series[] = {{"prune", prune.get(), 0.0, 0.0, 0.0, 0.0, 0.0, {}},
                      {"prune-lemma6", lemma6.get(), 0.0, 0.0, 0.0, 0.0, 0.0,
                       {}},
                      {"exhaustive", exhaustive.get(), 0.0, 0.0, 0.0, 0.0,
                       0.0, {}}};
    for (int rep = 0; rep < common.reps; ++rep) {
      const geacc::Instance instance =
          make_instance({5, 10}, density, rep);
      for (Accum& a : series) {
        const geacc::RunRecord r =
            geacc::RunSolver(*a.solver, instance, common.selfcheck);
        a.time += r.seconds;
        a.cpu += r.cpu_seconds;
        a.sum += r.max_sum;
        a.complete += static_cast<double>(r.stats.complete_searches);
        a.invocations += static_cast<double>(r.stats.search_invocations);
        for (const auto& [name, value] : r.counters) {
          a.counters[name] += value;
        }
        any_truncated |= r.stats.search_truncated;
      }
    }
    const double n = common.reps;
    time_table.AddRow({label, geacc::StrFormat("%.5f", series[0].time / n),
                       geacc::StrFormat("%.5f", series[1].time / n),
                       geacc::StrFormat("%.5f", series[2].time / n)});
    complete_table.AddRow(
        {label, geacc::StrFormat("%.0f", series[0].complete / n),
         geacc::StrFormat("%.0f", series[1].complete / n),
         geacc::StrFormat("%.0f", series[2].complete / n)});
    invocation_table.AddRow(
        {label, geacc::StrFormat("%.0f", series[0].invocations / n),
         geacc::StrFormat("%.0f", series[1].invocations / n),
         geacc::StrFormat("%.0f", series[2].invocations / n)});

    for (const Accum& a : series) {
      geacc::obs::BenchPoint point;
      point.label = "rho=" + label;
      point.solver = a.report_name;
      point.wall_seconds = a.time / n;
      point.cpu_seconds = a.cpu / n;
      point.max_sum = a.sum / n;
      for (const auto& [counter, total] : a.counters) {
        point.counters[counter] = total / common.reps;
      }
      report.AddPoint(std::move(point));
    }
  }

  depth_table.Print(std::cout);
  time_table.Print(std::cout);
  complete_table.Print(std::cout);
  invocation_table.Print(std::cout);
  if (any_truncated) {
    std::cout << "NOTE: exhaustive search hit the --max_invocations safety "
                 "cap on at least one instance; its counters are lower "
                 "bounds there.\n";
  }
  if (common.csv) {
    depth_table.WriteCsv(std::cout);
    time_table.WriteCsv(std::cout);
    complete_table.WriteCsv(std::cout);
    invocation_table.WriteCsv(std::cout);
  }
  report.Write();
  return 0;
}
