file(REMOVE_RECURSE
  "CMakeFiles/fig4_real.dir/fig4_real.cc.o"
  "CMakeFiles/fig4_real.dir/fig4_real.cc.o.d"
  "fig4_real"
  "fig4_real.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_real.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
