#include "dyn/incremental_arranger.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <utility>

#include "algo/solvers.h"
#include "core/masked_similarity.h"
#include "index/idistance_paged.h"
#include "obs/stats.h"
#include "util/check.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace geacc {

IncrementalArranger::IncrementalArranger(DynamicInstance* instance,
                                         RepairOptions options)
    : instance_(instance), options_(std::move(options)) {
  GEACC_CHECK(instance_ != nullptr);
  SolverOptions solver_options;
  solver_options.index = options_.index;
  solver_options.threads = options_.threads;
  solver_options.storage_budget_bytes = options_.storage_budget_bytes;
  solver_options.storage_dir = options_.storage_dir;
  const std::string options_error = ValidateSolverOptions(solver_options);
  GEACC_CHECK(options_error.empty()) << options_error;
  fallback_ = CreateSolver(options_.fallback_solver, solver_options);
  GEACC_CHECK(fallback_ != nullptr)
      << "unknown fallback_solver '" << options_.fallback_solver << "'";
  observed_epoch_ = instance_->epoch();
  arrangement_ = Arrangement(instance_->event_slots(),
                             instance_->user_slots());
  event_users_.resize(instance_->event_slots());
  event_remaining_.resize(instance_->event_slots());
  user_remaining_.resize(instance_->user_slots());
  for (EventId v = 0; v < instance_->event_slots(); ++v) {
    event_remaining_[v] =
        instance_->event_active(v) ? instance_->event_capacity(v) : 0;
  }
  for (UserId u = 0; u < instance_->user_slots(); ++u) {
    user_remaining_[u] =
        instance_->user_active(u) ? instance_->user_capacity(u) : 0;
  }
  RefreshIndexes();
}

int64_t IncrementalArranger::Apply(const Mutation& mutation) {
  WallTimer timer;
  GEACC_CHECK_EQ(instance_->epoch(), observed_epoch_)
      << "instance mutated outside Apply(); the arranger is stale";
  const int64_t changes_before =
      stats_.assignments_added + stats_.assignments_removed;
  steps_left_ = options_.repair_budget > 0
                    ? options_.repair_budget
                    : std::numeric_limits<int64_t>::max();

  switch (mutation.kind) {
    case Mutation::Kind::kAddUser:
      ApplyAddUser(mutation);
      break;
    case Mutation::Kind::kAddEvent:
      ApplyAddEvent(mutation);
      break;
    case Mutation::Kind::kRemoveUser:
      ApplyRemoveUser(mutation);
      break;
    case Mutation::Kind::kRemoveEvent:
      ApplyRemoveEvent(mutation);
      break;
    case Mutation::Kind::kAddConflict:
      ApplyAddConflict(mutation);
      break;
    case Mutation::Kind::kSetEventCapacity:
      ApplySetEventCapacity(mutation);
      break;
    case Mutation::Kind::kSetUserCapacity:
      ApplySetUserCapacity(mutation);
      break;
    case Mutation::Kind::kSetEventSlot:
      ApplySetEventSlot(mutation);
      break;
    case Mutation::Kind::kSetUserAvailability:
      ApplySetUserAvailability(mutation);
      break;
  }

  observed_epoch_ = instance_->epoch();
  ++stats_.mutations;
  MaybeFullResolve();
  stats_.last_repair_seconds = timer.Seconds();
  stats_.total_repair_seconds += stats_.last_repair_seconds;
  const int64_t changes = stats_.assignments_added +
                          stats_.assignments_removed - changes_before;
  GEACC_STATS_ADD("dyn.mutations", 1);
  GEACC_STATS_ADD("dyn.assignment_changes", changes);
  return changes;
}

void IncrementalArranger::GrowToInstance() {
  arrangement_.Resize(instance_->event_slots(), instance_->user_slots());
  event_users_.resize(instance_->event_slots());
  event_remaining_.resize(instance_->event_slots(), 0);
  user_remaining_.resize(instance_->user_slots(), 0);
}

void IncrementalArranger::RefreshIndexes() {
  StorageOptions storage;
  storage.budget_bytes = options_.storage_budget_bytes;
  storage.dir = options_.storage_dir;
  if (event_index_ == nullptr ||
      event_index_->num_points() != instance_->event_slots()) {
    event_index_ = MakeIndex(options_.index, instance_->event_attributes(),
                             instance_->similarity(), storage);
    GEACC_CHECK(event_index_ != nullptr);
  }
  if (user_index_ == nullptr ||
      user_index_->num_points() != instance_->user_slots()) {
    user_index_ = MakeIndex(options_.index, instance_->user_attributes(),
                            instance_->similarity(), storage);
    GEACC_CHECK(user_index_ != nullptr);
  }
}

void IncrementalArranger::AddPair(EventId v, UserId u, double similarity) {
  // Always-on guards (not DCHECKs): this is the single choke point through
  // which every untrusted mutation source — WAL replay, the service write
  // path, trace files — lands pairs in the arrangement, and a duplicate
  // Add would silently double-count MaxSum in Release builds.
  GEACC_CHECK(v >= 0 && v < arrangement_.num_events())
      << "AddPair: event " << v << " out of range";
  GEACC_CHECK(u >= 0 && u < arrangement_.num_users())
      << "AddPair: user " << u << " out of range";
  GEACC_CHECK(!arrangement_.Contains(v, u))
      << "AddPair: pair {" << v << "," << u << "} already assigned";
  arrangement_.Add(v, u);
  event_users_[v].push_back(u);
  --event_remaining_[v];
  --user_remaining_[u];
  max_sum_ += similarity;
  ++stats_.assignments_added;
}

void IncrementalArranger::RemovePair(EventId v, UserId u) {
  arrangement_.Remove(v, u);
  auto& users = event_users_[v];
  users.erase(std::find(users.begin(), users.end(), u));
  ++event_remaining_[v];
  ++user_remaining_[u];
  max_sum_ -= instance_->Similarity(v, u);
  ++stats_.assignments_removed;
  GEACC_STATS_ADD("dyn.evictions", 1);
}

bool IncrementalArranger::ConflictsWithAssigned(EventId v, UserId u) const {
  const ConflictGraph& conflicts = instance_->conflicts();
  for (const EventId w : arrangement_.EventsOf(u)) {
    if (conflicts.AreConflicting(v, w)) return true;
  }
  return false;
}

void IncrementalArranger::FillUser(UserId u) {
  if (!options_.refill) return;
  if (user_remaining_[u] <= 0 || !instance_->user_active(u)) return;
  RefreshIndexes();
  const std::unique_ptr<NnCursor> cursor =
      event_index_->CreateCursor(instance_->user_attributes().Row(u));
  while (user_remaining_[u] > 0) {
    if (steps_left_ <= 0) {
      ++stats_.budget_exhausted;
      GEACC_STATS_ADD("dyn.budget_exhausted", 1);
      return;
    }
    --steps_left_;
    ++stats_.cursor_steps;
    GEACC_STATS_ADD("dyn.refill_steps", 1);
    const auto next = cursor->Next();
    if (!next || next->similarity <= 0.0) return;
    const EventId v = next->id;
    if (!instance_->event_active(v) || event_remaining_[v] <= 0) continue;
    if (!instance_->PairAllowed(v, u)) continue;
    if (arrangement_.Contains(v, u)) continue;
    if (ConflictsWithAssigned(v, u)) continue;
    AddPair(v, u, next->similarity);
  }
}

void IncrementalArranger::FillEvent(EventId v) {
  if (!options_.refill) return;
  if (event_remaining_[v] <= 0 || !instance_->event_active(v)) return;
  RefreshIndexes();
  const std::unique_ptr<NnCursor> cursor =
      user_index_->CreateCursor(instance_->event_attributes().Row(v));
  while (event_remaining_[v] > 0) {
    if (steps_left_ <= 0) {
      ++stats_.budget_exhausted;
      GEACC_STATS_ADD("dyn.budget_exhausted", 1);
      return;
    }
    --steps_left_;
    ++stats_.cursor_steps;
    GEACC_STATS_ADD("dyn.refill_steps", 1);
    const auto next = cursor->Next();
    if (!next || next->similarity <= 0.0) return;
    const UserId u = next->id;
    if (!instance_->user_active(u) || user_remaining_[u] <= 0) continue;
    if (!instance_->PairAllowed(v, u)) continue;
    if (arrangement_.Contains(v, u)) continue;
    if (ConflictsWithAssigned(v, u)) continue;
    AddPair(v, u, next->similarity);
  }
}

void IncrementalArranger::ApplyAddUser(const Mutation& mutation) {
  const UserId u = instance_->AddUser(mutation.attributes, mutation.capacity);
  GrowToInstance();
  user_remaining_[u] = mutation.capacity;
  FillUser(u);
}

void IncrementalArranger::ApplyAddEvent(const Mutation& mutation) {
  const EventId v =
      instance_->AddEvent(mutation.attributes, mutation.capacity);
  GrowToInstance();
  event_remaining_[v] = mutation.capacity;
  FillEvent(v);
}

void IncrementalArranger::ApplyRemoveUser(const Mutation& mutation) {
  const UserId u = mutation.id;
  const std::vector<EventId> held = arrangement_.EventsOf(u);
  for (const EventId v : held) RemovePair(v, u);
  instance_->RemoveUser(u);
  user_remaining_[u] = 0;
  // Freed seats may suit other users; the lost pair value itself is
  // unavoidable, so it does not count toward drift.
  for (const EventId v : held) FillEvent(v);
}

void IncrementalArranger::ApplyRemoveEvent(const Mutation& mutation) {
  const EventId v = mutation.id;
  const std::vector<UserId> held = event_users_[v];
  for (const UserId u : held) RemovePair(v, u);
  instance_->RemoveEvent(v);
  event_remaining_[v] = 0;
  for (const UserId u : held) FillUser(u);
}

void IncrementalArranger::ApplyAddConflict(const Mutation& mutation) {
  const EventId a = mutation.id;
  const EventId b = mutation.other;
  instance_->AddConflict(a, b);
  // Users holding both sides must drop one; keep the more similar event
  // (ties keep the smaller id) and try to win the loss back elsewhere.
  std::vector<UserId> both;
  for (const UserId u : event_users_[a]) {
    if (arrangement_.Contains(b, u)) both.push_back(u);
  }
  std::sort(both.begin(), both.end());
  for (const UserId u : both) {
    const double sim_a = instance_->Similarity(a, u);
    const double sim_b = instance_->Similarity(b, u);
    const EventId evict =
        (sim_a < sim_b || (sim_a == sim_b && a > b)) ? a : b;
    const double before = max_sum_;
    RemovePair(evict, u);
    FillUser(u);
    drift_ += std::max(0.0, before - max_sum_);
  }
}

void IncrementalArranger::ApplySetEventCapacity(const Mutation& mutation) {
  const EventId v = mutation.id;
  instance_->SetEventCapacity(v, mutation.capacity);
  const int load = arrangement_.EventLoad(v);
  if (mutation.capacity >= load) {
    event_remaining_[v] = mutation.capacity - load;
    FillEvent(v);
    return;
  }
  // Capacity cut below the current roster: evict the least similar users
  // (ties evict the larger id) and try to reseat them.
  std::vector<UserId> roster = event_users_[v];
  std::sort(roster.begin(), roster.end(), [&](UserId x, UserId y) {
    const double sx = instance_->Similarity(v, x);
    const double sy = instance_->Similarity(v, y);
    if (sx != sy) return sx < sy;
    return x > y;
  });
  const int to_evict = load - mutation.capacity;
  const double before = max_sum_;
  for (int i = 0; i < to_evict; ++i) RemovePair(v, roster[i]);
  event_remaining_[v] = 0;
  for (int i = 0; i < to_evict; ++i) FillUser(roster[i]);
  drift_ += std::max(0.0, before - max_sum_);
}

void IncrementalArranger::ApplySetUserCapacity(const Mutation& mutation) {
  const UserId u = mutation.id;
  instance_->SetUserCapacity(u, mutation.capacity);
  const int load = arrangement_.UserLoad(u);
  if (mutation.capacity >= load) {
    user_remaining_[u] = mutation.capacity - load;
    FillUser(u);
    return;
  }
  std::vector<EventId> held = arrangement_.EventsOf(u);
  std::sort(held.begin(), held.end(), [&](EventId x, EventId y) {
    const double sx = instance_->Similarity(x, u);
    const double sy = instance_->Similarity(y, u);
    if (sx != sy) return sx < sy;
    return x > y;
  });
  const int to_evict = load - mutation.capacity;
  const double before = max_sum_;
  for (int i = 0; i < to_evict; ++i) RemovePair(held[i], u);
  user_remaining_[u] = 0;
  for (int i = 0; i < to_evict; ++i) FillEvent(held[i]);
  drift_ += std::max(0.0, before - max_sum_);
}

void IncrementalArranger::ApplySetEventSlot(const Mutation& mutation) {
  const EventId v = mutation.id;
  instance_->SetEventSlot(v, mutation.other);
  // Two eviction causes, handled in id order for determinism: users now
  // unavailable in the event's slot, and users whose other events conflict
  // with the rewired edges (keep the more similar side, ties keep the
  // smaller id — the kAddConflict rule).
  std::vector<UserId> roster = event_users_[v];
  std::sort(roster.begin(), roster.end());
  const double before = max_sum_;
  std::vector<UserId> displaced;
  std::vector<EventId> freed;
  for (const UserId u : roster) {
    if (!instance_->PairAllowed(v, u)) {
      RemovePair(v, u);
      displaced.push_back(u);
      continue;
    }
    // The rewiring can put v at odds with several of u's other events;
    // resolve pairwise until u's set is conflict-free again or v itself
    // got evicted.
    const ConflictGraph& conflicts = instance_->conflicts();
    bool holds_v = true;
    bool any_evicted = false;
    while (holds_v) {
      EventId blocking = kInvalidEvent;
      for (const EventId w : arrangement_.EventsOf(u)) {
        if (w != v && conflicts.AreConflicting(v, w)) {
          blocking = w;
          break;
        }
      }
      if (blocking == kInvalidEvent) break;
      const double sim_v = instance_->Similarity(v, u);
      const double sim_w = instance_->Similarity(blocking, u);
      const EventId evict =
          (sim_v < sim_w || (sim_v == sim_w && v > blocking)) ? v : blocking;
      RemovePair(evict, u);
      any_evicted = true;
      if (evict == v) {
        holds_v = false;
      } else {
        freed.push_back(evict);
      }
    }
    if (any_evicted) displaced.push_back(u);
  }
  for (const UserId u : displaced) FillUser(u);
  FillEvent(v);
  for (const EventId w : freed) FillEvent(w);
  drift_ += std::max(0.0, before - max_sum_);
}

void IncrementalArranger::ApplySetUserAvailability(const Mutation& mutation) {
  const UserId u = mutation.id;
  instance_->SetUserAvailability(u, mutation.mask);
  std::vector<EventId> held = arrangement_.EventsOf(u);
  std::sort(held.begin(), held.end());
  const double before = max_sum_;
  std::vector<EventId> freed;
  for (const EventId v : held) {
    if (instance_->PairAllowed(v, u)) continue;
    RemovePair(v, u);
    freed.push_back(v);
  }
  FillUser(u);
  for (const EventId v : freed) FillEvent(v);
  drift_ += std::max(0.0, before - max_sum_);
}

void IncrementalArranger::MaybeFullResolve() {
  if (!options_.refill) return;
  if (options_.drift_threshold <= 0.0) return;
  if (drift_ <= options_.drift_threshold * std::max(1.0, max_sum_)) return;
  FullResolve();
}

void IncrementalArranger::FullResolve() {
  GEACC_PHASE_TIMER("dyn.full_resolve");
  GEACC_STATS_ADD("dyn.full_resolves", 1);
  DynamicInstance::SnapshotMap map;
  Instance snapshot = instance_->Snapshot(&map);
  if (instance_->has_slot_constraints()) {
    // Snapshot() is slot-agnostic; mask slot-forbidden pairs to sim 0 so
    // the slot-blind fallback solver cannot admit them
    // (core/masked_similarity.h).
    std::vector<uint8_t> allowed(
        static_cast<size_t>(snapshot.num_events()) * snapshot.num_users(), 1);
    for (int dense_v = 0; dense_v < snapshot.num_events(); ++dense_v) {
      const EventId v = map.dense_to_event[dense_v];
      for (int dense_u = 0; dense_u < snapshot.num_users(); ++dense_u) {
        if (!instance_->PairAllowed(v, map.dense_to_user[dense_u])) {
          allowed[static_cast<size_t>(dense_v) * snapshot.num_users() +
                  dense_u] = 0;
        }
      }
    }
    snapshot = MaskInstance(snapshot, allowed);
  }
  const SolveResult result = fallback_->Solve(snapshot);

  arrangement_ = Arrangement(instance_->event_slots(),
                             instance_->user_slots());
  event_users_.assign(instance_->event_slots(), {});
  max_sum_ = 0.0;
  for (EventId v = 0; v < instance_->event_slots(); ++v) {
    event_remaining_[v] =
        instance_->event_active(v) ? instance_->event_capacity(v) : 0;
  }
  for (UserId u = 0; u < instance_->user_slots(); ++u) {
    user_remaining_[u] =
        instance_->user_active(u) ? instance_->user_capacity(u) : 0;
  }
  for (const auto& [dense_v, dense_u] : result.arrangement.SortedPairs()) {
    const EventId v = map.dense_to_event[dense_v];
    const UserId u = map.dense_to_user[dense_u];
    AddPair(v, u, instance_->Similarity(v, u));
  }
  drift_ = 0.0;
  ++stats_.full_resolves;
}

double IncrementalArranger::RecomputeMaxSum() const {
  double sum = 0.0;
  for (UserId u = 0; u < instance_->user_slots(); ++u) {
    for (const EventId v : arrangement_.EventsOf(u)) {
      sum += instance_->Similarity(v, u);
    }
  }
  return sum;
}

IncrementalArranger::ArrangerState IncrementalArranger::ExportState() const {
  ArrangerState state;
  state.user_events.resize(instance_->user_slots());
  for (UserId u = 0; u < instance_->user_slots(); ++u) {
    state.user_events[u] = arrangement_.EventsOf(u);
  }
  state.event_users = event_users_;
  std::memcpy(&state.max_sum_bits, &max_sum_, sizeof(max_sum_));
  std::memcpy(&state.drift_bits, &drift_, sizeof(drift_));
  return state;
}

void IncrementalArranger::ResetToEmpty() {
  const int events = instance_->event_slots();
  const int users = instance_->user_slots();
  arrangement_ = Arrangement(events, users);
  event_users_.assign(events, {});
  max_sum_ = 0.0;
  drift_ = 0.0;
  for (EventId v = 0; v < events; ++v) {
    event_remaining_[v] =
        instance_->event_active(v) ? instance_->event_capacity(v) : 0;
  }
  for (UserId u = 0; u < users; ++u) {
    user_remaining_[u] =
        instance_->user_active(u) ? instance_->user_capacity(u) : 0;
  }
  observed_epoch_ = instance_->epoch();
}

std::string IncrementalArranger::InstallArrangement(
    const std::vector<std::pair<EventId, UserId>>& pairs,
    uint64_t max_sum_bits) {
  // Reuse the RestoreState machinery: rebuild both adjacency views in the
  // given admission order so a restart replays to the same internal state.
  ArrangerState state;
  state.user_events.resize(instance_->user_slots());
  state.event_users.resize(instance_->event_slots());
  for (const auto& [v, u] : pairs) {
    if (v < 0 || v >= instance_->event_slots() || u < 0 ||
        u >= instance_->user_slots()) {
      ResetToEmpty();
      return StrFormat("installed pair {%d,%d} out of range", v, u);
    }
    state.user_events[u].push_back(v);
    state.event_users[v].push_back(u);
  }
  state.max_sum_bits = max_sum_bits;
  state.drift_bits = 0;
  return RestoreState(state);
}

std::string IncrementalArranger::RestoreState(const ArrangerState& state) {
  const std::string error = RestoreStateImpl(state);
  // Any failure leaves a sane (empty) arranger behind; the caller falls
  // back to a full re-solve.
  if (!error.empty()) ResetToEmpty();
  return error;
}

std::string IncrementalArranger::RestoreStateImpl(const ArrangerState& state) {
  const int events = instance_->event_slots();
  const int users = instance_->user_slots();
  ResetToEmpty();

  if (static_cast<int>(state.user_events.size()) != users ||
      static_cast<int>(state.event_users.size()) != events) {
    return "arranger state sized for a different slot space";
  }
  for (UserId u = 0; u < users; ++u) {
    for (const EventId v : state.user_events[u]) {
      if (v < 0 || v >= events) {
        return StrFormat("restored pair {%d,%d} out of range", v, u);
      }
      if (arrangement_.Contains(v, u)) {
        return StrFormat("restored pair {%d,%d} duplicated", v, u);
      }
      arrangement_.Add(v, u);
      --event_remaining_[v];
      --user_remaining_[u];
    }
  }
  // The per-event lists must be a reordering of the pairs just added —
  // verify per event (sorted compare against the authoritative side).
  for (EventId v = 0; v < events; ++v) {
    if (static_cast<int>(state.event_users[v].size()) !=
        arrangement_.EventLoad(v)) {
      return StrFormat("event %d adjacency disagrees with pair set", v);
    }
    std::vector<UserId> sorted = state.event_users[v];
    std::sort(sorted.begin(), sorted.end());
    for (size_t i = 0; i < sorted.size(); ++i) {
      if (i > 0 && sorted[i] == sorted[i - 1]) {
        return StrFormat("event %d adjacency has duplicates", v);
      }
      if (!arrangement_.Contains(v, sorted[i])) {
        return StrFormat("event %d adjacency disagrees with pair set", v);
      }
    }
  }
  event_users_ = state.event_users;
  std::memcpy(&max_sum_, &state.max_sum_bits, sizeof(max_sum_));
  std::memcpy(&drift_, &state.drift_bits, sizeof(drift_));

  const std::string error = Validate();
  if (!error.empty()) return error;
  // Guard against a bit-corrupted sum sneaking past feasibility checks:
  // the restored value must equal the recomputation to double precision.
  const double recomputed = RecomputeMaxSum();
  if (!(std::abs(max_sum_ - recomputed) <=
        1e-9 * std::max(1.0, std::abs(recomputed)))) {
    return "restored max_sum disagrees with recomputation";
  }
  return "";
}

std::string IncrementalArranger::Validate() const {
  if (arrangement_.num_events() != instance_->event_slots() ||
      arrangement_.num_users() != instance_->user_slots()) {
    return "arrangement sized for a different slot space";
  }
  const ConflictGraph& conflicts = instance_->conflicts();
  for (UserId u = 0; u < instance_->user_slots(); ++u) {
    const auto& events = arrangement_.EventsOf(u);
    const int load = static_cast<int>(events.size());
    if (!instance_->user_active(u)) {
      if (load > 0) return StrFormat("removed user %d still matched", u);
      continue;
    }
    if (load > instance_->user_capacity(u)) {
      return StrFormat("user %d over capacity: %d > %d", u, load,
                       instance_->user_capacity(u));
    }
    if (user_remaining_[u] != instance_->user_capacity(u) - load) {
      return StrFormat("user %d remaining-capacity mirror out of sync", u);
    }
    for (size_t i = 0; i < events.size(); ++i) {
      if (!instance_->event_active(events[i])) {
        return StrFormat("user %d matched to removed event %d", u,
                         events[i]);
      }
      if (instance_->Similarity(events[i], u) <= 0.0) {
        return StrFormat("pair {%d,%d} has non-positive similarity",
                         events[i], u);
      }
      if (!instance_->PairAllowed(events[i], u)) {
        return StrFormat("pair {%d,%d} violates slot availability",
                         events[i], u);
      }
      for (size_t j = i + 1; j < events.size(); ++j) {
        if (events[i] == events[j]) {
          return StrFormat("duplicate pair {%d,%d}", events[i], u);
        }
        if (conflicts.AreConflicting(events[i], events[j])) {
          return StrFormat("user %d assigned conflicting events %d and %d",
                           u, events[i], events[j]);
        }
      }
    }
  }
  for (EventId v = 0; v < instance_->event_slots(); ++v) {
    const int load = arrangement_.EventLoad(v);
    if (!instance_->event_active(v)) {
      if (load > 0) return StrFormat("removed event %d still matched", v);
      continue;
    }
    if (load > instance_->event_capacity(v)) {
      return StrFormat("event %d over capacity: %d > %d", v, load,
                       instance_->event_capacity(v));
    }
    if (event_remaining_[v] != instance_->event_capacity(v) - load) {
      return StrFormat("event %d remaining-capacity mirror out of sync", v);
    }
    if (static_cast<int>(event_users_[v].size()) != load) {
      return StrFormat("event %d reverse adjacency out of sync", v);
    }
  }
  return "";
}

}  // namespace geacc
