#include "dyn/mutation.h"

#include <utility>

#include "util/string_util.h"

namespace geacc {

Mutation Mutation::AddUser(std::vector<double> attributes, int capacity) {
  Mutation m;
  m.kind = Kind::kAddUser;
  m.capacity = capacity;
  m.attributes = std::move(attributes);
  return m;
}

Mutation Mutation::AddEvent(std::vector<double> attributes, int capacity) {
  Mutation m;
  m.kind = Kind::kAddEvent;
  m.capacity = capacity;
  m.attributes = std::move(attributes);
  return m;
}

Mutation Mutation::RemoveUser(UserId u) {
  Mutation m;
  m.kind = Kind::kRemoveUser;
  m.id = u;
  return m;
}

Mutation Mutation::RemoveEvent(EventId v) {
  Mutation m;
  m.kind = Kind::kRemoveEvent;
  m.id = v;
  return m;
}

Mutation Mutation::AddConflict(EventId a, EventId b) {
  Mutation m;
  m.kind = Kind::kAddConflict;
  m.id = a;
  m.other = b;
  return m;
}

Mutation Mutation::SetEventCapacity(EventId v, int capacity) {
  Mutation m;
  m.kind = Kind::kSetEventCapacity;
  m.id = v;
  m.capacity = capacity;
  return m;
}

Mutation Mutation::SetUserCapacity(UserId u, int capacity) {
  Mutation m;
  m.kind = Kind::kSetUserCapacity;
  m.id = u;
  m.capacity = capacity;
  return m;
}

Mutation Mutation::SetEventSlot(EventId v, SlotId slot) {
  Mutation m;
  m.kind = Kind::kSetEventSlot;
  m.id = v;
  m.other = slot;
  return m;
}

Mutation Mutation::SetUserAvailability(UserId u, int64_t mask) {
  Mutation m;
  m.kind = Kind::kSetUserAvailability;
  m.id = u;
  m.mask = mask;
  return m;
}

const char* MutationKindName(Mutation::Kind kind) {
  switch (kind) {
    case Mutation::Kind::kAddUser:
      return "add_user";
    case Mutation::Kind::kAddEvent:
      return "add_event";
    case Mutation::Kind::kRemoveUser:
      return "remove_user";
    case Mutation::Kind::kRemoveEvent:
      return "remove_event";
    case Mutation::Kind::kAddConflict:
      return "add_conflict";
    case Mutation::Kind::kSetEventCapacity:
      return "set_event_capacity";
    case Mutation::Kind::kSetUserCapacity:
      return "set_user_capacity";
    case Mutation::Kind::kSetEventSlot:
      return "set_event_slot";
    case Mutation::Kind::kSetUserAvailability:
      return "set_user_availability";
  }
  return "unknown";
}

std::string Mutation::DebugString() const {
  switch (kind) {
    case Kind::kAddUser:
    case Kind::kAddEvent:
      return StrFormat("%s(capacity=%d, d=%zu)", MutationKindName(kind),
                       capacity, attributes.size());
    case Kind::kRemoveUser:
    case Kind::kRemoveEvent:
      return StrFormat("%s(%d)", MutationKindName(kind), id);
    case Kind::kAddConflict:
      return StrFormat("%s(%d, %d)", MutationKindName(kind), id, other);
    case Kind::kSetEventCapacity:
    case Kind::kSetUserCapacity:
      return StrFormat("%s(%d, capacity=%d)", MutationKindName(kind), id,
                       capacity);
    case Kind::kSetEventSlot:
      return StrFormat("%s(%d, slot=%d)", MutationKindName(kind), id, other);
    case Kind::kSetUserAvailability:
      return StrFormat("%s(%d, mask=%lld)", MutationKindName(kind), id,
                       (long long)mask);
  }
  return "mutation(?)";
}

}  // namespace geacc
