// Directed flow network with residual arcs.
//
// The classic paired-arc representation: AddArc(u, v, cap, cost) stores a
// forward arc with residual capacity `cap` and a backward arc with residual
// capacity 0 and cost -cost at index `arc ^ 1`. Pushing flow moves residual
// capacity between the pair. Costs are real-valued (the GEACC reduction
// uses cost = 1 - sim ∈ [0, 1]).

#ifndef GEACC_FLOW_GRAPH_H_
#define GEACC_FLOW_GRAPH_H_

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace geacc {

class FlowGraph {
 public:
  explicit FlowGraph(int num_nodes);

  // Adds a forward/backward arc pair; returns the forward arc's index.
  // The backward arc is at `index ^ 1`.
  int AddArc(int from, int to, int64_t capacity, double cost);

  int num_nodes() const { return static_cast<int>(adjacency_.size()); }
  int num_arcs() const { return static_cast<int>(heads_.size()); }

  // Arc indices (forward and backward) leaving `node`.
  const std::vector<int>& OutArcs(int node) const {
    GEACC_DCHECK(node >= 0 && node < num_nodes());
    return adjacency_[node];
  }

  int Head(int arc) const { return heads_[arc]; }
  int Tail(int arc) const { return heads_[arc ^ 1]; }
  double Cost(int arc) const { return costs_[arc]; }
  int64_t ResidualCapacity(int arc) const { return residual_[arc]; }

  // Flow currently on a *forward* arc (its backward residual).
  int64_t Flow(int forward_arc) const {
    GEACC_DCHECK((forward_arc & 1) == 0);
    return residual_[forward_arc ^ 1];
  }

  // Moves `amount` units of residual capacity across the pair.
  void Push(int arc, int64_t amount) {
    GEACC_DCHECK(amount >= 0 && amount <= residual_[arc]);
    residual_[arc] -= amount;
    residual_[arc ^ 1] += amount;
  }

  // True if any arc has negative cost (then SSP needs a Bellman–Ford
  // bootstrap for its potentials).
  bool HasNegativeCost() const { return has_negative_cost_; }

  uint64_t ByteEstimate() const;

 private:
  std::vector<std::vector<int>> adjacency_;
  std::vector<int> heads_;
  std::vector<double> costs_;
  std::vector<int64_t> residual_;
  bool has_negative_cost_ = false;
};

}  // namespace geacc

#endif  // GEACC_FLOW_GRAPH_H_
