// Time-slotted GEACC instances: joint slot + participant arrangement.
//
// A SlottedInstance extends a base Instance with S discrete time slots
// (each a TimeWindow on the shared horizon), a per-event set of allowed
// slots, and a per-user availability bitmask. Conflicts are no longer
// part of the input: they are *derived* from a slotting — two scheduled
// events conflict iff their slot windows overlap or are too far apart to
// travel between (core/time_window.h, the same predicate the schedule
// generator and the dynamic slot-change repair use).
//
// A Slotting maps each event to one of its allowed slots (or kInvalidSlot
// when unscheduled). Given a slotting the joint problem collapses to a
// plain GEACC instance: DeriveConflicts() yields the conflict graph and
// MakeSubInstance() additionally masks every (event, user) pair the
// slotting forbids — unscheduled events and users whose availability mask
// lacks the event's slot — so any registry solver can price it. The
// joint solvers in slot/slot_solvers.h search over slottings on top of
// these primitives.

#ifndef GEACC_SLOT_SLOTTED_H_
#define GEACC_SLOT_SLOTTED_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/arrangement.h"
#include "core/conflict_graph.h"
#include "core/instance.h"
#include "core/time_window.h"
#include "core/types.h"

namespace geacc {
namespace slot {

// The shared slot grid: window s is the time/venue block every event
// scheduled into slot s occupies. speed_kmph feeds the travel rule of
// WindowsConflict (non-positive disables it).
struct SlotTable {
  std::vector<TimeWindow> windows;
  double speed_kmph = 0.0;

  int size() const { return static_cast<int>(windows.size()); }

  // True iff events scheduled into slots `a` and `b` conflict. A slot
  // always conflicts with itself when its window is non-degenerate.
  bool Conflicting(SlotId a, SlotId b) const;
};

// Base instance + slot structure. Move-only, like Instance. The base
// instance's own conflict graph is ignored by the joint problem (the
// generator leaves it empty); conflicts come from the slotting.
struct SlottedInstance {
  Instance base;
  SlotTable slots;
  // Per event: bitmask over [0, slots.size()) of slots it may occupy.
  std::vector<uint32_t> event_allowed;
  // Per user: bitmask over [0, slots.size()) of slots they can attend.
  std::vector<uint32_t> user_availability;

  int num_slots() const { return slots.size(); }

  // Structural checks: 1 ≤ S ≤ kMaxTimeSlots, well-formed windows,
  // mask vectors sized to the base instance, event masks non-empty and
  // in range, user masks in range, valid base. Empty string when OK.
  std::string Validate() const;
};

// slotting[v] = the slot event v occupies, or kInvalidSlot when v is
// left unscheduled (it then admits no participants).
using Slotting = std::vector<SlotId>;

// Conflict graph induced by `slotting`: edge {v, w} iff both are
// scheduled and their slot windows conflict. Unscheduled events get no
// edges (they are excluded from matching by the pair mask instead).
ConflictGraph DeriveConflicts(const SlottedInstance& slotted,
                              const Slotting& slotting);

// Row-major (v * num_users + u) admissibility flags under `slotting`:
// 1 iff v is scheduled into a slot the user's availability mask allows.
std::vector<uint8_t> PairMask(const SlottedInstance& slotted,
                              const Slotting& slotting);

// The plain GEACC instance a fixed `slotting` induces: base attributes
// and capacities, DeriveConflicts() as the conflict graph, and the
// similarity masked to 0 on inadmissible pairs (core/masked_similarity.h)
// so every solver's positive-similarity rule excludes them.
Instance MakeSubInstance(const SlottedInstance& slotted,
                         const Slotting& slotting);

// Empty string iff (slotting, arrangement) is jointly feasible:
// scheduled slots are allowed for their events, every matched event is
// scheduled, matched pairs respect user availability, and the
// arrangement is feasible for MakeSubInstance() (capacities, derived
// conflict-freeness per user, positive similarity, no duplicates).
std::string AuditSlotted(const SlottedInstance& slotted,
                         const Slotting& slotting,
                         const Arrangement& arrangement);

}  // namespace slot
}  // namespace geacc

#endif  // GEACC_SLOT_SLOTTED_H_
