file(REMOVE_RECURSE
  "CMakeFiles/golden_paper_example_test.dir/golden_paper_example_test.cc.o"
  "CMakeFiles/golden_paper_example_test.dir/golden_paper_example_test.cc.o.d"
  "golden_paper_example_test"
  "golden_paper_example_test.pdb"
  "golden_paper_example_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/golden_paper_example_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
