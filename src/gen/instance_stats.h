// Workload characterization: similarity-distribution statistics of an
// instance.
//
// The arguments in DESIGN.md §4 (the EBSN simulator reproduces the real
// crawl's *geometry*) and the paper's dimensionality discussion (Fig. 3
// col 3: "the attribute space becomes sparser") are claims about the
// distribution of sim(l_v, l_u). This module measures it: moments,
// quantiles, a fixed-width histogram over [0, 1], and the per-user
// best-match statistics that drive greedy behavior.

#ifndef GEACC_GEN_INSTANCE_STATS_H_
#define GEACC_GEN_INSTANCE_STATS_H_

#include <array>
#include <cstdint>
#include <string>

#include "core/instance.h"

namespace geacc {

struct SimilarityStats {
  static constexpr int kHistogramBins = 20;

  int64_t pair_count = 0;
  int64_t zero_pairs = 0;    // sim == 0 (unmatchable)
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  // Quantiles of the similarity distribution.
  double p25 = 0.0;
  double p50 = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
  // Counts per bin over [0, 1]; bin i covers [i/20, (i+1)/20).
  std::array<int64_t, kHistogramBins> histogram = {};

  // Per-user best match: mean over users of max_v sim(v, u).
  double mean_user_best = 0.0;
  // Per-event best match: mean over events of max_u sim(v, u).
  double mean_event_best = 0.0;

  // Multi-line human-readable summary with an ASCII histogram.
  std::string ToString() const;
};

// Computes stats over all |V|·|U| pairs (O(|V|·|U|·d)); instances at
// bench scale take milliseconds.
SimilarityStats ComputeSimilarityStats(const Instance& instance);

}  // namespace geacc

#endif  // GEACC_GEN_INSTANCE_STATS_H_
