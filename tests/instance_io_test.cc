// Tests for the plain-text instance/arrangement serialization.

#include <gtest/gtest.h>

#include <sstream>

#include "algo/solvers.h"
#include "gen/ebsn.h"
#include "gen/synthetic.h"
#include "io/instance_io.h"
#include "tests/test_util.h"

namespace geacc {
namespace {

void ExpectInstancesEqual(const Instance& a, const Instance& b) {
  ASSERT_EQ(a.num_events(), b.num_events());
  ASSERT_EQ(a.num_users(), b.num_users());
  ASSERT_EQ(a.dim(), b.dim());
  EXPECT_EQ(a.similarity().Name(), b.similarity().Name());
  for (EventId v = 0; v < a.num_events(); ++v) {
    ASSERT_EQ(a.event_capacity(v), b.event_capacity(v));
    for (int j = 0; j < a.dim(); ++j) {
      ASSERT_EQ(a.event_attributes().At(v, j), b.event_attributes().At(v, j))
          << "event " << v << " attr " << j << " not bit-exact";
    }
    ASSERT_EQ(a.conflicts().ConflictsOf(v), b.conflicts().ConflictsOf(v));
  }
  for (UserId u = 0; u < a.num_users(); ++u) {
    ASSERT_EQ(a.user_capacity(u), b.user_capacity(u));
    for (int j = 0; j < a.dim(); ++j) {
      ASSERT_EQ(a.user_attributes().At(u, j), b.user_attributes().At(u, j));
    }
  }
}

TEST(InstanceIo, RoundTripSynthetic) {
  SyntheticConfig config;
  config.num_events = 12;
  config.num_users = 30;
  config.dim = 5;
  config.seed = 3;
  const Instance original = GenerateSynthetic(config);
  std::stringstream stream;
  WriteInstance(original, stream);
  std::string error;
  const auto loaded = ReadInstance(stream, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  ExpectInstancesEqual(original, *loaded);
}

TEST(InstanceIo, RoundTripEbsnBitExactSimilarities) {
  EbsnConfig config = EbsnCityPreset("auckland");
  config.seed = 9;
  const Instance original = GenerateEbsn(config);
  std::stringstream stream;
  WriteInstance(original, stream);
  const auto loaded = ReadInstance(stream);
  ASSERT_TRUE(loaded.has_value());
  for (EventId v = 0; v < original.num_events(); v += 7) {
    for (UserId u = 0; u < original.num_users(); u += 53) {
      ASSERT_EQ(original.Similarity(v, u), loaded->Similarity(v, u));
    }
  }
}

TEST(InstanceIo, RoundTripPaperExampleSolvesIdentically) {
  const Instance original = geacc::testing::PaperTableIExample();
  std::stringstream stream;
  WriteInstance(original, stream);
  const auto loaded = ReadInstance(stream);
  ASSERT_TRUE(loaded.has_value());
  const auto result = CreateSolver("prune")->Solve(*loaded);
  EXPECT_NEAR(result.arrangement.MaxSum(*loaded), 4.39, 1e-9);
}

TEST(InstanceIo, RoundTripEmptyInstance) {
  InstanceBuilder builder;
  builder.SetSimilarity(std::make_unique<EuclideanSimilarity>(1.0));
  const Instance original = builder.Build();
  std::stringstream stream;
  WriteInstance(original, stream);
  const auto loaded = ReadInstance(stream);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_events(), 0);
  EXPECT_EQ(loaded->num_users(), 0);
}

TEST(InstanceIo, CommentsAndBlankLinesIgnored) {
  const Instance original = geacc::testing::PaperTableIExample();
  std::stringstream stream;
  WriteInstance(original, stream);
  const std::string with_noise =
      "# GEACC instance\n\n" + stream.str() + "\n# trailing comment\n";
  std::stringstream noisy(with_noise);
  EXPECT_TRUE(ReadInstance(noisy).has_value());
}

TEST(InstanceIo, RejectsBadHeader) {
  std::stringstream stream("geacc-instance v9\n");
  std::string error;
  EXPECT_FALSE(ReadInstance(stream, &error).has_value());
  EXPECT_NE(error.find("line 1"), std::string::npos);
}

TEST(InstanceIo, RejectsUnknownSimilarity) {
  std::stringstream stream(
      "geacc-instance v1\nsimilarity bogus 1\ndim 1\nevents 0\nusers 0\n"
      "conflicts 0\n");
  std::string error;
  EXPECT_FALSE(ReadInstance(stream, &error).has_value());
  EXPECT_NE(error.find("bogus"), std::string::npos);
}

TEST(InstanceIo, RejectsTruncatedEvents) {
  std::stringstream stream(
      "geacc-instance v1\nsimilarity euclidean 10\ndim 1\nevents 2\n"
      "event 1 5.0\n");
  std::string error;
  EXPECT_FALSE(ReadInstance(stream, &error).has_value());
  EXPECT_NE(error.find("event"), std::string::npos);
}

TEST(InstanceIo, RejectsConflictOutOfRange) {
  std::stringstream stream(
      "geacc-instance v1\nsimilarity euclidean 10\ndim 1\nevents 2\n"
      "event 1 5.0\nevent 1 6.0\nusers 1\nuser 1 5.0\nconflicts 1\n"
      "conflict 0 2\n");
  std::string error;
  EXPECT_FALSE(ReadInstance(stream, &error).has_value());
  EXPECT_NE(error.find("out of range"), std::string::npos);
}

TEST(InstanceIo, RejectsWrongAttributeCount) {
  std::stringstream stream(
      "geacc-instance v1\nsimilarity euclidean 10\ndim 2\nevents 1\n"
      "event 1 5.0\n");
  EXPECT_FALSE(ReadInstance(stream).has_value());
}

TEST(ArrangementIo, RoundTrip) {
  const Instance instance = geacc::testing::PaperTableIExample();
  const auto solved = CreateSolver("greedy")->Solve(instance);
  std::stringstream stream;
  WriteArrangement(solved.arrangement, stream);
  std::string error;
  const auto loaded = ReadArrangement(stream, instance, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->SortedPairs(), solved.arrangement.SortedPairs());
  EXPECT_NEAR(loaded->MaxSum(instance), 4.28, 1e-9);
}

TEST(ArrangementIo, RejectsDuplicatePair) {
  const Instance instance = geacc::testing::PaperTableIExample();
  std::stringstream stream(
      "geacc-arrangement v1\npairs 2\npair 0 0\npair 0 0\n");
  std::string error;
  EXPECT_FALSE(ReadArrangement(stream, instance, &error).has_value());
  EXPECT_NE(error.find("duplicate"), std::string::npos);
}

TEST(ArrangementIo, RejectsOutOfRangeIds) {
  const Instance instance = geacc::testing::PaperTableIExample();
  std::stringstream stream("geacc-arrangement v1\npairs 1\npair 7 0\n");
  EXPECT_FALSE(ReadArrangement(stream, instance).has_value());
}

TEST(FileIo, RoundTripThroughFilesystem) {
  const Instance original = geacc::testing::PaperTableIExample();
  const std::string instance_path = ::testing::TempDir() + "/geacc_inst.txt";
  const std::string plan_path = ::testing::TempDir() + "/geacc_plan.txt";
  ASSERT_TRUE(WriteInstanceToFile(original, instance_path));
  std::string error;
  const auto loaded = ReadInstanceFromFile(instance_path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  const auto solved = CreateSolver("greedy")->Solve(*loaded);
  ASSERT_TRUE(WriteArrangementToFile(solved.arrangement, plan_path));
  const auto plan = ReadArrangementFromFile(plan_path, *loaded, &error);
  ASSERT_TRUE(plan.has_value()) << error;
  EXPECT_EQ(plan->Validate(*loaded), "");
}

TEST(FileIo, MissingFileReportsError) {
  std::string error;
  EXPECT_FALSE(ReadInstanceFromFile("/nonexistent/geacc.txt", &error)
                   .has_value());
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace geacc
