#include "slot/slot_solvers.h"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <utility>
#include <vector>

#include "algo/bounds.h"
#include "algo/min_cost_flow_solver.h"
#include "algo/prune_solver.h"
#include "core/instance.h"
#include "core/types.h"
#include "obs/stats.h"
#include "util/check.h"
#include "util/memory.h"
#include "util/timer.h"

namespace geacc {
namespace slot {
namespace {

// Bound slack for the branch-and-bound incumbent comparison — the shared
// bound-vs-incumbent contract of algo/bounds.h: prune only when the
// admissible bound falls more than this below the incumbent, while the
// incumbent itself updates with strict `>`.
constexpr double kBoundEps = algo::kBoundEps;

// Ascending slot ids set in `mask`.
std::vector<SlotId> SlotsOf(uint32_t mask) {
  std::vector<SlotId> slots;
  for (SlotId s = 0; s < kMaxTimeSlots; ++s) {
    if ((mask >> s) & 1u) slots.push_back(s);
  }
  return slots;
}

// Deterministic MaxSum of a leaf arrangement: pairs in sorted order, the
// masked similarity (bit-identical to the base function on admitted
// pairs). Both the joint solvers and the verify oracle sum this way, so
// equal arrangements yield bit-equal sums.
double LeafMaxSum(const Arrangement& arrangement, const Instance& sub) {
  double sum = 0.0;
  for (const auto& [v, u] : arrangement.SortedPairs()) {
    sum += sub.Similarity(v, u);
  }
  return sum;
}

// ---------------------------------------------------------------------------
// slot-greedy

class SlotGreedySolver final : public SlotSolver {
 public:
  explicit SlotGreedySolver(SolverOptions options) : options_(options) {}

  std::string Name() const override { return "slot-greedy"; }

  SlotSolveResult Solve(const SlottedInstance& slotted) const override {
    WallTimer timer;
    const Instance& base = slotted.base;
    const int num_events = base.num_events();
    const int num_users = base.num_users();

    // Every admissible (slot, event, user) triple with positive
    // similarity: slot allowed for the event and available to the user.
    struct Candidate {
      double similarity;
      EventId event;
      UserId user;
      SlotId time_slot;
    };
    std::vector<Candidate> candidates;
    for (EventId v = 0; v < num_events; ++v) {
      for (UserId u = 0; u < num_users; ++u) {
        const double sim = base.Similarity(v, u);
        if (sim <= 0.0) continue;
        const uint32_t joint =
            slotted.event_allowed[v] & slotted.user_availability[u];
        for (SlotId s = 0; s < slotted.num_slots(); ++s) {
          if ((joint >> s) & 1u) candidates.push_back({sim, v, u, s});
        }
      }
    }
    // SortAllGreedy's admission order, extended by the slot as the final
    // tie-break: an event's slot is fixed by its best admissible pair.
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.similarity != b.similarity)
                  return a.similarity > b.similarity;
                if (a.event != b.event) return a.event < b.event;
                if (a.user != b.user) return a.user < b.user;
                return a.time_slot < b.time_slot;
              });

    SlotSolveResult result;
    result.slotting.assign(num_events, kInvalidSlot);
    result.arrangement = Arrangement(num_events, num_users);
    result.slottings_considered = 1;

    std::vector<int> event_remaining(num_events);
    for (EventId v = 0; v < num_events; ++v) {
      event_remaining[v] = base.event_capacity(v);
    }
    std::vector<int> user_remaining(num_users);
    for (UserId u = 0; u < num_users; ++u) {
      user_remaining[u] = base.user_capacity(u);
    }

    for (const Candidate& c : candidates) {
      const SlotId fixed = result.slotting[c.event];
      if (fixed != kInvalidSlot && fixed != c.time_slot) continue;
      if (event_remaining[c.event] <= 0 || user_remaining[c.user] <= 0) {
        continue;
      }
      if (result.arrangement.Contains(c.event, c.user)) continue;
      bool conflicts = false;
      for (const EventId w : result.arrangement.EventsOf(c.user)) {
        // Matched events are always scheduled, so slotting[w] is valid.
        if (slotted.slots.Conflicting(result.slotting[w], c.time_slot)) {
          conflicts = true;
          break;
        }
      }
      if (conflicts) continue;
      result.slotting[c.event] = c.time_slot;
      result.arrangement.Add(c.event, c.user);
      --event_remaining[c.event];
      --user_remaining[c.user];
    }

    // Recompute the sum in the shared deterministic order rather than in
    // admission order (floating-point addition is order-sensitive).
    double sum = 0.0;
    for (const auto& [v, u] : result.arrangement.SortedPairs()) {
      sum += base.Similarity(v, u);
    }
    result.max_sum = sum;

    result.stats.logical_peak_bytes =
        VectorBytes(candidates) + VectorBytes(result.slotting) +
        VectorBytes(event_remaining) + VectorBytes(user_remaining) +
        result.arrangement.ByteEstimate();
    result.stats.wall_seconds = timer.Seconds();
    return result;
  }

 private:
  SolverOptions options_;
};

// ---------------------------------------------------------------------------
// slot-mcf-sweep

class SlotMcfSweepSolver final : public SlotSolver {
 public:
  explicit SlotMcfSweepSolver(SolverOptions options)
      : options_(options), mcf_(options) {}

  std::string Name() const override { return "slot-mcf-sweep"; }

  SlotSolveResult Solve(const SlottedInstance& slotted) const override {
    WallTimer timer;
    const Instance& base = slotted.base;
    const int num_events = base.num_events();
    const int num_slots = slotted.num_slots();

    // Slots with identical available-user sets are interchangeable for
    // the dominance test (conflicts are compared separately).
    std::vector<int> slot_class(num_slots, 0);
    {
      std::vector<std::vector<uint8_t>> columns(num_slots);
      for (SlotId s = 0; s < num_slots; ++s) {
        columns[s].resize(base.num_users());
        for (UserId u = 0; u < base.num_users(); ++u) {
          columns[s][u] = (slotted.user_availability[u] >> s) & 1u;
        }
      }
      std::vector<int> representative;
      for (SlotId s = 0; s < num_slots; ++s) {
        int cls = -1;
        for (size_t i = 0; i < representative.size(); ++i) {
          if (columns[representative[i]] == columns[s]) {
            cls = static_cast<int>(i);
            break;
          }
        }
        if (cls < 0) {
          cls = static_cast<int>(representative.size());
          representative.push_back(s);
        }
        slot_class[s] = cls;
      }
    }

    std::vector<std::vector<SlotId>> choices(num_events);
    for (EventId v = 0; v < num_events; ++v) {
      choices[v] = SlotsOf(slotted.event_allowed[v]);
      GEACC_CHECK(!choices[v].empty());
    }

    SlotSolveResult result;
    result.slotting.assign(num_events, kInvalidSlot);
    result.arrangement = Arrangement(num_events, base.num_users());
    double best_sum = -std::numeric_limits<double>::infinity();

    // Signatures of already-priced slottings: per-event slot classes plus
    // the sorted derived conflict-pair keys. A new slotting with the same
    // classes and a superset of some priced slotting's conflicts admits
    // no arrangement the priced one does not, so its optimum cannot be
    // higher and the Δ-sweep is skipped. (Both sides are priced by the
    // same approximate sweep, so the incumbent keeps the per-slotting
    // 1/max c_u guarantee relative to the dominating slotting's optimum.)
    struct Signature {
      std::vector<int> classes;
      std::vector<uint64_t> conflict_keys;
    };
    std::vector<Signature> priced;

    uint64_t peak_bytes = 0;
    // Lexicographic odometer over the allowed-slot sets, event 0 most
    // significant, slots ascending — the shared enumeration order.
    std::vector<size_t> cursor(num_events, 0);
    Slotting slotting(num_events, kInvalidSlot);
    bool done = false;
    while (!done) {
      for (EventId v = 0; v < num_events; ++v) {
        slotting[v] = choices[v][cursor[v]];
      }
      ++result.slottings_considered;

      Signature sig;
      sig.classes.resize(num_events);
      for (EventId v = 0; v < num_events; ++v) {
        sig.classes[v] = slot_class[slotting[v]];
      }
      const ConflictGraph derived = DeriveConflicts(slotted, slotting);
      for (EventId v = 0; v < num_events; ++v) {
        for (const EventId w : derived.ConflictsOf(v)) {
          if (w > v) sig.conflict_keys.push_back(PairKey(v, w));
        }
      }
      std::sort(sig.conflict_keys.begin(), sig.conflict_keys.end());

      bool dominated = false;
      for (const Signature& p : priced) {
        if (p.classes == sig.classes &&
            std::includes(sig.conflict_keys.begin(), sig.conflict_keys.end(),
                          p.conflict_keys.begin(), p.conflict_keys.end())) {
          dominated = true;
          break;
        }
      }

      if (!dominated) {
        const Instance sub = MakeSubInstance(slotted, slotting);
        SolveResult solve = mcf_.Solve(sub);
        ++result.leaf_solves;
        result.stats.flow_augmentations += solve.stats.flow_augmentations;
        result.stats.conflicts_resolved += solve.stats.conflicts_resolved;
        peak_bytes = std::max(peak_bytes, solve.stats.logical_peak_bytes +
                                              sub.ByteEstimate());
        const double sum = LeafMaxSum(solve.arrangement, sub);
        if (sum > best_sum) {
          best_sum = sum;
          result.slotting = slotting;
          result.arrangement = std::move(solve.arrangement);
        }
        priced.push_back(std::move(sig));
      }

      // Advance the odometer (last event fastest).
      done = true;
      for (int v = num_events - 1; v >= 0; --v) {
        if (++cursor[v] < choices[v].size()) {
          done = false;
          break;
        }
        cursor[v] = 0;
      }
    }

    result.max_sum = best_sum;
    result.stats.logical_peak_bytes = peak_bytes + VectorBytes(cursor);
    result.stats.wall_seconds = timer.Seconds();
    return result;
  }

 private:
  SolverOptions options_;
  MinCostFlowSolver mcf_;
};

// ---------------------------------------------------------------------------
// slot-exact

class SlotExactSolver final : public SlotSolver {
 public:
  explicit SlotExactSolver(SolverOptions options)
      : options_(options), leaf_solver_(options) {}

  std::string Name() const override { return "slot-exact"; }

  SlotSolveResult Solve(const SlottedInstance& slotted) const override {
    WallTimer timer;
    const Instance& base = slotted.base;
    const int num_events = base.num_events();
    const int num_slots = slotted.num_slots();

    // mass[v][s]: capacity-clipped sum of the top positive similarities
    // between v and the users available in slot s — an upper bound on v's
    // contribution when scheduled into s (user capacities and derived
    // conflicts only remove pairs, never add value). Complete slottings
    // lose no optimality: an event with no matched users constrains
    // nothing, so every arrangement feasible under a partial slotting is
    // feasible under some completion of it.
    std::vector<std::vector<double>> mass(
        num_events, std::vector<double>(num_slots, 0.0));
    std::vector<double> sims;
    for (EventId v = 0; v < num_events; ++v) {
      for (SlotId s = 0; s < num_slots; ++s) {
        if (((slotted.event_allowed[v] >> s) & 1u) == 0) continue;
        sims.clear();
        for (UserId u = 0; u < base.num_users(); ++u) {
          if (((slotted.user_availability[u] >> s) & 1u) == 0) continue;
          const double sim = base.Similarity(v, u);
          if (sim > 0.0) sims.push_back(sim);
        }
        std::sort(sims.begin(), sims.end(), std::greater<double>());
        const size_t take = std::min<size_t>(
            sims.size(), static_cast<size_t>(base.event_capacity(v)));
        double total = 0.0;
        for (size_t i = 0; i < take; ++i) total += sims[i];
        mass[v][s] = total;
      }
    }
    std::vector<double> max_mass(num_events, 0.0);
    std::vector<std::vector<SlotId>> choices(num_events);
    for (EventId v = 0; v < num_events; ++v) {
      choices[v] = SlotsOf(slotted.event_allowed[v]);
      GEACC_CHECK(!choices[v].empty());
      double best = 0.0;
      for (const SlotId s : choices[v]) best = std::max(best, mass[v][s]);
      max_mass[v] = best;
    }
    // Complete slottings under a node at depth v (saturating product).
    std::vector<int64_t> suffix_count(num_events + 1, 1);
    for (int v = num_events - 1; v >= 0; --v) {
      const int64_t below = suffix_count[v + 1];
      const int64_t width = static_cast<int64_t>(choices[v].size());
      suffix_count[v] = below > std::numeric_limits<int64_t>::max() / width
                            ? std::numeric_limits<int64_t>::max()
                            : below * width;
    }

    // suffix_plain[v] = Σ_{w ≥ v} max_mass[w]: the per-event-mass bound on
    // the unassigned suffix (events are visited in id order).
    std::vector<double> suffix_plain(num_events + 1, 0.0);
    for (int v = num_events - 1; v >= 0; --v) {
      suffix_plain[v] = suffix_plain[v + 1] + max_mass[v];
    }

    // Conflict-aware tightening (algo/bounds.h): two events whose allowed
    // slots pairwise conflict end up in conflicting slots under EVERY
    // completion, so no user attends both — yet suffix_plain admits both
    // events' full top-user sets. Build the forced-conflict graph (v ~ w
    // iff every allowed-slot pair conflicts), clique-partition it, and cap
    // each clique via the per-user effective similarities (positive sim
    // AND some allowed slot where the user is available). The result is
    // an admissible suffix table ≤ suffix_plain; Descend takes the min.
    std::vector<double> suffix_tight;
    const algo::BoundMode bound_mode = algo::ParseBoundMode(options_.bound);
    if (bound_mode != algo::BoundMode::kLemma6 && num_events > 0 &&
        base.num_users() > 0) {
      ConflictGraph forced(num_events);
      for (EventId v = 0; v < num_events; ++v) {
        for (EventId w = v + 1; w < num_events; ++w) {
          bool always = true;
          for (const SlotId s : choices[v]) {
            for (const SlotId t : choices[w]) {
              if (!slotted.slots.Conflicting(s, t)) {
                always = false;
                break;
              }
            }
            if (!always) break;
          }
          if (always) forced.AddConflict(v, w);
        }
      }
      if (!forced.empty()) {
        const int num_users = base.num_users();
        std::vector<double> eff_sim(
            static_cast<size_t>(num_events) * num_users, 0.0);
        std::vector<double> event_bound(num_events);
        std::vector<int> event_caps(num_events);
        std::vector<int> user_caps(num_users);
        std::vector<EventId> order(num_events);
        for (EventId v = 0; v < num_events; ++v) {
          order[v] = v;
          event_bound[v] = max_mass[v];
          event_caps[v] = base.event_capacity(v);
          uint32_t reachable = 0;
          for (const SlotId s : choices[v]) reachable |= 1u << s;
          for (UserId u = 0; u < num_users; ++u) {
            if ((reachable & slotted.user_availability[u]) == 0) continue;
            const double sim = base.Similarity(v, u);
            if (sim > 0.0) {
              eff_sim[static_cast<size_t>(v) * num_users + u] = sim;
            }
          }
        }
        for (UserId u = 0; u < num_users; ++u) {
          user_caps[u] = base.user_capacity(u);
        }
        const algo::CliquePartition partition =
            algo::GreedyCliquePartition(forced);
        algo::BoundInputs inputs;
        inputs.num_events = num_events;
        inputs.num_users = num_users;
        inputs.sim = eff_sim.data();
        inputs.event_bound = event_bound.data();
        inputs.event_capacity = event_caps.data();
        inputs.user_capacity = user_caps.data();
        inputs.conflicts = &forced;
        inputs.order = order.data();
        suffix_tight = algo::ComputeSuffixBounds(inputs, bound_mode, partition);
      }
    }

    SlotSolveResult result;
    result.slotting.assign(num_events, kInvalidSlot);
    result.arrangement = Arrangement(num_events, base.num_users());

    Context ctx{slotted,
                mass,
                max_mass,
                choices,
                suffix_count,
                suffix_plain,
                suffix_tight.empty() ? nullptr : &suffix_tight,
                result,
                -std::numeric_limits<double>::infinity(),
                0};
    Slotting partial(num_events, kInvalidSlot);
    Descend(ctx, partial, 0, /*assigned=*/0.0);

    result.max_sum = ctx.best_sum;
    GEACC_STATS_ADD("slot.bound.clique_cuts", result.stats.bound_clique_cuts);
    result.stats.logical_peak_bytes =
        ctx.peak_bytes + VectorBytes(max_mass) + VectorBytes(suffix_count) +
        VectorBytes(suffix_plain) + VectorBytes(suffix_tight) +
        static_cast<uint64_t>(num_events) * num_slots * sizeof(double);
    result.stats.wall_seconds = timer.Seconds();
    return result;
  }

 private:
  struct Context {
    const SlottedInstance& slotted;
    const std::vector<std::vector<double>>& mass;
    const std::vector<double>& max_mass;
    const std::vector<std::vector<SlotId>>& choices;
    const std::vector<int64_t>& suffix_count;
    const std::vector<double>& suffix_plain;
    const std::vector<double>* suffix_tight;  // null = per-event mass only
    SlotSolveResult& result;
    double best_sum;
    uint64_t peak_bytes;
  };

  // DFS over events in id order, slots ascending — the same lexicographic
  // order the exhaustive oracle enumerates, so with the strict-improvement
  // incumbent the returned slotting is bit-identical to brute force.
  // `assigned` is Σ mass[w][slot_w] over the assigned prefix; each child's
  // admissible bound adds the unassigned suffix's per-event masses,
  // tightened (outer min) by the forced-conflict clique caps when those
  // were built. A prune that only the tightening achieved is credited to
  // bound_clique_cuts.
  void Descend(Context& ctx, Slotting& partial, EventId v,
               double assigned) const {
    const int num_events = ctx.slotted.base.num_events();
    if (v == num_events) {
      ++ctx.result.slottings_considered;
      ++ctx.result.leaf_solves;
      const Instance sub = MakeSubInstance(ctx.slotted, partial);
      SolveResult solve = leaf_solver_.Solve(sub);
      ctx.result.stats.search_invocations += solve.stats.search_invocations;
      ctx.result.stats.complete_searches += solve.stats.complete_searches;
      ctx.result.stats.prune_events += solve.stats.prune_events;
      ctx.result.stats.branches_matched += solve.stats.branches_matched;
      ctx.peak_bytes = std::max(
          ctx.peak_bytes, solve.stats.logical_peak_bytes + sub.ByteEstimate());
      const double sum = LeafMaxSum(solve.arrangement, sub);
      if (sum > ctx.best_sum) {
        ctx.best_sum = sum;
        ctx.result.slotting = partial;
        ctx.result.arrangement = std::move(solve.arrangement);
      }
      return;
    }
    for (const SlotId s : ctx.choices[v]) {
      const double child_assigned = assigned + ctx.mass[v][s];
      const double plain_bound = child_assigned + ctx.suffix_plain[v + 1];
      double child_bound = plain_bound;
      if (ctx.suffix_tight != nullptr) {
        child_bound = std::min(
            child_bound, child_assigned + (*ctx.suffix_tight)[v + 1]);
      }
      if (child_bound + kBoundEps < ctx.best_sum) {
        // Every leaf below scores ≤ child_bound < the incumbent; skip the
        // subtree but account its slottings (saturating).
        const int64_t below = ctx.suffix_count[v + 1];
        int64_t& considered = ctx.result.slottings_considered;
        considered =
            considered > std::numeric_limits<int64_t>::max() - below
                ? std::numeric_limits<int64_t>::max()
                : considered + below;
        ++ctx.result.stats.prune_events;
        if (child_bound != plain_bound &&
            !(plain_bound + kBoundEps < ctx.best_sum)) {
          ++ctx.result.stats.bound_clique_cuts;
        }
        continue;
      }
      partial[v] = s;
      Descend(ctx, partial, v + 1, child_assigned);
      partial[v] = kInvalidSlot;
    }
  }

  SolverOptions options_;
  PruneSolver leaf_solver_;
};

}  // namespace

std::unique_ptr<SlotSolver> CreateSlotSolver(const std::string& name,
                                             SolverOptions options) {
  const std::string error = ValidateSolverOptions(options);
  GEACC_CHECK(error.empty());
  if (name == "slot-greedy") {
    return std::make_unique<SlotGreedySolver>(options);
  }
  if (name == "slot-mcf-sweep") {
    return std::make_unique<SlotMcfSweepSolver>(options);
  }
  if (name == "slot-exact") {
    return std::make_unique<SlotExactSolver>(options);
  }
  return nullptr;
}

std::vector<std::string> SlotSolverNames() {
  return {"slot-greedy", "slot-mcf-sweep", "slot-exact"};
}

}  // namespace slot
}  // namespace geacc
