// Exhaustive-scan NN index: O(n·d) per Query, O(n·d + n log n) for the
// first cursor advance, O(1) afterwards. The baseline every other index is
// tested against, and the fallback for non-metric similarities.

#ifndef GEACC_INDEX_LINEAR_SCAN_INDEX_H_
#define GEACC_INDEX_LINEAR_SCAN_INDEX_H_

#include <memory>
#include <string>
#include <vector>

#include "index/knn_index.h"

namespace geacc {

class LinearScanIndex final : public KnnIndex {
 public:
  LinearScanIndex(const AttributeMatrix& points,
                  const SimilarityFunction& similarity);

  std::string Name() const override { return "linear"; }
  std::vector<Neighbor> Query(const double* query, int k) const override;
  std::unique_ptr<NnCursor> CreateCursor(const double* query) const override;
  uint64_t ByteEstimate() const override;

 private:
  // Similarities of every indexed point to `query`, unsorted.
  std::vector<Neighbor> ScanAll(const double* query) const;

  const AttributeMatrix& points_;
  const SimilarityFunction& similarity_;
};

}  // namespace geacc

#endif  // GEACC_INDEX_LINEAR_SCAN_INDEX_H_
