file(REMOVE_RECURSE
  "CMakeFiles/geacc_solve.dir/geacc_solve.cpp.o"
  "CMakeFiles/geacc_solve.dir/geacc_solve.cpp.o.d"
  "geacc_solve"
  "geacc_solve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geacc_solve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
