// Configuration fuzz: every polynomial solver must produce feasible,
// deterministic arrangements across the full generator space — all
// similarity functions (including non-Euclidean-monotone ones, which force
// the index fallback inside Greedy), all attribute/capacity distributions,
// degenerate shapes, and extreme conflict densities. The exact solvers are
// exercised at tiny sizes in approximation_property_test; here the point
// is breadth of input space, not optimality.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "algo/solvers.h"
#include "exp/metrics.h"
#include "gen/synthetic.h"

namespace geacc {
namespace {

constexpr const char* kPolySolvers[] = {"greedy",        "greedy-sortall",
                                        "online-greedy", "mincostflow",
                                        "random-v",      "random-u"};

using Config = std::tuple<std::string, std::string, double, uint64_t>;
//                       similarity   attr distro   rho     seed

class FuzzConfigurationTest : public ::testing::TestWithParam<Config> {
 protected:
  Instance MakeInstance(int num_events, int num_users) const {
    const auto& [similarity, distro, rho, seed] = GetParam();
    SyntheticConfig config;
    config.num_events = num_events;
    config.num_users = num_users;
    config.dim = 6;
    config.max_attribute = 1000.0;
    config.similarity = similarity;
    if (distro == "zipf") {
      config.WithZipfAttributes(1.3);
    } else if (distro == "normal") {
      config.WithNormalAttributes();
    }
    config.event_capacity = DistributionSpec::Uniform(1.0, 6.0);
    config.user_capacity = DistributionSpec::Normal(2.0, 1.0);
    config.conflict_density = rho;
    config.seed = seed * 7919 + 1;
    return GenerateSynthetic(config);
  }
};

TEST_P(FuzzConfigurationTest, AllSolversFeasibleAndDeterministic) {
  const Instance instance = MakeInstance(12, 40);
  for (const char* name : kPolySolvers) {
    SolverOptions options;
    options.seed = std::get<3>(GetParam());
    const auto solver = CreateSolver(name, options);
    const SolveResult first = solver->Solve(instance);
    ASSERT_EQ(first.arrangement.Validate(instance), "")
        << name << " on " << instance.DebugString();
    const SolveResult second = solver->Solve(instance);
    ASSERT_EQ(first.arrangement.SortedPairs(),
              second.arrangement.SortedPairs())
        << name << " is not deterministic";
    // Metrics never leave their ranges, whatever the configuration.
    const ArrangementMetrics metrics =
        ComputeMetrics(instance, first.arrangement);
    ASSERT_GE(metrics.jain_fairness, 0.0) << name;
    ASSERT_LE(metrics.jain_fairness, 1.0 + 1e-12) << name;
    ASSERT_LE(metrics.seat_utilization, 1.0 + 1e-12) << name;
  }
}

TEST_P(FuzzConfigurationTest, GreedyHeapStillMatchesSortAll) {
  // The Greedy ≡ SortAllGreedy equivalence must survive non-metric
  // similarities (index fallback path) and skewed distributions.
  const Instance instance = MakeInstance(15, 60);
  const auto heap = CreateSolver("greedy")->Solve(instance);
  const auto sorted = CreateSolver("greedy-sortall")->Solve(instance);
  EXPECT_EQ(heap.arrangement.SortedPairs(),
            sorted.arrangement.SortedPairs());
}

TEST_P(FuzzConfigurationTest, SkinnyShapes) {
  // 1×n and n×1 instances stress the cursor/heap boundaries.
  for (const auto& [events, users] : {std::pair{1, 30}, {30, 1}}) {
    const Instance instance = MakeInstance(events, users);
    for (const char* name : kPolySolvers) {
      const SolveResult result = CreateSolver(name)->Solve(instance);
      ASSERT_EQ(result.arrangement.Validate(instance), "")
          << name << " " << events << "x" << users;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Space, FuzzConfigurationTest,
    ::testing::Combine(::testing::Values("euclidean", "cosine", "rbf"),
                       ::testing::Values("uniform", "zipf", "normal"),
                       ::testing::Values(0.0, 0.6, 1.0),
                       ::testing::Values(1, 2)),
    [](const ::testing::TestParamInfo<Config>& info) {
      return std::get<0>(info.param) + "_" + std::get<1>(info.param) +
             "_rho" +
             std::to_string(static_cast<int>(std::get<2>(info.param) * 10)) +
             "_s" + std::to_string(std::get<3>(info.param));
    });

}  // namespace
}  // namespace geacc
