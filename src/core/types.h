// Fundamental identifier types for the GEACC model.
//
// Events and users are dense 0-based indices into an Instance; using typed
// aliases (rather than bare int) documents which side of the bipartite
// arrangement an index refers to.

#ifndef GEACC_CORE_TYPES_H_
#define GEACC_CORE_TYPES_H_

#include <cstdint>

namespace geacc {

using EventId = int32_t;
using UserId = int32_t;

inline constexpr EventId kInvalidEvent = -1;
inline constexpr UserId kInvalidUser = -1;

// Discrete time slots for the slotted scheduling scenario (src/slot/,
// DESIGN.md §17). Slot ids are dense 0-based indices into a slot table;
// kInvalidSlot marks an unscheduled event. kMaxTimeSlots bounds every
// per-entity availability bitmask to one 64-bit word and lets the io
// layer reject out-of-range slot ids structurally, before any instance
// state is consulted.
using SlotId = int32_t;

inline constexpr SlotId kInvalidSlot = -1;
inline constexpr int kMaxTimeSlots = 32;

// Availability mask with every slot bit set — the default for users that
// never stated an availability.
inline constexpr int64_t kFullSlotAvailability =
    (int64_t{1} << kMaxTimeSlots) - 1;

// Packs an (event, user) pair into a hashable 64-bit key.
inline uint64_t PairKey(EventId v, UserId u) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(v)) << 32) |
         static_cast<uint32_t>(u);
}

}  // namespace geacc

#endif  // GEACC_CORE_TYPES_H_
