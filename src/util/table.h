// Aligned-table and CSV writers for the experiment harness.
//
// The bench binaries print one paper-style table per metric:
//
//   MaxSum vs |V|
//   |V|     Greedy  MinCostFlow  Random-V  Random-U
//   20      ...     ...          ...       ...
//
// Table collects rows of strings and pads columns on output; CsvWriter
// emits the same data machine-readably.

#ifndef GEACC_UTIL_TABLE_H_
#define GEACC_UTIL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace geacc {

class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  void SetHeader(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  // Convenience: builds a row from doubles, formatted with %.*f.
  void AddRow(const std::string& label, const std::vector<double>& values,
              int precision = 4);

  // Prints the title, header, and aligned rows.
  void Print(std::ostream& os) const;

  // Writes header + rows as CSV (no title).
  void WriteCsv(std::ostream& os) const;

  const std::string& title() const { return title_; }
  size_t num_rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Escapes a CSV field (quotes if it contains comma/quote/newline).
std::string CsvEscape(const std::string& field);

}  // namespace geacc

#endif  // GEACC_UTIL_TABLE_H_
