// Tiny command-line flag parser for the bench and example binaries.
//
// Flags are registered as pointers to caller-owned variables:
//
//   int reps = 3;
//   geacc::FlagSet flags;
//   flags.AddInt("reps", &reps, "repetitions per point");
//   flags.Parse(argc, argv);   // accepts --reps=5 and --reps 5
//
// Unknown flags are fatal (typos in experiment scripts should not silently
// fall back to defaults). Positional arguments are collected and available
// via positional().

#ifndef GEACC_UTIL_FLAGS_H_
#define GEACC_UTIL_FLAGS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace geacc {

class FlagSet {
 public:
  void AddInt(const std::string& name, int64_t* target,
              const std::string& help);
  void AddInt(const std::string& name, int* target, const std::string& help);
  void AddDouble(const std::string& name, double* target,
                 const std::string& help);
  void AddBool(const std::string& name, bool* target, const std::string& help);
  void AddString(const std::string& name, std::string* target,
                 const std::string& help);

  // Parses argv. On `--help`, prints usage and exits(0). On malformed or
  // unknown flags, prints an error and exits(1).
  void Parse(int argc, char** argv);

  const std::vector<std::string>& positional() const { return positional_; }

  // Current value of every registered flag, rendered as (name, value)
  // strings in registration order. Call after Parse() to record effective
  // settings in run-report metadata.
  std::vector<std::pair<std::string, std::string>> Values() const;

  // Usage text listing every registered flag with its default and help.
  std::string Usage(const std::string& program) const;

 private:
  enum class Type { kInt64, kInt, kDouble, kBool, kString };

  struct Flag {
    std::string name;
    Type type;
    void* target;
    std::string help;
    std::string default_value;
  };

  void Add(const std::string& name, Type type, void* target,
           const std::string& help);
  Flag* Find(const std::string& name);
  // Returns false if `value` cannot be parsed for the flag's type.
  bool Assign(Flag& flag, const std::string& value);
  static std::string Render(const Flag& flag);

  std::vector<Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace geacc

#endif  // GEACC_UTIL_FLAGS_H_
