# Empty compiler generated dependencies file for geacc_gen.
# This may be replaced when dependencies are built.
