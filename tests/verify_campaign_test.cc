// The differential campaign driver (verify/oracle.h) and the
// delta-debugging shrinker (verify/shrink.h).
//
// The campaign's oracle matrix is exercised for real — exact solvers,
// bound certificates, thread identity, repair and WAL differentials — on
// a reduced instance count so the test stays in the seconds range; the
// full 200-instance sweep runs in CI via geacc_audit --campaign.

#include <sstream>
#include <string>

#include "gtest/gtest.h"
#include "io/instance_io.h"
#include "tests/test_util.h"
#include "verify/oracle.h"
#include "verify/shrink.h"

namespace geacc {
namespace {

verify::CampaignConfig SmallConfig() {
  verify::CampaignConfig config;
  config.instances = 8;
  config.repair_period = 4;
  config.wal_period = 4;
  config.trace_mutations = 25;
  config.scratch_dir = ::testing::TempDir();
  return config;
}

std::string Serialize(const Instance& instance) {
  std::ostringstream os;
  WriteInstance(instance, os);
  return os.str();
}

TEST(CampaignTest, CleanCampaignPassesTheFullOracleMatrix) {
  const verify::CampaignResult result = verify::RunCampaign(SmallConfig());
  EXPECT_TRUE(result.ok()) << result.failures.size() << " failure(s), first: "
                           << (result.failures.empty()
                                   ? ""
                                   : result.failures[0].check + ": " +
                                         result.failures[0].detail);
  EXPECT_EQ(result.instances, 8);
  // Every instance runs the per-solver audits plus exact/bound/thread
  // checks; the trace differentials fire on iterations 0 and 4.
  EXPECT_GT(result.checks, result.instances * 10);
}

TEST(CampaignTest, InstancesAreDeterministicPerSeedAndIndex) {
  const verify::CampaignConfig config = SmallConfig();
  const Instance a = verify::MakeCampaignInstance(config, 3);
  const Instance b = verify::MakeCampaignInstance(config, 3);
  const Instance c = verify::MakeCampaignInstance(config, 4);
  EXPECT_EQ(Serialize(a), Serialize(b));
  EXPECT_NE(Serialize(a), Serialize(c));
}

TEST(CampaignTest, InjectedFaultIsDetectedAndShrunk) {
  verify::CampaignConfig config = SmallConfig();
  config.instances = 2;
  config.repair_period = 0;
  config.wal_period = 0;
  config.inject = "extra-pair";
  config.shrink = true;
  const verify::CampaignResult result = verify::RunCampaign(config);
  ASSERT_FALSE(result.ok()) << "the harness must catch an injected fault";
  for (const verify::CampaignFailure& failure : result.failures) {
    EXPECT_EQ(failure.check, "audit/greedy");
    ASSERT_FALSE(failure.instance_text.empty());
    ASSERT_FALSE(failure.shrunk_instance_text.empty());

    // The shrunken repro must parse and still be a valid instance...
    std::istringstream is(failure.shrunk_instance_text);
    std::string error;
    const auto shrunk = ReadInstance(is, &error);
    ASSERT_TRUE(shrunk.has_value()) << error;
    EXPECT_TRUE(shrunk->Validate().empty());

    // ... and be no bigger than the original (in practice 1–2 entities
    // per side; assert a loose bound so the test is not brittle).
    std::istringstream orig_is(failure.instance_text);
    const auto original = ReadInstance(orig_is, &error);
    ASSERT_TRUE(original.has_value()) << error;
    EXPECT_LE(shrunk->num_events(), original->num_events());
    EXPECT_LE(shrunk->num_users(), original->num_users());
    EXPECT_LE(shrunk->num_events() + shrunk->num_users(), 4);
    EXPECT_GT(failure.shrink_stats.predicate_calls, 0);
  }
}

TEST(ShrinkTest, MinimizesToThePredicateBoundary) {
  const Instance start =
      testing::SmallRandomInstance(8, 12, 0.3, 3, /*seed=*/7);
  verify::ShrinkStats stats;
  // "At least 4 events" is minimal at exactly 4 events and 0 of
  // everything else.
  const Instance shrunk = verify::ShrinkInstance(
      start, [](const Instance& candidate) { return candidate.num_events() >= 4; },
      {}, &stats);
  EXPECT_EQ(shrunk.num_events(), 4);
  EXPECT_EQ(shrunk.num_users(), 0);
  EXPECT_TRUE(shrunk.conflicts().empty());
  for (EventId v = 0; v < shrunk.num_events(); ++v) {
    EXPECT_EQ(shrunk.event_capacity(v), 1);
  }
  EXPECT_GT(stats.predicate_calls, 0);
  EXPECT_GT(stats.rounds, 0);
}

TEST(ShrinkTest, KeepsConflictsThePredicateNeeds) {
  const Instance start =
      testing::SmallRandomInstance(6, 4, 0.8, 2, /*seed=*/11);
  ASSERT_GT(start.conflicts().num_conflict_pairs(), 1);
  const Instance shrunk = verify::ShrinkInstance(
      start,
      [](const Instance& candidate) { return !candidate.conflicts().empty(); });
  // Exactly one conflict pair survives, and only its two endpoints.
  EXPECT_EQ(shrunk.conflicts().num_conflict_pairs(), 1);
  EXPECT_EQ(shrunk.num_events(), 2);
  EXPECT_EQ(shrunk.num_users(), 0);
}

TEST(ShrinkDeathTest, RejectsAPassingStartInstance) {
  const Instance start = testing::SmallRandomInstance(3, 3, 0.0, 2, 1);
  EXPECT_DEATH(verify::ShrinkInstance(
                   start, [](const Instance&) { return false; }),
               "does not fail the predicate");
}

TEST(ShrinkTest, PredicateBudgetIsHonored) {
  const Instance start =
      testing::SmallRandomInstance(10, 20, 0.3, 3, /*seed=*/5);
  verify::ShrinkOptions options;
  options.max_predicate_calls = 7;
  verify::ShrinkStats stats;
  verify::ShrinkInstance(
      start, [](const Instance& candidate) { return candidate.num_events() >= 1; },
      options, &stats);
  EXPECT_LE(stats.predicate_calls, 7 + 1);  // one in-flight call may finish
}

}  // namespace
}  // namespace geacc
