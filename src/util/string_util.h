// Small string helpers shared by the flag parser and table writers.

#ifndef GEACC_UTIL_STRING_UTIL_H_
#define GEACC_UTIL_STRING_UTIL_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace geacc {

// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

// Strict numeric parsers: the whole (trimmed) string must parse.
std::optional<int64_t> ParseInt(std::string_view text);
std::optional<double> ParseDouble(std::string_view text);
std::optional<bool> ParseBool(std::string_view text);

// printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

// Human-readable byte count, e.g. "1.5 MiB".
std::string HumanBytes(uint64_t bytes);

// True if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

}  // namespace geacc

#endif  // GEACC_UTIL_STRING_UTIL_H_
