# Empty compiler generated dependencies file for meetup_weekend.
# This may be replaced when dependencies are built.
