// Microbenchmarks: workload generation throughput (synthetic Table III
// instances and the EBSN simulator).

#include <benchmark/benchmark.h>

#include "bench/micro_common.h"

#include "gen/distributions.h"
#include "gen/ebsn.h"
#include "gen/synthetic.h"

namespace geacc {
namespace {

void BM_GenerateSynthetic(benchmark::State& state) {
  SyntheticConfig config;
  config.num_events = static_cast<int>(state.range(0));
  config.num_users = static_cast<int>(state.range(1));
  uint64_t seed = 0;
  for (auto _ : state) {
    config.seed = ++seed;
    benchmark::DoNotOptimize(GenerateSynthetic(config).num_users());
  }
}
BENCHMARK(BM_GenerateSynthetic)->Args({100, 1000})->Args({500, 10000});

void BM_GenerateEbsn(benchmark::State& state) {
  EbsnConfig config = EbsnCityPreset("vancouver");
  uint64_t seed = 0;
  for (auto _ : state) {
    config.seed = ++seed;
    benchmark::DoNotOptimize(GenerateEbsn(config).num_users());
  }
}
BENCHMARK(BM_GenerateEbsn);

void BM_ZipfSampler(benchmark::State& state) {
  const Sampler sampler(DistributionSpec::Zipf(1.3, 10000.0));
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample(rng));
  }
}
BENCHMARK(BM_ZipfSampler);

void BM_ConflictGraphRandom(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const double density = static_cast<double>(state.range(1)) / 100.0;
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ConflictGraph::Random(n, density, rng).num_conflict_pairs());
  }
}
BENCHMARK(BM_ConflictGraphRandom)->Args({100, 25})->Args({500, 25})
    ->Args({100, 90});

}  // namespace
}  // namespace geacc

GEACC_MICRO_MAIN("micro_generators")
