#include "io/instance_io.h"

#include <cmath>
#include <fstream>
#include <memory>
#include <ostream>
#include <sstream>
#include <vector>

#include "io/line_reader.h"
#include "util/string_util.h"

namespace geacc {
namespace {

using io_internal::At;
using io_internal::Fail;
using io_internal::LineReader;
using io_internal::ParseCountLine;

// Parses an entity line "<keyword> <capacity> <attr...>"; appends the
// attributes and capacity. Returns false on malformed input.
bool ParseEntityLine(const std::vector<std::string>& tokens,
                     const std::string& keyword, int dim,
                     std::vector<std::vector<double>>& rows,
                     std::vector<int>& capacities) {
  if (tokens.size() != static_cast<size_t>(dim) + 2 || tokens[0] != keyword) {
    return false;
  }
  const auto capacity = ParseInt(tokens[1]);
  if (!capacity) return false;
  std::vector<double> row(dim);
  for (int j = 0; j < dim; ++j) {
    const auto value = ParseDouble(tokens[2 + j]);
    // strtod happily yields "nan"/"inf"; no finite writer emits them, so
    // treat them as corruption rather than let NaN poison similarities.
    if (!value || !std::isfinite(*value)) return false;
    row[j] = *value;
  }
  rows.push_back(std::move(row));
  capacities.push_back(static_cast<int>(*capacity));
  return true;
}

}  // namespace

void WriteInstance(const Instance& instance, std::ostream& os) {
  os << "geacc-instance v1\n";
  os << "similarity " << instance.similarity().Name() << " "
     << StrFormat("%.17g", instance.similarity().Param()) << "\n";
  os << "dim " << instance.dim() << "\n";
  os << "events " << instance.num_events() << "\n";
  for (EventId v = 0; v < instance.num_events(); ++v) {
    os << "event " << instance.event_capacity(v);
    const double* row = instance.event_attributes().Row(v);
    for (int j = 0; j < instance.dim(); ++j) {
      os << " " << StrFormat("%.17g", row[j]);
    }
    os << "\n";
  }
  os << "users " << instance.num_users() << "\n";
  for (UserId u = 0; u < instance.num_users(); ++u) {
    os << "user " << instance.user_capacity(u);
    const double* row = instance.user_attributes().Row(u);
    for (int j = 0; j < instance.dim(); ++j) {
      os << " " << StrFormat("%.17g", row[j]);
    }
    os << "\n";
  }
  os << "conflicts " << instance.conflicts().num_conflict_pairs() << "\n";
  for (EventId v = 0; v < instance.num_events(); ++v) {
    for (const EventId w : instance.conflicts().ConflictsOf(v)) {
      if (w > v) os << "conflict " << v << " " << w << "\n";
    }
  }
}

std::optional<Instance> ReadInstance(std::istream& is, std::string* error) {
  LineReader reader(is);

  auto tokens = reader.NextTokens();
  if (tokens.size() != 2 || tokens[0] != "geacc-instance" ||
      tokens[1] != "v1") {
    Fail(error, At(reader, "expected header 'geacc-instance v1'"));
    return std::nullopt;
  }

  tokens = reader.NextTokens();
  if (tokens.size() != 3 || tokens[0] != "similarity") {
    Fail(error, At(reader, "expected 'similarity <name> <param>'"));
    return std::nullopt;
  }
  const std::string similarity_name = tokens[1];
  const auto similarity_param = ParseDouble(tokens[2]);
  if (!similarity_param) {
    Fail(error, At(reader, "bad similarity parameter"));
    return std::nullopt;
  }
  std::unique_ptr<SimilarityFunction> similarity =
      MakeSimilarity(similarity_name, *similarity_param);
  if (similarity == nullptr) {
    Fail(error,
         At(reader, "unknown similarity '" + similarity_name + "'"));
    return std::nullopt;
  }

  tokens = reader.NextTokens();
  if (tokens.size() != 2 || tokens[0] != "dim") {
    Fail(error, At(reader, "expected 'dim <d>'"));
    return std::nullopt;
  }
  const auto dim = ParseInt(tokens[1]);
  if (!dim || *dim < 0) {
    Fail(error, At(reader, "bad dimension"));
    return std::nullopt;
  }

  const int64_t num_events = ParseCountLine(reader.NextTokens(), "events");
  if (num_events < 0) {
    Fail(error, At(reader, "expected 'events <count>'"));
    return std::nullopt;
  }
  std::vector<std::vector<double>> event_rows;
  std::vector<int> event_capacities;
  for (int64_t i = 0; i < num_events; ++i) {
    if (!ParseEntityLine(reader.NextTokens(), "event",
                         static_cast<int>(*dim), event_rows,
                         event_capacities)) {
      Fail(error, At(reader, "malformed event line"));
      return std::nullopt;
    }
  }

  const int64_t num_users = ParseCountLine(reader.NextTokens(), "users");
  if (num_users < 0) {
    Fail(error, At(reader, "expected 'users <count>'"));
    return std::nullopt;
  }
  std::vector<std::vector<double>> user_rows;
  std::vector<int> user_capacities;
  for (int64_t i = 0; i < num_users; ++i) {
    if (!ParseEntityLine(reader.NextTokens(), "user", static_cast<int>(*dim),
                         user_rows, user_capacities)) {
      Fail(error, At(reader, "malformed user line"));
      return std::nullopt;
    }
  }

  const int64_t num_conflicts =
      ParseCountLine(reader.NextTokens(), "conflicts");
  if (num_conflicts < 0) {
    Fail(error, At(reader, "expected 'conflicts <count>'"));
    return std::nullopt;
  }
  ConflictGraph conflicts(static_cast<int>(num_events));
  for (int64_t i = 0; i < num_conflicts; ++i) {
    tokens = reader.NextTokens();
    if (tokens.size() != 3 || tokens[0] != "conflict") {
      Fail(error, At(reader, "malformed conflict line"));
      return std::nullopt;
    }
    const auto a = ParseInt(tokens[1]);
    const auto b = ParseInt(tokens[2]);
    if (!a || !b || *a < 0 || *b < 0 || *a >= num_events ||
        *b >= num_events || *a == *b) {
      Fail(error, At(reader, "conflict ids out of range"));
      return std::nullopt;
    }
    conflicts.AddConflict(static_cast<EventId>(*a),
                          static_cast<EventId>(*b));
  }

  // Pad a dimension mismatch check for empty sides: FromRows of an empty
  // list yields dim 0, so force the declared dim.
  AttributeMatrix events =
      event_rows.empty()
          ? AttributeMatrix(0, static_cast<int>(*dim))
          : AttributeMatrix::FromRows(event_rows);
  AttributeMatrix users = user_rows.empty()
                              ? AttributeMatrix(0, static_cast<int>(*dim))
                              : AttributeMatrix::FromRows(user_rows);
  return Instance(std::move(events), std::move(event_capacities),
                  std::move(users), std::move(user_capacities),
                  std::move(conflicts), std::move(similarity));
}

bool WriteInstanceToFile(const Instance& instance, const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  WriteInstance(instance, os);
  return static_cast<bool>(os);
}

std::optional<Instance> ReadInstanceFromFile(const std::string& path,
                                             std::string* error) {
  std::ifstream is(path);
  if (!is) {
    Fail(error, "cannot open '" + path + "'");
    return std::nullopt;
  }
  return ReadInstance(is, error);
}

void WriteArrangement(const Arrangement& arrangement, std::ostream& os) {
  os << "geacc-arrangement v1\n";
  os << "pairs " << arrangement.size() << "\n";
  for (const auto& [v, u] : arrangement.SortedPairs()) {
    os << "pair " << v << " " << u << "\n";
  }
}

std::optional<Arrangement> ReadArrangement(std::istream& is,
                                           const Instance& instance,
                                           std::string* error) {
  LineReader reader(is);
  auto tokens = reader.NextTokens();
  if (tokens.size() != 2 || tokens[0] != "geacc-arrangement" ||
      tokens[1] != "v1") {
    Fail(error, At(reader, "expected header 'geacc-arrangement v1'"));
    return std::nullopt;
  }
  const int64_t num_pairs = ParseCountLine(reader.NextTokens(), "pairs");
  if (num_pairs < 0) {
    Fail(error, At(reader, "expected 'pairs <count>'"));
    return std::nullopt;
  }
  Arrangement arrangement(instance.num_events(), instance.num_users());
  for (int64_t i = 0; i < num_pairs; ++i) {
    tokens = reader.NextTokens();
    if (tokens.size() != 3 || tokens[0] != "pair") {
      Fail(error, At(reader, "malformed pair line"));
      return std::nullopt;
    }
    const auto v = ParseInt(tokens[1]);
    const auto u = ParseInt(tokens[2]);
    if (!v || !u || *v < 0 || *u < 0 || *v >= instance.num_events() ||
        *u >= instance.num_users()) {
      Fail(error, At(reader, "pair ids out of range"));
      return std::nullopt;
    }
    if (arrangement.Contains(static_cast<EventId>(*v),
                             static_cast<UserId>(*u))) {
      Fail(error, At(reader, "duplicate pair"));
      return std::nullopt;
    }
    arrangement.Add(static_cast<EventId>(*v), static_cast<UserId>(*u));
  }
  return arrangement;
}

bool WriteArrangementToFile(const Arrangement& arrangement,
                            const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  WriteArrangement(arrangement, os);
  return static_cast<bool>(os);
}

std::optional<Arrangement> ReadArrangementFromFile(const std::string& path,
                                                   const Instance& instance,
                                                   std::string* error) {
  std::ifstream is(path);
  if (!is) {
    Fail(error, "cannot open '" + path + "'");
    return std::nullopt;
  }
  return ReadArrangement(is, instance, error);
}

}  // namespace geacc
