// Embeddable arrangement service: lock-free snapshot reads over a
// single-writer, batched mutation pipeline (DESIGN.md §11).
//
// Architecture: the service owns a DynamicInstance + IncrementalArranger
// that only its writer thread touches. Mutations from any thread enter a
// bounded MPSC queue via Submit(); the writer drains up to batch_size of
// them at a time, validates each against the live instance (untrusted
// input never CHECK-fails the process), applies the valid ones through the
// incremental repair engine, appends them to the WAL (when configured),
// and then publishes one immutable ServiceSnapshot for the whole batch —
// so snapshot construction amortizes across the batch, and readers always
// observe a consistent post-batch state.
//
// Backpressure: a full queue fails Submit() with kOverloaded immediately —
// admission control instead of unbounded growth; callers retry or shed.
// Every accepted mutation gets a monotonically increasing ticket;
// WaitForTicket() blocks until its batch is applied *and* published, and
// reports whether validation rejected it. Reads are wait-free with respect
// to the writer: snapshot() is one atomic shared_ptr load.
//
// Consistency contract (tested in tests/service_test.cc): the published
// arrangement always equals a single-threaded IncrementalArranger replay
// of the applied-mutation sequence (the WAL order) — bit-identical MaxSum
// and pair set — regardless of how Submit() calls interleave. Recovery
// replays the WAL through Recover() and lands on the same state.
//
// Thread-safety: Submit/WaitForTicket/Flush/snapshot/read helpers are safe
// from any thread. Stop() (and the destructor) drains the queue, joins the
// writer, and closes the WAL.

#ifndef GEACC_SVC_SERVICE_H_
#define GEACC_SVC_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "core/instance.h"
#include "dyn/dynamic_instance.h"
#include "dyn/incremental_arranger.h"
#include "dyn/mutation.h"
#include "svc/paged_checkpoint.h"
#include "svc/snapshot.h"
#include "svc/wal.h"

namespace geacc::svc {

enum class SvcStatus {
  kOk = 0,
  kOverloaded,       // queue full — retry later or shed load
  kRejected,         // mutation failed validation against the live state
  kInvalidArgument,  // malformed id / k / ticket
  kShuttingDown,
};

const char* SvcStatusName(SvcStatus status);

struct ServiceOptions {
  // Mutations applied (and snapshots published) per writer wakeup; larger
  // batches amortize snapshot builds at the cost of staleness.
  int batch_size = 64;

  // Bound on queued-but-unapplied mutations; Submit() past this returns
  // kOverloaded.
  int queue_depth = 1024;

  // Repair engine configuration (index backend, budget, drift fallback).
  RepairOptions repair;

  // Solve the initial instance with the fallback solver before serving
  // (otherwise the service starts with an empty arrangement).
  bool bootstrap_full_resolve = true;

  // Append applied mutations to this WAL for crash recovery; empty
  // disables durability.
  std::string wal_path;

  // Page-based checkpoint file (svc/paged_checkpoint.h): written every
  // `checkpoint_interval_batches` applied batches and at Stop(), read by
  // Recover() to skip replaying the WAL prefix it covers. Empty disables
  // checkpointing (recovery then replays the full WAL). Only meaningful
  // together with wal_path — the WAL remains the source of truth.
  std::string paged_checkpoint_path;
  int checkpoint_interval_batches = 64;
  uint32_t checkpoint_page_size = 8192;

  // Test-only fault injection: stall the writer this long per batch, to
  // make backpressure observable on fast machines.
  int writer_stall_ms_for_test = 0;
};

struct SubmitResult {
  SvcStatus status = SvcStatus::kOk;
  int64_t ticket = -1;  // valid when status == kOk
};

// Point-in-time service counters for Stats() and the wire kStatsReply.
struct ServiceStatsView {
  int64_t epoch = 0;
  int64_t applied_seq = 0;
  int64_t pairs = 0;
  int32_t active_events = 0;
  int32_t active_users = 0;
  int32_t event_slots = 0;
  int32_t user_slots = 0;
  double max_sum = 0.0;
  int32_t queued = 0;      // mutations waiting in the MPSC queue
  int64_t overloads = 0;   // cumulative Submit() rejections
};

// Empty string when `mutation` is applicable to `instance` right now:
// ids in range and active, capacities ≥ 1, attribute arity == dim, finite
// attributes. The service runs this before every apply so wire-delivered
// garbage degrades to kRejected instead of aborting the process.
std::string ValidateMutation(const DynamicInstance& instance,
                             const Mutation& mutation);

// Same checks against a published snapshot. Best-effort admission control
// for front-ends (the server runs it at dispatch so a wire client gets a
// synchronous error for obvious garbage); the writer-side check above
// stays authoritative — a mutation can still lose a race and be rejected
// at apply time.
std::string ValidateMutation(const ServiceSnapshot& snapshot,
                             const Mutation& mutation);

class ArrangementService {
 public:
  // Copies `initial` as the epoch-0 state. When options.wal_path is set,
  // the WAL is created (truncated) and seeded with the initial instance.
  ArrangementService(const Instance& initial, ServiceOptions options);

  // Rebuilds a service from its WAL: replays every logged mutation through
  // a fresh repair engine (same options ⇒ bit-identical state), then
  // resumes appending to the same WAL. Returns nullptr with a diagnostic
  // if the WAL is unreadable. `options.wal_path` must name the WAL.
  //
  // When options.paged_checkpoint_path holds a readable checkpoint,
  // recovery restores the checkpointed state directly and replays only
  // the WAL suffix past it — O(dirty state + suffix) instead of
  // O(history) — landing on the identical bits either way. Any checkpoint
  // problem (torn write, truncation, stale format) silently degrades to
  // the full replay.
  static std::unique_ptr<ArrangementService> Recover(
      ServiceOptions options, std::string* error = nullptr);

  ~ArrangementService();

  ArrangementService(const ArrangementService&) = delete;
  ArrangementService& operator=(const ArrangementService&) = delete;

  // ----- write path -----

  // Enqueues `mutation` for the writer thread. O(1); never blocks on the
  // writer.
  SubmitResult Submit(Mutation mutation);

  // Enqueues a whole-arrangement replacement (shard coordinator install,
  // DESIGN.md §16): the writer swaps the maintained arrangement for
  // exactly `pairs` (slot ids, admission order) and adopts
  // `max_sum_bits` as the maintained sum. Serialized with mutations via
  // the same queue and ticket space; infeasible installs reject their
  // ticket and leave the arrangement empty. Installs are NOT WAL-logged —
  // after recovery the coordinator's next repair pass re-installs.
  SubmitResult SubmitInstall(std::vector<std::pair<EventId, UserId>> pairs,
                             uint64_t max_sum_bits);

  // Blocks until `ticket`'s batch is applied and its snapshot published.
  // Returns kOk, kRejected (failed validation), or kInvalidArgument for a
  // ticket never issued.
  SvcStatus WaitForTicket(int64_t ticket);

  // Blocks until every mutation accepted so far is applied and published.
  void Flush();

  // Drains the queue, stops the writer thread, closes the WAL. Subsequent
  // Submit() calls return kShuttingDown; reads keep working against the
  // final snapshot.
  void Stop();

  // ----- read path (all lock-free against the writer) -----

  // The current published snapshot; never null.
  std::shared_ptr<const ServiceSnapshot> snapshot() const {
    return snapshot_.load(std::memory_order_acquire);
  }

  // Events assigned to `user`. kInvalidArgument for out-of-range ids;
  // tombstoned users yield an empty list.
  SvcStatus GetAssignments(UserId user, std::vector<EventId>* out) const;

  // Users attending `event`, sorted ascending for deterministic output.
  SvcStatus GetAttendees(EventId event, std::vector<UserId>* out) const;

  // Top-k candidate events for `user` (see ServiceSnapshot::TopKEvents).
  SvcStatus TopKEvents(UserId user, int k, std::vector<ScoredEvent>* out) const;

  // Unfiltered scoring edges for users in [first_user, first_user +
  // user_count) (see ServiceSnapshot::Candidates). kInvalidArgument on
  // negative arguments; the range itself is clamped to the slot space.
  SvcStatus Candidates(UserId first_user, int user_count,
                       std::vector<ScoredCandidate>* out) const;

  ServiceStatsView Stats() const;

  // Writes a compacted dense instance+arrangement checkpoint of the
  // current snapshot (safe to call concurrently with everything).
  bool Checkpoint(const std::string& path, std::string* error = nullptr) const;

  const ServiceOptions& options() const { return options_; }

 private:
  struct PendingMutation {
    Mutation mutation;
    int64_t ticket = 0;
    // Arrangement install op (SubmitInstall): when set, `mutation` is
    // ignored and the writer replaces the arrangement wholesale.
    bool is_install = false;
    std::vector<std::pair<EventId, UserId>> install_pairs;
    uint64_t install_max_sum_bits = 0;
  };

  // Builds instance_/arranger_ (and, when `fresh_wal`, creates the WAL);
  // does not publish or start the writer — the public ctor and Recover()
  // finish that themselves.
  ArrangementService(const Instance& initial, ServiceOptions options,
                     bool fresh_wal);

  // Checkpoint-recovery path: adopts an already-restored instance; the
  // arranger starts empty (the caller restores its state next). Never
  // bootstraps or touches the WAL/checkpoint files.
  ArrangementService(std::unique_ptr<DynamicInstance> instance,
                     ServiceOptions options);

  // Attempts the checkpoint fast path; returns nullptr when the
  // checkpoint is unusable (caller falls back to full replay).
  static std::unique_ptr<ArrangementService> TryRecoverFromPagedCheckpoint(
      const ServiceOptions& options, const WalContents& contents);

  // Opens options_.paged_checkpoint_path (no-op when unset); a failed
  // open logs and disables checkpointing rather than failing the service.
  void OpenPagedCheckpointStore();

  // Writer-thread only: serialize the live state into the store. Failures
  // are logged and swallowed — the WAL still covers everything.
  void WritePagedCheckpoint();

  void PublishInitial();
  void StartWriter();
  void WriterLoop();
  void ApplyBatch(std::vector<PendingMutation> batch);
  void PublishLocked(int64_t last_ticket,
                     const std::vector<int64_t>& rejected_now);

  ServiceOptions options_;
  std::unique_ptr<DynamicInstance> instance_;     // writer thread only
  std::unique_ptr<IncrementalArranger> arranger_;  // writer thread only
  WalWriter wal_;                                  // writer thread only
  std::unique_ptr<PagedCheckpointStore> paged_checkpoint_;  // writer only
  int64_t wal_mutations_ = 0;           // applied mutations in the WAL
  int batches_since_checkpoint_ = 0;    // writer thread only

  std::atomic<std::shared_ptr<const ServiceSnapshot>> snapshot_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;    // writer waits for work
  std::condition_variable applied_cv_;  // WaitForTicket/Flush wait here
  std::deque<PendingMutation> queue_;
  int64_t next_ticket_ = 0;       // last issued ticket
  int64_t applied_seq_ = 0;       // last ticket applied AND published
  int64_t overloads_ = 0;
  std::unordered_set<int64_t> rejected_;   // recent rejected tickets...
  std::deque<int64_t> rejected_order_;     // ...pruned FIFO past 4096
  bool stopping_ = false;

  std::thread writer_;
};

}  // namespace geacc::svc

#endif  // GEACC_SVC_SERVICE_H_
