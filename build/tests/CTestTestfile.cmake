# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/approximation_property_test[1]_include.cmake")
include("/root/repo/build/tests/arrangement_test[1]_include.cmake")
include("/root/repo/build/tests/bplus_tree_test[1]_include.cmake")
include("/root/repo/build/tests/conflict_graph_test[1]_include.cmake")
include("/root/repo/build/tests/ebsn_test[1]_include.cmake")
include("/root/repo/build/tests/experiment_test[1]_include.cmake")
include("/root/repo/build/tests/flow_test[1]_include.cmake")
include("/root/repo/build/tests/flow_variants_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_configurations_test[1]_include.cmake")
include("/root/repo/build/tests/generators_test[1]_include.cmake")
include("/root/repo/build/tests/golden_paper_example_test[1]_include.cmake")
include("/root/repo/build/tests/greedy_equivalence_test[1]_include.cmake")
include("/root/repo/build/tests/index_test[1]_include.cmake")
include("/root/repo/build/tests/instance_io_test[1]_include.cmake")
include("/root/repo/build/tests/instance_stats_test[1]_include.cmake")
include("/root/repo/build/tests/instance_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/online_greedy_test[1]_include.cmake")
include("/root/repo/build/tests/paper_shapes_test[1]_include.cmake")
include("/root/repo/build/tests/preprocess_test[1]_include.cmake")
include("/root/repo/build/tests/similarity_test[1]_include.cmake")
include("/root/repo/build/tests/solvers_test[1]_include.cmake")
include("/root/repo/build/tests/tag_import_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
