#include "core/arrangement.h"

#include <algorithm>

#include "core/instance.h"
#include "util/check.h"
#include "util/memory.h"
#include "util/string_util.h"

namespace geacc {

Arrangement::Arrangement(int num_events, int num_users)
    : num_events_(num_events), num_users_(num_users) {
  GEACC_CHECK_GE(num_events, 0);
  GEACC_CHECK_GE(num_users, 0);
  user_events_.resize(num_users);
  event_loads_.assign(num_events, 0);
}

void Arrangement::Resize(int num_events, int num_users) {
  GEACC_CHECK_GE(num_events, num_events_);
  GEACC_CHECK_GE(num_users, num_users_);
  num_events_ = num_events;
  num_users_ = num_users;
  user_events_.resize(num_users);
  event_loads_.resize(num_events, 0);
}

void Arrangement::Add(EventId v, UserId u) {
  GEACC_DCHECK(v >= 0 && v < num_events_);
  GEACC_DCHECK(u >= 0 && u < num_users_);
  GEACC_DCHECK(!Contains(v, u));
  user_events_[u].push_back(v);
  ++event_loads_[v];
  ++num_pairs_;
}

void Arrangement::AddUnchecked(EventId v, UserId u) {
  GEACC_CHECK(u >= 0 && u < num_users_);
  user_events_[u].push_back(v);
  if (v >= 0 && v < num_events_) ++event_loads_[v];
  ++num_pairs_;
}

void Arrangement::Remove(EventId v, UserId u) {
  // Always-on bounds checks: Remove is fed by untrusted mutation streams
  // (WAL replay, wire protocol), and an out-of-range id here would be an
  // out-of-bounds write to event_loads_ / user_events_ in Release builds
  // where DCHECKs compile out.
  GEACC_CHECK(v >= 0 && v < num_events_)
      << "Remove: event " << v << " out of range [0, " << num_events_ << ")";
  GEACC_CHECK(u >= 0 && u < num_users_)
      << "Remove: user " << u << " out of range [0, " << num_users_ << ")";
  auto& events = user_events_[u];
  const auto it = std::find(events.begin(), events.end(), v);
  GEACC_CHECK(it != events.end()) << "pair {" << v << "," << u << "} absent";
  events.erase(it);
  --event_loads_[v];
  --num_pairs_;
}

bool Arrangement::Contains(EventId v, UserId u) const {
  GEACC_DCHECK(u >= 0 && u < num_users_);
  const auto& events = user_events_[u];
  return std::find(events.begin(), events.end(), v) != events.end();
}

const std::vector<EventId>& Arrangement::EventsOf(UserId u) const {
  GEACC_DCHECK(u >= 0 && u < num_users_);
  return user_events_[u];
}

int Arrangement::EventLoad(EventId v) const {
  GEACC_DCHECK(v >= 0 && v < num_events_);
  return event_loads_[v];
}

int Arrangement::UserLoad(UserId u) const {
  GEACC_DCHECK(u >= 0 && u < num_users_);
  return static_cast<int>(user_events_[u].size());
}

std::vector<std::pair<EventId, UserId>> Arrangement::SortedPairs() const {
  std::vector<std::pair<EventId, UserId>> pairs;
  pairs.reserve(static_cast<size_t>(num_pairs_));
  for (UserId u = 0; u < num_users_; ++u) {
    for (const EventId v : user_events_[u]) pairs.emplace_back(v, u);
  }
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

double Arrangement::MaxSum(const Instance& instance) const {
  GEACC_CHECK_EQ(instance.num_events(), num_events_);
  GEACC_CHECK_EQ(instance.num_users(), num_users_);
  double sum = 0.0;
  for (UserId u = 0; u < num_users_; ++u) {
    for (const EventId v : user_events_[u]) sum += instance.Similarity(v, u);
  }
  return sum;
}

std::string Arrangement::Validate(const Instance& instance) const {
  if (instance.num_events() != num_events_ ||
      instance.num_users() != num_users_) {
    return "arrangement sized for a different instance";
  }
  for (EventId v = 0; v < num_events_; ++v) {
    if (event_loads_[v] > instance.event_capacity(v)) {
      return StrFormat("event %d over capacity: %d > %d", v, event_loads_[v],
                       instance.event_capacity(v));
    }
  }
  for (UserId u = 0; u < num_users_; ++u) {
    const auto& events = user_events_[u];
    if (static_cast<int>(events.size()) > instance.user_capacity(u)) {
      return StrFormat("user %d over capacity: %zu > %d", u, events.size(),
                       instance.user_capacity(u));
    }
    for (size_t i = 0; i < events.size(); ++i) {
      if (instance.Similarity(events[i], u) <= 0.0) {
        return StrFormat("pair {%d,%d} has non-positive similarity",
                         events[i], u);
      }
      for (size_t j = i + 1; j < events.size(); ++j) {
        if (events[i] == events[j]) {
          return StrFormat("duplicate pair {%d,%d}", events[i], u);
        }
        if (instance.conflicts().AreConflicting(events[i], events[j])) {
          return StrFormat("user %d assigned conflicting events %d and %d", u,
                           events[i], events[j]);
        }
      }
    }
  }
  return "";
}

uint64_t Arrangement::ByteEstimate() const {
  uint64_t bytes = VectorBytes(event_loads_);
  for (const auto& events : user_events_) bytes += VectorBytes(events);
  return bytes;
}

}  // namespace geacc
