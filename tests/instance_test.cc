// Unit tests for Instance and InstanceBuilder.

#include <gtest/gtest.h>

#include <memory>

#include "core/instance.h"
#include "tests/test_util.h"

namespace geacc {
namespace {

Instance TinyInstance() {
  InstanceBuilder builder;
  builder.SetSimilarity(std::make_unique<EuclideanSimilarity>(10.0));
  builder.AddEvent({0.0, 0.0}, 2);
  builder.AddEvent({10.0, 10.0}, 1);
  builder.AddUser({1.0, 1.0}, 1);
  builder.AddUser({9.0, 9.0}, 3);
  builder.AddConflict(0, 1);
  return builder.Build();
}

TEST(Instance, BasicAccessors) {
  const Instance instance = TinyInstance();
  EXPECT_EQ(instance.num_events(), 2);
  EXPECT_EQ(instance.num_users(), 2);
  EXPECT_EQ(instance.dim(), 2);
  EXPECT_EQ(instance.event_capacity(0), 2);
  EXPECT_EQ(instance.user_capacity(1), 3);
  EXPECT_EQ(instance.max_user_capacity(), 3);
  EXPECT_EQ(instance.max_event_capacity(), 2);
  EXPECT_EQ(instance.total_event_capacity(), 3);
  EXPECT_EQ(instance.total_user_capacity(), 4);
  EXPECT_TRUE(instance.conflicts().AreConflicting(0, 1));
  EXPECT_EQ(instance.Validate(), "");
}

TEST(Instance, SimilaritySymmetricEndpoints) {
  const Instance instance = TinyInstance();
  // Event 0 at origin, user 0 at (1,1): closer than user 1 at (9,9).
  EXPECT_GT(instance.Similarity(0, 0), instance.Similarity(0, 1));
  // Event 1 at (10,10) prefers user 1.
  EXPECT_GT(instance.Similarity(1, 1), instance.Similarity(1, 0));
}

TEST(Instance, CloneIsDeepAndEqual) {
  const Instance instance = TinyInstance();
  const Instance clone = instance.Clone();
  EXPECT_EQ(clone.num_events(), instance.num_events());
  EXPECT_EQ(clone.num_users(), instance.num_users());
  for (EventId v = 0; v < instance.num_events(); ++v) {
    for (UserId u = 0; u < instance.num_users(); ++u) {
      EXPECT_DOUBLE_EQ(clone.Similarity(v, u), instance.Similarity(v, u));
    }
  }
  EXPECT_TRUE(clone.conflicts().AreConflicting(0, 1));
}

TEST(Instance, ValidateRejectsNonPositiveCapacity) {
  InstanceBuilder builder;
  builder.AddEvent({1.0}, 0);
  builder.AddUser({1.0}, 1);
  const Instance instance = builder.Build();
  EXPECT_NE(instance.Validate(), "");
}

TEST(Instance, BuilderDefaultsSimilarityToEuclideanMaxAttribute) {
  InstanceBuilder builder;
  builder.AddEvent({5.0}, 1);
  builder.AddUser({5.0}, 1);
  const Instance instance = builder.Build();
  EXPECT_EQ(instance.similarity().Name(), "euclidean");
  EXPECT_DOUBLE_EQ(instance.Similarity(0, 0), 1.0);  // identical vectors
}

TEST(Instance, EmptyInstance) {
  InstanceBuilder builder;
  builder.SetSimilarity(std::make_unique<EuclideanSimilarity>(1.0));
  const Instance instance = builder.Build();
  EXPECT_EQ(instance.num_events(), 0);
  EXPECT_EQ(instance.num_users(), 0);
  EXPECT_EQ(instance.max_user_capacity(), 0);
  EXPECT_EQ(instance.Validate(), "");
}

TEST(Instance, DebugStringMentionsShape) {
  const Instance instance = TinyInstance();
  const std::string debug = instance.DebugString();
  EXPECT_NE(debug.find("|V|=2"), std::string::npos);
  EXPECT_NE(debug.find("|U|=2"), std::string::npos);
  EXPECT_NE(debug.find("euclidean"), std::string::npos);
}

TEST(Instance, ByteEstimatePositive) {
  EXPECT_GT(TinyInstance().ByteEstimate(), 0u);
}

TEST(Instance, MismatchedDimensionsDie) {
  InstanceBuilder builder;
  builder.AddEvent({1.0, 2.0}, 1);
  builder.AddUser({1.0}, 1);
  EXPECT_DEATH(builder.Build(), "GEACC_CHECK failed");
}

TEST(Instance, TableInstanceHelperExposesExactSims) {
  const Instance instance = geacc::testing::MakeTableInstance(
      {{0.5, 0.25}}, {1}, {1, 1}, {});
  EXPECT_DOUBLE_EQ(instance.Similarity(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(instance.Similarity(0, 1), 0.25);
}

}  // namespace
}  // namespace geacc
