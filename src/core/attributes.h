// Dense row-major attribute storage for events and users.
//
// Each entity carries a d-dimensional attribute vector l ∈ [0, T]^d
// (paper Definitions 1–2). Rows are stored contiguously so that similarity
// evaluation — the innermost loop of every solver — is cache-friendly.

#ifndef GEACC_CORE_ATTRIBUTES_H_
#define GEACC_CORE_ATTRIBUTES_H_

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace geacc {

class AttributeMatrix {
 public:
  AttributeMatrix() : rows_(0), dim_(0) {}

  // Allocates rows × dim zeros.
  AttributeMatrix(int rows, int dim)
      : rows_(rows), dim_(dim),
        data_(static_cast<size_t>(rows) * static_cast<size_t>(dim), 0.0) {
    GEACC_CHECK_GE(rows, 0);
    GEACC_CHECK_GE(dim, 0);
  }

  // Builds from explicit rows; every row must have the same length.
  static AttributeMatrix FromRows(const std::vector<std::vector<double>>& rows);

  // Appends `row` (length dim()) as a new last row; amortized O(d).
  // Invalidates pointers previously returned by Row()/MutableRow().
  void AppendRow(const std::vector<double>& row);

  int rows() const { return rows_; }
  int dim() const { return dim_; }

  const double* Row(int i) const {
    GEACC_DCHECK(i >= 0 && i < rows_);
    return data_.data() + static_cast<size_t>(i) * dim_;
  }

  double* MutableRow(int i) {
    GEACC_DCHECK(i >= 0 && i < rows_);
    return data_.data() + static_cast<size_t>(i) * dim_;
  }

  double At(int i, int j) const {
    GEACC_DCHECK(j >= 0 && j < dim_);
    return Row(i)[j];
  }

  void Set(int i, int j, double value) {
    GEACC_DCHECK(j >= 0 && j < dim_);
    MutableRow(i)[j] = value;
  }

  // Heap bytes held by the matrix (for logical memory accounting).
  uint64_t ByteEstimate() const {
    return static_cast<uint64_t>(data_.capacity()) * sizeof(double);
  }

 private:
  int rows_;
  int dim_;
  std::vector<double> data_;
};

// Squared Euclidean distance between two length-`dim` vectors.
double SquaredEuclideanDistance(const double* a, const double* b, int dim);

}  // namespace geacc

#endif  // GEACC_CORE_ATTRIBUTES_H_
