// The disk-backed iDistance must be indistinguishable from the in-memory
// one except in cost profile: identical enumeration (bit-identical
// similarities, same tie-break), identical solver results, and resident
// memory bounded by the pool budget even when the tree file is many times
// larger (ISSUE acceptance: 4× over budget).

#include <gtest/gtest.h>
#include <sys/stat.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "algo/greedy_solver.h"
#include "core/attributes.h"
#include "core/similarity.h"
#include "index/idistance_index.h"
#include "index/idistance_paged.h"
#include "index/knn_index.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace geacc {
namespace {

AttributeMatrix RandomPoints(int n, int dim, uint64_t seed) {
  Rng rng(seed);
  AttributeMatrix points(n, dim);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < dim; ++j) {
      points.Set(i, j, rng.UniformReal(0.0, 100.0));
    }
  }
  return points;
}

StorageOptions TinyStorage() {
  StorageOptions storage;
  storage.page_size = 512;
  storage.budget_bytes = 2 * 512;  // two frames — the minimum pool
  return storage;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

// Drains both cursors fully and requires the exact same (id, similarity)
// sequence — similarity compared as doubles with ==, i.e. bit-identical
// up to signed-zero equivalence.
void ExpectIdenticalEnumeration(const KnnIndex& expected,
                                const KnnIndex& actual,
                                const double* query) {
  auto e = expected.CreateCursor(query);
  auto a = actual.CreateCursor(query);
  int position = 0;
  for (;;) {
    const std::optional<Neighbor> en = e->Next();
    const std::optional<Neighbor> an = a->Next();
    ASSERT_EQ(en.has_value(), an.has_value()) << "at position " << position;
    if (!en.has_value()) break;
    ASSERT_EQ(en->id, an->id) << "at position " << position;
    ASSERT_EQ(en->similarity, an->similarity) << "at position " << position;
    ++position;
  }
  // Exhausted cursors stay exhausted.
  EXPECT_FALSE(a->Next().has_value());
}

TEST(PagedIDistance, EnumerationMatchesInMemoryBackend) {
  const EuclideanSimilarity similarity(400.0);
  for (const uint64_t seed : {1u, 2u, 3u}) {
    const AttributeMatrix points = RandomPoints(300, 4, seed);
    const IDistanceIndex in_memory(points, similarity);
    const PagedIDistanceIndex paged(points, similarity, TinyStorage());
    ASSERT_EQ(paged.num_points(), in_memory.num_points());
    EXPECT_EQ(paged.num_pivots(), in_memory.num_pivots());

    const AttributeMatrix queries = RandomPoints(20, 4, seed + 100);
    for (int q = 0; q < queries.rows(); ++q) {
      ExpectIdenticalEnumeration(in_memory, paged, queries.Row(q));
    }
    // Query() is the cursor prefix; spot-check a few k values.
    for (const int k : {1, 7, 300}) {
      const auto expected = in_memory.Query(queries.Row(0), k);
      const auto actual = paged.Query(queries.Row(0), k);
      ASSERT_EQ(expected.size(), actual.size()) << "k=" << k;
      for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(expected[i].id, actual[i].id);
        EXPECT_EQ(expected[i].similarity, actual[i].similarity);
      }
    }
  }
}

TEST(PagedIDistance, FactoryNameAndNonMetricFallback) {
  const AttributeMatrix points = RandomPoints(20, 3, 7);
  const EuclideanSimilarity euclid(400.0);
  const CosineSimilarity cosine;
  auto paged = MakeIndex("idistance-paged", points, euclid, TinyStorage());
  ASSERT_NE(paged, nullptr);
  EXPECT_EQ(paged->Name(), "idistance-paged");
  // The 3-arg factory reaches the paged backend with default options.
  auto via_default = MakeIndex("idistance-paged", points, euclid);
  ASSERT_NE(via_default, nullptr);
  EXPECT_EQ(via_default->Name(), "idistance-paged");
  // Distance-keyed partitions are meaningless for non-metric similarity.
  auto fallback = MakeIndex("idistance-paged", points, cosine, TinyStorage());
  ASSERT_NE(fallback, nullptr);
  EXPECT_EQ(fallback->Name(), "linear");
}

TEST(PagedIDistance, RemovesBackingFileOnDestruction) {
  const AttributeMatrix points = RandomPoints(50, 3, 9);
  const EuclideanSimilarity similarity(400.0);
  std::string path;
  {
    const PagedIDistanceIndex index(points, similarity, TinyStorage());
    path = index.file_path();
    EXPECT_TRUE(FileExists(path));
  }
  EXPECT_FALSE(FileExists(path));
}

TEST(PagedIDistance, OutOfCoreFourTimesOverBudget) {
  // 20k 6-d points → key-tree file far past 4× the 2-frame pool budget,
  // yet peak resident frame memory never exceeds the budget.
  const AttributeMatrix points = RandomPoints(20000, 6, 11);
  const EuclideanSimilarity similarity(1000.0);
  const StorageOptions storage = TinyStorage();
  const PagedIDistanceIndex index(points, similarity, storage);

  EXPECT_GE(index.file_bytes(), 4 * storage.budget_bytes)
      << "instance not actually out of core";
  // And it still answers correctly: top-1 of a stored point is itself.
  const auto top = index.Query(points.Row(123), 1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].id, 123);

  const storage::PoolStats stats = index.pool_stats();
  EXPECT_LE(stats.peak_resident_bytes, storage.budget_bytes);
  EXPECT_GT(stats.faults, 0) << "nothing streamed from disk?";

  // ByteEstimate reports resident memory, not the file.
  EXPECT_LT(index.ByteEstimate(), index.file_bytes());
}

TEST(GreedySolver, PagedBackendIsBitIdenticalToInMemory) {
  for (const uint64_t seed : {11u, 22u, 33u}) {
    const Instance instance =
        geacc::testing::SmallRandomInstance(8, 40, 0.2, 3, seed);

    SolverOptions in_memory_options;
    in_memory_options.index = "idistance";
    SolverOptions paged_options;
    paged_options.index = "idistance-paged";
    paged_options.storage_budget_bytes = 1024;  // force real paging

    const SolveResult expected = GreedySolver(in_memory_options).Solve(instance);
    const SolveResult actual = GreedySolver(paged_options).Solve(instance);
    EXPECT_EQ(expected.arrangement.SortedPairs(),
              actual.arrangement.SortedPairs())
        << "seed " << seed;
    // Same pairs added in the same greedy order → identical MaxSum bits.
    EXPECT_EQ(expected.arrangement.MaxSum(instance),
              actual.arrangement.MaxSum(instance));
  }
}

TEST(SolverOptions, ValidationCoversStorageKnobs) {
  SolverOptions options;
  options.index = "idistance-paged";
  EXPECT_TRUE(ValidateSolverOptions(options).empty());
  options.storage_budget_bytes = 512;  // below the 1 KiB floor
  EXPECT_FALSE(ValidateSolverOptions(options).empty());
}

}  // namespace
}  // namespace geacc
