#include "flow/spfa_min_cost_flow.h"

#include <algorithm>
#include <deque>
#include <limits>

#include "obs/stats.h"
#include "util/memory.h"

namespace geacc {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kEps = 1e-12;

}  // namespace

SpfaMinCostFlow::SpfaMinCostFlow(FlowGraph* graph, int source, int sink)
    : graph_(graph), source_(source), sink_(sink) {
  GEACC_CHECK(graph != nullptr);
  GEACC_CHECK(source >= 0 && source < graph->num_nodes());
  GEACC_CHECK(sink >= 0 && sink < graph->num_nodes());
  GEACC_CHECK_NE(source, sink);
  distance_.assign(graph->num_nodes(), kInf);
  parent_arc_.assign(graph->num_nodes(), -1);
  in_queue_.assign(graph->num_nodes(), false);
}

bool SpfaMinCostFlow::FindPath() {
  std::fill(distance_.begin(), distance_.end(), kInf);
  std::fill(parent_arc_.begin(), parent_arc_.end(), -1);
  std::fill(in_queue_.begin(), in_queue_.end(), false);
  distance_[source_] = 0.0;
  std::deque<int> queue{source_};
  in_queue_[source_] = true;
  // Batched locally and flushed once per search so the inner loop stays
  // counter-free.
  int64_t pops = 0;
  int64_t relaxations = 0;
  while (!queue.empty()) {
    const int node = queue.front();
    queue.pop_front();
    in_queue_[node] = false;
    ++pops;
    for (const int arc : graph_->OutArcs(node)) {
      if (graph_->ResidualCapacity(arc) <= 0) continue;
      const int head = graph_->Head(arc);
      const double candidate = distance_[node] + graph_->Cost(arc);
      if (candidate < distance_[head] - kEps) {
        ++relaxations;
        distance_[head] = candidate;
        parent_arc_[head] = arc;
        if (!in_queue_[head]) {
          // SLF heuristic: promising nodes jump the queue.
          if (!queue.empty() && candidate < distance_[queue.front()]) {
            queue.push_front(head);
          } else {
            queue.push_back(head);
          }
          in_queue_[head] = true;
        }
      }
    }
  }
  GEACC_STATS_ADD("flow.spfa.queue_pops", pops);
  GEACC_STATS_ADD("flow.spfa.relaxations", relaxations);
  return distance_[sink_] != kInf;
}

double SpfaMinCostFlow::PathCost() const {
  double cost = 0.0;
  for (int node = sink_; node != source_;) {
    const int arc = parent_arc_[node];
    cost += graph_->Cost(arc);
    node = graph_->Tail(arc);
  }
  return cost;
}

int64_t SpfaMinCostFlow::Bottleneck(int64_t cap) const {
  int64_t bottleneck = cap;
  for (int node = sink_; node != source_;) {
    const int arc = parent_arc_[node];
    bottleneck = std::min(bottleneck, graph_->ResidualCapacity(arc));
    node = graph_->Tail(arc);
  }
  return bottleneck;
}

void SpfaMinCostFlow::PushPath(int64_t amount) {
  for (int node = sink_; node != source_;) {
    const int arc = parent_arc_[node];
    graph_->Push(arc, amount);
    node = graph_->Tail(arc);
  }
}

int64_t SpfaMinCostFlow::Augment(int64_t max_units) {
  GEACC_CHECK_GT(max_units, 0);
  if (!FindPath()) return 0;
  const int64_t amount = Bottleneck(max_units);
  GEACC_CHECK_GT(amount, 0);
  const double cost = PathCost();
  PushPath(amount);
  total_flow_ += amount;
  total_cost_ += cost * static_cast<double>(amount);
  GEACC_STATS_ADD("flow.augmenting_paths", 1);
  GEACC_STATS_ADD("flow.units_pushed", amount);
  return amount;
}

int64_t SpfaMinCostFlow::AugmentIfCheaper(double cost_limit) {
  if (!FindPath()) return 0;
  const double cost = PathCost();
  if (cost >= cost_limit) return 0;
  PushPath(1);
  total_flow_ += 1;
  total_cost_ += cost;
  GEACC_STATS_ADD("flow.augmenting_paths", 1);
  GEACC_STATS_ADD("flow.units_pushed", 1);
  return 1;
}

int64_t SpfaMinCostFlow::RunToMaxFlow() {
  int64_t pushed = 0;
  while (true) {
    const int64_t step = Augment(std::numeric_limits<int64_t>::max());
    if (step == 0) return pushed;
    pushed += step;
  }
}

uint64_t SpfaMinCostFlow::ByteEstimate() const {
  return VectorBytes(distance_) + VectorBytes(parent_arc_) +
         in_queue_.capacity() / 8;
}

}  // namespace geacc
