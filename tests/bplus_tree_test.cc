// Unit and property tests for the B+-tree container, cross-checked against
// std::multimap (the behavioral specification).

#include <gtest/gtest.h>

#include <map>
#include <tuple>
#include <vector>

#include "container/bplus_tree.h"
#include "util/rng.h"

namespace geacc {
namespace {

using SmallTree = BPlusTree<int, int, 4>;  // tiny fanout → deep trees
using DoubleTree = BPlusTree<double, int, 16>;

TEST(BPlusTree, EmptyTree) {
  SmallTree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.size(), 0);
  EXPECT_EQ(tree.height(), 0);
  EXPECT_EQ(tree.begin(), tree.end());
  EXPECT_EQ(tree.LowerBound(5), tree.end());
  tree.DebugValidate();
}

TEST(BPlusTree, SingleInsert) {
  SmallTree tree;
  tree.Insert(7, 70);
  EXPECT_EQ(tree.size(), 1);
  EXPECT_EQ(tree.height(), 1);
  auto it = tree.begin();
  EXPECT_EQ(it.key(), 7);
  EXPECT_EQ(it.value(), 70);
  ++it;
  EXPECT_EQ(it, tree.end());
  tree.DebugValidate();
}

TEST(BPlusTree, InsertAscendingSplits) {
  SmallTree tree;
  for (int i = 0; i < 100; ++i) tree.Insert(i, i * 10);
  EXPECT_EQ(tree.size(), 100);
  EXPECT_GT(tree.height(), 1);
  tree.DebugValidate();
  int expected = 0;
  for (auto it = tree.begin(); it != tree.end(); ++it, ++expected) {
    ASSERT_EQ(it.key(), expected);
    ASSERT_EQ(it.value(), expected * 10);
  }
  EXPECT_EQ(expected, 100);
}

TEST(BPlusTree, InsertDescending) {
  SmallTree tree;
  for (int i = 99; i >= 0; --i) tree.Insert(i, i);
  tree.DebugValidate();
  int expected = 0;
  for (auto it = tree.begin(); it != tree.end(); ++it, ++expected) {
    ASSERT_EQ(it.key(), expected);
  }
  EXPECT_EQ(expected, 100);
}

TEST(BPlusTree, BulkLoadMatchesIteration) {
  std::vector<std::pair<int, int>> entries;
  for (int i = 0; i < 500; ++i) entries.emplace_back(i * 2, i);
  SmallTree tree;
  tree.BulkLoad(entries);
  tree.DebugValidate();
  EXPECT_EQ(tree.size(), 500);
  size_t position = 0;
  for (auto it = tree.begin(); it != tree.end(); ++it, ++position) {
    ASSERT_EQ(it.key(), entries[position].first);
    ASSERT_EQ(it.value(), entries[position].second);
  }
}

TEST(BPlusTree, BulkLoadThenInsert) {
  std::vector<std::pair<int, int>> entries;
  for (int i = 0; i < 200; ++i) entries.emplace_back(i * 4, i);
  SmallTree tree;
  tree.BulkLoad(entries);
  for (int i = 0; i < 200; ++i) tree.Insert(i * 4 + 1, -i);
  tree.DebugValidate();
  EXPECT_EQ(tree.size(), 400);
  int previous = -1;
  for (auto it = tree.begin(); it != tree.end(); ++it) {
    ASSERT_GE(it.key(), previous);
    previous = it.key();
  }
}

TEST(BPlusTree, LowerUpperBoundSemantics) {
  SmallTree tree;
  for (const int key : {10, 20, 20, 20, 30}) tree.Insert(key, key);
  EXPECT_EQ(tree.LowerBound(5).key(), 10);
  EXPECT_EQ(tree.LowerBound(10).key(), 10);
  EXPECT_EQ(tree.LowerBound(15).key(), 20);
  EXPECT_EQ(tree.LowerBound(20).key(), 20);
  EXPECT_EQ(tree.UpperBound(20).key(), 30);
  EXPECT_EQ(tree.UpperBound(30), tree.end());
  EXPECT_EQ(tree.LowerBound(31), tree.end());
  // Exactly three 20s between the bounds.
  int count = 0;
  for (auto it = tree.LowerBound(20); it != tree.UpperBound(20); ++it) {
    ASSERT_EQ(it.key(), 20);
    ++count;
  }
  EXPECT_EQ(count, 3);
}

TEST(BPlusTree, BidirectionalIteration) {
  SmallTree tree;
  for (int i = 0; i < 50; ++i) tree.Insert(i, i);
  // Walk to the end, then back.
  auto it = tree.end();
  for (int expected = 49; expected >= 0; --expected) {
    --it;
    ASSERT_EQ(it.key(), expected);
  }
  EXPECT_EQ(it, tree.begin());
}

TEST(BPlusTree, DecrementFromBound) {
  SmallTree tree;
  for (const int key : {10, 20, 30}) tree.Insert(key, key);
  auto it = tree.LowerBound(20);
  --it;
  EXPECT_EQ(it.key(), 10);
}

class BPlusTreePropertyTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(BPlusTreePropertyTest, AgreesWithMultimap) {
  const auto& [n, seed] = GetParam();
  Rng rng(seed);
  SmallTree tree;
  std::multimap<int, int> reference;
  // Mixed bulk-load + inserts with many duplicate keys.
  std::vector<std::pair<int, int>> initial;
  for (int i = 0; i < n / 2; ++i) {
    const int key = static_cast<int>(rng.UniformInt(0, n / 4));
    initial.emplace_back(key, i);
  }
  std::sort(initial.begin(), initial.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  tree.BulkLoad(initial);
  for (const auto& [key, value] : initial) reference.emplace(key, value);
  for (int i = 0; i < n / 2; ++i) {
    const int key = static_cast<int>(rng.UniformInt(0, n / 4));
    tree.Insert(key, 1000 + i);
    reference.emplace(key, 1000 + i);
  }
  tree.DebugValidate();
  ASSERT_EQ(tree.size(), static_cast<int64_t>(reference.size()));

  // Full iteration yields the same key sequence.
  auto tree_it = tree.begin();
  for (const auto& [key, value] : reference) {
    ASSERT_NE(tree_it, tree.end());
    ASSERT_EQ(tree_it.key(), key);
    ++tree_it;
  }
  EXPECT_EQ(tree_it, tree.end());

  // Bounds agree for every probe key.
  for (int probe = -1; probe <= n / 4 + 1; ++probe) {
    const auto ref_lower = reference.lower_bound(probe);
    const auto tree_lower = tree.LowerBound(probe);
    if (ref_lower == reference.end()) {
      ASSERT_EQ(tree_lower, tree.end()) << "probe " << probe;
    } else {
      ASSERT_NE(tree_lower, tree.end());
      ASSERT_EQ(tree_lower.key(), ref_lower->first) << "probe " << probe;
    }
    const auto ref_upper = reference.upper_bound(probe);
    const auto tree_upper = tree.UpperBound(probe);
    if (ref_upper == reference.end()) {
      ASSERT_EQ(tree_upper, tree.end()) << "probe " << probe;
    } else {
      ASSERT_NE(tree_upper, tree.end());
      ASSERT_EQ(tree_upper.key(), ref_upper->first) << "probe " << probe;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BPlusTreePropertyTest,
    ::testing::Combine(::testing::Values(8, 64, 300, 2000),
                       ::testing::Values(1, 2, 3)));

TEST(BPlusTree, DoubleKeysForIDistance) {
  // The iDistance use case: double stretched keys, int payloads.
  DoubleTree tree;
  std::vector<std::pair<double, int>> entries;
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    entries.emplace_back(rng.UniformReal(0.0, 100.0), i);
  }
  std::sort(entries.begin(), entries.end());
  tree.BulkLoad(entries);
  tree.DebugValidate();
  // Range scan [25, 75) matches a manual filter.
  int counted = 0;
  for (auto it = tree.LowerBound(25.0); it != tree.end() && it.key() < 75.0;
       ++it) {
    ++counted;
  }
  int expected = 0;
  for (const auto& [key, value] : entries) {
    if (key >= 25.0 && key < 75.0) ++expected;
  }
  EXPECT_EQ(counted, expected);
}

TEST(BPlusTree, ByteEstimateGrows) {
  SmallTree small, large;
  for (int i = 0; i < 10; ++i) small.Insert(i, i);
  for (int i = 0; i < 1000; ++i) large.Insert(i, i);
  EXPECT_GT(large.ByteEstimate(), small.ByteEstimate());
}

}  // namespace
}  // namespace geacc
