// Parameter distributions for workload generation (paper Table III).
//
// Attribute values and capacities are drawn from Uniform, Normal, or Zipf
// distributions. Zipf follows the paper's attribute setting: ranks
// 1..range with P(k) ∝ k^(−skew), yielding heavily skewed values; Normal
// samples are clamped to the valid range; capacities are rounded to
// integers ≥ 1 ("all generated capacity values are converted into
// integers").

#ifndef GEACC_GEN_DISTRIBUTIONS_H_
#define GEACC_GEN_DISTRIBUTIONS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.h"

namespace geacc {

enum class DistributionKind { kUniform, kNormal, kZipf };

struct DistributionSpec {
  DistributionKind kind = DistributionKind::kUniform;
  // Uniform: [lo, hi] = [p1, p2].
  // Normal: mean = p1, stddev = p2.
  // Zipf: skew = p1, integer range = p2 (ranks 1..p2).
  double p1 = 0.0;
  double p2 = 1.0;

  static DistributionSpec Uniform(double lo, double hi) {
    return {DistributionKind::kUniform, lo, hi};
  }
  static DistributionSpec Normal(double mean, double stddev) {
    return {DistributionKind::kNormal, mean, stddev};
  }
  static DistributionSpec Zipf(double skew, double range) {
    return {DistributionKind::kZipf, skew, range};
  }

  std::string DebugString() const;
};

// Stateful sampler; Zipf precomputes its CDF table once.
class Sampler {
 public:
  explicit Sampler(const DistributionSpec& spec);

  // One raw draw (Uniform in [lo,hi]; Normal unclamped; Zipf rank in
  // [1, range]).
  double Sample(Rng& rng) const;

  // Attribute draw clamped to [0, max_value] (paper: l^i ∈ [0, T]).
  double SampleAttribute(Rng& rng, double max_value) const;

  // Capacity draw: rounded to an integer and clamped to ≥ 1.
  int SampleCapacity(Rng& rng) const;

  const DistributionSpec& spec() const { return spec_; }

 private:
  DistributionSpec spec_;
  std::vector<double> zipf_cdf_;  // cumulative probabilities for ranks 1..n
};

// Parses "uniform:lo:hi", "normal:mean:stddev", "zipf:skew:range" (used by
// bench flags). Returns false on malformed input.
bool ParseDistributionSpec(const std::string& text, DistributionSpec* spec);

}  // namespace geacc

#endif  // GEACC_GEN_DISTRIBUTIONS_H_
