# Empty dependencies file for geacc_solve.
# This may be replaced when dependencies are built.
