file(REMOVE_RECURSE
  "CMakeFiles/greedy_equivalence_test.dir/greedy_equivalence_test.cc.o"
  "CMakeFiles/greedy_equivalence_test.dir/greedy_equivalence_test.cc.o.d"
  "greedy_equivalence_test"
  "greedy_equivalence_test.pdb"
  "greedy_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greedy_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
