// Validates a `geacc-bench v1` report produced by any bench's --json flag.
// Exit 0 iff the file parses and matches the schema; used by CI to smoke-
// test the report pipeline.
//
//   build/bench/validate_report [--require-storage] [--require-kernels] \
//       [--require-shards] [--require-slots] out.json
//
// --require-storage additionally demands at least one point carrying a
// "storage" section with sane buffer-pool numbers (budget and page size
// non-zero, page size a power of two) — CI runs micro_storage under this
// flag so a silently dropped section fails the job.
//
// --require-kernels likewise demands at least one point carrying a
// "kernels" section with sane numbers (a known dispatch level, the
// build's block size, and at least one batched or scalar eval) — CI runs
// micro_similarity under this flag.
//
// --require-shards demands at least one point carrying a "shards" section
// with sane topology numbers (positive shard count and fleet width, one
// per_shard entry per shard with monotone percentiles) — CI runs the
// loadgen fleet smoke under this flag.
//
// --require-slots demands at least one point carrying a "slots" section
// with sane joint-solve numbers (positive slot count, scheduled events
// and leaf solves consistent with the search accounting) — CI runs
// fig_slotted under this flag.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/bench_report.h"
#include "obs/json.h"

namespace {

bool StorageSane(const geacc::obs::StorageSummary& storage,
                 std::string* error) {
  if (storage.budget_bytes == 0) {
    *error = "storage.budget_bytes is zero";
    return false;
  }
  if (storage.page_size == 0 ||
      (storage.page_size & (storage.page_size - 1)) != 0) {
    *error = "storage.page_size is not a power of two";
    return false;
  }
  if (storage.file_bytes != 0 && storage.file_bytes < storage.page_size) {
    *error = "storage.file_bytes smaller than one page";
    return false;
  }
  return true;
}

bool KernelsSane(const geacc::obs::KernelsSummary& kernels,
                 std::string* error) {
  if (kernels.dispatch != "scalar" && kernels.dispatch != "avx2") {
    *error = "kernels.dispatch is not a known level";
    return false;
  }
  if (kernels.block <= 0) {
    *error = "kernels.block is not positive";
    return false;
  }
  if (kernels.batched_evals == 0 && kernels.scalar_evals == 0) {
    *error = "kernels section with zero evals of either kind";
    return false;
  }
  return true;
}

bool ShardsSane(const geacc::obs::ShardsSummary& shards, std::string* error) {
  if (shards.shard_count <= 0) {
    *error = "shards.shard_count is not positive";
    return false;
  }
  if (shards.fleet <= 0) {
    *error = "shards.fleet is not positive";
    return false;
  }
  if (shards.per_shard.size() != static_cast<size_t>(shards.shard_count)) {
    *error = "shards.per_shard size disagrees with shard_count";
    return false;
  }
  int64_t total_rpcs = 0;
  for (const geacc::obs::ShardLatency& shard : shards.per_shard) {
    if (shard.shard < 0 || shard.shard >= shards.shard_count) {
      *error = "shards.per_shard entry with out-of-range shard id";
      return false;
    }
    if (shard.p50_ms > shard.p95_ms || shard.p95_ms > shard.p99_ms) {
      *error = "shards.per_shard entry with non-monotone percentiles";
      return false;
    }
    total_rpcs += shard.requests;
  }
  if (total_rpcs == 0) {
    *error = "shards section with zero shard RPCs";
    return false;
  }
  return true;
}

bool SlotsSane(const geacc::obs::SlotsSummary& slots, std::string* error) {
  if (slots.num_slots <= 0) {
    *error = "slots.num_slots is not positive";
    return false;
  }
  if (slots.scheduled_events < 0) {
    *error = "slots.scheduled_events is negative";
    return false;
  }
  if (slots.slottings_considered <= 0) {
    *error = "slots.slottings_considered is not positive";
    return false;
  }
  if (slots.leaf_solves > slots.slottings_considered) {
    *error = "slots.leaf_solves exceeds slottings_considered";
    return false;
  }
  if (slots.joint_max_sum < 0.0) {
    *error = "slots.joint_max_sum is negative";
    return false;
  }
  return true;
}

// Bound-layer counters (algo/bounds.h) carried in the free-form counter
// map: clique cuts are a subset of the prunes they are credited against,
// so each must stay within its enclosing search counter when both appear.
bool BoundCountersSane(const geacc::obs::BenchPoint& point,
                       std::string* error) {
  const auto counter = [&](const char* name, int64_t* out) {
    const auto it = point.counters.find(name);
    if (it == point.counters.end()) return false;
    *out = it->second;
    return true;
  };
  int64_t cuts = 0;
  if (counter("prune.bound.clique_cuts", &cuts)) {
    if (cuts < 0) {
      *error = "prune.bound.clique_cuts is negative";
      return false;
    }
    int64_t pruned = 0;
    if (counter("prune.nodes_pruned", &pruned) && cuts > pruned) {
      *error = "prune.bound.clique_cuts exceeds prune.nodes_pruned";
      return false;
    }
  }
  if (counter("slot.bound.clique_cuts", &cuts)) {
    if (cuts < 0) {
      *error = "slot.bound.clique_cuts is negative";
      return false;
    }
    int64_t considered = 0;
    if (counter("slot.slottings_considered", &considered) &&
        cuts > considered) {
      *error = "slot.bound.clique_cuts exceeds slot.slottings_considered";
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool require_storage = false;
  bool require_kernels = false;
  bool require_shards = false;
  bool require_slots = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--require-storage") == 0) {
      require_storage = true;
    } else if (std::strcmp(argv[i], "--require-kernels") == 0) {
      require_kernels = true;
    } else if (std::strcmp(argv[i], "--require-shards") == 0) {
      require_shards = true;
    } else if (std::strcmp(argv[i], "--require-slots") == 0) {
      require_slots = true;
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      path = nullptr;
      break;
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr,
                 "usage: %s [--require-storage] [--require-kernels] "
                 "[--require-shards] [--require-slots] REPORT.json\n",
                 argv[0]);
    return 2;
  }
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "%s: cannot open\n", path);
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  geacc::obs::JsonValue json;
  std::string error;
  if (!geacc::obs::JsonValue::Parse(buffer.str(), &json, &error)) {
    std::fprintf(stderr, "%s: JSON parse error: %s\n", path, error.c_str());
    return 1;
  }
  if (!geacc::obs::ValidateBenchReport(json, &error)) {
    std::fprintf(stderr, "%s: schema violation: %s\n", path, error.c_str());
    return 1;
  }

  geacc::obs::BenchReport report;
  if (!report.FromJson(json, &error)) {
    std::fprintf(stderr, "%s: %s\n", path, error.c_str());
    return 1;
  }

  size_t storage_points = 0;
  size_t kernel_points = 0;
  size_t shard_points = 0;
  size_t slot_points = 0;
  for (const geacc::obs::BenchPoint& point : report.points) {
    if (!BoundCountersSane(point, &error)) {
      std::fprintf(stderr, "%s: point '%s': %s\n", path, point.label.c_str(),
                   error.c_str());
      return 1;
    }
    if (point.has_storage) {
      ++storage_points;
      if (!StorageSane(point.storage, &error)) {
        std::fprintf(stderr, "%s: point '%s': %s\n", path, point.label.c_str(),
                     error.c_str());
        return 1;
      }
      std::printf(
          "  storage[%s]: budget=%llu page=%llu file=%llu hits=%lld "
          "faults=%lld evictions=%lld flushes=%lld\n",
          point.label.c_str(),
          static_cast<unsigned long long>(point.storage.budget_bytes),
          static_cast<unsigned long long>(point.storage.page_size),
          static_cast<unsigned long long>(point.storage.file_bytes),
          static_cast<long long>(point.storage.hits),
          static_cast<long long>(point.storage.faults),
          static_cast<long long>(point.storage.evictions),
          static_cast<long long>(point.storage.flushes));
    }
    if (point.has_kernels) {
      ++kernel_points;
      if (!KernelsSane(point.kernels, &error)) {
        std::fprintf(stderr, "%s: point '%s': %s\n", path, point.label.c_str(),
                     error.c_str());
        return 1;
      }
      std::printf(
          "  kernels[%s]: dispatch=%s block=%lld batched=%lld scalar=%lld\n",
          point.label.c_str(), point.kernels.dispatch.c_str(),
          static_cast<long long>(point.kernels.block),
          static_cast<long long>(point.kernels.batched_evals),
          static_cast<long long>(point.kernels.scalar_evals));
    }
    if (point.has_shards) {
      ++shard_points;
      if (!ShardsSane(point.shards, &error)) {
        std::fprintf(stderr, "%s: point '%s': %s\n", path, point.label.c_str(),
                     error.c_str());
        return 1;
      }
      std::printf("  shards[%s]: shard_count=%d fleet=%d qps=%.0f\n",
                  point.label.c_str(), point.shards.shard_count,
                  point.shards.fleet, point.shards.qps);
      for (const geacc::obs::ShardLatency& shard : point.shards.per_shard) {
        std::printf("    shard %d: %lld rpcs, p50=%.3fms p95=%.3fms "
                    "p99=%.3fms\n",
                    shard.shard, static_cast<long long>(shard.requests),
                    shard.p50_ms, shard.p95_ms, shard.p99_ms);
      }
    }
    if (point.has_slots) {
      ++slot_points;
      if (!SlotsSane(point.slots, &error)) {
        std::fprintf(stderr, "%s: point '%s': %s\n", path, point.label.c_str(),
                     error.c_str());
        return 1;
      }
      std::printf(
          "  slots[%s]: num_slots=%lld scheduled=%lld considered=%lld "
          "leaves=%lld joint_max_sum=%.6g\n",
          point.label.c_str(), static_cast<long long>(point.slots.num_slots),
          static_cast<long long>(point.slots.scheduled_events),
          static_cast<long long>(point.slots.slottings_considered),
          static_cast<long long>(point.slots.leaf_solves),
          point.slots.joint_max_sum);
    }
  }
  if (require_storage && storage_points == 0) {
    std::fprintf(stderr, "%s: --require-storage: no point carries a storage "
                 "section\n", path);
    return 1;
  }
  if (require_kernels && kernel_points == 0) {
    std::fprintf(stderr, "%s: --require-kernels: no point carries a kernels "
                 "section\n", path);
    return 1;
  }
  if (require_shards && shard_points == 0) {
    std::fprintf(stderr, "%s: --require-shards: no point carries a shards "
                 "section\n", path);
    return 1;
  }
  if (require_slots && slot_points == 0) {
    std::fprintf(stderr, "%s: --require-slots: no point carries a slots "
                 "section\n", path);
    return 1;
  }

  std::printf("%s: valid geacc-bench v%d report — bench '%s', rev %s, %zu "
              "point(s), %zu with storage, %zu with kernels, %zu with "
              "shards, %zu with slots\n",
              path, geacc::obs::kBenchReportVersion, report.bench.c_str(),
              report.git_rev.c_str(), report.points.size(), storage_points,
              kernel_points, shard_points, slot_points);
  return 0;
}
