#include "storage/buffer_pool.h"

#include <algorithm>
#include <cstring>

#include "obs/stats.h"
#include "util/check.h"

namespace geacc::storage {

BufferPool::BufferPool(PageFile* file, uint64_t budget_bytes) : file_(file) {
  GEACC_CHECK(file_ != nullptr);
  const uint64_t page = file_->page_size();
  const uint64_t frames = std::max<uint64_t>(2, budget_bytes / page);
  frames_.resize(static_cast<size_t>(frames));
  stats_.budget_bytes = std::max<uint64_t>(budget_bytes, 2 * page);
}

BufferPool::~BufferPool() {
  // Dirty frames are the caller's responsibility (FlushAll + Commit); a
  // pool dropped without flushing simply loses uncommitted writes, which
  // is the crash-consistency contract anyway.
  for (const Frame& frame : frames_) {
    GEACC_DCHECK(frame.pins == 0) << "buffer pool destroyed with live pins";
  }
}

bool BufferPool::EnsureBuffer(Frame* frame) {
  if (frame->buffer != nullptr) return true;
  frame->buffer = std::make_unique<uint8_t[]>(file_->payload_capacity());
  stats_.resident_bytes += file_->page_size();
  stats_.peak_resident_bytes =
      std::max(stats_.peak_resident_bytes, stats_.resident_bytes);
  return true;
}

bool BufferPool::FlushFrame(Frame* frame, std::string* error) {
  if (!frame->dirty) return true;
  if (!file_->WritePage(frame->page_id, frame->type, frame->buffer.get(),
                        frame->payload_bytes, error)) {
    return false;
  }
  frame->dirty = false;
  ++stats_.flushes;
  GEACC_STATS_ADD("storage.pool.flushes", 1);
  return true;
}

int BufferPool::FindVictim(std::string* error) {
  // First preference: a frame that never held a page (cold start).
  for (size_t i = 0; i < frames_.size(); ++i) {
    if (frames_[i].page_id == kInvalidPageId && frames_[i].pins == 0) {
      return static_cast<int>(i);
    }
  }
  // Clock sweep: two full passes guarantee either a victim (every
  // unpinned frame loses its reference bit in pass one) or proof that
  // everything is pinned.
  const int n = frame_count();
  for (int step = 0; step < 2 * n; ++step) {
    Frame& frame = frames_[clock_hand_];
    const int index = clock_hand_;
    clock_hand_ = (clock_hand_ + 1) % n;
    if (frame.pins > 0) continue;
    if (frame.referenced) {
      frame.referenced = false;
      continue;
    }
    if (!FlushFrame(&frame, error)) return -2;
    resident_.erase(frame.page_id);
    frame.page_id = kInvalidPageId;
    ++stats_.evictions;
    GEACC_STATS_ADD("storage.pool.evictions", 1);
    return index;
  }
  if (error != nullptr) {
    *error = "buffer pool exhausted: every frame is pinned (budget too "
             "small for the working set)";
  }
  return -1;
}

bool BufferPool::Fetch(PageId id, PageRef* out, std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = resident_.find(id);
  if (it != resident_.end()) {
    Frame& frame = frames_[it->second];
    frame.referenced = true;
    ++frame.pins;
    ++stats_.hits;
    GEACC_STATS_ADD("storage.pool.hits", 1);
    *out = PageRef(this, it->second);
    return true;
  }
  const int victim = FindVictim(error);
  if (victim < 0) return false;
  Frame& frame = frames_[victim];
  EnsureBuffer(&frame);
  if (!file_->ReadPage(id, frame.buffer.get(), &frame.type,
                       &frame.payload_bytes, error)) {
    return false;
  }
  frame.page_id = id;
  frame.dirty = false;
  frame.referenced = true;
  frame.pins = 1;
  resident_[id] = victim;
  ++stats_.faults;
  GEACC_STATS_ADD("storage.pool.faults", 1);
  *out = PageRef(this, victim);
  return true;
}

bool BufferPool::Create(uint16_t type, PageRef* out, std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  const int victim = FindVictim(error);
  if (victim < 0) return false;
  Frame& frame = frames_[victim];
  EnsureBuffer(&frame);
  const PageId id = file_->Allocate();
  std::memset(frame.buffer.get(), 0, file_->payload_capacity());
  frame.page_id = id;
  frame.type = type;
  frame.payload_bytes = 0;
  frame.dirty = true;
  frame.referenced = true;
  frame.pins = 1;
  resident_[id] = victim;
  GEACC_STATS_ADD("storage.pool.creates", 1);
  *out = PageRef(this, victim);
  return true;
}

bool BufferPool::FlushAll(std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Frame& frame : frames_) {
    if (frame.page_id == kInvalidPageId) continue;
    if (!FlushFrame(&frame, error)) return false;
  }
  return true;
}

PoolStats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void BufferPool::Unpin(int frame) {
  std::lock_guard<std::mutex> lock(mu_);
  Frame& f = frames_[frame];
  GEACC_DCHECK(f.pins > 0);
  --f.pins;
}

PageId BufferPool::PageRef::id() const {
  return pool_->frames_[frame_].page_id;
}
uint16_t BufferPool::PageRef::type() const {
  return pool_->frames_[frame_].type;
}
uint8_t* BufferPool::PageRef::data() {
  return pool_->frames_[frame_].buffer.get();
}
const uint8_t* BufferPool::PageRef::data() const {
  return pool_->frames_[frame_].buffer.get();
}
uint32_t BufferPool::PageRef::payload_bytes() const {
  return pool_->frames_[frame_].payload_bytes;
}
void BufferPool::PageRef::set_payload_bytes(uint32_t bytes) {
  GEACC_DCHECK(bytes <= pool_->file_->payload_capacity());
  pool_->frames_[frame_].payload_bytes = bytes;
}
void BufferPool::PageRef::MarkDirty() {
  pool_->frames_[frame_].dirty = true;
}

void BufferPool::PageRef::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
    frame_ = -1;
  }
}

}  // namespace geacc::storage
