// Differential correctness campaign: solver matrix × seeded instances ×
// oracle checks.
//
// The exact-solver literature validates heuristics by differential
// comparison against exact oracles on seeded instance families; the
// paper's own theorems give checkable approximation certificates. This
// driver sweeps a deterministic family of small instances (exact solvers
// stay tractable at |V| ≤ 6, |U| ≤ 8) and asserts, per instance:
//
//   * audit/<solver>       every registry solver's arrangement passes
//                          AuditArrangement (maximality included where the
//                          solver guarantees it)
//   * exact/prune,
//     exact/exhaustive     Prune-GEACC ≡ exhaustive ≡ brute force (exact
//                          optimum, Section IV) under the configured
//                          bound mode
//   * exact/bitwise        seedless Prune-GEACC (clique-cover bounds
//                          active, greedy warm start off) returns the
//                          bit-identical arrangement — same SortedPairs —
//                          as the exhaustive search: the tightened
//                          pruning removed no DFS-first optimal leaf
//                          (algo/bounds.h contract)
//   * bounds/greedy        MaxSum(Greedy) ≥ OPT / (1 + max c_u), ≤ OPT
//                          (Theorem 3 certificate)
//   * bounds/mincostflow   MaxSum(MCF) ≥ OPT / max c_u, ≤ OPT (Theorem 2),
//                          and MCF ≡ OPT when CF = ∅ (Lemma 1)
//   * threads/<solver>     solve at threads=1 and threads=N are
//                          bit-identical (same SortedPairs)
//
// plus, on a sampled subset of iterations, further differentials:
//
//   * paged/greedy         Greedy over the disk-backed "idistance-paged"
//                          backend (tiny pool budget, so even these small
//                          trees page through disk) is bit-identical to
//                          Greedy over the in-memory "idistance" backend
//   * repair/trace         an IncrementalArranger replaying a generated
//                          mutation trace stays feasible after every
//                          mutation, its incremental MaxSum matches a
//                          from-scratch recomputation, its dense snapshot
//                          passes the auditor, and a fresh re-solve of the
//                          same snapshot is feasible too
//   * wal/recovery         an ArrangementService fed the same trace over
//                          its write path, then recovered from its WAL,
//                          lands on a bit-identical snapshot (MaxSum and
//                          pair set)
//   * sharded/N=2,
//     sharded/N=3          a ShardCoordinator over N in-process score-only
//                          shard services, seeded with the same instance,
//                          repairs to the bit-identical greedy-sortall
//                          arrangement (same pair set, same MaxSum bits)
//                          and its merged arrangement passes the auditor
//                          (DESIGN.md §16)
//   * slotted/greedy       slot-greedy's joint (slotting, arrangement) on
//                          a seeded slotted instance passes AuditSlotted,
//                          its derived conflict graph matches pairwise
//                          WindowsConflict recomputation, and its MaxSum
//                          matches a from-scratch re-sum bit-for-bit
//   * slotted/exact        slot-exact's branch-and-bound is bit-identical
//                          (slotting, pair set, MaxSum bits) to exhaustive
//                          enumeration of every complete slotting with the
//                          same exact leaf solver (DESIGN.md §17)
//
// Failing instance-level checks are (optionally) minimized with the
// delta-debugging shrinker before being serialized into the failure
// record, so a CI artifact is a minimal repro rather than a random seed.
//
// Fault injection (`inject = "extra-pair"`) deliberately corrupts the
// greedy solver's output before auditing — the harness's own self-test:
// a campaign that cannot detect and shrink an injected violation is not
// protecting anything.

#ifndef GEACC_VERIFY_ORACLE_H_
#define GEACC_VERIFY_ORACLE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/instance.h"
#include "verify/shrink.h"

namespace geacc::verify {

struct CampaignConfig {
  // Number of seeded instances swept through the solver matrix.
  int instances = 200;
  uint64_t seed = 42;

  // Family size bounds; the exact oracles (brute force / exhaustive) cap
  // what is tractable. Events are drawn from [3, max_events] so an
  // injected extra pair always exists, users from [2, max_users]. The
  // conflict-aware bounds (algo/bounds.h) keep the clique-bounded exact
  // solvers cheap well past the former 5×8 family, so the default matrix
  // now stretches to 6×8 — the binding cost is the unbounded brute-force
  // and exhaustive oracles themselves (memoized across checks by the
  // campaign's OracleCache, but still exponential): worst-case
  // low-density draws blow up ~30× per extra user past |U| = 8
  // (measured; a single 6×9 tail instance runs for minutes, so the
  // extra-user sweep stays opt-in via --max_users).
  int max_events = 6;
  int max_users = 8;

  // Conflict-density override for the family: < 0 draws each instance's
  // density from the mixed set {0, 0.25, 0.5, 1.0}; ≥ 0 forces every
  // instance to that density (the CI dense-conflict pass uses 1.0).
  double conflict_density = -1.0;

  // SolverOptions::bound for every exact solver in the matrix ("lemma6",
  // "clique", or "clique-lp") — the whole check list must hold at every
  // level, so CI sweeps this.
  std::string bound = "clique";

  // Lane count for the serial-vs-threaded bit-identity check.
  int threads = 3;

  // Run the trace-level differentials every k-th iteration (0 = never).
  int repair_period = 5;
  int wal_period = 10;
  int trace_mutations = 40;

  // Run the paged-backend differential every k-th iteration (0 = never):
  // greedy over "idistance-paged" (tiny buffer-pool budget, so even the
  // campaign's small trees page through disk) must be bit-identical to
  // greedy over the in-memory "idistance" backend — same SortedPairs,
  // same MaxSum bits (DESIGN.md §14).
  int paged_period = 25;

  // Run the sharded-topology differential every k-th iteration (0 =
  // never): a ShardCoordinator over N ∈ {2, 3} in-process score-only
  // shards, fed this iteration's instance, must repair to the
  // bit-identical greedy-sortall arrangement (DESIGN.md §16).
  int shard_period = 20;

  // Run the slotted joint-solver differentials every k-th iteration (0 =
  // never) over a seeded slotted family (S ≤ 3, |V| ≤ 4, |U| ≤ 6, so the
  // slotting space stays enumerable): slot-greedy's result passes
  // AuditSlotted with DeriveConflicts-consistent conflicts, and
  // slot-exact is bit-identical — slotting, pair set, and MaxSum bits —
  // to exhaustive slotting enumeration with the same exact leaf solver
  // (DESIGN.md §17).
  int slot_period = 15;

  // Minimize failing instances with ShrinkInstance before recording.
  bool shrink = false;
  ShrinkOptions shrink_options;

  // Stop after this many failures (a broken build should not pay for 200
  // shrink runs).
  int max_failures = 10;

  // Directory for WAL scratch files; empty = std::filesystem temp dir.
  std::string scratch_dir;

  // Harness self-test fault: "" (off) or "extra-pair" (append a stored
  // pair to greedy's arrangement before auditing).
  std::string inject;
};

struct CampaignFailure {
  std::string check;   // e.g. "audit/greedy", "wal/recovery"
  std::string detail;  // first line(s) of what went wrong
  uint64_t seed = 0;   // regenerate via MakeCampaignInstance(config, seed)
  // instance_io text of the failing instance (instance-level checks only).
  std::string instance_text;
  // instance_io text after delta-debugging (when CampaignConfig::shrink).
  std::string shrunk_instance_text;
  ShrinkStats shrink_stats;
};

struct CampaignResult {
  int instances = 0;
  int64_t checks = 0;
  std::vector<CampaignFailure> failures;

  bool ok() const { return failures.empty(); }
};

// The deterministic campaign family: instance `index` under `config.seed`.
Instance MakeCampaignInstance(const CampaignConfig& config, uint64_t index);

// Runs the full campaign. `log` (may be null) receives one progress line
// per 50 instances plus one line per failure.
CampaignResult RunCampaign(const CampaignConfig& config,
                           std::ostream* log = nullptr);

}  // namespace geacc::verify

#endif  // GEACC_VERIFY_ORACLE_H_
