// Shared helpers for the GEACC test suite.

#ifndef GEACC_TESTS_TEST_UTIL_H_
#define GEACC_TESTS_TEST_UTIL_H_

#include <memory>
#include <utility>
#include <vector>

#include "core/instance.h"
#include "core/similarity.h"
#include "gen/synthetic.h"
#include "util/rng.h"

namespace geacc::testing {

// Builds an instance whose similarity values are given directly as a
// |V|×|U| table: event attributes are the table rows, user attributes are
// one-hot unit vectors, and the similarity is the inner product — so
// sim(v, u) = table[v][u] exactly. This mirrors how the paper's Table I
// example is specified (interestingness values, not attribute vectors).
inline Instance MakeTableInstance(
    const std::vector<std::vector<double>>& similarity_table,
    const std::vector<int>& event_capacities,
    const std::vector<int>& user_capacities,
    const std::vector<std::pair<EventId, EventId>>& conflicts) {
  const int num_events = static_cast<int>(similarity_table.size());
  const int num_users = static_cast<int>(user_capacities.size());
  AttributeMatrix events = AttributeMatrix::FromRows(similarity_table);
  AttributeMatrix users(num_users, num_users);
  for (int u = 0; u < num_users; ++u) users.Set(u, u, 1.0);
  ConflictGraph graph(num_events);
  for (const auto& [a, b] : conflicts) graph.AddConflict(a, b);
  return Instance(std::move(events), event_capacities, std::move(users),
                  user_capacities, std::move(graph),
                  std::make_unique<DotSimilarity>());
}

// The paper's running example (Table I / Examples 1–3): three events with
// capacities 5, 3, 2; five users with capacities 3, 1, 1, 2, 3; v1 ⊥ v3.
// Known results: OPT = 4.39, MinCostFlow-GEACC = 4.13, Greedy = 4.28.
inline Instance PaperTableIExample() {
  return MakeTableInstance(
      {{0.93, 0.43, 0.84, 0.64, 0.65},
       {0.00, 0.35, 0.19, 0.21, 0.40},
       {0.86, 0.57, 0.78, 0.79, 0.68}},
      {5, 3, 2}, {3, 1, 1, 2, 3}, {{0, 2}});
}

// Small random instance for property tests: |V| events, |U| users, low-d
// uniform attributes so similarities are diverse, random conflicts.
inline Instance SmallRandomInstance(int num_events, int num_users,
                                    double conflict_density,
                                    int max_user_capacity, uint64_t seed) {
  SyntheticConfig config;
  config.num_events = num_events;
  config.num_users = num_users;
  config.dim = 3;
  config.max_attribute = 100.0;
  config.event_attribute = DistributionSpec::Uniform(0.0, 100.0);
  config.user_attribute = DistributionSpec::Uniform(0.0, 100.0);
  config.event_capacity = DistributionSpec::Uniform(1.0, 4.0);
  config.user_capacity =
      DistributionSpec::Uniform(1.0, static_cast<double>(max_user_capacity));
  config.conflict_density = conflict_density;
  config.seed = seed;
  return GenerateSynthetic(config);
}

}  // namespace geacc::testing

#endif  // GEACC_TESTS_TEST_UTIL_H_
