#include "algo/prune_solver.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <utility>
#include <vector>

#include "algo/bounds.h"
#include "algo/greedy_solver.h"
#include "obs/stats.h"
#include "util/memory.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace geacc {
namespace {

// Immutable precomputed tables shared read-only by every search context:
// the dense similarity table, the per-event "j-NN of v" lists of Section
// IV, and the event order L of Algorithm 3 line 5. Row construction fans
// out over the pool (rows are disjoint); the event sort and the
// sum_remain prefix stay serial — they are O(|V| log |V|) against the
// O(|V|·|U| log |U|) row sorts.
struct SearchTables {
  SearchTables(const Instance& instance, const SolverOptions& options,
               ThreadPool& pool)
      : num_events(instance.num_events()), num_users(instance.num_users()) {
    sim.resize(static_cast<size_t>(num_events) * num_users);
    sorted_users.resize(static_cast<size_t>(num_events) * num_users);
    // One batched-kernel call per table row; with fp_mode="fast" this is
    // the Prune opt-in site for FMA contraction (DESIGN.md §15.3). Warm
    // the blocked mirror before fanning out.
    const simd::FpMode fp = ResolveFpMode(options);
    instance.user_attributes().Blocked();
    pool.ParallelFor(0, num_events, [&](int /*chunk*/, int64_t chunk_begin,
                                        int64_t chunk_end) {
      for (EventId v = static_cast<EventId>(chunk_begin);
           v < static_cast<EventId>(chunk_end); ++v) {
        instance.SimilarityRow(v, fp, sim.data() + Flat(v, 0));
        UserId* row = sorted_users.data() + Flat(v, 0);
        std::iota(row, row + num_users, 0);
        std::sort(row, row + num_users, [&](UserId a, UserId b) {
          const double sa = sim[Flat(v, a)];
          const double sb = sim[Flat(v, b)];
          if (sa != sb) return sa > sb;
          return a < b;
        });
      }
    });

    // L: events in non-increasing s_v * c_v (Algorithm 3 line 5).
    event_order.resize(num_events);
    std::iota(event_order.begin(), event_order.end(), 0);
    if (options.enable_event_ordering) {
      std::sort(event_order.begin(), event_order.end(),
                [&](EventId a, EventId b) {
                  const double pa = BestSim(a) * instance.event_capacity(a);
                  const double pb = BestSim(b) * instance.event_capacity(b);
                  if (pa != pb) return pa > pb;
                  return a < b;
                });
    }

    // sum_remain = Σ_{k ≥ 2} s_{L[k]} * c_{L[k]} (Algorithm 3 line 6).
    initial_sum_remain = 0.0;
    for (int k = 1; k < num_events; ++k) {
      const EventId v = event_order[k];
      initial_sum_remain += BestSim(v) * instance.event_capacity(v);
    }

    // Conflict-aware suffix bounds (algo/bounds.h): suffix_tight[k] caps
    // the joint contribution of event_order[k..) via clique-cover (and
    // optionally LP) cuts. Serial on purpose — the partition and every
    // suffix are pure functions of the instance, so the table is
    // identical at any thread count. An empty conflict graph yields only
    // singleton cliques (the table would equal the Lemma 6 sums), so the
    // layer is skipped entirely and pruning reduces exactly to Lemma 6.
    if (options.enable_pruning && num_events > 0 && num_users > 0 &&
        !instance.conflicts().empty()) {
      const algo::BoundMode mode = algo::ParseBoundMode(options.bound);
      if (mode != algo::BoundMode::kLemma6) {
        std::vector<double> event_bound(num_events);
        std::vector<int> event_caps(num_events);
        std::vector<int> user_caps(num_users);
        for (EventId v = 0; v < num_events; ++v) {
          event_bound[v] = BestSim(v) * instance.event_capacity(v);
          event_caps[v] = instance.event_capacity(v);
        }
        for (UserId u = 0; u < num_users; ++u) {
          user_caps[u] = instance.user_capacity(u);
        }
        const algo::CliquePartition partition =
            algo::GreedyCliquePartition(instance.conflicts());
        algo::BoundInputs inputs;
        inputs.num_events = num_events;
        inputs.num_users = num_users;
        inputs.sim = sim.data();
        inputs.event_bound = event_bound.data();
        inputs.event_capacity = event_caps.data();
        inputs.user_capacity = user_caps.data();
        inputs.conflicts = &instance.conflicts();
        inputs.order = event_order.data();
        suffix_tight = algo::ComputeSuffixBounds(inputs, mode, partition);
      }
    }
  }

  bool use_tight_bound() const { return !suffix_tight.empty(); }

  size_t Flat(EventId v, int j) const {
    return static_cast<size_t>(v) * num_users + j;
  }

  // s_v: similarity of v's nearest user (0 when there are no users).
  double BestSim(EventId v) const {
    if (num_users == 0) return 0.0;
    return sim[Flat(v, sorted_users[Flat(v, 0)])];
  }

  uint64_t ByteEstimate() const {
    return VectorBytes(sim) + VectorBytes(sorted_users) +
           VectorBytes(event_order) + VectorBytes(suffix_tight);
  }

  const int num_events;
  const int num_users;
  std::vector<double> sim;           // dense |V|×|U| similarities
  std::vector<UserId> sorted_users;  // per event, users by sim desc
  std::vector<EventId> event_order;  // L
  double initial_sum_remain = 0.0;
  // Conflict-aware suffix bounds over event_order (size num_events + 1);
  // empty when the Lemma 6 bound is all there is (bound="lemma6", pruning
  // off, or no conflicts).
  std::vector<double> suffix_tight;
};

// A frozen DFS prefix: everything needed to resume the recursion at pair
// (event_pos, user_pos) exactly as the serial search would reach it.
// `matched` records the Add order along the path so the restored
// Arrangement is bit-identical to the serial one.
struct SubtreeTask {
  int event_pos = 0;
  int user_pos = 0;
  std::vector<std::pair<EventId, UserId>> matched;
  std::vector<int> remaining_event_capacity;
  std::vector<int> remaining_user_capacity;
  double current_sum = 0.0;
  double sum_remain = 0.0;
};

// Recursion context for Search-GEACC (Algorithm 4). One per subtree task;
// the precomputed tables are shared and read-only. Three operating modes:
//
//  * plain serial: Run() from the root, recording improvements over the
//    seed (`baseline_sum`) with strict >;
//  * fan-out generation (CaptureInto): the recursion stops at pair depth
//    `capture_depth` and snapshots the state instead of descending. The
//    cut is at most num_events − 1 pairs, and a complete matching visits
//    at least one pair per event, so no MaybeUpdateBest fires above the
//    cut — generation pruning uses only the deterministic seed bound,
//    making the task list a pure function of the instance;
//  * subtree worker (SetSharedBest + Restore): records improvements
//    locally against the seed baseline (deterministic), and additionally
//    prunes when the bound falls strictly below the cross-task incumbent
//    (opportunistic, timing-dependent — see the header for why that
//    cannot change the returned arrangement, only the effort counters).
class SearchContext {
 public:
  SearchContext(const SearchTables& tables, const Instance& instance,
                const SolverOptions& options, SolverStats* stats,
                double baseline_sum)
      : tables_(tables),
        instance_(instance),
        options_(options),
        stats_(stats),
        num_events_(tables.num_events),
        num_users_(tables.num_users),
        best_(num_events_, num_users_),
        best_sum_(baseline_sum),
        current_(num_events_, num_users_),
        sum_remain_(tables.initial_sum_remain) {
    remaining_event_capacity_.resize(num_events_);
    remaining_user_capacity_.resize(num_users_);
    for (EventId v = 0; v < num_events_; ++v) {
      remaining_event_capacity_[v] = instance.event_capacity(v);
    }
    for (UserId u = 0; u < num_users_; ++u) {
      remaining_user_capacity_[u] = instance.user_capacity(u);
    }
  }

  // Switches to generation mode: Search() snapshots into `sink` once
  // `depth` pairs have been visited along the current path.
  void CaptureInto(int depth, std::vector<SubtreeTask>* sink) {
    capture_depth_ = depth;
    capture_sink_ = sink;
  }

  void SetSharedBest(std::atomic<double>* shared_best) {
    shared_best_ = shared_best;
  }

  // Re-applies a generation snapshot (same Add sequence from empty, so the
  // restored state is bit-identical to the serial path's).
  void Restore(const SubtreeTask& task) {
    for (const auto& [v, u] : task.matched) current_.Add(v, u);
    remaining_event_capacity_ = task.remaining_event_capacity;
    remaining_user_capacity_ = task.remaining_user_capacity;
    matched_path_ = task.matched;
    current_sum_ = task.current_sum;
    sum_remain_ = task.sum_remain;
  }

  void Run() {
    if (num_events_ > 0 && num_users_ > 0) Search(0, 0);
  }

  void RunFrom(int event_pos, int user_pos) { Search(event_pos, user_pos); }

  bool improved() const { return improved_; }
  double best_sum() const { return best_sum_; }
  Arrangement TakeBest() { return std::move(best_); }

  uint64_t LocalByteEstimate() const {
    return VectorBytes(remaining_event_capacity_) +
           VectorBytes(remaining_user_capacity_) + VectorBytes(matched_path_) +
           best_.ByteEstimate() + current_.ByteEstimate();
  }

 private:
  size_t Flat(EventId v, int j) const { return tables_.Flat(v, j); }

  // 1-based recursion depth of the pair (event_pos, user_pos), i.e. the
  // number of pairs visited so far along this path — Fig. 6a's depth.
  int64_t Depth(int event_pos, int user_pos) const {
    return static_cast<int64_t>(event_pos) * num_users_ + user_pos + 1;
  }

  bool Truncated() {
    if (options_.max_search_invocations > 0 &&
        stats_->search_invocations >= options_.max_search_invocations) {
      stats_->search_truncated = true;
      return true;
    }
    return false;
  }

  void RecordPrune(int event_pos, int user_pos) {
    ++stats_->prune_events;
    stats_->sum_prune_depth += Depth(event_pos, user_pos);
  }

  void MaybeUpdateBest() {
    ++stats_->complete_searches;
    if (current_sum_ > best_sum_) {
      best_sum_ = current_sum_;
      improved_ = true;
      // Deep-copy the current matching.
      Arrangement copy(num_events_, num_users_);
      for (UserId u = 0; u < num_users_; ++u) {
        for (const EventId v : current_.EventsOf(u)) copy.Add(v, u);
      }
      best_ = std::move(copy);
      if (shared_best_ != nullptr) {
        // CAS-max: publish the new incumbent for cross-task pruning.
        double seen = shared_best_->load(std::memory_order_relaxed);
        while (seen < best_sum_ && !shared_best_->compare_exchange_weak(
                                       seen, best_sum_,
                                       std::memory_order_relaxed)) {
        }
      }
    }
  }

  // Whether the admissible bound `sum_max` justifies descending, under
  // the shared bound-vs-incumbent contract of algo/bounds.h: prune only
  // when the bound falls more than kBoundEps below the incumbent. The
  // slack absorbs the conflict-aware bounds' floating-point reassociation
  // (they accumulate in a different order than the leaf sums); incumbent
  // updates stay strict `>` in MaybeUpdateBest, so a subtree whose bound
  // merely ties the incumbent is descended but can never displace it. The
  // local test against best_sum_ is the serial rule (deterministic); the
  // shared test only adds strictly-below cuts, so a branch whose bound
  // still reaches the incumbent — which an optimal leaf's branch always
  // does — is never cut, no matter what other tasks have published.
  bool ShouldDescend(double sum_max) const {
    if (!options_.enable_pruning) return true;
    if (sum_max + algo::kBoundEps < best_sum_) return false;
    if (shared_best_ != nullptr &&
        sum_max + algo::kBoundEps <
            shared_best_->load(std::memory_order_relaxed)) {
      return false;
    }
    return true;
  }

  // Shared tail of both branches (Algorithm 4 lines 6–17): after fixing
  // the state of the pair at (event_pos, user_pos), descend to the next
  // pair, applying the admissible bound before each descent. The bound is
  // Lemma 6's sum_remain_ tightened (outer min, so it can only prune
  // more) by the conflict-aware suffix table when one was built; a prune
  // that only the tightening achieved is credited to bound_clique_cuts.
  void Advance(int event_pos, int user_pos) {
    const EventId v = tables_.event_order[event_pos];
    if (user_pos + 1 >= num_users_ || remaining_event_capacity_[v] == 0) {
      // Done with v's pairs: move to the next event (lines 6–13).
      if (event_pos + 1 >= num_events_) {
        MaybeUpdateBest();  // all pairs enumerated (lines 7–9)
        return;
      }
      const double lemma_bound = current_sum_ + sum_remain_;
      double bound = lemma_bound;
      if (tables_.use_tight_bound()) {
        bound = std::min(bound,
                         current_sum_ + tables_.suffix_tight[event_pos + 1]);
      }
      if (ShouldDescend(bound)) {
        const EventId next_event = tables_.event_order[event_pos + 1];
        const double next_term =
            tables_.BestSim(next_event) * instance_.event_capacity(next_event);
        sum_remain_ -= next_term;  // line 11
        Search(event_pos + 1, 0);
        sum_remain_ += next_term;  // line 13
      } else {
        RecordPrune(event_pos, user_pos);
        if (bound != lemma_bound && ShouldDescend(lemma_bound)) {
          ++stats_->bound_clique_cuts;
        }
      }
      return;
    }
    // Stay on v, move to its next NN (lines 14–17). The suffix table
    // covers events after v; v's own remaining seats are bounded by its
    // next-NN term either way.
    const UserId next_user = tables_.sorted_users[Flat(v, user_pos + 1)];
    const double bound_term =
        tables_.sim[Flat(v, next_user)] * remaining_event_capacity_[v];
    const double lemma_bound = current_sum_ + sum_remain_ + bound_term;
    double bound = lemma_bound;
    if (tables_.use_tight_bound()) {
      bound = std::min(bound, current_sum_ +
                                  tables_.suffix_tight[event_pos + 1] +
                                  bound_term);
    }
    if (ShouldDescend(bound)) {
      Search(event_pos, user_pos + 1);
    } else {
      RecordPrune(event_pos, user_pos);
      if (bound != lemma_bound && ShouldDescend(lemma_bound)) {
        ++stats_->bound_clique_cuts;
      }
    }
  }

  // Algorithm 4: enumerate both states of the pair at (event_pos,
  // user_pos) where the event is L[event_pos] and the user is its
  // (user_pos+1)-th NN.
  void Search(int event_pos, int user_pos) {
    if (capture_sink_ != nullptr && path_pairs_ == capture_depth_) {
      SubtreeTask task;
      task.event_pos = event_pos;
      task.user_pos = user_pos;
      task.matched = matched_path_;
      task.remaining_event_capacity = remaining_event_capacity_;
      task.remaining_user_capacity = remaining_user_capacity_;
      task.current_sum = current_sum_;
      task.sum_remain = sum_remain_;
      capture_sink_->push_back(std::move(task));
      return;
    }
    ++stats_->search_invocations;
    stats_->max_depth = std::max(stats_->max_depth, Depth(event_pos, user_pos));
    if (Truncated()) return;
    ++path_pairs_;

    const EventId v = tables_.event_order[event_pos];
    const UserId u = tables_.sorted_users[Flat(v, user_pos)];
    const double similarity = tables_.sim[Flat(v, u)];

    const bool addable =
        remaining_event_capacity_[v] > 0 && remaining_user_capacity_[u] > 0 &&
        similarity > 0.0 && !ConflictsWithMatched(v, u);
    if (addable) {
      // Branch 1: {v, u} matched (lines 4–19).
      ++stats_->branches_matched;
      current_.Add(v, u);
      matched_path_.emplace_back(v, u);
      --remaining_event_capacity_[v];
      --remaining_user_capacity_[u];
      current_sum_ += similarity;
      Advance(event_pos, user_pos);
      current_sum_ -= similarity;
      ++remaining_event_capacity_[v];
      ++remaining_user_capacity_[u];
      matched_path_.pop_back();
      current_.Remove(v, u);
    }
    // Branch 2: {v, u} unmatched (line 20).
    Advance(event_pos, user_pos);
    --path_pairs_;
  }

  bool ConflictsWithMatched(EventId v, UserId u) const {
    for (const EventId w : current_.EventsOf(u)) {
      if (instance_.conflicts().AreConflicting(v, w)) return true;
    }
    return false;
  }

  const SearchTables& tables_;
  const Instance& instance_;
  const SolverOptions& options_;
  SolverStats* stats_;
  const int num_events_;
  const int num_users_;

  std::vector<int> remaining_event_capacity_;
  std::vector<int> remaining_user_capacity_;

  Arrangement best_;
  double best_sum_ = 0.0;
  bool improved_ = false;
  Arrangement current_;
  double current_sum_ = 0.0;
  double sum_remain_ = 0.0;

  // Matched pairs along the current DFS path, in Add order.
  std::vector<std::pair<EventId, UserId>> matched_path_;
  // Pairs visited along the current path (the fan-out cut coordinate).
  int path_pairs_ = 0;
  int capture_depth_ = -1;
  std::vector<SubtreeTask>* capture_sink_ = nullptr;
  std::atomic<double>* shared_best_ = nullptr;
};

// Fan-out cut in pairs: deep enough that the generated tasks outnumber
// the lanes ~8×, shallow enough (≤ num_events − 1) that no complete
// matching can occur above the cut. Pure function of its inputs.
//
// Each level of the search branches over roughly num_users candidate
// partners, so the task count grows like num_users^depth — the cut must
// stay as shallow as that allows. Depth matters doubly here: everything
// above the cut is walked by the SERIAL generator with only the static
// seed bound (no improving incumbent), so an over-deep cut re-runs most
// of the search unpruned and can cost far more than it saves.
int FanoutDepth(int num_events, int num_users, int concurrency) {
  const int64_t target = int64_t{8} * concurrency;
  const int64_t branching = std::max(2, num_users);
  int depth = 1;
  int64_t tasks = branching;
  while (tasks < target && depth < num_events - 1) {
    ++depth;
    tasks *= branching;
  }
  return std::min(depth, num_events - 1);
}

// Field-wise accumulation of per-task stats into the solve total.
void MergeStats(const SolverStats& task, SolverStats* total) {
  total->search_invocations += task.search_invocations;
  total->complete_searches += task.complete_searches;
  total->prune_events += task.prune_events;
  total->branches_matched += task.branches_matched;
  total->bound_clique_cuts += task.bound_clique_cuts;
  total->sum_prune_depth += task.sum_prune_depth;
  total->max_depth = std::max(total->max_depth, task.max_depth);
  total->search_truncated = total->search_truncated || task.search_truncated;
}

}  // namespace

SolveResult PruneSolver::Solve(const Instance& instance) const {
  WallTimer timer;
  SolverStats stats;
  ThreadPool pool(ResolveThreadCount(options_.threads));

  // Algorithm 3 line 1: warm-start with Greedy-GEACC so poor matchings are
  // pruned from the beginning.
  Arrangement seed(instance.num_events(), instance.num_users());
  if (options_.enable_greedy_seed && options_.enable_pruning) {
    GEACC_PHASE_TIMER("prune.greedy_seed");
    GreedySolver greedy(options_);
    seed = greedy.Solve(instance).arrangement;
  }
  const double seed_sum = seed.MaxSum(instance);

  const SearchTables tables = [&] {
    GEACC_PHASE_TIMER("prune.precompute");
    return SearchTables(instance, options_, pool);
  }();

  // The fan-out needs ≥ 2 events (the cut must sit strictly above every
  // complete matching) and an untruncated search (the invocation budget is
  // a single serial count).
  const bool fan_out = pool.concurrency() > 1 && instance.num_events() > 1 &&
                       instance.num_users() > 0 &&
                       options_.max_search_invocations == 0;

  Arrangement best = std::move(seed);
  double best_sum = seed_sum;
  uint64_t context_bytes = 0;
  if (!fan_out) {
    GEACC_PHASE_TIMER("prune.search");
    SearchContext context(tables, instance, options_, &stats, seed_sum);
    context.Run();
    context_bytes = context.LocalByteEstimate();
    if (context.improved()) {
      best_sum = context.best_sum();
      best = context.TakeBest();
    }
  } else {
    // Deterministic task generation: serial DFS over the first
    // FanoutDepth() pairs, pruning against the seed bound only.
    std::vector<SubtreeTask> tasks;
    {
      GEACC_PHASE_TIMER("prune.fanout");
      SearchContext generator(tables, instance, options_, &stats, seed_sum);
      generator.CaptureInto(FanoutDepth(instance.num_events(),
                                        instance.num_users(),
                                        pool.concurrency()),
                            &tasks);
      generator.Run();
      context_bytes = generator.LocalByteEstimate();
    }

    // Subtrees run in DFS order across the pool. Each records locally
    // against the deterministic seed baseline; the shared incumbent only
    // adds strictly-below cuts, which never remove a leaf that could win
    // the fold below.
    GEACC_PHASE_TIMER("prune.search");
    std::atomic<double> shared_best{seed_sum};
    struct TaskResult {
      Arrangement best{0, 0};
      double best_sum = 0.0;
      bool improved = false;
      SolverStats stats;
    };
    std::vector<TaskResult> results(tasks.size());
    pool.ParallelFor(
        0, static_cast<int64_t>(tasks.size()),
        [&](int /*chunk*/, int64_t chunk_begin, int64_t chunk_end) {
          for (int64_t i = chunk_begin; i < chunk_end; ++i) {
            TaskResult& result = results[i];
            SearchContext context(tables, instance, options_, &result.stats,
                                  seed_sum);
            context.SetSharedBest(&shared_best);
            context.Restore(tasks[i]);
            context.RunFrom(tasks[i].event_pos, tasks[i].user_pos);
            result.best_sum = context.best_sum();
            result.improved = context.improved();
            if (result.improved) result.best = context.TakeBest();
          }
        });

    // Strict-> fold in DFS task order reproduces the serial answer: the
    // first task containing the DFS-first optimal leaf always returns
    // exactly that leaf, and it strictly beats everything before it.
    GEACC_STATS_ADD("prune.fanout_tasks", static_cast<int64_t>(tasks.size()));
    for (TaskResult& result : results) {
      MergeStats(result.stats, &stats);
      if (result.improved && result.best_sum > best_sum) {
        best_sum = result.best_sum;
        best = std::move(result.best);
      }
    }
    context_bytes += static_cast<uint64_t>(
        std::min<size_t>(tasks.size(), pool.concurrency()) *
        (context_bytes + sizeof(SubtreeTask)));
  }
  // Flushed once per solve from the SolverStats the recursion already
  // maintains; the search itself stays counter-free.
  GEACC_STATS_ADD("prune.nodes_visited", stats.search_invocations);
  GEACC_STATS_ADD("prune.nodes_pruned", stats.prune_events);
  GEACC_STATS_ADD("prune.complete_searches", stats.complete_searches);
  GEACC_STATS_ADD("prune.branches_matched", stats.branches_matched);
  GEACC_STATS_ADD("prune.bound.clique_cuts", stats.bound_clique_cuts);
  stats.logical_peak_bytes = tables.ByteEstimate() + context_bytes +
                             best.ByteEstimate();
  stats.wall_seconds = timer.Seconds();
  return {std::move(best), stats};
}

}  // namespace geacc
