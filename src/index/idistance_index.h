// iDistance NN index — Jagadish, Ooi, Tan, Yu & Zhang, TODS'05, the
// paper's citation [7] for σ(S).
//
// Points are partitioned around reference pivots (deterministic
// farthest-point sampling). Every point is mapped to the one-dimensional
// stretched key
//
//     key(x) = pivot_id(x) · C + d(pivot(x), x),      C > any distance,
//
// and all keys live in a single B+-tree (src/container/bplus_tree.h) —
// exactly the structure of the original paper. A kNN query grows a search
// radius r: by the triangle inequality every point x with d(q, x) ≤ r in
// partition p has a key in [p·C + d(q,p) − r, p·C + d(q,p) + r], so each
// round widens a two-sided leaf scan per partition and exact-checks only
// newly covered entries. Once all partitions are covered to radius r,
// every candidate with exact distance ≤ r is certified — making the
// incremental cursor exact and identical in order to a linear scan.
//
// The geometry build and the cursor live in index/idistance_common.h,
// shared with the disk-backed PagedIDistanceIndex (DESIGN.md §14); this
// class is the in-memory instantiation.

#ifndef GEACC_INDEX_IDISTANCE_INDEX_H_
#define GEACC_INDEX_IDISTANCE_INDEX_H_

#include <memory>
#include <string>
#include <vector>

#include "container/bplus_tree.h"
#include "index/idistance_common.h"
#include "index/knn_index.h"

namespace geacc {

class IDistanceIndex final : public KnnIndex {
 public:
  // `num_pivots` reference points (clamped to the data size).
  IDistanceIndex(const AttributeMatrix& points,
                 const SimilarityFunction& similarity, int num_pivots = 16);

  std::string Name() const override { return "idistance"; }
  std::vector<Neighbor> Query(const double* query, int k) const override;
  std::unique_ptr<NnCursor> CreateCursor(const double* query) const override;
  uint64_t ByteEstimate() const override;

  int num_pivots() const { return geometry_.pivots.rows(); }
  int tree_height() const { return tree_.height(); }

 private:
  using KeyTree = BPlusTree<double, int, 64>;

  const AttributeMatrix& points_;
  const SimilarityFunction& similarity_;
  IDistanceGeometry geometry_;  // pivots, stretch, initial radius
  KeyTree tree_;                // stretched key → point id
};

}  // namespace geacc

#endif  // GEACC_INDEX_IDISTANCE_INDEX_H_
