// The interval-overlap / travel-gap conflict predicate (paper Definition
// 3's motivation), shared by every consumer that derives conflicts from
// concrete times and venues: gen/schedule.h (timetable → ConflictGraph),
// slot/ (slot-overlap conflicts for the joint scheduling scenario), and
// dyn/ (re-deriving an event's conflicts when its slot changes).
//
// A TimeWindow is a half-open interval [start, end) in hours plus a venue
// position in km. Two windows conflict when the intervals overlap, or
// when the gap between them is too short to travel between the venues at
// `speed_kmph`. A non-positive speed disables the travel rule.

#ifndef GEACC_CORE_TIME_WINDOW_H_
#define GEACC_CORE_TIME_WINDOW_H_

namespace geacc {

struct TimeWindow {
  double start_hours = 0.0;  // e.g. hours since Sunday 00:00
  double end_hours = 0.0;
  double x_km = 0.0;  // venue position
  double y_km = 0.0;
};

// Conflict iff intervals [start, end) overlap (touching endpoints do not
// overlap), or the inter-window gap is shorter than straight-line
// distance / speed_kmph. A non-positive speed disables the travel rule
// (pure timetable overlap).
bool WindowsConflict(const TimeWindow& a, const TimeWindow& b,
                     double speed_kmph);

}  // namespace geacc

#endif  // GEACC_CORE_TIME_WINDOW_H_
