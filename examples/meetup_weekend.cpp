// Weekend EBSN planning — the paper's motivating scenario at city scale.
//
// A Meetup-like platform (simulated; see src/gen/ebsn.h) has a weekend of
// events in Auckland. Each event gets a concrete Sunday time slot and a
// venue; two events conflict when they overlap or are too far apart to
// travel between (Definition 3's "hiking trip vs badminton vs basketball"
// dilemma). The platform then computes a single global arrangement with
// Greedy-GEACC instead of spamming every user with conflicting
// recommendations.
//
//   ./build/examples/meetup_weekend [--seed N] [--city auckland|...]

#include <algorithm>
#include <cstdio>
#include <vector>

#include "algo/solvers.h"
#include "core/instance.h"
#include "gen/ebsn.h"
#include "gen/schedule.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  int64_t seed = 2026;
  std::string city = "auckland";
  geacc::FlagSet flags;
  flags.AddInt("seed", &seed, "random seed");
  flags.AddString("city", &city, "EBSN city preset");
  flags.Parse(argc, argv);

  // 1. Simulate the city's EBSN: users/events with tag-profile attributes.
  geacc::EbsnConfig ebsn = geacc::EbsnCityPreset(city);
  ebsn.seed = static_cast<uint64_t>(seed);
  ebsn.conflict_density = 0.0;  // conflicts come from the schedule below
  const geacc::Instance tagged = geacc::GenerateEbsn(ebsn);

  // 2. Give every event a Sunday slot (8:00–22:00) and a venue in a
  //    30 km metro area; derive conflicts from overlap + 25 km/h travel.
  geacc::Rng rng(static_cast<uint64_t>(seed) ^ 0xebd);
  const std::vector<geacc::ScheduledEvent> schedule = geacc::RandomSchedule(
      tagged.num_events(), /*horizon_hours=*/14.0, /*min_duration_hours=*/1.0,
      /*max_duration_hours=*/4.0, /*city_km=*/30.0, rng);
  geacc::ConflictGraph conflicts =
      geacc::ConflictsFromSchedule(schedule, /*speed_kmph=*/25.0);
  std::printf("%s: %d events, %d users, %lld schedule conflicts (%.0f%% of "
              "event pairs)\n\n",
              city.c_str(), tagged.num_events(), tagged.num_users(),
              (long long)conflicts.num_conflict_pairs(),
              100.0 * conflicts.Density());

  // 3. Rebuild the instance with the schedule-derived conflict graph.
  std::vector<int> event_caps(tagged.num_events());
  std::vector<int> user_caps(tagged.num_users());
  for (geacc::EventId v = 0; v < tagged.num_events(); ++v) {
    event_caps[v] = tagged.event_capacity(v);
  }
  for (geacc::UserId u = 0; u < tagged.num_users(); ++u) {
    user_caps[u] = tagged.user_capacity(u);
  }
  geacc::AttributeMatrix events = tagged.event_attributes();
  geacc::AttributeMatrix users = tagged.user_attributes();
  const geacc::Instance instance(
      std::move(events), std::move(event_caps), std::move(users),
      std::move(user_caps), std::move(conflicts),
      tagged.similarity().Clone());

  // 4. Solve globally and compare against the per-event random baseline.
  for (const char* name : {"greedy", "mincostflow", "random-v"}) {
    const auto solver = geacc::CreateSolver(name);
    const geacc::SolveResult result = solver->Solve(instance);
    std::printf("%-12s MaxSum %8.2f  assignments %5lld  seats filled %4.1f%%"
                "  (%.3fs)\n",
                name, result.arrangement.MaxSum(instance),
                (long long)result.arrangement.size(),
                100.0 * result.arrangement.size() /
                    instance.total_event_capacity(),
                result.stats.wall_seconds);
  }

  // 5. Show one user's personalized Sunday itinerary from the greedy plan.
  const geacc::SolveResult plan =
      geacc::CreateSolver("greedy")->Solve(instance);
  geacc::UserId busiest = 0;
  for (geacc::UserId u = 0; u < instance.num_users(); ++u) {
    if (plan.arrangement.UserLoad(u) > plan.arrangement.UserLoad(busiest)) {
      busiest = u;
    }
  }
  std::vector<geacc::EventId> itinerary = plan.arrangement.EventsOf(busiest);
  std::sort(itinerary.begin(), itinerary.end(),
            [&](geacc::EventId a, geacc::EventId b) {
              return schedule[a].start_hours < schedule[b].start_hours;
            });
  std::printf("\nBusiest user u%d's Sunday (capacity %d):\n", busiest,
              instance.user_capacity(busiest));
  for (const geacc::EventId v : itinerary) {
    std::printf("  %05.2f-%05.2fh  event v%-4d at (%4.1f, %4.1f) km   "
                "interest %.3f\n",
                schedule[v].start_hours, schedule[v].end_hours, v,
                schedule[v].x_km, schedule[v].y_km,
                instance.Similarity(v, busiest));
  }
  return 0;
}
