// The `geacc-bench v1` machine-readable run report.
//
// Every bench binary (fig3_* … fig6_*, motivation, replay_trace, micro_*)
// accepts `--json PATH` and writes one of these so CI can archive a perf
// baseline (BENCH_*.json) and future PRs can regress against it. The
// format is intentionally flat and append-friendly:
//
//   {
//     "schema": "geacc-bench",          // always this literal
//     "version": 1,
//     "bench": "fig6_pruning",          // binary name
//     "git_rev": "<hex or 'unknown'>",  // configure-time rev of the build
//     "flags": { "reps": "3", ... },    // CLI flags as name → value
//     "points": [
//       {
//         "label": "|V|=200",           // sweep-point label (x-axis value)
//         "solver": "prune",
//         "wall_seconds": 0.0123,
//         "cpu_seconds": 0.0121,
//         "vm_hwm_bytes": 18264064,     // VmHWM at point completion
//         "max_sum": 41.7,              // objective (0 for micro benches)
//         "counters": { "prune.nodes_visited": 4821, ... },
//         "timers": { "mcf.flow_sweep": {"seconds": 0.01, "count": 3} },
//         "latency": {                      // optional: serving benches only
//           "p50_ms": 0.11, "p95_ms": 0.56, "p99_ms": 1.4, "samples": 250000
//         },
//         "storage": {                      // optional: paged-backend points
//           "budget_bytes": 8388608, "page_size": 4096,
//           "file_bytes": 33554432,
//           "hits": 91824, "faults": 8112, "evictions": 8100, "flushes": 0
//         },
//         "kernels": {                      // optional: SIMD-kernel points
//           "dispatch": "avx2",             // level the point actually ran
//           "block": 8,                     // simd::kBlockRows of the build
//           "batched_evals": 1048576,       // rows scored by blocked kernels
//           "scalar_evals": 0               // rows scored per-pair
//         },
//         "shards": {                       // optional: sharded-topology runs
//           "shard_count": 3, "fleet": 4,   // topology width, client procs
//           "qps": 18234.5,                 // end-to-end fleet throughput
//           "per_shard": [                  // coordinator-side RPC view
//             {"shard": 0, "requests": 4821,
//              "p50_ms": 0.05, "p95_ms": 0.21, "p99_ms": 0.6}, ...
//           ]
//         },
//         "slots": {                        // optional: slotted joint solves
//           "num_slots": 6,                 // S of the slotted instance
//           "scheduled_events": 20,         // events with an assigned slot
//           "slottings_considered": 81,     // search-space accounting
//           "leaf_solves": 12,              // per-slotting solver runs
//           "joint_max_sum": 41.7           // best joint objective
//         }
//       }, ...
//     ]
//   }
//
// Versioning contract: additive fields may appear within v1; removing or
// re-typing a field requires bumping `version`. Validate() checks the
// full v1 shape and is what `bench/validate_report` and CI run against
// fresh reports. See DESIGN.md §9 for the schema rationale.
//
// Thread-safety: plain value types; build the report on one thread.

#ifndef GEACC_OBS_BENCH_REPORT_H_
#define GEACC_OBS_BENCH_REPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/stats.h"

namespace geacc::obs {

inline constexpr char kBenchReportSchema[] = "geacc-bench";
inline constexpr int kBenchReportVersion = 1;

// Per-request latency percentiles, attached by serving benches
// (bench/loadgen). Optional within v1 — absent means the point measured
// batch wall time only.
struct LatencySummary {
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  int64_t samples = 0;
};

// Buffer-pool traffic for points that ran on the disk-backed index
// ("idistance-paged", src/storage/). Optional within v1 — absent means
// the point ran fully in memory. `file_bytes` is the page-file size at
// point completion; the remaining fields mirror storage::PoolStats.
struct StorageSummary {
  uint64_t budget_bytes = 0;
  uint64_t page_size = 0;
  uint64_t file_bytes = 0;
  int64_t hits = 0;
  int64_t faults = 0;
  int64_t evictions = 0;
  int64_t flushes = 0;
};

// SIMD-kernel activity for points exercising the batched similarity
// layer (DESIGN.md §15). Optional within v1 — absent means the point
// didn't separate kernel traffic. `dispatch` is the level the point ran
// ("avx2" / "scalar"), `block` the build's simd::kBlockRows; the eval
// counts mirror the simd.batched_evals / simd.scalar_evals counters.
struct KernelsSummary {
  std::string dispatch;
  int64_t block = 0;
  int64_t batched_evals = 0;
  int64_t scalar_evals = 0;
};

// Per-shard RPC latency as seen by the coordinator (DESIGN.md §16).
struct ShardLatency {
  int32_t shard = 0;
  int64_t requests = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

// Sharded-topology summary, attached by loadgen fleet runs against a
// geacc_coord front-end (DESIGN.md §16). Optional within v1 — absent
// means the point ran against a single-node service. `fleet` is the
// number of client processes whose latency samples were unioned into the
// point's end-to-end percentiles; `per_shard` is the coordinator's own
// shard-RPC view pulled over kShardStats.
struct ShardsSummary {
  int32_t shard_count = 0;
  int32_t fleet = 0;
  double qps = 0.0;
  std::vector<ShardLatency> per_shard;
};

// Slotted joint-solve summary, attached by bench/fig_slotted points
// (DESIGN.md §17). Optional within v1 — absent means the point solved a
// plain (un-slotted) instance. The search counters mirror
// slot::SlotSolveResult: `slottings_considered` includes pruned
// slottings, `leaf_solves` counts per-slotting solver runs.
struct SlotsSummary {
  int64_t num_slots = 0;
  int64_t scheduled_events = 0;
  int64_t slottings_considered = 0;
  int64_t leaf_solves = 0;
  double joint_max_sum = 0.0;
};

// One measured (sweep point × solver) cell.
struct BenchPoint {
  std::string label;
  std::string solver;
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;
  int64_t vm_hwm_bytes = 0;
  double max_sum = 0.0;
  std::map<std::string, int64_t> counters;
  std::map<std::string, TimerStat> timers;
  // Serialized as a "latency" object only when has_latency is set.
  bool has_latency = false;
  LatencySummary latency;
  // Serialized as a "storage" object only when has_storage is set.
  bool has_storage = false;
  StorageSummary storage;
  // Serialized as a "kernels" object only when has_kernels is set.
  bool has_kernels = false;
  KernelsSummary kernels;
  // Serialized as a "shards" object only when has_shards is set.
  bool has_shards = false;
  ShardsSummary shards;
  // Serialized as a "slots" object only when has_slots is set.
  bool has_slots = false;
  SlotsSummary slots;
};

struct BenchReport {
  std::string bench;
  std::string git_rev;
  std::map<std::string, std::string> flags;
  std::vector<BenchPoint> points;

  JsonValue ToJson() const;

  // Parses a previously serialized report. Returns false (with a
  // diagnostic in *error if non-null) when `json` is not a valid v1
  // report; *this is left unspecified on failure.
  bool FromJson(const JsonValue& json, std::string* error = nullptr);

  // Serializes and writes the report to `path` (pretty-printed, trailing
  // newline). Returns false with *error set on I/O failure.
  bool WriteFile(const std::string& path, std::string* error = nullptr) const;
};

// Structural validation of a parsed document against the v1 schema:
// schema/version literals, required fields with correct types, and
// non-negative measurements. Returns false with the first violation
// described in *error (if non-null).
bool ValidateBenchReport(const JsonValue& json, std::string* error = nullptr);

// The git revision baked in at configure time (GEACC_GIT_REV), overridden
// by the GEACC_GIT_REV environment variable if set; "unknown" otherwise.
std::string GitRevision();

}  // namespace geacc::obs

#endif  // GEACC_OBS_BENCH_REPORT_H_
