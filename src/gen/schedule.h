// Timetable/venue-derived conflicts (paper Definition 3's motivation).
//
// Two events conflict if their time intervals overlap, or if the gap
// between them is too short to travel between their venues. This module
// turns concrete schedules into a ConflictGraph — used by the example
// applications (weekend Meetup planning, conference sessions) and by tests
// exercising realistic, non-random conflict structure.

#ifndef GEACC_GEN_SCHEDULE_H_
#define GEACC_GEN_SCHEDULE_H_

#include <vector>

#include "core/conflict_graph.h"
#include "core/time_window.h"
#include "util/rng.h"

namespace geacc {

// The overlap/travel predicate itself lives in core/time_window.h so that
// slot::DeriveConflicts and the dynamic slot-change repair share one
// implementation with this module; a scheduled event *is* a time window.
using ScheduledEvent = TimeWindow;

// Conflict iff intervals [start, end) overlap, or the inter-event gap is
// shorter than straight-line distance / speed_kmph. A non-positive speed
// disables the travel rule (pure timetable overlap).
ConflictGraph ConflictsFromSchedule(const std::vector<ScheduledEvent>& events,
                                    double speed_kmph);

// Convenience for examples: `count` events with random start in
// [0, horizon_hours], duration in [min,max] hours, venues uniform in a
// city_km × city_km square.
std::vector<ScheduledEvent> RandomSchedule(int count, double horizon_hours,
                                           double min_duration_hours,
                                           double max_duration_hours,
                                           double city_km, Rng& rng);

// True iff the two events conflict under the rule above (exposed for
// tests).
bool EventsConflict(const ScheduledEvent& a, const ScheduledEvent& b,
                    double speed_kmph);

}  // namespace geacc

#endif  // GEACC_GEN_SCHEDULE_H_
