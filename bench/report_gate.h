// The perf-gate regression predicate, extracted from compare_reports so
// its noise-floor semantics are unit-testable (tests/report_gate_test.cc).
//
// A point regresses only when BOTH the baseline and current measurement
// are at or above the noise floor AND the current time grew beyond the
// tolerance band. Sub-floor measurements are dominated by scheduler
// jitter, not code: a 1ms baseline that "doubles" to 2ms says nothing,
// and gating on it makes CI flaky. In particular a sub-floor baseline
// must never flag a regression no matter how large the ratio — the ratio
// against jitter is meaningless.

#ifndef GEACC_BENCH_REPORT_GATE_H_
#define GEACC_BENCH_REPORT_GATE_H_

#include <algorithm>
#include <cstdint>

namespace geacc::bench {

struct GatePolicy {
  // Fractional slowdown allowed before a point regresses (0.25 = +25%).
  double tolerance = 0.25;
  // Noise floor in seconds; a point is gated only when both sides reach it.
  double min_seconds = 0.02;
  // Fractional growth allowed on a gated search-effort counter (e.g.
  // prune.nodes_visited) before it regresses.
  double counter_tolerance = 0.25;
  // Counter floor: a counter is gated only when the baseline value
  // reaches it — percentage growth on a near-zero count is as
  // meaningless as a ratio of two jittery sub-floor timings.
  int64_t min_count = 100;
};

inline bool Regressed(double baseline_seconds, double current_seconds,
                      const GatePolicy& policy) {
  if (std::min(baseline_seconds, current_seconds) < policy.min_seconds) {
    return false;
  }
  return current_seconds > baseline_seconds * (1.0 + policy.tolerance);
}

// Deterministic-counter variant: unlike wall time a counter has no
// scheduler jitter (at threads=1 the search counters are exact), so only
// the baseline side needs the floor — a current value of any size against
// a sub-floor baseline is growth from noise-scale work, not a regression.
inline bool CounterRegressed(int64_t baseline, int64_t current,
                             const GatePolicy& policy) {
  if (baseline < policy.min_count) return false;
  return static_cast<double>(current) >
         static_cast<double>(baseline) * (1.0 + policy.counter_tolerance);
}

}  // namespace geacc::bench

#endif  // GEACC_BENCH_REPORT_GATE_H_
