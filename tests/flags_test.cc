// FlagSet is the front door of every bench and example binary; its error
// discipline — unknown flags and bad values exit 1, duplicate
// registration aborts — is what keeps a typo'd experiment script from
// silently running with defaults.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/flags.h"

namespace geacc {
namespace {

// Builds a mutable argv from string literals (Parse wants char**).
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : args_(std::move(args)) {
    for (std::string& arg : args_) pointers_.push_back(arg.data());
  }
  int argc() { return static_cast<int>(pointers_.size()); }
  char** argv() { return pointers_.data(); }

 private:
  std::vector<std::string> args_;
  std::vector<char*> pointers_;
};

TEST(Flags, ParsesBothValueFormsAndCollectsPositional) {
  int64_t reps = 3;
  int threads = 1;
  double rate = 0.0;
  bool json = false;
  std::string label = "default";
  FlagSet flags;
  flags.AddInt("reps", &reps, "repetitions");
  flags.AddInt("threads", &threads, "worker threads");
  flags.AddDouble("rate", &rate, "target qps");
  flags.AddBool("json", &json, "emit json");
  flags.AddString("label", &label, "point label");

  Argv argv({"prog", "--reps=5", "--threads", "8", "pos_one", "--rate=2.5",
             "--json", "--label", "svc", "pos_two"});
  flags.Parse(argv.argc(), argv.argv());

  EXPECT_EQ(reps, 5);
  EXPECT_EQ(threads, 8);
  EXPECT_EQ(rate, 2.5);
  EXPECT_TRUE(json);
  EXPECT_EQ(label, "svc");
  EXPECT_EQ(flags.positional(),
            (std::vector<std::string>{"pos_one", "pos_two"}));
}

TEST(Flags, ValuesReflectsEffectiveSettingsInRegistrationOrder) {
  int threads = 4;
  std::string mode = "closed";
  FlagSet flags;
  flags.AddInt("threads", &threads, "");
  flags.AddString("mode", &mode, "");
  Argv argv({"prog", "--mode=open"});
  flags.Parse(argv.argc(), argv.argv());

  const auto values = flags.Values();
  ASSERT_EQ(values.size(), 2u);
  EXPECT_EQ(values[0].first, "threads");
  EXPECT_EQ(values[0].second, "4");  // untouched default
  EXPECT_EQ(values[1].first, "mode");
  EXPECT_EQ(values[1].second, "open");
}

TEST(FlagsDeathTest, UnknownFlagExitsNonZero) {
  int threads = 1;
  FlagSet flags;
  flags.AddInt("threads", &threads, "");
  Argv argv({"prog", "--thraeds=8"});
  EXPECT_EXIT(flags.Parse(argv.argc(), argv.argv()),
              testing::ExitedWithCode(1), "unknown flag --thraeds");
}

TEST(FlagsDeathTest, BadValueExitsNonZero) {
  int threads = 1;
  FlagSet flags;
  flags.AddInt("threads", &threads, "");
  Argv argv({"prog", "--threads=many"});
  EXPECT_EXIT(flags.Parse(argv.argc(), argv.argv()),
              testing::ExitedWithCode(1), "bad value");
}

TEST(FlagsDeathTest, MissingValueExitsNonZero) {
  int threads = 1;
  FlagSet flags;
  flags.AddInt("threads", &threads, "");
  Argv argv({"prog", "--threads"});
  EXPECT_EXIT(flags.Parse(argv.argc(), argv.argv()),
              testing::ExitedWithCode(1), "needs a value");
}

TEST(FlagsDeathTest, DuplicateRegistrationAborts) {
  int a = 0;
  double b = 0.0;
  FlagSet flags;
  flags.AddInt("threads", &a, "");
  // Same name, even with a different type, is a programming error.
  EXPECT_DEATH(flags.AddDouble("threads", &b, ""), "duplicate flag");
}

}  // namespace
}  // namespace geacc
