// Portable per-block reducers. This translation unit is compiled with the
// project's baseline flags only (no -mfma), so on x86-64 the compiler has
// no fused multiply-add to contract into and every `acc += x * y` below
// rounds twice, exactly like the per-pair loops in core/similarity.cc —
// which is what the strict-mode bit-identity contract (kernels.h) needs.
// The compiler is free to auto-vectorize these loops: lanes are rows, so
// any lane width produces the same per-row arithmetic.

#include "simd/kernels.h"

namespace geacc::simd::internal {
namespace {

void SquaredDistanceBlock(const double* query, const double* block, int dim,
                          double* out8) {
  double acc[kBlockRows] = {};
  for (int j = 0; j < dim; ++j) {
    const double qj = query[j];
    const double* lane = block + static_cast<std::size_t>(j) * kBlockRows;
    for (int r = 0; r < kBlockRows; ++r) {
      const double diff = qj - lane[r];
      acc[r] += diff * diff;
    }
  }
  for (int r = 0; r < kBlockRows; ++r) out8[r] = acc[r];
}

void DotBlock(const double* query, const double* block, int dim,
              double* out8) {
  double acc[kBlockRows] = {};
  for (int j = 0; j < dim; ++j) {
    const double qj = query[j];
    const double* lane = block + static_cast<std::size_t>(j) * kBlockRows;
    for (int r = 0; r < kBlockRows; ++r) acc[r] += qj * lane[r];
  }
  for (int r = 0; r < kBlockRows; ++r) out8[r] = acc[r];
}

void DotNormBlock(const double* query, const double* block, int dim,
                  double* dot8, double* norm8) {
  double dot[kBlockRows] = {};
  double norm[kBlockRows] = {};
  for (int j = 0; j < dim; ++j) {
    const double qj = query[j];
    const double* lane = block + static_cast<std::size_t>(j) * kBlockRows;
    for (int r = 0; r < kBlockRows; ++r) {
      dot[r] += qj * lane[r];
      norm[r] += lane[r] * lane[r];
    }
  }
  for (int r = 0; r < kBlockRows; ++r) {
    dot8[r] = dot[r];
    norm8[r] = norm[r];
  }
}

void VaLowerBoundBlock(const double* cell_table, int cells,
                       const uint8_t* sig_block, int dim, double* out8) {
  double acc[kBlockRows] = {};
  for (int j = 0; j < dim; ++j) {
    const double* table = cell_table + static_cast<std::size_t>(j) * cells;
    const uint8_t* lane = sig_block + static_cast<std::size_t>(j) * kBlockRows;
    for (int r = 0; r < kBlockRows; ++r) acc[r] += table[lane[r]];
  }
  for (int r = 0; r < kBlockRows; ++r) out8[r] = acc[r];
}

}  // namespace

const KernelTable& ScalarKernels() {
  static const KernelTable table = {
      /*squared_distance=*/SquaredDistanceBlock,
      /*squared_distance_fma=*/SquaredDistanceBlock,
      /*dot=*/DotBlock,
      /*dot_fma=*/DotBlock,
      /*dot_norm=*/DotNormBlock,
      /*dot_norm_fma=*/DotNormBlock,
      /*va_lower_bound=*/VaLowerBoundBlock,
  };
  return table;
}

}  // namespace geacc::simd::internal
