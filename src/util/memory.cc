#include "util/memory.h"

#include <cstdio>
#include <cstring>

namespace geacc {
namespace {

// Parses a "Vm...:   <kB> kB" line from /proc/self/status.
uint64_t ReadStatusField(const char* field) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  uint64_t result = 0;
  const size_t field_len = std::strlen(field);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, field, field_len) == 0) {
      unsigned long long kb = 0;
      if (std::sscanf(line + field_len, ": %llu", &kb) == 1) {
        result = static_cast<uint64_t>(kb) * 1024;
      }
      break;
    }
  }
  std::fclose(f);
  return result;
}

}  // namespace

uint64_t PeakRssBytes() { return ReadStatusField("VmHWM"); }

uint64_t CurrentRssBytes() { return ReadStatusField("VmRSS"); }

}  // namespace geacc
