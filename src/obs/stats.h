// Zero-overhead-when-disabled instrumentation: monotonic counters, phase
// timers, and scoped trace spans behind a thread-safe StatsRegistry.
//
// Hot paths record through two macros:
//
//   GEACC_STATS_ADD("flow.spfa.relaxations", 1);
//   { GEACC_PHASE_TIMER("mcf.flow_sweep"); ... }   // span = enclosing scope
//
// Each macro expansion interns its name once (function-local static) into
// the global StatsRegistry, which assigns a dense id; subsequent hits are a
// bounds check plus a single-writer relaxed-atomic add on a per-thread
// cell. No locks, no string hashing, and no cross-thread cache-line
// contention on the hot path — `bench/micro_solvers` measures the enabled
// overhead at under 1% (see DESIGN.md §9).
//
// Aggregation is pull-based: StatsRegistry::Global().Snapshot() sums the
// live per-thread cells (relaxed loads) plus the totals folded in by
// threads that have exited. StatsScope captures only the *calling
// thread's* activity between construction and Harvest(), which is exactly
// one solver run in the experiment harness — solvers are single-threaded
// internally, so per-run counters stay exact even when RunSweep shards
// (point × rep) cells over a pool.
//
// Compile-out story: building with -DGEACC_NO_STATS (CMake option
// GEACC_NO_STATS) expands both macros to `((void)0)` so instrumented code
// carries no branch, no static, and no dependency on this layer's state.
// The registry API itself stays compiled so reporting code links either
// way; it just observes empty snapshots.

#ifndef GEACC_OBS_STATS_H_
#define GEACC_OBS_STATS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/timer.h"

namespace geacc::obs {

// Dense handles interned by RegisterCounter()/RegisterTimer(). Values are
// stable for the process lifetime.
using CounterId = int;
using TimerId = int;

// Aggregate of a named phase timer: total span time and span count.
struct TimerStat {
  double seconds = 0.0;
  int64_t count = 0;
};

// A point-in-time aggregate of counter and timer totals. Only entries with
// activity appear (zero-valued counters are omitted).
struct StatsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, TimerStat> timers;

  // this − earlier, dropping entries that did not change. Used by
  // StatsScope and by benches that diff around a sweep point.
  StatsSnapshot Delta(const StatsSnapshot& earlier) const;
};

// Process-wide catalog of counter/timer names and owner of the per-thread
// cell blocks. All members are thread-safe; registration cost is paid once
// per macro call site.
class StatsRegistry {
 public:
  static StatsRegistry& Global();

  // Interns `name`, returning its dense id (the same id on repeat calls).
  CounterId RegisterCounter(const std::string& name);
  TimerId RegisterTimer(const std::string& name);

  // Adds `delta` to the calling thread's cell for `id`. Monotonic use is
  // the convention (counters count events); nothing enforces it.
  void Add(CounterId id, int64_t delta);
  void RecordTime(TimerId id, double seconds);

  // Folds a harvested TimerStat into the calling thread's cells without
  // bumping the span count per call (seconds += stat.seconds, count +=
  // stat.count). Used when replaying another thread's deltas.
  void RecordTimerStat(TimerId id, const TimerStat& stat);

  // Totals across all threads, live and exited.
  StatsSnapshot Snapshot() const;

  // Totals for the calling thread only (what StatsScope diffs).
  StatsSnapshot ThreadSnapshot() const;

  // Registered names in id order (includes never-incremented entries).
  std::vector<std::string> CounterNames() const;
  std::vector<std::string> TimerNames() const;

  // Convenience: current global total for `name` (0 if unregistered).
  int64_t CounterValue(const std::string& name) const;

 private:
  StatsRegistry() = default;
  struct ThreadCells;
  class Impl;
  Impl& impl() const;
};

// Re-credits `snapshot` (typically a StatsScope harvest from a pool
// worker) to the calling thread's cells, registering names as needed.
// ThreadPool::ParallelFor uses this so intra-solver parallelism keeps the
// "one StatsScope per run" attribution model: worker-side counters and
// phase timers end up on the thread that owns the parallel region. A
// no-op under GEACC_NO_STATS (snapshots are empty there).
void ForwardToCallingThread(const StatsSnapshot& snapshot);

// Captures the calling thread's instrumentation activity over a scope.
// Construct before the work, Harvest() after: the result holds exactly the
// deltas this thread produced in between. Safe to nest.
class StatsScope {
 public:
  StatsScope() : start_(StatsRegistry::Global().ThreadSnapshot()) {}

  StatsSnapshot Harvest() const {
    return StatsRegistry::Global().ThreadSnapshot().Delta(start_);
  }

 private:
  StatsSnapshot start_;
};

namespace internal {

// RAII span: records wall time into a phase timer at scope exit.
class ScopedPhaseTimer {
 public:
  explicit ScopedPhaseTimer(TimerId id) : id_(id) {}
  ~ScopedPhaseTimer() {
    StatsRegistry::Global().RecordTime(id_, timer_.Seconds());
  }
  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;

 private:
  TimerId id_;
  WallTimer timer_;
};

}  // namespace internal
}  // namespace geacc::obs

#if defined(GEACC_NO_STATS)

#define GEACC_STATS_ADD(name, delta) ((void)0)
#define GEACC_PHASE_TIMER(name) ((void)0)

#else

// Interns `name` once per call site, then performs a thread-local add.
// `name` must be a string literal (or have static storage duration).
#define GEACC_STATS_ADD(name, delta)                                       \
  do {                                                                     \
    static const ::geacc::obs::CounterId geacc_stats_counter_id_ =         \
        ::geacc::obs::StatsRegistry::Global().RegisterCounter(name);       \
    ::geacc::obs::StatsRegistry::Global().Add(geacc_stats_counter_id_,     \
                                              (delta));                    \
  } while (0)

#define GEACC_PHASE_TIMER_CONCAT2(a, b) a##b
#define GEACC_PHASE_TIMER_CONCAT(a, b) GEACC_PHASE_TIMER_CONCAT2(a, b)

// Times the enclosing scope into phase timer `name`.
#define GEACC_PHASE_TIMER(name)                                            \
  ::geacc::obs::internal::ScopedPhaseTimer GEACC_PHASE_TIMER_CONCAT(       \
      geacc_phase_timer_, __COUNTER__)(                                    \
      []() -> ::geacc::obs::TimerId {                                      \
        static const ::geacc::obs::TimerId id =                            \
            ::geacc::obs::StatsRegistry::Global().RegisterTimer(name);     \
        return id;                                                         \
      }())

#endif  // GEACC_NO_STATS

#endif  // GEACC_OBS_STATS_H_
