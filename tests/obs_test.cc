// Tests for the observability layer (src/obs/stats.h): registry
// semantics, per-thread isolation, phase timers, and the acceptance
// criterion that every registered solver reports counters through it.

#include "obs/stats.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "algo/solvers.h"
#include "gen/synthetic.h"

namespace geacc::obs {
namespace {

TEST(StatsRegistryTest, RegisterCounterInternsNames) {
  StatsRegistry& registry = StatsRegistry::Global();
  const CounterId id = registry.RegisterCounter("test.intern.a");
  EXPECT_EQ(id, registry.RegisterCounter("test.intern.a"));
  EXPECT_NE(id, registry.RegisterCounter("test.intern.b"));

  const std::vector<std::string> names = registry.CounterNames();
  ASSERT_LT(static_cast<size_t>(id), names.size());
  EXPECT_EQ(names[id], "test.intern.a");
}

TEST(StatsRegistryTest, AddAccumulatesIntoGlobalSnapshot) {
  StatsRegistry& registry = StatsRegistry::Global();
  const CounterId id = registry.RegisterCounter("test.accumulate");
  const int64_t before = registry.CounterValue("test.accumulate");
  registry.Add(id, 3);
  registry.Add(id, 4);
  EXPECT_EQ(registry.CounterValue("test.accumulate"), before + 7);

  const StatsSnapshot snapshot = registry.Snapshot();
  const auto it = snapshot.counters.find("test.accumulate");
  ASSERT_NE(it, snapshot.counters.end());
  EXPECT_EQ(it->second, before + 7);
}

TEST(StatsRegistryTest, SnapshotOmitsZeroCounters) {
  StatsRegistry& registry = StatsRegistry::Global();
  registry.RegisterCounter("test.never.incremented");
  const StatsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.count("test.never.incremented"), 0u);
}

TEST(StatsRegistryTest, SnapshotIncludesOtherThreads) {
  StatsRegistry& registry = StatsRegistry::Global();
  const CounterId id = registry.RegisterCounter("test.cross.thread");
  const int64_t before = registry.CounterValue("test.cross.thread");
  std::thread worker([&] { registry.Add(id, 11); });
  worker.join();
  // The worker has exited, so its total lives in the retired accumulator.
  EXPECT_EQ(registry.CounterValue("test.cross.thread"), before + 11);
}

TEST(StatsScopeTest, HarvestSeesOnlyScopedActivity) {
  StatsRegistry& registry = StatsRegistry::Global();
  const CounterId id = registry.RegisterCounter("test.scope.delta");
  registry.Add(id, 100);  // before the scope: must not appear
  const StatsScope scope;
  registry.Add(id, 5);
  const StatsSnapshot delta = scope.Harvest();
  const auto it = delta.counters.find("test.scope.delta");
  ASSERT_NE(it, delta.counters.end());
  EXPECT_EQ(it->second, 5);
}

TEST(StatsScopeTest, HarvestIgnoresOtherThreads) {
  StatsRegistry& registry = StatsRegistry::Global();
  const CounterId id = registry.RegisterCounter("test.scope.isolation");
  const StatsScope scope;
  std::atomic<bool> done{false};
  std::thread noisy([&] {
    registry.Add(id, 1000);
    done = true;
  });
  noisy.join();
  ASSERT_TRUE(done.load());
  registry.Add(id, 2);
  const StatsSnapshot delta = scope.Harvest();
  const auto it = delta.counters.find("test.scope.isolation");
  ASSERT_NE(it, delta.counters.end());
  EXPECT_EQ(it->second, 2) << "scope must not see the other thread's adds";
}

TEST(StatsScopeTest, EmptyScopeHarvestsNothingNew) {
  const StatsScope scope;
  const StatsSnapshot delta = scope.Harvest();
  EXPECT_TRUE(delta.counters.empty());
  EXPECT_TRUE(delta.timers.empty());
}

TEST(PhaseTimerTest, RecordsSpanCountAndNonNegativeTime) {
  const StatsScope scope;
  for (int i = 0; i < 3; ++i) {
    GEACC_PHASE_TIMER("test.phase.span");
  }
  const StatsSnapshot delta = scope.Harvest();
#if defined(GEACC_NO_STATS)
  EXPECT_TRUE(delta.timers.empty());
#else
  const auto it = delta.timers.find("test.phase.span");
  ASSERT_NE(it, delta.timers.end());
  EXPECT_EQ(it->second.count, 3);
  EXPECT_GE(it->second.seconds, 0.0);
#endif
}

TEST(MacrosTest, StatsAddCompilesAndCounts) {
  const StatsScope scope;
  GEACC_STATS_ADD("test.macro.add", 2);
  GEACC_STATS_ADD("test.macro.add", 3);
  const StatsSnapshot delta = scope.Harvest();
#if defined(GEACC_NO_STATS)
  EXPECT_TRUE(delta.counters.empty());
#else
  const auto it = delta.counters.find("test.macro.add");
  ASSERT_NE(it, delta.counters.end());
  EXPECT_EQ(it->second, 5);
#endif
}

#if !defined(GEACC_NO_STATS)

// Acceptance criterion: every solver in the registry reports at least
// three counters through the observability layer on a nontrivial
// instance.
TEST(SolverCountersTest, EveryRegistrySolverReportsAtLeastThreeCounters) {
  SyntheticConfig config;
  config.num_events = 4;
  config.num_users = 12;
  config.event_capacity = DistributionSpec::Uniform(1.0, 6.0);
  config.user_capacity = DistributionSpec::Uniform(1.0, 2.0);
  config.conflict_density = 0.5;
  config.seed = 7;
  const Instance instance = GenerateSynthetic(config);

  for (const std::string& name : SolverNames()) {
    const auto solver = CreateSolver(name);
    ASSERT_NE(solver, nullptr) << name;
    const StatsScope scope;
    (void)solver->Solve(instance);
    const StatsSnapshot delta = scope.Harvest();
    EXPECT_GE(delta.counters.size(), 3u)
        << name << " reported only " << delta.counters.size()
        << " counters";
  }
}

TEST(SolverCountersTest, PruneReportsNodesVisitedAndPruned) {
  SyntheticConfig config;
  config.num_events = 4;
  config.num_users = 12;
  config.event_capacity = DistributionSpec::Uniform(1.0, 6.0);
  config.user_capacity = DistributionSpec::Uniform(1.0, 2.0);
  config.conflict_density = 0.75;  // conflicts make the bound cut
  config.seed = 11;
  const Instance instance = GenerateSynthetic(config);

  const auto solver = CreateSolver("prune");
  const StatsScope scope;
  (void)solver->Solve(instance);
  const StatsSnapshot delta = scope.Harvest();

  const auto visited = delta.counters.find("prune.nodes_visited");
  ASSERT_NE(visited, delta.counters.end());
  EXPECT_GT(visited->second, 0);
  // The pruned count appears whenever the Lemma 6 bound fired; on this
  // instance it must have (exhaustive search is vastly larger).
  const auto pruned = delta.counters.find("prune.nodes_pruned");
  ASSERT_NE(pruned, delta.counters.end());
  EXPECT_GT(pruned->second, 0);
}

#endif  // !GEACC_NO_STATS

}  // namespace
}  // namespace geacc::obs
