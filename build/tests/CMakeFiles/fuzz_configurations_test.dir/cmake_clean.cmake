file(REMOVE_RECURSE
  "CMakeFiles/fuzz_configurations_test.dir/fuzz_configurations_test.cc.o"
  "CMakeFiles/fuzz_configurations_test.dir/fuzz_configurations_test.cc.o.d"
  "fuzz_configurations_test"
  "fuzz_configurations_test.pdb"
  "fuzz_configurations_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_configurations_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
