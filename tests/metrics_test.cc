// Tests for the arrangement-quality metrics.

#include <gtest/gtest.h>

#include "algo/solvers.h"
#include "exp/metrics.h"
#include "tests/test_util.h"

namespace geacc {
namespace {

using geacc::testing::MakeTableInstance;

TEST(Metrics, EmptyArrangementAllZero) {
  const Instance instance =
      MakeTableInstance({{0.5, 0.5}}, {2}, {1, 1}, {});
  const Arrangement empty(1, 2);
  const ArrangementMetrics metrics = ComputeMetrics(instance, empty);
  EXPECT_EQ(metrics.matched_pairs, 0);
  EXPECT_DOUBLE_EQ(metrics.max_sum, 0.0);
  EXPECT_DOUBLE_EQ(metrics.seat_utilization, 0.0);
  EXPECT_DOUBLE_EQ(metrics.user_coverage, 0.0);
  EXPECT_DOUBLE_EQ(metrics.jain_fairness, 0.0);
}

TEST(Metrics, HandComputedValues) {
  // Events: capacities 2 and 1; users: capacities 1, 1, 1.
  const Instance instance = MakeTableInstance(
      {{0.8, 0.6, 0.4}, {0.5, 0.3, 0.2}}, {2, 1}, {1, 1, 1}, {});
  Arrangement arrangement(2, 3);
  arrangement.Add(0, 0);  // 0.8
  arrangement.Add(0, 1);  // 0.6
  const ArrangementMetrics metrics = ComputeMetrics(instance, arrangement);
  EXPECT_EQ(metrics.matched_pairs, 2);
  EXPECT_NEAR(metrics.max_sum, 1.4, 1e-12);
  EXPECT_NEAR(metrics.mean_matched_similarity, 0.7, 1e-12);
  EXPECT_NEAR(metrics.seat_utilization, 2.0 / 3.0, 1e-12);  // 2 of 3 seats
  EXPECT_NEAR(metrics.events_with_attendees, 0.5, 1e-12);   // event 1 empty
  EXPECT_NEAR(metrics.mean_event_fill, 0.5, 1e-12);  // (2/2 + 0/1) / 2
  EXPECT_NEAR(metrics.user_coverage, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(metrics.mean_user_load, 2.0 / 3.0, 1e-12);
  // Jain over interests {0.8, 0.6, 0}: (1.4)² / (3 · (0.64+0.36)) = 0.6533…
  EXPECT_NEAR(metrics.jain_fairness, 1.96 / 3.0, 1e-12);
}

TEST(Metrics, PerfectFairnessWhenEqualInterest) {
  const Instance instance =
      MakeTableInstance({{0.5, 0.5}}, {2}, {1, 1}, {});
  Arrangement arrangement(1, 2);
  arrangement.Add(0, 0);
  arrangement.Add(0, 1);
  const ArrangementMetrics metrics = ComputeMetrics(instance, arrangement);
  EXPECT_NEAR(metrics.jain_fairness, 1.0, 1e-12);
  EXPECT_NEAR(metrics.user_coverage, 1.0, 1e-12);
  EXPECT_NEAR(metrics.seat_utilization, 1.0, 1e-12);
}

TEST(Metrics, SolverOutputsProduceSaneMetrics) {
  const Instance instance = geacc::testing::SmallRandomInstance(
      6, 20, 0.3, 3, 77);
  for (const char* name : {"greedy", "mincostflow", "random-v"}) {
    const auto result = CreateSolver(name)->Solve(instance);
    const ArrangementMetrics metrics =
        ComputeMetrics(instance, result.arrangement);
    EXPECT_GE(metrics.seat_utilization, 0.0) << name;
    EXPECT_LE(metrics.seat_utilization, 1.0) << name;
    EXPECT_GE(metrics.user_coverage, 0.0) << name;
    EXPECT_LE(metrics.user_coverage, 1.0) << name;
    EXPECT_GE(metrics.jain_fairness, 0.0) << name;
    EXPECT_LE(metrics.jain_fairness, 1.0 + 1e-12) << name;
    EXPECT_GE(metrics.mean_matched_similarity, 0.0) << name;
    EXPECT_LE(metrics.mean_matched_similarity, 1.0) << name;
    EXPECT_NE(metrics.DebugString().find("MaxSum"), std::string::npos);
  }
}

TEST(Metrics, GreedyCoversMoreValueThanRandom) {
  const Instance instance = geacc::testing::SmallRandomInstance(
      8, 40, 0.25, 2, 13);
  const auto greedy = CreateSolver("greedy")->Solve(instance);
  const auto random = CreateSolver("random-v")->Solve(instance);
  const auto greedy_metrics = ComputeMetrics(instance, greedy.arrangement);
  const auto random_metrics = ComputeMetrics(instance, random.arrangement);
  EXPECT_GT(greedy_metrics.max_sum, random_metrics.max_sum);
  EXPECT_GE(greedy_metrics.mean_matched_similarity,
            random_metrics.mean_matched_similarity);
}

TEST(MetricsDeathTest, SizeMismatchDies) {
  const Instance instance =
      MakeTableInstance({{0.5, 0.5}}, {2}, {1, 1}, {});
  const Arrangement wrong(2, 2);
  EXPECT_DEATH(ComputeMetrics(instance, wrong), "GEACC_CHECK failed");
}

}  // namespace
}  // namespace geacc
