// Cross-checks between the two min-cost-flow engines (Dijkstra+potentials
// vs SPFA) and tests of the MinCostFlow-GEACC options that select between
// them and between greedy/exact conflict resolution.

#include <gtest/gtest.h>

#include "algo/conflict_resolution.h"
#include "algo/min_cost_flow_solver.h"
#include "algo/solvers.h"
#include "flow/graph.h"
#include "flow/min_cost_flow.h"
#include "flow/spfa_min_cost_flow.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace geacc {
namespace {

using geacc::testing::MakeTableInstance;
using geacc::testing::SmallRandomInstance;

FlowGraph RandomBipartite(int events, int users, uint64_t seed, int* source,
                          int* sink) {
  Rng rng(seed);
  FlowGraph graph(events + users + 2);
  *source = 0;
  *sink = events + users + 1;
  for (int v = 0; v < events; ++v) {
    graph.AddArc(*source, 1 + v, rng.UniformInt(1, 3), 0.0);
  }
  for (int v = 0; v < events; ++v) {
    for (int u = 0; u < users; ++u) {
      graph.AddArc(1 + v, 1 + events + u, 1, rng.NextDouble());
    }
  }
  for (int u = 0; u < users; ++u) {
    graph.AddArc(1 + events + u, *sink, rng.UniformInt(1, 2), 0.0);
  }
  return graph;
}

class FlowEngineAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FlowEngineAgreementTest, PerUnitCostsAgree) {
  int source = 0, sink = 0;
  FlowGraph dijkstra_graph =
      RandomBipartite(4, 7, GetParam(), &source, &sink);
  FlowGraph spfa_graph = RandomBipartite(4, 7, GetParam(), &source, &sink);
  SuccessiveShortestPaths dijkstra(&dijkstra_graph, source, sink);
  SpfaMinCostFlow spfa(&spfa_graph, source, sink);
  while (true) {
    const double dijkstra_before = dijkstra.total_cost();
    const double spfa_before = spfa.total_cost();
    const int64_t a = dijkstra.Augment(1);
    const int64_t b = spfa.Augment(1);
    ASSERT_EQ(a, b);
    if (a == 0) break;
    ASSERT_NEAR(dijkstra.total_cost() - dijkstra_before,
                spfa.total_cost() - spfa_before, 1e-6);
  }
  EXPECT_EQ(dijkstra.total_flow(), spfa.total_flow());
  EXPECT_NEAR(dijkstra.total_cost(), spfa.total_cost(), 1e-6);
}

TEST_P(FlowEngineAgreementTest, ProfitableSweepAgrees) {
  int source = 0, sink = 0;
  FlowGraph dijkstra_graph =
      RandomBipartite(5, 8, GetParam() + 333, &source, &sink);
  FlowGraph spfa_graph =
      RandomBipartite(5, 8, GetParam() + 333, &source, &sink);
  SuccessiveShortestPaths dijkstra(&dijkstra_graph, source, sink);
  SpfaMinCostFlow spfa(&spfa_graph, source, sink);
  int64_t a = 0, b = 0;
  while (dijkstra.AugmentIfCheaper(0.8) == 1) ++a;
  while (spfa.AugmentIfCheaper(0.8) == 1) ++b;
  EXPECT_EQ(a, b);
  EXPECT_NEAR(dijkstra.total_cost(), spfa.total_cost(), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowEngineAgreementTest,
                         ::testing::Range<uint64_t>(0, 15));

TEST(SpfaMinCostFlow, HandlesNegativeCostsWithoutBootstrap) {
  FlowGraph graph(4);
  graph.AddArc(0, 1, 1, -2.0);
  graph.AddArc(1, 3, 1, 1.0);
  graph.AddArc(0, 2, 1, 0.0);
  graph.AddArc(2, 3, 1, 0.5);
  SpfaMinCostFlow spfa(&graph, 0, 3);
  EXPECT_EQ(spfa.RunToMaxFlow(), 2);
  EXPECT_DOUBLE_EQ(spfa.total_cost(), -0.5);
}

TEST(MinCostFlowSolver, SpfaEngineGivesSameMaxSum) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    const Instance instance = SmallRandomInstance(5, 12, 0.3, 3, seed);
    SolverOptions dijkstra_options, spfa_options;
    spfa_options.flow_algorithm = "spfa";
    const double a = MinCostFlowSolver(dijkstra_options)
                         .Solve(instance)
                         .arrangement.MaxSum(instance);
    const SolveResult spfa_result =
        MinCostFlowSolver(spfa_options).Solve(instance);
    EXPECT_EQ(spfa_result.arrangement.Validate(instance), "");
    EXPECT_NEAR(a, spfa_result.arrangement.MaxSum(instance), 1e-9)
        << "seed " << seed;
  }
}

TEST(MinCostFlowSolverDeathTest, RejectsUnknownFlowAlgorithm) {
  SolverOptions options;
  options.flow_algorithm = "bogus";
  const MinCostFlowSolver solver(options);
  const Instance instance = SmallRandomInstance(2, 3, 0.0, 1, 1);
  EXPECT_DEATH(solver.Solve(instance), "unknown flow_algorithm");
}

// ------------------------------------------ exact conflict resolution ----

TEST(ExactConflictResolution, BeatsGreedyOnItsWorstCase) {
  // Greedy keeps {0.9}; exact keeps {0.8, 0.8}.
  const Instance instance = MakeTableInstance(
      {{0.9}, {0.8}, {0.8}}, {1, 1, 1}, {3}, {{0, 1}, {0, 2}});
  const auto greedy = GreedySelectNonConflicting(instance, 0, {0, 1, 2});
  const auto exact = ExactSelectNonConflicting(instance, 0, {0, 1, 2});
  EXPECT_EQ(greedy, (std::vector<EventId>{0}));
  EXPECT_EQ(exact, (std::vector<EventId>{1, 2}));
}

TEST(ExactConflictResolution, EmptyAndSingleton) {
  const Instance instance = MakeTableInstance({{0.5}}, {1}, {1}, {});
  EXPECT_TRUE(ExactSelectNonConflicting(instance, 0, {}).empty());
  EXPECT_EQ(ExactSelectNonConflicting(instance, 0, {0}),
            (std::vector<EventId>{0}));
}

TEST(ExactConflictResolution, NeverWorseThanGreedyProperty) {
  for (uint64_t seed = 0; seed < 30; ++seed) {
    const Instance instance = SmallRandomInstance(8, 1, 0.5, 8, seed + 50);
    std::vector<EventId> all_events;
    for (EventId v = 0; v < instance.num_events(); ++v) {
      if (instance.Similarity(v, 0) > 0.0) all_events.push_back(v);
    }
    auto weight_of = [&](const std::vector<EventId>& events) {
      double sum = 0.0;
      for (const EventId v : events) sum += instance.Similarity(v, 0);
      return sum;
    };
    const double greedy =
        weight_of(GreedySelectNonConflicting(instance, 0, all_events));
    const double exact =
        weight_of(ExactSelectNonConflicting(instance, 0, all_events));
    EXPECT_GE(exact, greedy - 1e-12) << "seed " << seed;
  }
}

TEST(MinCostFlowSolver, ExactResolutionNeverWorseEndToEnd) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    const Instance instance = SmallRandomInstance(6, 10, 0.6, 4, seed + 9);
    SolverOptions greedy_options, exact_options;
    exact_options.exact_conflict_resolution = true;
    const double greedy = MinCostFlowSolver(greedy_options)
                              .Solve(instance)
                              .arrangement.MaxSum(instance);
    const SolveResult exact = MinCostFlowSolver(exact_options).Solve(instance);
    EXPECT_EQ(exact.arrangement.Validate(instance), "");
    EXPECT_GE(exact.arrangement.MaxSum(instance), greedy - 1e-9)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace geacc
