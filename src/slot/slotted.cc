#include "slot/slotted.h"

#include <utility>

#include "core/masked_similarity.h"
#include "util/check.h"
#include "util/string_util.h"

namespace geacc {
namespace slot {

bool SlotTable::Conflicting(SlotId a, SlotId b) const {
  GEACC_DCHECK(a >= 0 && a < size());
  GEACC_DCHECK(b >= 0 && b < size());
  return WindowsConflict(windows[a], windows[b], speed_kmph);
}

std::string SlottedInstance::Validate() const {
  const int num_slots = slots.size();
  if (num_slots < 1 || num_slots > kMaxTimeSlots) {
    return StrFormat("slot count %d outside [1, %d]", num_slots,
                     kMaxTimeSlots);
  }
  for (int s = 0; s < num_slots; ++s) {
    if (slots.windows[s].start_hours > slots.windows[s].end_hours) {
      return StrFormat("slot %d window has start > end", s);
    }
  }
  const uint32_t mask_limit =
      num_slots == 32 ? 0xffffffffu : ((uint32_t{1} << num_slots) - 1);
  if (static_cast<int>(event_allowed.size()) != base.num_events()) {
    return StrFormat("event_allowed has %zu entries for %d events",
                     event_allowed.size(), base.num_events());
  }
  for (EventId v = 0; v < base.num_events(); ++v) {
    if (event_allowed[v] == 0) {
      return StrFormat("event %d has no allowed slots", v);
    }
    if ((event_allowed[v] & ~mask_limit) != 0) {
      return StrFormat("event %d allowed mask references slots >= %d", v,
                       num_slots);
    }
  }
  if (static_cast<int>(user_availability.size()) != base.num_users()) {
    return StrFormat("user_availability has %zu entries for %d users",
                     user_availability.size(), base.num_users());
  }
  for (UserId u = 0; u < base.num_users(); ++u) {
    if ((user_availability[u] & ~mask_limit) != 0) {
      return StrFormat("user %d availability references slots >= %d", u,
                       num_slots);
    }
  }
  return base.Validate();
}

ConflictGraph DeriveConflicts(const SlottedInstance& slotted,
                              const Slotting& slotting) {
  const int num_events = slotted.base.num_events();
  GEACC_CHECK_EQ(static_cast<int>(slotting.size()), num_events);
  ConflictGraph graph(num_events);
  for (EventId v = 0; v < num_events; ++v) {
    if (slotting[v] == kInvalidSlot) continue;
    for (EventId w = v + 1; w < num_events; ++w) {
      if (slotting[w] == kInvalidSlot) continue;
      if (slotted.slots.Conflicting(slotting[v], slotting[w])) {
        graph.AddConflict(v, w);
      }
    }
  }
  return graph;
}

std::vector<uint8_t> PairMask(const SlottedInstance& slotted,
                              const Slotting& slotting) {
  const int num_events = slotted.base.num_events();
  const int num_users = slotted.base.num_users();
  GEACC_CHECK_EQ(static_cast<int>(slotting.size()), num_events);
  std::vector<uint8_t> allowed(
      static_cast<size_t>(num_events) * static_cast<size_t>(num_users), 0);
  for (EventId v = 0; v < num_events; ++v) {
    const SlotId s = slotting[v];
    if (s == kInvalidSlot) continue;
    for (UserId u = 0; u < num_users; ++u) {
      if ((slotted.user_availability[u] >> s) & 1u) {
        allowed[static_cast<size_t>(v) * num_users + u] = 1;
      }
    }
  }
  return allowed;
}

Instance MakeSubInstance(const SlottedInstance& slotted,
                         const Slotting& slotting) {
  const Instance& base = slotted.base;
  std::vector<int> event_capacities(base.num_events());
  for (EventId v = 0; v < base.num_events(); ++v) {
    event_capacities[v] = base.event_capacity(v);
  }
  std::vector<int> user_capacities(base.num_users());
  for (UserId u = 0; u < base.num_users(); ++u) {
    user_capacities[u] = base.user_capacity(u);
  }
  Instance with_conflicts(base.event_attributes(), std::move(event_capacities),
                          base.user_attributes(), std::move(user_capacities),
                          DeriveConflicts(slotted, slotting),
                          base.similarity().Clone());
  return MaskInstance(with_conflicts, PairMask(slotted, slotting));
}

std::string AuditSlotted(const SlottedInstance& slotted,
                         const Slotting& slotting,
                         const Arrangement& arrangement) {
  const int num_events = slotted.base.num_events();
  if (static_cast<int>(slotting.size()) != num_events) {
    return StrFormat("slotting has %zu entries for %d events",
                     slotting.size(), num_events);
  }
  for (EventId v = 0; v < num_events; ++v) {
    const SlotId s = slotting[v];
    if (s == kInvalidSlot) {
      if (arrangement.EventLoad(v) > 0) {
        return StrFormat("unscheduled event %d has matched users", v);
      }
      continue;
    }
    if (s < 0 || s >= slotted.num_slots()) {
      return StrFormat("event %d scheduled into unknown slot %d", v, s);
    }
    if (((slotted.event_allowed[v] >> s) & 1u) == 0) {
      return StrFormat("event %d scheduled into disallowed slot %d", v, s);
    }
  }
  for (UserId u = 0; u < slotted.base.num_users(); ++u) {
    for (const EventId v : arrangement.EventsOf(u)) {
      const SlotId s = slotting[v];
      if (s >= 0 && ((slotted.user_availability[u] >> s) & 1u) == 0) {
        return StrFormat("user %d matched to event %d in unavailable slot %d",
                         u, v, s);
      }
    }
  }
  // Capacity / derived-conflict / positivity / duplicate checks against
  // the induced plain instance.
  return arrangement.Validate(MakeSubInstance(slotted, slotting));
}

}  // namespace slot
}  // namespace geacc
