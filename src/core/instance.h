// A GEACC problem instance (paper Definition 5).
//
// Holds the event side (attributes + capacities), the user side (attributes
// + capacities), the conflict graph over events, and the similarity
// function. Instances are immutable after construction; build them with
// InstanceBuilder or one of the generators in src/gen/.

#ifndef GEACC_CORE_INSTANCE_H_
#define GEACC_CORE_INSTANCE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/attributes.h"
#include "core/conflict_graph.h"
#include "core/similarity.h"
#include "core/types.h"

namespace geacc {

class Instance {
 public:
  Instance(AttributeMatrix event_attributes, std::vector<int> event_capacities,
           AttributeMatrix user_attributes, std::vector<int> user_capacities,
           ConflictGraph conflicts,
           std::unique_ptr<SimilarityFunction> similarity);

  // Move-only; use Clone() for an explicit deep copy.
  Instance(Instance&&) = default;
  Instance& operator=(Instance&&) = default;
  Instance(const Instance&) = delete;
  Instance& operator=(const Instance&) = delete;

  Instance Clone() const;

  int num_events() const { return event_attributes_.rows(); }
  int num_users() const { return user_attributes_.rows(); }
  int dim() const { return event_attributes_.dim(); }

  int event_capacity(EventId v) const {
    GEACC_DCHECK(v >= 0 && v < num_events());
    return event_capacities_[v];
  }
  int user_capacity(UserId u) const {
    GEACC_DCHECK(u >= 0 && u < num_users());
    return user_capacities_[u];
  }

  // Largest user capacity (the α in the approximation ratios); 0 if |U|=0.
  int max_user_capacity() const { return max_user_capacity_; }
  int max_event_capacity() const { return max_event_capacity_; }

  int64_t total_event_capacity() const { return total_event_capacity_; }
  int64_t total_user_capacity() const { return total_user_capacity_; }

  // sim(l_v, l_u) per the instance's similarity function. O(dim).
  double Similarity(EventId v, UserId u) const {
    return similarity_->Compute(event_attributes_.Row(v),
                                user_attributes_.Row(u), dim());
  }

  // Batched row: out[u] = Similarity(v, u) for every user, via the SIMD
  // kernels over the lazily-built blocked mirror of the user attributes.
  // `out` must hold num_users() doubles. O(|U| × dim); bit-identical to
  // the per-pair loop in strict mode (simd/kernels.h). Safe to call
  // concurrently from read-only solver workers.
  void SimilarityRow(EventId v, simd::FpMode fp, double* out) const {
    similarity_->ComputeBatch(event_attributes_.Row(v),
                              user_attributes_.Blocked(), fp, out);
  }

  const AttributeMatrix& event_attributes() const { return event_attributes_; }
  const AttributeMatrix& user_attributes() const { return user_attributes_; }
  const ConflictGraph& conflicts() const { return conflicts_; }
  const SimilarityFunction& similarity() const { return *similarity_; }

  // Structural sanity checks (capacity positivity, conflict-graph size,
  // attribute dimensions). Returns an empty string when valid, else a
  // description of the first problem found.
  std::string Validate() const;

  uint64_t ByteEstimate() const;

  // One-line summary for logs: |V|, |U|, d, densities.
  std::string DebugString() const;

 private:
  AttributeMatrix event_attributes_;
  std::vector<int> event_capacities_;
  AttributeMatrix user_attributes_;
  std::vector<int> user_capacities_;
  ConflictGraph conflicts_;
  std::unique_ptr<SimilarityFunction> similarity_;

  int max_user_capacity_ = 0;
  int max_event_capacity_ = 0;
  int64_t total_event_capacity_ = 0;
  int64_t total_user_capacity_ = 0;
};

// Incremental construction of small instances (examples, tests).
class InstanceBuilder {
 public:
  InstanceBuilder& SetSimilarity(std::unique_ptr<SimilarityFunction> sim);

  // Returns the new event's id.
  EventId AddEvent(std::vector<double> attributes, int capacity);
  // Returns the new user's id.
  UserId AddUser(std::vector<double> attributes, int capacity);

  InstanceBuilder& AddConflict(EventId a, EventId b);

  // Finalizes the instance. Defaults the similarity to EuclideanSimilarity
  // with T = max observed attribute value (or 1.0) if none was set.
  Instance Build();

 private:
  std::vector<std::vector<double>> event_rows_;
  std::vector<int> event_capacities_;
  std::vector<std::vector<double>> user_rows_;
  std::vector<int> user_capacities_;
  std::vector<std::pair<EventId, EventId>> conflicts_;
  std::unique_ptr<SimilarityFunction> similarity_;
};

}  // namespace geacc

#endif  // GEACC_CORE_INSTANCE_H_
