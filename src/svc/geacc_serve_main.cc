// geacc_serve: stand up an ArrangementService over TCP (DESIGN.md §11).
//
// Boots a synthetic instance (paper Table III knobs), solves it with the
// fallback solver, then serves svc/wire traffic on 127.0.0.1:--port until
// SIGINT/SIGTERM (or --duration_s elapses). If --wal names an existing
// log, the service recovers from it instead of regenerating — restart
// with the same --wal to resume where the last run stopped; add
// --checkpoint to bound recovery to the WAL suffix past the last paged
// checkpoint (DESIGN.md §14). Pair with bench/loadgen:
//
//   geacc_serve --port 7411 --events 500 --users 10000 &
//   loadgen --port 7411 --threads 4 --duration_s 5 --json report.json

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>

#include "gen/synthetic.h"
#include "svc/server.h"
#include "svc/service.h"
#include "util/flags.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int /*signal*/) { g_stop.store(true); }

}  // namespace

int main(int argc, char** argv) {
  int port = 7411;
  int events = 500;
  int users = 10000;
  int dim = 20;
  int64_t seed = 42;
  double conflict_density = 0.25;
  std::string similarity = "euclidean";
  int batch_size = 64;
  int queue_depth = 1024;
  std::string wal;
  std::string checkpoint;
  int64_t checkpoint_every = 64;
  std::string index = "linear";
  int64_t storage_budget_mb = 16;
  std::string storage_dir;
  std::string fallback = "greedy";
  int64_t repair_budget = 0;
  double drift_threshold = 0.1;
  bool score_only = false;
  int duration_s = 0;

  geacc::FlagSet flags;
  flags.AddInt("port", &port, "TCP port on 127.0.0.1 (0 = ephemeral)");
  flags.AddInt("events", &events, "synthetic |V|");
  flags.AddInt("users", &users, "synthetic |U|");
  flags.AddInt("dim", &dim, "attribute dimension");
  flags.AddInt("seed", &seed, "generator seed");
  flags.AddDouble("conflict_density", &conflict_density,
                  "synthetic conflict density");
  flags.AddString("similarity", &similarity,
                  "euclidean | cosine | rbf");
  flags.AddInt("batch_size", &batch_size,
               "mutations applied per snapshot publish");
  flags.AddInt("queue_depth", &queue_depth,
               "submit queue bound (full => overloaded)");
  flags.AddString("wal", &wal, "WAL path for crash recovery (empty = off)");
  flags.AddString("checkpoint", &checkpoint,
                  "paged checkpoint path (DESIGN.md §14): recovery replays "
                  "only the WAL suffix past it (empty = full replay)");
  flags.AddInt("checkpoint_every", &checkpoint_every,
               "applied batches between checkpoints");
  flags.AddString("index", &index, "repair k-NN backend");
  flags.AddInt("storage_budget_mb", &storage_budget_mb,
               "idistance-paged only: buffer-pool budget in MiB");
  flags.AddString("storage_dir", &storage_dir,
                  "idistance-paged only: temp page-file directory "
                  "(default: TMPDIR or /tmp)");
  flags.AddString("fallback", &fallback, "full-resolve solver");
  flags.AddInt("repair_budget", &repair_budget,
               "cursor steps per repair (0 = unlimited)");
  flags.AddDouble("drift_threshold", &drift_threshold,
                  "full-resolve trigger (<= 0 disables)");
  flags.AddBool("score_only", &score_only,
                "shard-replica mode (DESIGN.md §16): no bootstrap solve and "
                "no repair refill — the coordinator owns the arrangement "
                "and pushes it via install");
  flags.AddInt("duration_s", &duration_s, "exit after this long (0 = forever)");
  flags.Parse(argc, argv);

  geacc::svc::ServiceOptions options;
  options.batch_size = batch_size;
  options.queue_depth = queue_depth;
  options.wal_path = wal;
  options.paged_checkpoint_path = checkpoint;
  options.checkpoint_interval_batches = static_cast<int>(checkpoint_every);
  options.repair.index = index;
  options.repair.storage_budget_bytes =
      static_cast<uint64_t>(storage_budget_mb) << 20;
  options.repair.storage_dir = storage_dir;
  options.repair.fallback_solver = fallback;
  options.repair.repair_budget = repair_budget;
  options.repair.drift_threshold = drift_threshold;
  if (score_only) {
    options.bootstrap_full_resolve = false;
    options.repair.refill = false;
  }

  // An existing WAL wins over the synthetic knobs: restarting with the
  // same --wal resumes the logged state instead of regenerating (and
  // silently truncating the log).
  std::unique_ptr<geacc::svc::ArrangementService> service;
  if (!wal.empty() && std::ifstream(wal).good()) {
    std::fprintf(stderr, "geacc_serve: recovering from %s...\n", wal.c_str());
    std::string wal_error;
    service = geacc::svc::ArrangementService::Recover(options, &wal_error);
    if (service == nullptr) {
      std::fprintf(stderr, "geacc_serve: recovery failed: %s\n",
                   wal_error.c_str());
      return 1;
    }
  } else {
    geacc::SyntheticConfig config;
    config.num_events = events;
    config.num_users = users;
    config.dim = dim;
    config.seed = static_cast<uint64_t>(seed);
    config.conflict_density = conflict_density;
    config.similarity = similarity;

    std::fprintf(stderr, "geacc_serve: generating |V|=%d |U|=%d d=%d...\n",
                 events, users, dim);
    std::fprintf(stderr, "geacc_serve: bootstrapping arrangement...\n");
    service = std::make_unique<geacc::svc::ArrangementService>(
        GenerateSynthetic(config), options);
  }
  const geacc::svc::ServiceStatsView stats = service->Stats();
  std::fprintf(stderr, "geacc_serve: MaxSum %.4f over %lld pairs\n",
               stats.max_sum, static_cast<long long>(stats.pairs));

  geacc::svc::ServiceServer server(service.get());
  std::string error;
  if (!server.Start(port, &error)) {
    std::fprintf(stderr, "geacc_serve: %s\n", error.c_str());
    return 1;
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  // stdout and unbuffered: supervisors (CI smoke) wait for this line.
  std::printf("geacc_serve listening on port %d\n", server.port());
  std::fflush(stdout);

  const auto started = std::chrono::steady_clock::now();
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (duration_s > 0 &&
        std::chrono::steady_clock::now() - started >=
            std::chrono::seconds(duration_s)) {
      break;
    }
  }

  std::fprintf(stderr, "geacc_serve: shutting down\n");
  server.Stop();
  service->Stop();
  return 0;
}
