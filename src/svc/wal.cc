#include "svc/wal.h"

#include <utility>

#include "io/instance_io.h"
#include "io/line_reader.h"
#include "io/trace_io.h"
#include "util/string_util.h"

namespace geacc::svc {
namespace {

using io_internal::Fail;
using io_internal::LineReader;

constexpr char kWalHeader[] = "geacc-svc-wal";
constexpr char kWalSentinel[] = "wal-mutations";

}  // namespace

bool WalWriter::Open(const std::string& path, const Instance& initial,
                     std::string* error) {
  out_.open(path, std::ios::trunc);
  if (!out_) {
    Fail(error, "cannot open '" + path + "' for writing");
    return false;
  }
  out_ << kWalHeader << " v1\n";
  WriteInstance(initial, out_);
  out_ << kWalSentinel << "\n";
  return Sync();
}

bool WalWriter::OpenForAppend(const std::string& path, std::string* error) {
  out_.open(path, std::ios::app);
  if (!out_) {
    Fail(error, "cannot open '" + path + "' for appending");
    return false;
  }
  return true;
}

bool WalWriter::Append(const Mutation& mutation) {
  if (!out_.is_open()) return false;
  WriteMutationLine(mutation, out_);
  return static_cast<bool>(out_);
}

bool WalWriter::Sync() {
  if (!out_.is_open()) return false;
  out_.flush();
  return static_cast<bool>(out_);
}

void WalWriter::Close() {
  if (out_.is_open()) {
    out_.flush();
    out_.close();
  }
}

std::optional<WalContents> ReadWal(const std::string& path,
                                   std::string* error) {
  std::ifstream is(path);
  if (!is) {
    Fail(error, "cannot open '" + path + "'");
    return std::nullopt;
  }

  {
    LineReader header(is);
    const auto tokens = header.NextTokens();
    if (tokens.size() != 2 || tokens[0] != kWalHeader || tokens[1] != "v1") {
      Fail(error, "expected header 'geacc-svc-wal v1'");
      return std::nullopt;
    }
  }

  std::string instance_error;
  std::optional<Instance> initial = ReadInstance(is, &instance_error);
  if (!initial) {
    Fail(error, "embedded instance: " + instance_error);
    return std::nullopt;
  }
  const int dim = initial->dim();

  {
    LineReader sentinel(is);
    const auto tokens = sentinel.NextTokens();
    if (tokens.size() != 1 || tokens[0] != kWalSentinel) {
      Fail(error, "expected '" + std::string(kWalSentinel) +
                      "' after the embedded instance");
      return std::nullopt;
    }
  }

  WalContents contents{std::move(*initial), {}, 0};
  // Parse mutation lines to EOF by hand (not LineReader) so a torn final
  // line — no trailing newline, the crash signature — is distinguishable
  // from corruption in the middle of the log.
  std::string line;
  std::string pending_error;
  bool pending = false;
  int64_t line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    if (pending) {
      // The malformed line had lines after it: real corruption.
      Fail(error, StrFormat("mutation line %lld: %s",
                            static_cast<long long>(line_number - 1),
                            pending_error.c_str()));
      return std::nullopt;
    }
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::string mutation_error;
    std::optional<Mutation> mutation =
        ParseMutationLine(std::string(trimmed), dim, &mutation_error);
    if (!mutation) {
      pending = true;
      pending_error = mutation_error;
      continue;
    }
    contents.mutations.push_back(std::move(*mutation));
  }
  if (pending) contents.dropped_tail_lines = 1;
  return contents;
}

bool WriteCheckpoint(const Instance& instance, const Arrangement& arrangement,
                     const std::string& path, std::string* error) {
  std::ofstream os(path, std::ios::trunc);
  if (!os) {
    Fail(error, "cannot open '" + path + "' for writing");
    return false;
  }
  WriteInstance(instance, os);
  WriteArrangement(arrangement, os);
  os.flush();
  if (!os) {
    Fail(error, "write to '" + path + "' failed");
    return false;
  }
  return true;
}

std::optional<Checkpoint> ReadCheckpoint(const std::string& path,
                                         std::string* error) {
  std::ifstream is(path);
  if (!is) {
    Fail(error, "cannot open '" + path + "'");
    return std::nullopt;
  }
  std::string instance_error;
  std::optional<Instance> instance = ReadInstance(is, &instance_error);
  if (!instance) {
    Fail(error, "checkpoint instance: " + instance_error);
    return std::nullopt;
  }
  std::string arrangement_error;
  std::optional<Arrangement> arrangement =
      ReadArrangement(is, *instance, &arrangement_error);
  if (!arrangement) {
    Fail(error, "checkpoint arrangement: " + arrangement_error);
    return std::nullopt;
  }
  return Checkpoint{std::move(*instance), std::move(*arrangement)};
}

}  // namespace geacc::svc
