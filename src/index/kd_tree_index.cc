#include "index/kd_tree_index.h"

#include <algorithm>
#include <queue>

#include "obs/stats.h"
#include "util/check.h"
#include "util/memory.h"

namespace geacc {
namespace {

// Best-first queue entry: a tree node (lower bound) or a concrete point
// (exact distance). Ordered by (distance, kind, id) so the enumeration is
// deterministic under ties; points sort before nodes at equal distance so
// that an exact answer is emitted before expanding an equally-far subtree.
struct QueueEntry {
  double distance_sq;
  bool is_point;
  int id;  // point id or node index

  bool operator>(const QueueEntry& other) const {
    if (distance_sq != other.distance_sq) {
      return distance_sq > other.distance_sq;
    }
    if (is_point != other.is_point) return !is_point;  // points first
    return id > other.id;
  }
};

}  // namespace

class KdTreeCursor final : public NnCursor {
 public:
  KdTreeCursor(const KdTreeIndex& index, const double* query)
      : index_(index), query_(query) {
    if (index_.root_ >= 0) {
      queue_.push({index_.MinSquaredDistance(index_.nodes_[index_.root_],
                                             query_),
                   false, index_.root_});
    }
  }

  // Per-step counts are batched into members and flushed once here —
  // Next() is too hot for a registry touch per call (DESIGN.md §9.1).
  ~KdTreeCursor() override {
    GEACC_STATS_ADD("index.kdtree.cursor_steps", steps_);
    GEACC_STATS_ADD("index.kdtree.node_expansions", expansions_);
  }

  std::optional<Neighbor> Next() override {
    ++steps_;
    while (!queue_.empty()) {
      const QueueEntry top = queue_.top();
      queue_.pop();
      if (top.is_point) {
        const double* point = index_.points_.Row(top.id);
        return Neighbor{top.id, index_.similarity_.Compute(
                                    point, query_, index_.points_.dim())};
      }
      ++expansions_;
      const KdTreeIndex::Node& node = index_.nodes_[top.id];
      if (node.IsLeaf()) {
        for (int i = node.begin; i < node.end; ++i) {
          const int point_id = index_.point_ids_[i];
          queue_.push({SquaredEuclideanDistance(index_.points_.Row(point_id),
                                                query_, index_.points_.dim()),
                       true, point_id});
        }
      } else {
        for (const int child : {node.left, node.right}) {
          queue_.push({index_.MinSquaredDistance(index_.nodes_[child], query_),
                       false, child});
        }
      }
    }
    return std::nullopt;
  }

 private:
  const KdTreeIndex& index_;
  const double* query_;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue_;
  int64_t steps_ = 0;
  int64_t expansions_ = 0;
};

KdTreeIndex::KdTreeIndex(const AttributeMatrix& points,
                         const SimilarityFunction& similarity)
    : KnnIndex(points.rows()), points_(points), similarity_(similarity) {
  GEACC_CHECK(similarity.IsEuclideanMonotone())
      << "kd-tree ordering requires a Euclidean-monotone similarity; got "
      << similarity.Name();
  point_ids_.resize(points.rows());
  for (int i = 0; i < points.rows(); ++i) point_ids_[i] = i;
  if (!point_ids_.empty()) {
    nodes_.reserve(2 * point_ids_.size() / kLeafSize + 2);
    root_ = BuildNode(0, static_cast<int>(point_ids_.size()));
  }
}

int KdTreeIndex::BuildNode(int begin, int end) {
  const int dim = points_.dim();
  const int node_index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  {
    Node& node = nodes_.back();
    node.begin = begin;
    node.end = end;
    node.box_min.assign(dim, 0.0);
    node.box_max.assign(dim, 0.0);
    for (int j = 0; j < dim; ++j) {
      double lo = points_.At(point_ids_[begin], j);
      double hi = lo;
      for (int i = begin + 1; i < end; ++i) {
        const double x = points_.At(point_ids_[i], j);
        lo = std::min(lo, x);
        hi = std::max(hi, x);
      }
      node.box_min[j] = lo;
      node.box_max[j] = hi;
    }
  }
  if (end - begin <= kLeafSize) return node_index;

  // Split on the widest box dimension at the median.
  int split_dim = 0;
  {
    const Node& node = nodes_[node_index];
    double widest = -1.0;
    for (int j = 0; j < dim; ++j) {
      const double extent = node.box_max[j] - node.box_min[j];
      if (extent > widest) {
        widest = extent;
        split_dim = j;
      }
    }
    if (widest <= 0.0) return node_index;  // all points identical: leaf
  }
  const int mid = begin + (end - begin) / 2;
  std::nth_element(point_ids_.begin() + begin, point_ids_.begin() + mid,
                   point_ids_.begin() + end, [&](int a, int b) {
                     const double xa = points_.At(a, split_dim);
                     const double xb = points_.At(b, split_dim);
                     if (xa != xb) return xa < xb;
                     return a < b;  // deterministic tie-break
                   });
  // Recursion may reallocate nodes_, so assign children afterwards.
  const int left = BuildNode(begin, mid);
  const int right = BuildNode(mid, end);
  nodes_[node_index].left = left;
  nodes_[node_index].right = right;
  return node_index;
}

double KdTreeIndex::MinSquaredDistance(const Node& node,
                                       const double* query) const {
  double sum = 0.0;
  for (int j = 0; j < points_.dim(); ++j) {
    double diff = 0.0;
    if (query[j] < node.box_min[j]) {
      diff = node.box_min[j] - query[j];
    } else if (query[j] > node.box_max[j]) {
      diff = query[j] - node.box_max[j];
    }
    sum += diff * diff;
  }
  return sum;
}

std::vector<Neighbor> KdTreeIndex::Query(const double* query, int k) const {
  std::vector<Neighbor> result;
  if (k <= 0) return result;
  KdTreeCursor cursor(*this, query);
  result.reserve(std::min(k, num_points()));
  while (static_cast<int>(result.size()) < k) {
    const auto next = cursor.Next();
    if (!next) break;
    result.push_back(*next);
  }
  return result;
}

std::unique_ptr<NnCursor> KdTreeIndex::CreateCursor(
    const double* query) const {
  return std::make_unique<KdTreeCursor>(*this, query);
}

uint64_t KdTreeIndex::ByteEstimate() const {
  uint64_t bytes = VectorBytes(point_ids_) + VectorBytes(nodes_);
  for (const Node& node : nodes_) {
    bytes += VectorBytes(node.box_min) + VectorBytes(node.box_max);
  }
  return bytes;
}

}  // namespace geacc
