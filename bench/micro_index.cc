// Microbenchmarks: k-NN index substrate — build cost and incremental
// cursor advances for linear scan vs kd-tree, at low and high
// dimensionality (the kd-tree pays off at low d and degrades toward a
// scan at the paper's default d = 20).

#include <benchmark/benchmark.h>

#include "bench/micro_common.h"

#include <memory>
#include <string>

#include "core/attributes.h"
#include "core/similarity.h"
#include "index/knn_index.h"
#include "util/rng.h"

namespace geacc {
namespace {

AttributeMatrix RandomPoints(int n, int dim, uint64_t seed) {
  Rng rng(seed);
  AttributeMatrix points(n, dim);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < dim; ++j) {
      points.Set(i, j, rng.UniformReal(0.0, 10000.0));
    }
  }
  return points;
}

void BM_IndexBuild(benchmark::State& state, const std::string& name) {
  const int n = static_cast<int>(state.range(0));
  const int dim = static_cast<int>(state.range(1));
  const AttributeMatrix points = RandomPoints(n, dim, 3);
  const EuclideanSimilarity sim(10000.0);
  for (auto _ : state) {
    const auto index = MakeIndex(name, points, sim);
    benchmark::DoNotOptimize(index->num_points());
  }
}

// First 32 cursor advances (what Greedy-GEACC's frontiers mostly do).
void BM_CursorAdvance32(benchmark::State& state, const std::string& name) {
  const int n = static_cast<int>(state.range(0));
  const int dim = static_cast<int>(state.range(1));
  const AttributeMatrix points = RandomPoints(n, dim, 3);
  const AttributeMatrix queries = RandomPoints(16, dim, 4);
  const EuclideanSimilarity sim(10000.0);
  const auto index = MakeIndex(name, points, sim);
  int q = 0;
  for (auto _ : state) {
    auto cursor = index->CreateCursor(queries.Row(q));
    q = (q + 1) % queries.rows();
    for (int i = 0; i < 32; ++i) {
      benchmark::DoNotOptimize(cursor->Next());
    }
  }
}

// Full enumeration (deep cursors, the Fig. 5 scalability stress).
void BM_CursorDrain(benchmark::State& state, const std::string& name) {
  const int n = static_cast<int>(state.range(0));
  const int dim = static_cast<int>(state.range(1));
  const AttributeMatrix points = RandomPoints(n, dim, 3);
  const EuclideanSimilarity sim(10000.0);
  const auto index = MakeIndex(name, points, sim);
  for (auto _ : state) {
    auto cursor = index->CreateCursor(points.Row(0));
    while (cursor->Next()) {
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void RegisterAll() {
  for (const char* name : {"linear", "kdtree", "vafile", "idistance"}) {
    benchmark::RegisterBenchmark(
        (std::string("BM_IndexBuild/") + name).c_str(),
        [name](benchmark::State& s) { BM_IndexBuild(s, name); })
        ->Args({10000, 2})
        ->Args({10000, 20});
    benchmark::RegisterBenchmark(
        (std::string("BM_CursorAdvance32/") + name).c_str(),
        [name](benchmark::State& s) { BM_CursorAdvance32(s, name); })
        ->Args({10000, 2})
        ->Args({10000, 20});
    benchmark::RegisterBenchmark(
        (std::string("BM_CursorDrain/") + name).c_str(),
        [name](benchmark::State& s) { BM_CursorDrain(s, name); })
        ->Args({10000, 2})
        ->Args({10000, 20});
  }
}

const bool kRegistered = (RegisterAll(), true);

}  // namespace
}  // namespace geacc

GEACC_MICRO_MAIN("micro_index")
