// Fundamental identifier types for the GEACC model.
//
// Events and users are dense 0-based indices into an Instance; using typed
// aliases (rather than bare int) documents which side of the bipartite
// arrangement an index refers to.

#ifndef GEACC_CORE_TYPES_H_
#define GEACC_CORE_TYPES_H_

#include <cstdint>

namespace geacc {

using EventId = int32_t;
using UserId = int32_t;

inline constexpr EventId kInvalidEvent = -1;
inline constexpr UserId kInvalidUser = -1;

// Packs an (event, user) pair into a hashable 64-bit key.
inline uint64_t PairKey(EventId v, UserId u) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(v)) << 32) |
         static_cast<uint32_t>(u);
}

}  // namespace geacc

#endif  // GEACC_CORE_TYPES_H_
