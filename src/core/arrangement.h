// An event-participant arrangement (the matching M of Definition 5).
//
// Stores matched (event, user) pairs with per-side load tracking, computes
// MaxSum, and validates feasibility against an Instance: capacities,
// conflict-freeness per user, positive similarity, no duplicates.

#ifndef GEACC_CORE_ARRANGEMENT_H_
#define GEACC_CORE_ARRANGEMENT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/types.h"

namespace geacc {

class Instance;

class Arrangement {
 public:
  Arrangement() : num_events_(0), num_users_(0) {}
  Arrangement(int num_events, int num_users);

  // Grows the id spaces (existing pairs keep their ids). Shrinking is not
  // supported — dynamic instances tombstone removed entities instead of
  // reusing ids.
  void Resize(int num_events, int num_users);

  // Adds pair {v, u}; it must not already be present. Does not check
  // feasibility — solvers maintain their own invariants and Validate()
  // provides the authoritative check.
  void Add(EventId v, UserId u);

  // Removes pair {v, u}; it must be present.
  void Remove(EventId v, UserId u);

  // Appends pair {v, u} with NO precondition checks in any build type —
  // duplicates and out-of-range events are stored as-is (`u` must still
  // be in range; per-user storage has nowhere to put other users). Exists
  // so tests and fuzzers can materialize corrupted arrangements for the
  // src/verify auditor. Production code must use Add().
  void AddUnchecked(EventId v, UserId u);

  bool Contains(EventId v, UserId u) const;

  // Events assigned to user `u`, in insertion order.
  const std::vector<EventId>& EventsOf(UserId u) const;

  int EventLoad(EventId v) const;
  int UserLoad(UserId u) const;

  int64_t size() const { return num_pairs_; }
  bool empty() const { return num_pairs_ == 0; }

  int num_events() const { return num_events_; }
  int num_users() const { return num_users_; }

  // All matched pairs, sorted by (event, user) — deterministic output.
  std::vector<std::pair<EventId, UserId>> SortedPairs() const;

  // Σ sim(l_v, l_u) over matched pairs.
  double MaxSum(const Instance& instance) const;

  // Empty string if feasible for `instance`, else the first violation.
  std::string Validate(const Instance& instance) const;

  uint64_t ByteEstimate() const;

 private:
  int num_events_;
  int num_users_;
  int64_t num_pairs_ = 0;
  std::vector<std::vector<EventId>> user_events_;  // per user
  std::vector<int> event_loads_;                   // per event
};

}  // namespace geacc

#endif  // GEACC_CORE_ARRANGEMENT_H_
