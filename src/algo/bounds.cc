#include "algo/bounds.h"

#include <algorithm>
#include <functional>

#include "flow/graph.h"
#include "flow/min_cost_flow.h"
#include "util/check.h"

namespace geacc {
namespace algo {
namespace {

// Sum of the `take` largest entries of `values` (all entries ≥ 0).
// `values` is scratch and may be reordered.
double TopKSum(std::vector<double>& values, int64_t take) {
  if (take <= 0 || values.empty()) return 0.0;
  const size_t k = std::min<size_t>(values.size(), static_cast<size_t>(take));
  std::nth_element(values.begin(), values.begin() + (k - 1), values.end(),
                   std::greater<double>());
  double sum = 0.0;
  for (size_t i = 0; i < k; ++i) sum += values[i];
  return sum;
}

// Clique-cover cap for the clique members in `members` (all in the
// current suffix, |members| ≥ 2): each user attends at most one member
// (they pairwise conflict), so the joint contribution is at most the sum
// of the top Σc_v per-user best similarities. `scratch` is reused across
// calls.
double CliqueCap(const BoundInputs& in, const std::vector<EventId>& members,
                 std::vector<double>& scratch) {
  int64_t seats = 0;
  for (const EventId v : members) seats += in.event_capacity[v];
  scratch.clear();
  for (UserId u = 0; u < in.num_users; ++u) {
    if (in.user_capacity != nullptr && in.user_capacity[u] <= 0) continue;
    double best = 0.0;
    for (const EventId v : members) {
      best = std::max(best,
                      in.sim[static_cast<size_t>(v) * in.num_users + u]);
    }
    if (best > 0.0) scratch.push_back(best);
  }
  return TopKSum(scratch, seats);
}

}  // namespace

BoundMode ParseBoundMode(const std::string& name) {
  if (name == "lemma6") return BoundMode::kLemma6;
  if (name == "clique") return BoundMode::kClique;
  if (name == "clique-lp") return BoundMode::kCliqueLp;
  GEACC_CHECK(false) << "unvalidated bound mode '" << name << "'";
  return BoundMode::kLemma6;
}

CliquePartition GreedyCliquePartition(const ConflictGraph& conflicts) {
  CliquePartition partition;
  const int num_events = conflicts.num_events();
  partition.clique_of.resize(num_events, -1);
  for (EventId v = 0; v < num_events; ++v) {
    int home = -1;
    for (size_t q = 0; q < partition.cliques.size() && home < 0; ++q) {
      bool fits = true;
      for (const EventId w : partition.cliques[q]) {
        if (!conflicts.AreConflicting(v, w)) {
          fits = false;
          break;
        }
      }
      if (fits) home = static_cast<int>(q);
    }
    if (home < 0) {
      home = static_cast<int>(partition.cliques.size());
      partition.cliques.emplace_back();
    }
    partition.cliques[home].push_back(v);
    partition.clique_of[v] = home;
  }
  return partition;
}

double BMatchingBound(const BoundInputs& in, int suffix_start) {
  GEACC_CHECK(in.user_capacity != nullptr)
      << "the LP bound needs user capacities";
  const int num_suffix = in.num_events - suffix_start;
  if (num_suffix <= 0 || in.num_users == 0) return 0.0;
  // source → event (c_v) → user (1 per pair, cost -sim) → sink (c_u).
  const int source = 0;
  const int first_event = 1;
  const int first_user = first_event + num_suffix;
  const int sink = first_user + in.num_users;
  FlowGraph graph(sink + 1);
  for (int i = 0; i < num_suffix; ++i) {
    const EventId v = in.order[suffix_start + i];
    graph.AddArc(source, first_event + i, in.event_capacity[v], 0.0);
    const double* row = in.sim + static_cast<size_t>(v) * in.num_users;
    for (UserId u = 0; u < in.num_users; ++u) {
      if (row[u] > 0.0) {
        graph.AddArc(first_event + i, first_user + u, 1, -row[u]);
      }
    }
  }
  for (UserId u = 0; u < in.num_users; ++u) {
    graph.AddArc(first_user + u, sink, in.user_capacity[u], 0.0);
  }
  // Successive cheapest augmentations while profitable: path costs are
  // non-decreasing, so the first non-negative path ends the sweep at the
  // max-weight b-matching (= the LP optimum; the polytope is integral).
  SuccessiveShortestPaths ssp(&graph, source, sink);
  while (ssp.AugmentIfCheaper(0.0) > 0) {
  }
  return -ssp.total_cost();
}

std::vector<double> ComputeSuffixBounds(const BoundInputs& in, BoundMode mode,
                                        const CliquePartition& partition) {
  std::vector<double> suffix(static_cast<size_t>(in.num_events) + 1, 0.0);
  if (mode == BoundMode::kLemma6) {
    for (int k = in.num_events - 1; k >= 0; --k) {
      suffix[k] = suffix[k + 1] + in.event_bound[in.order[k]];
    }
    return suffix;
  }

  // Clique-cover level: per suffix, group the remaining events by clique
  // and cap each multi-member group at min(Σ solo, per-user top-K). The
  // Lemma 6 value is an explicit outer min so the bound can only tighten.
  std::vector<std::vector<EventId>> group(partition.num_cliques());
  std::vector<int> touched;
  std::vector<double> scratch;
  for (int k = in.num_events - 1; k >= 0; --k) {
    // Rebuild the suffix groups incrementally: suffix k adds order[k].
    const EventId v = in.order[k];
    const int q = partition.clique_of[v];
    if (group[q].empty()) touched.push_back(q);
    group[q].push_back(v);

    double lemma6 = 0.0;
    double capped = 0.0;
    for (const int clique : touched) {
      double solo = 0.0;
      for (const EventId w : group[clique]) solo += in.event_bound[w];
      lemma6 += solo;
      capped += group[clique].size() >= 2
                    ? std::min(solo, CliqueCap(in, group[clique], scratch))
                    : solo;
    }
    double bound = std::min(lemma6, capped);
    if (mode == BoundMode::kCliqueLp) {
      bound = std::min(bound, BMatchingBound(in, k));
    }
    suffix[k] = bound;
  }
  return suffix;
}

}  // namespace algo
}  // namespace geacc
