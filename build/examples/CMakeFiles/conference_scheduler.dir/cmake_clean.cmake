file(REMOVE_RECURSE
  "CMakeFiles/conference_scheduler.dir/conference_scheduler.cpp.o"
  "CMakeFiles/conference_scheduler.dir/conference_scheduler.cpp.o.d"
  "conference_scheduler"
  "conference_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conference_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
