// Shared core of the two iDistance backends (in-memory and paged).
//
// The iDistance method is agnostic to where its one B+-tree lives: the
// pivot geometry (farthest-point sampling, stretched keys, search radii)
// and the expanding-ring cursor are identical whether the key tree is
// container/bplus_tree.h or storage/paged_bplus_tree.h. Both are factored
// here — BuildIDistanceGeometry() produces the pivots + sorted key
// entries, and IDistanceScanCursor<Tree> is the exact kNN enumeration
// templated over any tree exposing LowerBound/end and bidirectional
// iterators with key()/value() — so the two backends cannot drift apart:
// bit-identical enumeration is by construction, and the differential
// harness (verify/oracle.cc "paged/greedy") keeps it that way.

#ifndef GEACC_INDEX_IDISTANCE_COMMON_H_
#define GEACC_INDEX_IDISTANCE_COMMON_H_

#include <cmath>
#include <optional>
#include <queue>
#include <utility>
#include <vector>

#include "core/attributes.h"
#include "core/similarity.h"
#include "index/knn_index.h"
#include "obs/stats.h"

namespace geacc {

// Pivot geometry plus the sorted (stretched key, point id) entries ready
// for a tree bulk load.
struct IDistanceGeometry {
  AttributeMatrix pivots{0, 0};  // P × dim
  double stretch = 1.0;          // C: strictly larger than any distance
  double initial_radius = 1.0;   // first search ring
  std::vector<std::pair<double, int>> entries;  // sorted stretched keys
};

// Deterministic farthest-point pivot sampling + key assignment; the exact
// computation both backends must share (see idistance_index.h for the
// method and the stretch-constant rationale).
IDistanceGeometry BuildIDistanceGeometry(const AttributeMatrix& points,
                                         int num_pivots);

namespace idistance_internal {

struct Candidate {
  double distance;
  int id;

  bool operator>(const Candidate& other) const {
    if (distance != other.distance) return distance > other.distance;
    return id > other.id;
  }
};

}  // namespace idistance_internal

// The expanding-radius exact kNN cursor over any iDistance key tree.
// `Tree` needs: ConstIterator LowerBound(double), ConstIterator end(),
// and bidirectional iterators with key()/value()/==/!=. All referenced
// objects must outlive the cursor.
template <typename Tree>
class IDistanceScanCursor final : public NnCursor {
 public:
  IDistanceScanCursor(const AttributeMatrix& points,
                      const SimilarityFunction& similarity,
                      const AttributeMatrix& pivots, double stretch,
                      double initial_radius, const Tree& tree,
                      const double* query)
      : points_(points),
        similarity_(similarity),
        pivots_(pivots),
        stretch_(stretch),
        tree_(tree),
        query_(query) {
    const int pivots_count = pivots_.rows();
    query_pivot_distance_.resize(pivots_count);
    left_.resize(pivots_count);
    right_.resize(pivots_count);
    band_start_.resize(pivots_count);
    band_end_.resize(pivots_count);
    for (int p = 0; p < pivots_count; ++p) {
      query_pivot_distance_[p] = std::sqrt(SquaredEuclideanDistance(
          pivots_.Row(p), query_, points_.dim()));
      // Band boundaries must be computed exactly as the build computes
      // keys (owner * stretch), not as band_key + stretch — the two can
      // differ by one ulp and mis-place the boundary by one element.
      const double band_key = p * stretch_;
      band_start_[p] = tree_.LowerBound(band_key);
      band_end_[p] = tree_.LowerBound((p + 1) * stretch_);
      // Both window edges start at the query's key position; the window
      // [left, right) grows outward within the band.
      auto start = tree_.LowerBound(band_key + query_pivot_distance_[p]);
      // Clamp into the band (LowerBound may land past it).
      if (OutsideBand(start, p)) start = band_end_[p];
      left_[p] = start;
      right_[p] = start;
    }
    radius_ = initial_radius;
  }

  // Per-step counts are batched into a member and flushed once here —
  // Next() is too hot for a registry touch per call (DESIGN.md §9.1).
  ~IDistanceScanCursor() override {
    GEACC_STATS_ADD("index.idistance.cursor_steps", steps_);
  }

  std::optional<Neighbor> Next() override {
    ++steps_;
    while (true) {
      if (!heap_.empty() &&
          (heap_.top().distance <= covered_radius_ || FullyCovered())) {
        const idistance_internal::Candidate top = heap_.top();
        heap_.pop();
        return Neighbor{top.id,
                        similarity_.Compute(points_.Row(top.id), query_,
                                            points_.dim())};
      }
      if (FullyCovered()) return std::nullopt;
      ExpandTo(radius_);
      covered_radius_ = radius_;
      radius_ *= 2.0;
    }
  }

 private:
  using TreeIt = typename Tree::ConstIterator;

  bool OutsideBand(const TreeIt& it, int p) const {
    return it == tree_.end() || !(it.key() < (p + 1) * stretch_);
  }

  bool FullyCovered() const {
    for (int p = 0; p < pivots_.rows(); ++p) {
      if (left_[p] != band_start_[p] || right_[p] != band_end_[p]) {
        return false;
      }
    }
    return true;
  }

  // Widens every partition window to cover keys within ±r of the query
  // key, exact-checking newly covered entries.
  void ExpandTo(double r) {
    GEACC_STATS_ADD("index.idistance.radius_expansions", 1);
    for (int p = 0; p < pivots_.rows(); ++p) {
      const double band_key = p * stretch_;
      const double lo_key =
          band_key + std::max(0.0, query_pivot_distance_[p] - r);
      const double hi_key = band_key + query_pivot_distance_[p] + r;
      // Left edge: pull in predecessors with key >= lo_key.
      while (left_[p] != band_start_[p]) {
        TreeIt prev = left_[p];
        --prev;
        if (prev.key() < lo_key) break;
        left_[p] = prev;
        Check(prev.value());
      }
      // Right edge: consume successors with key <= hi_key.
      while (right_[p] != band_end_[p] && !(hi_key < right_[p].key())) {
        Check(right_[p].value());
        ++right_[p];
      }
    }
  }

  void Check(int id) {
    heap_.push({std::sqrt(SquaredEuclideanDistance(points_.Row(id), query_,
                                                   points_.dim())),
                id});
  }

  const AttributeMatrix& points_;
  const SimilarityFunction& similarity_;
  const AttributeMatrix& pivots_;
  const double stretch_;
  const Tree& tree_;
  const double* query_;
  std::vector<double> query_pivot_distance_;
  std::vector<TreeIt> left_;        // window start (inclusive)
  std::vector<TreeIt> right_;       // window end (exclusive)
  std::vector<TreeIt> band_start_;  // partition's first key
  std::vector<TreeIt> band_end_;    // one past the partition's last key
  std::priority_queue<idistance_internal::Candidate,
                      std::vector<idistance_internal::Candidate>,
                      std::greater<idistance_internal::Candidate>>
      heap_;
  double radius_ = 1.0;
  double covered_radius_ = -1.0;  // nothing certified yet
  int64_t steps_ = 0;
};

}  // namespace geacc

#endif  // GEACC_INDEX_IDISTANCE_COMMON_H_
