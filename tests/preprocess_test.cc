// Tests for instance preprocessing: reductions must preserve the optimum
// and lift back to feasible arrangements.

#include <gtest/gtest.h>

#include "algo/solvers.h"
#include "core/preprocess.h"
#include "tests/test_util.h"

namespace geacc {
namespace {

using geacc::testing::MakeTableInstance;

TEST(Preprocess, DropsZeroSimilarityEntities) {
  // Event 1 and user 2 have no positive similarity to anyone.
  const Instance instance = MakeTableInstance(
      {{0.9, 0.5, 0.0}, {0.0, 0.0, 0.0}}, {2, 3}, {1, 1, 4}, {{0, 1}});
  const ReducedInstance reduced = ReduceInstance(instance);
  EXPECT_EQ(reduced.instance.num_events(), 1);
  EXPECT_EQ(reduced.instance.num_users(), 2);
  EXPECT_EQ(reduced.dropped_events, 1);
  EXPECT_EQ(reduced.dropped_users, 1);
  EXPECT_EQ(reduced.event_map, (std::vector<EventId>{0}));
  EXPECT_EQ(reduced.user_map, (std::vector<UserId>{0, 1}));
  EXPECT_DOUBLE_EQ(reduced.instance.Similarity(0, 0), 0.9);
}

TEST(Preprocess, ClampsCapacitiesToPartnerCounts) {
  // Event capacity 5 but only 2 positively-similar users; user capacity 4
  // but only 1 positively-similar event.
  const Instance instance =
      MakeTableInstance({{0.9, 0.5, 0.0}}, {5}, {1, 1, 4}, {});
  const ReducedInstance reduced = ReduceInstance(instance);
  EXPECT_EQ(reduced.instance.event_capacity(0), 2);
  EXPECT_EQ(reduced.instance.user_capacity(0), 1);
  EXPECT_GT(reduced.clamped_capacities, 0);
}

TEST(Preprocess, RemapsConflicts) {
  // Events 0 ⊥ 2 with event 1 dropped: reduced ids shift down.
  const Instance instance = MakeTableInstance(
      {{0.9}, {0.0}, {0.8}}, {1, 1, 1}, {2}, {{0, 2}});
  const ReducedInstance reduced = ReduceInstance(instance);
  ASSERT_EQ(reduced.instance.num_events(), 2);
  EXPECT_TRUE(reduced.instance.conflicts().AreConflicting(0, 1));
}

TEST(Preprocess, NoOpOnCleanInstance) {
  const Instance instance = geacc::testing::PaperTableIExample();
  const ReducedInstance reduced = ReduceInstance(instance);
  EXPECT_EQ(reduced.dropped_events, 0);
  EXPECT_EQ(reduced.dropped_users, 0);
  // (v2, u1) has similarity 0, so v2's capacity clamps from 3 to 4… no:
  // partner count of v2 is 4 (> capacity 3) — nothing clamps on events;
  // u1's partner count is 2 < capacity 3 → one clamp.
  const double original_optimum = CreateSolver("prune")
                                      ->Solve(instance)
                                      .arrangement.MaxSum(instance);
  const double reduced_optimum =
      CreateSolver("prune")
          ->Solve(reduced.instance)
          .arrangement.MaxSum(reduced.instance);
  EXPECT_NEAR(original_optimum, reduced_optimum, 1e-9);
}

TEST(Preprocess, LiftPreservesFeasibilityAndMaxSum) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    // Low-dimensional instances on a wide attribute range produce some
    // zero similarities organically.
    SyntheticConfig config;
    config.num_events = 8;
    config.num_users = 20;
    config.dim = 1;
    config.max_attribute = 100.0;
    config.event_attribute = DistributionSpec::Uniform(0.0, 100.0);
    config.user_attribute = DistributionSpec::Uniform(0.0, 100.0);
    config.event_capacity = DistributionSpec::Uniform(1.0, 30.0);
    config.user_capacity = DistributionSpec::Uniform(1.0, 10.0);
    config.conflict_density = 0.3;
    config.seed = seed;
    const Instance original = GenerateSynthetic(config);
    const ReducedInstance reduced = ReduceInstance(original);

    const SolveResult solved =
        CreateSolver("greedy")->Solve(reduced.instance);
    ASSERT_EQ(solved.arrangement.Validate(reduced.instance), "");
    const Arrangement lifted =
        LiftArrangement(reduced, solved.arrangement, original);
    ASSERT_EQ(lifted.Validate(original), "") << "seed " << seed;
    EXPECT_NEAR(lifted.MaxSum(original),
                solved.arrangement.MaxSum(reduced.instance), 1e-9);

    // Reduction preserves the greedy result exactly (greedy never uses
    // dropped entities, and clamped capacity never binds below usage).
    const double direct = CreateSolver("greedy")
                              ->Solve(original)
                              .arrangement.MaxSum(original);
    EXPECT_NEAR(lifted.MaxSum(original), direct, 1e-9) << "seed " << seed;
  }
}

TEST(Preprocess, OptimumPreservedExactly) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    SyntheticConfig config;
    config.num_events = 4;
    config.num_users = 7;
    config.dim = 1;
    config.max_attribute = 50.0;
    config.event_attribute = DistributionSpec::Uniform(0.0, 50.0);
    config.user_attribute = DistributionSpec::Uniform(0.0, 50.0);
    config.event_capacity = DistributionSpec::Uniform(1.0, 3.0);
    config.user_capacity = DistributionSpec::Uniform(1.0, 2.0);
    config.conflict_density = 0.4;
    config.seed = seed + 500;
    const Instance original = GenerateSynthetic(config);
    const ReducedInstance reduced = ReduceInstance(original);
    const double original_optimum = CreateSolver("bruteforce")
                                        ->Solve(original)
                                        .arrangement.MaxSum(original);
    const double reduced_optimum =
        CreateSolver("bruteforce")
            ->Solve(reduced.instance)
            .arrangement.MaxSum(reduced.instance);
    EXPECT_NEAR(original_optimum, reduced_optimum, 1e-9) << "seed " << seed;
  }
}

TEST(Preprocess, EmptyInstance) {
  const Instance instance = MakeTableInstance({}, {}, {}, {});
  const ReducedInstance reduced = ReduceInstance(instance);
  EXPECT_EQ(reduced.instance.num_events(), 0);
  EXPECT_EQ(reduced.instance.num_users(), 0);
}

}  // namespace
}  // namespace geacc
