file(REMOVE_RECURSE
  "CMakeFiles/fig3_cardinality_u.dir/fig3_cardinality_u.cc.o"
  "CMakeFiles/fig3_cardinality_u.dir/fig3_cardinality_u.cc.o.d"
  "fig3_cardinality_u"
  "fig3_cardinality_u.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_cardinality_u.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
