// Experiment harness: parameter sweeps producing paper-style tables.
//
// A sweep is a list of x-axis points, each a labelled instance factory
// (factories take a seed so repetitions regenerate fresh instances). The
// harness runs every requested solver on every point, validates each
// arrangement, averages over repetitions, and prints one table per metric
// (MaxSum, wall seconds, logical memory MB) shaped like the paper's
// figure panels: rows = x values, columns = solvers.

#ifndef GEACC_EXP_EXPERIMENT_H_
#define GEACC_EXP_EXPERIMENT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "core/instance.h"
#include "core/solver.h"
#include "obs/stats.h"
#include "util/table.h"

namespace geacc {

// One run of one solver on one instance (validated).
struct RunRecord {
  std::string solver;
  double max_sum = 0.0;
  double seconds = 0.0;
  // Process CPU time over the solve. Exact when the run is serial (the
  // default); under RunSweep with threads > 1 it includes concurrent
  // cells' CPU, so treat it as indicative there.
  double cpu_seconds = 0.0;
  uint64_t logical_bytes = 0;
  int64_t matched_pairs = 0;
  SolverStats stats;
  // Observability deltas produced by this run's thread (src/obs/): every
  // counter and phase timer the solver touched. Empty under
  // GEACC_NO_STATS.
  std::map<std::string, int64_t> counters;
  std::map<std::string, obs::TimerStat> timers;
};

// Runs `solver` on `instance`; aborts if the arrangement is infeasible
// (a solver bug must never produce a silent bench number). With `audit`,
// additionally runs the full verify::AuditArrangement pass — every
// violation class, plus greedy maximality for solvers that guarantee it —
// and aborts listing ALL violations, not just the first (bench
// --selfcheck mode; costs an extra O(|V||U|) scan per run).
RunRecord RunSolver(const Solver& solver, const Instance& instance,
                    bool audit = false);

struct SweepPoint {
  std::string label;                              // x-axis value, e.g. "100"
  std::function<Instance(uint64_t seed)> factory;  // instance per repetition
};

struct SweepConfig {
  std::string title;                 // e.g. "Fig 3 col 1: varying |V|"
  std::vector<std::string> solvers;  // registry names
  int repetitions = 1;
  uint64_t seed = 42;
  SolverOptions solver_options;
  // Echo per-run details (solver, point, rep) to the log at INFO.
  bool verbose = false;
  // Audit every arrangement with the verify subsystem (bench --selfcheck).
  bool audit = false;
  // Total thread budget for the sweep, shared between the two levels of
  // parallelism: sweep workers over the (point × repetition) grid, and
  // intra-solver lanes (solver_options.threads, see util/thread_pool.h).
  // The budget rule keeps workers × lanes ≤ threads: solver lanes s =
  // min(resolved solver_options.threads, threads), sweep workers =
  // max(1, threads / s). So threads=8 with serial solvers runs 8 cells at
  // once; threads=8 with solver_options.threads=8 runs one cell at a time
  // on an 8-lane pool; threads=8 with solver_options.threads=2 runs 4
  // cells × 2 lanes. Results are deterministic and identical to a serial
  // run either way; wall-time measurements become noisy under contention,
  // so use > 1 only for MaxSum-focused sweeps.
  int threads = 1;
};

struct SweepResult {
  std::vector<std::string> x_labels;
  // metric -> solver -> per-point mean values.
  std::map<std::string, std::map<std::string, std::vector<double>>> metrics;

  // Also keeps every raw record for custom post-processing.
  std::vector<std::vector<std::vector<RunRecord>>>
      records;  // [point][solver][rep]
};

SweepResult RunSweep(const SweepConfig& config,
                     const std::vector<SweepPoint>& points);

// Prints the standard three tables (MaxSum, time, memory). `x_title` names
// the first column, e.g. "|V|".
void PrintSweepTables(const SweepConfig& config, const SweepResult& result,
                      const std::string& x_title, std::ostream& os);

// Builds a single-metric table (used by the Fig. 5/6 benches that report
// bespoke metrics).
Table MetricTable(const SweepResult& result, const std::string& metric,
                  const std::string& title, const std::string& x_title,
                  int precision = 4);

}  // namespace geacc

#endif  // GEACC_EXP_EXPERIMENT_H_
