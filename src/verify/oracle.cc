#include "verify/oracle.h"

#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <ostream>
#include <sstream>
#include <utility>

#include "algo/solvers.h"
#include "dyn/dynamic_instance.h"
#include "dyn/incremental_arranger.h"
#include "gen/synthetic.h"
#include "gen/trace_gen.h"
#include "io/instance_io.h"
#include "algo/prune_solver.h"
#include "core/time_window.h"
#include "shard/coordinator.h"
#include "slot/slot_solvers.h"
#include "slot/slotted.h"
#include "slot/slotted_gen.h"
#include "svc/client.h"
#include "svc/service.h"
#include "svc/snapshot.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "verify/audit.h"

namespace geacc::verify {
namespace {

constexpr double kEps = 1e-9;

// Shared solver configuration for the whole matrix: the campaign's bound
// mode must hold everywhere (non-exact solvers ignore it).
SolverOptions BaseOptions(const CampaignConfig& config) {
  SolverOptions options;
  options.seed = config.seed;
  options.bound = config.bound;
  return options;
}

// Memoizes solver runs within one instance's check sweep. The
// exponential oracles (brute force, unpruned exhaustive search)
// dominate campaign cost, and several checks want the same solve —
// without the cache each instance pays for them three times over.
// Results are keyed by (instance address, cache key); RunCampaign
// invalidates at every instance and shrink-candidate boundary, and a
// mismatched address invalidates defensively.
class OracleCache {
 public:
  void Invalidate() {
    instance_ = nullptr;
    results_.clear();
  }

  const SolveResult& Solve(const std::string& key, const std::string& solver,
                           const SolverOptions& options,
                           const Instance& instance) {
    if (&instance != instance_) {
      Invalidate();
      instance_ = &instance;
    }
    auto it = results_.find(key);
    if (it == results_.end()) {
      it = results_
               .emplace(key, CreateSolver(solver, options)->Solve(instance))
               .first;
    }
    return it->second;
  }

 private:
  const Instance* instance_ = nullptr;
  std::map<std::string, SolveResult> results_;
};

// The campaign's canonical exhaustive-oracle run: warm start and
// pruning both off, so the returned arrangement is the DFS-first
// optimal leaf the bit-identity check compares against. Shared by
// audit/exhaustive, exact/exhaustive, and exact/bitwise.
const SolveResult& ExhaustiveOracle(OracleCache& cache,
                                    const CampaignConfig& config,
                                    const Instance& instance) {
  SolverOptions options = BaseOptions(config);
  options.enable_greedy_seed = false;
  options.enable_pruning = false;
  return cache.Solve("exhaustive", "exhaustive", options, instance);
}

std::string Serialize(const Instance& instance) {
  std::ostringstream os;
  WriteInstance(instance, os);
  return os.str();
}

// Appends the first absent pair (any similarity) to `arrangement`. On a
// maximal arrangement this forces a violation — capacity, conflict, or
// non-positive similarity — which is exactly what the harness self-test
// wants the auditor to catch. Returns false when every pair is matched
// (possible only on degenerate shrunken instances).
bool InjectExtraPair(const Instance& instance, Arrangement* arrangement) {
  for (EventId v = 0; v < instance.num_events(); ++v) {
    for (UserId u = 0; u < instance.num_users(); ++u) {
      if (!arrangement->Contains(v, u)) {
        arrangement->Add(v, u);
        return true;
      }
    }
  }
  return false;
}

// "" when `name`'s arrangement passes the auditor on `instance`.
std::string CheckSolverAudit(const CampaignConfig& config, OracleCache& cache,
                             const std::string& name,
                             const Instance& instance) {
  // The exhaustive solver audits its canonical (seedless, unpruned)
  // oracle run so the expensive solve is shared with the exact/* checks;
  // every other solver runs under the campaign's base options. The
  // arrangement is copied because fault injection mutates it.
  Arrangement arrangement =
      name == "exhaustive"
          ? ExhaustiveOracle(cache, config, instance).arrangement
          : cache.Solve(name, name, BaseOptions(config), instance).arrangement;
  if (config.inject == "extra-pair" && name == "greedy") {
    InjectExtraPair(instance, &arrangement);
  }
  AuditOptions audit;
  audit.check_maximality = SolverGuaranteesMaximality(name);
  const AuditReport report = AuditArrangement(instance, arrangement, audit);
  return report.Summary();
}

double MaxSumOf(const std::string& name, const Instance& instance,
                const CampaignConfig& config, OracleCache& cache) {
  if (name == "exhaustive") {
    return ExhaustiveOracle(cache, config, instance)
        .arrangement.MaxSum(instance);
  }
  return cache.Solve(name, name, BaseOptions(config), instance)
      .arrangement.MaxSum(instance);
}

std::string CheckExact(const CampaignConfig& config, OracleCache& cache,
                       const std::string& name, const Instance& instance) {
  const double oracle = MaxSumOf("bruteforce", instance, config, cache);
  const double got = MaxSumOf(name, instance, config, cache);
  if (std::fabs(got - oracle) > kEps) {
    return StrFormat("%s MaxSum %.12g != brute-force optimum %.12g",
                     name.c_str(), got, oracle);
  }
  return "";
}

// Bit-identity differential for the tightened pruning (algo/bounds.h):
// without the greedy warm start, Prune-GEACC's incumbent trajectory is
// exactly the exhaustive search's improvement sequence, so the pruned
// search must return the same arrangement pair-for-pair — at every bound
// level. A bound that ever cut the DFS-first optimal leaf (e.g. an
// inadmissible clique cap) diverges here even when the value happens to
// tie.
std::string CheckExactBitwise(const CampaignConfig& config,
                              OracleCache& cache, const Instance& instance) {
  SolverOptions seedless = BaseOptions(config);
  seedless.enable_greedy_seed = false;
  const auto pruned_pairs =
      cache.Solve("prune#seedless", "prune", seedless, instance)
          .arrangement.SortedPairs();
  const auto exhaustive_pairs =
      ExhaustiveOracle(cache, config, instance).arrangement.SortedPairs();
  if (pruned_pairs != exhaustive_pairs) {
    return StrFormat(
        "seedless prune arrangement (%zu pairs, bound=%s) != exhaustive "
        "(%zu pairs)",
        pruned_pairs.size(), config.bound.c_str(), exhaustive_pairs.size());
  }
  return "";
}

std::string CheckGreedyBound(const CampaignConfig& config, OracleCache& cache,
                             const Instance& instance) {
  const double optimum = MaxSumOf("prune", instance, config, cache);
  const double greedy = MaxSumOf("greedy", instance, config, cache);
  const int alpha = instance.max_user_capacity();
  if (greedy + kEps < optimum / (1.0 + alpha)) {
    return StrFormat(
        "greedy MaxSum %.12g below Theorem 3 bound OPT/(1+%d) = %.12g", greedy,
        alpha, optimum / (1.0 + alpha));
  }
  if (greedy > optimum + kEps) {
    return StrFormat("greedy MaxSum %.12g exceeds optimum %.12g", greedy,
                     optimum);
  }
  return "";
}

std::string CheckMinCostFlowBound(const CampaignConfig& config,
                                  OracleCache& cache,
                                  const Instance& instance) {
  const double optimum = MaxSumOf("prune", instance, config, cache);
  const double mcf = MaxSumOf("mincostflow", instance, config, cache);
  const int alpha = instance.max_user_capacity();
  if (alpha > 0 && mcf + kEps < optimum / alpha) {
    return StrFormat(
        "mincostflow MaxSum %.12g below Theorem 2 bound OPT/%d = %.12g", mcf,
        alpha, optimum / alpha);
  }
  if (mcf > optimum + kEps) {
    return StrFormat("mincostflow MaxSum %.12g exceeds optimum %.12g", mcf,
                     optimum);
  }
  if (instance.conflicts().empty() && std::fabs(mcf - optimum) > kEps) {
    return StrFormat(
        "CF = empty but mincostflow MaxSum %.12g != optimum %.12g (Lemma 1)",
        mcf, optimum);
  }
  return "";
}

std::string CheckThreadIdentity(const CampaignConfig& config,
                                OracleCache& cache, const std::string& name,
                                const Instance& instance) {
  const SolverOptions serial = BaseOptions(config);
  SolverOptions threaded = serial;
  threaded.threads = config.threads;
  const auto serial_pairs = cache.Solve(name, name, serial, instance)
                                .arrangement.SortedPairs();
  const auto threaded_pairs =
      cache.Solve(name + "#threads", name, threaded, instance)
          .arrangement.SortedPairs();
  if (serial_pairs != threaded_pairs) {
    return StrFormat(
        "%s arrangement differs between threads=1 (%zu pairs) and "
        "threads=%d (%zu pairs)",
        name.c_str(), serial_pairs.size(), config.threads,
        threaded_pairs.size());
  }
  return "";
}

// Paged-backend differential (DESIGN.md §14): greedy's cursors through
// the disk-backed iDistance index must reproduce the in-memory backend's
// arrangement exactly. A deliberately tiny pool budget forces even these
// small key trees through buffer-pool eviction.
std::string CheckPagedIdentity(const CampaignConfig& config,
                               const Instance& instance) {
  SolverOptions inmem;
  inmem.seed = config.seed;
  inmem.index = "idistance";
  SolverOptions paged = inmem;
  paged.index = "idistance-paged";
  paged.storage_budget_bytes = 16 << 10;
  paged.storage_dir = config.scratch_dir;
  const SolveResult inmem_solution =
      CreateSolver("greedy", inmem)->Solve(instance);
  const SolveResult paged_solution =
      CreateSolver("greedy", paged)->Solve(instance);
  if (inmem_solution.arrangement.SortedPairs() !=
      paged_solution.arrangement.SortedPairs()) {
    return StrFormat(
        "greedy arrangement differs between idistance (%zu pairs) and "
        "idistance-paged (%zu pairs)",
        inmem_solution.arrangement.SortedPairs().size(),
        paged_solution.arrangement.SortedPairs().size());
  }
  const double inmem_sum = inmem_solution.arrangement.MaxSum(instance);
  const double paged_sum = paged_solution.arrangement.MaxSum(instance);
  if (inmem_sum != paged_sum) {
    return StrFormat("greedy MaxSum differs: idistance %.17g vs "
                     "idistance-paged %.17g",
                     inmem_sum, paged_sum);
  }
  return "";
}

// Sharded-topology differential (DESIGN.md §16): a ShardCoordinator over
// `num_shards` in-process score-only shard services, seeded with
// `instance`, must repair to the bit-identical greedy-sortall arrangement
// — the distributed admission loop is *specified* to be that solver run
// over the union of shard-local candidate streams.
std::string CheckShardedIdentity(const CampaignConfig& config,
                                 const Instance& instance, int num_shards) {
  // Empty score-only shards sharing the instance's similarity function.
  svc::ServiceOptions shard_options;
  shard_options.bootstrap_full_resolve = false;
  shard_options.repair.refill = false;
  std::vector<std::unique_ptr<svc::ArrangementService>> services;
  std::vector<std::unique_ptr<svc::InProcessClient>> owned_clients;
  std::vector<svc::ServiceClient*> clients;
  for (int s = 0; s < num_shards; ++s) {
    Instance empty(AttributeMatrix(0, instance.dim()), {},
                   AttributeMatrix(0, instance.dim()), {}, ConflictGraph(0),
                   instance.similarity().Clone());
    services.push_back(std::make_unique<svc::ArrangementService>(
        std::move(empty), shard_options));
    owned_clients.push_back(
        std::make_unique<svc::InProcessClient>(services.back().get()));
    clients.push_back(owned_clients.back().get());
  }
  const auto stop_all = [&services] {
    for (auto& service : services) service->Stop();
  };

  shard::ShardCoordinator coordinator(clients, instance.dim(),
                                      instance.similarity().Clone());
  std::string error = coordinator.ApplyInstance(instance);
  if (error.empty()) error = coordinator.RepairPass();
  if (!error.empty()) {
    stop_all();
    return StrFormat("N=%d coordinator: %s", num_shards, error.c_str());
  }

  SolverOptions options;
  options.seed = config.seed;
  const SolveResult reference =
      CreateSolver("greedy-sortall", options)->Solve(instance);
  const auto reference_pairs = reference.arrangement.SortedPairs();

  Arrangement merged(instance.num_events(), instance.num_users());
  double admission_order_sum = 0.0;
  for (const auto& [event, user] : coordinator.arrangement()) {
    merged.Add(event, user);
    admission_order_sum += instance.Similarity(event, user);
  }
  stop_all();

  if (merged.SortedPairs() != reference_pairs) {
    return StrFormat(
        "N=%d sharded arrangement (%zu pairs) != greedy-sortall (%zu pairs)",
        num_shards, coordinator.arrangement().size(), reference_pairs.size());
  }
  // Same admission order ⇒ the coordinator's accumulated MaxSum must be
  // bit-identical to re-accumulating the mirror-side similarities.
  if (coordinator.global_max_sum() != admission_order_sum) {
    return StrFormat(
        "N=%d sharded MaxSum %.17g != admission-order reference %.17g",
        num_shards, coordinator.global_max_sum(), admission_order_sum);
  }
  const AuditReport audit = AuditArrangement(instance, merged);
  if (!audit.ok()) {
    return StrFormat("N=%d merged arrangement audit failed:\n%s", num_shards,
                     audit.Summary().c_str());
  }
  return "";
}

using InstanceCheck = std::function<std::string(const Instance&)>;

std::vector<std::pair<std::string, InstanceCheck>> BuildInstanceChecks(
    const CampaignConfig& config, OracleCache& cache) {
  std::vector<std::pair<std::string, InstanceCheck>> checks;
  for (const std::string& name : SolverNames()) {
    checks.emplace_back("audit/" + name,
                        [&config, &cache, name](const Instance& i) {
                          return CheckSolverAudit(config, cache, name, i);
                        });
  }
  for (const char* name : {"prune", "exhaustive"}) {
    checks.emplace_back(std::string("exact/") + name,
                        [&config, &cache, name](const Instance& i) {
                          return CheckExact(config, cache, name, i);
                        });
  }
  checks.emplace_back("exact/bitwise", [&config, &cache](const Instance& i) {
    return CheckExactBitwise(config, cache, i);
  });
  checks.emplace_back("bounds/greedy", [&config, &cache](const Instance& i) {
    return CheckGreedyBound(config, cache, i);
  });
  checks.emplace_back("bounds/mincostflow",
                      [&config, &cache](const Instance& i) {
                        return CheckMinCostFlowBound(config, cache, i);
                      });
  for (const char* name : {"greedy", "mincostflow", "prune"}) {
    checks.emplace_back(std::string("threads/") + name,
                        [&config, &cache, name](const Instance& i) {
                          return CheckThreadIdentity(config, cache, name, i);
                        });
  }
  return checks;
}

TraceGenConfig TraceConfigFor(const CampaignConfig& config, uint64_t index) {
  TraceGenConfig trace;
  trace.initial_events = 6;
  trace.initial_users = 12;
  trace.dim = 3;
  trace.max_attribute = 100.0;
  trace.max_event_capacity = 5;
  trace.max_user_capacity = 3;
  trace.num_mutations = config.trace_mutations;
  trace.seed = config.seed * 7919 + index;
  return trace;
}

// Repair differential: replay a trace through the incremental engine,
// asserting feasibility after every mutation, bookkeeping consistency,
// a clean dense-snapshot audit, and a feasible fresh re-solve.
std::string CheckRepairTrace(const CampaignConfig& config, uint64_t index) {
  const MutationTrace trace = GenerateTrace(TraceConfigFor(config, index));
  DynamicInstance dyn(trace.initial);
  IncrementalArranger arranger(&dyn, {});
  arranger.FullResolve();
  for (size_t m = 0; m < trace.mutations.size(); ++m) {
    arranger.Apply(trace.mutations[m]);
    const std::string error = arranger.Validate();
    if (!error.empty()) {
      return StrFormat("infeasible after mutation %zu (%s): %s", m,
                       trace.mutations[m].DebugString().c_str(),
                       error.c_str());
    }
  }
  const double recomputed = arranger.RecomputeMaxSum();
  if (std::fabs(recomputed - arranger.max_sum()) > 1e-6) {
    return StrFormat("incremental MaxSum %.12g != recomputed %.12g",
                     arranger.max_sum(), recomputed);
  }

  DynamicInstance::SnapshotMap map;
  const Instance snapshot = dyn.Snapshot(&map);
  Arrangement dense(snapshot.num_events(), snapshot.num_users());
  const Arrangement& live = arranger.arrangement();
  for (UserId u = 0; u < live.num_users(); ++u) {
    for (const EventId v : live.EventsOf(u)) {
      if (map.user_to_dense[u] < 0 || map.event_to_dense[v] < 0) {
        return StrFormat("pair {%d,%d} matches a tombstoned entity", v, u);
      }
      dense.Add(map.event_to_dense[v], map.user_to_dense[u]);
    }
  }
  const AuditReport audit = AuditArrangement(snapshot, dense);
  if (!audit.ok()) {
    return "dense snapshot audit failed:\n" + audit.Summary();
  }

  SolverOptions options;
  options.seed = config.seed;
  const SolveResult fresh = CreateSolver("greedy", options)->Solve(snapshot);
  AuditOptions fresh_audit;
  fresh_audit.check_maximality = true;
  const AuditReport fresh_report =
      AuditArrangement(snapshot, fresh.arrangement, fresh_audit);
  if (!fresh_report.ok()) {
    return "fresh re-solve audit failed:\n" + fresh_report.Summary();
  }
  return "";
}

// Slot-space pairs of a service snapshot, deterministic order.
std::vector<std::pair<UserId, EventId>> SnapshotPairs(
    const svc::ServiceSnapshot& snapshot) {
  std::vector<std::pair<UserId, EventId>> pairs;
  for (UserId u = 0; u < snapshot.user_slots(); ++u) {
    for (const EventId v : snapshot.AssignmentsOf(u)) pairs.emplace_back(u, v);
  }
  return pairs;
}

// WAL differential: live service state after a trace ≡ recovered state.
std::string CheckWalRecovery(const CampaignConfig& config, uint64_t index) {
  const MutationTrace trace =
      GenerateTrace(TraceConfigFor(config, index * 31 + 17));
  const std::filesystem::path dir =
      config.scratch_dir.empty()
          ? std::filesystem::temp_directory_path()
          : std::filesystem::path(config.scratch_dir);
  const std::string wal_path =
      (dir / StrFormat("geacc_audit_%d_%llu.wal", static_cast<int>(::getpid()),
                       static_cast<unsigned long long>(index)))
          .string();

  svc::ServiceOptions options;
  options.wal_path = wal_path;

  double live_max_sum = 0.0;
  int64_t live_epoch = 0;
  std::vector<std::pair<UserId, EventId>> live_pairs;
  {
    svc::ArrangementService service(trace.initial, options);
    for (const Mutation& mutation : trace.mutations) {
      const svc::SubmitResult submitted = service.Submit(mutation);
      if (submitted.status != svc::SvcStatus::kOk) {
        std::filesystem::remove(wal_path);
        return StrFormat("Submit returned %s mid-trace",
                         svc::SvcStatusName(submitted.status));
      }
    }
    service.Flush();
    const auto snapshot = service.snapshot();
    live_max_sum = snapshot->max_sum();
    live_epoch = snapshot->epoch();
    live_pairs = SnapshotPairs(*snapshot);
    service.Stop();
  }

  std::string error;
  const auto recovered = svc::ArrangementService::Recover(options, &error);
  if (recovered == nullptr) {
    std::filesystem::remove(wal_path);
    return "Recover failed: " + error;
  }
  const auto snapshot = recovered->snapshot();
  std::string detail;
  if (snapshot->max_sum() != live_max_sum) {  // bit-identical by contract
    detail = StrFormat("recovered MaxSum %.17g != live %.17g",
                       snapshot->max_sum(), live_max_sum);
  } else if (SnapshotPairs(*snapshot) != live_pairs) {
    detail = StrFormat("recovered pair set (%zu pairs) != live (%zu pairs)",
                       SnapshotPairs(*snapshot).size(), live_pairs.size());
  } else if (snapshot->epoch() != live_epoch) {
    detail = StrFormat("recovered epoch %lld != live %lld",
                       static_cast<long long>(snapshot->epoch()),
                       static_cast<long long>(live_epoch));
  }
  recovered->Stop();
  std::filesystem::remove(wal_path);
  return detail;
}

// The slotted campaign family: small enough that the full slotting space
// (≤ 3^4 slottings × tiny exact leaf solves) stays cheap, varied enough
// to hit both availability regimes and both travel-rule settings.
slot::SlottedGenConfig SlottedConfigFor(const CampaignConfig& config,
                                        uint64_t index) {
  Rng rng(config.seed * 0xda942042e4dd58b5ULL + index);
  slot::SlottedGenConfig slotted;
  slotted.num_events = static_cast<int>(rng.UniformInt(2, 4));
  slotted.num_users = static_cast<int>(rng.UniformInt(3, 6));
  slotted.dim = 3;
  slotted.max_attribute = 100.0;
  slotted.event_capacity = DistributionSpec::Uniform(1.0, 3.0);
  slotted.user_capacity = DistributionSpec::Uniform(1.0, 2.0);
  slotted.num_slots = static_cast<int>(rng.UniformInt(2, 3));
  slotted.horizon_hours = 8.0;
  slotted.min_duration_hours = 1.0;
  slotted.max_duration_hours = 4.0;
  slotted.city_km = 20.0;
  slotted.travel_speed_kmph = rng.Bernoulli(0.5) ? 25.0 : 0.0;
  slotted.allow_probability = 0.5;
  slotted.availability_count =
      rng.Bernoulli(0.5)
          ? DistributionSpec::Uniform(
                1.0, static_cast<double>(slotted.num_slots))
          : DistributionSpec::Zipf(
                1.3, static_cast<double>(slotted.num_slots));
  slotted.seed = rng.NextUint64();
  return slotted;
}

// Shared deterministic re-sum: sorted pairs, base similarity (identical
// to the slot solvers' own accumulation order).
double SlottedMaxSum(const Arrangement& arrangement, const Instance& base) {
  double sum = 0.0;
  for (const auto& [v, u] : arrangement.SortedPairs()) {
    sum += base.Similarity(v, u);
  }
  return sum;
}

// slot-greedy differential: joint feasibility via AuditSlotted, derived
// conflicts consistent with the WindowsConflict predicate, and the
// reported MaxSum bit-identical to a from-scratch re-sum.
std::string CheckSlottedGreedy(const CampaignConfig& config, uint64_t index) {
  const slot::SlottedInstance slotted =
      slot::GenerateSlotted(SlottedConfigFor(config, index));
  const SolverOptions options = BaseOptions(config);
  const slot::SlotSolveResult result =
      slot::CreateSlotSolver("slot-greedy", options)->Solve(slotted);

  const std::string audit =
      slot::AuditSlotted(slotted, result.slotting, result.arrangement);
  if (!audit.empty()) return "joint audit failed: " + audit;

  const ConflictGraph derived =
      slot::DeriveConflicts(slotted, result.slotting);
  for (EventId v = 0; v < slotted.base.num_events(); ++v) {
    if (result.slotting[v] == kInvalidSlot) continue;
    for (EventId w = v + 1; w < slotted.base.num_events(); ++w) {
      if (result.slotting[w] == kInvalidSlot) continue;
      const bool expect = WindowsConflict(
          slotted.slots.windows[result.slotting[v]],
          slotted.slots.windows[result.slotting[w]], slotted.slots.speed_kmph);
      if (derived.AreConflicting(v, w) != expect) {
        return StrFormat(
            "DeriveConflicts(%d,%d) = %d inconsistent with WindowsConflict",
            v, w, derived.AreConflicting(v, w) ? 1 : 0);
      }
    }
  }

  const double recomputed = SlottedMaxSum(result.arrangement, slotted.base);
  if (recomputed != result.max_sum) {  // same summation order ⇒ bit-equal
    return StrFormat("slot-greedy MaxSum %.17g != recomputed %.17g",
                     result.max_sum, recomputed);
  }
  return "";
}

// slot-exact differential: the branch-and-bound must match brute-force
// enumeration of every complete slotting (same lexicographic order, same
// exact leaf solver, strict-improvement incumbent) bit for bit.
std::string CheckSlottedExact(const CampaignConfig& config, uint64_t index) {
  const slot::SlottedInstance slotted =
      slot::GenerateSlotted(SlottedConfigFor(config, index));
  const SolverOptions options = BaseOptions(config);
  const slot::SlotSolveResult result =
      slot::CreateSlotSolver("slot-exact", options)->Solve(slotted);

  const std::string audit =
      slot::AuditSlotted(slotted, result.slotting, result.arrangement);
  if (!audit.empty()) return "joint audit failed: " + audit;

  const int num_events = slotted.base.num_events();
  std::vector<std::vector<SlotId>> choices(num_events);
  for (EventId v = 0; v < num_events; ++v) {
    for (SlotId s = 0; s < slotted.num_slots(); ++s) {
      if ((slotted.event_allowed[v] >> s) & 1u) choices[v].push_back(s);
    }
  }
  const PruneSolver leaf_solver(options);
  slot::Slotting best_slotting;
  Arrangement best_arrangement;
  double best_sum = -std::numeric_limits<double>::infinity();
  std::vector<size_t> cursor(num_events, 0);
  slot::Slotting slotting(num_events, kInvalidSlot);
  bool done = false;
  while (!done) {
    for (EventId v = 0; v < num_events; ++v) {
      slotting[v] = choices[v][cursor[v]];
    }
    const Instance sub = slot::MakeSubInstance(slotted, slotting);
    SolveResult leaf = leaf_solver.Solve(sub);
    const double sum = SlottedMaxSum(leaf.arrangement, sub);
    if (sum > best_sum) {
      best_sum = sum;
      best_slotting = slotting;
      best_arrangement = std::move(leaf.arrangement);
    }
    done = true;
    for (int v = num_events - 1; v >= 0; --v) {
      if (++cursor[v] < choices[v].size()) {
        done = false;
        break;
      }
      cursor[v] = 0;
    }
  }

  if (result.slotting != best_slotting) {
    return "slot-exact slotting differs from exhaustive enumeration";
  }
  if (result.arrangement.SortedPairs() != best_arrangement.SortedPairs()) {
    return StrFormat(
        "slot-exact arrangement (%zu pairs) != exhaustive (%zu pairs)",
        result.arrangement.SortedPairs().size(),
        best_arrangement.SortedPairs().size());
  }
  if (result.max_sum != best_sum) {  // bit-identical by construction
    return StrFormat("slot-exact MaxSum %.17g != exhaustive %.17g",
                     result.max_sum, best_sum);
  }
  return "";
}

}  // namespace

Instance MakeCampaignInstance(const CampaignConfig& config, uint64_t index) {
  Rng rng(config.seed * 0x9e3779b97f4a7c15ULL + index);
  SyntheticConfig synth;
  synth.num_events =
      static_cast<int>(rng.UniformInt(3, std::max(3, config.max_events)));
  synth.num_users =
      static_cast<int>(rng.UniformInt(2, std::max(2, config.max_users)));
  synth.dim = 3;
  synth.max_attribute = 100.0;
  synth.event_attribute = DistributionSpec::Uniform(0.0, 100.0);
  synth.user_attribute = DistributionSpec::Uniform(0.0, 100.0);
  synth.event_capacity = DistributionSpec::Uniform(1.0, 4.0);
  synth.user_capacity = DistributionSpec::Uniform(
      1.0, static_cast<double>(rng.UniformInt(1, 3)));
  const double densities[] = {0.0, 0.25, 0.5, 1.0};
  synth.conflict_density = config.conflict_density >= 0.0
                               ? config.conflict_density
                               : densities[rng.UniformInt(0, 3)];
  synth.seed = rng.NextUint64();
  return GenerateSynthetic(synth);
}

CampaignResult RunCampaign(const CampaignConfig& config, std::ostream* log) {
  CampaignResult result;
  OracleCache cache;
  const auto checks = BuildInstanceChecks(config, cache);

  auto record_failure = [&](std::string check, std::string detail,
                            uint64_t seed, const Instance* instance) {
    CampaignFailure failure;
    failure.check = std::move(check);
    failure.detail = std::move(detail);
    failure.seed = seed;
    if (instance != nullptr) failure.instance_text = Serialize(*instance);
    if (log != nullptr) {
      *log << "FAIL " << failure.check << " (seed " << seed
           << "): " << failure.detail << "\n";
    }
    result.failures.push_back(std::move(failure));
  };

  for (int i = 0; i < config.instances; ++i) {
    if (static_cast<int>(result.failures.size()) >= config.max_failures) {
      if (log != nullptr) {
        *log << "stopping after " << result.failures.size() << " failures\n";
      }
      break;
    }
    const uint64_t index = static_cast<uint64_t>(i);
    const Instance instance = MakeCampaignInstance(config, index);
    cache.Invalidate();
    ++result.instances;

    for (const auto& [name, check] : checks) {
      ++result.checks;
      std::string detail = check(instance);
      if (detail.empty()) continue;
      record_failure(name, std::move(detail), index, &instance);
      CampaignFailure& failure = result.failures.back();
      if (config.shrink) {
        const auto& fn = check;
        // Shrink candidates come and go at reused addresses, so the
        // per-instance cache must be dropped at every candidate (and
        // again afterwards, before the next check reuses `instance`).
        const Instance shrunk = ShrinkInstance(
            instance,
            [&fn, &cache](const Instance& candidate) {
              cache.Invalidate();
              return !fn(candidate).empty();
            },
            config.shrink_options, &failure.shrink_stats);
        cache.Invalidate();
        failure.shrunk_instance_text = Serialize(shrunk);
        if (log != nullptr) {
          *log << "  shrunk to |V|=" << shrunk.num_events()
               << " |U|=" << shrunk.num_users() << " after "
               << failure.shrink_stats.predicate_calls
               << " predicate calls\n";
        }
      }
    }

    if (config.repair_period > 0 && i % config.repair_period == 0) {
      ++result.checks;
      std::string detail = CheckRepairTrace(config, index);
      if (!detail.empty()) {
        record_failure("repair/trace", std::move(detail), index, nullptr);
      }
    }
    if (config.wal_period > 0 && i % config.wal_period == 0) {
      ++result.checks;
      std::string detail = CheckWalRecovery(config, index);
      if (!detail.empty()) {
        record_failure("wal/recovery", std::move(detail), index, nullptr);
      }
    }
    if (config.paged_period > 0 && i % config.paged_period == 0) {
      ++result.checks;
      std::string detail = CheckPagedIdentity(config, instance);
      if (!detail.empty()) {
        record_failure("paged/greedy", std::move(detail), index, &instance);
      }
    }
    if (config.shard_period > 0 && i % config.shard_period == 0) {
      for (const int num_shards : {2, 3}) {
        ++result.checks;
        std::string detail =
            CheckShardedIdentity(config, instance, num_shards);
        if (!detail.empty()) {
          record_failure(StrFormat("sharded/N=%d", num_shards),
                         std::move(detail), index, &instance);
        }
      }
    }
    if (config.slot_period > 0 && i % config.slot_period == 0) {
      ++result.checks;
      std::string detail = CheckSlottedGreedy(config, index);
      if (!detail.empty()) {
        record_failure("slotted/greedy", std::move(detail), index, nullptr);
      }
      ++result.checks;
      detail = CheckSlottedExact(config, index);
      if (!detail.empty()) {
        record_failure("slotted/exact", std::move(detail), index, nullptr);
      }
    }

    if (log != nullptr && (i + 1) % 50 == 0) {
      *log << "campaign: " << (i + 1) << "/" << config.instances
           << " instances, " << result.checks << " checks, "
           << result.failures.size() << " failures\n";
    }
  }
  return result;
}

}  // namespace geacc::verify
