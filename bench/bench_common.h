// Shared plumbing for the figure-reproduction bench binaries.
//
// Every fig*_ binary accepts:
//   --reps N      repetitions per sweep point (fresh instance per rep)
//   --seed S      base seed
//   --solvers A,B comma-separated solver subset
//   --paper       full paper-scale parameters (defaults are sized so the
//                 whole bench suite finishes in minutes on a laptop)
//   --csv         additionally dump each table as CSV to stdout
//   --json PATH   write a `geacc-bench v1` machine-readable report
//                 (src/obs/bench_report.h) for CI perf baselines
//   --index NAME  k-NN backend for Greedy's cursors; "idistance-paged"
//                 runs them out of core under --storage_budget_mb MiB of
//                 buffer-pool memory (page files in --storage_dir)
//   --simd MODE   batched-kernel dispatch: auto (default), avx2, scalar
//   --fp MODE     kernel FP policy: strict (default) or fast
//   --bound NAME  exact-solver pruning bound: lemma6, clique (default),
//                 or clique-lp (DESIGN.md §18)

#ifndef GEACC_BENCH_BENCH_COMMON_H_
#define GEACC_BENCH_BENCH_COMMON_H_

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "exp/experiment.h"
#include "obs/bench_report.h"
#include "simd/simd.h"
#include "util/check.h"
#include "util/flags.h"
#include "util/memory.h"
#include "util/string_util.h"

namespace geacc::bench {

struct CommonFlags {
  int reps = 1;
  int64_t seed = 42;
  std::string solvers;  // empty = bench-specific default
  bool paper = false;
  bool csv = false;
  std::string json;  // empty = no report
  int threads = 1;
  // Audit every arrangement with src/verify (SweepConfig::audit): all
  // violation classes plus maximality where guaranteed, aborting with the
  // full violation list on failure. Adds an O(|V||U|) scan per run, so
  // times measured under --selfcheck are not comparable to baselines.
  bool selfcheck = false;
  // Storage knobs (SolverOptions::index & friends, DESIGN.md §14):
  // --index idistance-paged routes Greedy's cursors through the
  // disk-backed backend with --storage_budget_mb of buffer-pool memory.
  std::string index;  // empty = solver default ("linear")
  int64_t storage_budget_mb = 16;
  std::string storage_dir;
  // SIMD kernel knobs (DESIGN.md §15): --simd pins the dispatch level of
  // the batched similarity kernels, --fp picks the solver FP policy.
  std::string simd = "auto";
  std::string fp = "strict";
  // Exact-solver bound hierarchy (algo/bounds.h, DESIGN.md §18).
  std::string bound = "clique";

  void Register(FlagSet& flags) {
    flags.AddInt("reps", &reps, "repetitions per sweep point");
    flags.AddInt("seed", &seed, "base seed");
    flags.AddString("solvers", &solvers,
                    "comma-separated solver subset (default: per bench)");
    flags.AddBool("paper", &paper,
                  "use full paper-scale parameters (slower)");
    flags.AddBool("csv", &csv, "also dump tables as CSV");
    flags.AddString("json", &json,
                    "write a geacc-bench v1 JSON report to this path");
    flags.AddInt("threads", &threads,
                 "thread budget: RunSweep benches split it between "
                 "(point × rep) workers and intra-solver lanes (see "
                 "SweepConfig::threads); direct-RunSolver benches hand it "
                 "to the solver as SolverOptions::threads. Wall times get "
                 "noisy above 1");
    flags.AddBool("selfcheck", &selfcheck,
                  "audit every arrangement with src/verify (all violation "
                  "classes + maximality); slows runs, do not baseline");
    flags.AddString("index", &index,
                    "k-NN backend for Greedy's cursors: linear, kdtree, "
                    "vafile, idistance, idistance-paged (default: solver "
                    "default)");
    flags.AddInt("storage_budget_mb", &storage_budget_mb,
                 "idistance-paged only: buffer-pool budget in MiB");
    flags.AddString("storage_dir", &storage_dir,
                    "idistance-paged only: directory for the temporary "
                    "page files (default: TMPDIR or /tmp)");
    flags.AddString("simd", &simd,
                    "batched-kernel dispatch: auto (cpuid pick, default), "
                    "avx2, or scalar; forcing an unavailable level fails "
                    "fast");
    flags.AddString("fp", &fp,
                    "kernel FP policy: strict (bit-identical to per-pair, "
                    "default) or fast (FMA contraction in solver-internal "
                    "batches)");
    flags.AddString("bound", &bound,
                    "exact-solver pruning bound: lemma6, clique (default), "
                    "or clique-lp; results are bit-identical across levels, "
                    "only search effort changes");
  }

  // Copies the storage/kernel flags into a solver-options struct; benches
  // call this on SweepConfig::solver_options (or a hand-rolled
  // SolverOptions) so --index idistance-paged and --fp reach every solver
  // they run. Also applies --simd to the process-wide dispatch override
  // (fail-fast on an unavailable level).
  void ApplySolverOptions(SolverOptions* options) const {
    if (!index.empty()) options->index = index;
    options->storage_budget_bytes =
        static_cast<uint64_t>(storage_budget_mb) << 20;
    options->storage_dir = storage_dir;
    options->fp_mode = fp;
    options->bound = bound;
    std::string error;
    if (!simd::SetDispatchOverride(simd, &error)) {
      std::fprintf(stderr, "--simd: %s\n", error.c_str());
      std::exit(1);
    }
  }

  std::vector<std::string> SolverList(
      const std::vector<std::string>& fallback) const {
    if (solvers.empty()) return fallback;
    std::vector<std::string> list;
    for (const std::string& name : Split(solvers, ',')) {
      if (!name.empty()) list.push_back(name);
    }
    return list;
  }
};

// Fails fast (exit 1) when --threads requests parallelism a bench cannot
// honor. Only for benches whose measurement is inherently serial (e.g.
// the online-vs-global replay, which is order-sensitive); benches that
// drive RunSolver directly should instead pass the budget through
// SolverOptions::threads so the solvers fan out internally.
inline void RequireSerial(const CommonFlags& common, const char* bench) {
  if (common.threads == 1) return;
  std::fprintf(stderr,
               "%s: --threads=%d is not supported: this bench runs its "
               "solvers serially (use --threads 1, the default)\n",
               bench, common.threads);
  std::exit(1);
}

// Accumulates sweep results into a `geacc-bench v1` report and writes it
// when --json was given. One context per binary; AddSweep() after each
// RunSweep, AddPoint() for hand-rolled measurement loops, Write() last.
class ReportContext {
 public:
  ReportContext(const std::string& bench, const FlagSet& flags,
                const CommonFlags& common)
      : common_(common) {
    report_.bench = bench;
    report_.git_rev = obs::GitRevision();
    for (const auto& [name, value] : flags.Values()) {
      report_.flags[name] = value;
    }
  }

  // Appends one point per (sweep point × solver), averaged over reps.
  // Labels are "<sweep title>/<x label>" so multi-sweep benches stay
  // unambiguous in one report. VmHWM is the process high-water mark at
  // call time (monotonic, so later sweeps subsume earlier ones).
  void AddSweep(const SweepConfig& config, const SweepResult& result) {
    const int64_t vm_hwm = static_cast<int64_t>(PeakRssBytes());
    for (size_t p = 0; p < result.records.size(); ++p) {
      for (size_t s = 0; s < result.records[p].size(); ++s) {
        const auto& reps = result.records[p][s];
        if (reps.empty()) continue;
        obs::BenchPoint point;
        point.label = config.title + "/" + result.x_labels[p];
        point.solver = config.solvers[s];
        point.vm_hwm_bytes = vm_hwm;
        std::map<std::string, double> counter_sums;
        std::map<std::string, obs::TimerStat> timer_sums;
        for (const RunRecord& record : reps) {
          point.wall_seconds += record.seconds;
          point.cpu_seconds += record.cpu_seconds;
          point.max_sum += record.max_sum;
          for (const auto& [name, value] : record.counters) {
            counter_sums[name] += static_cast<double>(value);
          }
          for (const auto& [name, stat] : record.timers) {
            timer_sums[name].seconds += stat.seconds;
            timer_sums[name].count += stat.count;
          }
        }
        const double n = static_cast<double>(reps.size());
        point.wall_seconds /= n;
        point.cpu_seconds /= n;
        point.max_sum /= n;
        for (const auto& [name, sum] : counter_sums) {
          point.counters[name] = static_cast<int64_t>(std::llround(sum / n));
        }
        for (const auto& [name, sum] : timer_sums) {
          point.timers[name] = {sum.seconds / n,
                                static_cast<int64_t>(std::llround(
                                    static_cast<double>(sum.count) / n))};
        }
        report_.points.push_back(std::move(point));
      }
    }
  }

  // For benches that measure outside RunSweep. The caller fills
  // everything except vm_hwm_bytes, which is stamped here.
  void AddPoint(obs::BenchPoint point) {
    point.vm_hwm_bytes = static_cast<int64_t>(PeakRssBytes());
    report_.points.push_back(std::move(point));
  }

  // Writes the report if --json was given; CHECK-fails on I/O errors so a
  // CI run can't silently produce no baseline.
  void Write() const {
    if (common_.json.empty()) return;
    std::string error;
    GEACC_CHECK(report_.WriteFile(common_.json, &error)) << error;
    std::cout << "wrote geacc-bench v1 report: " << common_.json << "\n";
  }

  const obs::BenchReport& report() const { return report_; }

 private:
  const CommonFlags& common_;
  obs::BenchReport report_;
};

inline void EmitSweep(const SweepConfig& config, const SweepResult& result,
                      const std::string& x_title, bool csv) {
  PrintSweepTables(config, result, x_title, std::cout);
  if (csv) {
    for (const char* metric : {"max_sum", "seconds", "memory_mb"}) {
      std::cout << "csv:" << metric << "\n";
      MetricTable(result, metric, config.title, x_title)
          .WriteCsv(std::cout);
    }
  }
}

}  // namespace geacc::bench

#endif  // GEACC_BENCH_BENCH_COMMON_H_
