file(REMOVE_RECURSE
  "CMakeFiles/tag_import_test.dir/tag_import_test.cc.o"
  "CMakeFiles/tag_import_test.dir/tag_import_test.cc.o.d"
  "tag_import_test"
  "tag_import_test.pdb"
  "tag_import_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tag_import_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
