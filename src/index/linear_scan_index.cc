#include "index/linear_scan_index.h"

#include <algorithm>

#include "obs/stats.h"
#include "util/arena.h"

namespace geacc {
namespace {

// Strict total order: non-increasing similarity, ties by ascending id.
bool MoreSimilar(const Neighbor& a, const Neighbor& b) {
  if (a.similarity != b.similarity) return a.similarity > b.similarity;
  return a.id < b.id;
}

// Incremental enumeration with bounded memory: each refill rescans the
// points and collects the next batch of items that follow the last
// returned neighbor in the MoreSimilar order. Greedy-GEACC keeps |V| + |U|
// cursors alive at once and typically consumes only a short prefix of
// each, so the rescan trade beats a full per-cursor sort (O(n log n) time,
// O(n) space). The batch doubles after every refill (64, 128, …, 16384):
// cursors that do run deep — e.g. events hunting for scarce user capacity
// — pay O(n·log n) total instead of O(n²/64), without inflating the memory
// of the many shallow cursors.
class BatchedLinearCursor final : public NnCursor {
 public:
  static constexpr size_t kInitialBatch = 64;
  static constexpr size_t kMaxBatch = 16384;

  BatchedLinearCursor(const AttributeMatrix& points,
                      const SimilarityFunction& similarity,
                      const double* query)
      : points_(points), similarity_(similarity), query_(query) {}

  // Per-step counts are batched into members and flushed once here: a
  // registry touch per Next() would be the hottest stats site in the
  // codebase (see DESIGN.md §9.1).
  ~BatchedLinearCursor() override {
    GEACC_STATS_ADD("index.linear.cursor_steps", steps_);
  }

  std::optional<Neighbor> Next() override {
    ++steps_;
    if (position_ >= buffer_.size()) {
      if (exhausted_ || !Refill()) return std::nullopt;
    }
    return buffer_[position_++];
  }

 private:
  // Scans all points for the top-batch neighbors strictly after
  // `last_returned_` in the MoreSimilar order. Returns false when none
  // remain.
  bool Refill() {
    GEACC_STATS_ADD("index.linear.refills", 1);
    GEACC_STATS_ADD("index.linear.points_scanned", points_.rows());
    const size_t batch = batch_;
    batch_ = std::min(batch_ * 2, kMaxBatch);
    buffer_.clear();
    position_ = 0;
    // Bounded top-k selection: with "less = more similar", a std::*_heap
    // max-heap keeps its *worst* kept neighbor at the front, which is the
    // eviction candidate.
    const auto best_first = [](const Neighbor& a, const Neighbor& b) {
      return MoreSimilar(a, b);
    };
    // Score the whole scan in one batched-kernel call (strict mode: bit-
    // identical to the old per-pair loop — similarity args are symmetric),
    // into this worker's scratch arena instead of a per-refill vector.
    Arena& arena = GetScratchArena();
    ScratchScope scratch(arena);
    double* sims = arena.Alloc<double>(points_.rows());
    similarity_.ComputeBatch(query_, points_.Blocked(), simd::FpMode::kStrict,
                             sims);
    for (int i = 0; i < points_.rows(); ++i) {
      const Neighbor candidate{i, sims[i]};
      if (have_threshold_ && !MoreSimilar(last_returned_, candidate)) {
        continue;  // already emitted in an earlier batch
      }
      if (buffer_.size() < batch) {
        buffer_.push_back(candidate);
        std::push_heap(buffer_.begin(), buffer_.end(), best_first);
      } else if (MoreSimilar(candidate, buffer_.front())) {
        std::pop_heap(buffer_.begin(), buffer_.end(), best_first);
        buffer_.back() = candidate;
        std::push_heap(buffer_.begin(), buffer_.end(), best_first);
      }
    }
    if (buffer_.empty()) {
      exhausted_ = true;
      return false;
    }
    // sort_heap yields ascending under best_first: most similar first.
    std::sort_heap(buffer_.begin(), buffer_.end(), best_first);
    last_returned_ = buffer_.back();
    have_threshold_ = true;
    if (buffer_.size() < batch) exhausted_ = true;  // final partial batch
    return true;
  }

  const AttributeMatrix& points_;
  const SimilarityFunction& similarity_;
  const double* query_;
  std::vector<Neighbor> buffer_;
  size_t batch_ = kInitialBatch;
  size_t position_ = 0;
  Neighbor last_returned_;
  bool have_threshold_ = false;
  bool exhausted_ = false;
  int64_t steps_ = 0;
};

}  // namespace

LinearScanIndex::LinearScanIndex(const AttributeMatrix& points,
                                 const SimilarityFunction& similarity)
    : KnnIndex(points.rows()), points_(points), similarity_(similarity) {}

std::vector<Neighbor> LinearScanIndex::ScanAll(const double* query) const {
  std::vector<Neighbor> all;
  all.reserve(points_.rows());
  Arena& arena = GetScratchArena();
  ScratchScope scratch(arena);
  double* sims = arena.Alloc<double>(points_.rows());
  similarity_.ComputeBatch(query, points_.Blocked(), simd::FpMode::kStrict,
                           sims);
  for (int i = 0; i < points_.rows(); ++i) all.push_back({i, sims[i]});
  return all;
}

std::vector<Neighbor> LinearScanIndex::Query(const double* query,
                                             int k) const {
  std::vector<Neighbor> all = ScanAll(query);
  const size_t take = std::min<size_t>(std::max(k, 0), all.size());
  std::partial_sort(all.begin(), all.begin() + take, all.end(), MoreSimilar);
  all.resize(take);
  return all;
}

std::unique_ptr<NnCursor> LinearScanIndex::CreateCursor(
    const double* query) const {
  return std::make_unique<BatchedLinearCursor>(points_, similarity_, query);
}

uint64_t LinearScanIndex::ByteEstimate() const {
  return sizeof(*this);  // references only; no owned storage
}

}  // namespace geacc
