file(REMOVE_RECURSE
  "CMakeFiles/motivation_online_vs_global.dir/motivation_online_vs_global.cc.o"
  "CMakeFiles/motivation_online_vs_global.dir/motivation_online_vs_global.cc.o.d"
  "motivation_online_vs_global"
  "motivation_online_vs_global.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motivation_online_vs_global.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
