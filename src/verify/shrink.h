// Delta-debugging instance minimizer for failing verification checks.
//
// Given an instance on which some property fails (a predicate returning
// true = "still fails"), ShrinkInstance greedily searches for a smaller
// instance that still fails: ddmin-style chunked removal of users and
// events (halving chunk sizes down to single entities), then dropping
// conflict pairs one at a time, then lowering capacities to 1. Passes
// repeat until a whole round makes no progress.
//
// The result is a local minimum — removing any single entity, conflict, or
// capacity unit makes the failure disappear — which in practice turns a
// 5×8 campaign counterexample into a 1-or-2-entity repro a human can read.
// The predicate must be deterministic; it is re-invoked on every candidate
// (ShrinkStats::predicate_calls counts the cost).
//
// Thread-safety: pure function of its arguments; the predicate is called
// from the calling thread only.

#ifndef GEACC_VERIFY_SHRINK_H_
#define GEACC_VERIFY_SHRINK_H_

#include <cstdint>
#include <functional>

#include "core/instance.h"

namespace geacc::verify {

struct ShrinkOptions {
  // Hard cap on full reduction rounds (each round tries every pass once).
  int max_rounds = 16;
  // Hard cap on predicate invocations (0 = unlimited); the shrink returns
  // the best instance found so far when the budget runs out.
  int64_t max_predicate_calls = 0;
};

struct ShrinkStats {
  int rounds = 0;
  int64_t predicate_calls = 0;
};

// Returns the smallest instance found for which `still_fails` is true.
// `still_fails(start)` must be true on entry (checked).
Instance ShrinkInstance(const Instance& start,
                        const std::function<bool(const Instance&)>& still_fails,
                        const ShrinkOptions& options = {},
                        ShrinkStats* stats = nullptr);

}  // namespace geacc::verify

#endif  // GEACC_VERIFY_SHRINK_H_
