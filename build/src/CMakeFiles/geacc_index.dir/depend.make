# Empty dependencies file for geacc_index.
# This may be replaced when dependencies are built.
