// Tests for the conflict-aware bound layer (algo/bounds.h, DESIGN.md
// §18): clique-partition structure and determinism, suffix-bound
// admissibility and ordering across the bound hierarchy, the
// degenerate-case guarantee (empty conflict graph ≡ Lemma 6 bitwise),
// bit-identity of the bounded exact solvers against the exhaustive
// oracle, the bound-ties-incumbent regression, and slot-exact's
// forced-conflict clique caps.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "algo/bounds.h"
#include "algo/solvers.h"
#include "core/arrangement.h"
#include "core/conflict_graph.h"
#include "core/instance.h"
#include "slot/slot_solvers.h"
#include "slot/slotted_gen.h"
#include "tests/test_util.h"

namespace geacc {
namespace {

using algo::BoundInputs;
using algo::BoundMode;
using algo::CliquePartition;
using geacc::testing::MakeTableInstance;
using geacc::testing::SmallRandomInstance;

// Owns the flat arrays BoundInputs borrows; event_bound is Lemma 6's
// solo potential s_v·c_v (best similarity times event capacity), order
// is the identity — the same construction PruneSolver uses.
struct OwnedInputs {
  std::vector<double> sim;
  std::vector<double> event_bound;
  std::vector<int> event_capacity;
  std::vector<int> user_capacity;
  std::vector<EventId> order;
  BoundInputs in;
};

OwnedInputs MakeInputs(const Instance& instance) {
  OwnedInputs owned;
  const int num_events = instance.num_events();
  const int num_users = instance.num_users();
  owned.sim.resize(static_cast<size_t>(num_events) * num_users);
  owned.event_bound.resize(num_events);
  owned.event_capacity.resize(num_events);
  owned.user_capacity.resize(num_users);
  owned.order.resize(num_events);
  for (EventId v = 0; v < num_events; ++v) {
    double best = 0.0;
    for (UserId u = 0; u < num_users; ++u) {
      const double s = instance.Similarity(v, u);
      owned.sim[static_cast<size_t>(v) * num_users + u] = s;
      best = std::max(best, s);
    }
    owned.event_bound[v] = best * instance.event_capacity(v);
    owned.event_capacity[v] = instance.event_capacity(v);
    owned.order[v] = v;
  }
  for (UserId u = 0; u < num_users; ++u) {
    owned.user_capacity[u] = instance.user_capacity(u);
  }
  owned.in.num_events = num_events;
  owned.in.num_users = num_users;
  owned.in.sim = owned.sim.data();
  owned.in.event_bound = owned.event_bound.data();
  owned.in.event_capacity = owned.event_capacity.data();
  owned.in.user_capacity = owned.user_capacity.data();
  owned.in.conflicts = &instance.conflicts();
  owned.in.order = owned.order.data();
  return owned;
}

double ExactOptimum(const Instance& instance) {
  return CreateSolver("bruteforce")
      ->Solve(instance)
      .arrangement.MaxSum(instance);
}

// ------------------------------------------------------ partitioning ---

TEST(GreedyCliquePartition, IsAValidFirstFitPartitionInIdOrder) {
  for (const double density : {0.0, 0.25, 0.5, 1.0}) {
    for (uint64_t seed = 1; seed <= 8; ++seed) {
      const Instance instance =
          SmallRandomInstance(6, 8, density, 3, seed);
      const ConflictGraph& graph = instance.conflicts();
      const CliquePartition partition = algo::GreedyCliquePartition(graph);

      // Every event appears in exactly one clique, consistent with
      // clique_of, and cliques hold ascending ids.
      ASSERT_EQ(static_cast<int>(partition.clique_of.size()),
                instance.num_events());
      std::vector<int> seen(instance.num_events(), 0);
      for (int q = 0; q < partition.num_cliques(); ++q) {
        ASSERT_FALSE(partition.cliques[q].empty());
        for (size_t i = 0; i < partition.cliques[q].size(); ++i) {
          const EventId v = partition.cliques[q][i];
          ++seen[v];
          EXPECT_EQ(partition.clique_of[v], q);
          if (i > 0) {
            EXPECT_LT(partition.cliques[q][i - 1], v);
          }
        }
      }
      for (const int count : seen) EXPECT_EQ(count, 1);

      // Cliques are cliques: every pair within one conflicts.
      for (const auto& clique : partition.cliques) {
        for (size_t i = 0; i < clique.size(); ++i) {
          for (size_t j = i + 1; j < clique.size(); ++j) {
            EXPECT_TRUE(graph.AreConflicting(clique[i], clique[j]));
          }
        }
      }

      // First-fit: an event lands in clique q only because it does NOT
      // fully conflict with some earlier member of every clique before q.
      for (EventId v = 0; v < instance.num_events(); ++v) {
        for (int q = 0; q < partition.clique_of[v]; ++q) {
          bool conflicts_with_all_earlier = true;
          for (const EventId w : partition.cliques[q]) {
            if (w >= v) break;
            if (!graph.AreConflicting(v, w)) {
              conflicts_with_all_earlier = false;
              break;
            }
          }
          EXPECT_FALSE(conflicts_with_all_earlier)
              << "event " << v << " should have joined clique " << q;
        }
      }

      // Deterministic: recomputing yields the identical structure.
      const CliquePartition again = algo::GreedyCliquePartition(graph);
      EXPECT_EQ(partition.cliques, again.cliques);
      EXPECT_EQ(partition.clique_of, again.clique_of);
    }
  }
}

// ------------------------------------------------- degenerate cases ----

TEST(ComputeSuffixBounds, EmptyConflictGraphIsBitIdenticalToLemma6) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const Instance instance = SmallRandomInstance(6, 8, 0.0, 3, seed);
    ASSERT_TRUE(instance.conflicts().empty());
    const OwnedInputs owned = MakeInputs(instance);
    const CliquePartition partition =
        algo::GreedyCliquePartition(instance.conflicts());
    const std::vector<double> lemma6 =
        algo::ComputeSuffixBounds(owned.in, BoundMode::kLemma6, partition);
    const std::vector<double> clique =
        algo::ComputeSuffixBounds(owned.in, BoundMode::kClique, partition);
    ASSERT_EQ(lemma6.size(), clique.size());
    for (size_t k = 0; k < lemma6.size(); ++k) {
      // Bitwise: the singleton-clique accumulation adds the same terms
      // in the same order as the plain Lemma 6 suffix sums.
      EXPECT_EQ(lemma6[k], clique[k]) << "suffix " << k;
    }
  }
}

// ----------------------------------------------------- admissibility ---

TEST(ComputeSuffixBounds, EveryModeIsAdmissibleAndOrdered) {
  for (const double density : {0.25, 0.5, 1.0}) {
    for (uint64_t seed = 1; seed <= 6; ++seed) {
      const Instance instance =
          SmallRandomInstance(5, 7, density, 3, seed);
      const OwnedInputs owned = MakeInputs(instance);
      const CliquePartition partition =
          algo::GreedyCliquePartition(instance.conflicts());
      const std::vector<double> lemma6 =
          algo::ComputeSuffixBounds(owned.in, BoundMode::kLemma6, partition);
      const std::vector<double> clique =
          algo::ComputeSuffixBounds(owned.in, BoundMode::kClique, partition);
      const std::vector<double> lp = algo::ComputeSuffixBounds(
          owned.in, BoundMode::kCliqueLp, partition);
      const double opt = ExactOptimum(instance);

      // Admissible at the root: suffix[0] covers the whole instance.
      EXPECT_GE(lemma6[0] + algo::kBoundEps, opt);
      EXPECT_GE(clique[0] + algo::kBoundEps, opt);
      EXPECT_GE(lp[0] + algo::kBoundEps, opt);
      // The relaxation itself is admissible too.
      EXPECT_GE(algo::BMatchingBound(owned.in, 0) + algo::kBoundEps, opt);

      // Hierarchy: each level tightens (never loosens) the one above,
      // and suffixes are monotone with suffix[|V|] = 0.
      const size_t n = lemma6.size();
      ASSERT_EQ(n, clique.size());
      ASSERT_EQ(n, lp.size());
      EXPECT_EQ(lemma6[n - 1], 0.0);
      EXPECT_EQ(clique[n - 1], 0.0);
      EXPECT_EQ(lp[n - 1], 0.0);
      for (size_t k = 0; k < n; ++k) {
        EXPECT_LE(clique[k], lemma6[k]) << "suffix " << k;
        EXPECT_LE(lp[k], clique[k]) << "suffix " << k;
        if (k + 1 < n) {
          EXPECT_GE(lemma6[k], lemma6[k + 1]);
          EXPECT_GE(clique[k], clique[k + 1]);
        }
      }
    }
  }
}

TEST(ComputeSuffixBounds, CompleteGraphCliqueCapIsTight) {
  // Two conflicting events, one user with capacity 1: Lemma 6 claims
  // 1.0 + 0.8, but the single clique seats at most min(Σ c_v, viable
  // users) = 1 attendee, whose best similarity is 1.0 — exactly OPT.
  const Instance instance =
      MakeTableInstance({{1.0}, {0.8}}, {1, 1}, {1}, {{0, 1}});
  const OwnedInputs owned = MakeInputs(instance);
  const CliquePartition partition =
      algo::GreedyCliquePartition(instance.conflicts());
  ASSERT_EQ(partition.num_cliques(), 1);
  const std::vector<double> lemma6 =
      algo::ComputeSuffixBounds(owned.in, BoundMode::kLemma6, partition);
  const std::vector<double> clique =
      algo::ComputeSuffixBounds(owned.in, BoundMode::kClique, partition);
  EXPECT_DOUBLE_EQ(lemma6[0], 1.8);
  EXPECT_DOUBLE_EQ(clique[0], 1.0);
  EXPECT_DOUBLE_EQ(ExactOptimum(instance), 1.0);
}

// ------------------------------------------------------ bound option ---

TEST(BoundOption, ValidateSolverOptionsRejectsUnknownNames) {
  SolverOptions options;
  options.bound = "chromatic";
  EXPECT_NE(ValidateSolverOptions(options), "");
  for (const char* name : {"lemma6", "clique", "clique-lp"}) {
    options.bound = name;
    EXPECT_EQ(ValidateSolverOptions(options), "") << name;
  }
}

// -------------------------------------------- solver bit-identity ------

TEST(PruneSolverBounds, BitIdenticalToExhaustiveAcrossBoundsAndThreads) {
  const auto exhaustive = CreateSolver("exhaustive");
  for (const double density : {0.5, 1.0}) {
    for (uint64_t seed = 1; seed <= 4; ++seed) {
      const Instance instance =
          SmallRandomInstance(5, 7, density, 3, seed);
      const SolveResult reference = exhaustive->Solve(instance);
      const auto reference_pairs = reference.arrangement.SortedPairs();
      const double reference_sum = reference.arrangement.MaxSum(instance);

      int64_t invocations_lemma6 = 0;
      for (const char* bound : {"lemma6", "clique", "clique-lp"}) {
        for (const int threads : {1, 3}) {
          SolverOptions options;
          options.bound = bound;
          options.threads = threads;
          // Bit-identity (not just value equality) holds for the
          // seedless solver: see the contract in algo/bounds.h.
          options.enable_greedy_seed = false;
          const SolveResult result =
              CreateSolver("prune", options)->Solve(instance);
          EXPECT_EQ(result.arrangement.SortedPairs(), reference_pairs)
              << bound << " threads=" << threads << " seed=" << seed;
          EXPECT_EQ(result.arrangement.MaxSum(instance), reference_sum)
              << bound << " threads=" << threads << " seed=" << seed;
          if (threads == 1) {
            if (std::string(bound) == "lemma6") {
              invocations_lemma6 = result.stats.search_invocations;
            } else {
              // Tightening only shrinks the visited tree.
              EXPECT_LE(result.stats.search_invocations, invocations_lemma6)
                  << bound << " seed=" << seed;
            }
          }
        }
      }
    }
  }
}

TEST(PruneSolverBounds, BoundTyingTheIncumbentIsNeverPruned) {
  // Both DFS orders of this instance yield MaxSum exactly 1.0, and the
  // clique cap on the sibling subtree is exactly 1.0 as well — the bound
  // TIES the incumbent bit-for-bit. The prune rule must descend ties
  // (`bound + eps < incumbent`, not `<=`), or an optimal leaf is lost
  // when FP noise tips the comparison; this is the regression guard for
  // the shared PruneSolver / slot-exact contract.
  const Instance instance =
      MakeTableInstance({{1.0}, {1.0}}, {1, 1}, {1}, {{0, 1}});
  const SolveResult reference = CreateSolver("exhaustive")->Solve(instance);
  ASSERT_DOUBLE_EQ(reference.arrangement.MaxSum(instance), 1.0);
  for (const char* bound : {"lemma6", "clique", "clique-lp"}) {
    SolverOptions options;
    options.bound = bound;
    options.enable_greedy_seed = false;
    const SolveResult result =
        CreateSolver("prune", options)->Solve(instance);
    EXPECT_EQ(result.arrangement.SortedPairs(),
              reference.arrangement.SortedPairs())
        << bound;
    EXPECT_EQ(result.arrangement.MaxSum(instance), 1.0) << bound;
  }
}

// ----------------------------------------------------- slot-exact ------

// Dense slotted family: two heavily overlapping slots at one venue, so
// every scheduled pair of events conflicts regardless of slot choice —
// the forced-conflict graph is complete and the per-slot clique caps
// engage.
slot::SlottedGenConfig DenseSlottedConfig(uint64_t seed) {
  slot::SlottedGenConfig config;
  config.num_events = 5;
  config.num_users = 8;
  config.dim = 3;
  config.num_slots = 2;
  config.horizon_hours = 4.0;
  config.min_duration_hours = 3.5;
  config.max_duration_hours = 4.0;
  config.city_km = 0.0;
  config.allow_probability = 1.0;
  config.availability_count = DistributionSpec::Uniform(1.0, 2.0);
  config.seed = seed;
  return config;
}

// Hand-built instance where the per-slot clique cap provably prunes.
// Two identical fully overlapping slots at one venue, so all three
// events forced-conflict. v1 and v2 both chase users u0/u1 (sims 1.0),
// so suffix_plain double-counts those users at 4.0 while the clique cap
// knows at most 2.0 is attainable. v0 only appeals to u2 (sim 0.5), who
// is available in slot 0 alone. DFS: the v0 = slot 0 branch finds the
// optimum 2.5 first; at the v0 = slot 1 sibling the tightened bound is
// 0 + 2.0 < 2.5 — pruned — while the plain bound 0 + 4.0 would descend
// into all four leaves.
slot::SlottedInstance CliqueCutSlotted() {
  Instance base = geacc::testing::MakeTableInstance(
      {{0.0, 0.0, 0.5}, {1.0, 1.0, 0.0}, {1.0, 1.0, 0.0}}, {1, 2, 2},
      {1, 1, 1}, {});
  slot::SlotTable slots;
  slots.windows = {TimeWindow{0.0, 2.0, 0.0, 0.0},
                   TimeWindow{0.0, 2.0, 0.0, 0.0}};
  slots.speed_kmph = 0.0;
  return slot::SlottedInstance{std::move(base), std::move(slots),
                               {0b11u, 0b11u, 0b11u},
                               {0b11u, 0b11u, 0b01u}};
}

TEST(SlotExactBounds, CliqueCapPrunesWherePlainBoundDescends) {
  const slot::SlottedInstance slotted = CliqueCutSlotted();
  SolverOptions lemma6_options;
  lemma6_options.bound = "lemma6";
  SolverOptions clique_options;
  clique_options.bound = "clique";
  const slot::SlotSolveResult lemma6 =
      slot::CreateSlotSolver("slot-exact", lemma6_options)->Solve(slotted);
  const slot::SlotSolveResult clique =
      slot::CreateSlotSolver("slot-exact", clique_options)->Solve(slotted);

  EXPECT_DOUBLE_EQ(lemma6.max_sum, 2.5);
  EXPECT_EQ(clique.slotting, lemma6.slotting);
  EXPECT_EQ(clique.arrangement.SortedPairs(),
            lemma6.arrangement.SortedPairs());
  EXPECT_EQ(clique.max_sum, lemma6.max_sum);

  EXPECT_EQ(lemma6.leaf_solves, 8);
  EXPECT_LT(clique.leaf_solves, lemma6.leaf_solves);
  EXPECT_GT(clique.stats.bound_clique_cuts, 0);
  EXPECT_EQ(lemma6.stats.bound_clique_cuts, 0);
}

TEST(SlotExactBounds, CliqueBoundKeepsBitsAndCutsLeafSolves) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const slot::SlottedInstance slotted =
        slot::GenerateSlotted(DenseSlottedConfig(seed));
    SolverOptions lemma6_options;
    lemma6_options.bound = "lemma6";
    SolverOptions clique_options;
    clique_options.bound = "clique";
    const slot::SlotSolveResult lemma6 =
        slot::CreateSlotSolver("slot-exact", lemma6_options)->Solve(slotted);
    const slot::SlotSolveResult clique =
        slot::CreateSlotSolver("slot-exact", clique_options)->Solve(slotted);

    // Same joint result, bit for bit: slotting, pair set, MaxSum.
    EXPECT_EQ(clique.slotting, lemma6.slotting) << "seed=" << seed;
    EXPECT_EQ(clique.arrangement.SortedPairs(),
              lemma6.arrangement.SortedPairs())
        << "seed=" << seed;
    EXPECT_EQ(clique.max_sum, lemma6.max_sum) << "seed=" << seed;

    // The tightened per-slot caps only remove work.
    EXPECT_LE(clique.leaf_solves, lemma6.leaf_solves) << "seed=" << seed;
    EXPECT_LE(clique.slottings_considered, lemma6.slottings_considered)
        << "seed=" << seed;
    EXPECT_EQ(lemma6.stats.bound_clique_cuts, 0) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace geacc
