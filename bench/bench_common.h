// Shared plumbing for the figure-reproduction bench binaries.
//
// Every fig*_ binary accepts:
//   --reps N      repetitions per sweep point (fresh instance per rep)
//   --seed S      base seed
//   --solvers A,B comma-separated solver subset
//   --paper       full paper-scale parameters (defaults are sized so the
//                 whole bench suite finishes in minutes on a laptop)
//   --csv         additionally dump each table as CSV to stdout

#ifndef GEACC_BENCH_BENCH_COMMON_H_
#define GEACC_BENCH_BENCH_COMMON_H_

#include <iostream>
#include <string>
#include <vector>

#include "exp/experiment.h"
#include "util/flags.h"
#include "util/string_util.h"

namespace geacc::bench {

struct CommonFlags {
  int reps = 1;
  int64_t seed = 42;
  std::string solvers;  // empty = bench-specific default
  bool paper = false;
  bool csv = false;
  int threads = 1;

  void Register(FlagSet& flags) {
    flags.AddInt("reps", &reps, "repetitions per sweep point");
    flags.AddInt("seed", &seed, "base seed");
    flags.AddString("solvers", &solvers,
                    "comma-separated solver subset (default: per bench)");
    flags.AddBool("paper", &paper,
                  "use full paper-scale parameters (slower)");
    flags.AddBool("csv", &csv, "also dump tables as CSV");
    flags.AddInt("threads", &threads,
                 "parallel (point × rep) workers; wall times get noisy "
                 "above 1");
  }

  std::vector<std::string> SolverList(
      const std::vector<std::string>& fallback) const {
    if (solvers.empty()) return fallback;
    std::vector<std::string> list;
    for (const std::string& name : Split(solvers, ',')) {
      if (!name.empty()) list.push_back(name);
    }
    return list;
  }
};

inline void EmitSweep(const SweepConfig& config, const SweepResult& result,
                      const std::string& x_title, bool csv) {
  PrintSweepTables(config, result, x_title, std::cout);
  if (csv) {
    for (const char* metric : {"max_sum", "seconds", "memory_mb"}) {
      std::cout << "csv:" << metric << "\n";
      MetricTable(result, metric, config.title, x_title)
          .WriteCsv(std::cout);
    }
  }
}

}  // namespace geacc::bench

#endif  // GEACC_BENCH_BENCH_COMMON_H_
