// Bit-identical parallelism: every solver must return the same arrangement
// at any SolverOptions::threads value (DESIGN.md §10), the pool's chunked
// reductions must be deterministic, and worker-side counters must be
// re-credited to the calling thread so StatsScope attribution survives
// intra-solver fan-out.

#include <atomic>
#include <cstdint>
#include <memory>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "algo/solvers.h"
#include "core/instance.h"
#include "core/preprocess.h"
#include "core/solver.h"
#include "dyn/dynamic_instance.h"
#include "dyn/incremental_arranger.h"
#include "exp/experiment.h"
#include "gen/synthetic.h"
#include "gen/trace_gen.h"
#include "obs/stats.h"
#include "util/thread_pool.h"

namespace geacc {
namespace {

// The arrangement's exact serialized form — per-user event lists in list
// order, so two arrangements compare equal only when they were built by
// the identical Add sequence modulo user grouping.
std::vector<std::pair<UserId, EventId>> FlatPairs(const Arrangement& a) {
  std::vector<std::pair<UserId, EventId>> pairs;
  for (UserId u = 0; u < a.num_users(); ++u) {
    for (const EventId v : a.EventsOf(u)) pairs.emplace_back(u, v);
  }
  return pairs;
}

Instance MakeInstance(int num_events, int num_users, int max_event_capacity,
                      uint64_t seed, double conflict_density) {
  SyntheticConfig config;
  config.num_events = num_events;
  config.num_users = num_users;
  config.dim = 4;
  config.event_capacity = DistributionSpec::Uniform(
      1.0, static_cast<double>(max_event_capacity));
  config.user_capacity = DistributionSpec::Uniform(1.0, 2.0);
  config.conflict_density = conflict_density;
  config.seed = seed;
  return GenerateSynthetic(config);
}

void ExpectThreadInvariant(const std::string& solver_name,
                           SolverOptions options, const Instance& instance) {
  options.threads = 1;
  const std::unique_ptr<Solver> serial = CreateSolver(solver_name, options);
  ASSERT_NE(serial, nullptr);
  const SolveResult baseline = serial->Solve(instance);
  const auto baseline_pairs = FlatPairs(baseline.arrangement);
  const double baseline_sum = baseline.arrangement.MaxSum(instance);

  for (const int threads : {2, 8}) {
    options.threads = threads;
    const std::unique_ptr<Solver> parallel =
        CreateSolver(solver_name, options);
    const SolveResult result = parallel->Solve(instance);
    EXPECT_EQ(FlatPairs(result.arrangement), baseline_pairs)
        << solver_name << " arrangement changed at threads=" << threads
        << " (seed instance " << instance.DebugString() << ")";
    EXPECT_EQ(result.arrangement.MaxSum(instance), baseline_sum)
        << solver_name << " MaxSum changed at threads=" << threads;
  }
}

TEST(ParallelDeterminism, MinCostFlowFuzz) {
  for (const uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const Instance instance = MakeInstance(20, 60, 8, seed, 0.25);
    for (const char* flow : {"dijkstra", "spfa"}) {
      SolverOptions options;
      options.flow_algorithm = flow;
      ExpectThreadInvariant("mincostflow", options, instance);
    }
  }
}

TEST(ParallelDeterminism, MinCostFlowExactResolution) {
  const Instance instance = MakeInstance(12, 30, 5, 11, 0.4);
  SolverOptions options;
  options.exact_conflict_resolution = true;
  ExpectThreadInvariant("mincostflow", options, instance);
}

TEST(ParallelDeterminism, GreedyFuzz) {
  for (const uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const Instance instance = MakeInstance(20, 60, 8, seed, 0.25);
    for (const char* index : {"linear", "kdtree"}) {
      SolverOptions options;
      options.index = index;
      ExpectThreadInvariant("greedy", options, instance);
    }
  }
}

TEST(ParallelDeterminism, PruneFuzz) {
  // Small enough for the exact search, varied enough to exercise the
  // fan-out (tasks, shared incumbent, strict-> fold) across shapes.
  for (const uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u}) {
    const Instance instance = MakeInstance(5, 12, 3, seed, 0.3);
    ExpectThreadInvariant("prune", SolverOptions{}, instance);
  }
}

TEST(ParallelDeterminism, PruneAblationsAndExhaustive) {
  const Instance instance = MakeInstance(4, 8, 2, 21, 0.3);
  for (const bool ordering : {true, false}) {
    for (const bool greedy_seed : {true, false}) {
      SolverOptions options;
      options.enable_event_ordering = ordering;
      options.enable_greedy_seed = greedy_seed;
      ExpectThreadInvariant("prune", options, instance);
    }
  }
  SolverOptions exhaustive;
  exhaustive.enable_pruning = false;
  ExpectThreadInvariant("exhaustive", exhaustive, instance);
}

TEST(ParallelDeterminism, TruncatedSearchFallsBackToSerial) {
  const Instance instance = MakeInstance(5, 12, 3, 31, 0.3);
  SolverOptions options;
  options.max_search_invocations = 500;
  // The invocation budget is a single serial count, so threads > 1 must
  // not change what the truncated search returns.
  ExpectThreadInvariant("prune", options, instance);
}

TEST(ParallelDeterminism, IncrementalArrangerThreadInvariant) {
  // The repair engine's fallback solver inherits RepairOptions::threads;
  // a full trace replay — including drift-triggered full resolves, forced
  // here by a tiny drift threshold — must be bit-identical at any thread
  // count.
  TraceGenConfig config;
  config.initial_events = 15;
  config.initial_users = 80;
  config.num_mutations = 300;
  config.seed = 7;
  const MutationTrace trace = GenerateTrace(config);

  auto replay = [&](int threads) {
    DynamicInstance instance(trace.initial);
    RepairOptions options;
    options.drift_threshold = 0.01;  // drift often → many full resolves
    options.threads = threads;
    IncrementalArranger arranger(&instance, options);
    arranger.FullResolve();
    for (const Mutation& mutation : trace.mutations) {
      arranger.Apply(mutation);
    }
    return std::make_pair(FlatPairs(arranger.arrangement()),
                          arranger.max_sum());
  };

  const auto baseline = replay(1);
  EXPECT_GT(baseline.first.size(), 0u);
  for (const int threads : {2, 8}) {
    const auto result = replay(threads);
    EXPECT_EQ(result.first, baseline.first)
        << "arrangement changed at threads=" << threads;
    EXPECT_EQ(result.second, baseline.second)
        << "max_sum changed at threads=" << threads;
  }
}

TEST(ParallelDeterminism, ReduceInstanceThreadInvariant) {
  const Instance instance = MakeInstance(20, 60, 8, 41, 0.25);
  const ReducedInstance baseline = ReduceInstance(instance, 1);
  for (const int threads : {2, 8}) {
    const ReducedInstance reduced = ReduceInstance(instance, threads);
    EXPECT_EQ(reduced.event_map, baseline.event_map);
    EXPECT_EQ(reduced.user_map, baseline.user_map);
    EXPECT_EQ(reduced.clamped_capacities, baseline.clamped_capacities);
  }
}

TEST(ParallelDeterminism, SweepBudgetSharesThreadsDeterministically) {
  SweepConfig config;
  config.title = "budget";
  config.solvers = {"greedy", "mincostflow"};
  config.repetitions = 2;
  config.threads = 4;                  // budget: 2 workers × 2 lanes
  config.solver_options.threads = 2;
  std::vector<SweepPoint> points;
  for (const int num_users : {20, 40}) {
    points.push_back({std::to_string(num_users), [num_users](uint64_t seed) {
                        return MakeInstance(8, num_users, 4, seed, 0.25);
                      }});
  }
  const SweepResult parallel = RunSweep(config, points);
  config.threads = 1;
  config.solver_options.threads = 1;
  const SweepResult serial = RunSweep(config, points);
  EXPECT_EQ(parallel.metrics.at("max_sum"), serial.metrics.at("max_sum"));
  EXPECT_EQ(parallel.metrics.at("matched_pairs"),
            serial.metrics.at("matched_pairs"));
}

TEST(ThreadPool, ChunksAreDeterministicAndCoverTheRange) {
  for (const int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    const int64_t n = 1237;
    std::vector<std::atomic<int>> visits(n);
    for (auto& v : visits) v.store(0);
    pool.ParallelFor(0, n, [&](int /*chunk*/, int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) {
        visits[i].fetch_add(1, std::memory_order_relaxed);
      }
    });
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "index " << i << " at " << threads;
    }
    EXPECT_GE(pool.NumChunks(0, n), 1);
    EXPECT_EQ(pool.NumChunks(0, n), pool.NumChunks(0, n));  // pure function
  }
}

TEST(ThreadPool, ParallelMapFoldsInChunkOrder) {
  for (const int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    std::vector<int64_t> order;
    int64_t total = 0;
    ParallelMap<int64_t>(
        pool, 0, 1000,
        [](int64_t begin, int64_t end) {
          int64_t sum = 0;
          for (int64_t i = begin; i < end; ++i) sum += i;
          return sum;
        },
        [&](int64_t partial) {
          order.push_back(partial);
          total += partial;
        });
    EXPECT_EQ(total, 999 * 1000 / 2);
    EXPECT_EQ(static_cast<int>(order.size()), pool.NumChunks(0, 1000));
  }
}

#if !defined(GEACC_NO_STATS)
TEST(PoolStatsAttribution, WorkerCountersCreditedToCallingThread) {
  const Instance instance = MakeInstance(20, 60, 8, 51, 0.25);

  SolverOptions serial_options;
  serial_options.threads = 1;
  const obs::StatsScope serial_scope;
  CreateSolver("greedy", serial_options)->Solve(instance);
  const obs::StatsSnapshot serial_delta = serial_scope.Harvest();

  SolverOptions parallel_options;
  parallel_options.threads = 4;
  const obs::StatsScope parallel_scope;
  CreateSolver("greedy", parallel_options)->Solve(instance);
  const obs::StatsSnapshot parallel_delta = parallel_scope.Harvest();

  // The pool reports its own activity on the caller...
  EXPECT_GT(parallel_delta.counters.at("pool.parallel_fors"), 0);
  EXPECT_GT(parallel_delta.counters.at("pool.chunks"), 0);
  // ...and the solver's deterministic counters match the serial harvest
  // even though some increments happened on worker lanes.
  for (const char* name : {"greedy.heap_pushes", "greedy.heap_pops",
                           "greedy.cursor_skips", "greedy.matches"}) {
    const auto serial_it = serial_delta.counters.find(name);
    const auto parallel_it = parallel_delta.counters.find(name);
    ASSERT_NE(serial_it, serial_delta.counters.end()) << name;
    ASSERT_NE(parallel_it, parallel_delta.counters.end()) << name;
    EXPECT_EQ(parallel_it->second, serial_it->second) << name;
  }
}
#endif  // !GEACC_NO_STATS

}  // namespace
}  // namespace geacc
