file(REMOVE_RECURSE
  "CMakeFiles/instance_stats_test.dir/instance_stats_test.cc.o"
  "CMakeFiles/instance_stats_test.dir/instance_stats_test.cc.o.d"
  "instance_stats_test"
  "instance_stats_test.pdb"
  "instance_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instance_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
