# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for motivation_online_vs_global.
