# Empty dependencies file for fig5_effectiveness.
# This may be replaced when dependencies are built.
