file(REMOVE_RECURSE
  "CMakeFiles/fig4_capacity_u.dir/fig4_capacity_u.cc.o"
  "CMakeFiles/fig4_capacity_u.dir/fig4_capacity_u.cc.o.d"
  "fig4_capacity_u"
  "fig4_capacity_u.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_capacity_u.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
