// MinCostFlow-GEACC (paper Algorithm 1, Section III.A).
//
// Step 1 ignores conflicts and finds the best capacitated matching M_∅ via
// min-cost flow: source → events (capacity c_v, cost 0), event → user
// (capacity 1, cost 1 − sim), users → sink (capacity c_u, cost 0). The
// paper evaluates the min-cost flow at every amount Δ and keeps the best
// matching; with SSPA this collapses to a single incremental run because
//
//   MaxSum(M_Δ) = Δ − cost(Δ),
//
// cost(Δ) is convex in Δ (successive shortest paths have non-decreasing
// unit cost), so MaxSum(M_Δ) is concave and the sweep can stop at the first
// augmenting path whose real cost reaches 1. Step 2 resolves conflicts per
// user with the greedy independent-set rule.
//
// Approximation ratio: 1 / max c_u (Theorem 2). Complexity is dominated by
// Δmax = min{Σc_v, Σc_u} shortest-path computations over a graph with
// O(|V|·|U|) edges (the paper's "quartic" cost); memory is O(|V|·|U|)
// for the residual network.
//
// Thread-safety: Solve() is const and re-entrant; the flow network is
// rebuilt per call. Counters reported: mcf.flow_sweeps, mcf.best_delta,
// mcf.conflict_evictions (+ flow.* from the SSPA engine and resolve.*
// from conflict resolution).
//
// Parallelism (SolverOptions::threads): the Δ-sweep itself is irreducibly
// sequential — the flow at Δ+1 is the flow at Δ plus one augmentation, and
// solving each Δ independently (the paper-literal reading) costs O(Δmax²)
// path searches against the sweep's O(Δmax), so fanning the sweep out can
// only lose. What does fan out are the O(|V|·|U|) phases around it: the
// pair-cost precompute (1 − sim per pair), the matching extraction from
// the residual flow, and per-user conflict resolution. Each uses
// per-chunk partials folded in chunk order (util/thread_pool.h), so the
// arrangement is bit-identical to the serial solve at any thread count.

#ifndef GEACC_ALGO_MIN_COST_FLOW_SOLVER_H_
#define GEACC_ALGO_MIN_COST_FLOW_SOLVER_H_

#include <string>

#include "core/instance.h"
#include "core/solver.h"

namespace geacc {

class ThreadPool;

class MinCostFlowSolver final : public Solver {
 public:
  explicit MinCostFlowSolver(SolverOptions options = {})
      : options_(options) {}

  std::string Name() const override { return "mincostflow"; }
  SolveResult Solve(const Instance& instance) const override;

  // Step 1 only: the conflict-oblivious optimal matching M_∅ (exposed for
  // tests of Lemma 1 and for the CF=∅ optimality property).
  Arrangement SolveWithoutConflicts(const Instance& instance,
                                    SolverStats* stats) const;

 private:
  // Shared implementation: Solve() constructs one pool for both steps;
  // the public SolveWithoutConflicts builds its own.
  Arrangement SolveWithoutConflictsOn(const Instance& instance,
                                      SolverStats* stats,
                                      ThreadPool& pool) const;

  SolverOptions options_;
};

}  // namespace geacc

#endif  // GEACC_ALGO_MIN_COST_FLOW_SOLVER_H_
