// TCP front-end for an ArrangementService (DESIGN.md §11).
//
// ServiceServer listens on 127.0.0.1 (loopback only — exposing an
// arrangement store beyond the host is a deployment decision, not a
// library default) and speaks the svc/wire framing: one accept thread,
// one thread per connection, synchronous request/response per frame.
// That model is deliberately simple — the service underneath is the
// concurrent part (lock-free snapshot reads, single writer), so
// connection threads spend their time in decode/dispatch/encode and
// never block each other.
//
// Protocol discipline: a malformed frame (bad length, version, type, or
// body) gets one kError reply when possible, then the connection is
// closed — a peer that cannot frame correctly cannot be resynchronized.
// Valid requests never close the connection; invalid *arguments* (bad
// ids, unparsable mutation lines) are kError replies on a healthy
// connection. Counters: svc.net.requests, svc.net.protocol_errors.
//
// Thread-safety: Start/Stop from one controlling thread; Stop() (or the
// destructor) shuts down the listener and every live connection, then
// joins all threads. The ArrangementService must outlive the server.

#ifndef GEACC_SVC_SERVER_H_
#define GEACC_SVC_SERVER_H_

#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "svc/service.h"
#include "svc/wire.h"

namespace geacc::svc {

class ServiceServer {
 public:
  // `service` must outlive the server.
  explicit ServiceServer(ArrangementService* service);
  ~ServiceServer();

  ServiceServer(const ServiceServer&) = delete;
  ServiceServer& operator=(const ServiceServer&) = delete;

  // Binds 127.0.0.1:`port` (0 picks an ephemeral port — read it back via
  // port()) and starts accepting. False with a diagnostic on bind/listen
  // failure.
  bool Start(int port, std::string* error = nullptr);

  // The bound port; valid after a successful Start().
  int port() const { return port_; }

  // Stops accepting, tears down live connections, joins every thread.
  // Idempotent.
  void Stop();

 private:
  void AcceptLoop();
  void ConnectionLoop(size_t slot);
  // One request in, one response out. False ⇒ close the connection.
  bool HandleFrame(const std::string& frame_body, int fd);
  WireResponse Dispatch(const WireRequest& request);

  ArrangementService* service_;
  int listen_fd_ = -1;
  int port_ = -1;
  std::thread accept_thread_;

  std::mutex mu_;
  bool stopping_ = false;
  std::vector<int> connection_fds_;  // -1 once its thread finished
  std::vector<std::thread> connection_threads_;
};

}  // namespace geacc::svc

#endif  // GEACC_SVC_SERVER_H_
