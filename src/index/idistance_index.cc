#include "index/idistance_index.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace geacc {

IDistanceIndex::IDistanceIndex(const AttributeMatrix& points,
                               const SimilarityFunction& similarity,
                               int num_pivots)
    : KnnIndex(points.rows()), points_(points), similarity_(similarity) {
  GEACC_CHECK(similarity.IsEuclideanMonotone())
      << "iDistance ordering requires a Euclidean-monotone similarity; got "
      << similarity.Name();
  geometry_ = BuildIDistanceGeometry(points, num_pivots);
  tree_.BulkLoad(geometry_.entries);
  // The sorted key list only feeds the bulk load; drop it so the tree is
  // the single copy (and ByteEstimate stays honest).
  geometry_.entries.clear();
  geometry_.entries.shrink_to_fit();
}

std::vector<Neighbor> IDistanceIndex::Query(const double* query,
                                            int k) const {
  std::vector<Neighbor> result;
  if (k <= 0) return result;
  IDistanceScanCursor<KeyTree> cursor(points_, similarity_, geometry_.pivots,
                                      geometry_.stretch,
                                      geometry_.initial_radius, tree_, query);
  result.reserve(std::min(k, num_points()));
  while (static_cast<int>(result.size()) < k) {
    const auto next = cursor.Next();
    if (!next) break;
    result.push_back(*next);
  }
  return result;
}

std::unique_ptr<NnCursor> IDistanceIndex::CreateCursor(
    const double* query) const {
  return std::make_unique<IDistanceScanCursor<KeyTree>>(
      points_, similarity_, geometry_.pivots, geometry_.stretch,
      geometry_.initial_radius, tree_, query);
}

uint64_t IDistanceIndex::ByteEstimate() const {
  return geometry_.pivots.ByteEstimate() + tree_.ByteEstimate();
}

}  // namespace geacc
