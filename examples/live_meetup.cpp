// A weekend meetup platform that stays arranged while the world changes.
//
// meetup_weekend.cpp computes one global plan for a fixed weekend; this
// example runs the same platform *live*. Registrations arrive Friday
// night, people cancel Saturday morning, a venue double-booking makes two
// events conflict, a headline event moves to a bigger hall, and a pop-up
// workshop is announced Sunday — each edit flows through the incremental
// arranger (src/dyn/), which repairs the standing arrangement locally
// instead of re-solving the whole city after every click.
//
//   ./build/examples/live_meetup [--seed N] [--users N] [--events N]

#include <cstdio>
#include <vector>

#include "algo/solvers.h"
#include "dyn/dynamic_instance.h"
#include "dyn/incremental_arranger.h"
#include "gen/synthetic.h"
#include "util/flags.h"
#include "util/rng.h"

namespace {

// One status line after each burst of activity.
void Report(const char* moment, const geacc::IncrementalArranger& arranger) {
  const geacc::DynamicInstance& live = arranger.instance();
  std::printf("%-34s epoch %4lld  %3d events %5d users  "
              "assignments %5lld  MaxSum %9.1f\n",
              moment, (long long)live.epoch(), live.num_active_events(),
              live.num_active_users(), (long long)arranger.arrangement().size(),
              arranger.max_sum());
  const std::string violation = arranger.Validate();
  GEACC_CHECK(violation.empty()) << violation;
}

std::vector<double> RandomProfile(int dim, double max_attribute,
                                  geacc::Rng& rng) {
  std::vector<double> attrs(dim);
  for (double& a : attrs) a = rng.UniformReal(0.0, max_attribute);
  return attrs;
}

}  // namespace

int main(int argc, char** argv) {
  int64_t seed = 2026;
  int events = 40, users = 400;
  geacc::FlagSet flags;
  flags.AddInt("seed", &seed, "random seed");
  flags.AddInt("events", &events, "events on the weekend program");
  flags.AddInt("users", &users, "users registered before Friday");
  flags.Parse(argc, argv);

  // Friday 18:00 — the weekend program goes live with the users who
  // registered during the week, arranged once from scratch.
  geacc::SyntheticConfig synth;
  synth.num_events = events;
  synth.num_users = users;
  synth.dim = 8;
  synth.conflict_density = 0.1;
  synth.seed = static_cast<uint64_t>(seed);
  geacc::DynamicInstance live(geacc::GenerateSynthetic(synth));

  geacc::IncrementalArranger arranger(&live);
  arranger.FullResolve();
  Report("Fri 18:00  program published", arranger);

  // Friday evening — a registration wave: 60 new users sign up and are
  // placed into whatever seats suit them, one repair per arrival.
  geacc::Rng rng(static_cast<uint64_t>(seed) ^ 0x11fe);
  for (int i = 0; i < 60; ++i) {
    arranger.Apply(geacc::Mutation::AddUser(
        RandomProfile(live.dim(), synth.max_attribute, rng),
        static_cast<int>(rng.UniformInt(1, 4))));
  }
  Report("Fri 23:00  +60 registrations", arranger);

  // Saturday morning — 25 cancellations; their seats are refilled from
  // the waiting similarity cursors.
  for (int i = 0; i < 25; ++i) {
    geacc::UserId u;
    do {
      u = static_cast<geacc::UserId>(
          rng.UniformInt(0, live.user_slots() - 1));
    } while (!live.user_active(u));
    arranger.Apply(geacc::Mutation::RemoveUser(u));
  }
  Report("Sat 09:00  25 cancellations", arranger);

  // Saturday noon — the convention hall double-books: events 0 and 1 now
  // clash, so nobody can attend both. Attendees holding both lose the
  // less interesting of the two and get reseated elsewhere.
  arranger.Apply(geacc::Mutation::AddConflict(0, 1));
  Report("Sat 12:00  venue double-booking", arranger);

  // Saturday evening — the headline event moves to a bigger hall while a
  // flooded basement halves another's room.
  const int big = live.event_capacity(2) + 30;
  arranger.Apply(geacc::Mutation::SetEventCapacity(2, big));
  const int small = (live.event_capacity(3) + 1) / 2;
  arranger.Apply(geacc::Mutation::SetEventCapacity(3, small));
  Report("Sat 19:00  rooms reshuffled", arranger);

  // Sunday morning — a pop-up workshop is announced and event 4 is
  // cancelled outright; its attendees scatter to their next-best picks.
  arranger.Apply(geacc::Mutation::AddEvent(
      RandomProfile(live.dim(), synth.max_attribute, rng), 25));
  arranger.Apply(geacc::Mutation::RemoveEvent(4));
  Report("Sun 10:00  pop-up + cancellation", arranger);

  // Sunday night — how much did staying incremental cost? Solve the final
  // state from scratch and compare.
  const geacc::Instance final_state = live.Snapshot();
  const double oracle = geacc::CreateSolver("greedy")
                            ->Solve(final_state)
                            .arrangement.MaxSum(final_state);
  const geacc::RepairStats& stats = arranger.stats();
  std::printf("\nweekend totals: %lld mutations, %lld seat changes, "
              "%.1f ms repairing, %lld full re-solves\n",
              (long long)stats.mutations,
              (long long)(stats.assignments_added +
                          stats.assignments_removed),
              stats.total_repair_seconds * 1e3,
              (long long)stats.full_resolves);
  std::printf("maintained MaxSum %.1f vs from-scratch %.1f (%.1f%%)\n",
              arranger.max_sum(), oracle,
              oracle > 0 ? 100.0 * arranger.max_sum() / oracle : 100.0);
  return 0;
}
