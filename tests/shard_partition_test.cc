// Tests for the hashed partition map (shard/partition.h): the placement
// function is a pure, stable function of the global id, edge ownership is
// the lowest endpoint home, and ShardMap replays shard-local slot
// assignment deterministically (DESIGN.md §16).

#include "shard/partition.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace geacc::shard {
namespace {

TEST(Partition, Mix64MatchesPublishedSplitMix64Vector) {
  // splitmix64 with seed 0 emits 0xE220A8397B1DCDAF first — the standard
  // reference vector. The partition map is a restart-stable contract, so
  // the constant is pinned here: any "equivalent" hash swap is a breaking
  // change to every deployed topology.
  EXPECT_EQ(Mix64(0), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(Mix64(0), Mix64(0));
  EXPECT_NE(Mix64(1), Mix64(2));
}

TEST(Partition, HomeShardIsDeterministicAndInRange) {
  for (int num_shards = 1; num_shards <= 8; ++num_shards) {
    for (int32_t id = 0; id < 500; ++id) {
      const int home = HomeShard(id, num_shards);
      EXPECT_GE(home, 0);
      EXPECT_LT(home, num_shards);
      EXPECT_EQ(home, HomeShard(id, num_shards));
    }
  }
  for (int32_t id = 0; id < 100; ++id) {
    EXPECT_EQ(HomeShard(id, 1), 0);
  }
}

TEST(Partition, HomeShardSpreadsIdsAcrossShards) {
  constexpr int kShards = 4;
  constexpr int kIds = 10000;
  std::vector<int> counts(kShards, 0);
  for (int32_t id = 0; id < kIds; ++id) {
    ++counts[HomeShard(id, kShards)];
  }
  // Expected kIds / kShards = 2500 per shard; a well-mixed hash stays
  // well inside [15%, 35%].
  for (int shard = 0; shard < kShards; ++shard) {
    EXPECT_GT(counts[shard], kIds * 15 / 100) << "shard " << shard;
    EXPECT_LT(counts[shard], kIds * 35 / 100) << "shard " << shard;
  }
}

TEST(Partition, EdgeOwnerIsLowestEndpointHomeAndSymmetric) {
  for (int num_shards = 2; num_shards <= 5; ++num_shards) {
    for (EventId a = 0; a < 20; ++a) {
      for (EventId b = 0; b < 20; ++b) {
        const int home_a = HomeShard(a, num_shards);
        const int home_b = HomeShard(b, num_shards);
        const int owner = EdgeOwnerShard(a, b, num_shards);
        EXPECT_EQ(owner, home_a < home_b ? home_a : home_b);
        EXPECT_EQ(owner, EdgeOwnerShard(b, a, num_shards));
        EXPECT_EQ(IsCrossShardEdge(a, b, num_shards), home_a != home_b);
        EXPECT_EQ(IsCrossShardEdge(a, b, num_shards),
                  IsCrossShardEdge(b, a, num_shards));
        if (!IsCrossShardEdge(a, b, num_shards)) {
          EXPECT_EQ(owner, home_a);
        }
      }
    }
  }
}

TEST(Partition, ShardMapRoundTripsPlacements) {
  constexpr int kShards = 3;
  constexpr int32_t kUsers = 200;
  ShardMap map(kShards);
  EXPECT_EQ(map.num_shards(), kShards);
  EXPECT_EQ(map.global_users(), 0);

  for (int32_t global = 0; global < kUsers; ++global) {
    const ShardMap::Placement placement = map.PlaceUser();
    EXPECT_EQ(placement.shard, HomeShard(global, kShards));
    EXPECT_EQ(map.global_users(), global + 1);
    EXPECT_EQ(map.UserHome(global), placement);
    EXPECT_EQ(map.ToGlobalUser(placement.shard, placement.local), global);
  }

  // Local ids are the shard's own slot sequence: 0..count-1, mapping back
  // to strictly increasing global ids (the coordinator replays the
  // shard's DynamicInstance slot assignment).
  int32_t total = 0;
  for (int shard = 0; shard < kShards; ++shard) {
    const int32_t count = map.LocalUserCount(shard);
    total += count;
    int32_t previous_global = -1;
    for (int32_t local = 0; local < count; ++local) {
      const int32_t global = map.ToGlobalUser(shard, local);
      ASSERT_GE(global, 0);
      EXPECT_GT(global, previous_global);
      previous_global = global;
      EXPECT_EQ(map.UserHome(global).shard, shard);
      EXPECT_EQ(map.UserHome(global).local, local);
    }
    EXPECT_EQ(map.ToGlobalUser(shard, count), -1);
    EXPECT_EQ(map.ToGlobalUser(shard, -1), -1);
  }
  EXPECT_EQ(total, kUsers);
}

TEST(Partition, ShardMapIsDeterministicAcrossIncarnations) {
  // Two maps fed the same placement sequence agree exactly — a restarted
  // coordinator recomputes routing with no directory service.
  ShardMap first(5);
  ShardMap second(5);
  for (int32_t i = 0; i < 300; ++i) {
    EXPECT_EQ(first.PlaceUser(), second.PlaceUser());
  }
}

}  // namespace
}  // namespace geacc::shard
