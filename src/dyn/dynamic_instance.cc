#include "dyn/dynamic_instance.h"

#include <utility>

#include "util/check.h"
#include "util/string_util.h"

namespace geacc {

DynamicInstance::DynamicInstance(
    int dim, std::unique_ptr<SimilarityFunction> similarity)
    : dim_(dim),
      similarity_(std::move(similarity)),
      event_attributes_(0, dim),
      user_attributes_(0, dim),
      conflicts_(0) {
  GEACC_CHECK_GE(dim, 0);
  GEACC_CHECK(similarity_ != nullptr);
}

DynamicInstance::DynamicInstance(const Instance& instance)
    : DynamicInstance(instance.dim(), instance.similarity().Clone()) {
  std::vector<double> row(instance.dim());
  for (EventId v = 0; v < instance.num_events(); ++v) {
    const double* source = instance.event_attributes().Row(v);
    row.assign(source, source + instance.dim());
    event_attributes_.AppendRow(row);
    event_capacities_.push_back(instance.event_capacity(v));
    event_active_.push_back(true);
  }
  num_active_events_ = instance.num_events();
  conflicts_.Resize(instance.num_events());
  for (EventId v = 0; v < instance.num_events(); ++v) {
    for (const EventId w : instance.conflicts().ConflictsOf(v)) {
      if (w > v) conflicts_.AddConflict(v, w);
    }
  }
  for (UserId u = 0; u < instance.num_users(); ++u) {
    const double* source = instance.user_attributes().Row(u);
    row.assign(source, source + instance.dim());
    user_attributes_.AppendRow(row);
    user_capacities_.push_back(instance.user_capacity(u));
    user_active_.push_back(true);
  }
  num_active_users_ = instance.num_users();
  event_time_slots_.assign(instance.num_events(), kInvalidSlot);
  user_availability_.assign(instance.num_users(), kFullSlotAvailability);
}

UserId DynamicInstance::AddUser(const std::vector<double>& attributes,
                                int capacity) {
  GEACC_CHECK_EQ(static_cast<int>(attributes.size()), dim_);
  GEACC_CHECK_GE(capacity, 1);
  user_attributes_.AppendRow(attributes);
  user_capacities_.push_back(capacity);
  user_active_.push_back(true);
  user_availability_.push_back(kFullSlotAvailability);
  ++num_active_users_;
  ++epoch_;
  return static_cast<UserId>(user_slots() - 1);
}

EventId DynamicInstance::AddEvent(const std::vector<double>& attributes,
                                  int capacity) {
  GEACC_CHECK_EQ(static_cast<int>(attributes.size()), dim_);
  GEACC_CHECK_GE(capacity, 1);
  event_attributes_.AppendRow(attributes);
  event_capacities_.push_back(capacity);
  event_active_.push_back(true);
  event_time_slots_.push_back(kInvalidSlot);
  conflicts_.Resize(event_slots());
  ++num_active_events_;
  ++epoch_;
  return static_cast<EventId>(event_slots() - 1);
}

void DynamicInstance::RemoveUser(UserId u) {
  GEACC_CHECK(u >= 0 && u < user_slots()) << "user id out of range: " << u;
  GEACC_CHECK(user_active_[u]) << "user " << u << " already removed";
  user_active_[u] = false;
  --num_active_users_;
  ++epoch_;
}

void DynamicInstance::RemoveEvent(EventId v) {
  GEACC_CHECK(v >= 0 && v < event_slots()) << "event id out of range: " << v;
  GEACC_CHECK(event_active_[v]) << "event " << v << " already removed";
  event_active_[v] = false;
  conflicts_.RemoveConflictsOf(v);
  --num_active_events_;
  ++epoch_;
}

void DynamicInstance::AddConflict(EventId a, EventId b) {
  GEACC_CHECK(a >= 0 && a < event_slots()) << "event id out of range: " << a;
  GEACC_CHECK(b >= 0 && b < event_slots()) << "event id out of range: " << b;
  GEACC_CHECK(event_active_[a]) << "event " << a << " is removed";
  GEACC_CHECK(event_active_[b]) << "event " << b << " is removed";
  conflicts_.AddConflict(a, b);
  ++epoch_;
}

void DynamicInstance::SetEventCapacity(EventId v, int capacity) {
  GEACC_CHECK(v >= 0 && v < event_slots()) << "event id out of range: " << v;
  GEACC_CHECK(event_active_[v]) << "event " << v << " is removed";
  GEACC_CHECK_GE(capacity, 1);
  event_capacities_[v] = capacity;
  ++epoch_;
}

void DynamicInstance::SetUserCapacity(UserId u, int capacity) {
  GEACC_CHECK(u >= 0 && u < user_slots()) << "user id out of range: " << u;
  GEACC_CHECK(user_active_[u]) << "user " << u << " is removed";
  GEACC_CHECK_GE(capacity, 1);
  user_capacities_[u] = capacity;
  ++epoch_;
}

void DynamicInstance::AttachSlotTable(std::vector<TimeWindow> windows,
                                      double speed_kmph) {
  GEACC_CHECK_LE(static_cast<int>(windows.size()), kMaxTimeSlots);
  for (const TimeWindow& window : windows) {
    GEACC_CHECK_LE(window.start_hours, window.end_hours)
        << "slot window ends before it starts";
  }
  for (const SlotId slot : event_time_slots_) {
    GEACC_CHECK(slot < static_cast<SlotId>(windows.size()))
        << "event already scheduled past the new table";
  }
  slot_windows_ = std::move(windows);
  slot_speed_kmph_ = speed_kmph;
}

void DynamicInstance::SetEventSlot(EventId v, SlotId slot) {
  GEACC_CHECK(v >= 0 && v < event_slots()) << "event id out of range: " << v;
  GEACC_CHECK(event_active_[v]) << "event " << v << " is removed";
  GEACC_CHECK(slot >= 0 && slot < num_time_slots())
      << "slot id out of range: " << slot;
  event_time_slots_[v] = slot;
  has_slot_constraints_ = true;
  if (!slot_windows_.empty()) {
    // With a table attached the moved event's conflict edges are a pure
    // function of the slotting: drop them all (including any static edges
    // it started with) and re-derive against every other scheduled event.
    conflicts_.RemoveConflictsOf(v);
    for (EventId w = 0; w < event_slots(); ++w) {
      if (w == v || !event_active_[w]) continue;
      const SlotId other = event_time_slots_[w];
      if (other < 0) continue;
      if (WindowsConflict(slot_windows_[slot], slot_windows_[other],
                          slot_speed_kmph_)) {
        conflicts_.AddConflict(v, w);
      }
    }
  }
  ++epoch_;
}

void DynamicInstance::SetUserAvailability(UserId u, int64_t mask) {
  GEACC_CHECK(u >= 0 && u < user_slots()) << "user id out of range: " << u;
  GEACC_CHECK(user_active_[u]) << "user " << u << " is removed";
  GEACC_CHECK(mask >= 0 && mask <= kFullSlotAvailability)
      << "availability mask out of range: " << mask;
  user_availability_[u] = mask;
  has_slot_constraints_ = true;
  ++epoch_;
}

int32_t DynamicInstance::Apply(const Mutation& mutation) {
  switch (mutation.kind) {
    case Mutation::Kind::kAddUser:
      return AddUser(mutation.attributes, mutation.capacity);
    case Mutation::Kind::kAddEvent:
      return AddEvent(mutation.attributes, mutation.capacity);
    case Mutation::Kind::kRemoveUser:
      RemoveUser(mutation.id);
      return -1;
    case Mutation::Kind::kRemoveEvent:
      RemoveEvent(mutation.id);
      return -1;
    case Mutation::Kind::kAddConflict:
      AddConflict(mutation.id, mutation.other);
      return -1;
    case Mutation::Kind::kSetEventCapacity:
      SetEventCapacity(mutation.id, mutation.capacity);
      return -1;
    case Mutation::Kind::kSetUserCapacity:
      SetUserCapacity(mutation.id, mutation.capacity);
      return -1;
    case Mutation::Kind::kSetEventSlot:
      SetEventSlot(mutation.id, mutation.other);
      return -1;
    case Mutation::Kind::kSetUserAvailability:
      SetUserAvailability(mutation.id, mutation.mask);
      return -1;
  }
  GEACC_CHECK(false) << "unknown mutation kind";
  return -1;
}

Instance DynamicInstance::Snapshot(SnapshotMap* map) const {
  SnapshotMap local;
  SnapshotMap& m = map != nullptr ? *map : local;
  m.dense_to_event.clear();
  m.dense_to_user.clear();
  m.event_to_dense.assign(event_slots(), -1);
  m.user_to_dense.assign(user_slots(), -1);

  AttributeMatrix events(num_active_events_, dim_);
  std::vector<int> event_capacities;
  event_capacities.reserve(num_active_events_);
  for (EventId v = 0; v < event_slots(); ++v) {
    if (!event_active_[v]) continue;
    const int dense = static_cast<int>(m.dense_to_event.size());
    m.event_to_dense[v] = dense;
    m.dense_to_event.push_back(v);
    const double* source = event_attributes_.Row(v);
    double* target = events.MutableRow(dense);
    for (int j = 0; j < dim_; ++j) target[j] = source[j];
    event_capacities.push_back(event_capacities_[v]);
  }

  AttributeMatrix users(num_active_users_, dim_);
  std::vector<int> user_capacities;
  user_capacities.reserve(num_active_users_);
  for (UserId u = 0; u < user_slots(); ++u) {
    if (!user_active_[u]) continue;
    const int dense = static_cast<int>(m.dense_to_user.size());
    m.user_to_dense[u] = dense;
    m.dense_to_user.push_back(u);
    const double* source = user_attributes_.Row(u);
    double* target = users.MutableRow(dense);
    for (int j = 0; j < dim_; ++j) target[j] = source[j];
    user_capacities.push_back(user_capacities_[u]);
  }

  ConflictGraph conflicts(num_active_events_);
  for (EventId v = 0; v < event_slots(); ++v) {
    if (!event_active_[v]) continue;
    for (const EventId w : conflicts_.ConflictsOf(v)) {
      if (w > v && event_active_[w]) {
        conflicts.AddConflict(m.event_to_dense[v], m.event_to_dense[w]);
      }
    }
  }

  return Instance(std::move(events), std::move(event_capacities),
                  std::move(users), std::move(user_capacities),
                  std::move(conflicts), similarity_->Clone());
}

DynamicInstance::SlotState DynamicInstance::ExportSlotState() const {
  SlotState state;
  state.dim = dim_;
  state.epoch = epoch_;
  state.event_attributes = event_attributes_;
  state.user_attributes = user_attributes_;
  state.event_capacities = event_capacities_;
  state.user_capacities = user_capacities_;
  state.event_active.assign(event_active_.begin(), event_active_.end());
  state.user_active.assign(user_active_.begin(), user_active_.end());
  for (EventId v = 0; v < event_slots(); ++v) {
    for (const EventId w : conflicts_.ConflictsOf(v)) {
      if (w > v) state.conflicts.emplace_back(v, w);
    }
  }
  if (has_slot_constraints_) {
    state.event_time_slots = event_time_slots_;
    state.user_availability = user_availability_;
  }
  return state;
}

std::optional<DynamicInstance> DynamicInstance::FromSlotState(
    SlotState state, std::unique_ptr<SimilarityFunction> similarity,
    std::string* error) {
  const auto fail = [error](std::string message) {
    if (error != nullptr) *error = std::move(message);
    return std::nullopt;
  };
  if (state.dim < 0 || state.epoch < 0) return fail("negative dim or epoch");
  const int events = state.event_attributes.rows();
  const int users = state.user_attributes.rows();
  if (state.event_attributes.dim() != state.dim ||
      state.user_attributes.dim() != state.dim) {
    return fail("attribute matrices disagree with dim");
  }
  if (static_cast<int>(state.event_capacities.size()) != events ||
      static_cast<int>(state.event_active.size()) != events ||
      static_cast<int>(state.user_capacities.size()) != users ||
      static_cast<int>(state.user_active.size()) != users) {
    return fail("per-slot vectors disagree with attribute row counts");
  }
  for (int i = 0; i < events; ++i) {
    if (state.event_capacities[i] < 1) return fail("event capacity < 1");
  }
  for (int i = 0; i < users; ++i) {
    if (state.user_capacities[i] < 1) return fail("user capacity < 1");
  }

  DynamicInstance instance(state.dim, std::move(similarity));
  instance.event_attributes_ = std::move(state.event_attributes);
  instance.user_attributes_ = std::move(state.user_attributes);
  instance.event_capacities_ = std::move(state.event_capacities);
  instance.user_capacities_ = std::move(state.user_capacities);
  instance.event_active_.assign(state.event_active.begin(),
                                state.event_active.end());
  instance.user_active_.assign(state.user_active.begin(),
                               state.user_active.end());
  instance.num_active_events_ = 0;
  for (int i = 0; i < events; ++i) {
    if (instance.event_active_[i]) ++instance.num_active_events_;
  }
  instance.num_active_users_ = 0;
  for (int i = 0; i < users; ++i) {
    if (instance.user_active_[i]) ++instance.num_active_users_;
  }
  instance.conflicts_.Resize(events);
  for (const auto& [a, b] : state.conflicts) {
    if (a < 0 || b <= a || b >= events) {
      return fail("conflict pair out of range");
    }
    if (!instance.event_active_[a] || !instance.event_active_[b]) {
      return fail("conflict pair references a tombstoned event");
    }
    instance.conflicts_.AddConflict(a, b);
  }
  // Time-slot annotations: empty = defaults (pre-slot state), otherwise
  // both vectors must match the slot space exactly.
  instance.event_time_slots_.assign(events, kInvalidSlot);
  instance.user_availability_.assign(users, kFullSlotAvailability);
  if (!state.event_time_slots.empty() || !state.user_availability.empty()) {
    if (static_cast<int>(state.event_time_slots.size()) != events ||
        static_cast<int>(state.user_availability.size()) != users) {
      return fail("time-slot vectors disagree with entity slot counts");
    }
    for (const SlotId slot : state.event_time_slots) {
      if (slot < kInvalidSlot || slot >= kMaxTimeSlots) {
        return fail("event time slot out of range");
      }
    }
    for (const int64_t mask : state.user_availability) {
      if (mask < 0 || mask > kFullSlotAvailability) {
        return fail("user availability mask out of range");
      }
    }
    instance.event_time_slots_ = std::move(state.event_time_slots);
    instance.user_availability_ = std::move(state.user_availability);
    instance.has_slot_constraints_ = true;
  }
  instance.epoch_ = state.epoch;
  return instance;
}

std::string DynamicInstance::DebugString() const {
  return StrFormat(
      "DynamicInstance(epoch=%lld, |V|=%d/%d, |U|=%d/%d, d=%d, sim=%s, "
      "|CF|=%lld)",
      (long long)epoch_, num_active_events_, event_slots(),
      num_active_users_, user_slots(), dim_, similarity_->Name().c_str(),
      (long long)conflicts_.num_conflict_pairs());
}

}  // namespace geacc
