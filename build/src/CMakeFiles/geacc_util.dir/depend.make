# Empty dependencies file for geacc_util.
# This may be replaced when dependencies are built.
