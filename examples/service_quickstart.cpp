// Service quickstart: embed the arrangement service in-process.
//
// Spins up an ArrangementService over a synthetic instance, reads through
// the InProcessClient, streams a burst of mutations with read-your-writes
// (WaitForTicket), and fans a top-k recommendation sweep across the
// thread pool — all against lock-free snapshots while the writer batches
// in the background. The TCP flavor of the same API is `geacc_serve` +
// `SocketClient` (see bench/loadgen.cc).
//
//   ./build/examples/service_quickstart

#include <cstdio>
#include <vector>

#include "gen/synthetic.h"
#include "svc/client.h"
#include "svc/service.h"

int main() {
  using geacc::svc::ArrangementService;

  // A small EBSN: 40 events, 800 users, 8-d attribute space.
  geacc::SyntheticConfig config;
  config.num_events = 40;
  config.num_users = 800;
  config.dim = 8;
  config.conflict_density = 0.2;
  config.seed = 42;

  geacc::svc::ServiceOptions options;
  options.batch_size = 32;  // one snapshot per ≤32 applied mutations
  ArrangementService service(geacc::GenerateSynthetic(config), options);
  geacc::svc::InProcessClient client(&service);

  geacc::svc::ServiceStatsView stats;
  client.GetStats(&stats);
  std::printf("serving |V|=%d |U|=%d  pairs=%lld  MaxSum=%.2f\n",
              stats.active_events, stats.active_users,
              static_cast<long long>(stats.pairs), stats.max_sum);

  // Reads are one atomic snapshot load — no locks, any thread.
  std::vector<geacc::EventId> events;
  client.GetAssignments(/*user=*/7, &events);
  std::printf("user 7 attends %zu events:", events.size());
  for (const geacc::EventId v : events) std::printf(" v%d", v);
  std::printf("\n");

  // Mutations are asynchronous: Submit returns a ticket, WaitForTicket
  // blocks until the batch holding it is applied *and* published.
  geacc::svc::SubmitResult last{};
  for (int i = 0; i < 100; ++i) {
    last = service.Submit(
        geacc::Mutation::SetUserCapacity(i % 800, 1 + i % 3));
  }
  service.WaitForTicket(last.ticket);
  client.GetStats(&stats);
  std::printf("after 100 mutations: epoch=%lld MaxSum=%.2f\n",
              static_cast<long long>(stats.epoch), stats.max_sum);

  // Top-k recommendations for a cohort, fanned over 4 pool lanes against
  // one frozen snapshot (deterministic at any thread count).
  const auto snapshot = service.snapshot();
  std::vector<geacc::UserId> cohort;
  for (geacc::UserId u = 0; u < 8; ++u) cohort.push_back(u * 100);
  const auto recs = snapshot->TopKEventsBatch(cohort, /*k=*/3, /*threads=*/4);
  for (size_t i = 0; i < cohort.size(); ++i) {
    std::printf("user %-4d top-3:", cohort[i]);
    for (const auto& [event, similarity] : recs[i]) {
      std::printf(" v%d(%.3f)", event, similarity);
    }
    std::printf("\n");
  }

  service.Stop();
  return 0;
}
