// Hashed partitioning for the sharded arrangement service (DESIGN.md §16).
//
// Users are hash-partitioned: a user's home shard is splitmix64(global id)
// mod N, so placement is a pure function of the id — any coordinator
// incarnation (or a test) recomputes the same routing with no directory
// service. Events and the conflict graph are replicated to every shard
// (the event table is small next to the user table in the paper's EBSN
// setting), but each event still has a notional home from the same hash;
// a conflict edge {a, b} is owned by the *lowest* home shard among its
// endpoints, and a cross-shard edge (endpoint homes differ) that rejects
// a candidate in the repair pass is charged to that owner in the
// coordinator's cross_edge_rejects counter.
//
// ShardMap is the coordinator's id bookkeeping. Global user ids are the
// coordinator's own slot ids — identical to the ids a single-node
// deployment fed the same mutation sequence would assign, which is what
// makes the sharded-vs-single-node differential bit-exact. Local ids are
// the owning shard's slot ids: because the coordinator is the only writer
// and DynamicInstance hands out monotonically increasing, never-reused
// slots, the i-th user placed on a shard gets local id i — the map
// mirrors that deterministically instead of asking the shard.

#ifndef GEACC_SHARD_PARTITION_H_
#define GEACC_SHARD_PARTITION_H_

#include <cstdint>
#include <vector>

#include "core/types.h"

namespace geacc::shard {

// SplitMix64 finalizer — cheap, well mixed, and stable across platforms
// and compilers (the partition map is part of the contract between
// coordinator restarts, so it must never depend on std::hash).
uint64_t Mix64(uint64_t x);

// Home shard of a global entity id. `num_shards` must be >= 1 and `id`
// non-negative.
int HomeShard(int32_t id, int num_shards);

// Owner of conflict edge {a, b}: the lowest home shard among endpoints.
int EdgeOwnerShard(EventId a, EventId b, int num_shards);

// Whether edge {a, b} spans shards (its endpoints' homes differ).
bool IsCrossShardEdge(EventId a, EventId b, int num_shards);

class ShardMap {
 public:
  explicit ShardMap(int num_shards);

  int num_shards() const { return num_shards_; }

  // Users placed so far == the next global user id.
  int32_t global_users() const {
    return static_cast<int32_t>(user_home_.size());
  }

  struct Placement {
    int shard = -1;
    int32_t local = -1;

    bool operator==(const Placement&) const = default;
  };

  // Registers the next global user id (== global_users()) on its home
  // shard and returns the placement. Must be called in global id order —
  // the whole point is replaying the shard's own slot assignment.
  Placement PlaceUser();

  // Placement of an existing global user id (in [0, global_users())).
  Placement UserHome(int32_t global) const;

  // Global id of shard-local user `local` on `shard`; -1 when no such
  // user was placed.
  int32_t ToGlobalUser(int shard, int32_t local) const;

  // Users placed on `shard` so far — by construction, exactly the shard's
  // user slot count (tombstones included).
  int32_t LocalUserCount(int shard) const;

 private:
  int num_shards_;
  std::vector<Placement> user_home_;                   // by global id
  std::vector<std::vector<int32_t>> local_to_global_;  // [shard][local]
};

}  // namespace geacc::shard

#endif  // GEACC_SHARD_PARTITION_H_
