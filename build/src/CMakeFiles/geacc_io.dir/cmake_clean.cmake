file(REMOVE_RECURSE
  "CMakeFiles/geacc_io.dir/io/instance_io.cc.o"
  "CMakeFiles/geacc_io.dir/io/instance_io.cc.o.d"
  "CMakeFiles/geacc_io.dir/io/tag_import.cc.o"
  "CMakeFiles/geacc_io.dir/io/tag_import.cc.o.d"
  "libgeacc_io.a"
  "libgeacc_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geacc_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
