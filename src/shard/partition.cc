#include "shard/partition.h"

#include "util/check.h"

namespace geacc::shard {

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

int HomeShard(int32_t id, int num_shards) {
  GEACC_DCHECK(id >= 0);
  GEACC_DCHECK(num_shards >= 1);
  return static_cast<int>(Mix64(static_cast<uint64_t>(id)) %
                          static_cast<uint64_t>(num_shards));
}

int EdgeOwnerShard(EventId a, EventId b, int num_shards) {
  const int home_a = HomeShard(a, num_shards);
  const int home_b = HomeShard(b, num_shards);
  return home_a < home_b ? home_a : home_b;
}

bool IsCrossShardEdge(EventId a, EventId b, int num_shards) {
  return HomeShard(a, num_shards) != HomeShard(b, num_shards);
}

ShardMap::ShardMap(int num_shards)
    : num_shards_(num_shards), local_to_global_(num_shards) {
  GEACC_CHECK(num_shards >= 1);
}

ShardMap::Placement ShardMap::PlaceUser() {
  const int32_t global = global_users();
  Placement placement;
  placement.shard = HomeShard(global, num_shards_);
  placement.local =
      static_cast<int32_t>(local_to_global_[placement.shard].size());
  local_to_global_[placement.shard].push_back(global);
  user_home_.push_back(placement);
  return placement;
}

ShardMap::Placement ShardMap::UserHome(int32_t global) const {
  GEACC_CHECK(global >= 0 && global < global_users());
  return user_home_[global];
}

int32_t ShardMap::ToGlobalUser(int shard, int32_t local) const {
  GEACC_CHECK(shard >= 0 && shard < num_shards_);
  if (local < 0 ||
      local >= static_cast<int32_t>(local_to_global_[shard].size())) {
    return -1;
  }
  return local_to_global_[shard][local];
}

int32_t ShardMap::LocalUserCount(int shard) const {
  GEACC_CHECK(shard >= 0 && shard < num_shards_);
  return static_cast<int32_t>(local_to_global_[shard].size());
}

}  // namespace geacc::shard
