// Minimal leveled logger used by solvers and the experiment harness.
//
// Usage:
//   GEACC_LOG(INFO) << "solved instance in " << seconds << "s";
//
// The global level defaults to WARNING so library consumers see nothing
// unless they opt in via SetLogLevel (the benches set INFO).

#ifndef GEACC_UTIL_LOGGING_H_
#define GEACC_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace geacc {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

// Sets the minimum level that is emitted to stderr.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_log {

// Collects one log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_log
}  // namespace geacc

#define GEACC_LOG_DEBUG ::geacc::LogLevel::kDebug
#define GEACC_LOG_INFO ::geacc::LogLevel::kInfo
#define GEACC_LOG_WARNING ::geacc::LogLevel::kWarning
#define GEACC_LOG_ERROR ::geacc::LogLevel::kError

#define GEACC_LOG(severity) \
  ::geacc::internal_log::LogMessage(GEACC_LOG_##severity, __FILE__, __LINE__)

#endif  // GEACC_UTIL_LOGGING_H_
