#include "index/knn_index.h"

#include "index/idistance_index.h"
#include "index/idistance_paged.h"
#include "index/kd_tree_index.h"
#include "index/linear_scan_index.h"
#include "index/va_file_index.h"
#include "util/logging.h"

namespace geacc {
namespace {

// Distance-ordered indexes need a Euclidean-monotone similarity; warn and
// degrade to the order-agnostic linear scan otherwise.
bool RequireMonotone(const std::string& name,
                     const SimilarityFunction& similarity) {
  if (similarity.IsEuclideanMonotone()) return true;
  GEACC_LOG(WARNING) << name << " index requested with non-metric "
                     << "similarity '" << similarity.Name()
                     << "'; falling back to linear scan";
  return false;
}

}  // namespace

std::unique_ptr<KnnIndex> MakeIndex(const std::string& name,
                                    const AttributeMatrix& points,
                                    const SimilarityFunction& similarity) {
  if (name == "kdtree" && RequireMonotone(name, similarity)) {
    return std::make_unique<KdTreeIndex>(points, similarity);
  }
  if (name == "vafile" && RequireMonotone(name, similarity)) {
    return std::make_unique<VaFileIndex>(points, similarity);
  }
  if (name == "idistance" && RequireMonotone(name, similarity)) {
    return std::make_unique<IDistanceIndex>(points, similarity);
  }
  if (name == "idistance-paged") {
    return MakeIndex(name, points, similarity, StorageOptions());
  }
  if (name == "linear" || name == "kdtree" || name == "vafile" ||
      name == "idistance") {
    return std::make_unique<LinearScanIndex>(points, similarity);
  }
  return nullptr;
}

}  // namespace geacc
