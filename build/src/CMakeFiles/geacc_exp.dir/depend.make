# Empty dependencies file for geacc_exp.
# This may be replaced when dependencies are built.
