// Arrangement quality metrics beyond MaxSum.
//
// The paper's introduction motivates GEACC with two-sided satisfaction:
// events want full rosters, users want interesting (and many) events.
// MaxSum is the optimization objective; these diagnostics quantify how an
// arrangement distributes that value — seat utilization on the event side,
// coverage and fairness (Jain's index) on the user side. Used by the
// example applications and the real-dataset bench.
//
// For the dynamic engine (src/dyn/) this module adds churn/stability
// diagnostics: repair-latency percentiles, reassignments per mutation, and
// the maintained-vs-oracle MaxSum ratio — the axes bench/replay_trace
// reports over a mutation trace.

#ifndef GEACC_EXP_METRICS_H_
#define GEACC_EXP_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/arrangement.h"
#include "core/instance.h"

namespace geacc {

struct ArrangementMetrics {
  double max_sum = 0.0;
  int64_t matched_pairs = 0;

  // Event side.
  double seat_utilization = 0.0;    // Σ loads / Σ c_v
  double events_with_attendees = 0.0;  // fraction of events with ≥1 user
  double mean_event_fill = 0.0;     // mean load_v / c_v

  // User side.
  double user_coverage = 0.0;       // fraction of users with ≥1 event
  double mean_user_load = 0.0;      // mean events per user
  double mean_matched_similarity = 0.0;  // MaxSum / matched pairs

  // Jain's fairness index over per-user attained interest
  // (Σx)² / (n·Σx²) ∈ [1/n, 1]; 1 = perfectly even. 0 when no user is
  // matched.
  double jain_fairness = 0.0;

  std::string DebugString() const;
};

// Computes all metrics; `arrangement` must be sized for `instance`.
ArrangementMetrics ComputeMetrics(const Instance& instance,
                                  const Arrangement& arrangement);

// Collects latency samples and answers percentile queries (nearest-rank).
// Samples are kept verbatim, so memory is O(count) — sized for traces of
// millions of mutations, not for unbounded serving.
class LatencyRecorder {
 public:
  void Record(double seconds);

  int64_t count() const { return static_cast<int64_t>(samples_.size()); }
  double total() const { return total_; }
  double mean() const;
  // Nearest-rank percentile, `p` ∈ [0, 100]; 0 with no samples.
  double Percentile(double p) const;

  // Raw samples in whatever order Percentile() left them — for merging
  // per-thread recorders into one population (bench/loadgen).
  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
  double total_ = 0.0;
  // Percentile() sorts lazily; `sorted_` tracks whether samples_ is
  // currently in order.
  mutable bool sorted_ = true;
};

// Churn/stability summary of one trace replay (bench/replay_trace).
struct ChurnMetrics {
  int64_t mutations = 0;
  int64_t reassignments = 0;       // arrangement adds + removes
  int64_t full_resolves = 0;       // drift-triggered fallback solves
  int64_t infeasible_epochs = 0;   // Validate() failures observed
  int64_t budget_exhausted = 0;    // repairs cut short by the budget

  // Per-mutation incremental repair latency.
  double mean_repair_seconds = 0.0;
  double p50_repair_seconds = 0.0;
  double p90_repair_seconds = 0.0;
  double p99_repair_seconds = 0.0;

  // Mean wall time of a from-scratch fallback solve, sampled during the
  // replay; 0 when never sampled.
  double mean_full_solve_seconds = 0.0;

  // Final maintained MaxSum vs a from-scratch solve of the final
  // instance.
  double final_max_sum = 0.0;
  double oracle_max_sum = 0.0;

  double ReassignmentsPerMutation() const;
  // maintained / oracle; 1 when the oracle found nothing either.
  double OracleRatio() const;
  // full-solve mean / repair mean; 0 when either side is unsampled.
  double SpeedupVsFullSolve() const;

  std::string DebugString() const;
};

}  // namespace geacc

#endif  // GEACC_EXP_METRICS_H_
