// Work-stealing thread pool for intra-solver parallelism.
//
// The pool owns `threads - 1` worker threads; the thread that calls
// ParallelFor is the remaining lane, so ThreadPool(1) spawns nothing and
// every parallel region degenerates to the plain serial loop. Each worker
// has its own deque: submissions are spread round-robin, owners pop from
// the back (LIFO, cache-warm), and idle workers steal from the front of
// other deques (FIFO, oldest first) — the classic Chase–Lev discipline,
// implemented with per-deque mutexes rather than lock-free buffers because
// chunk granularity here is far above the contention regime and mutexes
// keep the pool trivially ThreadSanitizer-clean.
//
// Determinism contract: ParallelFor splits [begin, end) into chunks whose
// boundaries depend only on the range, the grain, and the pool size —
// never on timing. Callers that reduce must either write to disjoint
// per-index slots or reduce per-chunk partials in chunk order (see
// ParallelMap below); every solver in src/algo/ follows this discipline,
// which is what makes `--threads N` bit-identical to the serial solve.
//
// Observability: chunks executed on pool workers run under an
// obs::StatsScope whose deltas are re-credited to the calling thread once
// the region completes, so StatsScope/RunRecord attribution (DESIGN.md §9)
// keeps working when a solver goes parallel. The pool also reports
// pool.parallel_fors, pool.chunks, and pool.steals on the calling thread
// (steals are timing-dependent; the rest are deterministic).
//
// Lifecycle: solvers construct a pool per Solve() call (worker startup is
// microseconds against any solve that benefits from threads) and tear it
// down on scope exit, so concurrent Solve() calls — RunSweep fans whole
// runs out over raw threads — never share mutable pool state.

#ifndef GEACC_UTIL_THREAD_POOL_H_
#define GEACC_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace geacc {

// Maps a SolverOptions-style thread request to an actual count: values
// >= 1 are taken as-is, 0 (and negatives) mean "one lane per hardware
// thread" (at least 1).
int ResolveThreadCount(int requested);

class ThreadPool {
 public:
  // Spawns max(0, threads - 1) workers; `threads` <= 1 yields an inline
  // pool that runs everything on the caller.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Lanes available to a parallel region: workers + the calling thread.
  int concurrency() const { return static_cast<int>(queues_.size()) + 1; }

  // Number of chunks ParallelFor will use for this range: a pure function
  // of (range, grain, pool size), so callers can preallocate per-chunk
  // slots. Always >= 1 for a non-empty range.
  int NumChunks(int64_t begin, int64_t end, int64_t grain = 1) const;

  // Runs chunk_fn(chunk_index, chunk_begin, chunk_end) over a disjoint
  // deterministic cover of [begin, end). Chunks run concurrently across
  // the pool (the caller participates); the call returns when all chunks
  // have finished. No chunk is smaller than min(grain, end - begin).
  // Not reentrant: chunk_fn must not call back into the same pool.
  void ParallelFor(
      int64_t begin, int64_t end,
      const std::function<void(int chunk, int64_t chunk_begin,
                               int64_t chunk_end)>& chunk_fn,
      int64_t grain = 1);

  // Total successful steals since construction (timing-dependent).
  int64_t steals() const { return steals_.load(std::memory_order_relaxed); }

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(int worker_index);
  // Runs one queued task if any is available (own queue first, then
  // steals). Returns false when every queue was empty.
  bool RunOneTask(int home_queue);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;  // one per worker
  std::vector<std::thread> workers_;

  std::mutex wake_mu_;
  std::condition_variable wake_cv_;   // workers sleep here
  int64_t queued_ = 0;                // tasks enqueued, guarded by wake_mu_
  bool stop_ = false;                 // guarded by wake_mu_

  std::atomic<int64_t> steals_{0};
  std::atomic<uint64_t> next_queue_{0};
};

// Deterministic map-reduce helper: applies map_fn to every chunk, storing
// each chunk's partial in a slot, then folds the partials *in chunk order*
// on the calling thread. Integer partials make the result independent of
// the chunk count as well; floating-point partials are deterministic for a
// fixed pool size.
template <typename Partial, typename MapFn, typename FoldFn>
void ParallelMap(ThreadPool& pool, int64_t begin, int64_t end,
                 const MapFn& map_fn, const FoldFn& fold_fn,
                 int64_t grain = 1) {
  if (end <= begin) return;
  std::vector<Partial> partials(pool.NumChunks(begin, end, grain));
  pool.ParallelFor(
      begin, end,
      [&](int chunk, int64_t chunk_begin, int64_t chunk_end) {
        partials[chunk] = map_fn(chunk_begin, chunk_end);
      },
      grain);
  for (Partial& partial : partials) fold_fn(partial);
}

}  // namespace geacc

#endif  // GEACC_UTIL_THREAD_POOL_H_
