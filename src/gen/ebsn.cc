#include "gen/ebsn.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "util/check.h"

namespace geacc {
namespace {

// Draws one tag id from the popularity CDF.
int DrawTag(const std::vector<double>& cdf, Rng& rng) {
  const double draw = rng.NextDouble();
  const auto it = std::lower_bound(cdf.begin(), cdf.end(), draw);
  return static_cast<int>(std::min<size_t>(it - cdf.begin(), cdf.size() - 1));
}

// Tag-count vector of one entity: `count` draws, each from the creator
// group's profile with prob 1-noise, else from global popularity. The
// result is L1-normalized (Section V's attribute construction).
std::vector<double> DrawTagVector(const std::vector<int>& group_profile,
                                  const std::vector<double>& popularity_cdf,
                                  int num_tags, int count, double noise,
                                  Rng& rng) {
  std::vector<double> counts(num_tags, 0.0);
  for (int i = 0; i < count; ++i) {
    int tag;
    if (!group_profile.empty() && !rng.Bernoulli(noise)) {
      tag = group_profile[rng.UniformInt(
          0, static_cast<int64_t>(group_profile.size()) - 1)];
    } else {
      tag = DrawTag(popularity_cdf, rng);
    }
    counts[tag] += 1.0;
  }
  for (double& c : counts) c /= static_cast<double>(count);
  return counts;
}

}  // namespace

EbsnConfig EbsnCityPreset(const std::string& city) {
  EbsnConfig config;
  config.city = city;
  if (city == "vancouver") {
    config.num_events = 225;
    config.num_users = 2012;
    config.num_groups = 30;
  } else if (city == "auckland") {
    config.num_events = 37;
    config.num_users = 569;
    config.num_groups = 10;
  } else if (city == "singapore") {
    config.num_events = 87;
    config.num_users = 1500;
    config.num_groups = 20;
  } else {
    GEACC_CHECK(false) << "unknown EBSN city preset '" << city << "'";
  }
  return config;
}

Instance GenerateEbsn(const EbsnConfig& config) {
  GEACC_CHECK_GE(config.num_tags, 1);
  GEACC_CHECK_GE(config.num_groups, 1);
  GEACC_CHECK_GE(config.tags_per_user, 1);
  GEACC_CHECK_GE(config.tags_per_event, 1);
  Rng rng(config.seed);

  // Tag popularity ~ Zipf over the merged vocabulary.
  std::vector<double> popularity_cdf(config.num_tags);
  {
    double total = 0.0;
    for (int t = 0; t < config.num_tags; ++t) {
      total += std::pow(static_cast<double>(t + 1), -config.tag_zipf_skew);
      popularity_cdf[t] = total;
    }
    for (double& c : popularity_cdf) c /= total;
  }

  // Group profiles: distinct tags, popularity-weighted.
  std::vector<std::vector<int>> groups(config.num_groups);
  for (auto& profile : groups) {
    const int want = std::min(config.tags_per_group, config.num_tags);
    while (static_cast<int>(profile.size()) < want) {
      const int tag = DrawTag(popularity_cdf, rng);
      if (std::find(profile.begin(), profile.end(), tag) == profile.end()) {
        profile.push_back(tag);
      }
    }
  }

  const Sampler event_cap(config.event_capacity);
  const Sampler user_cap(config.user_capacity);

  // Events: each created by one group, tags from its profile.
  AttributeMatrix events(config.num_events, config.num_tags);
  std::vector<int> event_capacities(config.num_events);
  for (int v = 0; v < config.num_events; ++v) {
    const auto& profile =
        groups[rng.UniformInt(0, config.num_groups - 1)];
    const std::vector<double> attrs =
        DrawTagVector(profile, popularity_cdf, config.num_tags,
                      config.tags_per_event, config.noise, rng);
    double* row = events.MutableRow(v);
    for (int j = 0; j < config.num_tags; ++j) row[j] = attrs[j];
    event_capacities[v] = event_cap.SampleCapacity(rng);
  }

  // Users: join 1–2 groups, tags from the union of joined profiles.
  AttributeMatrix users(config.num_users, config.num_tags);
  std::vector<int> user_capacities(config.num_users);
  for (int u = 0; u < config.num_users; ++u) {
    std::vector<int> joined =
        groups[rng.UniformInt(0, config.num_groups - 1)];
    if (rng.Bernoulli(0.5)) {
      const auto& second =
          groups[rng.UniformInt(0, config.num_groups - 1)];
      for (const int tag : second) {
        if (std::find(joined.begin(), joined.end(), tag) == joined.end()) {
          joined.push_back(tag);
        }
      }
    }
    const std::vector<double> attrs =
        DrawTagVector(joined, popularity_cdf, config.num_tags,
                      config.tags_per_user, config.noise, rng);
    double* row = users.MutableRow(u);
    for (int j = 0; j < config.num_tags; ++j) row[j] = attrs[j];
    user_capacities[u] = user_cap.SampleCapacity(rng);
  }

  ConflictGraph conflicts =
      ConflictGraph::Random(config.num_events, config.conflict_density, rng);

  // Attributes are L1-normalized fractions in [0, 1]; Eq. (1) with T = 1.
  return Instance(std::move(events), std::move(event_capacities),
                  std::move(users), std::move(user_capacities),
                  std::move(conflicts),
                  std::make_unique<EuclideanSimilarity>(1.0));
}

EbsnStats SummarizeEbsn(const std::string& city, const Instance& instance) {
  EbsnStats stats;
  stats.city = city;
  stats.num_events = instance.num_events();
  stats.num_users = instance.num_users();
  stats.conflict_density = instance.conflicts().Density();
  auto mean_nonzero = [&](const AttributeMatrix& matrix) {
    if (matrix.rows() == 0) return 0.0;
    int64_t nonzero = 0;
    for (int i = 0; i < matrix.rows(); ++i) {
      const double* row = matrix.Row(i);
      for (int j = 0; j < matrix.dim(); ++j) {
        if (row[j] > 0.0) ++nonzero;
      }
    }
    return static_cast<double>(nonzero) / matrix.rows();
  };
  stats.mean_event_tags = mean_nonzero(instance.event_attributes());
  stats.mean_user_tags = mean_nonzero(instance.user_attributes());
  return stats;
}

}  // namespace geacc
