// Storage engine core (DESIGN.md §14): page file layout + checksums +
// superblock alternation, buffer pool budget/eviction/pinning, and the
// paged B+-tree against its in-memory sibling.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "container/bplus_tree.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "storage/page_file.h"
#include "storage/paged_bplus_tree.h"

namespace geacc::storage {
namespace {

std::string TempPath(const std::string& tag) {
  static int counter = 0;
  return testing::TempDir() + "/geacc_storage_test_" + tag + "_" +
         std::to_string(::getpid()) + "_" + std::to_string(counter++) +
         ".pages";
}

class ScopedFile {
 public:
  explicit ScopedFile(std::string path) : path_(std::move(path)) {}
  ~ScopedFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(PageFile, CreateWriteReadRoundtrip) {
  ScopedFile file(TempPath("roundtrip"));
  std::string error;
  auto pf = PageFile::Create(file.path(), 512, &error);
  ASSERT_NE(pf, nullptr) << error;
  EXPECT_EQ(pf->page_size(), 512u);
  EXPECT_EQ(pf->payload_capacity(), 512u - sizeof(PageHeader));
  EXPECT_EQ(pf->generation(), 1u);
  EXPECT_EQ(pf->meta().data_pages, 0u);

  std::vector<uint8_t> payload(pf->payload_capacity());
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i * 7 + 3);
  }
  const PageId id = pf->Allocate();
  ASSERT_TRUE(pf->WritePage(id, kPageTypeLeaf, payload.data(), 100, &error))
      << error;
  PageFile::Meta meta;
  meta.data_pages = 1;
  meta.applied_seq = 42;
  meta.user[0] = 7;
  ASSERT_TRUE(pf->Commit(meta, &error)) << error;
  pf.reset();

  pf = PageFile::Open(file.path(), &error);
  ASSERT_NE(pf, nullptr) << error;
  EXPECT_EQ(pf->generation(), 2u);
  EXPECT_EQ(pf->meta().data_pages, 1u);
  EXPECT_EQ(pf->meta().applied_seq, 42);
  EXPECT_EQ(pf->meta().user[0], 7u);
  std::vector<uint8_t> read_back(pf->payload_capacity());
  uint16_t type = 0;
  uint32_t bytes = 0;
  ASSERT_TRUE(pf->ReadPage(0, read_back.data(), &type, &bytes, &error))
      << error;
  EXPECT_EQ(type, kPageTypeLeaf);
  EXPECT_EQ(bytes, 100u);
  EXPECT_EQ(std::memcmp(read_back.data(), payload.data(), 100), 0);
}

TEST(PageFile, RejectsBadPageSizes) {
  std::string error;
  EXPECT_EQ(PageFile::Create(TempPath("bad1"), 100, &error), nullptr);
  EXPECT_EQ(PageFile::Create(TempPath("bad2"), 256, &error), nullptr);
  EXPECT_EQ(PageFile::Create(TempPath("bad3"), 1000, &error), nullptr);
}

TEST(PageFile, DetectsCorruptPage) {
  ScopedFile file(TempPath("corrupt"));
  std::string error;
  auto pf = PageFile::Create(file.path(), 512, &error);
  ASSERT_NE(pf, nullptr) << error;
  std::vector<uint8_t> payload(pf->payload_capacity(), 0xAB);
  pf->Allocate();
  ASSERT_TRUE(pf->WritePage(0, kPageTypeLeaf, payload.data(),
                            static_cast<uint32_t>(payload.size()), &error));
  PageFile::Meta meta;
  meta.data_pages = 1;
  ASSERT_TRUE(pf->Commit(meta, &error));
  pf.reset();

  // Flip one payload byte of data page 0 (offset 2 * 512 + header + 10).
  {
    std::fstream f(file.path(),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(2 * 512 + sizeof(PageHeader) + 10);
    const char flipped = static_cast<char>(~0xAB);
    f.write(&flipped, 1);
  }
  pf = PageFile::Open(file.path(), &error);
  ASSERT_NE(pf, nullptr) << error;
  uint16_t type = 0;
  uint32_t bytes = 0;
  EXPECT_FALSE(pf->ReadPage(0, payload.data(), &type, &bytes, &error));
  EXPECT_NE(error.find("checksum"), std::string::npos) << error;
}

TEST(PageFile, SuperblockAlternationSurvivesTornCommit) {
  ScopedFile file(TempPath("torn_super"));
  std::string error;
  auto pf = PageFile::Create(file.path(), 512, &error);
  ASSERT_NE(pf, nullptr) << error;
  PageFile::Meta meta;
  meta.applied_seq = 1;
  ASSERT_TRUE(pf->Commit(meta, &error));  // generation 2 -> slot 0
  meta.applied_seq = 2;
  ASSERT_TRUE(pf->Commit(meta, &error));  // generation 3 -> slot 1
  pf.reset();

  // Tear the most recent superblock (slot 1, at offset page_size): zero a
  // few bytes so its checksum fails. Open must fall back to slot 0.
  {
    std::fstream f(file.path(),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(512 + 16);
    const char zeros[8] = {0};
    f.write(zeros, sizeof(zeros));
  }
  pf = PageFile::Open(file.path(), &error);
  ASSERT_NE(pf, nullptr) << error;
  EXPECT_EQ(pf->generation(), 2u);
  EXPECT_EQ(pf->meta().applied_seq, 1);
}

TEST(PageFile, OpenFailsOnTruncatedFile) {
  ScopedFile file(TempPath("trunc"));
  {
    std::ofstream f(file.path(), std::ios::binary);
    f << "short";
  }
  std::string error;
  EXPECT_EQ(PageFile::Open(file.path(), &error), nullptr);
  EXPECT_FALSE(error.empty());
}

TEST(BufferPool, ServesHitsWithoutIo) {
  ScopedFile file(TempPath("pool_hits"));
  std::string error;
  auto pf = PageFile::Create(file.path(), 512, &error);
  ASSERT_NE(pf, nullptr) << error;
  BufferPool pool(pf.get(), 8 * 512);

  BufferPool::PageRef page;
  ASSERT_TRUE(pool.Create(kPageTypeLeaf, &page, &error)) << error;
  const PageId id = page.id();
  std::memset(page.data(), 0x5A, 64);
  page.set_payload_bytes(64);
  page.MarkDirty();
  page.Release();

  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(pool.Fetch(id, &page, &error)) << error;
    EXPECT_EQ(page.data()[0], 0x5A);
    page.Release();
  }
  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.hits, 5);
  EXPECT_EQ(stats.faults, 0);  // never evicted, never re-read
  ASSERT_TRUE(pool.FlushAll(&error)) << error;
}

TEST(BufferPool, EvictsUnderBudgetAndWritesBackDirtyPages) {
  ScopedFile file(TempPath("pool_evict"));
  std::string error;
  auto pf = PageFile::Create(file.path(), 512, &error);
  ASSERT_NE(pf, nullptr) << error;
  BufferPool pool(pf.get(), 2 * 512);  // two frames
  EXPECT_EQ(pool.frame_count(), 2);

  // Create 8 pages through 2 frames; each must be written back on
  // eviction and read back intact later.
  for (int i = 0; i < 8; ++i) {
    BufferPool::PageRef page;
    ASSERT_TRUE(pool.Create(kPageTypeLeaf, &page, &error)) << error;
    std::memset(page.data(), 0x10 + i, 32);
    page.set_payload_bytes(32);
    page.MarkDirty();
  }
  const PoolStats stats = pool.stats();
  EXPECT_GE(stats.evictions, 6);
  EXPECT_GE(stats.flushes, 6);
  EXPECT_LE(stats.resident_bytes, 2 * 512u);
  EXPECT_LE(stats.peak_resident_bytes, 2 * 512u);

  for (int i = 0; i < 8; ++i) {
    BufferPool::PageRef page;
    ASSERT_TRUE(pool.Fetch(static_cast<PageId>(i), &page, &error)) << error;
    EXPECT_EQ(page.data()[0], 0x10 + i) << "page " << i;
    EXPECT_EQ(page.payload_bytes(), 32u);
  }
}

TEST(BufferPool, AllPinnedIsAnErrorNotADeadlock) {
  ScopedFile file(TempPath("pool_pinned"));
  std::string error;
  auto pf = PageFile::Create(file.path(), 512, &error);
  ASSERT_NE(pf, nullptr) << error;
  BufferPool pool(pf.get(), 2 * 512);

  BufferPool::PageRef a, b, c;
  ASSERT_TRUE(pool.Create(kPageTypeLeaf, &a, &error));
  ASSERT_TRUE(pool.Create(kPageTypeLeaf, &b, &error));
  EXPECT_FALSE(pool.Create(kPageTypeLeaf, &c, &error));
  EXPECT_NE(error.find("pinned"), std::string::npos) << error;
  // Releasing one pin frees a frame again.
  a.Release();
  EXPECT_TRUE(pool.Create(kPageTypeLeaf, &c, &error)) << error;
}

TEST(BufferPool, PinnedFramesSurviveEvictionPressure) {
  ScopedFile file(TempPath("pool_pin_survive"));
  std::string error;
  auto pf = PageFile::Create(file.path(), 512, &error);
  ASSERT_NE(pf, nullptr) << error;
  BufferPool pool(pf.get(), 3 * 512);

  BufferPool::PageRef pinned;
  ASSERT_TRUE(pool.Create(kPageTypeLeaf, &pinned, &error));
  std::memset(pinned.data(), 0x77, 16);
  pinned.set_payload_bytes(16);
  pinned.MarkDirty();
  const uint8_t* stable = pinned.data();

  for (int i = 0; i < 10; ++i) {
    BufferPool::PageRef scratch;
    ASSERT_TRUE(pool.Create(kPageTypeLeaf, &scratch, &error));
    scratch.set_payload_bytes(0);
  }
  // The pinned frame was never recycled: same buffer, same contents.
  EXPECT_EQ(pinned.data(), stable);
  EXPECT_EQ(pinned.data()[0], 0x77);
}

// ----- paged B+-tree vs the in-memory tree -----

using InMemTree = BPlusTree<double, int, 64>;
using PagedTree = PagedBPlusTree<double, int>;

struct PagedFixture {
  ScopedFile file;
  std::unique_ptr<PageFile> pf;
  std::unique_ptr<BufferPool> pool;
  std::unique_ptr<PagedTree> tree;

  PagedFixture(const std::vector<std::pair<double, int>>& entries,
               uint64_t budget_bytes, uint32_t page_size = 512)
      : file(TempPath("tree")) {
    std::string error;
    pf = PageFile::Create(file.path(), page_size, &error);
    EXPECT_NE(pf, nullptr) << error;
    pool = std::make_unique<BufferPool>(pf.get(), budget_bytes);
    tree = std::make_unique<PagedTree>(pf.get(), pool.get());
    EXPECT_TRUE(tree->Build(entries, &error)) << error;
  }
};

std::vector<std::pair<double, int>> MakeEntries(int n, uint32_t seed,
                                                bool with_duplicates) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(0.0, 100.0);
  std::vector<std::pair<double, int>> entries(n);
  for (int i = 0; i < n; ++i) {
    double key = dist(rng);
    if (with_duplicates && i % 3 == 0) key = std::floor(key);
    entries[i] = {key, i};
  }
  std::sort(entries.begin(), entries.end());
  return entries;
}

void ExpectSameIteration(const InMemTree& expected, const PagedTree& actual) {
  auto e = expected.begin();
  auto a = actual.begin();
  int64_t count = 0;
  while (e != expected.end() && a != actual.end()) {
    ASSERT_EQ(e.key(), a.key()) << "at position " << count;
    ASSERT_EQ(e.value(), a.value()) << "at position " << count;
    ++e;
    ++a;
    ++count;
  }
  EXPECT_TRUE(e == expected.end());
  EXPECT_TRUE(a == actual.end());
  EXPECT_EQ(count, expected.size());
}

TEST(PagedBPlusTree, MatchesInMemoryTreeOnRandomKeys) {
  for (const bool duplicates : {false, true}) {
    const auto entries = MakeEntries(2000, duplicates ? 7 : 5, duplicates);
    InMemTree expected;
    expected.BulkLoad(entries);
    PagedFixture paged(entries, /*budget_bytes=*/2 * 512);
    ASSERT_EQ(paged.tree->size(), expected.size());

    ExpectSameIteration(expected, *paged.tree);

    // Bounds must land on the same (key, value) position for probe keys
    // between, at, and outside the stored keys.
    std::mt19937 rng(99);
    std::uniform_real_distribution<double> dist(-5.0, 105.0);
    std::vector<double> probes;
    for (int i = 0; i < 200; ++i) probes.push_back(dist(rng));
    for (const auto& [key, value] : entries) {
      if (probes.size() >= 400) break;
      probes.push_back(key);  // exact hits, incl. duplicated keys
    }
    for (const double probe : probes) {
      auto e = expected.LowerBound(probe);
      auto a = paged.tree->LowerBound(probe);
      if (e == expected.end()) {
        EXPECT_TRUE(a == paged.tree->end()) << "LowerBound(" << probe << ")";
      } else {
        ASSERT_TRUE(a != paged.tree->end()) << "LowerBound(" << probe << ")";
        EXPECT_EQ(e.key(), a.key());
        EXPECT_EQ(e.value(), a.value());
      }
      e = expected.UpperBound(probe);
      a = paged.tree->UpperBound(probe);
      if (e == expected.end()) {
        EXPECT_TRUE(a == paged.tree->end()) << "UpperBound(" << probe << ")";
      } else {
        ASSERT_TRUE(a != paged.tree->end()) << "UpperBound(" << probe << ")";
        EXPECT_EQ(e.key(), a.key());
        EXPECT_EQ(e.value(), a.value());
      }
    }
  }
}

TEST(PagedBPlusTree, BidirectionalIterationUnderTinyBudget) {
  const auto entries = MakeEntries(1000, 11, /*with_duplicates=*/true);
  PagedFixture paged(entries, /*budget_bytes=*/2 * 512);

  // Walk backward from end() — the reverse of the sorted entries.
  auto it = paged.tree->end();
  for (auto rit = entries.rbegin(); rit != entries.rend(); ++rit) {
    --it;
    ASSERT_EQ(it.key(), rit->first);
    ASSERT_EQ(it.value(), rit->second);
  }
  EXPECT_TRUE(it == paged.tree->begin());

  // Interleave two cursors moving in opposite directions: positions are
  // (page, slot) pairs, so eviction under the 2-frame pool cannot
  // invalidate either.
  auto fwd = paged.tree->begin();
  auto bwd = paged.tree->end();
  for (size_t i = 0; i < entries.size(); ++i) {
    ASSERT_EQ(fwd.key(), entries[i].first);
    ++fwd;
    --bwd;
    ASSERT_EQ(bwd.key(), entries[entries.size() - 1 - i].first);
  }
}

TEST(PagedBPlusTree, EmptyTree) {
  PagedFixture paged({}, 4 * 512);
  EXPECT_EQ(paged.tree->size(), 0);
  EXPECT_TRUE(paged.tree->empty());
  EXPECT_TRUE(paged.tree->begin() == paged.tree->end());
  EXPECT_TRUE(paged.tree->LowerBound(1.0) == paged.tree->end());
}

TEST(PagedBPlusTree, AttachReloadsACommittedTree) {
  const auto entries = MakeEntries(500, 23, /*with_duplicates=*/false);
  ScopedFile file(TempPath("attach"));
  std::string error;
  {
    auto pf = PageFile::Create(file.path(), 512, &error);
    ASSERT_NE(pf, nullptr) << error;
    BufferPool pool(pf.get(), 4 * 512);
    PagedTree tree(pf.get(), &pool);
    ASSERT_TRUE(tree.Build(entries, &error)) << error;
  }
  auto pf = PageFile::Open(file.path(), &error);
  ASSERT_NE(pf, nullptr) << error;
  BufferPool pool(pf.get(), 4 * 512);
  PagedTree tree(pf.get(), &pool);
  ASSERT_TRUE(tree.Attach(&error)) << error;
  EXPECT_EQ(tree.size(), static_cast<int64_t>(entries.size()));
  InMemTree expected;
  expected.BulkLoad(entries);
  ExpectSameIteration(expected, tree);
}

TEST(PagedBPlusTree, AttachRejectsWrongEntryFormat) {
  ScopedFile file(TempPath("attach_format"));
  std::string error;
  {
    auto pf = PageFile::Create(file.path(), 512, &error);
    ASSERT_NE(pf, nullptr) << error;
    BufferPool pool(pf.get(), 4 * 512);
    PagedTree tree(pf.get(), &pool);
    ASSERT_TRUE(tree.Build(MakeEntries(10, 1, false), &error)) << error;
  }
  auto pf = PageFile::Open(file.path(), &error);
  ASSERT_NE(pf, nullptr) << error;
  BufferPool pool(pf.get(), 4 * 512);
  PagedBPlusTree<double, double> wrong(pf.get(), &pool);
  EXPECT_FALSE(wrong.Attach(&error));
}

TEST(PagedBPlusTree, BuildPeakResidencyStaysWithinBudget) {
  // 20k entries ≈ 60 leaf pages at 512 B — far beyond the 2-frame pool.
  const auto entries = MakeEntries(20000, 31, /*with_duplicates=*/false);
  PagedFixture paged(entries, /*budget_bytes=*/2 * 512);
  const PoolStats stats = paged.pool->stats();
  EXPECT_LE(stats.peak_resident_bytes, 2 * 512u);
  EXPECT_GT(paged.tree->file_bytes(), 10 * stats.peak_resident_bytes)
      << "tree should be much larger than the pool";
  // Spot-check the data survived the streaming build.
  InMemTree expected;
  expected.BulkLoad(entries);
  auto e = expected.LowerBound(50.0);
  auto a = paged.tree->LowerBound(50.0);
  ASSERT_TRUE(e != expected.end() && a != paged.tree->end());
  EXPECT_EQ(e.key(), a.key());
  EXPECT_EQ(e.value(), a.value());
}

}  // namespace
}  // namespace geacc::storage
