// Joint slot + participant arrangement bench (DESIGN.md §17).
//
// Sweeps the event count of a seeded slotted family (slot/slotted_gen)
// through the three joint solvers — slot-greedy, slot-mcf-sweep,
// slot-exact — and reports wall time, the joint MaxSum, and the search
// accounting (slottings considered vs leaf solves, i.e. how much the
// dominance pruning and the slot-aware bound cut). Sizes stay small:
// both sweep solvers are exponential in |V| through the slotting space.
//
//   fig_slotted [--reps N] [--seed S] [--users U] [--slots S]
//               [--allow P] [--events 3,4,5] [--paper] [--selfcheck]
//               [--json out.json]
//
// The --json report carries one point per (|V|, solver) with the
// geacc-bench v1 "slots" section (obs/bench_report.h);
// `validate_report --require-slots` gates it in CI. --selfcheck audits
// every joint result with slot::AuditSlotted and aborts on violation.

#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "slot/slot_solvers.h"
#include "slot/slotted.h"
#include "slot/slotted_gen.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace {

using geacc::bench::CommonFlags;
using geacc::bench::ReportContext;

geacc::slot::SlottedGenConfig MakeConfig(int num_events, int64_t num_users,
                                         int64_t num_slots, double allow,
                                         uint64_t seed) {
  geacc::slot::SlottedGenConfig config;
  config.num_events = num_events;
  config.num_users = static_cast<int>(num_users);
  config.dim = 4;
  config.max_attribute = 100.0;
  config.num_slots = static_cast<int>(num_slots);
  config.allow_probability = allow;
  config.availability_count =
      geacc::DistributionSpec::Uniform(1.0, static_cast<double>(num_slots));
  config.seed = seed;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  CommonFlags common;
  int64_t num_users = 10;
  int64_t num_slots = 4;
  double allow = 0.5;

  std::string events_csv;

  geacc::FlagSet flags;
  common.Register(flags);
  flags.AddInt("users", &num_users, "user count per instance");
  flags.AddInt("slots", &num_slots, "time-slot count S");
  flags.AddDouble("allow", &allow,
                  "per-(event, slot) allow probability beyond the one "
                  "forced slot");
  flags.AddString("events", &events_csv,
                  "comma-separated |V| sweep values (default 3,4,5; "
                  "--paper 4,5,6 — both sweep solvers are exponential in "
                  "|V|, so grow this with care)");
  flags.Parse(argc, argv);

  ReportContext report("fig_slotted", flags, common);

  std::vector<int> sizes =
      common.paper ? std::vector<int>{4, 5, 6} : std::vector<int>{3, 4, 5};
  if (!events_csv.empty()) {
    sizes.clear();
    for (const std::string& token : geacc::Split(events_csv, ',')) {
      const auto value = geacc::ParseInt(token);
      GEACC_CHECK(value.has_value() && *value > 0)
          << "bad --events entry '" << token << "'";
      sizes.push_back(static_cast<int>(*value));
    }
  }
  const std::vector<std::string> solvers = common.SolverList(
      {"slot-greedy", "slot-mcf-sweep", "slot-exact"});

  geacc::SolverOptions options;
  options.seed = static_cast<uint64_t>(common.seed);
  options.threads = common.threads;
  common.ApplySolverOptions(&options);

  std::printf("%-14s %6s %12s %14s %12s %10s %10s\n", "solver", "|V|",
              "wall_s", "joint_max_sum", "slottings", "leaves", "scheduled");
  for (const int size : sizes) {
    for (const std::string& name : solvers) {
      const auto solver = geacc::slot::CreateSlotSolver(name, options);
      GEACC_CHECK(solver != nullptr) << "unknown slot solver '" << name << "'";

      geacc::obs::BenchPoint point;
      point.label = geacc::StrFormat("slotted/|V|=%d", size);
      point.solver = name;
      point.has_slots = true;
      point.slots.num_slots = num_slots;
      double scheduled_sum = 0.0;
      int64_t clique_cuts = 0;
      for (int rep = 0; rep < common.reps; ++rep) {
        const geacc::slot::SlottedGenConfig config = MakeConfig(
            size, num_users, num_slots, allow,
            static_cast<uint64_t>(common.seed) + 1000u * rep + size);
        const geacc::slot::SlottedInstance slotted =
            geacc::slot::GenerateSlotted(config);

        geacc::CpuTimer cpu;
        const geacc::slot::SlotSolveResult result = solver->Solve(slotted);
        point.cpu_seconds += cpu.Seconds();
        point.wall_seconds += result.stats.wall_seconds;
        point.max_sum += result.max_sum;
        point.slots.slottings_considered += result.slottings_considered;
        point.slots.leaf_solves += result.leaf_solves;
        clique_cuts += result.stats.bound_clique_cuts;
        int scheduled = 0;
        for (const geacc::SlotId s : result.slotting) {
          if (s != geacc::kInvalidSlot) ++scheduled;
        }
        scheduled_sum += scheduled;

        if (common.selfcheck) {
          const std::string audit = geacc::slot::AuditSlotted(
              slotted, result.slotting, result.arrangement);
          GEACC_CHECK(audit.empty())
              << name << " |V|=" << size << " rep=" << rep
              << " failed the joint audit: " << audit;
        }
      }
      const double n = static_cast<double>(common.reps);
      point.wall_seconds /= n;
      point.cpu_seconds /= n;
      point.max_sum /= n;
      point.slots.slottings_considered = static_cast<int64_t>(
          static_cast<double>(point.slots.slottings_considered) / n + 0.5);
      point.slots.leaf_solves = static_cast<int64_t>(
          static_cast<double>(point.slots.leaf_solves) / n + 0.5);
      point.slots.scheduled_events =
          static_cast<int64_t>(scheduled_sum / n + 0.5);
      point.slots.joint_max_sum = point.max_sum;
      point.counters["slot.slottings_considered"] =
          point.slots.slottings_considered;
      point.counters["slot.leaf_solves"] = point.slots.leaf_solves;
      if (name == "slot-exact") {
        point.counters["slot.bound.clique_cuts"] = static_cast<int64_t>(
            static_cast<double>(clique_cuts) / n + 0.5);
      }

      std::printf("%-14s %6d %12.6f %14.6f %12" PRId64 " %10" PRId64
                  " %10" PRId64 "\n",
                  name.c_str(), size, point.wall_seconds, point.max_sum,
                  point.slots.slottings_considered, point.slots.leaf_solves,
                  point.slots.scheduled_events);
      report.AddPoint(std::move(point));
    }
  }
  if (common.selfcheck) {
    std::printf("selfcheck: all joint results passed AuditSlotted\n");
  }
  report.Write();
  return 0;
}
