#include "core/attributes.h"

#include "simd/kernels.h"

namespace geacc {

BlockedAttributes::BlockedAttributes(const double* data, int64_t rows,
                                     int dim)
    : rows_(rows), dim_(dim) {
  GEACC_CHECK_GE(rows, 0);
  GEACC_CHECK_GE(dim, 0);
  const int64_t size = simd::BlockedSize(rows, dim);
  // Over-allocate one cache line so the base can be aligned to
  // simd::kBlockAlignment regardless of what operator new returns.
  constexpr int64_t kPad =
      static_cast<int64_t>(simd::kBlockAlignment / sizeof(double));
  storage_ = std::make_unique<double[]>(size + kPad);
  const auto raw = reinterpret_cast<std::uintptr_t>(storage_.get());
  const auto aligned =
      (raw + simd::kBlockAlignment - 1) & ~(simd::kBlockAlignment - 1);
  base_ = reinterpret_cast<double*>(aligned);
  simd::BuildBlocked(data, rows, dim, base_);
}

int64_t BlockedAttributes::num_blocks() const {
  return simd::NumBlocks(rows_);
}

uint64_t BlockedAttributes::ByteEstimate() const {
  if (storage_ == nullptr) return 0;
  constexpr int64_t kPad =
      static_cast<int64_t>(simd::kBlockAlignment / sizeof(double));
  return static_cast<uint64_t>(simd::BlockedSize(rows_, dim_) + kPad) *
         sizeof(double);
}

const BlockedAttributes& AttributeMatrix::Blocked() const {
  BlockedCache& cache = *blocked_;
  const BlockedAttributes* view =
      cache.ready.load(std::memory_order_acquire);
  if (view != nullptr) return *view;
  std::lock_guard<std::mutex> lock(cache.mu);
  if (cache.view == nullptr) {
    cache.view =
        std::make_unique<BlockedAttributes>(data_.data(), rows_, dim_);
    cache.ready.store(cache.view.get(), std::memory_order_release);
  }
  return *cache.view;
}

AttributeMatrix AttributeMatrix::FromRows(
    const std::vector<std::vector<double>>& rows) {
  const int n = static_cast<int>(rows.size());
  const int dim = n == 0 ? 0 : static_cast<int>(rows[0].size());
  AttributeMatrix matrix(n, dim);
  for (int i = 0; i < n; ++i) {
    GEACC_CHECK_EQ(static_cast<int>(rows[i].size()), dim)
        << "ragged attribute rows";
    double* out = matrix.MutableRow(i);
    for (int j = 0; j < dim; ++j) out[j] = rows[i][j];
  }
  return matrix;
}

void AttributeMatrix::AppendRow(const std::vector<double>& row) {
  GEACC_CHECK_EQ(static_cast<int>(row.size()), dim_)
      << "appended row has the wrong dimensionality";
  InvalidateBlocked();
  data_.insert(data_.end(), row.begin(), row.end());
  ++rows_;
}

double SquaredEuclideanDistance(const double* a, const double* b, int dim) {
  double sum = 0.0;
  for (int j = 0; j < dim; ++j) {
    const double diff = a[j] - b[j];
    sum += diff * diff;
  }
  return sum;
}

}  // namespace geacc
