// Unit and property tests for similarity functions and attribute storage.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <tuple>

#include "core/attributes.h"
#include "core/similarity.h"
#include "util/rng.h"

namespace geacc {
namespace {

// ----------------------------------------------------- AttributeMatrix ---

TEST(AttributeMatrix, BasicAccess) {
  AttributeMatrix m(2, 3);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.dim(), 3);
  EXPECT_DOUBLE_EQ(m.At(1, 2), 0.0);
  m.Set(1, 2, 5.5);
  EXPECT_DOUBLE_EQ(m.At(1, 2), 5.5);
  EXPECT_DOUBLE_EQ(m.Row(1)[2], 5.5);
}

TEST(AttributeMatrix, FromRows) {
  const AttributeMatrix m =
      AttributeMatrix::FromRows({{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}});
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.dim(), 2);
  EXPECT_DOUBLE_EQ(m.At(2, 1), 6.0);
}

TEST(AttributeMatrix, FromRowsRaggedDies) {
  EXPECT_DEATH(AttributeMatrix::FromRows({{1.0, 2.0}, {3.0}}), "ragged");
}

TEST(AttributeMatrix, SquaredEuclideanDistance) {
  const double a[] = {0.0, 3.0};
  const double b[] = {4.0, 0.0};
  EXPECT_DOUBLE_EQ(SquaredEuclideanDistance(a, b, 2), 25.0);
  EXPECT_DOUBLE_EQ(SquaredEuclideanDistance(a, a, 2), 0.0);
}

// ------------------------------------------------- EuclideanSimilarity ---

TEST(EuclideanSimilarity, PaperEquationOne) {
  // sim = 1 - ||a-b|| / sqrt(d T^2); d=2, T=10: max distance sqrt(200).
  const EuclideanSimilarity sim(10.0);
  const double a[] = {0.0, 0.0};
  const double b[] = {10.0, 10.0};
  EXPECT_NEAR(sim.Compute(a, b, 2), 0.0, 1e-12);  // farthest corners
  EXPECT_NEAR(sim.Compute(a, a, 2), 1.0, 1e-12);  // identical
  const double c[] = {3.0, 4.0};                  // distance 5
  EXPECT_NEAR(sim.Compute(a, c, 2), 1.0 - 5.0 / std::sqrt(200.0), 1e-12);
}

TEST(EuclideanSimilarity, DistanceForSimilarityRoundTrip) {
  const EuclideanSimilarity sim(10.0);
  const double a[] = {0.0, 0.0};
  const double c[] = {3.0, 4.0};
  const double s = sim.Compute(a, c, 2);
  EXPECT_NEAR(sim.DistanceForSimilarity(s, 2), 5.0, 1e-9);
}

TEST(EuclideanSimilarity, ZeroDimensionIsOne) {
  const EuclideanSimilarity sim(1.0);
  EXPECT_DOUBLE_EQ(sim.Compute(nullptr, nullptr, 0), 1.0);
}

TEST(EuclideanSimilarity, RequiresPositiveT) {
  EXPECT_DEATH(EuclideanSimilarity(0.0), "T must be positive");
}

// ---------------------------------------------------- CosineSimilarity ---

TEST(CosineSimilarity, ParallelOrthogonalAndZero) {
  const CosineSimilarity sim;
  const double a[] = {1.0, 0.0};
  const double b[] = {2.0, 0.0};
  const double c[] = {0.0, 3.0};
  const double z[] = {0.0, 0.0};
  EXPECT_NEAR(sim.Compute(a, b, 2), 1.0, 1e-12);
  EXPECT_NEAR(sim.Compute(a, c, 2), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(sim.Compute(a, z, 2), 0.0);  // zero vector convention
}

// ------------------------------------------------------- RbfSimilarity ---

TEST(RbfSimilarity, KernelValues) {
  const RbfSimilarity sim(1.0);
  const double a[] = {0.0};
  const double b[] = {1.0};
  EXPECT_NEAR(sim.Compute(a, a, 1), 1.0, 1e-12);
  EXPECT_NEAR(sim.Compute(a, b, 1), std::exp(-0.5), 1e-12);
  EXPECT_GT(sim.Compute(a, b, 1), 0.0);  // strictly positive everywhere
}

// ------------------------------------------------------- DotSimilarity ---

TEST(DotSimilarity, TableLookupViaOneHot) {
  const DotSimilarity sim;
  const double row[] = {0.3, 0.9, 0.1};
  const double one_hot[] = {0.0, 1.0, 0.0};
  EXPECT_NEAR(sim.Compute(row, one_hot, 3), 0.9, 1e-12);
}

TEST(DotSimilarity, ClampsToUnitInterval) {
  const DotSimilarity sim;
  const double a[] = {2.0, 2.0};
  EXPECT_DOUBLE_EQ(sim.Compute(a, a, 2), 1.0);
}

// ------------------------------------------------------------- factory ---

TEST(SimilarityFactory, KnownAndUnknownNames) {
  EXPECT_NE(MakeSimilarity("euclidean", 10.0), nullptr);
  EXPECT_NE(MakeSimilarity("cosine", 0.0), nullptr);
  EXPECT_NE(MakeSimilarity("rbf", 1.0), nullptr);
  EXPECT_NE(MakeSimilarity("dot", 0.0), nullptr);
  EXPECT_EQ(MakeSimilarity("nope", 0.0), nullptr);
}

TEST(SimilarityFactory, MonotonicityFlags) {
  EXPECT_TRUE(MakeSimilarity("euclidean", 1.0)->IsEuclideanMonotone());
  EXPECT_TRUE(MakeSimilarity("rbf", 1.0)->IsEuclideanMonotone());
  EXPECT_FALSE(MakeSimilarity("cosine", 0.0)->IsEuclideanMonotone());
  EXPECT_FALSE(MakeSimilarity("dot", 0.0)->IsEuclideanMonotone());
}

// ----------------------------------------------- range property (all) ----

class SimilarityRangeTest
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(SimilarityRangeTest, AlwaysInUnitIntervalAndSymmetric) {
  const auto& [name, dim] = GetParam();
  const auto sim = MakeSimilarity(name, name == "rbf" ? 25.0 : 100.0);
  ASSERT_NE(sim, nullptr);
  Rng rng(777);
  std::vector<double> a(dim), b(dim);
  for (int trial = 0; trial < 500; ++trial) {
    for (int j = 0; j < dim; ++j) {
      a[j] = rng.UniformReal(0.0, 100.0);
      b[j] = rng.UniformReal(0.0, 100.0);
    }
    const double ab = sim->Compute(a.data(), b.data(), dim);
    const double ba = sim->Compute(b.data(), a.data(), dim);
    ASSERT_GE(ab, 0.0) << name;
    ASSERT_LE(ab, 1.0) << name;
    ASSERT_NEAR(ab, ba, 1e-12) << name << " must be symmetric";
  }
}

TEST_P(SimilarityRangeTest, CloneComputesIdentically) {
  const auto& [name, dim] = GetParam();
  const auto sim = MakeSimilarity(name, name == "rbf" ? 25.0 : 100.0);
  const auto clone = sim->Clone();
  EXPECT_EQ(clone->Name(), sim->Name());
  Rng rng(778);
  std::vector<double> a(dim), b(dim);
  for (int j = 0; j < dim; ++j) {
    a[j] = rng.UniformReal(0.0, 100.0);
    b[j] = rng.UniformReal(0.0, 100.0);
  }
  EXPECT_DOUBLE_EQ(sim->Compute(a.data(), b.data(), dim),
                   clone->Compute(a.data(), b.data(), dim));
}

INSTANTIATE_TEST_SUITE_P(
    AllSimilarities, SimilarityRangeTest,
    ::testing::Combine(::testing::Values("euclidean", "cosine", "rbf"),
                       ::testing::Values(1, 2, 5, 20)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, int>>& info) {
      return std::get<0>(info.param) + "_d" +
             std::to_string(std::get<1>(info.param));
    });

// Euclidean monotonicity property: larger distance → smaller similarity.
TEST(EuclideanSimilarity, MonotoneInDistance) {
  const EuclideanSimilarity sim(100.0);
  Rng rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    double q[3], a[3], b[3];
    for (int j = 0; j < 3; ++j) {
      q[j] = rng.UniformReal(0.0, 100.0);
      a[j] = rng.UniformReal(0.0, 100.0);
      b[j] = rng.UniformReal(0.0, 100.0);
    }
    const double da = SquaredEuclideanDistance(q, a, 3);
    const double db = SquaredEuclideanDistance(q, b, 3);
    const double sa = sim.Compute(q, a, 3);
    const double sb = sim.Compute(q, b, 3);
    if (da < db) {
      ASSERT_GE(sa, sb);
    } else if (da > db) {
      ASSERT_LE(sa, sb);
    }
  }
}

}  // namespace
}  // namespace geacc
