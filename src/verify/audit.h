// Non-aborting arrangement auditor (the verification layer's ground truth).
//
// Arrangement::Validate answers "is this feasible?" with the *first*
// violation it finds — the right contract for a solver postcondition, but
// useless for diagnosing a broken arrangement or for differential
// campaigns that want to classify every defect. AuditArrangement walks the
// whole arrangement and collects every violation of Definition 5 into a
// machine-readable report:
//
//   * event over capacity          (load > c_v)
//   * user over capacity           (load > c_u)
//   * non-positive similarity      (matched pair with sim ≤ 0)
//   * duplicate pair               ({v,u} stored more than once — this is
//                                   the defect a release-build double Add
//                                   produces, where MaxSum double-counts)
//   * conflicting pair             (one user, two conflicting events)
//   * non-maximal (opt-in)         (a feasible positive-similarity pair
//                                   could still be added — violated greedy
//                                   maximality)
//
// The maximality check is only sound for solvers that guarantee maximal
// output (the greedy family and the untruncated exact solvers — see
// SolverGuaranteesMaximality); MinCostFlow-GEACC deletes pairs during
// conflict resolution without refilling, and the random baselines skip
// pairs probabilistically, so non-maximal output is expected there.
//
// Thread-safety: pure function of its arguments.

#ifndef GEACC_VERIFY_AUDIT_H_
#define GEACC_VERIFY_AUDIT_H_

#include <string>
#include <vector>

#include "core/arrangement.h"
#include "core/instance.h"
#include "obs/json.h"

namespace geacc::verify {

enum class ViolationKind {
  kInstanceMismatch = 0,    // arrangement sized for a different instance
  kPairOutOfRange,          // a stored pair references a nonexistent event
  kEventOverCapacity,
  kUserOverCapacity,
  kNonPositiveSimilarity,
  kDuplicatePair,
  kConflictingPair,
  kNonMaximal,
};

// Stable lower_snake_case name ("event_over_capacity", ...), used in JSON
// reports and log lines.
const char* ViolationKindName(ViolationKind kind);

struct Violation {
  ViolationKind kind = ViolationKind::kInstanceMismatch;
  EventId event = -1;        // primary event (-1 when not applicable)
  EventId other_event = -1;  // second event of a conflicting pair
  UserId user = -1;
  double observed = 0.0;  // load, occurrence count, or similarity
  double limit = 0.0;     // capacity bound (0 when not applicable)

  // One human-readable line, e.g. "event 3 over capacity: 5 > 2".
  std::string Description() const;
};

struct AuditOptions {
  // Also flag feasible positive-similarity pairs that could still be
  // added (greedy maximality). Enable only for solvers that guarantee it.
  bool check_maximality = false;

  // Stop collecting after this many violations (0 = unlimited). The
  // report is still exhaustive below the cap; use it to bound the O(V·U)
  // maximality scan's output on pathological inputs.
  int max_violations = 0;
};

struct AuditReport {
  std::vector<Violation> violations;

  bool ok() const { return violations.empty(); }
  int Count(ViolationKind kind) const;

  // "" when ok; otherwise one Description() per line.
  std::string Summary() const;

  // {"ok": ..., "counts": {kind: n, ...}, "violations": [...]} — the
  // machine-readable form the geacc_audit CLI emits.
  obs::JsonValue ToJson() const;
};

// Collects every violation of `arrangement` against `instance`. Never
// aborts: a size mismatch yields a single kInstanceMismatch violation and
// per-pair checks are skipped for out-of-range ids.
AuditReport AuditArrangement(const Instance& instance,
                             const Arrangement& arrangement,
                             const AuditOptions& options = {});

// True for registry solvers whose output is maximal by construction
// (greedy, greedy-sortall, online-greedy, prune, exhaustive, bruteforce —
// the latter three only when the search was not truncated, which the
// caller must ensure via SolverOptions::max_search_invocations == 0).
bool SolverGuaranteesMaximality(const std::string& solver_name);

}  // namespace geacc::verify

#endif  // GEACC_VERIFY_AUDIT_H_
