// Joint slot + participant solvers over SlottedInstance.
//
// A SlotSolver searches the space of slottings (per-event slot choices)
// and, per slotting, the induced plain GEACC instance. Three strategies,
// mirroring the base registry's coverage of the quality/cost spectrum:
//
//  * "slot-greedy" — one pass over (similarity, event, user, slot)
//    candidates in the SortAllGreedy admission order, fixing each event's
//    slot at its first admitted pair. Linearithmic in the candidate count;
//    no optimality guarantee, but always jointly feasible.
//  * "slot-mcf-sweep" — enumerates candidate slottings (cartesian product
//    of the allowed-slot sets, lexicographic), prunes slottings dominated
//    by an already-priced one (identical per-event admissible user sets
//    and a superset of the derived conflict pairs can never score
//    higher), and prices each survivor with MinCostFlow-GEACC's Δ-sweep.
//    Inherits the 1/max c_u per-slotting ratio; exponential in |V| only
//    through the slotting enumeration.
//  * "slot-exact" — branch-and-bound over slot assignments (events in id
//    order, slots ascending) with an admissible slot-aware upper bound:
//    Σ_v (capacity-clipped sum of the top positive similarities among
//    users available in v's slot — maximized over allowed slots while v
//    is unassigned), tightened by forced-conflict clique caps
//    (algo/bounds.h) unless SolverOptions::bound = "lemma6": events whose
//    allowed slots pairwise conflict land in conflicting slots under
//    every completion, so a clique of them cannot all fill their top
//    users — the per-event masses alone were over-admissive there.
//    Leaves are solved exactly with Prune-GEACC, so the returned
//    (slotting, arrangement) attains the joint optimum.
//
// Bound-vs-incumbent contract (shared with PruneSolver; algo/bounds.h): a
// subtree is pruned only when its admissible bound falls more than
// algo::kBoundEps (1e-9) below the incumbent; the incumbent updates with
// strict `>`, so a subtree whose bound merely ties the incumbent may be
// descended but never displaces it — the returned slotting and
// arrangement stay bit-identical to the exhaustive enumeration's at every
// bound level.
//
// Determinism: identical (instance, options) → identical result; all tie
// breaks are fixed (first-best under strict improvement in enumeration
// order). SolverOptions carries the per-leaf solver configuration
// (threads, flow_algorithm, fp_mode, bound, ...); slot solvers validate
// it the same way CreateSolver does.

#ifndef GEACC_SLOT_SLOT_SOLVERS_H_
#define GEACC_SLOT_SLOT_SOLVERS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/solver.h"
#include "slot/slotted.h"

namespace geacc {
namespace slot {

struct SlotSolveResult {
  Slotting slotting;
  Arrangement arrangement;
  // Σ similarity over matched pairs under `slotting` (base similarity —
  // masked and base values agree on admitted pairs).
  double max_sum = 0.0;
  // Complete slottings whose induced instance was priced with a solver.
  int64_t leaf_solves = 0;
  // Slottings examined at all, including dominance- and bound-pruned
  // ones (slot-greedy commits to a single slotting, so reports 1).
  int64_t slottings_considered = 0;
  SolverStats stats;
};

class SlotSolver {
 public:
  virtual ~SlotSolver() = default;

  // Canonical registry name, e.g. "slot-greedy".
  virtual std::string Name() const = 0;

  // Produces a jointly feasible (slotting, arrangement):
  // AuditSlotted(slotted, slotting, arrangement) is empty. Const and
  // re-entrant, like Solver::Solve.
  virtual SlotSolveResult Solve(const SlottedInstance& slotted) const = 0;
};

// Creates a joint solver by name ("slot-greedy", "slot-mcf-sweep",
// "slot-exact"), or nullptr for unknown names. CHECK-fails on invalid
// options, like CreateSolver.
std::unique_ptr<SlotSolver> CreateSlotSolver(const std::string& name,
                                             SolverOptions options = {});

// All joint-solver names, in presentation order.
std::vector<std::string> SlotSolverNames();

}  // namespace slot
}  // namespace geacc

#endif  // GEACC_SLOT_SLOT_SOLVERS_H_
