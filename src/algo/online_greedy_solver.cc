#include "algo/online_greedy_solver.h"

#include <algorithm>

#include "obs/stats.h"
#include "util/check.h"
#include "util/memory.h"
#include "util/timer.h"

namespace geacc {

OnlineArranger::OnlineArranger(const Instance& instance)
    : instance_(instance),
      arrangement_(instance.num_events(), instance.num_users()) {
  event_capacity_.resize(instance.num_events());
  for (EventId v = 0; v < instance.num_events(); ++v) {
    event_capacity_[v] = instance.event_capacity(v);
  }
  arrived_.assign(instance.num_users(), false);
}

std::vector<EventId> OnlineArranger::ArriveUser(UserId u) {
  GEACC_CHECK(u >= 0 && u < instance_.num_users())
      << "user id out of range: " << u;
  GEACC_CHECK(!arrived_[u]) << "user " << u << " arrived twice";
  arrived_[u] = true;

  // Rank all events by this user's interest (sim desc, id asc).
  std::vector<EventId> ranked;
  ranked.reserve(instance_.num_events());
  for (EventId v = 0; v < instance_.num_events(); ++v) {
    if (instance_.Similarity(v, u) > 0.0) ranked.push_back(v);
  }
  std::sort(ranked.begin(), ranked.end(), [&](EventId a, EventId b) {
    const double sa = instance_.Similarity(a, u);
    const double sb = instance_.Similarity(b, u);
    if (sa != sb) return sa > sb;
    return a < b;
  });

  std::vector<EventId> taken;
  int budget = instance_.user_capacity(u);
  const ConflictGraph& conflicts = instance_.conflicts();
  for (const EventId v : ranked) {
    if (budget == 0) break;
    if (event_capacity_[v] <= 0) continue;
    bool conflicting = false;
    for (const EventId w : taken) {
      if (conflicts.AreConflicting(v, w)) {
        conflicting = true;
        break;
      }
    }
    if (conflicting) continue;
    arrangement_.Add(v, u);
    --event_capacity_[v];
    --budget;
    taken.push_back(v);
  }
  GEACC_STATS_ADD("online.arrivals", 1);
  GEACC_STATS_ADD("online.events_ranked", static_cast<int64_t>(ranked.size()));
  GEACC_STATS_ADD("online.matches", static_cast<int64_t>(taken.size()));
  return taken;
}

SolveResult OnlineGreedySolver::Solve(const Instance& instance) const {
  WallTimer timer;
  SolverStats stats;
  OnlineArranger arranger(instance);
  for (UserId u = 0; u < instance.num_users(); ++u) {
    arranger.ArriveUser(u);
  }
  Arrangement result(instance.num_events(), instance.num_users());
  for (UserId u = 0; u < instance.num_users(); ++u) {
    for (const EventId v : arranger.arrangement().EventsOf(u)) {
      result.Add(v, u);
    }
  }
  stats.logical_peak_bytes =
      result.ByteEstimate() * 2 +
      static_cast<uint64_t>(instance.num_events()) * sizeof(int);
  stats.wall_seconds = timer.Seconds();
  return {std::move(result), stats};
}

}  // namespace geacc
