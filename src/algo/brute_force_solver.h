// Independent brute-force reference solver (tests only, exponential).
//
// Enumerates include/exclude decisions over the positive-similarity pairs
// in plain (event, user) id order, with none of Prune-GEACC's machinery —
// no bound, no event ordering, no greedy seed, separate code path. Its
// purpose is cross-checking: Prune-GEACC and this solver are implemented
// independently, so agreement on random instances is strong evidence both
// are correct.
//
// Guarantee: exact (full enumeration). Complexity: O(2^P) over the P
// positive-similarity pairs with no pruning beyond feasibility — keep
// instances tiny. Thread-safety: Solve() is const and re-entrant.
// Counters reported: bruteforce.nodes_visited,
// bruteforce.complete_searches, bruteforce.branches_matched.

#ifndef GEACC_ALGO_BRUTE_FORCE_SOLVER_H_
#define GEACC_ALGO_BRUTE_FORCE_SOLVER_H_

#include <string>

#include "core/instance.h"
#include "core/solver.h"

namespace geacc {

class BruteForceSolver final : public Solver {
 public:
  explicit BruteForceSolver(SolverOptions options = {})
      : options_(options) {}

  std::string Name() const override { return "bruteforce"; }
  SolveResult Solve(const Instance& instance) const override;

 private:
  SolverOptions options_;
};

}  // namespace geacc

#endif  // GEACC_ALGO_BRUTE_FORCE_SOLVER_H_
