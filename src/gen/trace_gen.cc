#include "gen/trace_gen.h"

#include <memory>
#include <utility>
#include <vector>

#include "dyn/dynamic_instance.h"
#include "gen/schedule.h"
#include "util/check.h"
#include "util/rng.h"

namespace geacc {
namespace {

// Live-id pool with O(1) uniform sampling and removal (swap-remove plus a
// slot→position mirror).
class IdPool {
 public:
  void Add(int32_t id) {
    if (static_cast<size_t>(id) >= position_.size()) {
      position_.resize(id + 1, -1);
    }
    position_[id] = static_cast<int>(ids_.size());
    ids_.push_back(id);
  }

  void Remove(int32_t id) {
    const int pos = position_[id];
    GEACC_CHECK_GE(pos, 0);
    ids_[pos] = ids_.back();
    position_[ids_[pos]] = pos;
    ids_.pop_back();
    position_[id] = -1;
  }

  int32_t Sample(Rng& rng) const {
    GEACC_CHECK(!ids_.empty());
    return ids_[rng.UniformInt(0, static_cast<int64_t>(ids_.size()) - 1)];
  }

  int size() const { return static_cast<int>(ids_.size()); }
  const std::vector<int32_t>& ids() const { return ids_; }

 private:
  std::vector<int32_t> ids_;
  std::vector<int> position_;  // slot id -> index in ids_, -1 if dead
};

std::vector<double> UniformAttributes(int dim, double max_attribute,
                                      Rng& rng) {
  std::vector<double> row(dim);
  for (int j = 0; j < dim; ++j) row[j] = rng.UniformReal(0.0, max_attribute);
  return row;
}

ScheduledEvent DrawScheduledEvent(const TraceGenConfig& config, Rng& rng) {
  ScheduledEvent event;
  event.start_hours = rng.UniformReal(0.0, config.horizon_hours);
  event.end_hours =
      event.start_hours + rng.UniformReal(config.min_duration_hours,
                                          config.max_duration_hours);
  event.x_km = rng.UniformReal(0.0, config.city_km);
  event.y_km = rng.UniformReal(0.0, config.city_km);
  return event;
}

}  // namespace

MutationTrace GenerateTrace(const TraceGenConfig& config) {
  GEACC_CHECK_GE(config.initial_events, 0);
  GEACC_CHECK_GE(config.initial_users, 0);
  GEACC_CHECK_GE(config.num_mutations, 0);
  GEACC_CHECK_GE(config.max_event_capacity, 1);
  GEACC_CHECK_GE(config.max_user_capacity, 1);
  Rng rng(config.seed);

  // ----- epoch-0 instance: a timetable plus a user population -----
  std::vector<ScheduledEvent> schedule =
      RandomSchedule(config.initial_events, config.horizon_hours,
                     config.min_duration_hours, config.max_duration_hours,
                     config.city_km, rng);
  InstanceBuilder builder;
  builder.SetSimilarity(
      std::make_unique<EuclideanSimilarity>(config.max_attribute));
  for (int v = 0; v < config.initial_events; ++v) {
    builder.AddEvent(
        UniformAttributes(config.dim, config.max_attribute, rng),
        static_cast<int>(rng.UniformInt(1, config.max_event_capacity)));
  }
  for (int u = 0; u < config.initial_users; ++u) {
    builder.AddUser(
        UniformAttributes(config.dim, config.max_attribute, rng),
        static_cast<int>(rng.UniformInt(1, config.max_user_capacity)));
  }
  const ConflictGraph initial_conflicts =
      ConflictsFromSchedule(schedule, config.speed_kmph);
  for (EventId v = 0; v < initial_conflicts.num_events(); ++v) {
    for (const EventId w : initial_conflicts.ConflictsOf(v)) {
      if (w > v) builder.AddConflict(v, w);
    }
  }

  MutationTrace trace{builder.Build(), {}};

  // ----- churn: generate against a live replica of the instance -----
  DynamicInstance live(trace.initial);
  IdPool live_events, live_users;
  for (EventId v = 0; v < config.initial_events; ++v) live_events.Add(v);
  for (UserId u = 0; u < config.initial_users; ++u) live_users.Add(u);

  auto emit = [&](Mutation mutation) {
    live.Apply(mutation);
    trace.mutations.push_back(std::move(mutation));
  };

  enum {
    kAddUser,
    kRemoveUser,
    kAddEvent,
    kRemoveEvent,
    kAddConflict,
    kSetEventCapacity,
    kSetUserCapacity,
    kNumKinds
  };
  const double weights[kNumKinds] = {
      config.w_add_user,           config.w_remove_user,
      config.w_add_event,          config.w_remove_event,
      config.w_add_conflict,       config.w_set_event_capacity,
      config.w_set_user_capacity};

  while (static_cast<int>(trace.mutations.size()) < config.num_mutations) {
    // Mask off momentarily inapplicable kinds, then sample the mixture.
    double applicable[kNumKinds];
    double total = 0.0;
    for (int k = 0; k < kNumKinds; ++k) {
      bool ok = weights[k] > 0.0;
      if (k == kRemoveUser || k == kSetUserCapacity) {
        ok = ok && live_users.size() > 0;
      }
      if (k == kRemoveEvent || k == kSetEventCapacity) {
        ok = ok && live_events.size() > 0;
      }
      if (k == kAddConflict) ok = ok && live_events.size() >= 2;
      applicable[k] = ok ? weights[k] : 0.0;
      total += applicable[k];
    }
    GEACC_CHECK_GT(total, 0.0) << "no applicable mutation kind";
    double pick = rng.UniformReal(0.0, total);
    int kind = 0;
    while (kind + 1 < kNumKinds && pick >= applicable[kind]) {
      pick -= applicable[kind];
      ++kind;
    }
    if (applicable[kind] <= 0.0) continue;

    switch (kind) {
      case kAddUser: {
        emit(Mutation::AddUser(
            UniformAttributes(config.dim, config.max_attribute, rng),
            static_cast<int>(rng.UniformInt(1, config.max_user_capacity))));
        live_users.Add(live.user_slots() - 1);
        break;
      }
      case kRemoveUser: {
        const UserId u = live_users.Sample(rng);
        emit(Mutation::RemoveUser(u));
        live_users.Remove(u);
        break;
      }
      case kAddEvent: {
        const ScheduledEvent scheduled = DrawScheduledEvent(config, rng);
        emit(Mutation::AddEvent(
            UniformAttributes(config.dim, config.max_attribute, rng),
            static_cast<int>(rng.UniformInt(1, config.max_event_capacity))));
        const EventId v = live.event_slots() - 1;
        live_events.Add(v);
        if (static_cast<size_t>(v) >= schedule.size()) {
          schedule.resize(v + 1);
        }
        schedule[v] = scheduled;
        // The timetable decides who this event clashes with; emit the
        // implied conflicts immediately (they may overshoot
        // num_mutations rather than leave the structure half-applied).
        for (const EventId w : live_events.ids()) {
          if (w == v) continue;
          if (EventsConflict(scheduled, schedule[w], config.speed_kmph)) {
            emit(Mutation::AddConflict(v, w));
          }
        }
        break;
      }
      case kRemoveEvent: {
        const EventId v = live_events.Sample(rng);
        emit(Mutation::RemoveEvent(v));
        live_events.Remove(v);
        break;
      }
      case kAddConflict: {
        // Conflict churn: a uniformly sampled live, not-yet-conflicting
        // pair. Bounded rejection; a saturated graph just skips a step.
        for (int attempt = 0; attempt < 32; ++attempt) {
          const EventId a = live_events.Sample(rng);
          const EventId b = live_events.Sample(rng);
          if (a == b || live.conflicts().AreConflicting(a, b)) continue;
          emit(Mutation::AddConflict(a, b));
          break;
        }
        break;
      }
      case kSetEventCapacity: {
        emit(Mutation::SetEventCapacity(
            live_events.Sample(rng),
            static_cast<int>(rng.UniformInt(1, config.max_event_capacity))));
        break;
      }
      case kSetUserCapacity: {
        emit(Mutation::SetUserCapacity(
            live_users.Sample(rng),
            static_cast<int>(rng.UniformInt(1, config.max_user_capacity))));
        break;
      }
      default:
        GEACC_CHECK(false) << "unreachable mutation kind";
    }
  }

  return trace;
}

}  // namespace geacc
