// Tests for the shared interval-overlap / travel-gap conflict predicate
// (core/time_window.h) and its timetable front-end (gen/schedule.h).

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/time_window.h"
#include "gen/schedule.h"
#include "util/rng.h"

namespace geacc {
namespace {

TimeWindow Window(double start, double end, double x = 0.0, double y = 0.0) {
  return TimeWindow{start, end, x, y};
}

TEST(WindowsConflict, OverlappingIntervalsConflict) {
  EXPECT_TRUE(WindowsConflict(Window(1.0, 3.0), Window(2.0, 4.0), 0.0));
  EXPECT_TRUE(WindowsConflict(Window(2.0, 4.0), Window(1.0, 3.0), 0.0));
  // Containment is overlap too.
  EXPECT_TRUE(WindowsConflict(Window(0.0, 10.0), Window(4.0, 5.0), 0.0));
}

TEST(WindowsConflict, SharedEndpointDoesNotOverlap) {
  // Intervals are half-open [start, end): back-to-back events at the same
  // venue are attendable.
  EXPECT_FALSE(WindowsConflict(Window(1.0, 3.0), Window(3.0, 5.0), 0.0));
  EXPECT_FALSE(WindowsConflict(Window(3.0, 5.0), Window(1.0, 3.0), 0.0));
}

TEST(WindowsConflict, DegenerateWindowActsAsAnInstant) {
  // A zero-length [t, t) window behaves like the instant t: it conflicts
  // when strictly inside another interval, but not when it sits on a
  // boundary or coincides with another instant.
  EXPECT_TRUE(WindowsConflict(Window(2.0, 2.0), Window(1.0, 3.0), 0.0));
  EXPECT_FALSE(WindowsConflict(Window(2.0, 2.0), Window(2.0, 2.0), 0.0));
  EXPECT_FALSE(WindowsConflict(Window(2.0, 2.0), Window(2.0, 4.0), 0.0));
}

TEST(WindowsConflict, TravelRuleBridgesShortGaps) {
  // 10 km apart, 1 h gap: needs ≥ 10 km/h to make it.
  const TimeWindow a = Window(0.0, 2.0, 0.0, 0.0);
  const TimeWindow b = Window(3.0, 5.0, 10.0, 0.0);
  EXPECT_TRUE(WindowsConflict(a, b, 5.0));    // too slow: conflict
  EXPECT_FALSE(WindowsConflict(a, b, 20.0));  // fast enough
  EXPECT_TRUE(WindowsConflict(b, a, 5.0));    // symmetric
}

TEST(WindowsConflict, NonPositiveSpeedDisablesTravelRule) {
  // Same venues and gap as above; with the rule off only pure interval
  // overlap counts, so neither zero nor negative speed conflicts.
  const TimeWindow a = Window(0.0, 2.0, 0.0, 0.0);
  const TimeWindow b = Window(3.0, 5.0, 10.0, 0.0);
  EXPECT_FALSE(WindowsConflict(a, b, 0.0));
  EXPECT_FALSE(WindowsConflict(a, b, -30.0));
}

TEST(WindowsConflict, SharedEndpointSameVenueWithTravelRule) {
  // Back-to-back at the same venue: gap is 0 but distance is 0 too.
  const TimeWindow a = Window(1.0, 3.0, 5.0, 5.0);
  const TimeWindow b = Window(3.0, 5.0, 5.0, 5.0);
  EXPECT_FALSE(WindowsConflict(a, b, 30.0));
}

TEST(EventsConflict, DelegatesToWindowsConflict) {
  // gen/schedule.h's ScheduledEvent is an alias of TimeWindow and the
  // predicate must agree with the shared implementation.
  Rng rng(7);
  const std::vector<ScheduledEvent> events =
      RandomSchedule(12, 24.0, 1.0, 3.0, 20.0, rng);
  for (size_t i = 0; i < events.size(); ++i) {
    for (size_t j = i + 1; j < events.size(); ++j) {
      for (const double speed : {0.0, 15.0, 60.0}) {
        EXPECT_EQ(EventsConflict(events[i], events[j], speed),
                  WindowsConflict(events[i], events[j], speed))
            << "pair (" << i << ", " << j << ") speed " << speed;
      }
    }
  }
}

TEST(RandomSchedule, RespectsDurationAndHorizonBounds) {
  Rng rng(11);
  const double horizon = 12.0, min_dur = 1.0, max_dur = 3.0, city = 30.0;
  const std::vector<ScheduledEvent> events =
      RandomSchedule(200, horizon, min_dur, max_dur, city, rng);
  ASSERT_EQ(events.size(), 200u);
  for (const ScheduledEvent& e : events) {
    EXPECT_GE(e.start_hours, 0.0);
    EXPECT_LE(e.start_hours, horizon);
    const double duration = e.end_hours - e.start_hours;
    EXPECT_GE(duration, min_dur);
    EXPECT_LE(duration, max_dur);
    EXPECT_GE(e.x_km, 0.0);
    EXPECT_LE(e.x_km, city);
    EXPECT_GE(e.y_km, 0.0);
    EXPECT_LE(e.y_km, city);
  }
}

TEST(RandomSchedule, IsDeterministicPerSeed) {
  Rng a(3), b(3), c(4);
  const auto first = RandomSchedule(20, 24.0, 1.0, 2.0, 10.0, a);
  const auto second = RandomSchedule(20, 24.0, 1.0, 2.0, 10.0, b);
  const auto third = RandomSchedule(20, 24.0, 1.0, 2.0, 10.0, c);
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].start_hours, second[i].start_hours) << i;
    EXPECT_EQ(first[i].end_hours, second[i].end_hours) << i;
    EXPECT_EQ(first[i].x_km, second[i].x_km) << i;
    EXPECT_EQ(first[i].y_km, second[i].y_km) << i;
  }
  bool any_different = false;
  for (size_t i = 0; i < first.size(); ++i) {
    if (first[i].start_hours != third[i].start_hours) any_different = true;
  }
  EXPECT_TRUE(any_different) << "seed 4 produced seed 3's schedule";
}

TEST(ConflictsFromSchedule, MatchesPairwisePredicate) {
  Rng rng(5);
  const std::vector<ScheduledEvent> events =
      RandomSchedule(15, 10.0, 1.0, 4.0, 25.0, rng);
  const double speed = 25.0;
  const ConflictGraph graph =
      ConflictsFromSchedule(events, speed);
  for (int i = 0; i < static_cast<int>(events.size()); ++i) {
    for (int j = i + 1; j < static_cast<int>(events.size()); ++j) {
      EXPECT_EQ(graph.AreConflicting(i, j),
                EventsConflict(events[i], events[j], speed))
          << "pair (" << i << ", " << j << ")";
    }
  }
}

}  // namespace
}  // namespace geacc
