// Golden tests pinning the paper's running example (Table I, Examples
// 1–3): the exact optimum is 4.39, MinCostFlow-GEACC returns 4.13, and
// Greedy-GEACC returns 4.28.

#include <gtest/gtest.h>

#include "algo/greedy_solver.h"
#include "algo/min_cost_flow_solver.h"
#include "algo/prune_solver.h"
#include "algo/solvers.h"
#include "tests/test_util.h"

namespace geacc {
namespace {

constexpr double kTol = 1e-9;

TEST(PaperExample, InstanceShape) {
  const Instance instance = testing::PaperTableIExample();
  EXPECT_EQ(instance.num_events(), 3);
  EXPECT_EQ(instance.num_users(), 5);
  EXPECT_EQ(instance.max_user_capacity(), 3);
  EXPECT_TRUE(instance.conflicts().AreConflicting(0, 2));
  EXPECT_FALSE(instance.conflicts().AreConflicting(0, 1));
  EXPECT_NEAR(instance.Similarity(0, 0), 0.93, kTol);
  EXPECT_NEAR(instance.Similarity(1, 0), 0.0, kTol);
  EXPECT_NEAR(instance.Similarity(2, 4), 0.68, kTol);
  EXPECT_EQ(instance.Validate(), "");
}

TEST(PaperExample, ExactOptimumIs439) {
  const Instance instance = testing::PaperTableIExample();
  for (const char* name : {"prune", "exhaustive", "bruteforce"}) {
    const auto solver = CreateSolver(name);
    const SolveResult result = solver->Solve(instance);
    EXPECT_EQ(result.arrangement.Validate(instance), "") << name;
    EXPECT_NEAR(result.arrangement.MaxSum(instance), 4.39, kTol) << name;
  }
}

TEST(PaperExample, MinCostFlowReturns413) {
  const MinCostFlowSolver solver;
  const SolveResult result = solver.Solve(testing::PaperTableIExample());
  const Instance instance = testing::PaperTableIExample();
  EXPECT_EQ(result.arrangement.Validate(instance), "");
  EXPECT_NEAR(result.arrangement.MaxSum(instance), 4.13, kTol);
}

// Example 2: the conflict-oblivious matching M_∅ assigns u1 to both v1 and
// v3 (which the resolution step then untangles), and upper-bounds OPT
// (Corollary 1).
TEST(PaperExample, ConflictObliviousMatchingMatchesExample2) {
  const Instance instance = testing::PaperTableIExample();
  const MinCostFlowSolver solver;
  SolverStats stats;
  const Arrangement m0 = solver.SolveWithoutConflicts(instance, &stats);
  EXPECT_TRUE(m0.Contains(0, 0));  // {v1, u1}
  EXPECT_TRUE(m0.Contains(2, 0));  // {v3, u1}
  EXPECT_GE(m0.MaxSum(instance), 4.39 - kTol);
}

TEST(PaperExample, GreedyReturns428) {
  for (const char* index : {"linear", "kdtree"}) {
    SolverOptions options;
    options.index = index;
    const GreedySolver solver(options);
    const Instance instance = testing::PaperTableIExample();
    const SolveResult result = solver.Solve(instance);
    EXPECT_EQ(result.arrangement.Validate(instance), "") << index;
    EXPECT_NEAR(result.arrangement.MaxSum(instance), 4.28, kTol) << index;
  }
}

// Example 3's first iterations: {v1,u1} is matched first, then {v3,u1} is
// popped but rejected because v3 conflicts with the already-matched v1.
TEST(PaperExample, GreedyMatchesExample3Trace) {
  const GreedySolver solver;
  const Instance instance = testing::PaperTableIExample();
  const SolveResult result = solver.Solve(instance);
  EXPECT_TRUE(result.arrangement.Contains(0, 0));   // {v1, u1}
  EXPECT_FALSE(result.arrangement.Contains(2, 0));  // {v3, u1} rejected
  EXPECT_TRUE(result.arrangement.Contains(0, 2));   // {v1, u3} (3rd pop)
}

// Both approximation guarantees hold on the example (they must — the
// optimum is known): Greedy ≥ OPT/(1+α), MCF ≥ OPT/α with α = max c_u = 3.
TEST(PaperExample, ApproximationRatiosHold) {
  const Instance instance = testing::PaperTableIExample();
  EXPECT_GE(4.28, 4.39 / (1 + 3) - kTol);
  EXPECT_GE(4.13, 4.39 / 3 - kTol);
}

}  // namespace
}  // namespace geacc
