#include "gen/schedule.h"

#include <algorithm>

#include "util/check.h"

namespace geacc {

bool EventsConflict(const ScheduledEvent& a, const ScheduledEvent& b,
                    double speed_kmph) {
  return WindowsConflict(a, b, speed_kmph);
}

ConflictGraph ConflictsFromSchedule(const std::vector<ScheduledEvent>& events,
                                    double speed_kmph) {
  const int n = static_cast<int>(events.size());
  ConflictGraph graph(n);
  for (int a = 0; a < n; ++a) {
    GEACC_CHECK_LE(events[a].start_hours, events[a].end_hours)
        << "event " << a << " ends before it starts";
    for (int b = a + 1; b < n; ++b) {
      if (EventsConflict(events[a], events[b], speed_kmph)) {
        graph.AddConflict(a, b);
      }
    }
  }
  return graph;
}

std::vector<ScheduledEvent> RandomSchedule(int count, double horizon_hours,
                                           double min_duration_hours,
                                           double max_duration_hours,
                                           double city_km, Rng& rng) {
  GEACC_CHECK_GE(count, 0);
  GEACC_CHECK_LE(min_duration_hours, max_duration_hours);
  std::vector<ScheduledEvent> events;
  events.reserve(count);
  for (int i = 0; i < count; ++i) {
    ScheduledEvent event;
    const double duration =
        rng.UniformReal(min_duration_hours, max_duration_hours);
    event.start_hours =
        rng.UniformReal(0.0, std::max(0.0, horizon_hours - duration));
    event.end_hours = event.start_hours + duration;
    event.x_km = rng.UniformReal(0.0, city_km);
    event.y_km = rng.UniformReal(0.0, city_km);
    events.push_back(event);
  }
  return events;
}

}  // namespace geacc
