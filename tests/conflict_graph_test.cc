// Unit and property tests for the conflict graph.

#include <gtest/gtest.h>

#include "core/conflict_graph.h"
#include "util/rng.h"

namespace geacc {
namespace {

TEST(ConflictGraph, AddAndQuery) {
  ConflictGraph graph(4);
  EXPECT_FALSE(graph.AreConflicting(0, 1));
  graph.AddConflict(0, 1);
  EXPECT_TRUE(graph.AreConflicting(0, 1));
  EXPECT_TRUE(graph.AreConflicting(1, 0));  // symmetric
  EXPECT_FALSE(graph.AreConflicting(0, 2));
  EXPECT_FALSE(graph.AreConflicting(2, 2));  // no self conflicts
  EXPECT_EQ(graph.num_conflict_pairs(), 1);
}

TEST(ConflictGraph, DuplicateInsertIsNoOp) {
  ConflictGraph graph(3);
  graph.AddConflict(1, 2);
  graph.AddConflict(2, 1);
  EXPECT_EQ(graph.num_conflict_pairs(), 1);
  EXPECT_EQ(graph.ConflictsOf(1).size(), 1u);
}

TEST(ConflictGraph, AdjacencySortedAscending) {
  ConflictGraph graph(5);
  graph.AddConflict(2, 4);
  graph.AddConflict(2, 0);
  graph.AddConflict(2, 3);
  EXPECT_EQ(graph.ConflictsOf(2), (std::vector<EventId>{0, 3, 4}));
}

TEST(ConflictGraph, SelfConflictDies) {
  ConflictGraph graph(3);
  EXPECT_DEATH(graph.AddConflict(1, 1), "cannot conflict with itself");
}

TEST(ConflictGraph, OutOfRangeDies) {
  ConflictGraph graph(3);
  EXPECT_DEATH(graph.AddConflict(0, 3), "out of range");
}

TEST(ConflictGraph, Density) {
  ConflictGraph graph(4);  // 6 possible pairs
  EXPECT_DOUBLE_EQ(graph.Density(), 0.0);
  graph.AddConflict(0, 1);
  graph.AddConflict(2, 3);
  graph.AddConflict(0, 3);
  EXPECT_DOUBLE_EQ(graph.Density(), 0.5);
}

TEST(ConflictGraph, CompleteGraph) {
  const ConflictGraph graph = ConflictGraph::Complete(5);
  EXPECT_EQ(graph.num_conflict_pairs(), 10);
  EXPECT_DOUBLE_EQ(graph.Density(), 1.0);
  for (EventId a = 0; a < 5; ++a) {
    for (EventId b = 0; b < 5; ++b) {
      EXPECT_EQ(graph.AreConflicting(a, b), a != b);
    }
  }
}

TEST(ConflictGraph, EdgeCasesSmallGraphs) {
  Rng rng(1);
  EXPECT_EQ(ConflictGraph::Random(0, 0.5, rng).num_conflict_pairs(), 0);
  EXPECT_EQ(ConflictGraph::Random(1, 1.0, rng).num_conflict_pairs(), 0);
  EXPECT_DOUBLE_EQ(ConflictGraph(1).Density(), 0.0);
}

class ConflictDensityTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(ConflictDensityTest, RandomHitsExactTarget) {
  const auto& [n, density] = GetParam();
  Rng rng(99);
  const ConflictGraph graph = ConflictGraph::Random(n, density, rng);
  const int64_t total = static_cast<int64_t>(n) * (n - 1) / 2;
  const auto expected = static_cast<int64_t>(density * total + 0.5);
  EXPECT_EQ(graph.num_conflict_pairs(), expected);
  // All pairs valid and distinct by construction; spot-check symmetry.
  for (EventId v = 0; v < n; ++v) {
    for (const EventId w : graph.ConflictsOf(v)) {
      ASSERT_TRUE(graph.AreConflicting(w, v));
      ASSERT_NE(w, v);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConflictDensityTest,
    ::testing::Combine(::testing::Values(2, 5, 20, 100),
                       ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0)));

TEST(ConflictGraph, RandomIsDeterministicPerSeed) {
  Rng rng_a(5), rng_b(5), rng_c(6);
  const ConflictGraph a = ConflictGraph::Random(30, 0.3, rng_a);
  const ConflictGraph b = ConflictGraph::Random(30, 0.3, rng_b);
  const ConflictGraph c = ConflictGraph::Random(30, 0.3, rng_c);
  int diff_from_c = 0;
  for (EventId v = 0; v < 30; ++v) {
    ASSERT_EQ(a.ConflictsOf(v), b.ConflictsOf(v));
    if (a.ConflictsOf(v) != c.ConflictsOf(v)) ++diff_from_c;
  }
  EXPECT_GT(diff_from_c, 0);  // different seed differs somewhere
}

TEST(ConflictGraph, ByteEstimateGrowsWithEdges) {
  Rng rng(7);
  const ConflictGraph sparse = ConflictGraph::Random(50, 0.1, rng);
  const ConflictGraph dense = ConflictGraph::Random(50, 0.9, rng);
  EXPECT_GT(dense.ByteEstimate(), sparse.ByteEstimate());
}

}  // namespace
}  // namespace geacc
