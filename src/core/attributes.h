// Dense row-major attribute storage for events and users, plus a lazily
// materialized blocked SoA mirror for the batched similarity kernels.
//
// Each entity carries a d-dimensional attribute vector l ∈ [0, T]^d
// (paper Definitions 1–2). Rows are stored contiguously so that per-pair
// similarity evaluation stays cache-friendly; batch evaluation (one query
// against many rows) instead reads the blocked mirror, whose layout is
// defined by src/simd/kernels.h and DESIGN.md §15.
//
// Finiteness invariant: every attribute that reaches a solver is finite.
// The io layer rejects non-finite values at all untrusted boundaries
// (instance_io / trace_io / wire), and the generators draw from bounded
// distributions — the SIMD kernels rely on this (kernels.h §non-finite).

#ifndef GEACC_CORE_ATTRIBUTES_H_
#define GEACC_CORE_ATTRIBUTES_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "util/check.h"

namespace geacc {

// Immutable blocked SoA snapshot of an attribute matrix: ceil(rows/8)
// blocks of 8 rows, dimension-major within a block, 64-byte-aligned base,
// zero-padded tail lanes — exactly the layout simd::Batch* kernels
// consume (simd/kernels.h documents the contract). Built in O(rows × dim)
// by copying the row-major data; ~same footprint as the source matrix
// (plus tail padding).
class BlockedAttributes {
 public:
  // Builds the mirror of `rows` × `dim` row-major `data`.
  BlockedAttributes(const double* data, int64_t rows, int dim);

  // 64-byte-aligned base pointer; BlockedSize(rows, dim) doubles.
  const double* data() const { return base_; }
  int64_t rows() const { return rows_; }
  int dim() const { return dim_; }
  int64_t num_blocks() const;

  // Heap bytes held by the mirror (logical memory accounting).
  uint64_t ByteEstimate() const;

 private:
  std::unique_ptr<double[]> storage_;  // over-allocated for alignment
  double* base_ = nullptr;
  int64_t rows_ = 0;
  int dim_ = 0;
};

class AttributeMatrix {
 public:
  AttributeMatrix() : AttributeMatrix(0, 0) {}

  // Allocates rows × dim zeros.
  AttributeMatrix(int rows, int dim)
      : rows_(rows), dim_(dim),
        data_(static_cast<size_t>(rows) * static_cast<size_t>(dim), 0.0),
        blocked_(std::make_unique<BlockedCache>()) {
    GEACC_CHECK_GE(rows, 0);
    GEACC_CHECK_GE(dim, 0);
  }

  // Copies/moves transfer the row-major payload only; the blocked mirror
  // is per-object state and starts cold in the destination.
  AttributeMatrix(const AttributeMatrix& other)
      : rows_(other.rows_), dim_(other.dim_), data_(other.data_),
        blocked_(std::make_unique<BlockedCache>()) {}
  AttributeMatrix(AttributeMatrix&& other) noexcept
      : rows_(other.rows_), dim_(other.dim_), data_(std::move(other.data_)),
        blocked_(std::make_unique<BlockedCache>()) {
    other.rows_ = 0;
  }
  AttributeMatrix& operator=(const AttributeMatrix& other) {
    if (this != &other) {
      rows_ = other.rows_;
      dim_ = other.dim_;
      data_ = other.data_;
      InvalidateBlocked();
    }
    return *this;
  }
  AttributeMatrix& operator=(AttributeMatrix&& other) noexcept {
    if (this != &other) {
      rows_ = other.rows_;
      dim_ = other.dim_;
      data_ = std::move(other.data_);
      other.rows_ = 0;
      InvalidateBlocked();
    }
    return *this;
  }

  // Builds from explicit rows; every row must have the same length.
  static AttributeMatrix FromRows(const std::vector<std::vector<double>>& rows);

  // Appends `row` (length dim()) as a new last row; amortized O(d).
  // Invalidates pointers previously returned by Row()/MutableRow() and
  // drops the blocked mirror.
  void AppendRow(const std::vector<double>& row);

  int rows() const { return rows_; }
  int dim() const { return dim_; }

  const double* Row(int i) const {
    GEACC_DCHECK(i >= 0 && i < rows_);
    return data_.data() + static_cast<size_t>(i) * dim_;
  }

  // Mutable access drops the blocked mirror at CALL time. Writing through
  // a pointer obtained before a later Blocked() call leaves that mirror
  // stale — re-fetch MutableRow() after any Blocked() use. (All in-tree
  // writers mutate and re-solve strictly in sequence: generators and io
  // during construction, dyn updates between solves.)
  double* MutableRow(int i) {
    GEACC_DCHECK(i >= 0 && i < rows_);
    InvalidateBlocked();
    return data_.data() + static_cast<size_t>(i) * dim_;
  }

  double At(int i, int j) const {
    GEACC_DCHECK(j >= 0 && j < dim_);
    return Row(i)[j];
  }

  void Set(int i, int j, double value) {
    GEACC_DCHECK(j >= 0 && j < dim_);
    MutableRow(i)[j] = value;
  }

  // The blocked SoA mirror of the current contents, built on first use
  // (O(rows × dim)) and cached until the next mutation. Safe to call
  // concurrently from read-only workers (double-checked, one acquire
  // load when warm); must not race with mutators — the matrix, like its
  // row-major API, is single-writer.
  const BlockedAttributes& Blocked() const;

  // Heap bytes held by the matrix, including a warm blocked mirror.
  uint64_t ByteEstimate() const {
    const uint64_t base =
        static_cast<uint64_t>(data_.capacity()) * sizeof(double);
    const BlockedAttributes* view =
        blocked_->ready.load(std::memory_order_acquire);
    return base + (view != nullptr ? view->ByteEstimate() : 0);
  }

 private:
  struct BlockedCache {
    std::mutex mu;
    std::atomic<const BlockedAttributes*> ready{nullptr};
    std::unique_ptr<BlockedAttributes> view;
  };

  // Mutator-side: drop the mirror. Not safe against concurrent readers
  // (neither is the mutation that triggered it).
  void InvalidateBlocked() {
    if (blocked_->ready.load(std::memory_order_relaxed) != nullptr) {
      blocked_->ready.store(nullptr, std::memory_order_release);
      blocked_->view.reset();
    }
  }

  int rows_;
  int dim_;
  std::vector<double> data_;
  mutable std::unique_ptr<BlockedCache> blocked_;
};

// Squared Euclidean distance between two length-`dim` vectors: one pass,
// O(dim), exact IEEE mul/add per term in ascending-j order — the
// reference association the batched kernels reproduce (simd/kernels.h).
double SquaredEuclideanDistance(const double* a, const double* b, int dim);

}  // namespace geacc

#endif  // GEACC_CORE_ATTRIBUTES_H_
