file(REMOVE_RECURSE
  "CMakeFiles/fig5_effectiveness.dir/fig5_effectiveness.cc.o"
  "CMakeFiles/fig5_effectiveness.dir/fig5_effectiveness.cc.o.d"
  "fig5_effectiveness"
  "fig5_effectiveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_effectiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
