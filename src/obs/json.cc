#include "obs/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>

namespace geacc::obs {
namespace {

void AppendEscaped(std::string& out, const std::string& text) {
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned char>(c));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void AppendDouble(std::string& out, double value) {
  if (!std::isfinite(value)) {
    // JSON has no Inf/NaN; null is the conventional stand-in.
    out += "null";
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.*g",
                std::numeric_limits<double>::max_digits10, value);
  out += buffer;
  // Keep the value recognizably floating-point after a round trip.
  if (out.find_first_of(".eE", out.size() - std::strlen(buffer)) ==
      std::string::npos) {
    out += ".0";
  }
}

void AppendNewlineIndent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out.push_back('\n');
  out.append(static_cast<size_t>(indent) * depth, ' ');
}

// Recursive-descent parser over the raw text. Tracks a byte offset for
// error messages; depth is bounded to reject pathological nesting.
class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool Run(JsonValue* value) {
    if (!ParseValue(value, 0)) return false;
    SkipWhitespace();
    if (pos_ != text_.size()) return Fail("trailing content after document");
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool ParseValue(JsonValue* value, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(value, depth);
      case '[':
        return ParseArray(value, depth);
      case '"': {
        std::string text;
        if (!ParseString(&text)) return false;
        *value = JsonValue(std::move(text));
        return true;
      }
      case 't':
        if (!Consume("true")) return Fail("invalid literal");
        *value = JsonValue(true);
        return true;
      case 'f':
        if (!Consume("false")) return Fail("invalid literal");
        *value = JsonValue(false);
        return true;
      case 'n':
        if (!Consume("null")) return Fail("invalid literal");
        *value = JsonValue();
        return true;
      default:
        return ParseNumber(value);
    }
  }

  bool ParseObject(JsonValue* value, int depth) {
    ++pos_;  // '{'
    *value = JsonValue::Object();
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWhitespace();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      if (!ParseString(&key)) return false;
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':' after object key");
      }
      ++pos_;
      JsonValue member;
      if (!ParseValue(&member, depth + 1)) return false;
      value->Set(key, std::move(member));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  bool ParseArray(JsonValue* value, int depth) {
    ++pos_;  // '['
    *value = JsonValue::Array();
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue item;
      if (!ParseValue(&item, depth + 1)) return false;
      value->Append(std::move(item));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      if (++pos_ >= text_.size()) return Fail("unterminated escape");
      switch (text_[pos_]) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          unsigned code = 0;
          if (!ParseHex4(&code)) return false;
          AppendUtf8(*out, code);
          break;
        }
        default:
          return Fail("invalid escape");
      }
      ++pos_;
    }
    return Fail("unterminated string");
  }

  bool ParseHex4(unsigned* code) {
    *code = 0;
    for (int i = 0; i < 4; ++i) {
      if (++pos_ >= text_.size()) return Fail("truncated \\u escape");
      const char c = text_[pos_];
      *code <<= 4;
      if (c >= '0' && c <= '9') {
        *code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        *code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        *code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return Fail("invalid \\u escape");
      }
    }
    return true;
  }

  static void AppendUtf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  bool ParseNumber(JsonValue* value) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    bool is_double = false;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      is_double = true;
      ++pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    if (first == last) return Fail("invalid number");
    if (!is_double) {
      int64_t parsed = 0;
      const auto [ptr, ec] = std::from_chars(first, last, parsed);
      if (ec == std::errc() && ptr == last) {
        *value = JsonValue(parsed);
        return true;
      }
      // Out-of-int64-range integer literal: fall through to double.
    }
    double parsed = 0.0;
    const auto [ptr, ec] = std::from_chars(first, last, parsed);
    if (ec != std::errc() || ptr != last) return Fail("invalid number");
    *value = JsonValue(parsed);
    return true;
  }

  bool Consume(const char* literal) {
    const size_t length = std::strlen(literal);
    if (text_.compare(pos_, length, literal) != 0) return false;
    pos_ += length;
    return true;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Fail(const std::string& message) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = message + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  const std::string& text_;
  std::string* error_;
  size_t pos_ = 0;
};

}  // namespace

void JsonValue::Set(const std::string& key, JsonValue value) {
  for (auto& [name, member] : members_) {
    if (name == key) {
      member = std::move(value);
      return;
    }
  }
  members_.emplace_back(key, std::move(value));
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  for (const auto& [name, member] : members_) {
    if (name == key) return &member;
  }
  return nullptr;
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(out, indent, 0);
  return out;
}

void JsonValue::DumpTo(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      return;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Type::kInt:
      out += std::to_string(int_);
      return;
    case Type::kDouble:
      AppendDouble(out, double_);
      return;
    case Type::kString:
      AppendEscaped(out, string_);
      return;
    case Type::kArray: {
      if (items_.empty()) {
        out += "[]";
        return;
      }
      out.push_back('[');
      bool first = true;
      for (const JsonValue& item : items_) {
        if (!first) out.push_back(',');
        first = false;
        AppendNewlineIndent(out, indent, depth + 1);
        item.DumpTo(out, indent, depth + 1);
      }
      AppendNewlineIndent(out, indent, depth);
      out.push_back(']');
      return;
    }
    case Type::kObject: {
      if (members_.empty()) {
        out += "{}";
        return;
      }
      out.push_back('{');
      bool first = true;
      for (const auto& [key, member] : members_) {
        if (!first) out.push_back(',');
        first = false;
        AppendNewlineIndent(out, indent, depth + 1);
        AppendEscaped(out, key);
        out.push_back(':');
        if (indent > 0) out.push_back(' ');
        member.DumpTo(out, indent, depth + 1);
      }
      AppendNewlineIndent(out, indent, depth);
      out.push_back('}');
      return;
    }
  }
}

bool JsonValue::Parse(const std::string& text, JsonValue* value,
                      std::string* error) {
  if (error != nullptr) error->clear();
  return Parser(text, error).Run(value);
}

}  // namespace geacc::obs
