// Tests for the online (user-at-a-time) arrangement extension.

#include <gtest/gtest.h>

#include "algo/online_greedy_solver.h"
#include "algo/solvers.h"
#include "tests/test_util.h"

namespace geacc {
namespace {

using geacc::testing::MakeTableInstance;
using geacc::testing::SmallRandomInstance;

TEST(OnlineArranger, AssignsBestFeasibleEventsOnArrival) {
  // User 0 (capacity 2): events ranked 0.9, 0.8, 0.5; 0 ⊥ 1 → takes {0, 2}.
  const Instance instance = MakeTableInstance(
      {{0.9}, {0.8}, {0.5}}, {1, 1, 1}, {2}, {{0, 1}});
  OnlineArranger arranger(instance);
  const std::vector<EventId> taken = arranger.ArriveUser(0);
  EXPECT_EQ(taken, (std::vector<EventId>{0, 2}));
  EXPECT_EQ(arranger.arrangement().size(), 2);
}

TEST(OnlineArranger, EarlyArrivalsConsumeCapacity) {
  // One seat, two users: the earlier arrival wins it even with lower
  // interest — the online pathology the global solvers avoid.
  const Instance instance =
      MakeTableInstance({{0.2, 0.9}}, {1}, {1, 1}, {});
  OnlineArranger arranger(instance);
  EXPECT_EQ(arranger.ArriveUser(0), (std::vector<EventId>{0}));
  EXPECT_TRUE(arranger.ArriveUser(1).empty());  // seat gone
  EXPECT_EQ(arranger.remaining_event_capacity(0), 0);
}

TEST(OnlineArranger, DoubleArrivalDies) {
  const Instance instance = MakeTableInstance({{0.5}}, {1}, {1}, {});
  OnlineArranger arranger(instance);
  arranger.ArriveUser(0);
  EXPECT_DEATH(arranger.ArriveUser(0), "arrived twice");
}

TEST(OnlineArranger, OutOfRangeIdsDie) {
  const Instance instance = MakeTableInstance({{0.5}}, {1}, {1}, {});
  OnlineArranger arranger(instance);
  EXPECT_DEATH(arranger.ArriveUser(1), "out of range");
  EXPECT_DEATH(arranger.ArriveUser(-1), "out of range");
  EXPECT_DEATH(arranger.remaining_event_capacity(1), "out of range");
}

TEST(OnlineGreedySolver, MatchesIncrementalEngine) {
  const Instance instance = SmallRandomInstance(6, 15, 0.3, 3, 4);
  const auto solver_result =
      CreateSolver("online-greedy")->Solve(instance).arrangement;
  OnlineArranger arranger(instance);
  for (UserId u = 0; u < instance.num_users(); ++u) arranger.ArriveUser(u);
  EXPECT_EQ(solver_result.SortedPairs(),
            arranger.arrangement().SortedPairs());
}

TEST(OnlineGreedySolver, FeasibleAndBoundedByOptimum) {
  for (uint64_t seed = 0; seed < 12; ++seed) {
    const Instance instance = SmallRandomInstance(4, 7, 0.4, 3, seed + 70);
    const SolveResult online =
        CreateSolver("online-greedy")->Solve(instance);
    ASSERT_EQ(online.arrangement.Validate(instance), "") << seed;
    const double optimum = CreateSolver("prune")
                               ->Solve(instance)
                               .arrangement.MaxSum(instance);
    EXPECT_LE(online.arrangement.MaxSum(instance), optimum + 1e-9) << seed;
  }
}

TEST(OnlineGreedySolver, GlobalGreedyWinsOnContendedSeat) {
  // The global view reassigns the contended seat to the better user.
  const Instance instance =
      MakeTableInstance({{0.2, 0.9}}, {1}, {1, 1}, {});
  const double online = CreateSolver("online-greedy")
                            ->Solve(instance)
                            .arrangement.MaxSum(instance);
  const double global =
      CreateSolver("greedy")->Solve(instance).arrangement.MaxSum(instance);
  EXPECT_NEAR(online, 0.2, 1e-12);
  EXPECT_NEAR(global, 0.9, 1e-12);
}

TEST(OnlineGreedySolver, TypicallyTrailsGlobalGreedyOnAggregate) {
  // Across many random instances the global view should win on average
  // (it can lose on specific instances; compare sums).
  double online_total = 0.0, global_total = 0.0;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    const Instance instance = SmallRandomInstance(5, 12, 0.3, 3, seed + 200);
    online_total += CreateSolver("online-greedy")
                        ->Solve(instance)
                        .arrangement.MaxSum(instance);
    global_total +=
        CreateSolver("greedy")->Solve(instance).arrangement.MaxSum(instance);
  }
  EXPECT_GE(global_total, online_total - 1e-9);
}

}  // namespace
}  // namespace geacc
