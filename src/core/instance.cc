#include "core/instance.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "util/memory.h"
#include "util/string_util.h"

namespace geacc {

Instance::Instance(AttributeMatrix event_attributes,
                   std::vector<int> event_capacities,
                   AttributeMatrix user_attributes,
                   std::vector<int> user_capacities, ConflictGraph conflicts,
                   std::unique_ptr<SimilarityFunction> similarity)
    : event_attributes_(std::move(event_attributes)),
      event_capacities_(std::move(event_capacities)),
      user_attributes_(std::move(user_attributes)),
      user_capacities_(std::move(user_capacities)),
      conflicts_(std::move(conflicts)),
      similarity_(std::move(similarity)) {
  GEACC_CHECK(similarity_ != nullptr);
  GEACC_CHECK_EQ(static_cast<int>(event_capacities_.size()),
                 event_attributes_.rows());
  GEACC_CHECK_EQ(static_cast<int>(user_capacities_.size()),
                 user_attributes_.rows());
  GEACC_CHECK_EQ(conflicts_.num_events(), event_attributes_.rows());
  if (num_events() > 0 && num_users() > 0) {
    GEACC_CHECK_EQ(event_attributes_.dim(), user_attributes_.dim());
  }
  for (const int c : event_capacities_) {
    max_event_capacity_ = std::max(max_event_capacity_, c);
    total_event_capacity_ += c;
  }
  for (const int c : user_capacities_) {
    max_user_capacity_ = std::max(max_user_capacity_, c);
    total_user_capacity_ += c;
  }
}

Instance Instance::Clone() const {
  AttributeMatrix events = event_attributes_;
  AttributeMatrix users = user_attributes_;
  return Instance(std::move(events), event_capacities_, std::move(users),
                  user_capacities_, conflicts_, similarity_->Clone());
}

std::string Instance::Validate() const {
  for (int v = 0; v < num_events(); ++v) {
    if (event_capacities_[v] < 1) {
      return StrFormat("event %d has non-positive capacity %d", v,
                       event_capacities_[v]);
    }
  }
  for (int u = 0; u < num_users(); ++u) {
    if (user_capacities_[u] < 1) {
      return StrFormat("user %d has non-positive capacity %d", u,
                       user_capacities_[u]);
    }
  }
  // The paper assumes max c_v <= |U| and max c_u <= |V|; warn-level only,
  // solvers remain correct, so we do not fail validation on it.
  return "";
}

uint64_t Instance::ByteEstimate() const {
  return event_attributes_.ByteEstimate() + user_attributes_.ByteEstimate() +
         VectorBytes(event_capacities_) + VectorBytes(user_capacities_) +
         conflicts_.ByteEstimate();
}

std::string Instance::DebugString() const {
  return StrFormat(
      "Instance(|V|=%d, |U|=%d, d=%d, sim=%s, conflict_density=%.3f, "
      "sum_cv=%lld, sum_cu=%lld)",
      num_events(), num_users(), dim(), similarity_->Name().c_str(),
      conflicts_.Density(), (long long)total_event_capacity_,
      (long long)total_user_capacity_);
}

InstanceBuilder& InstanceBuilder::SetSimilarity(
    std::unique_ptr<SimilarityFunction> sim) {
  similarity_ = std::move(sim);
  return *this;
}

EventId InstanceBuilder::AddEvent(std::vector<double> attributes,
                                  int capacity) {
  event_rows_.push_back(std::move(attributes));
  event_capacities_.push_back(capacity);
  return static_cast<EventId>(event_rows_.size() - 1);
}

UserId InstanceBuilder::AddUser(std::vector<double> attributes, int capacity) {
  user_rows_.push_back(std::move(attributes));
  user_capacities_.push_back(capacity);
  return static_cast<UserId>(user_rows_.size() - 1);
}

InstanceBuilder& InstanceBuilder::AddConflict(EventId a, EventId b) {
  conflicts_.emplace_back(a, b);
  return *this;
}

Instance InstanceBuilder::Build() {
  ConflictGraph graph(static_cast<int>(event_rows_.size()));
  for (const auto& [a, b] : conflicts_) graph.AddConflict(a, b);
  if (similarity_ == nullptr) {
    double max_attr = 1.0;
    for (const auto& row : event_rows_) {
      for (const double x : row) max_attr = std::max(max_attr, x);
    }
    for (const auto& row : user_rows_) {
      for (const double x : row) max_attr = std::max(max_attr, x);
    }
    similarity_ = std::make_unique<EuclideanSimilarity>(max_attr);
  }
  return Instance(AttributeMatrix::FromRows(event_rows_),
                  std::move(event_capacities_),
                  AttributeMatrix::FromRows(user_rows_),
                  std::move(user_capacities_), std::move(graph),
                  std::move(similarity_));
}

}  // namespace geacc
