file(REMOVE_RECURSE
  "libgeacc_index.a"
)
