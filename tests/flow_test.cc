// Unit and property tests for the flow substrate.
//
// The property tests cross-check SSPA (Dijkstra + potentials) against an
// independent Bellman–Ford successive-shortest-path implementation written
// here, on random bipartite networks.

#include <gtest/gtest.h>

#include <limits>
#include <tuple>
#include <vector>

#include "flow/graph.h"
#include "flow/min_cost_flow.h"
#include "util/rng.h"

namespace geacc {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// ---------------------------------------------------------- FlowGraph ----

TEST(FlowGraph, ArcPairing) {
  FlowGraph graph(3);
  const int arc = graph.AddArc(0, 1, 5, 2.5);
  EXPECT_EQ(arc, 0);
  EXPECT_EQ(graph.Head(arc), 1);
  EXPECT_EQ(graph.Tail(arc), 0);
  EXPECT_EQ(graph.Head(arc ^ 1), 0);
  EXPECT_DOUBLE_EQ(graph.Cost(arc), 2.5);
  EXPECT_DOUBLE_EQ(graph.Cost(arc ^ 1), -2.5);
  EXPECT_EQ(graph.ResidualCapacity(arc), 5);
  EXPECT_EQ(graph.ResidualCapacity(arc ^ 1), 0);
  EXPECT_EQ(graph.Flow(arc), 0);
}

TEST(FlowGraph, PushMovesResidual) {
  FlowGraph graph(2);
  const int arc = graph.AddArc(0, 1, 3, 1.0);
  graph.Push(arc, 2);
  EXPECT_EQ(graph.ResidualCapacity(arc), 1);
  EXPECT_EQ(graph.Flow(arc), 2);
  graph.Push(arc ^ 1, 1);  // undo one unit
  EXPECT_EQ(graph.Flow(arc), 1);
}

TEST(FlowGraph, NegativeCostFlag) {
  FlowGraph graph(2);
  graph.AddArc(0, 1, 1, 1.0);
  EXPECT_FALSE(graph.HasNegativeCost());
  graph.AddArc(0, 1, 1, -1.0);
  EXPECT_TRUE(graph.HasNegativeCost());
}

// ----------------------------------------------------------- SSPA unit ---

TEST(Sspa, SimplePath) {
  FlowGraph graph(3);
  graph.AddArc(0, 1, 2, 1.0);
  graph.AddArc(1, 2, 2, 1.0);
  SuccessiveShortestPaths sspa(&graph, 0, 2);
  EXPECT_EQ(sspa.RunToMaxFlow(), 2);
  EXPECT_DOUBLE_EQ(sspa.total_cost(), 4.0);
}

TEST(Sspa, PicksCheaperPathFirst) {
  FlowGraph graph(4);
  graph.AddArc(0, 1, 1, 1.0);  // s -> a (cheap)
  graph.AddArc(1, 3, 1, 0.0);
  graph.AddArc(0, 2, 1, 3.0);  // s -> b (expensive)
  graph.AddArc(2, 3, 1, 0.0);
  SuccessiveShortestPaths sspa(&graph, 0, 3);
  EXPECT_EQ(sspa.Augment(1), 1);
  EXPECT_DOUBLE_EQ(sspa.total_cost(), 1.0);
  EXPECT_EQ(sspa.Augment(1), 1);
  EXPECT_DOUBLE_EQ(sspa.total_cost(), 4.0);
  EXPECT_EQ(sspa.Augment(1), 0);  // max flow reached
}

TEST(Sspa, ReroutesThroughResidualArc) {
  // Bipartite 2×2 with unit caps: v1 is cheap to u1 but must yield it to
  // v2 on the second augmentation (classic residual rerouting).
  //   nodes: 0=s, 1=v1, 2=v2, 3=u1, 4=u2, 5=t
  FlowGraph graph(6);
  graph.AddArc(0, 1, 1, 0.0);
  graph.AddArc(0, 2, 1, 0.0);
  const int v1u1 = graph.AddArc(1, 3, 1, 0.0);
  const int v1u2 = graph.AddArc(1, 4, 1, 1.0);
  const int v2u1 = graph.AddArc(2, 3, 1, 0.5);
  graph.AddArc(3, 5, 1, 0.0);
  graph.AddArc(4, 5, 1, 0.0);
  SuccessiveShortestPaths sspa(&graph, 0, 5);
  EXPECT_EQ(sspa.RunToMaxFlow(), 2);
  EXPECT_DOUBLE_EQ(sspa.total_cost(), 1.5);
  EXPECT_EQ(graph.Flow(v1u1), 0);  // rerouted away
  EXPECT_EQ(graph.Flow(v1u2), 1);
  EXPECT_EQ(graph.Flow(v2u1), 1);
}

TEST(Sspa, DisconnectedSinkGivesZeroFlow) {
  FlowGraph graph(3);
  graph.AddArc(0, 1, 1, 0.0);  // sink 2 unreachable
  SuccessiveShortestPaths sspa(&graph, 0, 2);
  EXPECT_EQ(sspa.RunToMaxFlow(), 0);
  EXPECT_DOUBLE_EQ(sspa.total_cost(), 0.0);
}

TEST(Sspa, NegativeCostsViaBellmanFordBootstrap) {
  FlowGraph graph(4);
  graph.AddArc(0, 1, 1, -2.0);
  graph.AddArc(1, 3, 1, 1.0);
  graph.AddArc(0, 2, 1, 0.0);
  graph.AddArc(2, 3, 1, 0.5);
  SuccessiveShortestPaths sspa(&graph, 0, 3);
  EXPECT_EQ(sspa.Augment(1), 1);
  EXPECT_DOUBLE_EQ(sspa.total_cost(), -1.0);  // the negative path first
  EXPECT_EQ(sspa.Augment(1), 1);
  EXPECT_DOUBLE_EQ(sspa.total_cost(), -0.5);
}

TEST(Sspa, AugmentIfCheaperStopsAtLimit) {
  FlowGraph graph(4);
  graph.AddArc(0, 1, 1, 0.2);
  graph.AddArc(1, 3, 1, 0.0);
  graph.AddArc(0, 2, 1, 1.5);
  graph.AddArc(2, 3, 1, 0.0);
  SuccessiveShortestPaths sspa(&graph, 0, 3);
  EXPECT_EQ(sspa.AugmentIfCheaper(1.0), 1);  // 0.2 < 1
  EXPECT_EQ(sspa.AugmentIfCheaper(1.0), 0);  // 1.5 >= 1: rejected
  EXPECT_EQ(sspa.total_flow(), 1);
  // The rejected path is still available to plain Augment.
  EXPECT_EQ(sspa.Augment(1), 1);
  EXPECT_DOUBLE_EQ(sspa.total_cost(), 1.7);
}

TEST(Sspa, BottleneckAugmentation) {
  FlowGraph graph(3);
  graph.AddArc(0, 1, 10, 1.0);
  graph.AddArc(1, 2, 7, 0.0);
  SuccessiveShortestPaths sspa(&graph, 0, 2);
  EXPECT_EQ(sspa.Augment(100), 7);  // limited by the 7-cap arc
  EXPECT_EQ(sspa.Augment(100), 0);
}

// ------------------------------------------- reference implementation ----

// Independent successive-shortest-path min-cost flow using Bellman–Ford
// over *real* costs (no potentials). Returns per-unit path costs.
std::vector<double> ReferenceUnitCosts(FlowGraph& graph, int source,
                                       int sink) {
  std::vector<double> unit_costs;
  const int n = graph.num_nodes();
  while (true) {
    std::vector<double> dist(n, kInf);
    std::vector<int> parent(n, -1);
    dist[source] = 0.0;
    for (int round = 0; round < n; ++round) {
      bool changed = false;
      for (int node = 0; node < n; ++node) {
        if (dist[node] == kInf) continue;
        for (const int arc : graph.OutArcs(node)) {
          if (graph.ResidualCapacity(arc) <= 0) continue;
          const double candidate = dist[node] + graph.Cost(arc);
          if (candidate < dist[graph.Head(arc)] - 1e-12) {
            dist[graph.Head(arc)] = candidate;
            parent[graph.Head(arc)] = arc;
            changed = true;
          }
        }
      }
      if (!changed) break;
    }
    if (dist[sink] == kInf) break;
    for (int node = sink; node != source;) {
      graph.Push(parent[node], 1);
      node = graph.Tail(parent[node]);
    }
    unit_costs.push_back(dist[sink]);
  }
  return unit_costs;
}

// Random bipartite GEACC-shaped network.
struct RandomNetwork {
  FlowGraph graph;
  int source;
  int sink;
};

RandomNetwork MakeRandomBipartite(int events, int users, uint64_t seed) {
  Rng rng(seed);
  RandomNetwork net{FlowGraph(events + users + 2), 0, events + users + 1};
  for (int v = 0; v < events; ++v) {
    net.graph.AddArc(net.source, 1 + v, rng.UniformInt(1, 3), 0.0);
  }
  for (int v = 0; v < events; ++v) {
    for (int u = 0; u < users; ++u) {
      net.graph.AddArc(1 + v, 1 + events + u, 1, rng.NextDouble());
    }
  }
  for (int u = 0; u < users; ++u) {
    net.graph.AddArc(1 + events + u, net.sink, rng.UniformInt(1, 2), 0.0);
  }
  return net;
}

class SspaPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SspaPropertyTest, MatchesBellmanFordReferencePerUnit) {
  const uint64_t seed = GetParam();
  RandomNetwork dijkstra_net = MakeRandomBipartite(4, 7, seed);
  RandomNetwork reference_net = MakeRandomBipartite(4, 7, seed);

  std::vector<double> sspa_costs;
  SuccessiveShortestPaths sspa(&dijkstra_net.graph, dijkstra_net.source,
                               dijkstra_net.sink);
  while (true) {
    const double before = sspa.total_cost();
    if (sspa.Augment(1) == 0) break;
    sspa_costs.push_back(sspa.total_cost() - before);
  }

  const std::vector<double> reference_costs = ReferenceUnitCosts(
      reference_net.graph, reference_net.source, reference_net.sink);

  ASSERT_EQ(sspa_costs.size(), reference_costs.size()) << "seed " << seed;
  for (size_t i = 0; i < sspa_costs.size(); ++i) {
    ASSERT_NEAR(sspa_costs[i], reference_costs[i], 1e-6)
        << "unit " << i << " seed " << seed;
  }
}

TEST_P(SspaPropertyTest, UnitCostsNonDecreasing) {
  RandomNetwork net = MakeRandomBipartite(5, 9, GetParam() + 1000);
  SuccessiveShortestPaths sspa(&net.graph, net.source, net.sink);
  double previous = -kInf;
  while (true) {
    const double before = sspa.total_cost();
    if (sspa.Augment(1) == 0) break;
    const double unit = sspa.total_cost() - before;
    ASSERT_GE(unit, previous - 1e-9);
    previous = unit;
  }
}

TEST_P(SspaPropertyTest, FlowConservationAtMaxFlow) {
  RandomNetwork net = MakeRandomBipartite(4, 6, GetParam() + 2000);
  SuccessiveShortestPaths sspa(&net.graph, net.source, net.sink);
  const int64_t flow = sspa.RunToMaxFlow();
  // Net outflow of every interior node must be zero.
  std::vector<int64_t> net_out(net.graph.num_nodes(), 0);
  for (int node = 0; node < net.graph.num_nodes(); ++node) {
    for (const int arc : net.graph.OutArcs(node)) {
      if ((arc & 1) != 0) continue;  // count each forward arc once
      net_out[node] += net.graph.Flow(arc);
      net_out[net.graph.Head(arc)] -= net.graph.Flow(arc);
    }
  }
  EXPECT_EQ(net_out[net.source], flow);
  EXPECT_EQ(net_out[net.sink], -flow);
  for (int node = 0; node < net.graph.num_nodes(); ++node) {
    if (node != net.source && node != net.sink) {
      EXPECT_EQ(net_out[node], 0) << "node " << node;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SspaPropertyTest,
                         ::testing::Range<uint64_t>(0, 20));

}  // namespace
}  // namespace geacc
