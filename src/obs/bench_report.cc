#include "obs/bench_report.h"

#include <cstdlib>
#include <fstream>

namespace geacc::obs {
namespace {

bool Violation(std::string* error, const std::string& message) {
  if (error != nullptr && error->empty()) *error = message;
  return false;
}

bool RequireMember(const JsonValue& object, const std::string& key,
                   JsonValue::Type type, const JsonValue** out,
                   std::string* error, const std::string& where) {
  const JsonValue* member = object.Find(key);
  if (member == nullptr) {
    return Violation(error, where + ": missing \"" + key + "\"");
  }
  // Numbers may arrive as either int or double depending on the writer.
  const bool ok =
      member->type() == type ||
      (type == JsonValue::Type::kDouble && member->is_number()) ||
      (type == JsonValue::Type::kInt && member->is_int());
  if (!ok) {
    return Violation(error, where + ": \"" + key + "\" has wrong type");
  }
  *out = member;
  return true;
}

bool ValidatePoint(const JsonValue& point, size_t index, std::string* error) {
  const std::string where = "points[" + std::to_string(index) + "]";
  if (!point.is_object()) return Violation(error, where + ": not an object");
  const JsonValue* member = nullptr;
  if (!RequireMember(point, "label", JsonValue::Type::kString, &member, error,
                     where) ||
      !RequireMember(point, "solver", JsonValue::Type::kString, &member, error,
                     where) ||
      !RequireMember(point, "wall_seconds", JsonValue::Type::kDouble, &member,
                     error, where)) {
    return false;
  }
  if (member->AsDouble() < 0.0) {
    return Violation(error, where + ": negative wall_seconds");
  }
  if (!RequireMember(point, "cpu_seconds", JsonValue::Type::kDouble, &member,
                     error, where)) {
    return false;
  }
  if (member->AsDouble() < 0.0) {
    return Violation(error, where + ": negative cpu_seconds");
  }
  if (!RequireMember(point, "vm_hwm_bytes", JsonValue::Type::kInt, &member,
                     error, where)) {
    return false;
  }
  if (member->AsInt() < 0) {
    return Violation(error, where + ": negative vm_hwm_bytes");
  }
  if (!RequireMember(point, "max_sum", JsonValue::Type::kDouble, &member,
                     error, where) ||
      !RequireMember(point, "counters", JsonValue::Type::kObject, &member,
                     error, where)) {
    return false;
  }
  for (const auto& [name, value] : member->members()) {
    if (!value.is_int()) {
      return Violation(error,
                       where + ": counter \"" + name + "\" is not an integer");
    }
  }
  if (!RequireMember(point, "timers", JsonValue::Type::kObject, &member, error,
                     where)) {
    return false;
  }
  for (const auto& [name, value] : member->members()) {
    const JsonValue* field = nullptr;
    const std::string timer_where = where + ".timers[\"" + name + "\"]";
    if (!value.is_object() ||
        !RequireMember(value, "seconds", JsonValue::Type::kDouble, &field,
                       error, timer_where) ||
        !RequireMember(value, "count", JsonValue::Type::kInt, &field, error,
                       timer_where)) {
      return Violation(error, timer_where + ": malformed timer");
    }
  }
  if (const JsonValue* latency = point.Find("latency"); latency != nullptr) {
    const std::string latency_where = where + ".latency";
    if (!latency->is_object()) {
      return Violation(error, latency_where + ": not an object");
    }
    for (const char* key : {"p50_ms", "p95_ms", "p99_ms"}) {
      if (!RequireMember(*latency, key, JsonValue::Type::kDouble, &member,
                         error, latency_where)) {
        return false;
      }
      if (member->AsDouble() < 0.0) {
        return Violation(error, latency_where + ": negative " +
                                    std::string(key));
      }
    }
    if (!RequireMember(*latency, "samples", JsonValue::Type::kInt, &member,
                       error, latency_where)) {
      return false;
    }
    if (member->AsInt() < 0) {
      return Violation(error, latency_where + ": negative samples");
    }
  }
  if (const JsonValue* storage = point.Find("storage"); storage != nullptr) {
    const std::string storage_where = where + ".storage";
    if (!storage->is_object()) {
      return Violation(error, storage_where + ": not an object");
    }
    for (const char* key : {"budget_bytes", "page_size", "file_bytes", "hits",
                            "faults", "evictions", "flushes"}) {
      if (!RequireMember(*storage, key, JsonValue::Type::kInt, &member, error,
                         storage_where)) {
        return false;
      }
      if (member->AsInt() < 0) {
        return Violation(error,
                         storage_where + ": negative " + std::string(key));
      }
    }
  }
  if (const JsonValue* kernels = point.Find("kernels"); kernels != nullptr) {
    const std::string kernels_where = where + ".kernels";
    if (!kernels->is_object()) {
      return Violation(error, kernels_where + ": not an object");
    }
    if (!RequireMember(*kernels, "dispatch", JsonValue::Type::kString,
                       &member, error, kernels_where)) {
      return false;
    }
    const std::string& dispatch = member->AsString();
    if (dispatch != "scalar" && dispatch != "avx2") {
      return Violation(error, kernels_where + ": unknown dispatch \"" +
                                  dispatch + "\"");
    }
    for (const char* key : {"block", "batched_evals", "scalar_evals"}) {
      if (!RequireMember(*kernels, key, JsonValue::Type::kInt, &member, error,
                         kernels_where)) {
        return false;
      }
      if (member->AsInt() < 0) {
        return Violation(error,
                         kernels_where + ": negative " + std::string(key));
      }
    }
    if (kernels->Find("block")->AsInt() == 0) {
      return Violation(error, kernels_where + ": zero block");
    }
  }
  if (const JsonValue* shards = point.Find("shards"); shards != nullptr) {
    const std::string shards_where = where + ".shards";
    if (!shards->is_object()) {
      return Violation(error, shards_where + ": not an object");
    }
    if (!RequireMember(*shards, "shard_count", JsonValue::Type::kInt, &member,
                       error, shards_where)) {
      return false;
    }
    if (member->AsInt() <= 0) {
      return Violation(error, shards_where + ": non-positive shard_count");
    }
    if (!RequireMember(*shards, "fleet", JsonValue::Type::kInt, &member, error,
                       shards_where)) {
      return false;
    }
    if (member->AsInt() <= 0) {
      return Violation(error, shards_where + ": non-positive fleet");
    }
    if (!RequireMember(*shards, "qps", JsonValue::Type::kDouble, &member,
                       error, shards_where)) {
      return false;
    }
    if (member->AsDouble() < 0.0) {
      return Violation(error, shards_where + ": negative qps");
    }
    if (!RequireMember(*shards, "per_shard", JsonValue::Type::kArray, &member,
                       error, shards_where)) {
      return false;
    }
    const auto& entries = member->items();
    for (size_t i = 0; i < entries.size(); ++i) {
      const std::string entry_where =
          shards_where + ".per_shard[" + std::to_string(i) + "]";
      const JsonValue& entry = entries[i];
      if (!entry.is_object()) {
        return Violation(error, entry_where + ": not an object");
      }
      const JsonValue* field = nullptr;
      for (const char* key : {"shard", "requests"}) {
        if (!RequireMember(entry, key, JsonValue::Type::kInt, &field, error,
                           entry_where)) {
          return false;
        }
        if (field->AsInt() < 0) {
          return Violation(error,
                           entry_where + ": negative " + std::string(key));
        }
      }
      for (const char* key : {"p50_ms", "p95_ms", "p99_ms"}) {
        if (!RequireMember(entry, key, JsonValue::Type::kDouble, &field,
                           error, entry_where)) {
          return false;
        }
        if (field->AsDouble() < 0.0) {
          return Violation(error,
                           entry_where + ": negative " + std::string(key));
        }
      }
    }
  }
  if (const JsonValue* slots = point.Find("slots"); slots != nullptr) {
    const std::string slots_where = where + ".slots";
    if (!slots->is_object()) {
      return Violation(error, slots_where + ": not an object");
    }
    if (!RequireMember(*slots, "num_slots", JsonValue::Type::kInt, &member,
                       error, slots_where)) {
      return false;
    }
    if (member->AsInt() <= 0) {
      return Violation(error, slots_where + ": non-positive num_slots");
    }
    for (const char* key :
         {"scheduled_events", "slottings_considered", "leaf_solves"}) {
      if (!RequireMember(*slots, key, JsonValue::Type::kInt, &member, error,
                         slots_where)) {
        return false;
      }
      if (member->AsInt() < 0) {
        return Violation(error, slots_where + ": negative " + std::string(key));
      }
    }
    if (!RequireMember(*slots, "joint_max_sum", JsonValue::Type::kDouble,
                       &member, error, slots_where)) {
      return false;
    }
    if (member->AsDouble() < 0.0) {
      return Violation(error, slots_where + ": negative joint_max_sum");
    }
  }
  return true;
}

}  // namespace

JsonValue BenchReport::ToJson() const {
  JsonValue root = JsonValue::Object();
  root.Set("schema", kBenchReportSchema);
  root.Set("version", kBenchReportVersion);
  root.Set("bench", bench);
  root.Set("git_rev", git_rev.empty() ? GitRevision() : git_rev);
  JsonValue flag_object = JsonValue::Object();
  for (const auto& [name, value] : flags) flag_object.Set(name, value);
  root.Set("flags", std::move(flag_object));
  JsonValue point_array = JsonValue::Array();
  for (const BenchPoint& point : points) {
    JsonValue entry = JsonValue::Object();
    entry.Set("label", point.label);
    entry.Set("solver", point.solver);
    entry.Set("wall_seconds", point.wall_seconds);
    entry.Set("cpu_seconds", point.cpu_seconds);
    entry.Set("vm_hwm_bytes", point.vm_hwm_bytes);
    entry.Set("max_sum", point.max_sum);
    JsonValue counters = JsonValue::Object();
    for (const auto& [name, value] : point.counters) counters.Set(name, value);
    entry.Set("counters", std::move(counters));
    JsonValue timers = JsonValue::Object();
    for (const auto& [name, stat] : point.timers) {
      JsonValue timer = JsonValue::Object();
      timer.Set("seconds", stat.seconds);
      timer.Set("count", stat.count);
      timers.Set(name, std::move(timer));
    }
    entry.Set("timers", std::move(timers));
    if (point.has_latency) {
      JsonValue latency = JsonValue::Object();
      latency.Set("p50_ms", point.latency.p50_ms);
      latency.Set("p95_ms", point.latency.p95_ms);
      latency.Set("p99_ms", point.latency.p99_ms);
      latency.Set("samples", point.latency.samples);
      entry.Set("latency", std::move(latency));
    }
    if (point.has_storage) {
      JsonValue storage = JsonValue::Object();
      storage.Set("budget_bytes",
                  static_cast<int64_t>(point.storage.budget_bytes));
      storage.Set("page_size", static_cast<int64_t>(point.storage.page_size));
      storage.Set("file_bytes", static_cast<int64_t>(point.storage.file_bytes));
      storage.Set("hits", point.storage.hits);
      storage.Set("faults", point.storage.faults);
      storage.Set("evictions", point.storage.evictions);
      storage.Set("flushes", point.storage.flushes);
      entry.Set("storage", std::move(storage));
    }
    if (point.has_kernels) {
      JsonValue kernels = JsonValue::Object();
      kernels.Set("dispatch", point.kernels.dispatch);
      kernels.Set("block", point.kernels.block);
      kernels.Set("batched_evals", point.kernels.batched_evals);
      kernels.Set("scalar_evals", point.kernels.scalar_evals);
      entry.Set("kernels", std::move(kernels));
    }
    if (point.has_shards) {
      JsonValue shards = JsonValue::Object();
      shards.Set("shard_count",
                 static_cast<int64_t>(point.shards.shard_count));
      shards.Set("fleet", static_cast<int64_t>(point.shards.fleet));
      shards.Set("qps", point.shards.qps);
      JsonValue per_shard = JsonValue::Array();
      for (const ShardLatency& shard : point.shards.per_shard) {
        JsonValue item = JsonValue::Object();
        item.Set("shard", static_cast<int64_t>(shard.shard));
        item.Set("requests", shard.requests);
        item.Set("p50_ms", shard.p50_ms);
        item.Set("p95_ms", shard.p95_ms);
        item.Set("p99_ms", shard.p99_ms);
        per_shard.Append(std::move(item));
      }
      shards.Set("per_shard", std::move(per_shard));
      entry.Set("shards", std::move(shards));
    }
    if (point.has_slots) {
      JsonValue slots = JsonValue::Object();
      slots.Set("num_slots", point.slots.num_slots);
      slots.Set("scheduled_events", point.slots.scheduled_events);
      slots.Set("slottings_considered", point.slots.slottings_considered);
      slots.Set("leaf_solves", point.slots.leaf_solves);
      slots.Set("joint_max_sum", point.slots.joint_max_sum);
      entry.Set("slots", std::move(slots));
    }
    point_array.Append(std::move(entry));
  }
  root.Set("points", std::move(point_array));
  return root;
}

bool BenchReport::FromJson(const JsonValue& json, std::string* error) {
  if (!ValidateBenchReport(json, error)) return false;
  bench = json.Find("bench")->AsString();
  git_rev = json.Find("git_rev")->AsString();
  flags.clear();
  for (const auto& [name, value] : json.Find("flags")->members()) {
    flags[name] = value.AsString();
  }
  points.clear();
  for (const JsonValue& entry : json.Find("points")->items()) {
    BenchPoint point;
    point.label = entry.Find("label")->AsString();
    point.solver = entry.Find("solver")->AsString();
    point.wall_seconds = entry.Find("wall_seconds")->AsDouble();
    point.cpu_seconds = entry.Find("cpu_seconds")->AsDouble();
    point.vm_hwm_bytes = entry.Find("vm_hwm_bytes")->AsInt();
    point.max_sum = entry.Find("max_sum")->AsDouble();
    for (const auto& [name, value] : entry.Find("counters")->members()) {
      point.counters[name] = value.AsInt();
    }
    for (const auto& [name, value] : entry.Find("timers")->members()) {
      point.timers[name] = {value.Find("seconds")->AsDouble(),
                            value.Find("count")->AsInt()};
    }
    if (const JsonValue* latency = entry.Find("latency"); latency != nullptr) {
      point.has_latency = true;
      point.latency.p50_ms = latency->Find("p50_ms")->AsDouble();
      point.latency.p95_ms = latency->Find("p95_ms")->AsDouble();
      point.latency.p99_ms = latency->Find("p99_ms")->AsDouble();
      point.latency.samples = latency->Find("samples")->AsInt();
    }
    if (const JsonValue* storage = entry.Find("storage"); storage != nullptr) {
      point.has_storage = true;
      point.storage.budget_bytes =
          static_cast<uint64_t>(storage->Find("budget_bytes")->AsInt());
      point.storage.page_size =
          static_cast<uint64_t>(storage->Find("page_size")->AsInt());
      point.storage.file_bytes =
          static_cast<uint64_t>(storage->Find("file_bytes")->AsInt());
      point.storage.hits = storage->Find("hits")->AsInt();
      point.storage.faults = storage->Find("faults")->AsInt();
      point.storage.evictions = storage->Find("evictions")->AsInt();
      point.storage.flushes = storage->Find("flushes")->AsInt();
    }
    if (const JsonValue* kernels = entry.Find("kernels"); kernels != nullptr) {
      point.has_kernels = true;
      point.kernels.dispatch = kernels->Find("dispatch")->AsString();
      point.kernels.block = kernels->Find("block")->AsInt();
      point.kernels.batched_evals = kernels->Find("batched_evals")->AsInt();
      point.kernels.scalar_evals = kernels->Find("scalar_evals")->AsInt();
    }
    if (const JsonValue* shards = entry.Find("shards"); shards != nullptr) {
      point.has_shards = true;
      point.shards.shard_count =
          static_cast<int32_t>(shards->Find("shard_count")->AsInt());
      point.shards.fleet = static_cast<int32_t>(shards->Find("fleet")->AsInt());
      point.shards.qps = shards->Find("qps")->AsDouble();
      for (const JsonValue& item : shards->Find("per_shard")->items()) {
        ShardLatency shard;
        shard.shard = static_cast<int32_t>(item.Find("shard")->AsInt());
        shard.requests = item.Find("requests")->AsInt();
        shard.p50_ms = item.Find("p50_ms")->AsDouble();
        shard.p95_ms = item.Find("p95_ms")->AsDouble();
        shard.p99_ms = item.Find("p99_ms")->AsDouble();
        point.shards.per_shard.push_back(shard);
      }
    }
    if (const JsonValue* slots = entry.Find("slots"); slots != nullptr) {
      point.has_slots = true;
      point.slots.num_slots = slots->Find("num_slots")->AsInt();
      point.slots.scheduled_events =
          slots->Find("scheduled_events")->AsInt();
      point.slots.slottings_considered =
          slots->Find("slottings_considered")->AsInt();
      point.slots.leaf_solves = slots->Find("leaf_solves")->AsInt();
      point.slots.joint_max_sum = slots->Find("joint_max_sum")->AsDouble();
    }
    points.push_back(std::move(point));
  }
  return true;
}

bool BenchReport::WriteFile(const std::string& path,
                            std::string* error) const {
  std::ofstream out(path);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  out << ToJson().Dump(/*indent=*/2) << "\n";
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "write to " + path + " failed";
    return false;
  }
  return true;
}

bool ValidateBenchReport(const JsonValue& json, std::string* error) {
  if (error != nullptr) error->clear();
  if (!json.is_object()) return Violation(error, "report: not an object");
  const JsonValue* member = nullptr;
  if (!RequireMember(json, "schema", JsonValue::Type::kString, &member, error,
                     "report")) {
    return false;
  }
  if (member->AsString() != kBenchReportSchema) {
    return Violation(error, "report: schema is not \"geacc-bench\"");
  }
  if (!RequireMember(json, "version", JsonValue::Type::kInt, &member, error,
                     "report")) {
    return false;
  }
  if (member->AsInt() != kBenchReportVersion) {
    return Violation(error, "report: unsupported version " +
                                std::to_string(member->AsInt()));
  }
  if (!RequireMember(json, "bench", JsonValue::Type::kString, &member, error,
                     "report")) {
    return false;
  }
  if (member->AsString().empty()) {
    return Violation(error, "report: empty bench name");
  }
  if (!RequireMember(json, "git_rev", JsonValue::Type::kString, &member, error,
                     "report") ||
      !RequireMember(json, "flags", JsonValue::Type::kObject, &member, error,
                     "report")) {
    return false;
  }
  for (const auto& [name, value] : member->members()) {
    if (!value.is_string()) {
      return Violation(error, "report: flag \"" + name + "\" is not a string");
    }
  }
  if (!RequireMember(json, "points", JsonValue::Type::kArray, &member, error,
                     "report")) {
    return false;
  }
  const auto& items = member->items();
  for (size_t i = 0; i < items.size(); ++i) {
    if (!ValidatePoint(items[i], i, error)) return false;
  }
  return true;
}

std::string GitRevision() {
  if (const char* env = std::getenv("GEACC_GIT_REV");
      env != nullptr && env[0] != '\0') {
    return env;
  }
#if defined(GEACC_GIT_REV)
  return GEACC_GIT_REV;
#else
  return "unknown";
#endif
}

}  // namespace geacc::obs
