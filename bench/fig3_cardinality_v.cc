// Fig. 3, column 1: MaxSum / time / memory vs |V| ∈ {20, 50, 100, 200,
// 500}; all other parameters Table III defaults (|U| = 1000, d = 20,
// c_v ~ U[1,50], c_u ~ U[1,4], ρ = 0.25).
//
// Expected shape (paper): Greedy wins MaxSum everywhere at baseline cost;
// MinCostFlow beats the random baselines on MaxSum but is orders of
// magnitude slower; MaxSum grows with |V| with a flattening slope as user
// capacity saturates.

#include <vector>

#include "bench/bench_common.h"
#include "gen/synthetic.h"

int main(int argc, char** argv) {
  geacc::bench::CommonFlags common;
  geacc::FlagSet flags;
  common.Register(flags);
  flags.Parse(argc, argv);
  geacc::bench::ReportContext report("fig3_cardinality_v", flags, common);

  geacc::SweepConfig config;
  config.title = "Fig 3 col 1: varying |V|";
  config.solvers =
      common.SolverList({"greedy", "mincostflow", "random-v", "random-u"});
  config.repetitions = common.reps;
  config.threads = common.threads;
  config.audit = common.selfcheck;
  common.ApplySolverOptions(&config.solver_options);
  config.seed = static_cast<uint64_t>(common.seed);

  std::vector<geacc::SweepPoint> points;
  for (const int num_events : {20, 50, 100, 200, 500}) {
    points.push_back(
        {std::to_string(num_events), [num_events](uint64_t seed) {
           geacc::SyntheticConfig synth;  // Table III defaults
           synth.num_events = num_events;
           synth.seed = seed;
           return geacc::GenerateSynthetic(synth);
         }});
  }

  const geacc::SweepResult result = geacc::RunSweep(config, points);
  geacc::bench::EmitSweep(config, result, "|V|", common.csv);
  report.AddSweep(config, result);
  report.Write();
  return 0;
}
