#include "index/idistance_paged.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "index/idistance_index.h"
#include "index/kd_tree_index.h"
#include "index/linear_scan_index.h"
#include "index/va_file_index.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace geacc {
namespace {

std::string BackingFilePath(const std::string& dir) {
  static std::atomic<uint64_t> counter{0};
  std::string base = dir;
  if (base.empty()) {
    const char* tmp = std::getenv("TMPDIR");
    base = (tmp != nullptr && tmp[0] != '\0') ? tmp : "/tmp";
  }
  while (!base.empty() && base.back() == '/') base.pop_back();
  return StrFormat("%s/geacc-idistance-%d-%llu.pages", base.c_str(),
                   static_cast<int>(::getpid()),
                   static_cast<unsigned long long>(
                       counter.fetch_add(1, std::memory_order_relaxed)));
}

}  // namespace

PagedIDistanceIndex::PagedIDistanceIndex(const AttributeMatrix& points,
                                         const SimilarityFunction& similarity,
                                         const StorageOptions& storage,
                                         int num_pivots)
    : KnnIndex(points.rows()),
      points_(points),
      similarity_(similarity),
      keep_files_(storage.keep_files) {
  GEACC_CHECK(similarity.IsEuclideanMonotone())
      << "iDistance ordering requires a Euclidean-monotone similarity; got "
      << similarity.Name();
  geometry_ = BuildIDistanceGeometry(points, num_pivots);

  path_ = BackingFilePath(storage.dir);
  std::string error;
  file_ = storage::PageFile::Create(path_, storage.page_size, &error);
  GEACC_CHECK(file_ != nullptr)
      << "cannot create index page file " << path_ << ": " << error;
  pool_ = std::make_unique<storage::BufferPool>(file_.get(),
                                                storage.budget_bytes);
  tree_ = std::make_unique<KeyTree>(file_.get(), pool_.get());
  GEACC_CHECK(tree_->Build(geometry_.entries, &error))
      << "paged key tree build failed: " << error;
  // As in the in-memory backend: the sorted list only feeds the load.
  geometry_.entries.clear();
  geometry_.entries.shrink_to_fit();
}

PagedIDistanceIndex::~PagedIDistanceIndex() {
  // Release the pool/tree (flushing nothing — the tree is immutable after
  // Build) before unlinking the backing file.
  tree_.reset();
  pool_.reset();
  file_.reset();
  if (!keep_files_ && !path_.empty()) std::remove(path_.c_str());
}

std::vector<Neighbor> PagedIDistanceIndex::Query(const double* query,
                                                 int k) const {
  std::vector<Neighbor> result;
  if (k <= 0) return result;
  IDistanceScanCursor<KeyTree> cursor(points_, similarity_, geometry_.pivots,
                                      geometry_.stretch,
                                      geometry_.initial_radius, *tree_, query);
  result.reserve(std::min(k, num_points()));
  while (static_cast<int>(result.size()) < k) {
    const auto next = cursor.Next();
    if (!next) break;
    result.push_back(*next);
  }
  return result;
}

std::unique_ptr<NnCursor> PagedIDistanceIndex::CreateCursor(
    const double* query) const {
  return std::make_unique<IDistanceScanCursor<KeyTree>>(
      points_, similarity_, geometry_.pivots, geometry_.stretch,
      geometry_.initial_radius, *tree_, query);
}

uint64_t PagedIDistanceIndex::ByteEstimate() const {
  return geometry_.pivots.ByteEstimate() + pool_->stats().peak_resident_bytes;
}

std::unique_ptr<KnnIndex> MakeIndex(const std::string& name,
                                    const AttributeMatrix& points,
                                    const SimilarityFunction& similarity,
                                    const StorageOptions& storage) {
  if (name == "idistance-paged") {
    if (similarity.IsEuclideanMonotone()) {
      return std::make_unique<PagedIDistanceIndex>(points, similarity,
                                                   storage);
    }
    GEACC_LOG(WARNING) << name << " index requested with non-metric "
                       << "similarity '" << similarity.Name()
                       << "'; falling back to linear scan";
    return std::make_unique<LinearScanIndex>(points, similarity);
  }
  return MakeIndex(name, points, similarity);
}

}  // namespace geacc
