// Fuzzes the B+-tree iterator invalidation contract (container/
// bplus_tree.h): interleaves Inserts with live cursors, checks that the
// documented re-seek idiom (UpperBound(last key seen)) always produces
// the std::multimap enumeration, and — in debug builds — that using a
// stale iterator trips the version-stamp GEACC_DCHECK instead of reading
// freed memory.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "container/bplus_tree.h"
#include "util/rng.h"

namespace geacc {
namespace {

using Tree = BPlusTree<int, int, 8>;  // tiny fanout: splits every few inserts
using Reference = std::multimap<int, int>;

std::vector<std::pair<int, int>> Drain(const Tree& tree) {
  std::vector<std::pair<int, int>> out;
  for (auto it = tree.begin(); it != tree.end(); ++it) {
    out.emplace_back(it.key(), it.value());
  }
  return out;
}

void ExpectMatchesReference(const Tree& tree, const Reference& reference) {
  const auto drained = Drain(tree);
  ASSERT_EQ(drained.size(), reference.size());
  size_t i = 0;
  for (const auto& [key, value] : reference) {
    ASSERT_EQ(drained[i].first, key) << "position " << i;
    // Values of equal keys may differ in order between multimap and the
    // tree only if insertion order were not preserved; both promise
    // equal-key FIFO, so values must match exactly too.
    ASSERT_EQ(drained[i].second, value) << "position " << i;
    ++i;
  }
}

TEST(BPlusCursorFuzz, ReseekCursorsSurviveInterleavedInserts) {
  Rng rng(20240807);
  for (int round = 0; round < 20; ++round) {
    Tree tree;
    Reference reference;

    // Optionally start from a bulk load.
    if (round % 2 == 1) {
      std::vector<std::pair<int, int>> seed;
      for (int i = 0; i < 50; ++i) {
        seed.emplace_back(static_cast<int>(rng.UniformInt(0, 30)), i);
      }
      std::sort(seed.begin(), seed.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      tree.BulkLoad(seed);
      for (const auto& [k, v] : seed) reference.emplace(k, v);
    }

    int next_value = 1000;
    for (int step = 0; step < 300; ++step) {
      const int key = static_cast<int>(rng.UniformInt(0, 40));
      switch (rng.UniformInt(0, 3)) {
        case 0:
        case 1: {  // insert; every live iterator is now invalid
          tree.Insert(key, next_value);
          reference.emplace(key, next_value);
          ++next_value;
          break;
        }
        case 2: {  // cursor walk: scan forward a bit, re-seek, continue
          auto it = tree.LowerBound(key);
          auto expected = reference.lower_bound(key);
          int hops = static_cast<int>(rng.UniformInt(0, 5));
          int last_key = 0;
          bool have_last = false;
          while (hops-- > 0 && it != tree.end()) {
            ASSERT_TRUE(expected != reference.end());
            ASSERT_EQ(it.key(), expected->first);
            ASSERT_EQ(it.value(), expected->second);
            last_key = it.key();
            have_last = true;
            ++it;
            ++expected;
          }
          if (have_last) {
            // The documented survival idiom: after any mutation a cursor
            // would re-seek like this; verify it resumes exactly where
            // the multimap does even with duplicate keys at last_key.
            auto resumed = tree.UpperBound(last_key);
            auto expected_resume = reference.upper_bound(last_key);
            if (expected_resume == reference.end()) {
              EXPECT_TRUE(resumed == tree.end());
            } else {
              ASSERT_TRUE(resumed != tree.end());
              EXPECT_EQ(resumed.key(), expected_resume->first);
              EXPECT_EQ(resumed.value(), expected_resume->second);
            }
          }
          break;
        }
        default: {  // backward walk from an upper bound
          auto it = tree.UpperBound(key);
          auto expected = reference.upper_bound(key);
          int hops = static_cast<int>(rng.UniformInt(0, 5));
          while (hops-- > 0 && it != tree.begin()) {
            ASSERT_TRUE(expected != reference.begin());
            --it;
            --expected;
            ASSERT_EQ(it.key(), expected->first);
            ASSERT_EQ(it.value(), expected->second);
          }
          break;
        }
      }
    }
    ExpectMatchesReference(tree, reference);
    tree.DebugValidate();
  }
}

TEST(BPlusCursorFuzz, EqualKeyRunsPreserveInsertionOrderAcrossSplits) {
  Tree tree;
  Reference reference;
  // Hammer three keys so runs of duplicates repeatedly straddle splits.
  for (int i = 0; i < 200; ++i) {
    const int key = i % 3;
    tree.Insert(key, i);
    reference.emplace(key, i);
  }
  ExpectMatchesReference(tree, reference);
}

#ifndef NDEBUG

TEST(BPlusCursorFuzzDeathTest, StaleIteratorDereferenceIsCaught) {
  Tree tree;
  for (int i = 0; i < 20; ++i) tree.Insert(i, i);
  auto it = tree.begin();
  tree.Insert(100, 100);
  EXPECT_DEATH((void)it.key(), "invalidated");
  EXPECT_DEATH(++it, "invalidated");
  EXPECT_DEATH(--it, "invalidated");
}

TEST(BPlusCursorFuzzDeathTest, BulkLoadInvalidatesEndIterator) {
  Tree tree;
  tree.Insert(1, 1);
  auto it = tree.end();
  tree.BulkLoad({{0, 0}, {1, 1}, {2, 2}});
  EXPECT_DEATH(--it, "invalidated");
}

#endif  // NDEBUG

}  // namespace
}  // namespace geacc
