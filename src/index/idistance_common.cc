#include "index/idistance_common.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace geacc {

IDistanceGeometry BuildIDistanceGeometry(const AttributeMatrix& points,
                                         int num_pivots) {
  GEACC_CHECK_GE(num_pivots, 1);
  IDistanceGeometry geometry;
  const int n = points.rows();
  const int dim = points.dim();
  geometry.pivots = AttributeMatrix(0, dim);
  if (n == 0) return geometry;
  const int pivot_count = std::max(1, std::min(num_pivots, n));

  // Farthest-point sampling: deterministic, spreads pivots over the data.
  std::vector<int> pivot_ids{0};
  std::vector<double> nearest_pivot_sq(n);
  for (int i = 0; i < n; ++i) {
    nearest_pivot_sq[i] =
        SquaredEuclideanDistance(points.Row(i), points.Row(0), dim);
  }
  while (static_cast<int>(pivot_ids.size()) < pivot_count) {
    int farthest = 0;
    for (int i = 1; i < n; ++i) {
      if (nearest_pivot_sq[i] > nearest_pivot_sq[farthest]) farthest = i;
    }
    if (nearest_pivot_sq[farthest] == 0.0) break;  // all points covered
    pivot_ids.push_back(farthest);
    for (int i = 0; i < n; ++i) {
      nearest_pivot_sq[i] = std::min(
          nearest_pivot_sq[i],
          SquaredEuclideanDistance(points.Row(i), points.Row(farthest), dim));
    }
  }

  geometry.pivots = AttributeMatrix(static_cast<int>(pivot_ids.size()), dim);
  for (size_t p = 0; p < pivot_ids.size(); ++p) {
    const double* src = points.Row(pivot_ids[p]);
    double* dst = geometry.pivots.MutableRow(static_cast<int>(p));
    for (int j = 0; j < dim; ++j) dst[j] = src[j];
  }

  // Assign points to their nearest pivot; pick the stretch constant C
  // strictly above every pivot distance, then emit the sorted key list.
  std::vector<int> owner(n);
  std::vector<double> owner_distance(n);
  double max_distance = 0.0;
  double mean_distance = 0.0;
  for (int i = 0; i < n; ++i) {
    int best = 0;
    double best_sq = std::numeric_limits<double>::max();
    for (int p = 0; p < geometry.pivots.rows(); ++p) {
      const double d_sq =
          SquaredEuclideanDistance(points.Row(i), geometry.pivots.Row(p), dim);
      if (d_sq < best_sq) {
        best_sq = d_sq;
        best = p;
      }
    }
    owner[i] = best;
    owner_distance[i] = std::sqrt(best_sq);
    max_distance = std::max(max_distance, owner_distance[i]);
    mean_distance += owner_distance[i];
  }
  mean_distance /= n;
  // The query key d(q, pivot) can exceed any data distance, so C must
  // dominate the query side too: queries come from the same attribute
  // space, and d(q,p) ≤ diameter ≤ 2 · max_distance is not guaranteed
  // either — clamp hi_key scans to the band instead (see cursor), and use
  // a generous constant here purely to keep bands disjoint.
  geometry.stretch = std::max(1.0, 4.0 * max_distance + 1.0);

  geometry.entries.resize(n);
  for (int i = 0; i < n; ++i) {
    geometry.entries[i] = {owner[i] * geometry.stretch + owner_distance[i], i};
  }
  std::sort(geometry.entries.begin(), geometry.entries.end());
  geometry.initial_radius = mean_distance > 0.0 ? mean_distance * 0.25 : 1.0;
  return geometry;
}

}  // namespace geacc
