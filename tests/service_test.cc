// The arrangement service's core contract (DESIGN.md §11): snapshot reads
// are consistent, batched concurrent writes land exactly the state a
// single-threaded IncrementalArranger replay of the WAL produces
// (bit-identical MaxSum and pair set), backpressure rejects instead of
// queueing unboundedly, and crash recovery replays to the same state —
// torn tail included.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "dyn/dynamic_instance.h"
#include "dyn/incremental_arranger.h"
#include "dyn/mutation.h"
#include "gen/synthetic.h"
#include "gen/trace_gen.h"
#include "svc/service.h"
#include "svc/snapshot.h"
#include "svc/wal.h"
#include "util/rng.h"

namespace geacc::svc {
namespace {

Instance SmallInstance(uint64_t seed = 3) {
  SyntheticConfig config;
  config.num_events = 12;
  config.num_users = 60;
  config.dim = 4;
  config.seed = seed;
  return GenerateSynthetic(config);
}

// Slot-space (user, event) pairs of a snapshot, in per-user list order —
// the same serialization FlatPairs gives an Arrangement.
std::vector<std::pair<UserId, EventId>> SnapshotPairs(
    const ServiceSnapshot& snapshot) {
  std::vector<std::pair<UserId, EventId>> pairs;
  for (UserId u = 0; u < snapshot.user_slots(); ++u) {
    for (const EventId v : snapshot.AssignmentsOf(u)) pairs.emplace_back(u, v);
  }
  return pairs;
}

std::vector<std::pair<UserId, EventId>> ArrangerPairs(
    const IncrementalArranger& arranger) {
  const Arrangement& arrangement = arranger.arrangement();
  std::vector<std::pair<UserId, EventId>> pairs;
  for (UserId u = 0; u < arrangement.num_users(); ++u) {
    for (const EventId v : arrangement.EventsOf(u)) pairs.emplace_back(u, v);
  }
  return pairs;
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(ServiceSnapshot, ReadsMatchBootstrapArranger) {
  const Instance instance = SmallInstance();
  ArrangementService service(instance, {});

  // An identical engine run by hand is the oracle.
  DynamicInstance oracle_instance(instance);
  IncrementalArranger oracle(&oracle_instance, {});
  oracle.FullResolve();

  const auto snapshot = service.snapshot();
  EXPECT_EQ(snapshot->epoch(), 0);
  EXPECT_EQ(snapshot->applied_seq(), 0);
  EXPECT_EQ(SnapshotPairs(*snapshot), ArrangerPairs(oracle));
  EXPECT_EQ(snapshot->max_sum(), oracle.max_sum());

  for (UserId u = 0; u < snapshot->user_slots(); ++u) {
    std::vector<EventId> events;
    ASSERT_EQ(service.GetAssignments(u, &events), SvcStatus::kOk);
    EXPECT_EQ(events, oracle.arrangement().EventsOf(u));
  }
  std::vector<UserId> users;
  EXPECT_EQ(service.GetAssignments(-1, &users), SvcStatus::kInvalidArgument);
  EXPECT_EQ(service.GetAttendees(instance.num_events(), &users),
            SvcStatus::kInvalidArgument);

  // Attendees mirror assignments within one snapshot.
  for (EventId v = 0; v < snapshot->event_slots(); ++v) {
    std::vector<UserId> attendees;
    ASSERT_EQ(service.GetAttendees(v, &attendees), SvcStatus::kOk);
    for (const UserId u : attendees) {
      const auto& events = snapshot->AssignmentsOf(u);
      EXPECT_NE(std::find(events.begin(), events.end(), v), events.end());
    }
  }

  const ServiceStatsView stats = service.Stats();
  EXPECT_EQ(stats.pairs, snapshot->num_pairs());
  EXPECT_EQ(stats.max_sum, snapshot->max_sum());
  EXPECT_EQ(stats.active_events, instance.num_events());
  EXPECT_EQ(stats.active_users, instance.num_users());
}

TEST(ServiceSnapshot, TopKRanksBySimilarityAndExcludesHeld) {
  const Instance instance = SmallInstance();
  ArrangementService service(instance, {});
  const auto snapshot = service.snapshot();

  for (UserId u = 0; u < snapshot->user_slots(); u += 7) {
    const std::vector<ScoredEvent> top = snapshot->TopKEvents(u, 5);
    ASSERT_LE(top.size(), 5u);
    const auto& held = snapshot->AssignmentsOf(u);
    for (size_t i = 0; i < top.size(); ++i) {
      EXPECT_GT(top[i].similarity, 0.0);
      EXPECT_EQ(top[i].similarity, snapshot->Similarity(top[i].event, u));
      EXPECT_EQ(std::find(held.begin(), held.end(), top[i].event),
                held.end());
      if (i > 0) {
        EXPECT_TRUE(top[i - 1].similarity > top[i].similarity ||
                    (top[i - 1].similarity == top[i].similarity &&
                     top[i - 1].event < top[i].event));
      }
    }
  }
  EXPECT_TRUE(snapshot->TopKEvents(0, 0).empty());
}

TEST(ServiceSnapshot, TopKBatchIsThreadInvariant) {
  const Instance instance = SmallInstance();
  ArrangementService service(instance, {});
  const auto snapshot = service.snapshot();

  std::vector<UserId> users;
  for (UserId u = 0; u < snapshot->user_slots(); ++u) users.push_back(u);
  const auto baseline = snapshot->TopKEventsBatch(users, 4, 1);
  for (const int threads : {2, 8}) {
    EXPECT_EQ(snapshot->TopKEventsBatch(users, 4, threads), baseline)
        << "threads=" << threads;
  }
}

TEST(ArrangementService, ConcurrentWritesEqualSerialReplayOfWal) {
  const std::string wal_path = TempPath("svc_consistency.wal");

  TraceGenConfig trace_config;
  trace_config.initial_events = 12;
  trace_config.initial_users = 60;
  trace_config.dim = 4;
  trace_config.num_mutations = 400;
  trace_config.seed = 11;
  const MutationTrace trace = GenerateTrace(trace_config);

  ServiceOptions options;
  options.batch_size = 8;
  options.wal_path = wal_path;

  std::vector<std::pair<UserId, EventId>> service_pairs;
  double service_max_sum = 0.0;
  {
    ArrangementService service(trace.initial, options);

    // 4 submitter threads interleave arbitrarily; concurrent readers
    // verify every snapshot they see is internally consistent.
    std::atomic<bool> done{false};
    std::thread reader([&] {
      while (!done.load()) {
        const auto snapshot = service.snapshot();
        for (UserId u = 0; u < snapshot->user_slots(); u += 13) {
          for (const EventId v : snapshot->AssignmentsOf(u)) {
            const auto& attendees = snapshot->AttendeesOf(v);
            EXPECT_NE(
                std::find(attendees.begin(), attendees.end(), u),
                attendees.end())
                << "snapshot epoch " << snapshot->epoch()
                << " lost the reverse edge (" << v << ", " << u << ")";
          }
        }
      }
    });

    constexpr int kThreads = 4;
    std::vector<std::thread> submitters;
    for (int t = 0; t < kThreads; ++t) {
      submitters.emplace_back([&, t] {
        for (size_t i = t; i < trace.mutations.size(); i += kThreads) {
          for (;;) {
            const SubmitResult result = service.Submit(trace.mutations[i]);
            if (result.status != SvcStatus::kOverloaded) break;
            std::this_thread::yield();
          }
        }
      });
    }
    for (std::thread& thread : submitters) thread.join();
    service.Flush();
    done.store(true);
    reader.join();

    const auto snapshot = service.snapshot();
    service_pairs = SnapshotPairs(*snapshot);
    service_max_sum = snapshot->max_sum();
    EXPECT_EQ(snapshot->applied_seq(),
              static_cast<int64_t>(trace.mutations.size()));
  }

  // Oracle: single-threaded replay of the WAL's applied order.
  std::string error;
  std::optional<WalContents> wal = ReadWal(wal_path, &error);
  ASSERT_TRUE(wal.has_value()) << error;
  EXPECT_EQ(wal->dropped_tail_lines, 0);
  DynamicInstance oracle_instance(wal->initial);
  IncrementalArranger oracle(&oracle_instance, {});
  oracle.FullResolve();
  for (const Mutation& mutation : wal->mutations) {
    ASSERT_EQ(ValidateMutation(oracle_instance, mutation), "");
    oracle.Apply(mutation);
  }
  EXPECT_EQ(service_pairs, ArrangerPairs(oracle));
  EXPECT_EQ(service_max_sum, oracle.max_sum());
  EXPECT_EQ(oracle.Validate(), "");
  std::remove(wal_path.c_str());
}

TEST(ArrangementService, OverloadRejectsInsteadOfQueueingUnboundedly) {
  ServiceOptions options;
  options.batch_size = 1;
  options.queue_depth = 2;
  options.writer_stall_ms_for_test = 30;
  ArrangementService service(SmallInstance(), options);

  int overloaded = 0;
  int accepted = 0;
  for (int i = 0; i < 64; ++i) {
    const SubmitResult result =
        service.Submit(Mutation::SetUserCapacity(i % 60, 2));
    if (result.status == SvcStatus::kOverloaded) {
      ++overloaded;
    } else {
      ASSERT_EQ(result.status, SvcStatus::kOk);
      ++accepted;
    }
  }
  EXPECT_GT(overloaded, 0) << "queue_depth=2 never pushed back";
  EXPECT_GT(accepted, 0);
  EXPECT_GE(service.Stats().overloads, overloaded);

  service.Flush();
  EXPECT_EQ(service.Stats().queued, 0);
  EXPECT_EQ(service.snapshot()->applied_seq(),
            static_cast<int64_t>(accepted));
}

TEST(ArrangementService, RejectedMutationsAreReportedAndNotApplied) {
  ArrangementService service(SmallInstance(), {});
  const auto before = service.snapshot();

  // Out-of-range ids, dead slots, bad arity, bad capacity — all garbage a
  // wire peer can send. None may abort or change state.
  const SubmitResult bad_id = service.Submit(Mutation::RemoveUser(9999));
  const SubmitResult bad_arity =
      service.Submit(Mutation::AddUser({1.0, 2.0}, 1));  // dim is 4
  const SubmitResult bad_capacity =
      service.Submit(Mutation::SetEventCapacity(0, 0));
  const SubmitResult self_conflict =
      service.Submit(Mutation::AddConflict(1, 1));
  ASSERT_EQ(bad_id.status, SvcStatus::kOk);
  EXPECT_EQ(service.WaitForTicket(bad_id.ticket), SvcStatus::kRejected);
  EXPECT_EQ(service.WaitForTicket(bad_arity.ticket), SvcStatus::kRejected);
  EXPECT_EQ(service.WaitForTicket(bad_capacity.ticket), SvcStatus::kRejected);
  EXPECT_EQ(service.WaitForTicket(self_conflict.ticket),
            SvcStatus::kRejected);
  EXPECT_EQ(service.WaitForTicket(0), SvcStatus::kInvalidArgument);
  EXPECT_EQ(service.WaitForTicket(999), SvcStatus::kInvalidArgument);

  // All four rejections published no instance change.
  const auto mid = service.snapshot();
  EXPECT_EQ(mid->epoch(), 0);
  EXPECT_EQ(SnapshotPairs(*mid), SnapshotPairs(*before));

  // A valid mutation after the garbage still applies (and may rearrange —
  // raising a capacity frees refill headroom).
  const SubmitResult good = service.Submit(Mutation::SetUserCapacity(0, 3));
  EXPECT_EQ(service.WaitForTicket(good.ticket), SvcStatus::kOk);
  const auto after = service.snapshot();
  EXPECT_EQ(after->epoch(), 1) << "only the valid mutation may apply";
  EXPECT_EQ(after->user_capacity(0), 3);
}

TEST(ArrangementService, SubmitAfterStopIsShuttingDown) {
  ArrangementService service(SmallInstance(), {});
  service.Stop();
  EXPECT_EQ(service.Submit(Mutation::SetUserCapacity(0, 2)).status,
            SvcStatus::kShuttingDown);
  // Reads still work against the final snapshot.
  std::vector<EventId> events;
  EXPECT_EQ(service.GetAssignments(0, &events), SvcStatus::kOk);
}

TEST(ArrangementService, RecoverReplaysWalToIdenticalState) {
  const std::string wal_path = TempPath("svc_recover.wal");
  const Instance instance = SmallInstance(17);
  ServiceOptions options;
  options.wal_path = wal_path;

  std::vector<std::pair<UserId, EventId>> pairs_before;
  double max_sum_before = 0.0;
  int64_t epoch_before = 0;
  {
    ArrangementService service(instance, options);
    Rng rng(5);
    for (int i = 0; i < 120; ++i) {
      const int pick = rng.UniformInt(0, 2);
      if (pick == 0) {
        service.Submit(Mutation::SetUserCapacity(rng.UniformInt(0, 59),
                                                 rng.UniformInt(1, 4)));
      } else if (pick == 1) {
        service.Submit(Mutation::SetEventCapacity(rng.UniformInt(0, 11),
                                                  rng.UniformInt(1, 50)));
      } else {
        service.Submit(Mutation::AddUser(
            {rng.UniformReal(0, 10000), rng.UniformReal(0, 10000),
             rng.UniformReal(0, 10000), rng.UniformReal(0, 10000)},
            rng.UniformInt(1, 4)));
      }
    }
    service.Flush();
    const auto snapshot = service.snapshot();
    pairs_before = SnapshotPairs(*snapshot);
    max_sum_before = snapshot->max_sum();
    epoch_before = snapshot->epoch();
  }  // destructor = clean stop; the file is what a crash would leave + sync

  std::string error;
  std::unique_ptr<ArrangementService> recovered =
      ArrangementService::Recover(options, &error);
  ASSERT_NE(recovered, nullptr) << error;
  const auto snapshot = recovered->snapshot();
  EXPECT_EQ(snapshot->epoch(), epoch_before);
  EXPECT_EQ(SnapshotPairs(*snapshot), pairs_before);
  EXPECT_EQ(snapshot->max_sum(), max_sum_before);

  // The recovered service keeps serving and logging.
  const SubmitResult post = recovered->Submit(Mutation::SetUserCapacity(1, 2));
  EXPECT_EQ(recovered->WaitForTicket(post.ticket), SvcStatus::kOk);
  recovered->Stop();
  std::remove(wal_path.c_str());
}

TEST(ArrangementService, RecoverDropsTornFinalLine) {
  const std::string wal_path = TempPath("svc_torn.wal");
  const Instance instance = SmallInstance(23);
  ServiceOptions options;
  options.wal_path = wal_path;

  std::vector<std::pair<UserId, EventId>> pairs_before;
  {
    ArrangementService service(instance, options);
    for (int i = 0; i < 20; ++i) {
      service.Submit(Mutation::SetUserCapacity(i, 1 + i % 4));
    }
    service.Flush();
    pairs_before = SnapshotPairs(*service.snapshot());
  }
  {
    // Crash signature: a half-written append with no trailing newline.
    std::ofstream torn(wal_path, std::ios::app);
    torn << "set_user_capacity 3";
  }

  std::string error;
  std::unique_ptr<ArrangementService> recovered =
      ArrangementService::Recover(options, &error);
  ASSERT_NE(recovered, nullptr) << error;
  EXPECT_EQ(SnapshotPairs(*recovered->snapshot()), pairs_before);

  // The torn fragment was compacted away: a second recovery (after new
  // appends) must parse cleanly.
  const SubmitResult post = recovered->Submit(Mutation::SetUserCapacity(2, 2));
  EXPECT_EQ(recovered->WaitForTicket(post.ticket), SvcStatus::kOk);
  recovered->Stop();
  recovered.reset();
  std::unique_ptr<ArrangementService> again =
      ArrangementService::Recover(options, &error);
  ASSERT_NE(again, nullptr) << error;
  EXPECT_EQ(again->snapshot()->user_capacity(2), 2);
  again->Stop();
  std::remove(wal_path.c_str());
}

TEST(ArrangementService, CheckpointRoundTrips) {
  const std::string path = TempPath("svc_checkpoint.dat");
  ArrangementService service(SmallInstance(29), {});
  const SubmitResult r = service.Submit(Mutation::RemoveUser(5));
  ASSERT_EQ(service.WaitForTicket(r.ticket), SvcStatus::kOk);

  std::string error;
  ASSERT_TRUE(service.Checkpoint(path, &error)) << error;
  std::optional<Checkpoint> checkpoint = ReadCheckpoint(path, &error);
  ASSERT_TRUE(checkpoint.has_value()) << error;

  const auto snapshot = service.snapshot();
  EXPECT_EQ(checkpoint->instance.num_events(), snapshot->num_active_events());
  EXPECT_EQ(checkpoint->instance.num_users(), snapshot->num_active_users());
  EXPECT_EQ(checkpoint->arrangement.size(), snapshot->num_pairs());
  EXPECT_EQ(checkpoint->arrangement.Validate(checkpoint->instance), "");
  EXPECT_NEAR(checkpoint->arrangement.MaxSum(checkpoint->instance),
              snapshot->max_sum(), 1e-9);
  std::remove(path.c_str());
}

TEST(WalReader, RejectsCorruptionThatIsNotATornTail) {
  const std::string wal_path = TempPath("svc_corrupt.wal");
  {
    ServiceOptions options;
    options.wal_path = wal_path;
    ArrangementService service(SmallInstance(), options);
    for (int i = 0; i < 5; ++i) {
      service.Submit(Mutation::SetUserCapacity(i, 2));
    }
    service.Flush();
  }
  // Corrupt a *middle* line: real damage, must be a hard error.
  std::ifstream in(wal_path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  in.close();
  ASSERT_GT(lines.size(), 3u);
  lines[lines.size() - 3] = "set_user_capacity banana 2";
  std::ofstream out(wal_path, std::ios::trunc);
  for (const std::string& line : lines) out << line << "\n";
  out.close();

  std::string error;
  EXPECT_FALSE(ReadWal(wal_path, &error).has_value());
  EXPECT_NE(error.find("mutation line"), std::string::npos) << error;
  std::remove(wal_path.c_str());
}

}  // namespace
}  // namespace geacc::svc
