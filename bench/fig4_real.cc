// Fig. 4, column 4 + Table II: the "real dataset" experiment on the EBSN
// (Meetup-like) simulator. Prints Table II-style dataset statistics for
// all three cities, then sweeps conflict density ρ ∈ {0, .25, .5, .75, 1}
// on Auckland (the city the paper plots) with Uniform capacities.
//
// Expected shape (paper): "the results on real dataset have similar
// patterns to those of the synthetic data" — Greedy ≥ MinCostFlow ≫
// random baselines on MaxSum, MaxSum decreasing in ρ.
//
// Flags: --city auckland|vancouver|singapore, --normal_caps for the
// Normal capacity variant.

#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "gen/ebsn.h"
#include "util/string_util.h"
#include "util/table.h"

int main(int argc, char** argv) {
  geacc::bench::CommonFlags common;
  std::string city = "auckland";
  bool normal_caps = false;
  geacc::FlagSet flags;
  common.Register(flags);
  flags.AddString("city", &city, "EBSN city preset");
  flags.AddBool("normal_caps", &normal_caps,
                "capacities ~ Normal(25,12.5)/(2,1) instead of Uniform");
  flags.Parse(argc, argv);
  geacc::bench::ReportContext report("fig4_real", flags, common);

  // Table II: dataset statistics for all three simulated cities.
  geacc::Table table_ii("Table II: simulated EBSN (Meetup-like) datasets");
  table_ii.SetHeader({"City", "|V|", "|U|", "mean event tags",
                      "mean user tags", "rho"});
  for (const char* name : {"vancouver", "auckland", "singapore"}) {
    geacc::EbsnConfig config = geacc::EbsnCityPreset(name);
    config.seed = static_cast<uint64_t>(common.seed);
    const geacc::Instance instance = geacc::GenerateEbsn(config);
    const geacc::EbsnStats stats = geacc::SummarizeEbsn(name, instance);
    table_ii.AddRow({stats.city, std::to_string(stats.num_events),
                     std::to_string(stats.num_users),
                     geacc::StrFormat("%.1f", stats.mean_event_tags),
                     geacc::StrFormat("%.1f", stats.mean_user_tags),
                     geacc::StrFormat("%.2f", stats.conflict_density)});
  }
  table_ii.Print(std::cout);

  geacc::SweepConfig config;
  config.title = geacc::StrFormat(
      "Fig 4 col 4: real (simulated EBSN) dataset %s, %s capacities",
      city.c_str(), normal_caps ? "Normal" : "Uniform");
  config.solvers =
      common.SolverList({"greedy", "mincostflow", "random-v", "random-u"});
  config.repetitions = common.reps;
  config.threads = common.threads;
  config.audit = common.selfcheck;
  common.ApplySolverOptions(&config.solver_options);
  config.seed = static_cast<uint64_t>(common.seed);

  std::vector<geacc::SweepPoint> points;
  for (const double density : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    points.push_back({geacc::StrFormat("%.2f", density),
                      [city, density, normal_caps](uint64_t seed) {
                        geacc::EbsnConfig ebsn = geacc::EbsnCityPreset(city);
                        ebsn.conflict_density = density;
                        ebsn.seed = seed;
                        if (normal_caps) {
                          ebsn.event_capacity =
                              geacc::DistributionSpec::Normal(25.0, 12.5);
                          ebsn.user_capacity =
                              geacc::DistributionSpec::Normal(2.0, 1.0);
                        }
                        return geacc::GenerateEbsn(ebsn);
                      }});
  }

  const geacc::SweepResult result = geacc::RunSweep(config, points);
  geacc::bench::EmitSweep(config, result, "rho", common.csv);
  report.AddSweep(config, result);
  report.Write();
  return 0;
}
