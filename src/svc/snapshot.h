// Immutable point-in-time view of a served arrangement (the read side of
// the epoch-snapshot store, DESIGN.md §11).
//
// The service writer thread materializes one ServiceSnapshot per applied
// batch and publishes it behind an atomic shared_ptr; readers grab the
// pointer and answer every query — assignments, attendees, top-k
// candidates, stats — against frozen state, with no locks and no
// coordination with the writer. A snapshot therefore owns deep copies of
// everything it needs: attributes, capacities, active flags, the conflict
// graph, and the arrangement adjacency in both directions.
//
// Ids are DynamicInstance slot ids (stable across the instance's whole
// lifetime, tombstones included), so an id a client obtained at epoch e
// stays meaningful at every later epoch.
//
// Thread-safety: all members are const after construction; share freely.
// Cost: building a snapshot is O((|V| + |U|) · d + |CF| + |M|), paid once
// per *batch* (not per mutation) by the writer thread.

#ifndef GEACC_SVC_SNAPSHOT_H_
#define GEACC_SVC_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/arrangement.h"
#include "core/attributes.h"
#include "core/conflict_graph.h"
#include "core/instance.h"
#include "core/similarity.h"
#include "core/types.h"

namespace geacc {

class DynamicInstance;
class IncrementalArranger;
class ThreadPool;

namespace svc {

// A candidate event for a user, ranked by the instance similarity.
struct ScoredEvent {
  EventId event = kInvalidEvent;
  double similarity = 0.0;

  bool operator==(const ScoredEvent&) const = default;
};

// One (user, event) scoring edge as streamed to the shard coordinator's
// epoch repair pass (src/shard/, DESIGN.md §16).
struct ScoredCandidate {
  UserId user = -1;
  EventId event = kInvalidEvent;
  double similarity = 0.0;

  bool operator==(const ScoredCandidate&) const = default;
};

class ServiceSnapshot {
 public:
  // ----- identity -----

  // Instance epoch (mutation count) this snapshot reflects.
  int64_t epoch() const { return epoch_; }
  // Highest submit ticket whose outcome is visible in this snapshot.
  int64_t applied_seq() const { return applied_seq_; }

  // ----- instance state (slot space) -----

  int dim() const { return dim_; }
  int event_slots() const { return static_cast<int>(event_active_.size()); }
  int user_slots() const { return static_cast<int>(user_active_.size()); }
  int num_active_events() const { return num_active_events_; }
  int num_active_users() const { return num_active_users_; }

  bool event_in_range(EventId v) const {
    return v >= 0 && v < event_slots();
  }
  bool user_in_range(UserId u) const { return u >= 0 && u < user_slots(); }
  bool event_active(EventId v) const { return event_active_[v]; }
  bool user_active(UserId u) const { return user_active_[u]; }
  int event_capacity(EventId v) const { return event_capacities_[v]; }
  int user_capacity(UserId u) const { return user_capacities_[u]; }

  double Similarity(EventId v, UserId u) const {
    return similarity_->Compute(event_attributes_.Row(v),
                                user_attributes_.Row(u), dim_);
  }

  const ConflictGraph& conflicts() const { return conflicts_; }

  // ----- arrangement state -----

  int64_t num_pairs() const { return num_pairs_; }
  double max_sum() const { return max_sum_; }

  // Events assigned to `u` (insertion order) / users attending `v`
  // (unordered). Ids must be in range; tombstoned slots yield empty lists.
  const std::vector<EventId>& AssignmentsOf(UserId u) const {
    return user_events_[u];
  }
  const std::vector<UserId>& AttendeesOf(EventId v) const {
    return event_users_[v];
  }

  // ----- derived reads -----

  // The `k` best candidate events for `u`: active, positive similarity,
  // not already assigned to `u`, ranked (similarity desc, id asc). `u`
  // must be in range; a tombstoned user yields an empty list.
  std::vector<ScoredEvent> TopKEvents(UserId u, int k) const;

  // TopKEvents for a batch of users, fanned out over `threads` pool lanes
  // (result order matches `users`; each id must be in range).
  std::vector<std::vector<ScoredEvent>> TopKEventsBatch(
      const std::vector<UserId>& users, int k, int threads) const;

  // Every positive-similarity edge between an active user in the slot
  // range [first_user, first_user + user_count) and an active event,
  // ordered (user asc, event asc). Unlike TopKEvents this does NOT filter
  // out pairs already assigned — the coordinator's repair pass re-derives
  // the global arrangement from scratch each epoch, so held pairs must
  // stay in the stream. The range is clamped to the slot space.
  std::vector<ScoredCandidate> Candidates(UserId first_user,
                                          int user_count) const;

  // Compacts the snapshot into a dense immutable Instance + Arrangement
  // over the active entities (checkpoint/export path). Dense ids are
  // assigned in ascending slot order; `dense_to_event`/`dense_to_user`
  // record the mapping when non-null.
  Instance ToDenseInstance(std::vector<EventId>* dense_to_event = nullptr,
                           std::vector<UserId>* dense_to_user = nullptr) const;
  Arrangement ToDenseArrangement() const;

 private:
  friend std::shared_ptr<const ServiceSnapshot> BuildSnapshot(
      const DynamicInstance& instance, const IncrementalArranger& arranger,
      int64_t applied_seq);

  ServiceSnapshot() = default;

  int64_t epoch_ = 0;
  int64_t applied_seq_ = 0;
  int dim_ = 0;

  AttributeMatrix event_attributes_;
  AttributeMatrix user_attributes_;
  std::vector<int> event_capacities_;
  std::vector<int> user_capacities_;
  std::vector<bool> event_active_;
  std::vector<bool> user_active_;
  int num_active_events_ = 0;
  int num_active_users_ = 0;
  ConflictGraph conflicts_;
  std::unique_ptr<SimilarityFunction> similarity_;

  std::vector<std::vector<EventId>> user_events_;
  std::vector<std::vector<UserId>> event_users_;
  int64_t num_pairs_ = 0;
  double max_sum_ = 0.0;
};

// Deep-copies the writer-side state into a new immutable snapshot. Called
// by the service writer thread only; the arranger must be quiescent for
// the duration of the call.
std::shared_ptr<const ServiceSnapshot> BuildSnapshot(
    const DynamicInstance& instance, const IncrementalArranger& arranger,
    int64_t applied_seq);

}  // namespace svc
}  // namespace geacc

#endif  // GEACC_SVC_SNAPSHOT_H_
