#include "svc/service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "core/similarity.h"
#include "obs/stats.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace geacc::svc {
namespace {

// Rejected tickets are only interesting to the submitter that waits on
// them; keep a bounded recent window instead of growing forever.
constexpr size_t kRejectedWindow = 4096;

}  // namespace

const char* SvcStatusName(SvcStatus status) {
  switch (status) {
    case SvcStatus::kOk:
      return "ok";
    case SvcStatus::kOverloaded:
      return "overloaded";
    case SvcStatus::kRejected:
      return "rejected";
    case SvcStatus::kInvalidArgument:
      return "invalid_argument";
    case SvcStatus::kShuttingDown:
      return "shutting_down";
  }
  return "unknown";
}

namespace {

// Shared core of the two ValidateMutation overloads: `event_ok`/`user_ok`
// answer "in range and active" against whichever state is being checked.
template <typename EventOk, typename UserOk>
std::string ValidateMutationImpl(int dim, const EventOk& event_ok,
                                 const UserOk& user_ok,
                                 const Mutation& mutation) {
  switch (mutation.kind) {
    case Mutation::Kind::kAddUser:
    case Mutation::Kind::kAddEvent: {
      if (static_cast<int>(mutation.attributes.size()) != dim) {
        return StrFormat("expected %d attributes, got %d", dim,
                         static_cast<int>(mutation.attributes.size()));
      }
      for (const double a : mutation.attributes) {
        if (!std::isfinite(a)) return "non-finite attribute";
      }
      if (mutation.capacity < 1) {
        return StrFormat("capacity must be >= 1, got %d", mutation.capacity);
      }
      return "";
    }
    case Mutation::Kind::kRemoveUser:
      if (!user_ok(mutation.id)) {
        return StrFormat("no active user %d", mutation.id);
      }
      return "";
    case Mutation::Kind::kRemoveEvent:
      if (!event_ok(mutation.id)) {
        return StrFormat("no active event %d", mutation.id);
      }
      return "";
    case Mutation::Kind::kAddConflict:
      if (!event_ok(mutation.id) || !event_ok(mutation.other)) {
        return StrFormat("no active event pair (%d, %d)", mutation.id,
                         mutation.other);
      }
      if (mutation.id == mutation.other) {
        return StrFormat("self-conflict on event %d", mutation.id);
      }
      return "";
    case Mutation::Kind::kSetEventCapacity:
      if (!event_ok(mutation.id)) {
        return StrFormat("no active event %d", mutation.id);
      }
      if (mutation.capacity < 1) {
        return StrFormat("capacity must be >= 1, got %d", mutation.capacity);
      }
      return "";
    case Mutation::Kind::kSetUserCapacity:
      if (!user_ok(mutation.id)) {
        return StrFormat("no active user %d", mutation.id);
      }
      if (mutation.capacity < 1) {
        return StrFormat("capacity must be >= 1, got %d", mutation.capacity);
      }
      return "";
    case Mutation::Kind::kSetEventSlot:
      if (!event_ok(mutation.id)) {
        return StrFormat("no active event %d", mutation.id);
      }
      if (mutation.other < 0 || mutation.other >= kMaxTimeSlots) {
        return StrFormat("slot must be in [0, %d), got %d", kMaxTimeSlots,
                         mutation.other);
      }
      return "";
    case Mutation::Kind::kSetUserAvailability:
      if (!user_ok(mutation.id)) {
        return StrFormat("no active user %d", mutation.id);
      }
      if (mutation.mask < 0 || mutation.mask > kFullSlotAvailability) {
        return StrFormat("availability mask out of range: %lld",
                         static_cast<long long>(mutation.mask));
      }
      return "";
  }
  return "unknown mutation kind";
}

}  // namespace

std::string ValidateMutation(const DynamicInstance& instance,
                             const Mutation& mutation) {
  return ValidateMutationImpl(
      instance.dim(),
      [&](int32_t v) {
        return v >= 0 && v < instance.event_slots() &&
               instance.event_active(v);
      },
      [&](int32_t u) {
        return u >= 0 && u < instance.user_slots() && instance.user_active(u);
      },
      mutation);
}

std::string ValidateMutation(const ServiceSnapshot& snapshot,
                             const Mutation& mutation) {
  return ValidateMutationImpl(
      snapshot.dim(),
      [&](int32_t v) {
        return snapshot.event_in_range(v) && snapshot.event_active(v);
      },
      [&](int32_t u) {
        return snapshot.user_in_range(u) && snapshot.user_active(u);
      },
      mutation);
}

ArrangementService::ArrangementService(const Instance& initial,
                                       ServiceOptions options, bool fresh_wal)
    : options_(std::move(options)) {
  GEACC_CHECK(options_.batch_size >= 1) << "batch_size must be >= 1";
  GEACC_CHECK(options_.queue_depth >= 1) << "queue_depth must be >= 1";
  instance_ = std::make_unique<DynamicInstance>(initial);
  arranger_ =
      std::make_unique<IncrementalArranger>(instance_.get(), options_.repair);
  if (options_.bootstrap_full_resolve) arranger_->FullResolve();
  if (fresh_wal && !options_.wal_path.empty()) {
    std::string error;
    GEACC_CHECK(wal_.Open(options_.wal_path, initial, &error))
        << "wal: " << error;
  }
  OpenPagedCheckpointStore();
}

ArrangementService::ArrangementService(
    std::unique_ptr<DynamicInstance> instance, ServiceOptions options)
    : options_(std::move(options)), instance_(std::move(instance)) {
  GEACC_CHECK(options_.batch_size >= 1) << "batch_size must be >= 1";
  GEACC_CHECK(options_.queue_depth >= 1) << "queue_depth must be >= 1";
  arranger_ =
      std::make_unique<IncrementalArranger>(instance_.get(), options_.repair);
}

void ArrangementService::OpenPagedCheckpointStore() {
  if (options_.paged_checkpoint_path.empty()) return;
  GEACC_CHECK(options_.checkpoint_interval_batches >= 1)
      << "checkpoint_interval_batches must be >= 1";
  std::string error;
  paged_checkpoint_ = PagedCheckpointStore::Open(
      options_.paged_checkpoint_path, options_.checkpoint_page_size, &error);
  if (paged_checkpoint_ == nullptr) {
    GEACC_LOG(WARNING) << "paged checkpoint disabled: " << error;
  }
}

void ArrangementService::WritePagedCheckpoint() {
  if (paged_checkpoint_ == nullptr) return;
  ServiceState state;
  state.similarity_name = instance_->similarity().Name();
  state.similarity_param = instance_->similarity().Param();
  state.slot = instance_->ExportSlotState();
  state.arranger = arranger_->ExportState();
  PagedCheckpointStore::WriteStats write_stats;
  std::string error;
  if (!paged_checkpoint_->Write(state, wal_mutations_, &write_stats,
                                &error)) {
    GEACC_LOG(WARNING) << "paged checkpoint write failed (WAL still "
                       << "authoritative): " << error;
    return;
  }
  batches_since_checkpoint_ = 0;
}

ArrangementService::ArrangementService(const Instance& initial,
                                       ServiceOptions options)
    : ArrangementService(initial, std::move(options), /*fresh_wal=*/true) {
  PublishInitial();
  StartWriter();
}

std::unique_ptr<ArrangementService>
ArrangementService::TryRecoverFromPagedCheckpoint(
    const ServiceOptions& options, const WalContents& contents) {
  std::string error;
  std::unique_ptr<PagedCheckpointStore> store = PagedCheckpointStore::Open(
      options.paged_checkpoint_path, options.checkpoint_page_size, &error);
  if (store == nullptr) return nullptr;
  ServiceState state;
  int64_t applied = 0;
  if (!store->Read(&state, &applied, &error)) {
    GEACC_LOG(INFO) << "paged checkpoint unusable (" << error
                    << "); recovering by full WAL replay";
    return nullptr;
  }
  if (applied < 0 ||
      applied > static_cast<int64_t>(contents.mutations.size())) {
    // The checkpoint is ahead of this WAL — wrong file pairing.
    GEACC_LOG(WARNING) << "paged checkpoint covers " << applied
                       << " mutations but the WAL holds "
                       << contents.mutations.size()
                       << "; recovering by full WAL replay";
    return nullptr;
  }
  std::unique_ptr<SimilarityFunction> similarity =
      MakeSimilarity(state.similarity_name, state.similarity_param);
  if (similarity == nullptr ||
      similarity->Name() != contents.initial.similarity().Name()) {
    return nullptr;
  }
  std::optional<DynamicInstance> instance = DynamicInstance::FromSlotState(
      std::move(state.slot), std::move(similarity), &error);
  if (!instance) {
    GEACC_LOG(WARNING) << "paged checkpoint instance rejected: " << error;
    return nullptr;
  }
  auto service = std::unique_ptr<ArrangementService>(new ArrangementService(
      std::make_unique<DynamicInstance>(*std::move(instance)), options));
  error = service->arranger_->RestoreState(state.arranger);
  if (!error.empty()) {
    GEACC_LOG(WARNING) << "paged checkpoint arrangement rejected: " << error;
    return nullptr;
  }
  // Replay only the suffix the checkpoint does not cover.
  for (size_t i = static_cast<size_t>(applied); i < contents.mutations.size();
       ++i) {
    service->arranger_->Apply(contents.mutations[i]);
  }
  service->paged_checkpoint_ = std::move(store);
  if (static_cast<size_t>(applied) < contents.mutations.size()) {
    // The store is behind the WAL; make sure Stop() (or the next batch)
    // freshens it even if no further batches arrive.
    service->batches_since_checkpoint_ = 1;
  }
  GEACC_STATS_ADD("svc.ckpt.recoveries", 1);
  GEACC_LOG(INFO) << "recovered from paged checkpoint: " << applied
                  << " mutations skipped, "
                  << contents.mutations.size() - static_cast<size_t>(applied)
                  << " replayed";
  return service;
}

std::unique_ptr<ArrangementService> ArrangementService::Recover(
    ServiceOptions options, std::string* error) {
  if (options.wal_path.empty()) {
    if (error != nullptr) *error = "recover requires options.wal_path";
    return nullptr;
  }
  std::optional<WalContents> contents = ReadWal(options.wal_path, error);
  if (!contents) return nullptr;

  const std::string wal_path = options.wal_path;
  std::unique_ptr<ArrangementService> service;
  if (!options.paged_checkpoint_path.empty()) {
    service = TryRecoverFromPagedCheckpoint(options, *contents);
  }
  if (service == nullptr) {
    service = std::unique_ptr<ArrangementService>(new ArrangementService(
        contents->initial, std::move(options), /*fresh_wal=*/false));
    // The WAL holds exactly the applied sequence; repair is deterministic,
    // so replaying it lands on the crashed process's arrangement
    // bit-for-bit.
    for (const Mutation& mutation : contents->mutations) {
      service->arranger_->Apply(mutation);
    }
  }
  service->wal_mutations_ =
      static_cast<int64_t>(contents->mutations.size());
  if (contents->dropped_tail_lines > 0) {
    // A torn final line is still sitting in the file; appending after it
    // would fuse the next mutation onto the fragment. Rewrite the WAL
    // from the prefix that replayed.
    if (!service->wal_.Open(wal_path, contents->initial, error)) {
      return nullptr;
    }
    for (const Mutation& mutation : contents->mutations) {
      service->wal_.Append(mutation);
    }
    if (!service->wal_.Sync()) {
      if (error != nullptr) *error = "wal rewrite failed";
      return nullptr;
    }
  } else if (!service->wal_.OpenForAppend(wal_path, error)) {
    return nullptr;
  }
  service->PublishInitial();
  service->StartWriter();
  return service;
}

ArrangementService::~ArrangementService() { Stop(); }

void ArrangementService::PublishInitial() {
  snapshot_.store(BuildSnapshot(*instance_, *arranger_, /*applied_seq=*/0),
                  std::memory_order_release);
}

void ArrangementService::StartWriter() {
  writer_ = std::thread([this] { WriterLoop(); });
}

SubmitResult ArrangementService::Submit(Mutation mutation) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_) return {SvcStatus::kShuttingDown, -1};
  if (static_cast<int>(queue_.size()) >= options_.queue_depth) {
    ++overloads_;
    GEACC_STATS_ADD("svc.overloads", 1);
    return {SvcStatus::kOverloaded, -1};
  }
  const int64_t ticket = ++next_ticket_;
  queue_.push_back({std::move(mutation), ticket});
  GEACC_STATS_ADD("svc.submits", 1);
  queue_cv_.notify_one();
  return {SvcStatus::kOk, ticket};
}

SubmitResult ArrangementService::SubmitInstall(
    std::vector<std::pair<EventId, UserId>> pairs, uint64_t max_sum_bits) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_) return {SvcStatus::kShuttingDown, -1};
  if (static_cast<int>(queue_.size()) >= options_.queue_depth) {
    ++overloads_;
    GEACC_STATS_ADD("svc.overloads", 1);
    return {SvcStatus::kOverloaded, -1};
  }
  const int64_t ticket = ++next_ticket_;
  PendingMutation pending;
  pending.ticket = ticket;
  pending.is_install = true;
  pending.install_pairs = std::move(pairs);
  pending.install_max_sum_bits = max_sum_bits;
  queue_.push_back(std::move(pending));
  GEACC_STATS_ADD("svc.installs", 1);
  queue_cv_.notify_one();
  return {SvcStatus::kOk, ticket};
}

SvcStatus ArrangementService::WaitForTicket(int64_t ticket) {
  std::unique_lock<std::mutex> lock(mu_);
  if (ticket < 1 || ticket > next_ticket_) return SvcStatus::kInvalidArgument;
  applied_cv_.wait(lock, [&] { return applied_seq_ >= ticket; });
  return rejected_.count(ticket) != 0 ? SvcStatus::kRejected : SvcStatus::kOk;
}

void ArrangementService::Flush() {
  std::unique_lock<std::mutex> lock(mu_);
  const int64_t target = next_ticket_;
  applied_cv_.wait(lock, [&] { return applied_seq_ >= target; });
}

void ArrangementService::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  queue_cv_.notify_all();
  if (writer_.joinable()) writer_.join();
  // The writer is gone, so touching its state is safe. A final checkpoint
  // makes the next Recover() suffix empty (clean shutdown = O(dirty
  // pages) restart).
  if (paged_checkpoint_ != nullptr && batches_since_checkpoint_ > 0) {
    WritePagedCheckpoint();
  }
  wal_.Close();
}

void ArrangementService::WriterLoop() {
  for (;;) {
    std::vector<PendingMutation> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, fully drained
      const int take =
          std::min<int>(options_.batch_size, static_cast<int>(queue_.size()));
      batch.reserve(take);
      for (int i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    if (options_.writer_stall_ms_for_test > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.writer_stall_ms_for_test));
    }
    ApplyBatch(std::move(batch));
  }
}

void ArrangementService::ApplyBatch(std::vector<PendingMutation> batch) {
  GEACC_DCHECK(!batch.empty());
  std::vector<int64_t> rejected_now;
  {
    GEACC_PHASE_TIMER("svc.batch_apply");
    for (PendingMutation& pending : batch) {
      if (pending.is_install) {
        // Whole-arrangement swap. Not an instance mutation (epoch and WAL
        // untouched): the coordinator re-derives and re-installs after
        // any recovery, so durability rides on the mutation log alone.
        const std::string problem = arranger_->InstallArrangement(
            pending.install_pairs, pending.install_max_sum_bits);
        if (!problem.empty()) {
          rejected_now.push_back(pending.ticket);
          GEACC_STATS_ADD("svc.installs_rejected", 1);
          GEACC_LOG(WARNING) << "arrangement install rejected: " << problem;
        } else {
          GEACC_STATS_ADD("svc.installs_applied", 1);
        }
        continue;
      }
      const std::string problem =
          ValidateMutation(*instance_, pending.mutation);
      if (!problem.empty()) {
        rejected_now.push_back(pending.ticket);
        GEACC_STATS_ADD("svc.rejected", 1);
        continue;
      }
      arranger_->Apply(pending.mutation);
      if (wal_.is_open()) {
        wal_.Append(pending.mutation);
        ++wal_mutations_;
      }
      GEACC_STATS_ADD("svc.mutations_applied", 1);
    }
    if (wal_.is_open()) wal_.Sync();
  }

  std::shared_ptr<const ServiceSnapshot> next;
  {
    GEACC_PHASE_TIMER("svc.snapshot_build");
    next = BuildSnapshot(*instance_, *arranger_, batch.back().ticket);
  }
  snapshot_.store(std::move(next), std::memory_order_release);
  GEACC_STATS_ADD("svc.batches", 1);
  GEACC_STATS_ADD("svc.snapshots_published", 1);

  {
    std::lock_guard<std::mutex> lock(mu_);
    applied_seq_ = batch.back().ticket;
    for (const int64_t ticket : rejected_now) {
      rejected_.insert(ticket);
      rejected_order_.push_back(ticket);
    }
    while (rejected_order_.size() > kRejectedWindow) {
      rejected_.erase(rejected_order_.front());
      rejected_order_.pop_front();
    }
  }
  applied_cv_.notify_all();

  // Checkpoint after publishing so readers never wait on checkpoint IO.
  // The WAL batch above is already durable, so a crash mid-checkpoint
  // loses nothing.
  if (paged_checkpoint_ != nullptr &&
      ++batches_since_checkpoint_ >= options_.checkpoint_interval_batches) {
    WritePagedCheckpoint();
  }
}

SvcStatus ArrangementService::GetAssignments(UserId user,
                                             std::vector<EventId>* out) const {
  const std::shared_ptr<const ServiceSnapshot> snap = snapshot();
  if (!snap->user_in_range(user)) return SvcStatus::kInvalidArgument;
  *out = snap->AssignmentsOf(user);
  return SvcStatus::kOk;
}

SvcStatus ArrangementService::GetAttendees(EventId event,
                                           std::vector<UserId>* out) const {
  const std::shared_ptr<const ServiceSnapshot> snap = snapshot();
  if (!snap->event_in_range(event)) return SvcStatus::kInvalidArgument;
  *out = snap->AttendeesOf(event);
  std::sort(out->begin(), out->end());
  return SvcStatus::kOk;
}

SvcStatus ArrangementService::TopKEvents(UserId user, int k,
                                         std::vector<ScoredEvent>* out) const {
  const std::shared_ptr<const ServiceSnapshot> snap = snapshot();
  if (!snap->user_in_range(user) || k < 0) return SvcStatus::kInvalidArgument;
  *out = snap->TopKEvents(user, k);
  return SvcStatus::kOk;
}

SvcStatus ArrangementService::Candidates(
    UserId first_user, int user_count,
    std::vector<ScoredCandidate>* out) const {
  if (first_user < 0 || user_count < 0) return SvcStatus::kInvalidArgument;
  const std::shared_ptr<const ServiceSnapshot> snap = snapshot();
  *out = snap->Candidates(first_user, user_count);
  return SvcStatus::kOk;
}

ServiceStatsView ArrangementService::Stats() const {
  const std::shared_ptr<const ServiceSnapshot> snap = snapshot();
  ServiceStatsView view;
  view.epoch = snap->epoch();
  view.applied_seq = snap->applied_seq();
  view.pairs = snap->num_pairs();
  view.active_events = snap->num_active_events();
  view.active_users = snap->num_active_users();
  view.event_slots = snap->event_slots();
  view.user_slots = snap->user_slots();
  view.max_sum = snap->max_sum();
  {
    std::lock_guard<std::mutex> lock(mu_);
    view.queued = static_cast<int32_t>(queue_.size());
    view.overloads = overloads_;
  }
  return view;
}

bool ArrangementService::Checkpoint(const std::string& path,
                                    std::string* error) const {
  const std::shared_ptr<const ServiceSnapshot> snap = snapshot();
  const Instance dense = snap->ToDenseInstance();
  const Arrangement arrangement = snap->ToDenseArrangement();
  return WriteCheckpoint(dense, arrangement, path, error);
}

}  // namespace geacc::svc
