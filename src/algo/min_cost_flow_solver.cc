#include "algo/min_cost_flow_solver.h"

#include <cstdint>
#include <utility>
#include <vector>

#include "algo/conflict_resolution.h"
#include "flow/graph.h"
#include "flow/min_cost_flow.h"
#include "flow/spfa_min_cost_flow.h"
#include "obs/stats.h"
#include "util/memory.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace geacc {
namespace {

// An augmenting path with real cost below 1 strictly improves
// MaxSum(M_Δ) = Δ − cost(Δ); a path at exactly 1 leaves it unchanged. The
// epsilon guards float noise at the boundary.
constexpr double kUnitCostStop = 1.0 - 1e-9;

}  // namespace

Arrangement MinCostFlowSolver::SolveWithoutConflicts(
    const Instance& instance, SolverStats* stats) const {
  ThreadPool pool(ResolveThreadCount(options_.threads));
  return SolveWithoutConflictsOn(instance, stats, pool);
}

Arrangement MinCostFlowSolver::SolveWithoutConflictsOn(
    const Instance& instance, SolverStats* stats, ThreadPool& pool) const {
  const int num_events = instance.num_events();
  const int num_users = instance.num_users();
  Arrangement matching(num_events, num_users);
  if (num_events == 0 || num_users == 0) return matching;

  // Node layout: 0 = source, 1..|V| = events, |V|+1..|V|+|U| = users,
  // |V|+|U|+1 = sink.
  const int source = 0;
  const int sink = num_events + num_users + 1;
  FlowGraph graph(num_events + num_users + 2);
  for (EventId v = 0; v < num_events; ++v) {
    graph.AddArc(source, 1 + v, instance.event_capacity(v), 0.0);
  }
  // Pair-cost precompute fans out over events (each chunk owns a disjoint
  // row slice); AddArc mutates the shared graph, so arc construction stays
  // serial and just reads the precomputed costs in row-major order. Each
  // row is one batched-kernel call (this is the fp_mode="fast" opt-in
  // site — DESIGN.md §15.3); the mirror is forced warm before the fan-out
  // so workers never contend on its build lock.
  std::vector<double> pair_costs(static_cast<size_t>(num_events) * num_users);
  {
    GEACC_PHASE_TIMER("mcf.pair_costs");
    const simd::FpMode fp = ResolveFpMode(options_);
    instance.user_attributes().Blocked();
    pool.ParallelFor(0, num_events, [&](int /*chunk*/, int64_t chunk_begin,
                                        int64_t chunk_end) {
      for (EventId v = static_cast<EventId>(chunk_begin);
           v < static_cast<EventId>(chunk_end); ++v) {
        double* row = &pair_costs[static_cast<size_t>(v) * num_users];
        instance.SimilarityRow(v, fp, row);
        for (UserId u = 0; u < num_users; ++u) {
          row[u] = 1.0 - row[u];
        }
      }
    });
  }
  // Row-major (v, u) arc ids for matching extraction. The paper includes
  // arcs even for sim = 0 pairs (they may carry flow; such pairs are simply
  // excluded from the extracted matching).
  std::vector<int> pair_arcs(static_cast<size_t>(num_events) * num_users);
  for (EventId v = 0; v < num_events; ++v) {
    for (UserId u = 0; u < num_users; ++u) {
      pair_arcs[static_cast<size_t>(v) * num_users + u] = graph.AddArc(
          1 + v, 1 + num_events + u, 1,
          pair_costs[static_cast<size_t>(v) * num_users + u]);
    }
  }
  for (UserId u = 0; u < num_users; ++u) {
    graph.AddArc(1 + num_events + u, sink, instance.user_capacity(u), 0.0);
  }

  // Unit-by-unit sweep over Δ = 1..Δmax, equivalent to Algorithm 1's loop:
  // after k augmentations the residual flow is the min-cost flow of amount
  // k, and MaxSum(M_k) = k − cost(k). Unit costs are non-decreasing, so the
  // sweep stops at the first path that no longer improves, leaving the flow
  // at the Δ with maximum MaxSum. Sequential by construction — the flow at
  // Δ+1 extends the flow at Δ (see the header for why per-Δ fan-out loses).
  int64_t best_delta = 0;
  uint64_t engine_bytes = 0;
  {
    GEACC_PHASE_TIMER("mcf.flow_sweep");
    if (options_.flow_algorithm == "spfa") {
      SpfaMinCostFlow spfa(&graph, source, sink);
      while (spfa.AugmentIfCheaper(kUnitCostStop) == 1) ++best_delta;
      engine_bytes = spfa.ByteEstimate();
    } else {
      GEACC_CHECK_EQ(options_.flow_algorithm, std::string("dijkstra"))
          << "unknown flow_algorithm";
      SuccessiveShortestPaths sspa(&graph, source, sink);
      while (sspa.AugmentIfCheaper(kUnitCostStop) == 1) ++best_delta;
      engine_bytes = sspa.ByteEstimate();
    }
  }

  // Matching extraction reads the settled flow concurrently; per-chunk
  // matched-pair lists fold in chunk order, reproducing the serial
  // row-major Add order exactly.
  {
    GEACC_PHASE_TIMER("mcf.extract");
    using PairList = std::vector<std::pair<EventId, UserId>>;
    ParallelMap<PairList>(
        pool, 0, num_events,
        [&](int64_t chunk_begin, int64_t chunk_end) {
          PairList matched;
          for (EventId v = static_cast<EventId>(chunk_begin);
               v < static_cast<EventId>(chunk_end); ++v) {
            for (UserId u = 0; u < num_users; ++u) {
              const int arc = pair_arcs[static_cast<size_t>(v) * num_users + u];
              if (graph.Flow(arc) == 1 && instance.Similarity(v, u) > 0.0) {
                matched.emplace_back(v, u);
              }
            }
          }
          return matched;
        },
        [&](const PairList& matched) {
          for (const auto& [v, u] : matched) matching.Add(v, u);
        });
  }
  if (stats != nullptr) {
    // +1 for the final (rejected) path search that ended the sweep.
    stats->flow_augmentations += best_delta + 1;
    stats->best_delta = best_delta;
    stats->logical_peak_bytes += graph.ByteEstimate() + engine_bytes +
                                 VectorBytes(pair_arcs) +
                                 VectorBytes(pair_costs);
  }
  GEACC_STATS_ADD("mcf.flow_sweeps", 1);
  GEACC_STATS_ADD("mcf.best_delta", best_delta);
  return matching;
}

SolveResult MinCostFlowSolver::Solve(const Instance& instance) const {
  WallTimer timer;
  SolverStats stats;
  ThreadPool pool(ResolveThreadCount(options_.threads));
  Arrangement unconstrained =
      SolveWithoutConflictsOn(instance, &stats, pool);

  // Step 2 (lines 8–14): per user, keep a non-conflicting subset —
  // greedily (the paper's rule) or exactly (bitmask MWIS ablation). Users
  // are independent, so resolution fans out; per-chunk kept lists are
  // applied in chunk (= user) order, matching the serial Add order.
  GEACC_PHASE_TIMER("mcf.conflict_resolution");
  Arrangement result(instance.num_events(), instance.num_users());
  struct ResolvedChunk {
    std::vector<std::pair<UserId, std::vector<EventId>>> kept;
    int64_t evicted = 0;
  };
  ParallelMap<ResolvedChunk>(
      pool, 0, instance.num_users(),
      [&](int64_t chunk_begin, int64_t chunk_end) {
        ResolvedChunk out;
        for (UserId u = static_cast<UserId>(chunk_begin);
             u < static_cast<UserId>(chunk_end); ++u) {
          const std::vector<EventId>& assigned = unconstrained.EventsOf(u);
          if (assigned.empty()) continue;
          std::vector<EventId> kept =
              options_.exact_conflict_resolution
                  ? ExactSelectNonConflicting(instance, u, assigned)
                  : GreedySelectNonConflicting(instance, u, assigned);
          out.evicted += static_cast<int64_t>(assigned.size() - kept.size());
          out.kept.emplace_back(u, std::move(kept));
        }
        return out;
      },
      [&](const ResolvedChunk& chunk) {
        stats.conflicts_resolved += chunk.evicted;
        for (const auto& [u, kept] : chunk.kept) {
          for (const EventId v : kept) result.Add(v, u);
        }
      });
  GEACC_STATS_ADD("mcf.conflict_evictions", stats.conflicts_resolved);
  stats.logical_peak_bytes +=
      unconstrained.ByteEstimate() + result.ByteEstimate();
  stats.wall_seconds = timer.Seconds();
  return {std::move(result), stats};
}

}  // namespace geacc
