// Disk-backed B+-tree over a PageFile + BufferPool (DESIGN.md §14).
//
// The paged sibling of container/bplus_tree.h with the identical ordered
// semantics — duplicate keys allowed, LowerBound/UpperBound positioning,
// bidirectional iteration over linked leaves — so the iDistance cursor
// template runs unchanged on either. Differences forced by the medium:
//
//   * build-once: Build() streams sorted entries into packed leaf pages
//     under the pool's memory budget and bottom-up internal levels, then
//     commits the root through the superblock. There is no Insert();
//     mutation means rebuild (the GEACC index workloads are bulk-loaded
//     per epoch).
//   * iterators hold (page id, slot), not pointers: every access pins the
//     page through the buffer pool and releases it before returning, so
//     any number of live cursors coexist with a two-frame pool and
//     eviction can never invalidate a position. After Build()/Attach()
//     the tree is immutable, so positions stay valid forever.
//
// Keys and values must be trivially copyable; all page access is memcpy
// (no alignment or aliasing assumptions on the page buffer).
//
// IO/corruption errors inside navigation CHECK-fail: Attach() validates
// reachability up front, navigation touches only pages this tree wrote,
// and cursor signatures (mirroring the in-memory tree) have no error
// channel. Use Attach()'s soft error for untrusted files.

#ifndef GEACC_STORAGE_PAGED_BPLUS_TREE_H_
#define GEACC_STORAGE_PAGED_BPLUS_TREE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/page_file.h"
#include "util/check.h"

namespace geacc::storage {

template <typename Key, typename Value>
class PagedBPlusTree {
  static_assert(std::is_trivially_copyable_v<Key> &&
                    std::is_trivially_copyable_v<Value>,
                "paged tree entries are stored as raw bytes");

  // Page payload layouts (little-endian host assumed, as elsewhere in the
  // on-disk formats). Leaf:    [LeafHeader][Key × cap][Value × cap]
  // Internal: [InternalHeader][Key × (cap-1) separators][PageId × cap]
  struct LeafHeader {
    uint32_t count = 0;
    PageId prev = kInvalidPageId;
    PageId next = kInvalidPageId;
    uint32_t pad = 0;
  };
  struct InternalHeader {
    uint32_t count = 0;  // number of children
    uint32_t pad[3] = {0, 0, 0};
  };
  static_assert(sizeof(LeafHeader) == 16 && sizeof(InternalHeader) == 16);

 public:
  // `file` and `pool` must outlive the tree; `pool` must wrap `file`.
  PagedBPlusTree(PageFile* file, BufferPool* pool)
      : file_(file), pool_(pool) {
    GEACC_CHECK(file_ != nullptr && pool_ != nullptr);
    GEACC_CHECK(pool_->file() == file_);
    const uint32_t payload = file_->payload_capacity();
    leaf_capacity_ = static_cast<int>(
        (payload - sizeof(LeafHeader)) / (sizeof(Key) + sizeof(Value)));
    internal_capacity_ = static_cast<int>(
        (payload - sizeof(InternalHeader) + sizeof(Key)) /
        (sizeof(Key) + sizeof(PageId)));
    GEACC_CHECK(leaf_capacity_ >= 2 && internal_capacity_ >= 2)
        << "page size too small for this entry type";
  }

  int64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  int height() const { return height_; }
  int leaf_capacity() const { return leaf_capacity_; }
  uint64_t file_bytes() const {
    return (2ull + file_->allocated_pages()) * file_->page_size();
  }

  // Streams `entries` (sorted by key; duplicate input order preserved)
  // into a fresh page run and commits the tree meta. Peak memory is the
  // pool budget plus one (head key, page id) pair per page.
  bool Build(const std::vector<std::pair<Key, Value>>& entries,
             std::string* error);

  // Loads the tree meta committed by a previous Build() on this file and
  // validates the root is readable. Fails (soft) on a foreign or torn
  // file.
  bool Attach(std::string* error);

  class ConstIterator {
   public:
    ConstIterator() = default;

    Key key() const {
      Pinned page = Pin();
      return ReadKey(page.ref, slot_);
    }
    Value value() const {
      Pinned page = Pin();
      Value out;
      std::memcpy(&out,
                  page.ref.data() + sizeof(LeafHeader) +
                      static_cast<size_t>(tree_->leaf_capacity_) *
                          sizeof(Key) +
                      static_cast<size_t>(slot_) * sizeof(Value),
                  sizeof(Value));
      return out;
    }

    // Advances toward larger keys. Must not be end().
    ConstIterator& operator++() {
      GEACC_DCHECK(page_ != kInvalidPageId);
      Pinned page = Pin();
      const LeafHeader header = ReadLeafHeader(page.ref);
      if (++slot_ >= static_cast<int>(header.count)) {
        page_ = header.next;
        slot_ = 0;
      }
      return *this;
    }

    // Retreats toward smaller keys. Must not be begin(); decrementing
    // end() yields the last element.
    ConstIterator& operator--() {
      if (page_ == kInvalidPageId) {
        page_ = tree_->last_leaf_;
        GEACC_DCHECK(page_ != kInvalidPageId)
            << "decremented end() of empty tree";
        Pinned page = Pin();
        slot_ = static_cast<int>(ReadLeafHeader(page.ref).count) - 1;
        return *this;
      }
      if (--slot_ < 0) {
        Pinned page = Pin();
        page_ = ReadLeafHeader(page.ref).prev;
        GEACC_DCHECK(page_ != kInvalidPageId) << "decremented begin()";
        page.ref.Release();
        Pinned prev = Pin();
        slot_ = static_cast<int>(ReadLeafHeader(prev.ref).count) - 1;
      }
      return *this;
    }

    bool operator==(const ConstIterator& other) const {
      return page_ == other.page_ &&
             (page_ == kInvalidPageId || slot_ == other.slot_);
    }
    bool operator!=(const ConstIterator& other) const {
      return !(*this == other);
    }

   private:
    friend class PagedBPlusTree;

    struct Pinned {
      BufferPool::PageRef ref;
    };
    Pinned Pin() const {
      Pinned pinned;
      std::string error;
      GEACC_CHECK(tree_->pool_->Fetch(page_, &pinned.ref, &error)) << error;
      return pinned;
    }
    static LeafHeader ReadLeafHeader(const BufferPool::PageRef& ref) {
      LeafHeader header;
      std::memcpy(&header, ref.data(), sizeof(header));
      return header;
    }
    static Key ReadKey(const BufferPool::PageRef& ref, int slot) {
      Key out;
      std::memcpy(&out,
                  ref.data() + sizeof(LeafHeader) +
                      static_cast<size_t>(slot) * sizeof(Key),
                  sizeof(Key));
      return out;
    }

    ConstIterator(const PagedBPlusTree* tree, PageId page, int slot)
        : tree_(tree), page_(page), slot_(slot) {}

    const PagedBPlusTree* tree_ = nullptr;
    PageId page_ = kInvalidPageId;  // kInvalidPageId = end()
    int slot_ = 0;
  };

  ConstIterator begin() const {
    return ConstIterator(this, first_leaf_, 0);
  }
  ConstIterator end() const {
    return ConstIterator(this, kInvalidPageId, 0);
  }

  // First position with key() >= key (end() if none).
  ConstIterator LowerBound(const Key& key) const {
    return Bound(key, /*strictly_greater=*/false);
  }
  // First position with key() > key (end() if none).
  ConstIterator UpperBound(const Key& key) const {
    return Bound(key, /*strictly_greater=*/true);
  }

 private:
  friend class ConstIterator;

  BufferPool::PageRef MustFetch(PageId id) const {
    BufferPool::PageRef ref;
    std::string error;
    GEACC_CHECK(pool_->Fetch(id, &ref, &error)) << error;
    return ref;
  }

  static Key ReadKeyAt(const uint8_t* base, size_t index) {
    Key out;
    std::memcpy(&out, base + index * sizeof(Key), sizeof(Key));
    return out;
  }

  // Descends to the leaf whose range covers `key` (rightmost child past
  // every separator <= key), mirroring the in-memory FindLeaf.
  PageId FindLeaf(const Key& key) const {
    if (root_ == kInvalidPageId) return kInvalidPageId;
    PageId page = root_;
    for (int level = height_; level > 1; --level) {
      BufferPool::PageRef ref = MustFetch(page);
      GEACC_CHECK(ref.type() == kPageTypeInternal);
      InternalHeader header;
      std::memcpy(&header, ref.data(), sizeof(header));
      const uint8_t* separators = ref.data() + sizeof(InternalHeader);
      uint32_t child = 0;
      while (child + 1 < header.count &&
             !(key < ReadKeyAt(separators, child))) {
        ++child;
      }
      const uint8_t* children =
          ref.data() + sizeof(InternalHeader) +
          static_cast<size_t>(internal_capacity_ - 1) * sizeof(Key);
      PageId next;
      std::memcpy(&next, children + child * sizeof(PageId), sizeof(next));
      page = next;
    }
    return page;
  }

  ConstIterator Bound(const Key& key, bool strictly_greater) const {
    PageId leaf = FindLeaf(key);
    if (leaf == kInvalidPageId) return end();
    // For LowerBound, equal keys may extend into preceding leaves when a
    // separator equals `key`; walk back while the previous leaf still
    // ends with a qualifying key.
    if (!strictly_greater) {
      for (;;) {
        BufferPool::PageRef ref = MustFetch(leaf);
        LeafHeader header;
        std::memcpy(&header, ref.data(), sizeof(header));
        if (header.prev == kInvalidPageId) break;
        ref.Release();
        BufferPool::PageRef prev = MustFetch(header.prev);
        LeafHeader prev_header;
        std::memcpy(&prev_header, prev.data(), sizeof(prev_header));
        if (prev_header.count == 0 ||
            ReadKeyAt(prev.data() + sizeof(LeafHeader),
                      prev_header.count - 1) < key) {
          break;
        }
        leaf = header.prev;
      }
    }
    // Scan forward from the landing leaf for the first qualifying slot.
    while (leaf != kInvalidPageId) {
      BufferPool::PageRef ref = MustFetch(leaf);
      LeafHeader header;
      std::memcpy(&header, ref.data(), sizeof(header));
      const uint8_t* keys = ref.data() + sizeof(LeafHeader);
      // Binary search within the leaf.
      uint32_t lo = 0;
      uint32_t hi = header.count;
      while (lo < hi) {
        const uint32_t mid = (lo + hi) / 2;
        const Key probe = ReadKeyAt(keys, mid);
        const bool goes_right =
            strictly_greater ? !(key < probe) : probe < key;
        if (goes_right) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      if (lo < header.count) {
        return ConstIterator(this, leaf, static_cast<int>(lo));
      }
      leaf = header.next;
    }
    return end();
  }

  PageFile* file_;
  BufferPool* pool_;
  int leaf_capacity_ = 0;
  int internal_capacity_ = 0;

  PageId root_ = kInvalidPageId;
  PageId first_leaf_ = kInvalidPageId;
  PageId last_leaf_ = kInvalidPageId;
  int64_t size_ = 0;
  int height_ = 0;
};

template <typename Key, typename Value>
bool PagedBPlusTree<Key, Value>::Build(
    const std::vector<std::pair<Key, Value>>& entries, std::string* error) {
  for (size_t i = 1; i < entries.size(); ++i) {
    GEACC_DCHECK(!(entries[i].first < entries[i - 1].first))
        << "Build input must be sorted";
  }
  root_ = first_leaf_ = last_leaf_ = kInvalidPageId;
  size_ = static_cast<int64_t>(entries.size());
  height_ = 0;

  PageFile::Meta meta;
  meta.user[5] = (static_cast<uint64_t>(sizeof(Key)) << 32) |
                 static_cast<uint64_t>(sizeof(Value));
  if (!entries.empty()) {
    // Leaf level: fully packed (the tree is immutable, no insert slack).
    const size_t per_leaf = static_cast<size_t>(leaf_capacity_);
    const size_t leaf_count = (entries.size() + per_leaf - 1) / per_leaf;
    std::vector<std::pair<Key, PageId>> level;  // (head key, page id)
    level.reserve(leaf_count);
    for (size_t start = 0; start < entries.size(); start += per_leaf) {
      BufferPool::PageRef ref;
      if (!pool_->Create(kPageTypeLeaf, &ref, error)) return false;
      const size_t stop = std::min(entries.size(), start + per_leaf);
      LeafHeader header;
      header.count = static_cast<uint32_t>(stop - start);
      header.prev = level.empty() ? kInvalidPageId : level.back().second;
      header.next = stop < entries.size() ? ref.id() + 1 : kInvalidPageId;
      std::memcpy(ref.data(), &header, sizeof(header));
      uint8_t* keys = ref.data() + sizeof(LeafHeader);
      uint8_t* values = keys + per_leaf * sizeof(Key);
      for (size_t i = start; i < stop; ++i) {
        std::memcpy(keys + (i - start) * sizeof(Key), &entries[i].first,
                    sizeof(Key));
        std::memcpy(values + (i - start) * sizeof(Value),
                    &entries[i].second, sizeof(Value));
      }
      ref.set_payload_bytes(file_->payload_capacity());
      ref.MarkDirty();
      if (first_leaf_ == kInvalidPageId) first_leaf_ = ref.id();
      last_leaf_ = ref.id();
      level.emplace_back(entries[start].first, ref.id());
    }
    // Consecutive Create() calls allocate consecutive ids, which is what
    // the precomputed `next` links above assumed.
    GEACC_CHECK(last_leaf_ == first_leaf_ + leaf_count - 1);
    height_ = 1;

    // Internal levels, bottom-up.
    while (level.size() > 1) {
      std::vector<std::pair<Key, PageId>> parents;
      const size_t fanout = static_cast<size_t>(internal_capacity_);
      parents.reserve((level.size() + fanout - 1) / fanout);
      for (size_t start = 0; start < level.size(); start += fanout) {
        BufferPool::PageRef ref;
        if (!pool_->Create(kPageTypeInternal, &ref, error)) return false;
        const size_t stop = std::min(level.size(), start + fanout);
        InternalHeader header;
        header.count = static_cast<uint32_t>(stop - start);
        std::memcpy(ref.data(), &header, sizeof(header));
        uint8_t* separators = ref.data() + sizeof(InternalHeader);
        uint8_t* children =
            separators +
            static_cast<size_t>(internal_capacity_ - 1) * sizeof(Key);
        for (size_t i = start; i < stop; ++i) {
          if (i > start) {
            std::memcpy(separators + (i - start - 1) * sizeof(Key),
                        &level[i].first, sizeof(Key));
          }
          std::memcpy(children + (i - start) * sizeof(PageId),
                      &level[i].second, sizeof(PageId));
        }
        ref.set_payload_bytes(file_->payload_capacity());
        ref.MarkDirty();
        parents.emplace_back(level[start].first, ref.id());
      }
      level = std::move(parents);
      ++height_;
    }
    root_ = level.front().second;
  }

  if (!pool_->FlushAll(error)) return false;
  meta.data_pages = file_->allocated_pages();
  meta.user[0] = root_;
  meta.user[1] = static_cast<uint64_t>(height_);
  meta.user[2] = static_cast<uint64_t>(size_);
  meta.user[3] = first_leaf_;
  meta.user[4] = last_leaf_;
  return file_->Commit(meta, error);
}

template <typename Key, typename Value>
bool PagedBPlusTree<Key, Value>::Attach(std::string* error) {
  const PageFile::Meta& meta = file_->meta();
  const uint64_t format = (static_cast<uint64_t>(sizeof(Key)) << 32) |
                          static_cast<uint64_t>(sizeof(Value));
  if (meta.user[5] != format) {
    if (error != nullptr) {
      *error = "page file does not hold a tree of this key/value type";
    }
    return false;
  }
  root_ = static_cast<PageId>(meta.user[0]);
  height_ = static_cast<int>(meta.user[1]);
  size_ = static_cast<int64_t>(meta.user[2]);
  first_leaf_ = static_cast<PageId>(meta.user[3]);
  last_leaf_ = static_cast<PageId>(meta.user[4]);
  if (size_ == 0) return true;
  if (root_ >= meta.data_pages || first_leaf_ >= meta.data_pages ||
      last_leaf_ >= meta.data_pages || height_ < 1) {
    if (error != nullptr) *error = "tree meta references missing pages";
    return false;
  }
  BufferPool::PageRef ref;
  if (!pool_->Fetch(root_, &ref, error)) return false;
  const uint16_t expected =
      height_ == 1 ? kPageTypeLeaf : kPageTypeInternal;
  if (ref.type() != expected) {
    if (error != nullptr) *error = "tree root has the wrong page type";
    return false;
  }
  return true;
}

}  // namespace geacc::storage

#endif  // GEACC_STORAGE_PAGED_BPLUS_TREE_H_
