// Perf-regression gate over `geacc-bench v1` reports (src/obs/bench_report.h).
//
// Merge mode — combine several bench reports into one baseline file,
// prefixing every point label with its bench name so keys stay unique:
//
//   compare_reports --merge BENCH_baseline.json micro.json fig6.json
//
// Compare mode — diff a freshly measured report (merged the same way)
// against the committed baseline:
//
//   compare_reports BENCH_baseline.json current.json
//       [--tolerance 0.25] [--min_seconds 0.02]
//
// Compare mode can additionally gate named search-effort counters:
// --counters prune.nodes_visited[,...] with --counter_tolerance (allowed
// fractional growth) and --min_count (baseline floor below which a
// counter is never gated).
//
// Points are keyed by (label, solver). For each key present in both
// reports the wall- and CPU-second deltas are tabulated; a point regresses
// when time grows beyond --tolerance (fractional, default ±25%) AND both
// sides are above the --min_seconds noise floor (sub-floor measurements
// are dominated by scheduler jitter, not code). Exit status: 1 if any
// point regressed, else 0. Keys present on only one side are listed as
// warnings — they indicate a bench or baseline that needs regenerating —
// but do not fail the gate, so adding a bench does not break CI until the
// baseline is refreshed.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench/report_gate.h"
#include "obs/bench_report.h"
#include "obs/json.h"
#include "util/flags.h"
#include "util/string_util.h"
#include "util/table.h"

namespace {

bool LoadReport(const std::string& path, geacc::obs::BenchReport* report) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "%s: cannot open\n", path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  geacc::obs::JsonValue json;
  std::string error;
  if (!geacc::obs::JsonValue::Parse(buffer.str(), &json, &error)) {
    std::fprintf(stderr, "%s: JSON parse error: %s\n", path.c_str(),
                 error.c_str());
    return false;
  }
  if (!report->FromJson(json, &error)) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), error.c_str());
    return false;
  }
  return true;
}

int Merge(const std::string& out_path,
          const std::vector<std::string>& inputs) {
  geacc::obs::BenchReport merged;
  merged.bench = "merged";
  merged.git_rev = geacc::obs::GitRevision();
  for (const std::string& path : inputs) {
    geacc::obs::BenchReport report;
    if (!LoadReport(path, &report)) return 1;
    merged.flags[report.bench + ".source"] = path;
    for (geacc::obs::BenchPoint point : report.points) {
      point.label = report.bench + "/" + point.label;
      merged.points.push_back(std::move(point));
    }
  }
  std::string error;
  if (!merged.WriteFile(out_path, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::printf("merged %zu report(s), %zu point(s) -> %s\n", inputs.size(),
              merged.points.size(), out_path.c_str());
  return 0;
}

std::string Key(const geacc::obs::BenchPoint& point) {
  return point.label + " [" + point.solver + "]";
}

int Compare(const std::string& baseline_path, const std::string& current_path,
            double tolerance, double min_seconds,
            const std::vector<std::string>& gated_counters,
            double counter_tolerance, int64_t min_count) {
  geacc::obs::BenchReport baseline, current;
  if (!LoadReport(baseline_path, &baseline) ||
      !LoadReport(current_path, &current)) {
    return 2;
  }

  std::map<std::string, const geacc::obs::BenchPoint*> baseline_points;
  for (const auto& point : baseline.points) {
    baseline_points[Key(point)] = &point;
  }

  geacc::Table table(geacc::StrFormat(
      "perf vs baseline (rev %s), tolerance ±%.0f%%, noise floor %.3fs",
      baseline.git_rev.c_str(), tolerance * 100.0, min_seconds));
  table.SetHeader({"point", "wall base", "wall now", "wall Δ%", "cpu base",
                   "cpu now", "cpu Δ%", "verdict"});

  int regressions = 0;
  std::vector<std::string> only_current;
  for (const auto& point : current.points) {
    const auto it = baseline_points.find(Key(point));
    if (it == baseline_points.end()) {
      only_current.push_back(Key(point));
      continue;
    }
    const geacc::obs::BenchPoint& base = *it->second;
    baseline_points.erase(it);

    auto delta_pct = [](double was, double now) {
      return was > 0.0 ? (now - was) / was * 100.0 : 0.0;
    };
    geacc::bench::GatePolicy policy;
    policy.tolerance = tolerance;
    policy.min_seconds = min_seconds;
    policy.counter_tolerance = counter_tolerance;
    policy.min_count = min_count;
    const bool wall_bad =
        geacc::bench::Regressed(base.wall_seconds, point.wall_seconds, policy);
    const bool cpu_bad =
        geacc::bench::Regressed(base.cpu_seconds, point.cpu_seconds, policy);
    if (wall_bad || cpu_bad) ++regressions;
    table.AddRow(
        {Key(point), geacc::StrFormat("%.4f", base.wall_seconds),
         geacc::StrFormat("%.4f", point.wall_seconds),
         geacc::StrFormat("%+.1f", delta_pct(base.wall_seconds,
                                             point.wall_seconds)),
         geacc::StrFormat("%.4f", base.cpu_seconds),
         geacc::StrFormat("%.4f", point.cpu_seconds),
         geacc::StrFormat("%+.1f", delta_pct(base.cpu_seconds,
                                             point.cpu_seconds)),
         wall_bad || cpu_bad ? "REGRESSED" : "ok"});

    // Gated search-effort counters: regress when a counter named in
    // --counters grows beyond --counter_tolerance (baseline at or above
    // --min_count; a counter missing on either side is skipped — the
    // missing-key warnings below already cover bench drift).
    for (const std::string& name : gated_counters) {
      const auto base_it = base.counters.find(name);
      const auto now_it = point.counters.find(name);
      if (base_it == base.counters.end() || now_it == point.counters.end()) {
        continue;
      }
      const bool counter_bad = geacc::bench::CounterRegressed(
          base_it->second, now_it->second, policy);
      if (counter_bad) ++regressions;
      std::printf("counter %s @ %s: %lld -> %lld (%+.1f%%) %s\n",
                  name.c_str(), Key(point).c_str(),
                  static_cast<long long>(base_it->second),
                  static_cast<long long>(now_it->second),
                  delta_pct(static_cast<double>(base_it->second),
                            static_cast<double>(now_it->second)),
                  counter_bad ? "REGRESSED" : "ok");
    }
  }
  table.Print(std::cout);

  for (const std::string& key : only_current) {
    std::printf("warning: no baseline for %s (regenerate the baseline to "
                "gate it)\n", key.c_str());
  }
  for (const auto& [key, point] : baseline_points) {
    (void)point;
    std::printf("warning: baseline point %s missing from current run\n",
                key.c_str());
  }
  if (regressions > 0) {
    std::printf("%d point(s) regressed beyond ±%.0f%%\n", regressions,
                tolerance * 100.0);
    return 1;
  }
  std::printf("no perf regressions\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string merge_out;
  double tolerance = 0.25;
  double min_seconds = 0.02;
  std::string counters_csv;
  double counter_tolerance = 0.25;
  int64_t min_count = 100;
  geacc::FlagSet flags;
  flags.AddString("merge", &merge_out,
                  "merge mode: write the concatenation of all positional "
                  "reports (labels prefixed with their bench name) here");
  flags.AddDouble("tolerance", &tolerance,
                  "fractional slowdown allowed before a point regresses");
  flags.AddDouble("min_seconds", &min_seconds,
                  "noise floor: gate a point only when both the baseline "
                  "and current measurement are at least this many seconds");
  flags.AddString("counters", &counters_csv,
                  "comma-separated counter names to gate in addition to "
                  "wall/cpu time (e.g. prune.nodes_visited)");
  flags.AddDouble("counter_tolerance", &counter_tolerance,
                  "fractional growth allowed on a gated counter");
  flags.AddInt("min_count", &min_count,
               "gate a counter only when its baseline value is at least "
               "this large");
  flags.Parse(argc, argv);

  if (!merge_out.empty()) {
    if (flags.positional().empty()) {
      std::fprintf(stderr, "--merge needs at least one input report\n");
      return 2;
    }
    return Merge(merge_out, flags.positional());
  }
  if (flags.positional().size() != 2) {
    std::fprintf(stderr,
                 "usage: %s BASELINE.json CURRENT.json [--tolerance F] "
                 "[--min_seconds S] [--counters A,B] [--counter_tolerance F] "
                 "[--min_count N]\n   or: %s --merge OUT.json IN.json...\n",
                 argv[0], argv[0]);
    return 2;
  }
  std::vector<std::string> gated_counters;
  if (!counters_csv.empty()) {
    for (const std::string& name : geacc::Split(counters_csv, ',')) {
      if (!name.empty()) gated_counters.push_back(name);
    }
  }
  return Compare(flags.positional()[0], flags.positional()[1], tolerance,
                 min_seconds, gated_counters, counter_tolerance, min_count);
}
