// Per-pair admission masks expressed through the similarity contract.
//
// Several layers need to forbid specific (event, user) pairs while
// reusing solvers that only know capacities, conflicts, and similarity:
// the slotted scenario (src/slot/) excludes users unavailable in an
// event's time slot, and the dynamic repair engine's full re-solve must
// respect the same availability annotations. Since every solver and the
// auditor already treat sim ≤ 0 as "unmatchable" (the positive-similarity
// feasibility rule), a masked instance encodes forbidden pairs as
// similarity 0 and allowed pairs bit-identically to the base function —
// no solver changes needed.
//
// Mechanics: MaskInstance() appends one trailing attribute column that
// carries the row's identity (events store +v, users store -(u+1), so
// Compute can tell the sides apart regardless of argument order), and
// wraps the base similarity in MaskedSimilarity, which scores the first
// dim-1 coordinates with the base function and returns 0.0 when the
// (event, user) bit is off in the mask. Masked instances are in-memory
// artifacts only — they are never serialized (Name() "masked" has no
// MakeSimilarity entry) and report IsEuclideanMonotone() = false so
// distance-indexed NN cursors are never consulted about them.

#ifndef GEACC_CORE_MASKED_SIMILARITY_H_
#define GEACC_CORE_MASKED_SIMILARITY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/instance.h"
#include "core/similarity.h"

namespace geacc {

class MaskedSimilarity final : public SimilarityFunction {
 public:
  // `allowed` is row-major over (event, user): allowed[v * num_users + u]
  // ≠ 0 permits the pair. `base_dim` is the wrapped function's
  // dimensionality (one less than the masked instance's dim()).
  MaskedSimilarity(std::unique_ptr<SimilarityFunction> base, int base_dim,
                   int num_users, std::vector<uint8_t> allowed);

  double Compute(const double* a, const double* b, int dim) const override;
  bool IsEuclideanMonotone() const override { return false; }
  std::string Name() const override { return "masked:" + base_->Name(); }
  double Param() const override { return base_->Param(); }
  std::unique_ptr<SimilarityFunction> Clone() const override;

 private:
  std::unique_ptr<SimilarityFunction> base_;
  int base_dim_;
  int num_users_;
  std::vector<uint8_t> allowed_;
};

// Materializes a copy of `instance` whose similarity is 0 for every pair
// with allowed[v * num_users + u] == 0 and bit-identical to the base
// similarity otherwise. Capacities and conflicts carry over unchanged;
// dim() grows by one (the identity column). Arrangement ids are
// unaffected — row order is preserved — so solve results map back 1:1.
Instance MaskInstance(const Instance& instance,
                      const std::vector<uint8_t>& allowed);

}  // namespace geacc

#endif  // GEACC_CORE_MASKED_SIMILARITY_H_
