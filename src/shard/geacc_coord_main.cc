// geacc_coord: shard coordinator for a multi-node arrangement topology
// (DESIGN.md §16).
//
// Connects to N score-only geacc_serve shards (--shard_ports), builds the
// hashed partition map over them, and either:
//
//   * serve mode (default): optionally bootstraps a synthetic instance
//     (--events/--users routed through the partition map), runs an epoch
//     repair pass every --repair_ms, and serves the svc/wire protocol on
//     --port — the front-end a loadgen fleet points at. Exits on
//     SIGINT/SIGTERM or after --duration_s.
//
//   * replay mode (--replay trace.txt): routes the trace's initial
//     instance and then each mutation in order, running a repair pass
//     every --repair_every mutations plus a final one, then dumps the
//     merged global instance + arrangement (--dump_instance /
//     --dump_arrangement) and prints the final MaxSum with full precision.
//     Deterministic: two replays of the same trace produce bit-identical
//     dumps — including a replay where a shard was SIGKILLed and
//     restarted from its WAL mid-run, which is exactly what the CI
//     failover smoke asserts.
//
//   geacc_serve --port 7421 --events 0 --users 0 --score_only ... &
//   geacc_serve --port 7422 --events 0 --users 0 --score_only ... &
//   geacc_coord --shard_ports 7421,7422 --port 7400 --events 100 --users 800
//
// Shards must be started empty (--events 0 --users 0) and --score_only;
// the coordinator is the sole writer and the only arrangement authority.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/similarity.h"
#include "gen/synthetic.h"
#include "io/trace_io.h"
#include "shard/coordinator.h"
#include "svc/client.h"
#include "svc/server.h"
#include "util/flags.h"
#include "util/string_util.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int /*signal*/) { g_stop.store(true); }

std::vector<int> ParsePortList(const std::string& list) {
  std::vector<int> ports;
  std::string current;
  for (const char c : list + ",") {
    if (c == ',') {
      if (!current.empty()) ports.push_back(std::atoi(current.c_str()));
      current.clear();
    } else {
      current += c;
    }
  }
  return ports;
}

}  // namespace

int main(int argc, char** argv) {
  int port = 7400;
  std::string shard_ports = "7421,7422,7423";
  std::string host = "127.0.0.1";
  int events = 0;
  int users = 0;
  int dim = 20;
  int64_t seed = 42;
  double conflict_density = 0.25;
  std::string similarity = "euclidean";
  double similarity_param = 10000.0;
  std::string replay;
  int64_t repair_every = 64;
  int repair_ms = 500;
  int replay_sleep_us = 0;
  std::string dump_instance;
  std::string dump_arrangement;
  int duration_s = 0;
  int max_connections = 256;
  int reconnect_timeout_s = 30;

  geacc::FlagSet flags;
  flags.AddInt("port", &port,
               "front-end TCP port on 127.0.0.1 (0 = ephemeral)");
  flags.AddString("shard_ports", &shard_ports,
                  "comma-separated shard ports on --host");
  flags.AddString("host", &host, "shard host");
  flags.AddInt("events", &events,
               "serve mode: bootstrap synthetic |V| (0 = start empty)");
  flags.AddInt("users", &users, "serve mode: bootstrap synthetic |U|");
  flags.AddInt("dim", &dim,
               "attribute dimension (must match the shards' --dim)");
  flags.AddInt("seed", &seed, "bootstrap generator seed");
  flags.AddDouble("conflict_density", &conflict_density,
                  "bootstrap conflict density");
  flags.AddString("similarity", &similarity,
                  "euclidean | cosine | rbf (must match the shards)");
  flags.AddDouble("similarity_param", &similarity_param,
                  "T for euclidean, bandwidth for rbf");
  flags.AddString("replay", &replay,
                  "replay this geacc-trace file deterministically and exit");
  flags.AddInt("repair_every", &repair_every,
               "replay mode: repair pass every this many mutations");
  flags.AddInt("repair_ms", &repair_ms,
               "serve mode: milliseconds between repair passes");
  flags.AddInt("replay_sleep_us", &replay_sleep_us,
               "replay mode: microseconds slept per mutation (widens the "
               "failover window for the CI kill test)");
  flags.AddString("dump_instance", &dump_instance,
                  "write the merged dense instance here before exit");
  flags.AddString("dump_arrangement", &dump_arrangement,
                  "write the merged dense arrangement here before exit");
  flags.AddInt("duration_s", &duration_s,
               "serve mode: exit after this long (0 = forever)");
  flags.AddInt("max_connections", &max_connections,
               "front-end live-connection cap");
  flags.AddInt("reconnect_timeout_s", &reconnect_timeout_s,
               "give up on a dead shard after this long");
  flags.Parse(argc, argv);

  const std::vector<int> ports = ParsePortList(shard_ports);
  if (ports.empty()) {
    std::fprintf(stderr, "geacc_coord: --shard_ports is empty\n");
    return 2;
  }

  // Replay mode adopts the trace's own dimension and similarity so the
  // mirror scores identically to a single-node replay of the same file.
  std::optional<geacc::MutationTrace> trace;
  if (!replay.empty()) {
    std::string trace_error;
    trace = geacc::ReadTraceFromFile(replay, &trace_error);
    if (!trace) {
      std::fprintf(stderr, "geacc_coord: %s: %s\n", replay.c_str(),
                   trace_error.c_str());
      return 1;
    }
    dim = trace->initial.dim();
  }

  std::unique_ptr<geacc::SimilarityFunction> mirror_similarity =
      trace ? trace->initial.similarity().Clone()
            : geacc::MakeSimilarity(similarity, similarity_param);
  if (mirror_similarity == nullptr) {
    std::fprintf(stderr, "geacc_coord: unknown similarity '%s'\n",
                 similarity.c_str());
    return 2;
  }

  std::vector<std::unique_ptr<geacc::svc::SocketClient>> sockets;
  std::vector<geacc::svc::ServiceClient*> clients;
  for (const int shard_port : ports) {
    auto client = std::make_unique<geacc::svc::SocketClient>();
    std::string connect_error;
    if (!client->Connect(host, shard_port, &connect_error)) {
      std::fprintf(stderr, "geacc_coord: shard %zu: %s\n", sockets.size(),
                   connect_error.c_str());
      return 1;
    }
    clients.push_back(client.get());
    sockets.push_back(std::move(client));
  }
  std::fprintf(stderr, "geacc_coord: %zu shard(s) connected\n",
               sockets.size());

  geacc::shard::CoordinatorOptions options;
  options.reconnect_timeout_ms = reconnect_timeout_s * 1000;
  geacc::shard::ShardCoordinator coordinator(clients, dim,
                                             std::move(mirror_similarity),
                                             options);
  coordinator.set_reconnect_fn([&](int shard) {
    sockets[shard]->Disconnect();
    return sockets[shard]->Connect(host, ports[shard]);
  });

  const auto fail = [&](const std::string& what, const std::string& error) {
    std::fprintf(stderr, "geacc_coord: %s: %s\n", what.c_str(),
                 error.c_str());
    return 1;
  };

  if (trace) {
    std::string error = coordinator.ApplyInstance(trace->initial);
    if (!error.empty()) return fail("seed", error);
    int64_t applied = 0;
    for (const geacc::Mutation& mutation : trace->mutations) {
      error = coordinator.Apply(mutation);
      if (!error.empty()) {
        return fail(geacc::StrFormat("mutation %lld",
                                     static_cast<long long>(applied)),
                    error);
      }
      ++applied;
      if (repair_every > 0 && applied % repair_every == 0) {
        error = coordinator.RepairPass();
        if (!error.empty()) return fail("repair pass", error);
      }
      if (replay_sleep_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(replay_sleep_us));
      }
    }
    error = coordinator.RepairPass();
    if (!error.empty()) return fail("final repair pass", error);
    if (!dump_instance.empty() || !dump_arrangement.empty()) {
      error = coordinator.DumpMerged(dump_instance, dump_arrangement);
      if (!error.empty()) return fail("dump", error);
    }
    std::printf("geacc_coord: replayed %lld mutations, MaxSum %.17g\n",
                static_cast<long long>(applied),
                coordinator.global_max_sum());
    return 0;
  }

  if (events > 0 || users > 0) {
    geacc::SyntheticConfig config;
    config.num_events = events;
    config.num_users = users;
    config.dim = dim;
    config.seed = static_cast<uint64_t>(seed);
    config.conflict_density = conflict_density;
    config.similarity = similarity;
    std::fprintf(stderr,
                 "geacc_coord: bootstrapping |V|=%d |U|=%d across %zu "
                 "shard(s)...\n",
                 events, users, sockets.size());
    std::string error =
        coordinator.ApplyInstance(GenerateSynthetic(config));
    if (!error.empty()) return fail("bootstrap", error);
    error = coordinator.RepairPass();
    if (!error.empty()) return fail("bootstrap repair", error);
    std::fprintf(stderr, "geacc_coord: MaxSum %.4f over %zu pairs\n",
                 coordinator.global_max_sum(),
                 coordinator.arrangement().size());
  }

  geacc::svc::WireServer::Options server_options;
  server_options.max_connections = max_connections;
  geacc::svc::WireServer server(
      [&coordinator](const geacc::svc::WireRequest& request) {
        return coordinator.Dispatch(request);
      },
      server_options);
  std::string server_error;
  if (!server.Start(port, &server_error)) {
    std::fprintf(stderr, "geacc_coord: %s\n", server_error.c_str());
    return 1;
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  // stdout and unbuffered: supervisors (CI smoke) wait for this line.
  std::printf("geacc_coord listening on port %d\n", server.port());
  std::fflush(stdout);

  std::atomic<bool> repair_stop{false};
  std::thread repair_thread([&] {
    auto next = std::chrono::steady_clock::now();
    while (!repair_stop.load()) {
      next += std::chrono::milliseconds(repair_ms > 0 ? repair_ms : 500);
      while (!repair_stop.load() && std::chrono::steady_clock::now() < next) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
      if (repair_stop.load()) break;
      const std::string error = coordinator.RepairPass();
      if (!error.empty()) {
        std::fprintf(stderr, "geacc_coord: repair pass failed: %s\n",
                     error.c_str());
      }
    }
  });

  const auto started = std::chrono::steady_clock::now();
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (duration_s > 0 &&
        std::chrono::steady_clock::now() - started >=
            std::chrono::seconds(duration_s)) {
      break;
    }
  }

  std::fprintf(stderr, "geacc_coord: shutting down\n");
  repair_stop.store(true);
  repair_thread.join();
  server.Stop();

  // One quiescent pass so the dumped arrangement reflects every mutation
  // the fleet managed to submit.
  std::string error = coordinator.RepairPass();
  if (!error.empty()) return fail("final repair pass", error);
  if (!dump_instance.empty() || !dump_arrangement.empty()) {
    error = coordinator.DumpMerged(dump_instance, dump_arrangement);
    if (!error.empty()) return fail("dump", error);
  }
  std::printf("geacc_coord: final MaxSum %.17g over %zu pairs\n",
              coordinator.global_max_sum(), coordinator.arrangement().size());
  return 0;
}
