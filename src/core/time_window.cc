#include "core/time_window.h"

#include <cmath>

namespace geacc {

bool WindowsConflict(const TimeWindow& a, const TimeWindow& b,
                     double speed_kmph) {
  // Interval overlap ([start, end) semantics: touching endpoints do not
  // overlap).
  if (a.start_hours < b.end_hours && b.start_hours < a.end_hours) return true;
  if (speed_kmph <= 0.0) return false;
  // Gap between the earlier window's end and the later window's start.
  const TimeWindow& first = a.end_hours <= b.start_hours ? a : b;
  const TimeWindow& second = a.end_hours <= b.start_hours ? b : a;
  const double gap_hours = second.start_hours - first.end_hours;
  const double distance_km = std::hypot(a.x_km - b.x_km, a.y_km - b.y_km);
  return distance_km / speed_kmph > gap_hours;
}

}  // namespace geacc
