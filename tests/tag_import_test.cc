// Tests for the tag-based dataset import (paper Section V preprocessing).

#include <gtest/gtest.h>

#include <fstream>

#include "algo/solvers.h"
#include "io/tag_import.h"

namespace geacc {
namespace {

std::vector<TaggedEntity> Entities(
    std::initializer_list<std::pair<int, std::vector<std::string>>> list) {
  std::vector<TaggedEntity> entities;
  for (const auto& [capacity, tags] : list) {
    entities.push_back({capacity, tags});
  }
  return entities;
}

TEST(TagImport, TopTagsByFrequencyWithLexTies) {
  const auto events = Entities({{1, {"outdoor", "outdoor", "music"}}});
  const auto users = Entities({{1, {"music", "tech"}}, {1, {"art"}}});
  // Counts: outdoor 2, music 2, tech 1, art 1.
  const auto top2 = SelectTopTags(events, users, 2);
  EXPECT_EQ(top2, (std::vector<std::string>{"music", "outdoor"}));
  const auto top3 = SelectTopTags(events, users, 3);
  EXPECT_EQ(top3[2], "art");  // art < tech lexicographically
}

TEST(TagImport, NormalizedCountVectors) {
  // The paper's example: 2 occurrences of "outdoor" among 10 tags → 0.2.
  std::vector<std::string> tags(8, "filler");
  tags.push_back("outdoor");
  tags.push_back("outdoor");
  const auto events = Entities({{1, tags}});
  const auto users = Entities({{1, {"outdoor"}}});
  const Instance instance =
      BuildInstanceFromTags(events, users, {}, /*top_k=*/2);
  // Vocabulary: filler (8), outdoor (3).
  const auto vocabulary = SelectTopTags(events, users, 2);
  ASSERT_EQ(vocabulary[0], "filler");
  ASSERT_EQ(vocabulary[1], "outdoor");
  EXPECT_DOUBLE_EQ(instance.event_attributes().At(0, 0), 0.8);
  EXPECT_DOUBLE_EQ(instance.event_attributes().At(0, 1), 0.2);
  EXPECT_DOUBLE_EQ(instance.user_attributes().At(0, 1), 1.0);
}

TEST(TagImport, OutOfVocabularyTagsDropped) {
  const auto events = Entities({{1, {"a", "a", "a"}}});
  const auto users = Entities({{1, {"zzz-rare"}}});
  const Instance instance =
      BuildInstanceFromTags(events, users, {}, /*top_k=*/1);
  // User's only tag is out of vocabulary → all-zero attributes.
  EXPECT_DOUBLE_EQ(instance.user_attributes().At(0, 0), 0.0);
}

TEST(TagImport, SimilarSharedTagsMeansHighSimilarity) {
  const auto events =
      Entities({{5, {"hiking", "outdoor"}}, {5, {"opera", "music"}}});
  const auto users = Entities({{1, {"hiking", "outdoor"}},
                               {1, {"opera", "music"}}});
  const Instance instance =
      BuildInstanceFromTags(events, users, {}, /*top_k=*/4);
  EXPECT_GT(instance.Similarity(0, 0), instance.Similarity(0, 1));
  EXPECT_GT(instance.Similarity(1, 1), instance.Similarity(1, 0));
  EXPECT_DOUBLE_EQ(instance.Similarity(0, 0), 1.0);  // identical vectors
}

TEST(TagImport, ParseTaggedCsv) {
  const auto entities = ParseTaggedCsv(
      "# comment\n"
      "3,outdoor;music\n"
      "\n"
      "1, tech ; art \n");
  ASSERT_TRUE(entities.has_value());
  ASSERT_EQ(entities->size(), 2u);
  EXPECT_EQ((*entities)[0].capacity, 3);
  EXPECT_EQ((*entities)[0].tags,
            (std::vector<std::string>{"outdoor", "music"}));
  EXPECT_EQ((*entities)[1].tags, (std::vector<std::string>{"tech", "art"}));
}

TEST(TagImport, ParseRejectsMalformed) {
  std::string error;
  EXPECT_FALSE(ParseTaggedCsv("no-comma-here", &error).has_value());
  EXPECT_NE(error.find("line 1"), std::string::npos);
  EXPECT_FALSE(ParseTaggedCsv("0,tag", &error).has_value());  // capacity < 1
  EXPECT_FALSE(ParseTaggedCsv("x,tag", &error).has_value());
}

TEST(TagImport, EndToEndFromFiles) {
  const std::string dir = ::testing::TempDir();
  const std::string events_path = dir + "/tag_events.csv";
  const std::string users_path = dir + "/tag_users.csv";
  const std::string conflicts_path = dir + "/tag_conflicts.csv";
  {
    std::ofstream(events_path)
        << "10,hiking;outdoor\n5,badminton;sports\n8,basketball;sports\n";
    std::ofstream(users_path)
        << "1,hiking;outdoor\n2,sports;badminton\n1,basketball;sports\n";
    std::ofstream(conflicts_path) << "# hiking overlaps basketball\n0,2\n";
  }
  std::string error;
  const auto instance =
      LoadTaggedInstance(events_path, users_path, conflicts_path,
                         /*top_k=*/6, &error);
  ASSERT_TRUE(instance.has_value()) << error;
  EXPECT_EQ(instance->num_events(), 3);
  EXPECT_EQ(instance->num_users(), 3);
  EXPECT_TRUE(instance->conflicts().AreConflicting(0, 2));
  // Solvable end to end.
  const auto result = CreateSolver("greedy")->Solve(*instance);
  EXPECT_EQ(result.arrangement.Validate(*instance), "");
  EXPECT_GT(result.arrangement.size(), 0);
}

TEST(TagImport, LoadRejectsBadConflicts) {
  const std::string dir = ::testing::TempDir();
  const std::string events_path = dir + "/bad_events.csv";
  const std::string users_path = dir + "/bad_users.csv";
  const std::string conflicts_path = dir + "/bad_conflicts.csv";
  std::ofstream(events_path) << "1,a\n1,b\n";
  std::ofstream(users_path) << "1,a\n";
  std::ofstream(conflicts_path) << "0,5\n";  // out of range
  std::string error;
  EXPECT_FALSE(LoadTaggedInstance(events_path, users_path, conflicts_path, 2,
                                  &error)
                   .has_value());
  EXPECT_NE(error.find("bad pair"), std::string::npos);
}

TEST(TagImport, MissingFileReported) {
  std::string error;
  EXPECT_FALSE(LoadTaggedInstance("/nonexistent/e.csv", "/nonexistent/u.csv",
                                  "", 5, &error)
                   .has_value());
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace geacc
