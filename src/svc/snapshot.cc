#include "svc/snapshot.h"

#include <algorithm>
#include <utility>

#include "dyn/dynamic_instance.h"
#include "dyn/incremental_arranger.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace geacc::svc {

std::vector<ScoredEvent> ServiceSnapshot::TopKEvents(UserId u, int k) const {
  GEACC_CHECK(user_in_range(u)) << "user id " << u << " out of range";
  std::vector<ScoredEvent> candidates;
  if (k <= 0 || !user_active_[u]) return candidates;
  const std::vector<EventId>& held = user_events_[u];
  candidates.reserve(static_cast<size_t>(num_active_events_));
  for (EventId v = 0; v < event_slots(); ++v) {
    if (!event_active_[v]) continue;
    if (std::find(held.begin(), held.end(), v) != held.end()) continue;
    const double sim = Similarity(v, u);
    if (sim <= 0.0) continue;
    candidates.push_back({v, sim});
  }
  const auto better = [](const ScoredEvent& a, const ScoredEvent& b) {
    if (a.similarity != b.similarity) return a.similarity > b.similarity;
    return a.event < b.event;
  };
  const size_t keep = std::min<size_t>(candidates.size(), k);
  std::partial_sort(candidates.begin(), candidates.begin() + keep,
                    candidates.end(), better);
  candidates.resize(keep);
  return candidates;
}

std::vector<std::vector<ScoredEvent>> ServiceSnapshot::TopKEventsBatch(
    const std::vector<UserId>& users, int k, int threads) const {
  std::vector<std::vector<ScoredEvent>> results(users.size());
  if (users.empty()) return results;
  ThreadPool pool(ResolveThreadCount(threads));
  pool.ParallelFor(0, static_cast<int64_t>(users.size()),
                   [&](int /*chunk*/, int64_t begin, int64_t end) {
                     for (int64_t i = begin; i < end; ++i) {
                       results[i] = TopKEvents(users[i], k);
                     }
                   });
  return results;
}

std::vector<ScoredCandidate> ServiceSnapshot::Candidates(
    UserId first_user, int user_count) const {
  std::vector<ScoredCandidate> edges;
  const UserId begin = std::max<UserId>(first_user, 0);
  const UserId end = std::min<UserId>(
      user_slots(), begin + std::max(user_count, 0));
  for (UserId u = begin; u < end; ++u) {
    if (!user_active_[u]) continue;
    for (EventId v = 0; v < event_slots(); ++v) {
      if (!event_active_[v]) continue;
      const double sim = Similarity(v, u);
      if (sim <= 0.0) continue;
      edges.push_back({u, v, sim});
    }
  }
  return edges;
}

Instance ServiceSnapshot::ToDenseInstance(
    std::vector<EventId>* dense_to_event,
    std::vector<UserId>* dense_to_user) const {
  std::vector<EventId> event_map;
  std::vector<UserId> user_map;
  std::vector<int> event_to_dense(event_slots(), -1);
  std::vector<int> user_to_dense(user_slots(), -1);

  AttributeMatrix events(num_active_events_, dim_);
  std::vector<int> event_capacities;
  event_capacities.reserve(static_cast<size_t>(num_active_events_));
  for (EventId v = 0; v < event_slots(); ++v) {
    if (!event_active_[v]) continue;
    const int dense = static_cast<int>(event_map.size());
    event_to_dense[v] = dense;
    event_map.push_back(v);
    const double* row = event_attributes_.Row(v);
    for (int j = 0; j < dim_; ++j) events.Set(dense, j, row[j]);
    event_capacities.push_back(event_capacities_[v]);
  }

  AttributeMatrix users(num_active_users_, dim_);
  std::vector<int> user_capacities;
  user_capacities.reserve(static_cast<size_t>(num_active_users_));
  for (UserId u = 0; u < user_slots(); ++u) {
    if (!user_active_[u]) continue;
    const int dense = static_cast<int>(user_map.size());
    user_to_dense[u] = dense;
    user_map.push_back(u);
    const double* row = user_attributes_.Row(u);
    for (int j = 0; j < dim_; ++j) users.Set(dense, j, row[j]);
    user_capacities.push_back(user_capacities_[u]);
  }

  ConflictGraph conflicts(num_active_events_);
  for (EventId v = 0; v < event_slots(); ++v) {
    if (!event_active_[v]) continue;
    for (const EventId w : conflicts_.ConflictsOf(v)) {
      if (w > v && event_active_[w]) {
        conflicts.AddConflict(event_to_dense[v], event_to_dense[w]);
      }
    }
  }

  if (dense_to_event != nullptr) *dense_to_event = event_map;
  if (dense_to_user != nullptr) *dense_to_user = user_map;
  return Instance(std::move(events), std::move(event_capacities),
                  std::move(users), std::move(user_capacities),
                  std::move(conflicts), similarity_->Clone());
}

Arrangement ServiceSnapshot::ToDenseArrangement() const {
  std::vector<int> event_to_dense(event_slots(), -1);
  std::vector<int> user_to_dense(user_slots(), -1);
  int next_event = 0;
  for (EventId v = 0; v < event_slots(); ++v) {
    if (event_active_[v]) event_to_dense[v] = next_event++;
  }
  int next_user = 0;
  for (UserId u = 0; u < user_slots(); ++u) {
    if (user_active_[u]) user_to_dense[u] = next_user++;
  }
  Arrangement arrangement(next_event, next_user);
  for (UserId u = 0; u < user_slots(); ++u) {
    for (const EventId v : user_events_[u]) {
      arrangement.Add(event_to_dense[v], user_to_dense[u]);
    }
  }
  return arrangement;
}

std::shared_ptr<const ServiceSnapshot> BuildSnapshot(
    const DynamicInstance& instance, const IncrementalArranger& arranger,
    int64_t applied_seq) {
  auto snapshot = std::shared_ptr<ServiceSnapshot>(new ServiceSnapshot());
  snapshot->epoch_ = instance.epoch();
  snapshot->applied_seq_ = applied_seq;
  snapshot->dim_ = instance.dim();
  snapshot->event_attributes_ = instance.event_attributes();
  snapshot->user_attributes_ = instance.user_attributes();
  snapshot->num_active_events_ = instance.num_active_events();
  snapshot->num_active_users_ = instance.num_active_users();
  snapshot->conflicts_ = instance.conflicts();
  snapshot->similarity_ = instance.similarity().Clone();

  const int event_slots = instance.event_slots();
  const int user_slots = instance.user_slots();
  snapshot->event_capacities_.resize(event_slots);
  snapshot->event_active_.resize(event_slots);
  for (EventId v = 0; v < event_slots; ++v) {
    snapshot->event_capacities_[v] = instance.event_capacity(v);
    snapshot->event_active_[v] = instance.event_active(v);
  }
  snapshot->user_capacities_.resize(user_slots);
  snapshot->user_active_.resize(user_slots);
  for (UserId u = 0; u < user_slots; ++u) {
    snapshot->user_capacities_[u] = instance.user_capacity(u);
    snapshot->user_active_[u] = instance.user_active(u);
  }

  const Arrangement& arrangement = arranger.arrangement();
  snapshot->user_events_.resize(user_slots);
  snapshot->event_users_.resize(event_slots);
  for (UserId u = 0; u < user_slots; ++u) {
    snapshot->user_events_[u] = arrangement.EventsOf(u);
  }
  for (EventId v = 0; v < event_slots; ++v) {
    snapshot->event_users_[v] = arranger.UsersOf(v);
  }
  snapshot->num_pairs_ = arrangement.size();
  snapshot->max_sum_ = arranger.max_sum();
  return snapshot;
}

}  // namespace geacc::svc
