# Empty compiler generated dependencies file for geacc_io.
# This may be replaced when dependencies are built.
