// Scalability tour: Greedy-GEACC on growing Table III-style workloads.
//
// Reproduces the spirit of the paper's Fig. 5a–b interactively: generates
// synthetic instances of increasing size, runs Greedy-GEACC, and reports
// time / memory / matching quality so a user can gauge capacity planning
// for their own deployment. Compare with bench/fig5_scalability for the
// full figure.
//
//   ./build/examples/scalability_tour [--max_users 50000] [--seed S]

#include <cstdio>
#include <vector>

#include "algo/solvers.h"
#include "gen/synthetic.h"
#include "util/flags.h"
#include "util/memory.h"
#include "util/string_util.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  int64_t max_users = 50'000;
  int64_t seed = 1;
  geacc::FlagSet flags;
  flags.AddInt("max_users", &max_users, "largest |U| to attempt");
  flags.AddInt("seed", &seed, "base seed");
  flags.Parse(argc, argv);

  std::printf("%10s %8s %12s %10s %12s %12s %10s\n", "|U|", "|V|", "pairs",
              "MaxSum", "solve (s)", "gen (s)", "solver mem");
  for (int64_t users = 1000; users <= max_users; users *= 5) {
    const int events = static_cast<int>(users / 100);  // paper's 100:1000
    geacc::SyntheticConfig config;
    config.num_events = events;
    config.num_users = static_cast<int>(users);
    config.event_capacity = geacc::DistributionSpec::Uniform(1.0, 50.0);
    config.seed = static_cast<uint64_t>(seed);

    geacc::WallTimer gen_timer;
    const geacc::Instance instance = geacc::GenerateSynthetic(config);
    const double gen_seconds = gen_timer.Seconds();

    const auto solver = geacc::CreateSolver("greedy");
    const geacc::SolveResult result = solver->Solve(instance);
    std::printf("%10lld %8d %12lld %10.1f %12.3f %12.3f %10s\n",
                (long long)users, events,
                (long long)result.arrangement.size(),
                result.arrangement.MaxSum(instance),
                result.stats.wall_seconds, gen_seconds,
                geacc::HumanBytes(result.stats.logical_peak_bytes).c_str());
  }
  std::printf("\nRSS high-water mark: %s\n",
              geacc::HumanBytes(geacc::PeakRssBytes()).c_str());
  return 0;
}
