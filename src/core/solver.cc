#include "core/solver.h"

#include "core/instance.h"

namespace geacc {

// The interface is header-only today; this translation unit anchors the
// vtable so that every user of Solver does not emit its own copy.

}  // namespace geacc
