// Unit tests for the solver implementations and the registry: feasibility,
// determinism, edge cases, solver-specific behaviours.

#include <gtest/gtest.h>

#include <memory>

#include "algo/conflict_resolution.h"
#include "algo/greedy_solver.h"
#include "algo/min_cost_flow_solver.h"
#include "algo/prune_solver.h"
#include "algo/random_solvers.h"
#include "algo/solvers.h"
#include "tests/test_util.h"

namespace geacc {
namespace {

using geacc::testing::MakeTableInstance;
using geacc::testing::SmallRandomInstance;

// ------------------------------------------------------------ registry ---

TEST(SolverRegistry, CreatesEveryListedSolver) {
  for (const std::string& name : SolverNames()) {
    const auto solver = CreateSolver(name);
    ASSERT_NE(solver, nullptr) << name;
    EXPECT_EQ(solver->Name(), name);
  }
  EXPECT_EQ(CreateSolver("no-such-solver"), nullptr);
}

TEST(SolverRegistry, UnknownIndexOptionDies) {
  SolverOptions options;
  options.index = "btree";
  EXPECT_DEATH(CreateSolver("greedy", options), "unknown index 'btree'");
}

TEST(SolverRegistry, UnknownFlowAlgorithmOptionDies) {
  SolverOptions options;
  options.flow_algorithm = "simplex";
  EXPECT_DEATH(CreateSolver("mincostflow", options),
               "unknown flow_algorithm 'simplex'");
}

TEST(SolverRegistry, ValidateSolverOptionsAcceptsAllKnownValues) {
  for (const char* index : {"linear", "kdtree", "vafile", "idistance"}) {
    for (const char* flow : {"dijkstra", "spfa"}) {
      SolverOptions options;
      options.index = index;
      options.flow_algorithm = flow;
      EXPECT_EQ(ValidateSolverOptions(options), "") << index << "/" << flow;
    }
  }
}

TEST(SolverRegistry, ExhaustiveForcesPruningOff) {
  const Instance instance = geacc::testing::PaperTableIExample();
  const auto exhaustive = CreateSolver("exhaustive");
  const SolveResult result = exhaustive->Solve(instance);
  EXPECT_EQ(result.stats.prune_events, 0);
  EXPECT_GT(result.stats.complete_searches, 0);
}

// -------------------------------------------------------- empty inputs ---

class EmptyInstanceTest : public ::testing::TestWithParam<std::string> {};

TEST_P(EmptyInstanceTest, AllSolversHandleEmptySides) {
  const auto solver = CreateSolver(GetParam());
  {
    // No events.
    const Instance instance = MakeTableInstance({}, {}, {1, 1}, {});
    const SolveResult result = solver->Solve(instance);
    EXPECT_EQ(result.arrangement.size(), 0);
  }
  {
    // No users.
    const Instance instance = MakeTableInstance({{}, {}}, {1, 1}, {}, {});
    const SolveResult result = solver->Solve(instance);
    EXPECT_EQ(result.arrangement.size(), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSolvers, EmptyInstanceTest,
                         ::testing::Values("greedy", "mincostflow", "prune",
                                           "exhaustive", "bruteforce",
                                           "random-v", "random-u"));

// -------------------------------------------------------- zero sims ------

class ZeroSimilarityTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ZeroSimilarityTest, NoPairsWhenAllSimilaritiesZero) {
  const Instance instance = MakeTableInstance(
      {{0.0, 0.0}, {0.0, 0.0}}, {2, 2}, {2, 2}, {});
  const SolveResult result = CreateSolver(GetParam())->Solve(instance);
  EXPECT_EQ(result.arrangement.size(), 0);
}

INSTANTIATE_TEST_SUITE_P(AllSolvers, ZeroSimilarityTest,
                         ::testing::Values("greedy", "mincostflow", "prune",
                                           "exhaustive", "bruteforce",
                                           "random-v", "random-u"));

// ----------------------------------------------------- complete conflicts -

TEST(Solvers, CompleteConflictGraphLimitsUsersToOneEvent) {
  // Every event pair conflicts → each user attends at most one event, no
  // matter the capacity.
  const Instance instance = MakeTableInstance(
      {{0.9, 0.8}, {0.7, 0.6}, {0.5, 0.4}}, {2, 2, 2}, {3, 3},
      {{0, 1}, {0, 2}, {1, 2}});
  for (const char* name : {"greedy", "mincostflow", "prune"}) {
    const SolveResult result = CreateSolver(name)->Solve(instance);
    EXPECT_EQ(result.arrangement.Validate(instance), "") << name;
    for (UserId u = 0; u < 2; ++u) {
      EXPECT_LE(result.arrangement.UserLoad(u), 1) << name;
    }
  }
  // The optimum assigns each user their best event: 0.9 + 0.8.
  const SolveResult optimal = CreateSolver("prune")->Solve(instance);
  EXPECT_NEAR(optimal.arrangement.MaxSum(instance), 1.7, 1e-9);
}

// ------------------------------------------------------------- greedy ----

TEST(GreedySolver, DeterministicAcrossRuns) {
  const Instance instance = SmallRandomInstance(6, 12, 0.3, 3, 1234);
  const GreedySolver solver;
  const auto a = solver.Solve(instance).arrangement.SortedPairs();
  const auto b = solver.Solve(instance).arrangement.SortedPairs();
  EXPECT_EQ(a, b);
}

TEST(GreedySolver, IndexChoiceDoesNotChangeResult) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    const Instance instance = SmallRandomInstance(5, 15, 0.25, 4, seed);
    SolverOptions linear_options;
    linear_options.index = "linear";
    const auto reference =
        GreedySolver(linear_options).Solve(instance).arrangement;
    for (const char* index : {"kdtree", "vafile", "idistance"}) {
      SolverOptions options;
      options.index = index;
      const auto other = GreedySolver(options).Solve(instance).arrangement;
      EXPECT_EQ(reference.SortedPairs(), other.SortedPairs())
          << "seed " << seed << " index " << index;
    }
  }
}

TEST(GreedySolver, HeapStatsPopulated) {
  const Instance instance = SmallRandomInstance(6, 12, 0.3, 3, 5);
  const SolveResult result = GreedySolver().Solve(instance);
  EXPECT_GT(result.stats.heap_pushes, 0);
  EXPECT_EQ(result.stats.heap_pushes, result.stats.heap_pops);
  EXPECT_GT(result.stats.logical_peak_bytes, 0u);
}

TEST(GreedySolver, RespectsTightCapacities) {
  // One user with capacity 1 shared by two non-conflicting events: greedy
  // must give them only the more similar event.
  const Instance instance =
      MakeTableInstance({{0.9}, {0.8}}, {1, 1}, {1}, {});
  const SolveResult result = GreedySolver().Solve(instance);
  EXPECT_EQ(result.arrangement.size(), 1);
  EXPECT_TRUE(result.arrangement.Contains(0, 0));
}

// -------------------------------------------------------- mincostflow ----

TEST(MinCostFlowSolver, OptimalWithoutConflicts) {
  // CF = ∅ → MinCostFlow-GEACC is exact (Lemma 1). Hand-checkable 2×2:
  // caps all 1, best assignment is 0.9 + 0.6 = 1.5 (not greedy's 0.9 only).
  const Instance instance = MakeTableInstance(
      {{0.9, 0.7}, {0.8, 0.1}}, {1, 1}, {1, 1}, {});
  const SolveResult result = MinCostFlowSolver().Solve(instance);
  EXPECT_NEAR(result.arrangement.MaxSum(instance), 0.7 + 0.8, 1e-9);
}

TEST(MinCostFlowSolver, StatsReportAugmentations) {
  const Instance instance = SmallRandomInstance(4, 8, 0.25, 2, 3);
  const SolveResult result = MinCostFlowSolver().Solve(instance);
  EXPECT_GT(result.stats.flow_augmentations, 0);
  EXPECT_GE(result.stats.best_delta, result.arrangement.size());
}

TEST(MinCostFlowSolver, ResolutionRemovesConflicts) {
  // M_∅ gives user 0 both conflicting events; resolution must keep only
  // the better one.
  const Instance instance =
      MakeTableInstance({{0.9}, {0.8}}, {1, 1}, {2}, {{0, 1}});
  const SolveResult result = MinCostFlowSolver().Solve(instance);
  EXPECT_EQ(result.arrangement.size(), 1);
  EXPECT_TRUE(result.arrangement.Contains(0, 0));
  EXPECT_EQ(result.stats.conflicts_resolved, 1);
}

// ------------------------------------------------- conflict resolution ---

TEST(ConflictResolution, GreedyKeepsBestIndependentSet) {
  // Events 0,1,2 for one user; 0 ⊥ 1. Sims 0.9, 0.8, 0.5 → keep {0, 2}.
  const Instance instance = MakeTableInstance(
      {{0.9}, {0.8}, {0.5}}, {1, 1, 1}, {3}, {{0, 1}});
  const std::vector<EventId> kept =
      GreedySelectNonConflicting(instance, 0, {0, 1, 2});
  EXPECT_EQ(kept, (std::vector<EventId>{0, 2}));
}

TEST(ConflictResolution, GreedyIsNotAlwaysOptimal) {
  // Greedy MWIS picks 0.9 and drops {0.8, 0.8}: documents the known
  // suboptimality of the greedy independent-set step.
  const Instance instance = MakeTableInstance(
      {{0.9}, {0.8}, {0.8}}, {1, 1, 1}, {3}, {{0, 1}, {0, 2}});
  const std::vector<EventId> kept =
      GreedySelectNonConflicting(instance, 0, {0, 1, 2});
  EXPECT_EQ(kept, (std::vector<EventId>{0}));
}

// ------------------------------------------------------------- prune -----

TEST(PruneSolver, AblationsAllReachTheOptimum) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    const Instance instance = SmallRandomInstance(4, 6, 0.3, 2, seed);
    const double reference = CreateSolver("bruteforce")
                                 ->Solve(instance)
                                 .arrangement.MaxSum(instance);
    for (const bool greedy_seed : {true, false}) {
      for (const bool ordering : {true, false}) {
        SolverOptions options;
        options.enable_greedy_seed = greedy_seed;
        options.enable_event_ordering = ordering;
        const PruneSolver solver(options);
        EXPECT_NEAR(solver.Solve(instance).arrangement.MaxSum(instance),
                    reference, 1e-9)
            << "seed " << seed << " greedy_seed " << greedy_seed
            << " ordering " << ordering;
      }
    }
  }
}

TEST(PruneSolver, PruningReducesSearchInvocations) {
  const Instance instance = SmallRandomInstance(4, 7, 0.25, 2, 42);
  const SolveResult pruned = CreateSolver("prune")->Solve(instance);
  const SolveResult exhaustive = CreateSolver("exhaustive")->Solve(instance);
  EXPECT_GT(pruned.stats.prune_events, 0);
  EXPECT_LT(pruned.stats.search_invocations,
            exhaustive.stats.search_invocations);
  EXPECT_LE(pruned.stats.complete_searches,
            exhaustive.stats.complete_searches);
  EXPECT_NEAR(pruned.arrangement.MaxSum(instance),
              exhaustive.arrangement.MaxSum(instance), 1e-9);
}

TEST(PruneSolver, DepthNeverExceedsPairCount) {
  const Instance instance = SmallRandomInstance(3, 5, 0.5, 2, 7);
  const SolveResult result = CreateSolver("prune")->Solve(instance);
  EXPECT_LE(result.stats.max_depth, 3 * 5);
  EXPECT_GT(result.stats.max_depth, 0);
  EXPECT_LE(result.stats.MeanPruneDepth(),
            static_cast<double>(result.stats.max_depth));
}

TEST(PruneSolver, TruncationReturnsFeasibleSeed) {
  const Instance instance = SmallRandomInstance(5, 10, 0.25, 3, 9);
  SolverOptions options;
  options.max_search_invocations = 100;
  const PruneSolver solver(options);
  const SolveResult result = solver.Solve(instance);
  EXPECT_TRUE(result.stats.search_truncated);
  EXPECT_EQ(result.arrangement.Validate(instance), "");
  // The greedy seed guarantees a non-trivial matching even when truncated.
  EXPECT_GT(result.arrangement.size(), 0);
}

// ------------------------------------------------------------- random ----

TEST(RandomSolvers, DeterministicPerSeedAndSeedSensitive) {
  const Instance instance = SmallRandomInstance(6, 20, 0.25, 3, 11);
  SolverOptions seed_a, seed_b;
  seed_a.seed = 1;
  seed_b.seed = 2;
  const auto va1 = RandomVSolver(seed_a).Solve(instance).arrangement;
  const auto va2 = RandomVSolver(seed_a).Solve(instance).arrangement;
  const auto vb = RandomVSolver(seed_b).Solve(instance).arrangement;
  EXPECT_EQ(va1.SortedPairs(), va2.SortedPairs());
  EXPECT_NE(va1.SortedPairs(), vb.SortedPairs());
}

TEST(RandomSolvers, OutputsAreFeasible) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    const Instance instance = SmallRandomInstance(5, 15, 0.5, 3, seed);
    for (const char* name : {"random-v", "random-u"}) {
      SolverOptions options;
      options.seed = seed;
      const SolveResult result =
          CreateSolver(name, options)->Solve(instance);
      EXPECT_EQ(result.arrangement.Validate(instance), "")
          << name << " seed " << seed;
    }
  }
}

TEST(RandomSolvers, ExpectedMatchRateRoughlyCapacityBound) {
  // Random-V offers each user with probability c_v/|U|, so matched pairs
  // per event ≈ c_v when constraints rarely bind. With huge user
  // capacities and no conflicts the match count approaches Σ c_v.
  const int users = 2000;
  std::vector<std::vector<double>> table(1, std::vector<double>(users, 0.5));
  std::vector<int> user_caps(users, 10);
  const Instance instance = MakeTableInstance(table, {100}, user_caps, {});
  SolverOptions options;
  options.seed = 3;
  const SolveResult result = RandomVSolver(options).Solve(instance);
  EXPECT_NEAR(static_cast<double>(result.arrangement.size()), 100.0, 30.0);
}

}  // namespace
}  // namespace geacc
