#include "core/conflict_graph.h"

#include <algorithm>

#include "util/check.h"
#include "util/rng.h"

namespace geacc {

ConflictGraph::ConflictGraph(int num_events) : num_events_(num_events) {
  GEACC_CHECK_GE(num_events, 0);
  adjacency_.resize(num_events);
}

void ConflictGraph::AddConflict(EventId a, EventId b) {
  GEACC_CHECK(a >= 0 && a < num_events_) << "event id out of range: " << a;
  GEACC_CHECK(b >= 0 && b < num_events_) << "event id out of range: " << b;
  GEACC_CHECK_NE(a, b) << "an event cannot conflict with itself";
  if (!pairs_.insert(Key(a, b)).second) return;  // already present
  // Keep adjacency sorted for deterministic iteration.
  auto insert_sorted = [](std::vector<EventId>& list, EventId id) {
    list.insert(std::upper_bound(list.begin(), list.end(), id), id);
  };
  insert_sorted(adjacency_[a], b);
  insert_sorted(adjacency_[b], a);
}

void ConflictGraph::Resize(int num_events) {
  GEACC_CHECK_GE(num_events, num_events_);
  num_events_ = num_events;
  adjacency_.resize(num_events);
}

int64_t ConflictGraph::RemoveConflictsOf(EventId v) {
  GEACC_CHECK(v >= 0 && v < num_events_) << "event id out of range: " << v;
  std::vector<EventId> neighbors = std::move(adjacency_[v]);
  adjacency_[v].clear();
  for (const EventId w : neighbors) {
    pairs_.erase(Key(v, w));
    auto& list = adjacency_[w];
    list.erase(std::find(list.begin(), list.end(), v));
  }
  return static_cast<int64_t>(neighbors.size());
}

bool ConflictGraph::AreConflicting(EventId a, EventId b) const {
  if (a == b) return false;
  return pairs_.contains(Key(a, b));
}

const std::vector<EventId>& ConflictGraph::ConflictsOf(EventId v) const {
  GEACC_CHECK(v >= 0 && v < num_events_);
  return adjacency_[v];
}

double ConflictGraph::Density() const {
  if (num_events_ < 2) return 0.0;
  const double total =
      0.5 * static_cast<double>(num_events_) * (num_events_ - 1);
  return static_cast<double>(pairs_.size()) / total;
}

ConflictGraph ConflictGraph::Random(int num_events, double density, Rng& rng) {
  GEACC_CHECK(density >= 0.0 && density <= 1.0)
      << "conflict density must be in [0,1], got " << density;
  ConflictGraph graph(num_events);
  if (num_events < 2) return graph;
  const int64_t total =
      static_cast<int64_t>(num_events) * (num_events - 1) / 2;
  const auto target = static_cast<int64_t>(density * total + 0.5);
  if (target >= total) return Complete(num_events);
  if (target <= 0) return graph;
  if (target * 3 < total) {
    // Sparse: rejection-sample distinct pairs.
    while (graph.num_conflict_pairs() < target) {
      const auto a = static_cast<EventId>(rng.UniformInt(0, num_events - 1));
      const auto b = static_cast<EventId>(rng.UniformInt(0, num_events - 1));
      if (a == b) continue;
      graph.AddConflict(a, b);
    }
  } else {
    // Dense: Fisher–Yates over the explicit pair list.
    std::vector<std::pair<EventId, EventId>> all;
    all.reserve(static_cast<size_t>(total));
    for (EventId a = 0; a < num_events; ++a) {
      for (EventId b = a + 1; b < num_events; ++b) all.emplace_back(a, b);
    }
    for (int64_t i = 0; i < target; ++i) {
      const int64_t j = rng.UniformInt(i, total - 1);
      std::swap(all[i], all[j]);
      graph.AddConflict(all[i].first, all[i].second);
    }
  }
  return graph;
}

ConflictGraph ConflictGraph::Complete(int num_events) {
  ConflictGraph graph(num_events);
  for (EventId a = 0; a < num_events; ++a) {
    for (EventId b = a + 1; b < num_events; ++b) graph.AddConflict(a, b);
  }
  return graph;
}

uint64_t ConflictGraph::ByteEstimate() const {
  uint64_t bytes = pairs_.size() * (sizeof(uint64_t) + sizeof(void*));
  for (const auto& list : adjacency_) {
    bytes += list.capacity() * sizeof(EventId);
  }
  return bytes;
}

}  // namespace geacc
