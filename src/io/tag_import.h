// Tag-based dataset import — the paper's Section V preprocessing.
//
// The Meetup crawl gives each user/event a multiset of free-form tags. The
// paper merges synonymous tags, keeps the `top_k` most popular as the
// attribute dimensions, sets each attribute to the entity's count of that
// tag, and normalizes by the entity's total tag count. This module
// implements that pipeline for user-supplied crawls:
//
//   events.csv / users.csv, one entity per line:
//       <capacity>,<tag>;<tag>;<tag>...        ('#' comments allowed)
//   conflicts.csv (optional), one pair per line:
//       <event_index>,<event_index>            (0-based line order)
//
// Tag popularity counts each occurrence (multiset semantics), aggregated
// over events and users together; ties in popularity break
// lexicographically so imports are deterministic. Entities whose tags all
// fall outside the top-k get all-zero attribute vectors (and therefore
// can never be matched — exactly what happens to tag-poor entities in the
// paper's pipeline).

#ifndef GEACC_IO_TAG_IMPORT_H_
#define GEACC_IO_TAG_IMPORT_H_

#include <optional>
#include <string>
#include <vector>

#include "core/instance.h"

namespace geacc {

struct TaggedEntity {
  int capacity = 1;
  std::vector<std::string> tags;  // multiset; duplicates count
};

// Builds the instance: top-k tag vocabulary, normalized count vectors,
// Euclidean similarity with T = 1 (the attribute range after
// normalization). `conflicts` holds event index pairs.
Instance BuildInstanceFromTags(
    const std::vector<TaggedEntity>& events,
    const std::vector<TaggedEntity>& users,
    const std::vector<std::pair<EventId, EventId>>& conflicts, int top_k);

// The vocabulary BuildInstanceFromTags would select (exposed for
// inspection/tests): top-k tags by multiset frequency, ties lexicographic.
std::vector<std::string> SelectTopTags(
    const std::vector<TaggedEntity>& events,
    const std::vector<TaggedEntity>& users, int top_k);

// Parses one "capacity,tagA;tagB" CSV body. Returns nullopt on malformed
// lines, with a line-numbered diagnostic in `error`.
std::optional<std::vector<TaggedEntity>> ParseTaggedCsv(
    const std::string& text, std::string* error = nullptr);

// File-level loader combining the above. `conflicts_path` may be empty.
std::optional<Instance> LoadTaggedInstance(const std::string& events_path,
                                           const std::string& users_path,
                                           const std::string& conflicts_path,
                                           int top_k,
                                           std::string* error = nullptr);

}  // namespace geacc

#endif  // GEACC_IO_TAG_IMPORT_H_
