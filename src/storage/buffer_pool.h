// Memory-budgeted buffer pool over a PageFile (DESIGN.md §14).
//
// The pool caches page payloads in a fixed set of frames sized to a byte
// budget: frame_count = max(2, budget / page_size), each frame accounted
// at the full page_size (header + padding overhead charged to the budget,
// so resident bytes never exceed it). Frames are filled lazily, evicted
// by the clock (second-chance) policy, and flushed back on eviction when
// dirty — this is the hard out-of-core guarantee: a tree 10× the budget
// streams through the same bounded set of frames.
//
// Pinning: Fetch()/Create() hand out a PageRef, an RAII pin. Pinned
// frames are never evicted, so the payload pointer stays valid (and, for
// concurrent readers, stable) for the PageRef's lifetime. Unpinned frame
// contents may be evicted at any time — re-Fetch instead of caching raw
// pointers. All-frames-pinned is an error ("pool budget too small for
// the working set"), not a deadlock.
//
// Thread-safety: all operations take one internal mutex, so concurrent
// cursors from solver worker lanes are safe. Writes to a pinned frame's
// payload are the caller's to serialize (the write path here is
// single-writer: bulk loads and checkpoints).
//
// Counters: storage.pool.{hits,faults,evictions,flushes} via src/obs,
// plus an exact per-pool PoolStats for bench reports.

#ifndef GEACC_STORAGE_BUFFER_POOL_H_
#define GEACC_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/page_file.h"

namespace geacc::storage {

struct PoolStats {
  int64_t hits = 0;       // Fetch served from a resident frame
  int64_t faults = 0;     // Fetch had to read the page from disk
  int64_t evictions = 0;  // frames recycled by the clock hand
  int64_t flushes = 0;    // dirty frames written back (evict or FlushAll)
  uint64_t budget_bytes = 0;
  uint64_t resident_bytes = 0;  // frames currently backed by a buffer
  uint64_t peak_resident_bytes = 0;
};

class BufferPool {
 public:
  // `file` must outlive the pool. `budget_bytes` is a hard ceiling on
  // frame memory; it is floored at two pages so tree descents (parent +
  // child pinned briefly) always fit.
  BufferPool(PageFile* file, uint64_t budget_bytes);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // RAII pin on one resident page. Movable; releasing (or destroying)
  // unpins. data() is the payload buffer (payload_capacity() bytes).
  class PageRef {
   public:
    PageRef() = default;
    PageRef(PageRef&& other) noexcept { *this = std::move(other); }
    PageRef& operator=(PageRef&& other) noexcept {
      if (this != &other) {
        Release();
        pool_ = other.pool_;
        frame_ = other.frame_;
        other.pool_ = nullptr;
        other.frame_ = -1;
      }
      return *this;
    }
    ~PageRef() { Release(); }

    PageRef(const PageRef&) = delete;
    PageRef& operator=(const PageRef&) = delete;

    bool valid() const { return pool_ != nullptr; }
    PageId id() const;
    uint16_t type() const;
    uint8_t* data();
    const uint8_t* data() const;
    uint32_t payload_bytes() const;
    // Declare the payload's used length (persisted in the page header).
    void set_payload_bytes(uint32_t bytes);
    // Mark the frame for write-back on eviction / FlushAll.
    void MarkDirty();

    void Release();

   private:
    friend class BufferPool;
    PageRef(BufferPool* pool, int frame) : pool_(pool), frame_(frame) {}

    BufferPool* pool_ = nullptr;
    int frame_ = -1;
  };

  // Pins page `id`, reading it from the file on a miss. Fails on IO /
  // checksum errors or when every frame is pinned.
  bool Fetch(PageId id, PageRef* out, std::string* error);

  // Allocates a fresh page in the file and pins a zeroed, dirty frame
  // for it (payload_bytes starts at 0; set it before releasing).
  bool Create(uint16_t type, PageRef* out, std::string* error);

  // Writes every dirty frame back to the file. Does NOT commit the
  // superblock — pair with PageFile::Commit() for durability.
  bool FlushAll(std::string* error);

  int frame_count() const { return static_cast<int>(frames_.size()); }
  PageFile* file() const { return file_; }
  PoolStats stats() const;

 private:
  struct Frame {
    PageId page_id = kInvalidPageId;
    uint16_t type = 0;
    uint32_t payload_bytes = 0;
    int pins = 0;
    bool dirty = false;
    bool referenced = false;  // clock second-chance bit
    std::unique_ptr<uint8_t[]> buffer;  // payload_capacity() bytes, lazy
  };

  // Locked helpers.
  bool EnsureBuffer(Frame* frame);
  int FindVictim(std::string* error);  // -1 when all frames are pinned
  bool FlushFrame(Frame* frame, std::string* error);

  void Unpin(int frame);

  PageFile* file_;
  mutable std::mutex mu_;
  std::vector<Frame> frames_;
  std::unordered_map<PageId, int> resident_;  // page id -> frame index
  int clock_hand_ = 0;
  PoolStats stats_;
};

}  // namespace geacc::storage

#endif  // GEACC_STORAGE_BUFFER_POOL_H_
