// Minimal JSON document model used by the geacc-bench report pipeline
// (src/obs/bench_report.h). Deliberately tiny: the repo has no external
// JSON dependency, and bench reports only need objects, arrays, strings,
// bools, and numbers. Integers round-trip exactly as int64 (counter
// values must not pass through a double); doubles serialize with
// max_digits10 so wall-clock times survive a parse cycle bit-exactly.
//
// Objects preserve insertion order so emitted reports are stable and
// diffable; lookup is a linear scan, which is fine at report sizes.
//
// Thread-safety: JsonValue is a value type with no hidden shared state —
// const access from multiple threads is safe, mutation is not.

#ifndef GEACC_OBS_JSON_H_
#define GEACC_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace geacc::obs {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}
  JsonValue(bool value) : type_(Type::kBool), bool_(value) {}  // NOLINT
  JsonValue(int value) : type_(Type::kInt), int_(value) {}     // NOLINT
  JsonValue(int64_t value) : type_(Type::kInt), int_(value) {}  // NOLINT
  JsonValue(double value) : type_(Type::kDouble), double_(value) {}  // NOLINT
  JsonValue(const char* value)  // NOLINT
      : type_(Type::kString), string_(value) {}
  JsonValue(std::string value)  // NOLINT
      : type_(Type::kString), string_(std::move(value)) {}

  static JsonValue Array() {
    JsonValue value;
    value.type_ = Type::kArray;
    return value;
  }
  static JsonValue Object() {
    JsonValue value;
    value.type_ = Type::kObject;
    return value;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_int() const { return type_ == Type::kInt; }
  // True for both kInt and kDouble.
  bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool AsBool() const { return bool_; }
  int64_t AsInt() const {
    return type_ == Type::kDouble ? static_cast<int64_t>(double_) : int_;
  }
  double AsDouble() const {
    return type_ == Type::kInt ? static_cast<double>(int_) : double_;
  }
  const std::string& AsString() const { return string_; }

  // Array access.
  const std::vector<JsonValue>& items() const { return items_; }
  std::vector<JsonValue>& items() { return items_; }
  void Append(JsonValue value) { items_.push_back(std::move(value)); }

  // Object access. Set() replaces an existing key in place (order kept).
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }
  void Set(const std::string& key, JsonValue value);
  // nullptr if absent (or if this is not an object).
  const JsonValue* Find(const std::string& key) const;
  JsonValue* Find(const std::string& key) {
    return const_cast<JsonValue*>(
        static_cast<const JsonValue*>(this)->Find(key));
  }

  // Serializes this value. `indent` > 0 pretty-prints with that many
  // spaces per level; 0 emits a compact single line.
  std::string Dump(int indent = 0) const;

  // Parses `text` into `*value`. On failure returns false and describes
  // the first error (with byte offset) in `*error` if non-null.
  static bool Parse(const std::string& text, JsonValue* value,
                    std::string* error = nullptr);

 private:
  void DumpTo(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace geacc::obs

#endif  // GEACC_OBS_JSON_H_
