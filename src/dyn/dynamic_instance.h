// A GEACC instance that mutates over time (the dynamic EBSN setting).
//
// core::Instance is deliberately immutable; DynamicInstance is the mutable
// counterpart the serving layer edits in place. Every mutation —
// AddUser/AddEvent/RemoveUser/RemoveEvent/AddConflict/Set*Capacity — bumps
// a monotonically increasing epoch counter, so any observer can name "the
// instance as of epoch e" and traces replay deterministically.
//
// Ids are slot indices and are never reused: removing an entity tombstones
// its slot (active flag off) instead of compacting, which keeps every id
// ever handed out stable across arbitrary mutation interleavings — the
// property Arrangement and the repair engine rely on. Snapshot() produces
// a dense immutable Instance over the active entities (plus the slot↔dense
// mapping) for consumers of the batch API: full re-solves, oracle
// comparisons, serialization.
//
// Complexity: every mutation is O(1) amortized except AddConflict
// (O(degree) duplicate check) and Snapshot() (O(active entities ×
// dimension + conflicts)). Thread-safety: single-writer — mutations and
// reads must be externally serialized; immutable Snapshot() results may
// be shared freely across threads.

#ifndef GEACC_DYN_DYNAMIC_INSTANCE_H_
#define GEACC_DYN_DYNAMIC_INSTANCE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/attributes.h"
#include "core/conflict_graph.h"
#include "core/instance.h"
#include "core/similarity.h"
#include "core/time_window.h"
#include "core/types.h"
#include "dyn/mutation.h"

namespace geacc {

class DynamicInstance {
 public:
  // Starts empty: no events, no users, epoch 0.
  DynamicInstance(int dim, std::unique_ptr<SimilarityFunction> similarity);

  // Seeds slots 0..n-1 from an existing instance; epoch stays 0 (the seed
  // is the epoch-0 state, not a mutation).
  explicit DynamicInstance(const Instance& instance);

  // Move-only, like Instance.
  DynamicInstance(DynamicInstance&&) = default;
  DynamicInstance& operator=(DynamicInstance&&) = default;
  DynamicInstance(const DynamicInstance&) = delete;
  DynamicInstance& operator=(const DynamicInstance&) = delete;

  // ----- mutations (each bumps epoch) -----

  // Returns the new entity's slot id. Attributes must match dim();
  // capacity must be ≥ 1.
  UserId AddUser(const std::vector<double>& attributes, int capacity);
  EventId AddEvent(const std::vector<double>& attributes, int capacity);

  // The entity must be active; its slot is tombstoned, never reused.
  // RemoveEvent also drops the event's incident conflict pairs.
  void RemoveUser(UserId u);
  void RemoveEvent(EventId v);

  // Both events must be active and distinct; duplicates are a no-op apart
  // from the epoch bump.
  void AddConflict(EventId a, EventId b);

  // The entity must be active; capacity must be ≥ 1.
  void SetEventCapacity(EventId v, int capacity);
  void SetUserCapacity(UserId u, int capacity);

  // ----- time slots (slotted scheduling scenario, DESIGN.md §17) -----
  //
  // Every instance carries per-event time-slot annotations (kInvalidSlot =
  // unscheduled) and per-user availability bitmasks (default: available in
  // every slot). They constrain pair admission via PairAllowed() and are
  // mutated by kSetEventSlot / kSetUserAvailability.

  // Configures slot-overlap conflict derivation: when a table is attached,
  // SetEventSlot rewires the moved event's conflict edges from the
  // windows' overlap/travel rule (core/time_window.h) instead of leaving
  // the conflict graph untouched. Configuration, not a mutation: no epoch
  // bump. At most kMaxTimeSlots windows.
  void AttachSlotTable(std::vector<TimeWindow> windows, double speed_kmph);

  // The event must be active; slot must be in [0, num_time_slots()).
  // With a slot table attached, drops the event's conflict edges and
  // re-derives them against every other active slot-assigned event.
  void SetEventSlot(EventId v, SlotId slot);

  // The user must be active; mask must be in [0, 2^kMaxTimeSlots).
  void SetUserAvailability(UserId u, int64_t mask);

  // Applies a trace mutation. Returns the assigned slot id for adds,
  // kInvalidEvent/kInvalidUser-style -1 otherwise.
  int32_t Apply(const Mutation& mutation);

  // ----- observers -----

  // Number of mutations applied so far.
  int64_t epoch() const { return epoch_; }

  int dim() const { return dim_; }

  // Slot counts include tombstones; slot ids range over [0, *_slots()).
  int event_slots() const { return static_cast<int>(event_active_.size()); }
  int user_slots() const { return static_cast<int>(user_active_.size()); }
  int num_active_events() const { return num_active_events_; }
  int num_active_users() const { return num_active_users_; }

  bool event_active(EventId v) const {
    GEACC_DCHECK(v >= 0 && v < event_slots());
    return event_active_[v];
  }
  bool user_active(UserId u) const {
    GEACC_DCHECK(u >= 0 && u < user_slots());
    return user_active_[u];
  }

  // Capacity reads require an in-range slot id (active or tombstoned —
  // tombstones report their last capacity).
  int event_capacity(EventId v) const {
    GEACC_DCHECK(v >= 0 && v < event_slots());
    return event_capacities_[v];
  }
  int user_capacity(UserId u) const {
    GEACC_DCHECK(u >= 0 && u < user_slots());
    return user_capacities_[u];
  }

  double Similarity(EventId v, UserId u) const {
    return similarity_->Compute(event_attributes_.Row(v),
                                user_attributes_.Row(u), dim_);
  }

  // Slot-id space: the attached table's size, or kMaxTimeSlots when no
  // table is attached (annotations-only mode).
  int num_time_slots() const {
    return slot_windows_.empty() ? kMaxTimeSlots
                                 : static_cast<int>(slot_windows_.size());
  }

  // kInvalidSlot when unscheduled. In-range slot id required (tombstones
  // report their last value, like capacities).
  SlotId event_time_slot(EventId v) const {
    GEACC_DCHECK(v >= 0 && v < event_slots());
    return event_time_slots_[v];
  }
  int64_t user_availability(UserId u) const {
    GEACC_DCHECK(u >= 0 && u < user_slots());
    return user_availability_[u];
  }

  // False only when `v` is scheduled in a slot `u` is unavailable for;
  // unscheduled events admit everyone. Capacity/conflict/similarity
  // feasibility is the caller's concern.
  bool PairAllowed(EventId v, UserId u) const {
    const SlotId slot = event_time_slots_[v];
    if (slot < 0) return true;
    return (user_availability_[u] >> slot) & 1;
  }

  // True once any slot/availability mutation has been applied — i.e. when
  // consumers solving over Snapshot() must mask forbidden pairs
  // (core/masked_similarity.h) to stay feasible.
  bool has_slot_constraints() const { return has_slot_constraints_; }

  // Attribute matrices span all slots (tombstoned rows keep their last
  // value); k-NN indexes built over them must filter by *_active().
  const AttributeMatrix& event_attributes() const { return event_attributes_; }
  const AttributeMatrix& user_attributes() const { return user_attributes_; }
  const ConflictGraph& conflicts() const { return conflicts_; }
  const SimilarityFunction& similarity() const { return *similarity_; }

  // ----- snapshots -----

  // Slot id ↔ dense id translation for a Snapshot().
  struct SnapshotMap {
    std::vector<EventId> dense_to_event;  // dense id -> slot id
    std::vector<UserId> dense_to_user;
    std::vector<int> event_to_dense;  // slot id -> dense id, -1 if inactive
    std::vector<int> user_to_dense;
  };

  // Materializes the active entities as a dense immutable Instance.
  Instance Snapshot(SnapshotMap* map = nullptr) const;

  // ----- slot-level state (page-based checkpoints, DESIGN.md §14) -----
  //
  // Unlike Snapshot(), SlotState preserves the slot space verbatim —
  // tombstones, their last attributes/capacities, and the epoch — so a
  // restored instance is indistinguishable from the original: every slot
  // id resolves identically and index builds over the (full) attribute
  // matrices reproduce bit-identical geometry.
  struct SlotState {
    int dim = 0;
    int64_t epoch = 0;
    AttributeMatrix event_attributes{0, 0};
    AttributeMatrix user_attributes{0, 0};
    std::vector<int> event_capacities;
    std::vector<int> user_capacities;
    std::vector<uint8_t> event_active;  // 0/1 per slot
    std::vector<uint8_t> user_active;
    std::vector<std::pair<EventId, EventId>> conflicts;  // a < b, sorted
    // Time-slot annotations. Empty vectors mean "all defaults" (no event
    // scheduled, every user fully available) so pre-slot states restore
    // unchanged; otherwise sizes must match the entity slot counts.
    std::vector<SlotId> event_time_slots;
    std::vector<int64_t> user_availability;
  };

  SlotState ExportSlotState() const;

  // Reconstructs an instance from an exported (or deserialized) state.
  // Returns nullopt and sets `error` if the state is internally
  // inconsistent (mismatched sizes, out-of-range or tombstoned conflict
  // endpoints).
  static std::optional<DynamicInstance> FromSlotState(
      SlotState state, std::unique_ptr<SimilarityFunction> similarity,
      std::string* error);

  // One-line summary: epoch, active/slot counts, conflicts.
  std::string DebugString() const;

 private:
  int dim_;
  std::unique_ptr<SimilarityFunction> similarity_;
  int64_t epoch_ = 0;

  AttributeMatrix event_attributes_;
  AttributeMatrix user_attributes_;
  std::vector<int> event_capacities_;
  std::vector<int> user_capacities_;
  std::vector<bool> event_active_;
  std::vector<bool> user_active_;
  int num_active_events_ = 0;
  int num_active_users_ = 0;
  ConflictGraph conflicts_;

  // Time-slot annotations (one entry per entity slot, like capacities).
  std::vector<SlotId> event_time_slots_;
  std::vector<int64_t> user_availability_;
  bool has_slot_constraints_ = false;
  // Optional slot table for conflict derivation (empty = detached).
  std::vector<TimeWindow> slot_windows_;
  double slot_speed_kmph_ = 0.0;
};

}  // namespace geacc

#endif  // GEACC_DYN_DYNAMIC_INSTANCE_H_
