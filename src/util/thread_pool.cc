#include "util/thread_pool.h"

#include <algorithm>

#include "obs/stats.h"
#include "util/check.h"

namespace geacc {
namespace {

// Set while a thread runs ThreadPool::WorkerLoop; lets a chunk decide at
// execution time whether its stats need forwarding to the caller (worker
// lane) or already land on the right thread (caller lane).
thread_local const ThreadPool* tl_worker_pool = nullptr;

}  // namespace

int ResolveThreadCount(int requested) {
  if (requested >= 1) return requested;
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : static_cast<int>(hardware);
}

ThreadPool::ThreadPool(int threads) {
  const int workers = std::max(0, ResolveThreadCount(threads) - 1);
  queues_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(wake_mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop(int worker_index) {
  tl_worker_pool = this;
  while (true) {
    if (RunOneTask(worker_index)) continue;
    std::unique_lock<std::mutex> lock(wake_mu_);
    wake_cv_.wait(lock, [this] { return stop_ || queued_ > 0; });
    // ParallelFor blocks until its region drains, so destruction never
    // races live tasks: on stop the queues are already empty.
    if (stop_) return;
  }
}

bool ThreadPool::RunOneTask(int home_queue) {
  std::function<void()> task;
  const int n = static_cast<int>(queues_.size());
  if (home_queue >= 0) {
    WorkerQueue& own = *queues_[home_queue];
    const std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      task = std::move(own.tasks.back());
      own.tasks.pop_back();
    }
  }
  if (!task) {
    for (int i = 0; i < n && !task; ++i) {
      const int q = (home_queue + 1 + i) % n;
      if (q == home_queue) continue;
      WorkerQueue& victim = *queues_[q];
      const std::lock_guard<std::mutex> lock(victim.mu);
      if (!victim.tasks.empty()) {
        task = std::move(victim.tasks.front());
        victim.tasks.pop_front();
        // The caller draining its own submissions is not a steal.
        if (home_queue >= 0) steals_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  if (!task) return false;
  {
    const std::lock_guard<std::mutex> lock(wake_mu_);
    --queued_;
  }
  task();
  return true;
}

int ThreadPool::NumChunks(int64_t begin, int64_t end, int64_t grain) const {
  if (end <= begin) return 0;
  const int64_t range = end - begin;
  const int64_t min_grain = std::max<int64_t>(1, grain);
  const int64_t by_grain = (range + min_grain - 1) / min_grain;
  // Several chunks per lane so a slow chunk can be compensated by steals;
  // an inline pool keeps the single chunk of a plain serial loop.
  const int64_t target =
      queues_.empty() ? 1 : static_cast<int64_t>(concurrency()) * 4;
  return static_cast<int>(std::min({by_grain, range, target}));
}

void ThreadPool::ParallelFor(
    int64_t begin, int64_t end,
    const std::function<void(int chunk, int64_t chunk_begin,
                             int64_t chunk_end)>& chunk_fn,
    int64_t grain) {
  if (end <= begin) return;
  const int chunks = NumChunks(begin, end, grain);
  const int64_t range = end - begin;
  auto chunk_bounds = [&](int chunk) {
    return std::pair<int64_t, int64_t>(
        begin + range * chunk / chunks, begin + range * (chunk + 1) / chunks);
  };
  if (queues_.empty() || chunks == 1) {
    for (int chunk = 0; chunk < chunks; ++chunk) {
      const auto [chunk_begin, chunk_end] = chunk_bounds(chunk);
      chunk_fn(chunk, chunk_begin, chunk_end);
    }
    return;
  }

  // Per-region completion state lives on the caller's stack; tasks cannot
  // outlive the region because this function drains it before returning.
  struct Region {
    std::mutex mu;
    std::condition_variable cv;
    int remaining;
  } region{{}, {}, chunks};
  // Worker-side deltas per chunk, re-credited to this thread afterwards so
  // StatsScope attribution survives the fan-out.
  std::vector<obs::StatsSnapshot> worker_stats(chunks);
  const int64_t steals_before = steals();

  auto run_chunk = [&](int chunk) {
    const auto [chunk_begin, chunk_end] = chunk_bounds(chunk);
    if (tl_worker_pool == this) {
      const obs::StatsScope scope;
      chunk_fn(chunk, chunk_begin, chunk_end);
      worker_stats[chunk] = scope.Harvest();
    } else {
      chunk_fn(chunk, chunk_begin, chunk_end);
    }
    const std::lock_guard<std::mutex> lock(region.mu);
    if (--region.remaining == 0) region.cv.notify_one();
  };

  for (int chunk = 0; chunk < chunks; ++chunk) {
    const size_t q = next_queue_.fetch_add(1, std::memory_order_relaxed) %
                     queues_.size();
    {
      const std::lock_guard<std::mutex> lock(queues_[q]->mu);
      queues_[q]->tasks.emplace_back([&run_chunk, chunk] { run_chunk(chunk); });
    }
    {
      const std::lock_guard<std::mutex> lock(wake_mu_);
      ++queued_;
    }
    wake_cv_.notify_one();
  }

  // The caller is a full lane: help until the queues run dry, then wait
  // for in-flight chunks on worker lanes.
  while (RunOneTask(-1)) {
  }
  {
    std::unique_lock<std::mutex> lock(region.mu);
    region.cv.wait(lock, [&region] { return region.remaining == 0; });
  }

  for (const obs::StatsSnapshot& snapshot : worker_stats) {
    obs::ForwardToCallingThread(snapshot);
  }
  GEACC_STATS_ADD("pool.parallel_fors", 1);
  GEACC_STATS_ADD("pool.chunks", chunks);
  GEACC_STATS_ADD("pool.steals", steals() - steals_before);
}

}  // namespace geacc
