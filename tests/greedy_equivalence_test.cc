// Property test: Greedy-GEACC (Algorithm 2's lazy heap over incremental NN
// cursors) must produce the *identical* matching to the sort-all greedy
// specification (sort every positive pair globally, add feasible pairs in
// order). Feasibility is monotone, so both define "repeatedly add the most
// similar addable pair" — any divergence is a bug in the heap/cursor
// machinery. Swept over sizes, conflict densities, capacities and seeds.

#include <gtest/gtest.h>

#include <tuple>

#include "algo/solvers.h"
#include "gen/ebsn.h"
#include "gen/synthetic.h"
#include "tests/test_util.h"

namespace geacc {
namespace {

using Param = std::tuple<int, int, double, uint64_t>;  // |V|, |U|, rho, seed

class GreedyEquivalenceTest : public ::testing::TestWithParam<Param> {};

TEST_P(GreedyEquivalenceTest, HeapGreedyEqualsSortAllGreedy) {
  const auto& [num_events, num_users, density, seed] = GetParam();
  SyntheticConfig config;
  config.num_events = num_events;
  config.num_users = num_users;
  config.dim = 4;
  config.max_attribute = 100.0;
  config.event_attribute = DistributionSpec::Uniform(0.0, 100.0);
  config.user_attribute = DistributionSpec::Uniform(0.0, 100.0);
  config.event_capacity = DistributionSpec::Uniform(1.0, 8.0);
  config.user_capacity = DistributionSpec::Uniform(1.0, 4.0);
  config.conflict_density = density;
  config.seed = seed * 997 + 13;
  const Instance instance = GenerateSynthetic(config);

  const auto heap = CreateSolver("greedy")->Solve(instance);
  const auto sorted = CreateSolver("greedy-sortall")->Solve(instance);
  EXPECT_EQ(heap.arrangement.SortedPairs(), sorted.arrangement.SortedPairs());
  EXPECT_EQ(sorted.arrangement.Validate(instance), "");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GreedyEquivalenceTest,
    ::testing::Combine(::testing::Values(3, 10, 40),
                       ::testing::Values(5, 30, 120),
                       ::testing::Values(0.0, 0.4, 1.0),
                       ::testing::Values(1, 2, 3)));

TEST(GreedyEquivalence, HoldsOnEbsnData) {
  EbsnConfig config = EbsnCityPreset("auckland");
  config.seed = 23;
  const Instance instance = GenerateEbsn(config);
  const auto heap = CreateSolver("greedy")->Solve(instance);
  const auto sorted = CreateSolver("greedy-sortall")->Solve(instance);
  EXPECT_EQ(heap.arrangement.SortedPairs(), sorted.arrangement.SortedPairs());
}

TEST(GreedyEquivalence, HoldsOnPaperExample) {
  const Instance instance = geacc::testing::PaperTableIExample();
  const auto heap = CreateSolver("greedy")->Solve(instance);
  const auto sorted = CreateSolver("greedy-sortall")->Solve(instance);
  EXPECT_EQ(heap.arrangement.SortedPairs(), sorted.arrangement.SortedPairs());
  EXPECT_NEAR(sorted.arrangement.MaxSum(instance), 4.28, 1e-9);
}

}  // namespace
}  // namespace geacc
