#include "algo/greedy_solver.h"

#include <algorithm>
#include <memory>
#include <queue>
#include <unordered_set>
#include <vector>

#include "index/knn_index.h"
#include "obs/stats.h"
#include "util/memory.h"
#include "util/timer.h"

namespace geacc {
namespace {

// Heap entry ordered by (similarity desc, event asc, user asc) so pops are
// deterministic under similarity ties.
struct PairEntry {
  double similarity;
  EventId v;
  UserId u;

  bool operator<(const PairEntry& other) const {
    if (similarity != other.similarity) return similarity < other.similarity;
    if (v != other.v) return v > other.v;
    return u > other.u;
  }
};

// Mutable solve-state shared by the helper lambdas.
struct GreedyState {
  std::vector<int> event_capacity;
  std::vector<int> user_capacity;
  std::vector<std::unique_ptr<NnCursor>> event_cursors;  // over users
  std::vector<std::unique_ptr<NnCursor>> user_cursors;   // over events
  std::priority_queue<PairEntry> heap;
  std::unordered_set<uint64_t> pushed;  // pairs ever pushed into the heap
};

}  // namespace

SolveResult GreedySolver::Solve(const Instance& instance) const {
  WallTimer timer;
  SolverStats stats;
  const int num_events = instance.num_events();
  const int num_users = instance.num_users();
  Arrangement matching(num_events, num_users);
  if (num_events == 0 || num_users == 0) {
    stats.wall_seconds = timer.Seconds();
    return {std::move(matching), stats};
  }

  const std::unique_ptr<KnnIndex> user_index = MakeIndex(
      options_.index, instance.user_attributes(), instance.similarity());
  const std::unique_ptr<KnnIndex> event_index = MakeIndex(
      options_.index, instance.event_attributes(), instance.similarity());
  GEACC_CHECK(user_index != nullptr && event_index != nullptr)
      << "unknown index '" << options_.index << "'";

  GreedyState state;
  state.event_capacity.resize(num_events);
  state.user_capacity.resize(num_users);
  for (EventId v = 0; v < num_events; ++v) {
    state.event_capacity[v] = instance.event_capacity(v);
  }
  for (UserId u = 0; u < num_users; ++u) {
    state.user_capacity[u] = instance.user_capacity(u);
  }
  state.event_cursors.resize(num_events);
  state.user_cursors.resize(num_users);
  for (EventId v = 0; v < num_events; ++v) {
    state.event_cursors[v] =
        user_index->CreateCursor(instance.event_attributes().Row(v));
  }
  for (UserId u = 0; u < num_users; ++u) {
    state.user_cursors[u] =
        event_index->CreateCursor(instance.user_attributes().Row(u));
  }

  const ConflictGraph& conflicts = instance.conflicts();
  // True iff v conflicts with an event already matched to u.
  auto conflicts_with_matched = [&](EventId v, UserId u) {
    for (const EventId w : matching.EventsOf(u)) {
      if (conflicts.AreConflicting(v, w)) return true;
    }
    return false;
  };

  // Candidates a cursor skipped because they were already pushed or had
  // become infeasible (lazy re-insert work, batched and flushed below).
  int64_t cursor_skips = 0;
  int64_t matches = 0;

  auto push_pair = [&](EventId v, UserId u, double similarity) {
    if (!state.pushed.insert(PairKey(v, u)).second) return;  // already in H
    state.heap.push({similarity, v, u});
    ++stats.heap_pushes;
  };

  // Advances an event's cursor to its next feasible unvisited user and
  // pushes the pair. Feasibility at skip time is permanent (capacities
  // only decrease, conflicts only accumulate), so consumed candidates are
  // never needed again. `check_constraints` is false during initialization
  // (Algorithm 2 lines 2–8 push plain first-NNs).
  auto advance_event = [&](EventId v, bool check_constraints) {
    while (true) {
      const auto next = state.event_cursors[v]->Next();
      if (!next) return;                     // v is a finished node
      if (next->similarity <= 0.0) return;   // all later NNs also ≤ 0
      const UserId u = next->id;
      if (state.pushed.contains(PairKey(v, u))) {
        ++cursor_skips;  // visited
        continue;
      }
      if (check_constraints) {
        if (state.user_capacity[u] <= 0 || conflicts_with_matched(v, u)) {
          ++cursor_skips;
          continue;
        }
      }
      push_pair(v, u, next->similarity);
      return;
    }
  };

  auto advance_user = [&](UserId u, bool check_constraints) {
    while (true) {
      const auto next = state.user_cursors[u]->Next();
      if (!next) return;
      if (next->similarity <= 0.0) return;
      const EventId v = next->id;
      if (state.pushed.contains(PairKey(v, u))) {
        ++cursor_skips;
        continue;
      }
      if (check_constraints) {
        if (state.event_capacity[v] <= 0 || conflicts_with_matched(v, u)) {
          ++cursor_skips;
          continue;
        }
      }
      push_pair(v, u, next->similarity);
      return;
    }
  };

  {
    // Initialization (lines 1–9): each node contributes its first NN.
    GEACC_PHASE_TIMER("greedy.init");
    for (EventId v = 0; v < num_events; ++v) advance_event(v, false);
    for (UserId u = 0; u < num_users; ++u) advance_user(u, false);
  }

  {
    // Iteration (lines 11–23).
    GEACC_PHASE_TIMER("greedy.iterate");
    while (!state.heap.empty()) {
      const PairEntry top = state.heap.top();
      state.heap.pop();
      ++stats.heap_pops;
      const EventId v = top.v;
      const UserId u = top.u;
      if (state.event_capacity[v] > 0 && state.user_capacity[u] > 0 &&
          !conflicts_with_matched(v, u)) {
        matching.Add(v, u);
        ++matches;
        --state.event_capacity[v];
        --state.user_capacity[u];
      }
      if (state.event_capacity[v] > 0) advance_event(v, true);
      if (state.user_capacity[u] > 0) advance_user(u, true);
    }
  }
  GEACC_STATS_ADD("greedy.heap_pushes", stats.heap_pushes);
  GEACC_STATS_ADD("greedy.heap_pops", stats.heap_pops);
  GEACC_STATS_ADD("greedy.cursor_skips", cursor_skips);
  GEACC_STATS_ADD("greedy.matches", matches);

  stats.logical_peak_bytes =
      VectorBytes(state.event_capacity) + VectorBytes(state.user_capacity) +
      state.pushed.size() * (sizeof(uint64_t) + sizeof(void*)) +
      static_cast<uint64_t>(stats.heap_pushes) * sizeof(PairEntry) +
      user_index->ByteEstimate() + event_index->ByteEstimate() +
      (static_cast<uint64_t>(num_events) + num_users) * 1600 +  // cursors
      matching.ByteEstimate();
  stats.wall_seconds = timer.Seconds();
  return {std::move(matching), stats};
}

}  // namespace geacc
