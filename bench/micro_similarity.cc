// Microbenchmarks: similarity kernels across dimensionality (the innermost
// loop of every solver).

#include <benchmark/benchmark.h>

#include "bench/micro_common.h"

#include <memory>
#include <vector>

#include "core/similarity.h"
#include "util/rng.h"

namespace geacc {
namespace {

void FillRandom(std::vector<double>& v, Rng& rng) {
  for (double& x : v) x = rng.UniformReal(0.0, 100.0);
}

void BM_Similarity(benchmark::State& state, const std::string& name) {
  const int dim = static_cast<int>(state.range(0));
  const auto sim = MakeSimilarity(name, name == "rbf" ? 25.0 : 100.0);
  Rng rng(1);
  std::vector<double> a(dim), b(dim);
  FillRandom(a, rng);
  FillRandom(b, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim->Compute(a.data(), b.data(), dim));
  }
  state.SetItemsProcessed(state.iterations());
}

void RegisterAll() {
  for (const char* name : {"euclidean", "cosine", "rbf", "dot"}) {
    benchmark::RegisterBenchmark(
        (std::string("BM_Similarity/") + name).c_str(),
        [name](benchmark::State& state) { BM_Similarity(state, name); })
        ->Arg(2)
        ->Arg(20)
        ->Arg(100);
  }
}

const bool kRegistered = (RegisterAll(), true);

}  // namespace
}  // namespace geacc

GEACC_MICRO_MAIN("micro_similarity")
