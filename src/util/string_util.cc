#include "util/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace geacc {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      break;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::optional<int64_t> ParseInt(std::string_view text) {
  const std::string buf(Trim(text));
  if (buf.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return std::nullopt;
  return static_cast<int64_t>(value);
}

std::optional<double> ParseDouble(std::string_view text) {
  const std::string buf(Trim(text));
  if (buf.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return std::nullopt;
  return value;
}

std::optional<bool> ParseBool(std::string_view text) {
  const std::string buf(Trim(text));
  if (buf == "true" || buf == "1" || buf == "yes" || buf == "on") return true;
  if (buf == "false" || buf == "0" || buf == "no" || buf == "off") {
    return false;
  }
  return std::nullopt;
}

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string result;
  if (needed > 0) {
    result.resize(static_cast<size_t>(needed));
    std::vsnprintf(result.data(), result.size() + 1, format, args_copy);
  }
  va_end(args_copy);
  return result;
}

std::string HumanBytes(uint64_t bytes) {
  constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < std::size(kUnits)) {
    value /= 1024.0;
    ++unit;
  }
  if (unit == 0) return StrFormat("%llu B", (unsigned long long)bytes);
  return StrFormat("%.1f %s", value, kUnits[unit]);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

}  // namespace geacc
