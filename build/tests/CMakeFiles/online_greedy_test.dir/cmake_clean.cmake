file(REMOVE_RECURSE
  "CMakeFiles/online_greedy_test.dir/online_greedy_test.cc.o"
  "CMakeFiles/online_greedy_test.dir/online_greedy_test.cc.o.d"
  "online_greedy_test"
  "online_greedy_test.pdb"
  "online_greedy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_greedy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
