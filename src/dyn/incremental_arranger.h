// Keeps an arrangement feasible and near-optimal while its instance
// mutates, without paying a full re-solve per update.
//
// The engine owns mutation application: Apply(mutation) forwards the edit
// to the DynamicInstance, then repairs only the affected neighborhood —
// evict pairs the mutation made infeasible, then greedily refill freed
// capacity from incremental nearest-neighbor cursors (the same src/index/
// backends Greedy-GEACC uses). Refill enumerates candidates in
// (similarity desc, id asc) order, so an arrival-only trace reproduces
// OnlineArranger's arrangement exactly (see online_greedy_solver.h).
//
// Two knobs bound the work and the quality loss:
//
//  * repair_budget — maximum cursor steps spent repairing one mutation;
//    when exhausted the repair stops early (capacity may stay unserved
//    until a later repair or full re-solve touches it).
//  * drift_threshold — each repair accumulates the *displaced* value it
//    failed to win back locally (evictions caused by new conflicts or
//    capacity cuts, net of refill gains; value lost to entity removal is
//    unavoidable and not counted). When the accumulated drift exceeds
//    threshold × current MaxSum, the engine re-solves the whole snapshot
//    with the fallback solver and resets the drift.
//
// The arranger assumes every instance mutation flows through Apply();
// out-of-band edits to the DynamicInstance CHECK-fail at the next Apply().
//
// Complexity: Apply() is O(evictions + refill cursor steps) — bounded by
// repair_budget when set — except when drift triggers the fallback,
// which costs one full solve over the current snapshot. Quality: between
// full resolves the arrangement is always feasible but may drift below
// the fallback solver's ratio; the drift accounting bounds the locally
// displaced (not removed) value to drift_threshold × MaxSum.
// Thread-safety: single-writer, same as DynamicInstance — one thread
// drives Apply()/FullResolve(); readers of arrangement()/stats() must be
// externally serialized with it. Counters reported: dyn.mutations,
// dyn.assignment_changes, dyn.evictions, dyn.refill_steps,
// dyn.budget_exhausted, dyn.full_resolves (timer dyn.full_resolve).

#ifndef GEACC_DYN_INCREMENTAL_ARRANGER_H_
#define GEACC_DYN_INCREMENTAL_ARRANGER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/arrangement.h"
#include "core/solver.h"
#include "dyn/dynamic_instance.h"
#include "dyn/mutation.h"
#include "index/knn_index.h"

namespace geacc {

struct RepairOptions {
  // k-NN backend for the refill cursors ("linear", "kdtree", "vafile",
  // "idistance", "idistance-paged"). "linear" rebuilds in O(1) after
  // instance growth, which makes it the right default under heavy churn.
  std::string index = "linear";

  // "idistance-paged" only: buffer-pool budget + page-file directory for
  // the disk-backed key trees (see SolverOptions for semantics).
  uint64_t storage_budget_bytes = 16ull << 20;
  std::string storage_dir;

  // Max cursor steps per Apply(); 0 = unlimited.
  int64_t repair_budget = 0;

  // Full re-solve when drift > drift_threshold × max(1, MaxSum);
  // ≤ 0 disables the fallback entirely.
  double drift_threshold = 0.1;

  // Registry name of the full re-solve fallback (see algo/solvers.h).
  std::string fallback_solver = "greedy";

  // Thread budget handed to the fallback solver's SolverOptions. Solvers
  // are bit-identical across thread counts (DESIGN.md §10,
  // tests/parallel_determinism_test), so this trades full-resolve latency
  // only — repair results never depend on it.
  int threads = 1;

  // When false the arranger never *adds* pairs on its own: repairs evict
  // whatever a mutation made infeasible but skip the greedy refill and the
  // drift-triggered full re-solve. Shard replicas run in this mode — their
  // arrangement is owned by the coordinator's epoch repair pass
  // (src/shard/, DESIGN.md §16) and installed via InstallArrangement();
  // autonomous refill would diverge from the global admission order.
  bool refill = true;
};

// Cumulative counters; repair latencies are per-Apply.
struct RepairStats {
  int64_t mutations = 0;
  int64_t assignments_added = 0;    // includes full-resolve rebuilds
  int64_t assignments_removed = 0;
  int64_t cursor_steps = 0;
  int64_t budget_exhausted = 0;  // fills cut short by repair_budget
  int64_t full_resolves = 0;
  double last_repair_seconds = 0.0;
  double total_repair_seconds = 0.0;
};

class IncrementalArranger {
 public:
  // `instance` must outlive the arranger (and must not move). The initial
  // arrangement is empty; call FullResolve() to bootstrap from the
  // fallback solver when the instance starts non-empty.
  explicit IncrementalArranger(DynamicInstance* instance,
                               RepairOptions options = {});

  // Applies the mutation to the instance, then repairs locally. Returns
  // the number of arrangement changes (adds + removes) performed.
  int64_t Apply(const Mutation& mutation);

  // Drops the maintained arrangement and re-solves the active snapshot
  // with the fallback solver; resets drift.
  void FullResolve();

  const Arrangement& arrangement() const { return arrangement_; }
  const DynamicInstance& instance() const { return *instance_; }

  // Incrementally maintained Σ sim over matched pairs.
  double max_sum() const { return max_sum_; }
  // From-scratch recomputation, for validation against max_sum().
  double RecomputeMaxSum() const;

  double drift() const { return drift_; }
  const RepairStats& stats() const { return stats_; }

  // Users currently matched to `v`, unordered.
  const std::vector<UserId>& UsersOf(EventId v) const {
    return event_users_[v];
  }

  // Empty string when the maintained arrangement is feasible for the live
  // instance: capacities respected, only active entities matched, positive
  // similarity, no conflicting pair per user, remaining-capacity mirrors
  // consistent.
  std::string Validate() const;

  // ----- checkpoint state (svc/paged_checkpoint, DESIGN.md §14) -----
  //
  // Captures the repair-relevant state exactly: both adjacency views in
  // their live insertion order (repair handlers iterate them, so order is
  // behavioral) and the accumulated floats as bit patterns (so a restored
  // arranger continues bit-identically to one that never stopped).
  struct ArrangerState {
    std::vector<std::vector<EventId>> user_events;  // per user, in order
    std::vector<std::vector<UserId>> event_users;   // per event, in order
    uint64_t max_sum_bits = 0;  // max_sum() as IEEE-754 bits
    uint64_t drift_bits = 0;    // drift() as IEEE-754 bits
  };

  ArrangerState ExportState() const;

  // Replaces the maintained arrangement with `state`, which must describe
  // a feasible arrangement for the *current* instance (the caller restores
  // the instance first). Returns "" on success; on failure the arranger is
  // left empty and the caller should fall back to a full re-solve.
  std::string RestoreState(const ArrangerState& state);

  // Replaces the maintained arrangement with exactly `pairs` (admission
  // order preserved per user and per event) and adopts `max_sum_bits` as
  // the maintained sum. The shard write path lands coordinator-computed
  // arrangements through this: the pairs must be feasible for the current
  // instance and the sum must match a recomputation to double precision.
  // Returns "" on success; on failure the arranger is left empty.
  std::string InstallArrangement(
      const std::vector<std::pair<EventId, UserId>>& pairs,
      uint64_t max_sum_bits);

 private:
  // RestoreState body; on failure the arrangement may be partial — the
  // public wrapper resets to empty before surfacing the error.
  std::string RestoreStateImpl(const ArrangerState& state);
  // Drops all assignments and re-syncs the mirrors to the live instance.
  void ResetToEmpty();

  // Grows the per-slot mirrors after the instance added a slot.
  void GrowToInstance();
  // Rebuilds a side's k-NN index when the instance outgrew it.
  void RefreshIndexes();

  void AddPair(EventId v, UserId u, double similarity);
  void RemovePair(EventId v, UserId u);
  bool ConflictsWithAssigned(EventId v, UserId u) const;

  // Greedy refills from NN cursors; consume steps_left_.
  void FillUser(UserId u);
  void FillEvent(EventId v);

  // Per-kind repair handlers (the mutation has already been validated and
  // applied to the instance where noted).
  void ApplyAddUser(const Mutation& mutation);
  void ApplyAddEvent(const Mutation& mutation);
  void ApplyRemoveUser(const Mutation& mutation);
  void ApplyRemoveEvent(const Mutation& mutation);
  void ApplyAddConflict(const Mutation& mutation);
  void ApplySetEventCapacity(const Mutation& mutation);
  void ApplySetUserCapacity(const Mutation& mutation);
  void ApplySetEventSlot(const Mutation& mutation);
  void ApplySetUserAvailability(const Mutation& mutation);

  void MaybeFullResolve();

  DynamicInstance* instance_;
  RepairOptions options_;
  std::unique_ptr<Solver> fallback_;

  Arrangement arrangement_;
  std::vector<std::vector<UserId>> event_users_;  // reverse adjacency
  std::vector<int> event_remaining_;  // capacity − load (0 for tombstones)
  std::vector<int> user_remaining_;

  std::unique_ptr<KnnIndex> event_index_;  // over event attributes
  std::unique_ptr<KnnIndex> user_index_;   // over user attributes

  double max_sum_ = 0.0;
  double drift_ = 0.0;
  int64_t steps_left_ = 0;  // budget for the Apply() in flight
  int64_t observed_epoch_ = 0;
  RepairStats stats_;
};

}  // namespace geacc

#endif  // GEACC_DYN_INCREMENTAL_ARRANGER_H_
