file(REMOVE_RECURSE
  "libgeacc_util.a"
)
