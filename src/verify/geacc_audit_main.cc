// geacc_audit: differential correctness harness CLI (DESIGN.md §13).
//
// Two modes:
//
//   * File audit (default): audit an arrangement against an instance and
//     print every violation, machine-readably with --json.
//
//       geacc_audit instance.txt arrangement.txt [--maximal] [--json r.json]
//
//   * Campaign (--campaign): sweep seeded instances through the solver
//     matrix (see verify/oracle.h for the full check list). On failure,
//     --shrink minimizes each counterexample with delta debugging and
//     --repro_dir writes the (original + shrunken) instances as repro
//     artifacts.
//
//       geacc_audit --campaign --instances 200 --seed 42 --shrink
//                   --repro_dir repro/ --json campaign.json
//
// The harness self-test injects a fault into the greedy solver's output
// and asserts the campaign catches it:
//
//       geacc_audit --campaign --inject extra-pair --shrink --expect_detect
//
// Exit status: 0 = clean (or, under --expect_detect, fault detected),
// 1 = violations found (or fault missed), 2 = usage/IO error.

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "io/instance_io.h"
#include "obs/json.h"
#include "util/check.h"
#include "util/flags.h"
#include "verify/audit.h"
#include "verify/oracle.h"

namespace {

using geacc::obs::JsonValue;
using geacc::verify::AuditOptions;
using geacc::verify::AuditReport;
using geacc::verify::CampaignConfig;
using geacc::verify::CampaignFailure;
using geacc::verify::CampaignResult;

bool WriteTextFile(const std::string& path, const std::string& text) {
  std::ofstream os(path);
  if (!os) return false;
  os << text;
  return os.good();
}

// "audit/greedy" -> "audit_greedy" for artifact file names.
std::string Sanitize(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return out;
}

int RunFileAudit(const std::string& instance_path,
                 const std::string& arrangement_path, bool maximal,
                 const std::string& json_path) {
  std::string error;
  auto instance = geacc::ReadInstanceFromFile(instance_path, &error);
  if (!instance.has_value()) {
    std::fprintf(stderr, "geacc_audit: cannot read %s: %s\n",
                 instance_path.c_str(), error.c_str());
    return 2;
  }
  auto arrangement =
      geacc::ReadArrangementFromFile(arrangement_path, *instance, &error);
  if (!arrangement.has_value()) {
    std::fprintf(stderr, "geacc_audit: cannot read %s: %s\n",
                 arrangement_path.c_str(), error.c_str());
    return 2;
  }
  AuditOptions options;
  options.check_maximality = maximal;
  const AuditReport report =
      AuditArrangement(*instance, *arrangement, options);
  if (!json_path.empty() &&
      !WriteTextFile(json_path, report.ToJson().Dump(2) + "\n")) {
    std::fprintf(stderr, "geacc_audit: cannot write %s\n", json_path.c_str());
    return 2;
  }
  if (report.ok()) {
    std::printf("OK: arrangement passes the audit (%d events, %d users)\n",
                instance->num_events(), instance->num_users());
    return 0;
  }
  std::printf("%zu violation(s):\n%s\n", report.violations.size(),
              report.Summary().c_str());
  return 1;
}

JsonValue CampaignJson(const CampaignConfig& config,
                       const CampaignResult& result) {
  JsonValue json = JsonValue::Object();
  json.Set("schema", "geacc-audit-campaign v1");
  json.Set("ok", result.ok());
  json.Set("instances", result.instances);
  json.Set("checks", result.checks);
  json.Set("seed", static_cast<int64_t>(config.seed));
  json.Set("bound", config.bound);
  json.Set("conflict_density", config.conflict_density);
  json.Set("inject", config.inject);
  JsonValue failures = JsonValue::Array();
  for (const CampaignFailure& failure : result.failures) {
    JsonValue entry = JsonValue::Object();
    entry.Set("check", failure.check);
    entry.Set("detail", failure.detail);
    entry.Set("seed", static_cast<int64_t>(failure.seed));
    if (!failure.shrunk_instance_text.empty()) {
      entry.Set("shrink_rounds", failure.shrink_stats.rounds);
      entry.Set("shrink_predicate_calls",
                failure.shrink_stats.predicate_calls);
    }
    failures.Append(std::move(entry));
  }
  json.Set("failures", std::move(failures));
  return json;
}

// Writes <repro_dir>/<i>_<check>.instance (+ .min.instance when shrunk).
// Returns the number of artifacts written, -1 on IO error.
int WriteRepros(const std::string& repro_dir, const CampaignResult& result) {
  std::error_code ec;
  std::filesystem::create_directories(repro_dir, ec);
  if (ec) return -1;
  int written = 0;
  for (size_t i = 0; i < result.failures.size(); ++i) {
    const CampaignFailure& failure = result.failures[i];
    if (failure.instance_text.empty()) continue;  // trace-level check
    const std::string stem =
        repro_dir + "/" + std::to_string(i) + "_" + Sanitize(failure.check);
    if (!WriteTextFile(stem + ".instance", failure.instance_text)) return -1;
    ++written;
    if (!failure.shrunk_instance_text.empty()) {
      if (!WriteTextFile(stem + ".min.instance",
                         failure.shrunk_instance_text)) {
        return -1;
      }
      ++written;
    }
  }
  return written;
}

}  // namespace

int main(int argc, char** argv) {
  bool campaign = false;
  CampaignConfig config;
  int64_t seed = static_cast<int64_t>(config.seed);
  bool maximal = false;
  bool expect_detect = false;
  std::string json_path;
  std::string repro_dir;

  geacc::FlagSet flags;
  flags.AddBool("campaign", &campaign,
                "run the differential campaign instead of a file audit");
  flags.AddInt("instances", &config.instances, "campaign instance count");
  flags.AddInt("seed", &seed, "campaign base seed");
  flags.AddInt("max_events", &config.max_events, "campaign family max |V|");
  flags.AddInt("max_users", &config.max_users, "campaign family max |U|");
  flags.AddDouble("conflict_density", &config.conflict_density,
                  "force every campaign instance to this conflict density "
                  "(< 0 = draw from the mixed family {0, 0.25, 0.5, 1})");
  flags.AddString("bound", &config.bound,
                  "exact-solver bound mode for the whole matrix: lemma6, "
                  "clique, or clique-lp");
  flags.AddInt("threads", &config.threads,
               "lane count for the serial-vs-threaded identity check");
  flags.AddInt("repair_period", &config.repair_period,
               "run the incremental-repair differential every k instances");
  flags.AddInt("wal_period", &config.wal_period,
               "run the WAL-recovery differential every k instances");
  flags.AddInt("paged_period", &config.paged_period,
               "run the paged-vs-in-memory greedy differential every k "
               "instances (0 = never)");
  flags.AddInt("shard_period", &config.shard_period,
               "run the sharded-vs-single-node differential (N = 2, 3 "
               "in-process shards) every k instances (0 = never)");
  flags.AddInt("slot_period", &config.slot_period,
               "run the slotted joint-solver differentials (slot-greedy "
               "audit, slot-exact vs exhaustive slottings) every k "
               "instances (0 = never)");
  flags.AddBool("shrink", &config.shrink,
                "delta-debug failing instances to minimal repros");
  flags.AddInt("shrink_calls", &config.shrink_options.max_predicate_calls,
               "predicate-call budget per shrink (0 = unlimited)");
  flags.AddInt("max_failures", &config.max_failures,
               "stop the campaign after this many failures");
  flags.AddString("scratch_dir", &config.scratch_dir,
                  "directory for WAL scratch files (default: system temp)");
  flags.AddString("inject", &config.inject,
                  "harness self-test fault: '' or 'extra-pair'");
  flags.AddBool("expect_detect", &expect_detect,
                "invert exit status: succeed iff failures were detected");
  flags.AddBool("maximal", &maximal,
                "file audit: also check greedy maximality");
  flags.AddString("json", &json_path, "write a JSON report to this path");
  flags.AddString("repro_dir", &repro_dir,
                  "campaign: write failing (and shrunken) instances here");
  flags.Parse(argc, argv);
  config.seed = static_cast<uint64_t>(seed);
  GEACC_CHECK(config.inject.empty() || config.inject == "extra-pair")
      << "unknown inject mode '" << config.inject << "'";

  if (!campaign) {
    if (flags.positional().size() != 2) {
      std::fprintf(stderr,
                   "usage: geacc_audit <instance> <arrangement> [--maximal]\n"
                   "       geacc_audit --campaign [flags]  (see --help)\n");
      return 2;
    }
    return RunFileAudit(flags.positional()[0], flags.positional()[1], maximal,
                        json_path);
  }

  const CampaignResult result = RunCampaign(config, &std::cerr);
  std::printf("campaign: %d instances, %lld checks, %zu failure(s)\n",
              result.instances, static_cast<long long>(result.checks),
              result.failures.size());

  if (!json_path.empty() &&
      !WriteTextFile(json_path, CampaignJson(config, result).Dump(2) + "\n")) {
    std::fprintf(stderr, "geacc_audit: cannot write %s\n", json_path.c_str());
    return 2;
  }
  if (!repro_dir.empty()) {
    const int written = WriteRepros(repro_dir, result);
    if (written < 0) {
      std::fprintf(stderr, "geacc_audit: cannot write repros to %s\n",
                   repro_dir.c_str());
      return 2;
    }
    if (written > 0) {
      std::printf("wrote %d repro artifact(s) to %s\n", written,
                  repro_dir.c_str());
    }
  }

  if (expect_detect) {
    if (result.ok()) {
      std::fprintf(stderr,
                   "geacc_audit: --expect_detect but the campaign found "
                   "nothing — the harness is not detecting faults\n");
      return 1;
    }
    if (config.shrink) {
      bool any_shrunk = false;
      for (const CampaignFailure& failure : result.failures) {
        if (!failure.shrunk_instance_text.empty()) any_shrunk = true;
      }
      if (!any_shrunk) {
        std::fprintf(stderr,
                     "geacc_audit: --expect_detect --shrink but no failure "
                     "was shrunk to a repro\n");
        return 1;
      }
    }
    std::printf("expect_detect: injected fault detected as expected\n");
    return 0;
  }
  return result.ok() ? 0 : 1;
}
