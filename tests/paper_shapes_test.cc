// Figure-shape regression tests: miniature versions of every evaluation
// claim in Section V, asserted qualitatively. These are the properties the
// full benches visualize; pinning them here means a refactor that silently
// flips a curve fails CI, not just the eyeball check.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "algo/solvers.h"
#include "gen/ebsn.h"
#include "gen/synthetic.h"

namespace geacc {
namespace {

// Reduced Table III defaults shared by the shape tests (kept small so the
// whole file runs in seconds; 3 repetitions to dampen seed noise).
SyntheticConfig Reduced(uint64_t seed) {
  SyntheticConfig config;
  config.num_events = 25;
  config.num_users = 250;
  config.seed = seed;
  return config;
}

double MeanMaxSum(const std::string& solver, const SyntheticConfig& base,
                  int reps = 3) {
  double total = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    SyntheticConfig config = base;
    config.seed = base.seed + rep * 7919;
    const Instance instance = GenerateSynthetic(config);
    total += CreateSolver(solver)->Solve(instance).arrangement.MaxSum(
        instance);
  }
  return total / reps;
}

// Fig. 3 cols 1-2: MaxSum grows with |V| and with |U|.
TEST(PaperShapes, MaxSumGrowsWithCardinality) {
  SyntheticConfig small = Reduced(1), large = Reduced(1);
  small.num_events = 10;
  large.num_events = 40;
  EXPECT_GT(MeanMaxSum("greedy", large), MeanMaxSum("greedy", small));

  SyntheticConfig few = Reduced(2), many = Reduced(2);
  few.num_users = 100;
  many.num_users = 400;
  EXPECT_GT(MeanMaxSum("greedy", many), MeanMaxSum("greedy", few));
}

// Fig. 3 col 3: MaxSum decreases as dimensionality grows (sparser space).
TEST(PaperShapes, MaxSumDecreasesWithDimensionality) {
  SyntheticConfig low = Reduced(3), high = Reduced(3);
  low.dim = 2;
  high.dim = 20;
  EXPECT_GT(MeanMaxSum("greedy", low), MeanMaxSum("greedy", high));
}

// Fig. 3 col 4: MaxSum decreases with conflict density; at ρ = 0
// MinCostFlow-GEACC is at least as good as Greedy (it is optimal there).
TEST(PaperShapes, ConflictDensityShapes) {
  SyntheticConfig none = Reduced(4), half = Reduced(4), all = Reduced(4);
  none.conflict_density = 0.0;
  half.conflict_density = 0.5;
  all.conflict_density = 1.0;
  const double g_none = MeanMaxSum("greedy", none);
  const double g_half = MeanMaxSum("greedy", half);
  const double g_all = MeanMaxSum("greedy", all);
  EXPECT_GE(g_none, g_half);
  EXPECT_GT(g_half, g_all);
  EXPECT_GE(MeanMaxSum("mincostflow", none) + 1e-9,
            MeanMaxSum("greedy", none));
}

// Fig. 3 rows 1 vs baselines: both informed algorithms beat both random
// baselines at defaults.
TEST(PaperShapes, InformedBeatsRandom) {
  const SyntheticConfig config = Reduced(5);
  const double greedy = MeanMaxSum("greedy", config);
  const double mcf = MeanMaxSum("mincostflow", config);
  const double rv = MeanMaxSum("random-v", config);
  const double ru = MeanMaxSum("random-u", config);
  EXPECT_GT(greedy, rv);
  EXPECT_GT(greedy, ru);
  EXPECT_GT(mcf, rv);
  EXPECT_GT(mcf, ru);
  // At the default ρ = 0.25, Greedy also beats MinCostFlow (the paper's
  // headline observation).
  EXPECT_GT(greedy, mcf);
}

// Fig. 4 col 1: MaxSum grows with event capacity.
TEST(PaperShapes, MaxSumGrowsWithEventCapacity) {
  SyntheticConfig tight = Reduced(6), loose = Reduced(6);
  tight.event_capacity = DistributionSpec::Uniform(1.0, 5.0);
  loose.event_capacity = DistributionSpec::Uniform(1.0, 50.0);
  EXPECT_GT(MeanMaxSum("greedy", loose), MeanMaxSum("greedy", tight));
}

// Fig. 4 col 2: MaxSum grows with user capacity.
TEST(PaperShapes, MaxSumGrowsWithUserCapacity) {
  SyntheticConfig tight = Reduced(7), loose = Reduced(7);
  tight.user_capacity = DistributionSpec::Uniform(1.0, 2.0);
  loose.user_capacity = DistributionSpec::Uniform(1.0, 8.0);
  EXPECT_GT(MeanMaxSum("greedy", loose), MeanMaxSum("greedy", tight));
}

// Fig. 4 col 3: Zipf/Normal generation preserves the solver ordering.
TEST(PaperShapes, DistributionVariantsPreserveOrdering) {
  SyntheticConfig config = Reduced(8);
  config.WithZipfAttributes(1.3);
  config.WithNormalCapacities();
  const double greedy = MeanMaxSum("greedy", config);
  const double mcf = MeanMaxSum("mincostflow", config);
  const double rv = MeanMaxSum("random-v", config);
  EXPECT_GT(greedy, rv);
  EXPECT_GT(mcf, rv);
}

// Fig. 4 col 4: the EBSN (real-data substitute) shows the same patterns.
TEST(PaperShapes, EbsnMatchesSyntheticPatterns) {
  EbsnConfig config = EbsnCityPreset("auckland");
  config.seed = 9;
  double greedy = 0.0, mcf = 0.0, random_v = 0.0;
  for (const double density : {0.25, 0.75}) {
    config.conflict_density = density;
    const Instance instance = GenerateEbsn(config);
    const double g = CreateSolver("greedy")->Solve(instance)
                         .arrangement.MaxSum(instance);
    const double m = CreateSolver("mincostflow")->Solve(instance)
                         .arrangement.MaxSum(instance);
    const double r = CreateSolver("random-v")->Solve(instance)
                         .arrangement.MaxSum(instance);
    EXPECT_GT(g, r) << "density " << density;
    EXPECT_GT(m, r) << "density " << density;
    greedy += g;
    mcf += m;
    random_v += r;
  }
  EXPECT_GT(greedy, mcf);  // real-data headline, aggregated
}

// Fig. 5 a-b: Greedy's cost grows roughly linearly — 4x the users must
// not cost 16x the time (allow slack for noise).
TEST(PaperShapes, GreedyScalesSubquadratically) {
  SyntheticConfig small = Reduced(10), large = Reduced(10);
  small.num_users = 500;
  large.num_users = 2000;
  const Instance small_instance = GenerateSynthetic(small);
  const Instance large_instance = GenerateSynthetic(large);
  const auto solver = CreateSolver("greedy");
  // Warm up once to stabilize timing.
  solver->Solve(small_instance);
  const double t_small =
      solver->Solve(small_instance).stats.wall_seconds + 1e-4;
  const double t_large =
      solver->Solve(large_instance).stats.wall_seconds + 1e-4;
  EXPECT_LT(t_large / t_small, 12.0);  // 4x data, well under 16x time
}

// Fig. 5 c: approximations never exceed the optimum and Greedy stays
// close; at ρ = 0 MinCostFlow equals it.
TEST(PaperShapes, EffectivenessMiniature) {
  SyntheticConfig config;
  config.num_events = 4;
  config.num_users = 9;
  config.event_capacity = DistributionSpec::Uniform(1.0, 10.0);
  config.user_capacity = DistributionSpec::Uniform(1.0, 2.0);
  for (const double density : {0.0, 0.5}) {
    config.conflict_density = density;
    config.seed = 77;
    const Instance instance = GenerateSynthetic(config);
    const double opt = CreateSolver("prune")->Solve(instance)
                           .arrangement.MaxSum(instance);
    const double greedy = CreateSolver("greedy")->Solve(instance)
                              .arrangement.MaxSum(instance);
    const double mcf = CreateSolver("mincostflow")->Solve(instance)
                           .arrangement.MaxSum(instance);
    EXPECT_LE(greedy, opt + 1e-9);
    EXPECT_LE(mcf, opt + 1e-9);
    EXPECT_GT(greedy, 0.85 * opt) << "density " << density;
    if (density == 0.0) EXPECT_NEAR(mcf, opt, 1e-9);
  }
}

// Fig. 6: pruning cuts search nodes by a large factor and the mean prune
// depth sits well below the maximum depth |V|·|U|.
TEST(PaperShapes, PruningMiniature) {
  SyntheticConfig config;
  config.num_events = 4;
  config.num_users = 8;
  config.event_capacity = DistributionSpec::Uniform(1.0, 10.0);
  config.user_capacity = DistributionSpec::Uniform(1.0, 2.0);
  config.conflict_density = 0.25;
  config.seed = 11;
  const Instance instance = GenerateSynthetic(config);
  const auto pruned = CreateSolver("prune")->Solve(instance);
  const auto exhaustive = CreateSolver("exhaustive")->Solve(instance);
  EXPECT_LT(pruned.stats.search_invocations * 2,
            exhaustive.stats.search_invocations);
  EXPECT_LT(pruned.stats.complete_searches,
            exhaustive.stats.complete_searches);
  EXPECT_LT(pruned.stats.MeanPruneDepth(), 32.0);  // max depth = 4·8
  EXPECT_GT(pruned.stats.prune_events, 0);
  EXPECT_NEAR(pruned.arrangement.MaxSum(instance),
              exhaustive.arrangement.MaxSum(instance), 1e-9);
}

}  // namespace
}  // namespace geacc
