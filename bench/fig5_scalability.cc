// Fig. 5 a–b: scalability of Greedy-GEACC. |V| ∈ {100, 200, 500, 1000}
// as separate series, |U| swept up to 100K, max c_v = 200 (paper setting;
// other parameters Table III defaults).
//
// Expected shape (paper): time and memory grow near-linearly in the data
// size; Greedy handles |V| = 1000 × |U| = 100K comfortably.
//
// Default run uses |U| ∈ {10K, 50K, 100K} and |V| ∈ {100, 500, 1000};
// --paper enables the full grid (|U| ∈ {10K, 25K, 50K, 75K, 100K}).
//
// Beyond the paper, a final section sweeps SolverOptions::threads over a
// fixed instance for Greedy- and MinCostFlow-GEACC (x = intra-solver
// lanes): the MaxSum column demonstrates the thread-invariance contract,
// the time column the parallel speedup (≈ flat on single-core machines).

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "algo/solvers.h"
#include "bench/bench_common.h"
#include "gen/synthetic.h"
#include "util/string_util.h"
#include "util/table.h"

int main(int argc, char** argv) {
  geacc::bench::CommonFlags common;
  geacc::FlagSet flags;
  common.Register(flags);
  flags.Parse(argc, argv);
  geacc::bench::ReportContext report("fig5_scalability", flags, common);

  const std::vector<int> event_counts =
      common.paper ? std::vector<int>{100, 200, 500, 1000}
                   : std::vector<int>{100, 500, 1000};
  const std::vector<int> user_counts =
      common.paper ? std::vector<int>{10'000, 25'000, 50'000, 75'000, 100'000}
                   : std::vector<int>{10'000, 50'000, 100'000};

  for (const int num_events : event_counts) {
    geacc::SweepConfig config;
    config.title =
        geacc::StrFormat("Fig 5 a-b: Greedy scalability, |V| = %d",
                         num_events);
    config.solvers = common.SolverList({"greedy"});
    config.repetitions = common.reps;
    config.threads = common.threads;
    config.audit = common.selfcheck;
    common.ApplySolverOptions(&config.solver_options);
    config.seed = static_cast<uint64_t>(common.seed);

    std::vector<geacc::SweepPoint> points;
    for (const int num_users : user_counts) {
      points.push_back(
          {std::to_string(num_users), [num_events, num_users](uint64_t seed) {
             geacc::SyntheticConfig synth;
             synth.num_events = num_events;
             synth.num_users = num_users;
             synth.event_capacity =
                 geacc::DistributionSpec::Uniform(1.0, 200.0);
             synth.seed = seed;
             return geacc::GenerateSynthetic(synth);
           }});
    }

    const geacc::SweepResult result = geacc::RunSweep(config, points);
    geacc::bench::EmitSweep(config, result, "|U|", common.csv);
    report.AddSweep(config, result);
  }

  // ---- Threads axis: intra-solver lanes on a fixed instance. ----
  {
    // Sized so MinCostFlow (the slow lane) finishes in ~a second per
    // thread count; the section demonstrates invariance, not scale.
    geacc::SyntheticConfig synth;
    synth.num_events = common.paper ? 200 : 100;
    synth.num_users = common.paper ? 10'000 : 2'000;
    synth.event_capacity =
        geacc::DistributionSpec::Uniform(1.0, common.paper ? 200.0 : 20.0);
    synth.seed = static_cast<uint64_t>(common.seed);
    const geacc::Instance instance = geacc::GenerateSynthetic(synth);

    const std::vector<std::string> solver_names =
        common.SolverList({"greedy", "mincostflow"});
    geacc::Table time_table(
        "Fig 5 (extra): wall time (s) vs solver threads");
    geacc::Table sum_table(
        "Fig 5 (extra): MaxSum vs solver threads (must be constant)");
    std::vector<std::string> header = {"threads"};
    for (const std::string& name : solver_names) header.push_back(name);
    time_table.SetHeader(header);
    sum_table.SetHeader(header);

    for (const int threads : {1, 2, 4}) {
      std::vector<std::string> time_row = {std::to_string(threads)};
      std::vector<std::string> sum_row = {std::to_string(threads)};
      for (const std::string& name : solver_names) {
        geacc::SolverOptions options;
        options.threads = threads;
        const auto solver = geacc::CreateSolver(name, options);
        double wall = 0.0, cpu = 0.0, max_sum = 0.0;
        std::map<std::string, int64_t> counters;
        for (int rep = 0; rep < common.reps; ++rep) {
          const geacc::RunRecord record =
              geacc::RunSolver(*solver, instance);
          wall += record.seconds;
          cpu += record.cpu_seconds;
          max_sum += record.max_sum;
          for (const auto& [counter, value] : record.counters) {
            counters[counter] += value;
          }
        }
        const double n = common.reps;
        time_row.push_back(geacc::StrFormat("%.4f", wall / n));
        sum_row.push_back(geacc::StrFormat("%.3f", max_sum / n));

        geacc::obs::BenchPoint point;
        point.label = geacc::StrFormat("threads=%d", threads);
        point.solver = name;
        point.wall_seconds = wall / n;
        point.cpu_seconds = cpu / n;
        point.max_sum = max_sum / n;
        for (const auto& [counter, total] : counters) {
          point.counters[counter] = total / common.reps;
        }
        report.AddPoint(std::move(point));
      }
      time_table.AddRow(time_row);
      sum_table.AddRow(sum_row);
    }
    time_table.Print(std::cout);
    sum_table.Print(std::cout);
    if (common.csv) {
      time_table.WriteCsv(std::cout);
      sum_table.WriteCsv(std::cout);
    }
  }
  report.Write();
  return 0;
}
