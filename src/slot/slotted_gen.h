// Seeded slotted-instance generator (gen/ extension for src/slot/).
//
// Layers slot structure over the synthetic generator: the base instance
// comes from gen/synthetic (with an empty conflict graph — conflicts are
// derived from slottings), the slot grid from gen/schedule's
// RandomSchedule (random windows + venues on a shared horizon), allowed
// slots from per-(event, slot) coin flips with one always-forced slot,
// and per-user availability as a sampled count of available slots
// (uniform or zipf — zipf skews toward users free in only a slot or two)
// followed by a uniform choice of which distinct slots those are.
//
// Determinism: everything is a function of `seed` (util/rng.h), so
// campaign failures replay bit-for-bit from (config, seed).

#ifndef GEACC_SLOT_SLOTTED_GEN_H_
#define GEACC_SLOT_SLOTTED_GEN_H_

#include <cstdint>
#include <string>

#include "gen/distributions.h"
#include "slot/slotted.h"

namespace geacc {
namespace slot {

struct SlottedGenConfig {
  // Base instance shape (see gen/synthetic.h for field semantics).
  int num_events = 20;
  int num_users = 100;
  int dim = 4;
  double max_attribute = 100.0;
  DistributionSpec event_capacity = DistributionSpec::Uniform(1.0, 5.0);
  DistributionSpec user_capacity = DistributionSpec::Uniform(1.0, 3.0);
  std::string similarity = "euclidean";

  // Slot grid: `num_slots` random windows over [0, horizon_hours] with
  // durations in [min, max] and venues in a city_km square;
  // travel_speed_kmph feeds the WindowsConflict travel rule (≤ 0 =
  // overlap only).
  int num_slots = 6;
  double horizon_hours = 12.0;
  double min_duration_hours = 1.0;
  double max_duration_hours = 3.0;
  double city_km = 30.0;
  double travel_speed_kmph = 30.0;

  // Each event allows one uniformly chosen slot plus every other slot
  // independently with this probability.
  double allow_probability = 0.5;

  // Draw of each user's count of available slots, clamped to [1,
  // num_slots]; which slots are available is then uniform without
  // replacement. Uniform(1, S) and Zipf(skew, S) are the campaign's two
  // regimes.
  DistributionSpec availability_count = DistributionSpec::Uniform(1.0, 6.0);

  uint64_t seed = 42;
};

SlottedInstance GenerateSlotted(const SlottedGenConfig& config);

}  // namespace slot
}  // namespace geacc

#endif  // GEACC_SLOT_SLOTTED_GEN_H_
