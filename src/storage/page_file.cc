#include "storage/page_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <cstring>
#include <vector>

#include "obs/stats.h"
#include "util/check.h"
#include "util/string_util.h"

namespace geacc::storage {
namespace {

// On-disk superblock record, written at the head of its page-sized slot.
struct Superblock {
  uint32_t magic = kSuperblockMagic;
  uint32_t version = kPageFileVersion;
  uint32_t page_size = 0;
  uint32_t data_pages = 0;
  uint64_t generation = 0;
  uint64_t state_bytes = 0;
  uint64_t state_checksum = 0;
  int64_t applied_seq = 0;
  uint64_t user[6] = {0, 0, 0, 0, 0, 0};
  uint64_t checksum = 0;  // FNV-1a over the preceding fields
};
static_assert(sizeof(Superblock) <= kMinPageSize,
              "superblock must fit the smallest page");

uint64_t SuperblockChecksum(const Superblock& sb) {
  return Fnv1a64(&sb, offsetof(Superblock, checksum));
}

bool FullRead(int fd, void* buffer, size_t count, uint64_t offset) {
  auto* p = static_cast<char*>(buffer);
  while (count > 0) {
    const ssize_t n = ::pread(fd, p, count, static_cast<off_t>(offset));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;  // EOF (truncated file) or IO error
    }
    p += n;
    offset += static_cast<uint64_t>(n);
    count -= static_cast<size_t>(n);
  }
  return true;
}

bool FullWrite(int fd, const void* buffer, size_t count, uint64_t offset) {
  const auto* p = static_cast<const char*>(buffer);
  while (count > 0) {
    const ssize_t n = ::pwrite(fd, p, count, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    offset += static_cast<uint64_t>(n);
    count -= static_cast<size_t>(n);
  }
  return true;
}

void SetError(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

}  // namespace

PageFile::PageFile(std::string path, int fd, uint32_t page_size)
    : path_(std::move(path)), fd_(fd), page_size_(page_size) {}

PageFile::~PageFile() {
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<PageFile> PageFile::Create(const std::string& path,
                                           uint32_t page_size,
                                           std::string* error) {
  if (page_size < kMinPageSize || (page_size & (page_size - 1)) != 0) {
    SetError(error, StrFormat("page size %u is not a power of two >= %u",
                              page_size, kMinPageSize));
    return nullptr;
  }
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    SetError(error, StrFormat("cannot create '%s': %s", path.c_str(),
                              std::strerror(errno)));
    return nullptr;
  }
  auto file = std::unique_ptr<PageFile>(new PageFile(path, fd, page_size));
  // Commit() bumps to generation 1 in slot (1 & 1) = slot 1; slot 0 stays
  // zeroed until generation 2 — Open() treats it as invalid, which is
  // exactly right for a file with one committed generation.
  if (!file->Commit(Meta{}, error)) return nullptr;
  return file;
}

std::unique_ptr<PageFile> PageFile::Open(const std::string& path,
                                         std::string* error) {
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    SetError(error, StrFormat("cannot open '%s': %s", path.c_str(),
                              std::strerror(errno)));
    return nullptr;
  }
  // Slot A always starts at offset 0; slot B at page_size, which we only
  // learn from a valid slot A — or by probing: a valid slot records its
  // own page_size, so read slot A first, then use whichever page_size a
  // valid candidate declares to locate slot B.
  Superblock best;
  bool have_best = false;
  Superblock slot_a;
  const bool a_ok =
      FullRead(fd, &slot_a, sizeof(slot_a), 0) &&
      slot_a.magic == kSuperblockMagic && slot_a.version == kPageFileVersion &&
      slot_a.page_size >= kMinPageSize &&
      SuperblockChecksum(slot_a) == slot_a.checksum;
  if (a_ok) {
    best = slot_a;
    have_best = true;
  }
  // Without a valid slot A the only way to find slot B is to try the
  // default and the common page sizes; in practice slot A going bad while
  // slot B survives means a torn generation-2k write, and both slots were
  // written with the same page_size since Create().
  std::vector<uint32_t> candidate_sizes;
  if (a_ok) {
    candidate_sizes.push_back(slot_a.page_size);
  } else {
    for (uint32_t size = kMinPageSize; size <= (1u << 20); size <<= 1) {
      candidate_sizes.push_back(size);
    }
  }
  for (const uint32_t size : candidate_sizes) {
    Superblock slot_b;
    if (!FullRead(fd, &slot_b, sizeof(slot_b), size)) continue;
    if (slot_b.magic != kSuperblockMagic ||
        slot_b.version != kPageFileVersion || slot_b.page_size != size ||
        SuperblockChecksum(slot_b) != slot_b.checksum) {
      continue;
    }
    if (!have_best || slot_b.generation > best.generation) {
      best = slot_b;
      have_best = true;
    }
    break;
  }
  if (!have_best) {
    ::close(fd);
    SetError(error, StrFormat("'%s': no valid superblock", path.c_str()));
    return nullptr;
  }
  auto file =
      std::unique_ptr<PageFile>(new PageFile(path, fd, best.page_size));
  file->generation_ = best.generation;
  file->allocated_pages_ = best.data_pages;
  file->meta_.data_pages = best.data_pages;
  file->meta_.state_bytes = best.state_bytes;
  file->meta_.state_checksum = best.state_checksum;
  file->meta_.applied_seq = best.applied_seq;
  for (int i = 0; i < 6; ++i) file->meta_.user[i] = best.user[i];
  return file;
}

bool PageFile::WritePage(PageId id, uint16_t type, const void* payload,
                         uint32_t payload_bytes, std::string* error) {
  GEACC_CHECK(id < allocated_pages_)
      << "write to unallocated page " << id << " of " << allocated_pages_;
  GEACC_CHECK(payload_bytes <= payload_capacity())
      << "payload " << payload_bytes << " exceeds capacity "
      << payload_capacity();
  std::vector<unsigned char> buffer(page_size_, 0);
  auto* header = reinterpret_cast<PageHeader*>(buffer.data());
  header->magic = kPageMagic;
  header->page_id = id;
  header->type = type;
  header->flags = 0;
  header->payload_bytes = payload_bytes;
  header->reserved = 0;
  header->checksum = PageChecksum(id, type, payload, payload_bytes);
  std::memcpy(buffer.data() + sizeof(PageHeader), payload, payload_bytes);
  if (!FullWrite(fd_, buffer.data(), buffer.size(), PageOffset(id))) {
    SetError(error, StrFormat("'%s': write of page %u failed: %s",
                              path_.c_str(), id, std::strerror(errno)));
    return false;
  }
  GEACC_STATS_ADD("storage.file.pages_written", 1);
  return true;
}

bool PageFile::ReadPage(PageId id, void* payload, uint16_t* type,
                        uint32_t* payload_bytes, std::string* error) {
  std::vector<unsigned char> buffer(page_size_);
  if (!FullRead(fd_, buffer.data(), buffer.size(), PageOffset(id))) {
    SetError(error, StrFormat("'%s': read of page %u failed (truncated?)",
                              path_.c_str(), id));
    return false;
  }
  PageHeader header;
  std::memcpy(&header, buffer.data(), sizeof(header));
  if (header.magic != kPageMagic || header.page_id != id ||
      header.payload_bytes > payload_capacity()) {
    SetError(error, StrFormat("'%s': page %u has a malformed header",
                              path_.c_str(), id));
    return false;
  }
  const unsigned char* stored = buffer.data() + sizeof(PageHeader);
  if (PageChecksum(id, header.type, stored, header.payload_bytes) !=
      header.checksum) {
    SetError(error, StrFormat("'%s': page %u checksum mismatch (torn write?)",
                              path_.c_str(), id));
    return false;
  }
  std::memcpy(payload, stored, header.payload_bytes);
  if (type != nullptr) *type = header.type;
  if (payload_bytes != nullptr) *payload_bytes = header.payload_bytes;
  GEACC_STATS_ADD("storage.file.pages_read", 1);
  return true;
}

bool PageFile::ReadPageChecksum(PageId id, uint64_t* checksum,
                                std::string* error) {
  PageHeader header;
  if (!FullRead(fd_, &header, sizeof(header), PageOffset(id))) {
    SetError(error, StrFormat("'%s': header read of page %u failed",
                              path_.c_str(), id));
    return false;
  }
  *checksum = header.checksum;
  return true;
}

bool PageFile::SyncFd(std::string* error) {
  if (::fsync(fd_) != 0) {
    SetError(error, StrFormat("'%s': fsync failed: %s", path_.c_str(),
                              std::strerror(errno)));
    return false;
  }
  return true;
}

bool PageFile::Commit(const Meta& meta, std::string* error) {
  GEACC_CHECK(meta.data_pages <= allocated_pages_)
      << "commit of " << meta.data_pages << " pages, only "
      << allocated_pages_ << " allocated";
  if (!SyncFd(error)) return false;  // data pages reach disk first

  Superblock sb;
  sb.page_size = page_size_;
  sb.data_pages = meta.data_pages;
  sb.generation = generation_ + 1;
  sb.state_bytes = meta.state_bytes;
  sb.state_checksum = meta.state_checksum;
  sb.applied_seq = meta.applied_seq;
  for (int i = 0; i < 6; ++i) sb.user[i] = meta.user[i];
  sb.checksum = SuperblockChecksum(sb);

  const uint64_t slot_offset = (sb.generation & 1) ? page_size_ : 0;
  if (!FullWrite(fd_, &sb, sizeof(sb), slot_offset)) {
    SetError(error, StrFormat("'%s': superblock write failed: %s",
                              path_.c_str(), std::strerror(errno)));
    return false;
  }
  if (!SyncFd(error)) return false;
  generation_ = sb.generation;
  meta_ = meta;
  GEACC_STATS_ADD("storage.file.commits", 1);
  return true;
}

}  // namespace geacc::storage
