#include "util/table.h"

#include <algorithm>

#include "util/string_util.h"

namespace geacc {

void Table::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void Table::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void Table::AddRow(const std::string& label, const std::vector<double>& values,
                   int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (const double value : values) {
    row.push_back(StrFormat("%.*f", precision, value));
  }
  AddRow(std::move(row));
}

void Table::Print(std::ostream& os) const {
  // Column widths over header + all rows.
  std::vector<size_t> widths;
  auto widen = [&widths](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  os << "== " << title_ << " ==\n";
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      os << row[i];
      if (i + 1 < row.size()) {
        os << std::string(widths[i] - row[i].size() + 2, ' ');
      }
    }
    os << "\n";
  };
  if (!header_.empty()) print_row(header_);
  for (const auto& row : rows_) print_row(row);
  os << "\n";
}

void Table::WriteCsv(std::ostream& os) const {
  auto write_row = [&os](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) os << ",";
      os << CsvEscape(row[i]);
    }
    os << "\n";
  };
  if (!header_.empty()) write_row(header_);
  for (const auto& row : rows_) write_row(row);
}

std::string CsvEscape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

}  // namespace geacc
