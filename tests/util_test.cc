// Unit tests for src/util/: RNG, strings, flags, tables, memory, checks.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "util/check.h"
#include "util/flags.h"
#include "util/memory.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/table.h"
#include "util/timer.h"

namespace geacc {
namespace {

// ---------------------------------------------------------------- Rng ----

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.NextUint64() == b.NextUint64();
  EXPECT_LT(same, 3);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeWithoutBias) {
  Rng rng(9);
  int counts[6] = {0};
  for (int i = 0; i < 60000; ++i) {
    const int64_t v = rng.UniformInt(2, 7);
    ASSERT_GE(v, 2);
    ASSERT_LE(v, 7);
    ++counts[v - 2];
  }
  for (const int count : counts) {
    EXPECT_NEAR(count, 10000, 500);  // ±5σ-ish
  }
}

TEST(Rng, UniformIntSingleValue) {
  Rng rng(11);
  EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(Rng, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.03);
}

TEST(Rng, NormalScalesMeanAndStddev) {
  Rng rng(17);
  double sum = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) sum += rng.Normal(10.0, 2.0);
  EXPECT_NEAR(sum / kN, 10.0, 0.1);
}

TEST(Rng, BernoulliEdgesAndRate) {
  Rng rng(19);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits, 3000, 250);
}

TEST(Rng, ForkIsIndependentAndDeterministic) {
  Rng parent(21);
  Rng f1 = parent.Fork(0);
  Rng f2 = parent.Fork(1);
  EXPECT_NE(f1.NextUint64(), f2.NextUint64());
  Rng parent2(21);
  Rng f1_again = parent2.Fork(0);
  Rng f1_ref = Rng(21).Fork(0);
  EXPECT_EQ(f1_again.NextUint64(), f1_ref.NextUint64());
}

// --------------------------------------------------------------- string ---

TEST(StringUtil, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("x"), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("\t a b \n"), "a b");
}

TEST(StringUtil, ParseInt) {
  EXPECT_EQ(ParseInt("42"), 42);
  EXPECT_EQ(ParseInt(" -7 "), -7);
  EXPECT_FALSE(ParseInt("4x").has_value());
  EXPECT_FALSE(ParseInt("").has_value());
  EXPECT_FALSE(ParseInt("3.5").has_value());
}

TEST(StringUtil, ParseDouble) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1e3"), -1000.0);
  EXPECT_FALSE(ParseDouble("abc").has_value());
}

TEST(StringUtil, ParseBool) {
  EXPECT_EQ(ParseBool("true"), true);
  EXPECT_EQ(ParseBool("0"), false);
  EXPECT_EQ(ParseBool("yes"), true);
  EXPECT_FALSE(ParseBool("maybe").has_value());
}

TEST(StringUtil, StrFormatAndHumanBytes) {
  EXPECT_EQ(StrFormat("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(1536), "1.5 KiB");
  EXPECT_EQ(HumanBytes(3 * 1024ull * 1024), "3.0 MiB");
}

TEST(StringUtil, StartsWith) {
  EXPECT_TRUE(StartsWith("--flag", "--"));
  EXPECT_FALSE(StartsWith("-", "--"));
}

// ---------------------------------------------------------------- flags ---

TEST(Flags, ParsesAllTypesBothSyntaxes) {
  int reps = 1;
  double rho = 0.25;
  bool fast = false;
  std::string name = "greedy";
  int64_t big = 0;
  FlagSet flags;
  flags.AddInt("reps", &reps, "");
  flags.AddDouble("rho", &rho, "");
  flags.AddBool("fast", &fast, "");
  flags.AddString("name", &name, "");
  flags.AddInt("big", &big, "");
  const char* argv[] = {"prog",  "--reps=5",  "--rho", "0.75", "--fast",
                        "--name", "prune", "--big=123456789012", "pos"};
  flags.Parse(9, const_cast<char**>(argv));
  EXPECT_EQ(reps, 5);
  EXPECT_DOUBLE_EQ(rho, 0.75);
  EXPECT_TRUE(fast);
  EXPECT_EQ(name, "prune");
  EXPECT_EQ(big, 123456789012LL);
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "pos");
}

TEST(Flags, UsageListsDefaults) {
  int reps = 3;
  FlagSet flags;
  flags.AddInt("reps", &reps, "repetitions");
  const std::string usage = flags.Usage("prog");
  EXPECT_NE(usage.find("--reps"), std::string::npos);
  EXPECT_NE(usage.find("default: 3"), std::string::npos);
}

// ---------------------------------------------------------------- table ---

TEST(Table, AlignedPrint) {
  Table table("demo");
  table.SetHeader({"x", "greedy"});
  table.AddRow({"100", "1.5"});
  table.AddRow("200", {2.25}, 2);
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("greedy"), std::string::npos);
  EXPECT_NE(out.find("2.25"), std::string::npos);
}

TEST(Table, CsvEscaping) {
  EXPECT_EQ(CsvEscape("plain"), "plain");
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
  Table table("t");
  table.SetHeader({"a", "b"});
  table.AddRow({"1,5", "x"});
  std::ostringstream os;
  table.WriteCsv(os);
  EXPECT_EQ(os.str(), "a,b\n\"1,5\",x\n");
}

// --------------------------------------------------------------- memory ---

TEST(Memory, RssProbesReturnPlausibleValues) {
  const uint64_t peak = PeakRssBytes();
  const uint64_t current = CurrentRssBytes();
  EXPECT_GT(peak, 1024u * 1024);  // at least a MiB for a running test
  EXPECT_GT(current, 0u);
  EXPECT_GE(peak, current / 2);  // HWM can't be wildly below current
}

TEST(Memory, ByteCounterTracksPeak) {
  ByteCounter counter;
  counter.Add(100);
  counter.Add(200);
  counter.Remove(250);
  counter.Add(10);
  EXPECT_EQ(counter.current(), 60u);
  EXPECT_EQ(counter.peak(), 300u);
}

TEST(Memory, VectorBytesUsesCapacity) {
  std::vector<int> v;
  v.reserve(100);
  EXPECT_EQ(VectorBytes(v), 100 * sizeof(int));
}

// ---------------------------------------------------------------- timer ---

TEST(Timer, MeasuresElapsedTime) {
  WallTimer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(i);
  EXPECT_GE(timer.Seconds(), 0.0);
  timer.Restart();
  EXPECT_LT(timer.Seconds(), 1.0);
}

// ---------------------------------------------------------------- check ---

TEST(CheckDeathTest, AbortsWithMessage) {
  EXPECT_DEATH(GEACC_CHECK(1 == 2) << "custom detail", "custom detail");
  EXPECT_DEATH(GEACC_CHECK_EQ(3, 4), "GEACC_CHECK failed");
}

TEST(Check, PassingCheckHasNoEffect) {
  GEACC_CHECK(true) << "never evaluated";
  GEACC_CHECK_LE(1, 2);
  SUCCEED();
}

}  // namespace
}  // namespace geacc
