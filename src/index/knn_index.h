// Nearest-neighbor index abstraction (the paper's σ(S) oracle).
//
// Greedy-GEACC repeatedly asks each node for its *next* most similar
// counterpart ("next feasible unvisited NN", Algorithm 2). That access
// pattern is an incremental NN enumeration, which NnCursor models: Next()
// yields points in non-increasing similarity order, each point exactly
// once. Two backends are provided:
//
//  * LinearScanIndex — batched incremental scan; works with any
//    similarity function.
//  * KdTreeIndex — best-first tree search; requires a similarity that
//    decreases with Euclidean distance (paper Eq. (1) qualifies).
//  * VaFileIndex — the paper's citation [8]: quantized signatures with
//    lazy exact refinement.
//  * IDistanceIndex — the paper's citation [7]: pivot-keyed partitions
//    with an expanding search radius.
//
// All four produce the identical enumeration (similarity desc, id asc);
// they differ only in cost profile.

#ifndef GEACC_INDEX_KNN_INDEX_H_
#define GEACC_INDEX_KNN_INDEX_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/attributes.h"
#include "core/similarity.h"

namespace geacc {

struct Neighbor {
  int id = -1;
  double similarity = 0.0;
};

// Enumerates the indexed points in non-increasing similarity to a fixed
// query, ties broken by ascending id. Exhausted cursors return nullopt.
class NnCursor {
 public:
  virtual ~NnCursor() = default;
  virtual std::optional<Neighbor> Next() = 0;
};

class KnnIndex {
 public:
  virtual ~KnnIndex() = default;

  virtual std::string Name() const = 0;

  int num_points() const { return num_points_; }

  // The k most similar points to `query` (fewer if the index is smaller),
  // in non-increasing similarity order, ties by ascending id.
  virtual std::vector<Neighbor> Query(const double* query, int k) const = 0;

  // Incremental enumeration. Both `query` and the index itself must
  // outlive the cursor (cursors hold references into the index).
  virtual std::unique_ptr<NnCursor> CreateCursor(
      const double* query) const = 0;

  virtual uint64_t ByteEstimate() const = 0;

 protected:
  explicit KnnIndex(int num_points) : num_points_(num_points) {}

 private:
  int num_points_;
};

// Builds an index over the rows of `points`. `name` ∈ {"linear",
// "kdtree", "vafile", "idistance", "idistance-paged"} — the paged variant
// takes default StorageOptions here; use the 4-arg overload in
// index/idistance_paged.h to set the budget. Distance-ordered indexes requested
// with a non-Euclidean-monotone similarity fall back to linear scan
// (their distance ordering would be meaningless). `points` and
// `similarity` must outlive the index.
std::unique_ptr<KnnIndex> MakeIndex(const std::string& name,
                                    const AttributeMatrix& points,
                                    const SimilarityFunction& similarity);

}  // namespace geacc

#endif  // GEACC_INDEX_KNN_INDEX_H_
