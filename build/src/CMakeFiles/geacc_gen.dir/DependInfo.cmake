
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/distributions.cc" "src/CMakeFiles/geacc_gen.dir/gen/distributions.cc.o" "gcc" "src/CMakeFiles/geacc_gen.dir/gen/distributions.cc.o.d"
  "/root/repo/src/gen/ebsn.cc" "src/CMakeFiles/geacc_gen.dir/gen/ebsn.cc.o" "gcc" "src/CMakeFiles/geacc_gen.dir/gen/ebsn.cc.o.d"
  "/root/repo/src/gen/instance_stats.cc" "src/CMakeFiles/geacc_gen.dir/gen/instance_stats.cc.o" "gcc" "src/CMakeFiles/geacc_gen.dir/gen/instance_stats.cc.o.d"
  "/root/repo/src/gen/schedule.cc" "src/CMakeFiles/geacc_gen.dir/gen/schedule.cc.o" "gcc" "src/CMakeFiles/geacc_gen.dir/gen/schedule.cc.o.d"
  "/root/repo/src/gen/synthetic.cc" "src/CMakeFiles/geacc_gen.dir/gen/synthetic.cc.o" "gcc" "src/CMakeFiles/geacc_gen.dir/gen/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/geacc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geacc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
