// Plain-text serialization of instances and arrangements.
//
// The format is line-oriented, diff-friendly, and versioned:
//
//   geacc-instance v1
//   similarity euclidean 10000
//   dim 20
//   events 3
//   event <capacity> <attr_0> ... <attr_{d-1}>     (×|V|)
//   users 5
//   user <capacity> <attr_0> ... <attr_{d-1}>      (×|U|)
//   conflicts 1
//   conflict <event_a> <event_b>                   (×|CF|)
//
//   geacc-arrangement v1
//   pairs 7
//   pair <event> <user>                            (×|M|)
//
// Writers emit attributes with %.17g so a save/load round trip is
// bit-exact. Readers return std::nullopt with a diagnostic on malformed
// input instead of aborting — files cross trust boundaries, unlike
// in-process invariants.

#ifndef GEACC_IO_INSTANCE_IO_H_
#define GEACC_IO_INSTANCE_IO_H_

#include <iosfwd>
#include <optional>
#include <string>

#include "core/arrangement.h"
#include "core/instance.h"

namespace geacc {

// ----- instances -----

void WriteInstance(const Instance& instance, std::ostream& os);
bool WriteInstanceToFile(const Instance& instance, const std::string& path);

// On failure returns nullopt and, if `error` is non-null, stores a
// human-readable reason including the offending line number.
std::optional<Instance> ReadInstance(std::istream& is,
                                     std::string* error = nullptr);
std::optional<Instance> ReadInstanceFromFile(const std::string& path,
                                             std::string* error = nullptr);

// ----- arrangements -----

void WriteArrangement(const Arrangement& arrangement, std::ostream& os);
bool WriteArrangementToFile(const Arrangement& arrangement,
                            const std::string& path);

// `instance` provides the dimensions; pair ids are validated against it.
std::optional<Arrangement> ReadArrangement(std::istream& is,
                                           const Instance& instance,
                                           std::string* error = nullptr);
std::optional<Arrangement> ReadArrangementFromFile(
    const std::string& path, const Instance& instance,
    std::string* error = nullptr);

}  // namespace geacc

#endif  // GEACC_IO_INSTANCE_IO_H_
