#include "svc/wire.h"

#include <cstring>

#include "util/check.h"
#include "util/string_util.h"

namespace geacc::svc {
namespace {

void PutU8(std::string* buffer, uint8_t value) {
  buffer->push_back(static_cast<char>(value));
}

void PutU32(std::string* buffer, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    buffer->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

void PutI32(std::string* buffer, int32_t value) {
  PutU32(buffer, static_cast<uint32_t>(value));
}

void PutU64(std::string* buffer, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    buffer->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

void PutI64(std::string* buffer, int64_t value) {
  PutU64(buffer, static_cast<uint64_t>(value));
}

void PutF64(std::string* buffer, double value) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  PutU64(buffer, bits);
}

void PutBytes(std::string* buffer, const std::string& bytes) {
  PutU32(buffer, static_cast<uint32_t>(bytes.size()));
  buffer->append(bytes);
}

// Bounds-checked cursor over a received body. Every Read* fails (and
// latches) instead of walking past `size`.
class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool ReadU8(uint8_t* value) {
    if (!Require(1)) return false;
    *value = data_[pos_++];
    return true;
  }

  bool ReadU32(uint32_t* value) {
    if (!Require(4)) return false;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    *value = v;
    return true;
  }

  bool ReadI32(int32_t* value) {
    uint32_t v;
    if (!ReadU32(&v)) return false;
    *value = static_cast<int32_t>(v);
    return true;
  }

  bool ReadU64(uint64_t* value) {
    if (!Require(8)) return false;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    *value = v;
    return true;
  }

  bool ReadI64(int64_t* value) {
    uint64_t v;
    if (!ReadU64(&v)) return false;
    *value = static_cast<int64_t>(v);
    return true;
  }

  bool ReadF64(double* value) {
    uint64_t bits;
    if (!ReadU64(&bits)) return false;
    std::memcpy(value, &bits, sizeof(bits));
    return true;
  }

  bool ReadBytes(std::string* value) {
    uint32_t length;
    if (!ReadU32(&length)) return false;
    if (!Require(length)) return false;
    value->assign(reinterpret_cast<const char*>(data_ + pos_), length);
    pos_ += length;
    return true;
  }

  bool AtEnd() const { return ok_ && pos_ == size_; }
  bool ok() const { return ok_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  bool Require(size_t bytes) {
    if (!ok_ || size_ - pos_ < bytes) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

std::string SealFrame(std::string body) {
  std::string frame;
  frame.reserve(body.size() + 4);
  PutU32(&frame, static_cast<uint32_t>(body.size()));
  frame.append(body);
  return frame;
}

}  // namespace

const char* MsgTypeName(MsgType type) {
  switch (type) {
    case MsgType::kPing:
      return "ping";
    case MsgType::kGetAssignments:
      return "get_assignments";
    case MsgType::kGetAttendees:
      return "get_attendees";
    case MsgType::kTopK:
      return "top_k";
    case MsgType::kStats:
      return "stats";
    case MsgType::kMutate:
      return "mutate";
    case MsgType::kCandidates:
      return "candidates";
    case MsgType::kInstallArrangement:
      return "install_arrangement";
    case MsgType::kShardStats:
      return "shard_stats";
    case MsgType::kPong:
      return "pong";
    case MsgType::kIdList:
      return "id_list";
    case MsgType::kScoredList:
      return "scored_list";
    case MsgType::kStatsReply:
      return "stats_reply";
    case MsgType::kMutateAck:
      return "mutate_ack";
    case MsgType::kOverloaded:
      return "overloaded";
    case MsgType::kError:
      return "error";
    case MsgType::kCandidateList:
      return "candidate_list";
    case MsgType::kShardStatsReply:
      return "shard_stats_reply";
  }
  return "unknown";
}

std::string EncodeRequestFrame(const WireRequest& request) {
  std::string body;
  PutU8(&body, kWireVersion);
  PutU8(&body, static_cast<uint8_t>(request.type));
  switch (request.type) {
    case MsgType::kPing:
    case MsgType::kStats:
      break;
    case MsgType::kGetAssignments:
    case MsgType::kGetAttendees:
      PutI32(&body, request.id);
      break;
    case MsgType::kTopK:
      PutI32(&body, request.id);
      PutI32(&body, request.k);
      break;
    case MsgType::kMutate:
      PutBytes(&body, request.payload);
      break;
    case MsgType::kCandidates:
      PutI32(&body, request.id);
      PutI32(&body, request.k);
      break;
    case MsgType::kInstallArrangement:
      PutU64(&body, request.max_sum_bits);
      PutU32(&body, static_cast<uint32_t>(request.pairs.size()));
      for (const auto& [event, user] : request.pairs) {
        PutI32(&body, event);
        PutI32(&body, user);
      }
      break;
    case MsgType::kShardStats:
      break;
    default:
      GEACC_CHECK(false) << "not a request type: "
                         << static_cast<int>(request.type);
  }
  return SealFrame(std::move(body));
}

std::string EncodeResponseFrame(const WireResponse& response) {
  std::string body;
  PutU8(&body, kWireVersion);
  PutU8(&body, static_cast<uint8_t>(response.type));
  switch (response.type) {
    case MsgType::kPong:
    case MsgType::kOverloaded:
      break;
    case MsgType::kIdList:
      PutU32(&body, static_cast<uint32_t>(response.ids.size()));
      for (const int32_t id : response.ids) PutI32(&body, id);
      break;
    case MsgType::kScoredList:
      PutU32(&body, static_cast<uint32_t>(response.scored.size()));
      for (const ScoredEvent& scored : response.scored) {
        PutI32(&body, scored.event);
        PutF64(&body, scored.similarity);
      }
      break;
    case MsgType::kStatsReply:
      PutI64(&body, response.stats.epoch);
      PutI64(&body, response.stats.applied_seq);
      PutI64(&body, response.stats.pairs);
      PutI32(&body, response.stats.active_events);
      PutI32(&body, response.stats.active_users);
      PutI32(&body, response.stats.event_slots);
      PutI32(&body, response.stats.user_slots);
      PutF64(&body, response.stats.max_sum);
      PutI32(&body, response.stats.queued);
      PutI64(&body, response.stats.overloads);
      break;
    case MsgType::kMutateAck:
      PutI64(&body, response.ticket);
      break;
    case MsgType::kError:
      PutBytes(&body, response.message);
      break;
    case MsgType::kCandidateList:
      PutU32(&body, static_cast<uint32_t>(response.candidates.size()));
      for (const ScoredCandidate& c : response.candidates) {
        PutI32(&body, c.user);
        PutI32(&body, c.event);
        PutF64(&body, c.similarity);
      }
      break;
    case MsgType::kShardStatsReply: {
      const ShardTopologyStats& ts = response.shard_stats;
      PutI32(&body, ts.shard_count);
      PutI64(&body, ts.repair_epoch);
      PutF64(&body, ts.global_max_sum);
      PutI64(&body, ts.repair_candidates);
      PutI64(&body, ts.repair_admitted);
      PutI64(&body, ts.repair_rejected_capacity);
      PutI64(&body, ts.repair_rejected_conflict);
      PutI64(&body, ts.cross_edge_rejects);
      PutU32(&body, static_cast<uint32_t>(ts.shards.size()));
      for (const ShardStatsEntry& entry : ts.shards) {
        PutI32(&body, entry.shard);
        PutI64(&body, entry.stats.epoch);
        PutI64(&body, entry.stats.applied_seq);
        PutI64(&body, entry.stats.pairs);
        PutI32(&body, entry.stats.active_events);
        PutI32(&body, entry.stats.active_users);
        PutI32(&body, entry.stats.event_slots);
        PutI32(&body, entry.stats.user_slots);
        PutF64(&body, entry.stats.max_sum);
        PutI32(&body, entry.stats.queued);
        PutI64(&body, entry.stats.overloads);
        PutI64(&body, entry.rpc_requests);
        PutI64(&body, entry.rpc_errors);
        PutF64(&body, entry.rpc_p50_ms);
        PutF64(&body, entry.rpc_p95_ms);
        PutF64(&body, entry.rpc_p99_ms);
      }
      break;
    }
    default:
      GEACC_CHECK(false) << "not a response type: "
                         << static_cast<int>(response.type);
  }
  return SealFrame(std::move(body));
}

namespace {

// Shared prologue: version byte, type byte, and type-range check.
bool DecodeHeader(Reader* reader, bool want_request, MsgType* type,
                  std::string* error) {
  uint8_t version;
  if (!reader->ReadU8(&version)) return Fail(error, "truncated frame");
  if (version != kWireVersion) {
    return Fail(error, StrFormat("unsupported wire version %d",
                                 static_cast<int>(version)));
  }
  uint8_t raw;
  if (!reader->ReadU8(&raw)) return Fail(error, "truncated frame");
  const bool is_request = raw >= static_cast<uint8_t>(MsgType::kPing) &&
                          raw <= static_cast<uint8_t>(MsgType::kShardStats);
  const bool is_response =
      raw >= static_cast<uint8_t>(MsgType::kPong) &&
      raw <= static_cast<uint8_t>(MsgType::kShardStatsReply);
  if (want_request ? !is_request : !is_response) {
    return Fail(error, StrFormat("unexpected message type %d",
                                 static_cast<int>(raw)));
  }
  *type = static_cast<MsgType>(raw);
  return true;
}

bool CheckEnd(const Reader& reader, std::string* error) {
  if (!reader.AtEnd()) {
    return Fail(error, reader.ok() ? "trailing bytes after body"
                                   : "truncated body");
  }
  return true;
}

}  // namespace

bool DecodeRequest(const uint8_t* data, size_t size, WireRequest* out,
                   std::string* error) {
  Reader reader(data, size);
  *out = WireRequest();
  if (!DecodeHeader(&reader, /*want_request=*/true, &out->type, error)) {
    return false;
  }
  switch (out->type) {
    case MsgType::kPing:
    case MsgType::kStats:
      break;
    case MsgType::kGetAssignments:
    case MsgType::kGetAttendees:
      if (!reader.ReadI32(&out->id)) return Fail(error, "truncated body");
      break;
    case MsgType::kTopK:
      if (!reader.ReadI32(&out->id) || !reader.ReadI32(&out->k)) {
        return Fail(error, "truncated body");
      }
      break;
    case MsgType::kMutate:
      if (!reader.ReadBytes(&out->payload)) {
        return Fail(error, "truncated mutation payload");
      }
      break;
    case MsgType::kCandidates:
      if (!reader.ReadI32(&out->id) || !reader.ReadI32(&out->k)) {
        return Fail(error, "truncated body");
      }
      break;
    case MsgType::kInstallArrangement: {
      if (!reader.ReadU64(&out->max_sum_bits)) {
        return Fail(error, "truncated body");
      }
      uint32_t count;
      if (!reader.ReadU32(&count)) return Fail(error, "truncated body");
      if (count > reader.remaining() / 8) {
        return Fail(error, "pair count exceeds body size");
      }
      out->pairs.resize(count);
      for (uint32_t i = 0; i < count; ++i) {
        if (!reader.ReadI32(&out->pairs[i].first) ||
            !reader.ReadI32(&out->pairs[i].second)) {
          return Fail(error, "truncated pair");
        }
      }
      break;
    }
    case MsgType::kShardStats:
      break;
    default:
      return Fail(error, "unexpected message type");
  }
  return CheckEnd(reader, error);
}

bool DecodeResponse(const uint8_t* data, size_t size, WireResponse* out,
                    std::string* error) {
  Reader reader(data, size);
  *out = WireResponse();
  if (!DecodeHeader(&reader, /*want_request=*/false, &out->type, error)) {
    return false;
  }
  switch (out->type) {
    case MsgType::kPong:
    case MsgType::kOverloaded:
      break;
    case MsgType::kIdList: {
      uint32_t count;
      if (!reader.ReadU32(&count)) return Fail(error, "truncated body");
      // count is claimed, not trusted: each id is 4 bytes, so the body
      // itself bounds how many can be real.
      if (count > reader.remaining() / 4) {
        return Fail(error, "id count exceeds body size");
      }
      out->ids.resize(count);
      for (uint32_t i = 0; i < count; ++i) {
        if (!reader.ReadI32(&out->ids[i])) return Fail(error, "truncated id");
      }
      break;
    }
    case MsgType::kScoredList: {
      uint32_t count;
      if (!reader.ReadU32(&count)) return Fail(error, "truncated body");
      if (count > reader.remaining() / 12) {
        return Fail(error, "entry count exceeds body size");
      }
      out->scored.resize(count);
      for (uint32_t i = 0; i < count; ++i) {
        if (!reader.ReadI32(&out->scored[i].event) ||
            !reader.ReadF64(&out->scored[i].similarity)) {
          return Fail(error, "truncated entry");
        }
      }
      break;
    }
    case MsgType::kStatsReply:
      if (!reader.ReadI64(&out->stats.epoch) ||
          !reader.ReadI64(&out->stats.applied_seq) ||
          !reader.ReadI64(&out->stats.pairs) ||
          !reader.ReadI32(&out->stats.active_events) ||
          !reader.ReadI32(&out->stats.active_users) ||
          !reader.ReadI32(&out->stats.event_slots) ||
          !reader.ReadI32(&out->stats.user_slots) ||
          !reader.ReadF64(&out->stats.max_sum) ||
          !reader.ReadI32(&out->stats.queued) ||
          !reader.ReadI64(&out->stats.overloads)) {
        return Fail(error, "truncated stats body");
      }
      break;
    case MsgType::kMutateAck:
      if (!reader.ReadI64(&out->ticket)) return Fail(error, "truncated body");
      break;
    case MsgType::kError:
      if (!reader.ReadBytes(&out->message)) {
        return Fail(error, "truncated error body");
      }
      break;
    case MsgType::kCandidateList: {
      uint32_t count;
      if (!reader.ReadU32(&count)) return Fail(error, "truncated body");
      if (count > reader.remaining() / 16) {
        return Fail(error, "candidate count exceeds body size");
      }
      out->candidates.resize(count);
      for (uint32_t i = 0; i < count; ++i) {
        if (!reader.ReadI32(&out->candidates[i].user) ||
            !reader.ReadI32(&out->candidates[i].event) ||
            !reader.ReadF64(&out->candidates[i].similarity)) {
          return Fail(error, "truncated candidate");
        }
      }
      break;
    }
    case MsgType::kShardStatsReply: {
      ShardTopologyStats& ts = out->shard_stats;
      if (!reader.ReadI32(&ts.shard_count) ||
          !reader.ReadI64(&ts.repair_epoch) ||
          !reader.ReadF64(&ts.global_max_sum) ||
          !reader.ReadI64(&ts.repair_candidates) ||
          !reader.ReadI64(&ts.repair_admitted) ||
          !reader.ReadI64(&ts.repair_rejected_capacity) ||
          !reader.ReadI64(&ts.repair_rejected_conflict) ||
          !reader.ReadI64(&ts.cross_edge_rejects)) {
        return Fail(error, "truncated shard stats body");
      }
      uint32_t count;
      if (!reader.ReadU32(&count)) return Fail(error, "truncated body");
      // Each entry is at least 96 bytes of fixed-width fields.
      if (count > reader.remaining() / 96) {
        return Fail(error, "shard count exceeds body size");
      }
      ts.shards.resize(count);
      for (uint32_t i = 0; i < count; ++i) {
        ShardStatsEntry& entry = ts.shards[i];
        if (!reader.ReadI32(&entry.shard) ||
            !reader.ReadI64(&entry.stats.epoch) ||
            !reader.ReadI64(&entry.stats.applied_seq) ||
            !reader.ReadI64(&entry.stats.pairs) ||
            !reader.ReadI32(&entry.stats.active_events) ||
            !reader.ReadI32(&entry.stats.active_users) ||
            !reader.ReadI32(&entry.stats.event_slots) ||
            !reader.ReadI32(&entry.stats.user_slots) ||
            !reader.ReadF64(&entry.stats.max_sum) ||
            !reader.ReadI32(&entry.stats.queued) ||
            !reader.ReadI64(&entry.stats.overloads) ||
            !reader.ReadI64(&entry.rpc_requests) ||
            !reader.ReadI64(&entry.rpc_errors) ||
            !reader.ReadF64(&entry.rpc_p50_ms) ||
            !reader.ReadF64(&entry.rpc_p95_ms) ||
            !reader.ReadF64(&entry.rpc_p99_ms)) {
          return Fail(error, "truncated shard entry");
        }
      }
      break;
    }
    default:
      return Fail(error, "unexpected message type");
  }
  return CheckEnd(reader, error);
}

}  // namespace geacc::svc
