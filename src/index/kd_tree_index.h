// kd-tree NN index with best-first incremental search.
//
// Build: recursive median split on the widest dimension of each node's
// bounding box; leaves hold up to kLeafSize points. Search: a priority
// queue ordered by minimum possible squared distance interleaves tree nodes
// and exact points, yielding points in non-decreasing distance — which for
// Euclidean-monotone similarities is non-increasing similarity, the order
// Greedy-GEACC's cursors need.
//
// In high dimensions (the paper's default d = 20) a kd-tree degenerates
// toward a scan; it still satisfies the cursor contract, and the benches
// quantify the crossover against LinearScanIndex.

#ifndef GEACC_INDEX_KD_TREE_INDEX_H_
#define GEACC_INDEX_KD_TREE_INDEX_H_

#include <memory>
#include <string>
#include <vector>

#include "index/knn_index.h"

namespace geacc {

class KdTreeIndex final : public KnnIndex {
 public:
  // `similarity` must be Euclidean-monotone (checked).
  KdTreeIndex(const AttributeMatrix& points,
              const SimilarityFunction& similarity);

  std::string Name() const override { return "kdtree"; }
  std::vector<Neighbor> Query(const double* query, int k) const override;
  std::unique_ptr<NnCursor> CreateCursor(const double* query) const override;
  uint64_t ByteEstimate() const override;

 private:
  friend class KdTreeCursor;

  static constexpr int kLeafSize = 16;

  struct Node {
    // Bounding box of the points under this node.
    std::vector<double> box_min;
    std::vector<double> box_max;
    // Children (internal nodes) or point range in point_ids_ (leaves).
    int left = -1;
    int right = -1;
    int begin = 0;
    int end = 0;
    bool IsLeaf() const { return left < 0; }
  };

  int BuildNode(int begin, int end);
  double MinSquaredDistance(const Node& node, const double* query) const;

  const AttributeMatrix& points_;
  const SimilarityFunction& similarity_;
  std::vector<Node> nodes_;
  std::vector<int> point_ids_;  // permuted ids, leaf ranges index into this
  int root_ = -1;
};

}  // namespace geacc

#endif  // GEACC_INDEX_KD_TREE_INDEX_H_
