// The wire codec faces untrusted bytes: every frame must either decode to
// exactly what was encoded or fail with a diagnostic — never crash, never
// over-allocate, never accept trailing garbage. Truncation is swept at
// every byte offset and corruption at every byte position, fuzz-style but
// deterministic.

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "svc/wire.h"
#include "util/rng.h"

namespace geacc::svc {
namespace {

// Bytes after the length prefix — what Decode* consumes.
std::vector<uint8_t> Payload(const std::string& frame) {
  EXPECT_GE(frame.size(), 4u);
  return std::vector<uint8_t>(frame.begin() + 4, frame.end());
}

uint32_t PrefixOf(const std::string& frame) {
  uint32_t length = 0;
  std::memcpy(&length, frame.data(), 4);
  return length;
}

TEST(Wire, RequestRoundTripsEveryType) {
  std::vector<WireRequest> requests;
  requests.push_back({MsgType::kPing, -1, 0, ""});
  requests.push_back({MsgType::kGetAssignments, 42, 0, ""});
  requests.push_back({MsgType::kGetAttendees, 7, 0, ""});
  requests.push_back({MsgType::kTopK, 3, 10, ""});
  requests.push_back({MsgType::kStats, -1, 0, ""});
  requests.push_back(
      {MsgType::kMutate, -1, 0, "add_user 2 0.5 1.25 3.75 100"});

  for (const WireRequest& request : requests) {
    const std::string frame = EncodeRequestFrame(request);
    ASSERT_EQ(PrefixOf(frame), frame.size() - 4)
        << MsgTypeName(request.type);
    const std::vector<uint8_t> body = Payload(frame);
    WireRequest decoded;
    std::string error;
    ASSERT_TRUE(DecodeRequest(body.data(), body.size(), &decoded, &error))
        << MsgTypeName(request.type) << ": " << error;
    EXPECT_EQ(decoded.type, request.type);
    EXPECT_EQ(decoded.id, request.id) << MsgTypeName(request.type);
    EXPECT_EQ(decoded.k, request.k) << MsgTypeName(request.type);
    EXPECT_EQ(decoded.payload, request.payload);
  }
}

TEST(Wire, ResponseRoundTripsEveryType) {
  std::vector<WireResponse> responses;
  responses.push_back({MsgType::kPong, {}, {}, {}, -1, ""});
  responses.push_back({MsgType::kIdList, {3, 1, 4, 1, 5}, {}, {}, -1, ""});
  WireResponse scored;
  scored.type = MsgType::kScoredList;
  scored.scored = {{7, 0.875}, {2, 0.5}, {9, 0.0}};
  responses.push_back(scored);
  WireResponse stats;
  stats.type = MsgType::kStatsReply;
  stats.stats.epoch = 123;
  stats.stats.applied_seq = 456;
  stats.stats.pairs = 789;
  stats.stats.active_events = 10;
  stats.stats.active_users = 20;
  stats.stats.event_slots = 11;
  stats.stats.user_slots = 22;
  stats.stats.max_sum = 3.14159;
  stats.stats.queued = 5;
  stats.stats.overloads = 99;
  responses.push_back(stats);
  WireResponse ack;
  ack.type = MsgType::kMutateAck;
  ack.ticket = 1234567890123LL;
  responses.push_back(ack);
  responses.push_back({MsgType::kOverloaded, {}, {}, {}, -1, ""});
  responses.push_back({MsgType::kError, {}, {}, {}, -1, "no active user 7"});

  for (const WireResponse& response : responses) {
    const std::string frame = EncodeResponseFrame(response);
    ASSERT_EQ(PrefixOf(frame), frame.size() - 4)
        << MsgTypeName(response.type);
    const std::vector<uint8_t> body = Payload(frame);
    WireResponse decoded;
    std::string error;
    ASSERT_TRUE(DecodeResponse(body.data(), body.size(), &decoded, &error))
        << MsgTypeName(response.type) << ": " << error;
    EXPECT_EQ(decoded.type, response.type);
    EXPECT_EQ(decoded.ids, response.ids);
    EXPECT_EQ(decoded.scored, response.scored);
    EXPECT_EQ(decoded.ticket, response.ticket);
    EXPECT_EQ(decoded.message, response.message);
    if (response.type == MsgType::kStatsReply) {
      EXPECT_EQ(decoded.stats.epoch, response.stats.epoch);
      EXPECT_EQ(decoded.stats.applied_seq, response.stats.applied_seq);
      EXPECT_EQ(decoded.stats.pairs, response.stats.pairs);
      EXPECT_EQ(decoded.stats.active_events, response.stats.active_events);
      EXPECT_EQ(decoded.stats.active_users, response.stats.active_users);
      EXPECT_EQ(decoded.stats.event_slots, response.stats.event_slots);
      EXPECT_EQ(decoded.stats.user_slots, response.stats.user_slots);
      EXPECT_EQ(decoded.stats.max_sum, response.stats.max_sum);
      EXPECT_EQ(decoded.stats.queued, response.stats.queued);
      EXPECT_EQ(decoded.stats.overloads, response.stats.overloads);
    }
  }
}

TEST(Wire, ShardRequestsRoundTrip) {
  WireRequest candidates;
  candidates.type = MsgType::kCandidates;
  candidates.id = 128;
  candidates.k = 1024;
  WireRequest install;
  install.type = MsgType::kInstallArrangement;
  install.pairs = {{3, 0}, {1, 7}, {0, 2}};
  install.max_sum_bits = 0x400921FB54442D18ULL;  // π's bit pattern
  WireRequest shard_stats;
  shard_stats.type = MsgType::kShardStats;

  for (const WireRequest& request : {candidates, install, shard_stats}) {
    const std::string frame = EncodeRequestFrame(request);
    ASSERT_EQ(PrefixOf(frame), frame.size() - 4)
        << MsgTypeName(request.type);
    const std::vector<uint8_t> body = Payload(frame);
    WireRequest decoded;
    std::string error;
    ASSERT_TRUE(DecodeRequest(body.data(), body.size(), &decoded, &error))
        << MsgTypeName(request.type) << ": " << error;
    EXPECT_EQ(decoded.type, request.type);
    EXPECT_EQ(decoded.id, request.id) << MsgTypeName(request.type);
    EXPECT_EQ(decoded.k, request.k) << MsgTypeName(request.type);
    EXPECT_EQ(decoded.pairs, request.pairs) << MsgTypeName(request.type);
    EXPECT_EQ(decoded.max_sum_bits, request.max_sum_bits)
        << MsgTypeName(request.type);
  }
}

TEST(Wire, ShardResponsesRoundTrip) {
  WireResponse candidates;
  candidates.type = MsgType::kCandidateList;
  candidates.candidates = {{0, 3, 0.875}, {0, 1, 0.5}, {2, 0, 0.0625}};

  WireResponse topology;
  topology.type = MsgType::kShardStatsReply;
  ShardTopologyStats& ts = topology.shard_stats;
  ts.shard_count = 2;
  ts.repair_epoch = 17;
  ts.global_max_sum = 123.456;
  ts.repair_candidates = 900;
  ts.repair_admitted = 140;
  ts.repair_rejected_capacity = 700;
  ts.repair_rejected_conflict = 60;
  ts.cross_edge_rejects = 13;
  for (int shard = 0; shard < 2; ++shard) {
    ShardStatsEntry entry;
    entry.shard = shard;
    entry.stats.epoch = 100 + shard;
    entry.stats.applied_seq = 200 + shard;
    entry.stats.pairs = 70 + shard;
    entry.stats.max_sum = 61.75 + shard;
    entry.rpc_requests = 5000 + shard;
    entry.rpc_errors = shard;
    entry.rpc_p50_ms = 0.05;
    entry.rpc_p95_ms = 0.21;
    entry.rpc_p99_ms = 0.9;
    ts.shards.push_back(entry);
  }

  for (const WireResponse& response : {candidates, topology}) {
    const std::string frame = EncodeResponseFrame(response);
    ASSERT_EQ(PrefixOf(frame), frame.size() - 4)
        << MsgTypeName(response.type);
    const std::vector<uint8_t> body = Payload(frame);
    WireResponse decoded;
    std::string error;
    ASSERT_TRUE(DecodeResponse(body.data(), body.size(), &decoded, &error))
        << MsgTypeName(response.type) << ": " << error;
    EXPECT_EQ(decoded.type, response.type);
    EXPECT_EQ(decoded.candidates, response.candidates);
    const ShardTopologyStats& got = decoded.shard_stats;
    const ShardTopologyStats& want = response.shard_stats;
    EXPECT_EQ(got.shard_count, want.shard_count);
    EXPECT_EQ(got.repair_epoch, want.repair_epoch);
    EXPECT_EQ(got.global_max_sum, want.global_max_sum);
    EXPECT_EQ(got.repair_candidates, want.repair_candidates);
    EXPECT_EQ(got.repair_admitted, want.repair_admitted);
    EXPECT_EQ(got.repair_rejected_capacity, want.repair_rejected_capacity);
    EXPECT_EQ(got.repair_rejected_conflict, want.repair_rejected_conflict);
    EXPECT_EQ(got.cross_edge_rejects, want.cross_edge_rejects);
    ASSERT_EQ(got.shards.size(), want.shards.size());
    for (size_t i = 0; i < want.shards.size(); ++i) {
      EXPECT_EQ(got.shards[i].shard, want.shards[i].shard);
      EXPECT_EQ(got.shards[i].stats.epoch, want.shards[i].stats.epoch);
      EXPECT_EQ(got.shards[i].stats.pairs, want.shards[i].stats.pairs);
      EXPECT_EQ(got.shards[i].stats.max_sum, want.shards[i].stats.max_sum);
      EXPECT_EQ(got.shards[i].rpc_requests, want.shards[i].rpc_requests);
      EXPECT_EQ(got.shards[i].rpc_errors, want.shards[i].rpc_errors);
      EXPECT_EQ(got.shards[i].rpc_p50_ms, want.shards[i].rpc_p50_ms);
      EXPECT_EQ(got.shards[i].rpc_p95_ms, want.shards[i].rpc_p95_ms);
      EXPECT_EQ(got.shards[i].rpc_p99_ms, want.shards[i].rpc_p99_ms);
    }
  }
}

TEST(Wire, ShardFrameTruncationFailsCleanly) {
  WireRequest install;
  install.type = MsgType::kInstallArrangement;
  install.pairs = {{0, 0}, {5, 9}};
  install.max_sum_bits = 42;
  WireResponse candidates;
  candidates.type = MsgType::kCandidateList;
  candidates.candidates = {{1, 2, 0.75}};
  WireResponse topology;
  topology.type = MsgType::kShardStatsReply;
  topology.shard_stats.shard_count = 1;
  topology.shard_stats.shards.emplace_back();

  const std::vector<uint8_t> request_body = Payload(EncodeRequestFrame(install));
  for (size_t cut = 0; cut < request_body.size(); ++cut) {
    WireRequest decoded;
    EXPECT_FALSE(DecodeRequest(request_body.data(), cut, &decoded))
        << "install accepted a " << cut << "-byte prefix";
  }
  for (const WireResponse& response : {candidates, topology}) {
    const std::vector<uint8_t> body = Payload(EncodeResponseFrame(response));
    for (size_t cut = 0; cut < body.size(); ++cut) {
      WireResponse decoded;
      EXPECT_FALSE(DecodeResponse(body.data(), cut, &decoded))
          << MsgTypeName(response.type) << " accepted a " << cut
          << "-byte prefix";
    }
  }
}

TEST(Wire, HostilePairAndShardCountsCannotForceAllocation) {
  // An install claiming 2^29 pairs in a tiny body must fail before any
  // allocation sized by the claim; same for a shard-stats reply claiming
  // 2^20 shard entries.
  std::vector<uint8_t> install = {kWireVersion,
                                  static_cast<uint8_t>(
                                      MsgType::kInstallArrangement)};
  install.insert(install.end(), 8, 0);  // max_sum_bits
  const uint32_t claimed = 1u << 29;
  for (int i = 0; i < 4; ++i) {
    install.push_back(static_cast<uint8_t>((claimed >> (8 * i)) & 0xFF));
  }
  install.insert(install.end(), 16, 0);  // far fewer pairs than claimed
  WireRequest request;
  EXPECT_FALSE(DecodeRequest(install.data(), install.size(), &request));

  std::vector<uint8_t> stats = {kWireVersion,
                                static_cast<uint8_t>(MsgType::kShardStatsReply)};
  stats.insert(stats.end(), 60, 0);  // header zeros
  const uint32_t shards = 1u << 20;
  for (int i = 0; i < 4; ++i) {
    stats.push_back(static_cast<uint8_t>((shards >> (8 * i)) & 0xFF));
  }
  WireResponse response;
  EXPECT_FALSE(DecodeResponse(stats.data(), stats.size(), &response));
}

TEST(Wire, TruncationAtEveryByteFailsCleanly) {
  WireRequest mutate;
  mutate.type = MsgType::kMutate;
  mutate.payload = "set_event_capacity 4 12";
  WireResponse scored;
  scored.type = MsgType::kScoredList;
  scored.scored = {{1, 0.25}, {2, 0.75}};

  const std::vector<std::vector<uint8_t>> bodies = {
      Payload(EncodeRequestFrame(mutate)),
      Payload(EncodeRequestFrame({MsgType::kTopK, 3, 10, ""})),
      Payload(EncodeResponseFrame(scored)),
      Payload(EncodeResponseFrame({MsgType::kError, {}, {}, {}, -1, "bad"})),
  };
  for (const std::vector<uint8_t>& body : bodies) {
    for (size_t cut = 0; cut < body.size(); ++cut) {
      WireRequest request;
      WireResponse response;
      EXPECT_FALSE(DecodeRequest(body.data(), cut, &request))
          << "request accepted a " << cut << "-byte prefix of "
          << body.size();
      EXPECT_FALSE(DecodeResponse(body.data(), cut, &response))
          << "response accepted a " << cut << "-byte prefix of "
          << body.size();
    }
  }
}

TEST(Wire, TrailingBytesAreRejected) {
  for (std::vector<uint8_t> body :
       {Payload(EncodeRequestFrame({MsgType::kPing, -1, 0, ""})),
        Payload(EncodeRequestFrame({MsgType::kGetAssignments, 1, 0, ""}))}) {
    body.push_back(0);
    WireRequest request;
    EXPECT_FALSE(DecodeRequest(body.data(), body.size(), &request));
  }
  std::vector<uint8_t> body =
      Payload(EncodeResponseFrame({MsgType::kPong, {}, {}, {}, -1, ""}));
  body.push_back(0xFF);
  WireResponse response;
  EXPECT_FALSE(DecodeResponse(body.data(), body.size(), &response));
}

TEST(Wire, BadVersionAndTypeAreRejected) {
  std::vector<uint8_t> body =
      Payload(EncodeRequestFrame({MsgType::kPing, -1, 0, ""}));
  ASSERT_GE(body.size(), 2u);

  std::vector<uint8_t> bad_version = body;
  bad_version[0] = kWireVersion + 1;
  WireRequest request;
  std::string error;
  EXPECT_FALSE(DecodeRequest(bad_version.data(), bad_version.size(),
                             &request, &error));
  EXPECT_NE(error.find("version"), std::string::npos) << error;

  // Response types are not valid request types and vice versa; unknown
  // type bytes fail both.
  for (const uint8_t type : {0, 7, 63, 71, 200, 255}) {
    std::vector<uint8_t> bad_type = body;
    bad_type[1] = type;
    EXPECT_FALSE(DecodeRequest(bad_type.data(), bad_type.size(), &request))
        << "request type byte " << int{type};
  }
  std::vector<uint8_t> response_typed = body;
  response_typed[1] = static_cast<uint8_t>(MsgType::kPong);
  EXPECT_FALSE(
      DecodeRequest(response_typed.data(), response_typed.size(), &request));
  std::vector<uint8_t> request_typed = body;
  request_typed[1] = static_cast<uint8_t>(MsgType::kStats);
  WireResponse response;
  EXPECT_FALSE(
      DecodeResponse(request_typed.data(), request_typed.size(), &response));
}

TEST(Wire, HostileCountsCannotForceAllocation) {
  // An kIdList claiming 2^30 ids in a 16-byte body must fail before any
  // allocation sized by the claim.
  std::vector<uint8_t> body;
  body.push_back(kWireVersion);
  body.push_back(static_cast<uint8_t>(MsgType::kIdList));
  const uint32_t claimed = 1u << 30;
  for (int i = 0; i < 4; ++i) {
    body.push_back(static_cast<uint8_t>((claimed >> (8 * i)) & 0xFF));
  }
  body.insert(body.end(), 8, 0);  // far fewer bytes than claimed
  WireResponse response;
  EXPECT_FALSE(DecodeResponse(body.data(), body.size(), &response));

  std::vector<uint8_t> scored = {kWireVersion,
                                 static_cast<uint8_t>(MsgType::kScoredList),
                                 0xFF, 0xFF, 0xFF, 0x7F};
  EXPECT_FALSE(DecodeResponse(scored.data(), scored.size(), &response));

  // Same for a kMutate payload length and a kError message length.
  std::vector<uint8_t> mutate = {kWireVersion,
                                 static_cast<uint8_t>(MsgType::kMutate),
                                 0xFF, 0xFF, 0xFF, 0xFF, 'x'};
  WireRequest request;
  EXPECT_FALSE(DecodeRequest(mutate.data(), mutate.size(), &request));
}

TEST(Wire, SingleByteCorruptionNeverCrashes) {
  // Flip every byte of a moderately rich frame to 256 values and decode;
  // any outcome is fine except a crash or a false "ok" that misparses.
  WireResponse scored;
  scored.type = MsgType::kScoredList;
  for (int i = 0; i < 6; ++i) {
    scored.scored.push_back({i, 0.125 * i});
  }
  const std::vector<uint8_t> body = Payload(EncodeResponseFrame(scored));
  for (size_t pos = 0; pos < body.size(); ++pos) {
    for (int delta = 1; delta < 256; delta += 37) {
      std::vector<uint8_t> corrupt = body;
      corrupt[pos] = static_cast<uint8_t>(corrupt[pos] + delta);
      WireResponse out;
      (void)DecodeResponse(corrupt.data(), corrupt.size(), &out);
    }
  }
}

TEST(Wire, RandomGarbageNeverCrashes) {
  Rng rng(99);
  for (int round = 0; round < 2000; ++round) {
    const int size = static_cast<int>(rng.UniformInt(0, 64));
    std::vector<uint8_t> garbage(size);
    for (uint8_t& byte : garbage) {
      byte = static_cast<uint8_t>(rng.UniformInt(0, 255));
    }
    WireRequest request;
    WireResponse response;
    (void)DecodeRequest(garbage.data(), garbage.size(), &request);
    (void)DecodeResponse(garbage.data(), garbage.size(), &response);
  }
}

}  // namespace
}  // namespace geacc::svc
