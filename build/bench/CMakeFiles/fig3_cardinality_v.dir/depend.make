# Empty dependencies file for fig3_cardinality_v.
# This may be replaced when dependencies are built.
