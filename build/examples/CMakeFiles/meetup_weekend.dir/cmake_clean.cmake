file(REMOVE_RECURSE
  "CMakeFiles/meetup_weekend.dir/meetup_weekend.cpp.o"
  "CMakeFiles/meetup_weekend.dir/meetup_weekend.cpp.o.d"
  "meetup_weekend"
  "meetup_weekend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meetup_weekend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
