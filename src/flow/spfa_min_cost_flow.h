// SPFA-based successive shortest paths — the potential-free alternative.
//
// Finds each augmenting path with a queue-based Bellman–Ford (SPFA) over
// *real* arc costs instead of Dijkstra over reduced costs. Handles
// negative arc costs natively (residual backward arcs are negative), at a
// worse asymptotic bound. Kept as a first-class implementation because it
// is the standard textbook formulation, it cross-checks the potential
// bookkeeping of SuccessiveShortestPaths in tests, and it is competitive
// on small dense GEACC networks (quantified in bench/micro_flow).

#ifndef GEACC_FLOW_SPFA_MIN_COST_FLOW_H_
#define GEACC_FLOW_SPFA_MIN_COST_FLOW_H_

#include <cstdint>
#include <vector>

#include "flow/graph.h"

namespace geacc {

class SpfaMinCostFlow {
 public:
  SpfaMinCostFlow(FlowGraph* graph, int source, int sink);

  // Same contract as SuccessiveShortestPaths::Augment.
  int64_t Augment(int64_t max_units);

  // Same contract as SuccessiveShortestPaths::AugmentIfCheaper.
  int64_t AugmentIfCheaper(double cost_limit);

  int64_t RunToMaxFlow();

  int64_t total_flow() const { return total_flow_; }
  double total_cost() const { return total_cost_; }

  uint64_t ByteEstimate() const;

 private:
  // Bellman–Ford queue search; fills parent_arc_. Returns false when the
  // sink is unreachable.
  bool FindPath();
  double PathCost() const;
  void PushPath(int64_t amount);
  int64_t Bottleneck(int64_t cap) const;

  FlowGraph* graph_;
  int source_;
  int sink_;
  int64_t total_flow_ = 0;
  double total_cost_ = 0.0;

  std::vector<double> distance_;
  std::vector<int> parent_arc_;
  std::vector<bool> in_queue_;
};

}  // namespace geacc

#endif  // GEACC_FLOW_SPFA_MIN_COST_FLOW_H_
