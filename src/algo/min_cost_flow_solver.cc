#include "algo/min_cost_flow_solver.h"

#include <vector>

#include "algo/conflict_resolution.h"
#include "flow/graph.h"
#include "flow/min_cost_flow.h"
#include "flow/spfa_min_cost_flow.h"
#include "obs/stats.h"
#include "util/memory.h"
#include "util/timer.h"

namespace geacc {
namespace {

// An augmenting path with real cost below 1 strictly improves
// MaxSum(M_Δ) = Δ − cost(Δ); a path at exactly 1 leaves it unchanged. The
// epsilon guards float noise at the boundary.
constexpr double kUnitCostStop = 1.0 - 1e-9;

}  // namespace

Arrangement MinCostFlowSolver::SolveWithoutConflicts(
    const Instance& instance, SolverStats* stats) const {
  const int num_events = instance.num_events();
  const int num_users = instance.num_users();
  Arrangement matching(num_events, num_users);
  if (num_events == 0 || num_users == 0) return matching;

  // Node layout: 0 = source, 1..|V| = events, |V|+1..|V|+|U| = users,
  // |V|+|U|+1 = sink.
  const int source = 0;
  const int sink = num_events + num_users + 1;
  FlowGraph graph(num_events + num_users + 2);
  for (EventId v = 0; v < num_events; ++v) {
    graph.AddArc(source, 1 + v, instance.event_capacity(v), 0.0);
  }
  // Row-major (v, u) arc ids for matching extraction. The paper includes
  // arcs even for sim = 0 pairs (they may carry flow; such pairs are simply
  // excluded from the extracted matching).
  std::vector<int> pair_arcs(static_cast<size_t>(num_events) * num_users);
  for (EventId v = 0; v < num_events; ++v) {
    for (UserId u = 0; u < num_users; ++u) {
      pair_arcs[static_cast<size_t>(v) * num_users + u] = graph.AddArc(
          1 + v, 1 + num_events + u, 1, 1.0 - instance.Similarity(v, u));
    }
  }
  for (UserId u = 0; u < num_users; ++u) {
    graph.AddArc(1 + num_events + u, sink, instance.user_capacity(u), 0.0);
  }

  // Unit-by-unit sweep over Δ = 1..Δmax, equivalent to Algorithm 1's loop:
  // after k augmentations the residual flow is the min-cost flow of amount
  // k, and MaxSum(M_k) = k − cost(k). Unit costs are non-decreasing, so the
  // sweep stops at the first path that no longer improves, leaving the flow
  // at the Δ with maximum MaxSum.
  GEACC_PHASE_TIMER("mcf.flow_sweep");
  int64_t best_delta = 0;
  uint64_t engine_bytes = 0;
  if (options_.flow_algorithm == "spfa") {
    SpfaMinCostFlow spfa(&graph, source, sink);
    while (spfa.AugmentIfCheaper(kUnitCostStop) == 1) ++best_delta;
    engine_bytes = spfa.ByteEstimate();
  } else {
    GEACC_CHECK_EQ(options_.flow_algorithm, std::string("dijkstra"))
        << "unknown flow_algorithm";
    SuccessiveShortestPaths sspa(&graph, source, sink);
    while (sspa.AugmentIfCheaper(kUnitCostStop) == 1) ++best_delta;
    engine_bytes = sspa.ByteEstimate();
  }

  for (EventId v = 0; v < num_events; ++v) {
    for (UserId u = 0; u < num_users; ++u) {
      const int arc = pair_arcs[static_cast<size_t>(v) * num_users + u];
      if (graph.Flow(arc) == 1 && instance.Similarity(v, u) > 0.0) {
        matching.Add(v, u);
      }
    }
  }
  if (stats != nullptr) {
    // +1 for the final (rejected) path search that ended the sweep.
    stats->flow_augmentations += best_delta + 1;
    stats->best_delta = best_delta;
    stats->logical_peak_bytes +=
        graph.ByteEstimate() + engine_bytes + VectorBytes(pair_arcs);
  }
  GEACC_STATS_ADD("mcf.flow_sweeps", 1);
  GEACC_STATS_ADD("mcf.best_delta", best_delta);
  return matching;
}

SolveResult MinCostFlowSolver::Solve(const Instance& instance) const {
  WallTimer timer;
  SolverStats stats;
  Arrangement unconstrained = SolveWithoutConflicts(instance, &stats);

  // Step 2 (lines 8–14): per user, keep a non-conflicting subset —
  // greedily (the paper's rule) or exactly (bitmask MWIS ablation).
  GEACC_PHASE_TIMER("mcf.conflict_resolution");
  Arrangement result(instance.num_events(), instance.num_users());
  for (UserId u = 0; u < instance.num_users(); ++u) {
    const std::vector<EventId>& assigned = unconstrained.EventsOf(u);
    if (assigned.empty()) continue;
    const std::vector<EventId> kept =
        options_.exact_conflict_resolution
            ? ExactSelectNonConflicting(instance, u, assigned)
            : GreedySelectNonConflicting(instance, u, assigned);
    stats.conflicts_resolved +=
        static_cast<int64_t>(assigned.size() - kept.size());
    for (const EventId v : kept) result.Add(v, u);
  }
  GEACC_STATS_ADD("mcf.conflict_evictions", stats.conflicts_resolved);
  stats.logical_peak_bytes +=
      unconstrained.ByteEstimate() + result.ByteEstimate();
  stats.wall_seconds = timer.Seconds();
  return {std::move(result), stats};
}

}  // namespace geacc
