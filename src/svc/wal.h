// Durability for the arrangement service: a write-ahead mutation log and
// dense state checkpoints (DESIGN.md §11).
//
// The WAL is the service's replayable history: a header naming the format,
// the epoch-0 instance (instance_io block), a `wal-mutations` sentinel,
// then one trace_io mutation line per *applied* mutation, appended and
// flushed batch-by-batch by the writer thread. Because repair is
// deterministic (tests/parallel_determinism_test), replaying the WAL
// through a fresh IncrementalArranger with the same RepairOptions
// reproduces the crashed service's arrangement bit-for-bit — MaxSum and
// pair set included.
//
//   geacc-svc-wal v1
//   geacc-instance v1
//   ...                      (instance_io block)
//   wal-mutations
//   add_user 3 0.5 1.25 ...  (applied mutations, streamed)
//
// Crash discipline: a torn final line (the process died mid-append) is
// detected and dropped during recovery; any earlier malformed line is a
// hard error. Checkpoints are separate, colder artifacts: a compacted
// dense instance + arrangement written through src/io for export,
// inspection, or warm-starting a new service (dense ids — slot identity
// is intentionally not preserved; the WAL is the recovery path).
//
// Thread-safety: WalWriter is single-writer (the service writer thread);
// ReadWal/checkpoint functions touch only their arguments.

#ifndef GEACC_SVC_WAL_H_
#define GEACC_SVC_WAL_H_

#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "core/arrangement.h"
#include "core/instance.h"
#include "dyn/mutation.h"

namespace geacc::svc {

class WalWriter {
 public:
  // Creates/truncates `path` and writes the header + `initial` instance.
  bool Open(const std::string& path, const Instance& initial,
            std::string* error = nullptr);

  // Reopens an existing WAL for appending (recovery resume); the header
  // must already be present — nothing is validated here, pair with
  // ReadWal().
  bool OpenForAppend(const std::string& path, std::string* error = nullptr);

  // Appends one mutation line (buffered; call Sync() to flush).
  bool Append(const Mutation& mutation);

  // Flushes buffered appends to the OS. Called once per applied batch.
  bool Sync();

  bool is_open() const { return out_.is_open(); }
  void Close();

 private:
  std::ofstream out_;
};

// A decoded WAL: the epoch-0 instance plus every durably applied mutation.
struct WalContents {
  Instance initial;
  std::vector<Mutation> mutations;
  // 1 when a torn final line was dropped (crash mid-append), else 0.
  int dropped_tail_lines = 0;
};

// Parses a WAL file. Returns nullopt with a diagnostic on a missing file,
// bad header, malformed embedded instance, or a malformed mutation line
// that is not the final line of the file.
std::optional<WalContents> ReadWal(const std::string& path,
                                   std::string* error = nullptr);

// Writes `instance` + `arrangement` as one checkpoint file (instance_io
// blocks back to back).
bool WriteCheckpoint(const Instance& instance, const Arrangement& arrangement,
                     const std::string& path, std::string* error = nullptr);

// Loads a checkpoint written by WriteCheckpoint.
struct Checkpoint {
  Instance instance;
  Arrangement arrangement;
};
std::optional<Checkpoint> ReadCheckpoint(const std::string& path,
                                         std::string* error = nullptr);

}  // namespace geacc::svc

#endif  // GEACC_SVC_WAL_H_
