# Empty compiler generated dependencies file for motivation_online_vs_global.
# This may be replaced when dependencies are built.
