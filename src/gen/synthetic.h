// Synthetic instance generator (paper Table III).
//
// Defaults are the paper's bold settings: |V| = 100, |U| = 1000, d = 20,
// T = 10000, attributes ~ Uniform[0, T], c_v ~ Uniform[1, 50],
// c_u ~ Uniform[1, 4], conflict density 0.25, Euclidean similarity.

#ifndef GEACC_GEN_SYNTHETIC_H_
#define GEACC_GEN_SYNTHETIC_H_

#include <cstdint>
#include <string>

#include "core/instance.h"
#include "gen/distributions.h"

namespace geacc {

struct SyntheticConfig {
  int num_events = 100;
  int num_users = 1000;
  int dim = 20;
  double max_attribute = 10000.0;  // T

  DistributionSpec event_attribute = DistributionSpec::Uniform(0.0, 10000.0);
  DistributionSpec user_attribute = DistributionSpec::Uniform(0.0, 10000.0);
  DistributionSpec event_capacity = DistributionSpec::Uniform(1.0, 50.0);
  DistributionSpec user_capacity = DistributionSpec::Uniform(1.0, 4.0);

  // |CF| / (|V|(|V|-1)/2).
  double conflict_density = 0.25;

  // "euclidean" (uses T), "cosine", or "rbf".
  std::string similarity = "euclidean";

  uint64_t seed = 42;

  // Table III's Zipf / Normal attribute variants, preserving T.
  SyntheticConfig& WithZipfAttributes(double skew = 1.3);
  SyntheticConfig& WithNormalAttributes(double mean_fraction = 0.25,
                                        double stddev_fraction = 0.25);
  // Table II/III's Normal capacity variant: c_v ~ N(25, 12.5),
  // c_u ~ N(2, 1).
  SyntheticConfig& WithNormalCapacities();
};

Instance GenerateSynthetic(const SyntheticConfig& config);

}  // namespace geacc

#endif  // GEACC_GEN_SYNTHETIC_H_
