// Runtime SIMD dispatch for the batched similarity kernels (DESIGN.md §15).
//
// The kernel layer (simd/kernels.h) ships one implementation per
// instruction-set *level*; the level actually used is picked once per
// process: the highest level the CPU supports, unless overridden by
// `--simd={auto,avx2,scalar}` (benches) or SetDispatchOverride (tests).
// Dispatch is a single relaxed atomic load on the hot path — kernels are
// fetched per *batch*, never per element.
//
// Levels:
//  * kScalar — portable C++ over the blocked layout. Always available.
//    The compiler may auto-vectorize it; that is safe because the blocked
//    kernels are written so every floating-point result is bit-identical
//    to the per-pair scalar path regardless of lane width (see
//    kernels.h for the exact FP contract).
//  * kAvx2 — AVX2 intrinsics (4 × f64 lanes), compiled into the binary
//    only when the toolchain supports -mavx2 (GEACC_HAVE_AVX2) and
//    selected at startup only when cpuid reports AVX2.
//
// Thread-safety: ActiveLevel() is safe from any thread at any time.
// SetDispatchOverride is for process startup / test setup — it must not
// race with in-flight batch calls (the override is a plain atomic store,
// so a race is benign but the affected batch may split levels).

#ifndef GEACC_SIMD_SIMD_H_
#define GEACC_SIMD_SIMD_H_

#include <string>

namespace geacc::simd {

enum class Level {
  kScalar = 0,
  kAvx2 = 1,
};

// True iff this binary contains the AVX2 kernels *and* the CPU reports
// AVX2 support.
bool CpuSupportsAvx2();

// The level batch calls dispatch to: the override if one was set, else
// the best supported level.
Level ActiveLevel();

// "scalar" or "avx2".
const char* LevelName(Level level);

// Applies `--simd=MODE`: "auto" clears the override (hardware pick),
// "scalar" forces the portable kernels, "avx2" forces AVX2. Returns
// false with *error set (if non-null) when MODE is unknown or requests a
// level this binary/CPU cannot run — forcing never silently degrades.
bool SetDispatchOverride(const std::string& mode, std::string* error);

}  // namespace geacc::simd

#endif  // GEACC_SIMD_SIMD_H_
