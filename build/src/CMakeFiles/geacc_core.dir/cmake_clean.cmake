file(REMOVE_RECURSE
  "CMakeFiles/geacc_core.dir/core/arrangement.cc.o"
  "CMakeFiles/geacc_core.dir/core/arrangement.cc.o.d"
  "CMakeFiles/geacc_core.dir/core/attributes.cc.o"
  "CMakeFiles/geacc_core.dir/core/attributes.cc.o.d"
  "CMakeFiles/geacc_core.dir/core/conflict_graph.cc.o"
  "CMakeFiles/geacc_core.dir/core/conflict_graph.cc.o.d"
  "CMakeFiles/geacc_core.dir/core/instance.cc.o"
  "CMakeFiles/geacc_core.dir/core/instance.cc.o.d"
  "CMakeFiles/geacc_core.dir/core/preprocess.cc.o"
  "CMakeFiles/geacc_core.dir/core/preprocess.cc.o.d"
  "CMakeFiles/geacc_core.dir/core/similarity.cc.o"
  "CMakeFiles/geacc_core.dir/core/similarity.cc.o.d"
  "CMakeFiles/geacc_core.dir/core/solver.cc.o"
  "CMakeFiles/geacc_core.dir/core/solver.cc.o.d"
  "libgeacc_core.a"
  "libgeacc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geacc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
