#include "algo/sort_all_greedy_solver.h"

#include <algorithm>
#include <vector>

#include "obs/stats.h"
#include "util/memory.h"
#include "util/timer.h"

namespace geacc {
namespace {

struct Candidate {
  double similarity;
  EventId v;
  UserId u;
};

}  // namespace

SolveResult SortAllGreedySolver::Solve(const Instance& instance) const {
  WallTimer timer;
  SolverStats stats;
  const int num_events = instance.num_events();
  const int num_users = instance.num_users();
  Arrangement matching(num_events, num_users);

  std::vector<Candidate> candidates;
  candidates.reserve(static_cast<size_t>(num_events) * num_users);
  for (EventId v = 0; v < num_events; ++v) {
    for (UserId u = 0; u < num_users; ++u) {
      const double sim = instance.Similarity(v, u);
      if (sim > 0.0) candidates.push_back({sim, v, u});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.similarity != b.similarity) {
                return a.similarity > b.similarity;
              }
              if (a.v != b.v) return a.v < b.v;
              return a.u < b.u;
            });

  std::vector<int> event_capacity(num_events);
  std::vector<int> user_capacity(num_users);
  for (EventId v = 0; v < num_events; ++v) {
    event_capacity[v] = instance.event_capacity(v);
  }
  for (UserId u = 0; u < num_users; ++u) {
    user_capacity[u] = instance.user_capacity(u);
  }
  const ConflictGraph& conflicts = instance.conflicts();
  int64_t scanned = 0;
  int64_t matches = 0;
  for (const Candidate& candidate : candidates) {
    ++scanned;
    if (event_capacity[candidate.v] <= 0 ||
        user_capacity[candidate.u] <= 0) {
      continue;
    }
    bool conflicting = false;
    for (const EventId w : matching.EventsOf(candidate.u)) {
      if (conflicts.AreConflicting(candidate.v, w)) {
        conflicting = true;
        break;
      }
    }
    if (conflicting) continue;
    matching.Add(candidate.v, candidate.u);
    ++matches;
    --event_capacity[candidate.v];
    --user_capacity[candidate.u];
  }
  GEACC_STATS_ADD("sortall.pairs_materialized",
                  static_cast<int64_t>(candidates.size()));
  GEACC_STATS_ADD("sortall.pairs_scanned", scanned);
  GEACC_STATS_ADD("sortall.matches", matches);

  stats.logical_peak_bytes = VectorBytes(candidates) +
                             VectorBytes(event_capacity) +
                             VectorBytes(user_capacity) +
                             matching.ByteEstimate();
  stats.wall_seconds = timer.Seconds();
  return {std::move(matching), stats};
}

}  // namespace geacc
