#include "core/solver.h"

#include "core/instance.h"
#include "util/string_util.h"

namespace geacc {

// Beyond the option checks below, this translation unit anchors the Solver
// vtable so that every user of Solver does not emit its own copy.

std::string ValidateSolverOptions(const SolverOptions& options) {
  if (options.threads < 0) {
    return StrFormat("threads must be >= 0 (0 = auto), got %d",
                     options.threads);
  }
  const std::string& index = options.index;
  if (index != "linear" && index != "kdtree" && index != "vafile" &&
      index != "idistance" && index != "idistance-paged") {
    return StrFormat(
        "unknown index '%s' (expected linear, kdtree, vafile, idistance, "
        "or idistance-paged)",
        index.c_str());
  }
  if (options.storage_budget_bytes < 1024) {
    return "storage_budget_bytes must be >= 1024";
  }
  const std::string& flow = options.flow_algorithm;
  if (flow != "dijkstra" && flow != "spfa") {
    return StrFormat(
        "unknown flow_algorithm '%s' (expected dijkstra or spfa)",
        flow.c_str());
  }
  if (options.fp_mode != "strict" && options.fp_mode != "fast") {
    return StrFormat("unknown fp_mode '%s' (expected strict or fast)",
                     options.fp_mode.c_str());
  }
  const std::string& bound = options.bound;
  if (bound != "lemma6" && bound != "clique" && bound != "clique-lp") {
    return StrFormat(
        "unknown bound '%s' (expected lemma6, clique, or clique-lp)",
        bound.c_str());
  }
  return "";
}

simd::FpMode ResolveFpMode(const SolverOptions& options) {
  if (options.fp_mode == "fast") return simd::FpMode::kFast;
  GEACC_CHECK_EQ(options.fp_mode, std::string("strict"))
      << "unvalidated fp_mode";
  return simd::FpMode::kStrict;
}

}  // namespace geacc
