// Online user-at-a-time arrangement — the "existing approaches" the paper
// argues against, plus a streaming API.
//
// Real EBSNs often commit assignments as users arrive instead of solving
// globally. OnlineArranger models that: each arriving user is immediately
// given their best feasible non-conflicting events (greedy per user,
// events never reconsidered). OnlineGreedySolver wraps it as a Solver
// with id-order arrivals, so the benches can quantify how much the
// paper's *global* view buys over per-arrival assignment — the gap the
// introduction motivates with redundant/infeasible per-event
// recommendations.
//
// Guarantee: none — adversarial arrival orders lose up to the full seat
// value (that is the point of the baseline). Complexity: O(|V| log |V|)
// per arrival (rank all events by similarity), O(|U|·|V| log |V|)
// per full solve. Thread-safety: OnlineArranger is stateful and
// single-writer — one thread per engine; OnlineGreedySolver::Solve() is
// const and re-entrant (it builds a private engine per call). Counters
// reported: online.arrivals, online.events_ranked, online.matches.

#ifndef GEACC_ALGO_ONLINE_GREEDY_SOLVER_H_
#define GEACC_ALGO_ONLINE_GREEDY_SOLVER_H_

#include <string>
#include <vector>

#include "core/instance.h"
#include "core/solver.h"
#include "util/check.h"

namespace geacc {

// Incremental engine: construct over an instance, then feed arrivals.
//
// Relationship to dyn::IncrementalArranger: OnlineArranger is the
// arrival-only special case. An IncrementalArranger fed an arrival-only
// mutation trace (AddUser per user, in id order, with an unlimited repair
// budget) produces the identical arrangement, because its refill cursors
// enumerate events in the same (similarity desc, id asc) order this class
// sorts by — each arrival advances both engines through the same greedy
// choices, one epoch per user. tests/incremental_arranger_test.cc asserts
// the equivalence.
class OnlineArranger {
 public:
  explicit OnlineArranger(const Instance& instance);

  // Greedily assigns the arriving user to their most interesting events
  // subject to remaining event capacity, the user's own capacity, and
  // conflicts with what this user already holds. Each user may arrive at
  // most once (double arrival and out-of-range ids CHECK-fail). Returns
  // the events assigned (possibly empty).
  std::vector<EventId> ArriveUser(UserId u);

  const Arrangement& arrangement() const { return arrangement_; }

  int remaining_event_capacity(EventId v) const {
    GEACC_CHECK(v >= 0 && v < instance_.num_events())
        << "event id out of range: " << v;
    return event_capacity_[v];
  }

 private:
  const Instance& instance_;
  Arrangement arrangement_;
  std::vector<int> event_capacity_;
  std::vector<bool> arrived_;
};

class OnlineGreedySolver final : public Solver {
 public:
  explicit OnlineGreedySolver(SolverOptions options = {})
      : options_(options) {}

  std::string Name() const override { return "online-greedy"; }
  SolveResult Solve(const Instance& instance) const override;

 private:
  SolverOptions options_;
};

}  // namespace geacc

#endif  // GEACC_ALGO_ONLINE_GREEDY_SOLVER_H_
