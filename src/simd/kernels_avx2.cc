// AVX2 per-block reducers. Compiled with -mavx2 -mfma -ffp-contract=off
// (see src/CMakeLists.txt): the contract=off keeps the strict reducers'
// separate _mm256_mul_pd / _mm256_add_pd from being fused behind our
// back, so strict results stay bit-identical to the scalar level; the
// *_fma variants opt into fusion explicitly with _mm256_fmadd_pd.
//
// Lane geometry: a block holds 8 rows, one cache line (two __m256d) per
// dimension, so each reducer runs two accumulator registers and the
// whole inner loop is two aligned loads + arithmetic per dimension.

#include "simd/kernels.h"
#include "util/check.h"

#if defined(GEACC_HAVE_AVX2)
#include <immintrin.h>
#endif

namespace geacc::simd::internal {

#if defined(GEACC_HAVE_AVX2)

namespace {

void SquaredDistanceBlock(const double* query, const double* block, int dim,
                          double* out8) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  for (int j = 0; j < dim; ++j) {
    const __m256d qj = _mm256_broadcast_sd(query + j);
    const double* lane = block + static_cast<std::size_t>(j) * kBlockRows;
    const __m256d d0 = _mm256_sub_pd(qj, _mm256_load_pd(lane));
    const __m256d d1 = _mm256_sub_pd(qj, _mm256_load_pd(lane + 4));
    acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(d0, d0));
    acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(d1, d1));
  }
  _mm256_storeu_pd(out8, acc0);
  _mm256_storeu_pd(out8 + 4, acc1);
}

void SquaredDistanceBlockFma(const double* query, const double* block, int dim,
                             double* out8) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  for (int j = 0; j < dim; ++j) {
    const __m256d qj = _mm256_broadcast_sd(query + j);
    const double* lane = block + static_cast<std::size_t>(j) * kBlockRows;
    const __m256d d0 = _mm256_sub_pd(qj, _mm256_load_pd(lane));
    const __m256d d1 = _mm256_sub_pd(qj, _mm256_load_pd(lane + 4));
    acc0 = _mm256_fmadd_pd(d0, d0, acc0);
    acc1 = _mm256_fmadd_pd(d1, d1, acc1);
  }
  _mm256_storeu_pd(out8, acc0);
  _mm256_storeu_pd(out8 + 4, acc1);
}

void DotBlock(const double* query, const double* block, int dim,
              double* out8) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  for (int j = 0; j < dim; ++j) {
    const __m256d qj = _mm256_broadcast_sd(query + j);
    const double* lane = block + static_cast<std::size_t>(j) * kBlockRows;
    acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(qj, _mm256_load_pd(lane)));
    acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(qj, _mm256_load_pd(lane + 4)));
  }
  _mm256_storeu_pd(out8, acc0);
  _mm256_storeu_pd(out8 + 4, acc1);
}

void DotBlockFma(const double* query, const double* block, int dim,
                 double* out8) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  for (int j = 0; j < dim; ++j) {
    const __m256d qj = _mm256_broadcast_sd(query + j);
    const double* lane = block + static_cast<std::size_t>(j) * kBlockRows;
    acc0 = _mm256_fmadd_pd(qj, _mm256_load_pd(lane), acc0);
    acc1 = _mm256_fmadd_pd(qj, _mm256_load_pd(lane + 4), acc1);
  }
  _mm256_storeu_pd(out8, acc0);
  _mm256_storeu_pd(out8 + 4, acc1);
}

void DotNormBlock(const double* query, const double* block, int dim,
                  double* dot8, double* norm8) {
  __m256d dot0 = _mm256_setzero_pd();
  __m256d dot1 = _mm256_setzero_pd();
  __m256d norm0 = _mm256_setzero_pd();
  __m256d norm1 = _mm256_setzero_pd();
  for (int j = 0; j < dim; ++j) {
    const __m256d qj = _mm256_broadcast_sd(query + j);
    const double* lane = block + static_cast<std::size_t>(j) * kBlockRows;
    const __m256d x0 = _mm256_load_pd(lane);
    const __m256d x1 = _mm256_load_pd(lane + 4);
    dot0 = _mm256_add_pd(dot0, _mm256_mul_pd(qj, x0));
    dot1 = _mm256_add_pd(dot1, _mm256_mul_pd(qj, x1));
    norm0 = _mm256_add_pd(norm0, _mm256_mul_pd(x0, x0));
    norm1 = _mm256_add_pd(norm1, _mm256_mul_pd(x1, x1));
  }
  _mm256_storeu_pd(dot8, dot0);
  _mm256_storeu_pd(dot8 + 4, dot1);
  _mm256_storeu_pd(norm8, norm0);
  _mm256_storeu_pd(norm8 + 4, norm1);
}

void DotNormBlockFma(const double* query, const double* block, int dim,
                     double* dot8, double* norm8) {
  __m256d dot0 = _mm256_setzero_pd();
  __m256d dot1 = _mm256_setzero_pd();
  __m256d norm0 = _mm256_setzero_pd();
  __m256d norm1 = _mm256_setzero_pd();
  for (int j = 0; j < dim; ++j) {
    const __m256d qj = _mm256_broadcast_sd(query + j);
    const double* lane = block + static_cast<std::size_t>(j) * kBlockRows;
    const __m256d x0 = _mm256_load_pd(lane);
    const __m256d x1 = _mm256_load_pd(lane + 4);
    dot0 = _mm256_fmadd_pd(qj, x0, dot0);
    dot1 = _mm256_fmadd_pd(qj, x1, dot1);
    norm0 = _mm256_fmadd_pd(x0, x0, norm0);
    norm1 = _mm256_fmadd_pd(x1, x1, norm1);
  }
  _mm256_storeu_pd(dot8, dot0);
  _mm256_storeu_pd(dot8 + 4, dot1);
  _mm256_storeu_pd(norm8, norm0);
  _mm256_storeu_pd(norm8 + 4, norm1);
}

void VaLowerBoundBlock(const double* cell_table, int cells,
                       const uint8_t* sig_block, int dim, double* out8) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  // All-lanes mask + explicit zero source: the plain 3-arg gather leaves
  // its pass-through operand undefined, which trips -Wmaybe-uninitialized
  // inside avx2intrin.h on GCC.
  const __m256d all = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
  const __m256d zero = _mm256_setzero_pd();
  for (int j = 0; j < dim; ++j) {
    const __m128i bytes = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(
        sig_block + static_cast<std::size_t>(j) * kBlockRows));
    const __m128i lo = _mm_cvtepu8_epi32(bytes);
    const __m128i hi = _mm_cvtepu8_epi32(_mm_srli_si128(bytes, 4));
    const double* table = cell_table + static_cast<std::size_t>(j) * cells;
    acc0 = _mm256_add_pd(acc0,
                         _mm256_mask_i32gather_pd(zero, table, lo, all, 8));
    acc1 = _mm256_add_pd(acc1,
                         _mm256_mask_i32gather_pd(zero, table, hi, all, 8));
  }
  _mm256_storeu_pd(out8, acc0);
  _mm256_storeu_pd(out8 + 4, acc1);
}

}  // namespace

const KernelTable& Avx2Kernels() {
  static const KernelTable table = {
      /*squared_distance=*/SquaredDistanceBlock,
      /*squared_distance_fma=*/SquaredDistanceBlockFma,
      /*dot=*/DotBlock,
      /*dot_fma=*/DotBlockFma,
      /*dot_norm=*/DotNormBlock,
      /*dot_norm_fma=*/DotNormBlockFma,
      /*va_lower_bound=*/VaLowerBoundBlock,
  };
  return table;
}

#else  // !GEACC_HAVE_AVX2

const KernelTable& Avx2Kernels() {
  GEACC_CHECK(false) << "AVX2 kernels were not compiled into this binary";
  return ScalarKernels();  // unreachable
}

#endif  // GEACC_HAVE_AVX2

}  // namespace geacc::simd::internal
