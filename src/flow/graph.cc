#include "flow/graph.h"

#include "util/memory.h"

namespace geacc {

FlowGraph::FlowGraph(int num_nodes) {
  GEACC_CHECK_GE(num_nodes, 0);
  adjacency_.resize(num_nodes);
}

int FlowGraph::AddArc(int from, int to, int64_t capacity, double cost) {
  GEACC_CHECK(from >= 0 && from < num_nodes()) << "bad tail " << from;
  GEACC_CHECK(to >= 0 && to < num_nodes()) << "bad head " << to;
  GEACC_CHECK_GE(capacity, 0);
  const int forward = num_arcs();
  heads_.push_back(to);
  costs_.push_back(cost);
  residual_.push_back(capacity);
  adjacency_[from].push_back(forward);
  heads_.push_back(from);
  costs_.push_back(-cost);
  residual_.push_back(0);
  adjacency_[to].push_back(forward + 1);
  if (cost < 0.0) has_negative_cost_ = true;
  return forward;
}

uint64_t FlowGraph::ByteEstimate() const {
  uint64_t bytes = VectorBytes(heads_) + VectorBytes(costs_) +
                   VectorBytes(residual_);
  for (const auto& list : adjacency_) bytes += VectorBytes(list);
  return bytes;
}

}  // namespace geacc
