#include "simd/simd.h"

#include <atomic>

namespace geacc::simd {
namespace {

// -1 = no override; else a Level value.
std::atomic<int> g_override{-1};

Level BestSupportedLevel() {
  return CpuSupportsAvx2() ? Level::kAvx2 : Level::kScalar;
}

}  // namespace

bool CpuSupportsAvx2() {
#if defined(GEACC_HAVE_AVX2) && (defined(__x86_64__) || defined(__i386__))
  static const bool supported = __builtin_cpu_supports("avx2");
  return supported;
#else
  return false;
#endif
}

Level ActiveLevel() {
  const int forced = g_override.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Level>(forced);
  static const Level best = BestSupportedLevel();
  return best;
}

const char* LevelName(Level level) {
  switch (level) {
    case Level::kAvx2:
      return "avx2";
    case Level::kScalar:
      return "scalar";
  }
  return "unknown";
}

bool SetDispatchOverride(const std::string& mode, std::string* error) {
  if (mode == "auto" || mode.empty()) {
    g_override.store(-1, std::memory_order_relaxed);
    return true;
  }
  if (mode == "scalar") {
    g_override.store(static_cast<int>(Level::kScalar),
                     std::memory_order_relaxed);
    return true;
  }
  if (mode == "avx2") {
    if (!CpuSupportsAvx2()) {
      if (error != nullptr) {
        *error = "--simd=avx2 requested but this binary/CPU has no AVX2";
      }
      return false;
    }
    g_override.store(static_cast<int>(Level::kAvx2),
                     std::memory_order_relaxed);
    return true;
  }
  if (error != nullptr) {
    *error = "unknown simd mode '" + mode +
             "' (expected auto, avx2, or scalar)";
  }
  return false;
}

}  // namespace geacc::simd
