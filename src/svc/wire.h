// Binary framing for the arrangement service's TCP protocol
// (DESIGN.md §11).
//
// Every message travels as one length-prefixed frame:
//
//   u32 length (LE) | u8 version | u8 type | body
//
// where `length` counts everything after itself (version byte included)
// and is capped at kMaxFrameBytes so a hostile peer cannot make either
// side allocate unbounded memory. Integers are little-endian two's
// complement; doubles are IEEE-754 bit patterns memcpy'd through a u64.
//
// Mutations ride the wire as their trace_io text line (io/trace_io
// FormatMutationLine / ParseMutationLine) inside a kMutate frame — one
// mutation codec for trace files, the WAL, and the network, so hardening
// the parser hardens all three.
//
// Decoding is strict: unknown version or type, truncated bodies, trailing
// bytes, and out-of-bounds counts all fail with a diagnostic instead of
// guessing. Encode*Frame produce full frames (length prefix included);
// Decode* consume exactly the bytes after the prefix, which is what a
// socket loop that reads the prefix first naturally has in hand.

#ifndef GEACC_SVC_WIRE_H_
#define GEACC_SVC_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "svc/service.h"
#include "svc/snapshot.h"

namespace geacc::svc {

inline constexpr uint8_t kWireVersion = 1;

// Hard cap on `length`: bodies are id lists and one-line mutations, so
// 1 MiB is generous headroom, not a real limit.
inline constexpr uint32_t kMaxFrameBytes = 1 << 20;

enum class MsgType : uint8_t {
  // Requests.
  kPing = 1,
  kGetAssignments = 2,  // body: i32 user
  kGetAttendees = 3,    // body: i32 event
  kTopK = 4,            // body: i32 user, i32 k
  kStats = 5,
  kMutate = 6,  // body: u32 len, trace_io mutation line (no newline)

  // Responses.
  kPong = 64,
  kIdList = 65,      // body: u32 count, count × i32
  kScoredList = 66,  // body: u32 count, count × (i32 id, f64 similarity)
  kStatsReply = 67,  // body: ServiceStatsView fields, fixed layout
  kMutateAck = 68,   // body: i64 ticket
  kOverloaded = 69,  // queue full — retry later
  kError = 70,       // body: u32 len, diagnostic bytes
};

const char* MsgTypeName(MsgType type);

// One decoded request. Only the fields for `type` are meaningful: `id`
// for GetAssignments/GetAttendees/TopK, `k` for TopK, `payload` (the
// mutation line) for Mutate.
struct WireRequest {
  MsgType type = MsgType::kPing;
  int32_t id = -1;
  int32_t k = 0;
  std::string payload;
};

// One decoded response; per-type fields as in WireRequest. `stats` for
// kStatsReply, `ids` for kIdList, `scored` for kScoredList, `ticket` for
// kMutateAck, `message` for kError.
struct WireResponse {
  MsgType type = MsgType::kPong;
  std::vector<int32_t> ids;
  std::vector<ScoredEvent> scored;
  ServiceStatsView stats;
  int64_t ticket = -1;
  std::string message;
};

// Serialize a full frame, length prefix included, ready for write().
std::string EncodeRequestFrame(const WireRequest& request);
std::string EncodeResponseFrame(const WireResponse& response);

// Parse the bytes *after* the length prefix (version | type | body).
// False with a diagnostic on any malformation; `out` is unspecified then.
bool DecodeRequest(const uint8_t* data, size_t size, WireRequest* out,
                   std::string* error = nullptr);
bool DecodeResponse(const uint8_t* data, size_t size, WireResponse* out,
                    std::string* error = nullptr);

}  // namespace geacc::svc

#endif  // GEACC_SVC_WIRE_H_
