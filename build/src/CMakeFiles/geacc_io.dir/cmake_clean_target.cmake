file(REMOVE_RECURSE
  "libgeacc_io.a"
)
