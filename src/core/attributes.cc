#include "core/attributes.h"

namespace geacc {

AttributeMatrix AttributeMatrix::FromRows(
    const std::vector<std::vector<double>>& rows) {
  const int n = static_cast<int>(rows.size());
  const int dim = n == 0 ? 0 : static_cast<int>(rows[0].size());
  AttributeMatrix matrix(n, dim);
  for (int i = 0; i < n; ++i) {
    GEACC_CHECK_EQ(static_cast<int>(rows[i].size()), dim)
        << "ragged attribute rows";
    double* out = matrix.MutableRow(i);
    for (int j = 0; j < dim; ++j) out[j] = rows[i][j];
  }
  return matrix;
}

void AttributeMatrix::AppendRow(const std::vector<double>& row) {
  GEACC_CHECK_EQ(static_cast<int>(row.size()), dim_)
      << "appended row has the wrong dimensionality";
  data_.insert(data_.end(), row.begin(), row.end());
  ++rows_;
}

double SquaredEuclideanDistance(const double* a, const double* b, int dim) {
  double sum = 0.0;
  for (int j = 0; j < dim; ++j) {
    const double diff = a[j] - b[j];
    sum += diff * diff;
  }
  return sum;
}

}  // namespace geacc
