// Paged-checkpoint recovery (DESIGN.md §14): checkpoint + WAL-suffix
// replay must land on the exact state full WAL replay lands on — same
// pairs, bit-identical MaxSum — and keep doing so as the recovered
// service continues serving. Torn checkpoints degrade to full replay.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "dyn/mutation.h"
#include "gen/synthetic.h"
#include "obs/stats.h"
#include "svc/service.h"
#include "svc/snapshot.h"
#include "util/rng.h"

namespace geacc::svc {
namespace {

Instance SmallInstance(uint64_t seed = 3) {
  SyntheticConfig config;
  config.num_events = 10;
  config.num_users = 50;
  config.dim = 3;
  config.seed = seed;
  return GenerateSynthetic(config);
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::vector<std::pair<UserId, EventId>> SnapshotPairs(
    const ServiceSnapshot& snapshot) {
  std::vector<std::pair<UserId, EventId>> pairs;
  for (UserId u = 0; u < snapshot.user_slots(); ++u) {
    for (const EventId v : snapshot.AssignmentsOf(u)) pairs.emplace_back(u, v);
  }
  return pairs;
}

void DriveMutations(ArrangementService* service, int count, uint64_t seed) {
  Rng rng(seed);
  for (int i = 0; i < count; ++i) {
    switch (rng.UniformInt(0, 3)) {
      case 0:
        service->Submit(Mutation::SetUserCapacity(rng.UniformInt(0, 49),
                                                  rng.UniformInt(1, 4)));
        break;
      case 1:
        service->Submit(Mutation::SetEventCapacity(rng.UniformInt(0, 9),
                                                   rng.UniformInt(1, 40)));
        break;
      case 2:
        service->Submit(Mutation::AddUser(
            {rng.UniformReal(0, 10000), rng.UniformReal(0, 10000),
             rng.UniformReal(0, 10000)},
            rng.UniformInt(1, 3)));
        break;
      default:
        service->Submit(
            Mutation::AddConflict(rng.UniformInt(0, 9), rng.UniformInt(0, 9)));
        break;
    }
    // Small batches → many published batches → several checkpoints.
    if (i % 7 == 0) service->Flush();
  }
  service->Flush();
}

struct FinalState {
  std::vector<std::pair<UserId, EventId>> pairs;
  double max_sum = 0.0;
  int64_t epoch = 0;
};

FinalState StateOf(const ArrangementService& service) {
  const auto snapshot = service.snapshot();
  return {SnapshotPairs(*snapshot), snapshot->max_sum(), snapshot->epoch()};
}

ServiceOptions DurableOptions(const std::string& tag) {
  ServiceOptions options;
  options.wal_path = TempPath(tag + ".wal");
  options.paged_checkpoint_path = TempPath(tag + ".ckpt");
  options.checkpoint_interval_batches = 2;  // checkpoint often
  options.checkpoint_page_size = 512;
  options.batch_size = 8;
  return options;
}

void CleanUp(const ServiceOptions& options) {
  std::remove(options.wal_path.c_str());
  std::remove(options.paged_checkpoint_path.c_str());
}

TEST(PagedCheckpointRecovery, MatchesFullReplayBitForBit) {
  const ServiceOptions options = DurableOptions("svc_paged_recover");
  const Instance instance = SmallInstance(21);
  FinalState before;
  {
    ArrangementService service(instance, options);
    DriveMutations(&service, 150, 77);
    before = StateOf(service);
  }

  // Fast path: checkpoint + suffix.
  std::string error;
  const int64_t recoveries_before =
      obs::StatsRegistry::Global().CounterValue("svc.ckpt.recoveries");
  auto fast = ArrangementService::Recover(options, &error);
  ASSERT_NE(fast, nullptr) << error;
  EXPECT_EQ(obs::StatsRegistry::Global().CounterValue("svc.ckpt.recoveries"),
            recoveries_before + 1)
      << "recovery did not take the checkpoint fast path";
  const FinalState fast_state = StateOf(*fast);
  EXPECT_EQ(fast_state.pairs, before.pairs);
  EXPECT_EQ(fast_state.max_sum, before.max_sum);
  EXPECT_EQ(fast_state.epoch, before.epoch);

  // Full replay (checkpoint disabled) must agree bit for bit.
  ServiceOptions replay_options = options;
  replay_options.paged_checkpoint_path.clear();
  auto slow = ArrangementService::Recover(replay_options, &error);
  ASSERT_NE(slow, nullptr) << error;
  const FinalState slow_state = StateOf(*slow);
  EXPECT_EQ(slow_state.pairs, fast_state.pairs);
  EXPECT_EQ(slow_state.max_sum, fast_state.max_sum);
  EXPECT_EQ(slow_state.epoch, fast_state.epoch);

  // Both recovered services keep applying identically.
  slow->Stop();
  DriveMutations(fast.get(), 40, 99);
  const FinalState continued = StateOf(*fast);
  fast->Stop();
  auto third = ArrangementService::Recover(options, &error);
  ASSERT_NE(third, nullptr) << error;
  const FinalState third_state = StateOf(*third);
  EXPECT_EQ(third_state.pairs, continued.pairs);
  EXPECT_EQ(third_state.max_sum, continued.max_sum);
  third->Stop();
  CleanUp(options);
}

TEST(PagedCheckpointRecovery, TornCheckpointFallsBackToFullReplay) {
  const ServiceOptions options = DurableOptions("svc_paged_torn");
  const Instance instance = SmallInstance(22);
  FinalState before;
  {
    ArrangementService service(instance, options);
    DriveMutations(&service, 80, 11);
    before = StateOf(service);
  }

  // Corrupt the checkpoint's data pages wholesale.
  {
    std::fstream f(options.paged_checkpoint_path,
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(2 * 512 + 40);
    for (int i = 0; i < 64; ++i) f.put('\xDE');
  }

  std::string error;
  auto recovered = ArrangementService::Recover(options, &error);
  ASSERT_NE(recovered, nullptr) << error;  // degraded, not dead
  const FinalState state = StateOf(*recovered);
  EXPECT_EQ(state.pairs, before.pairs);
  EXPECT_EQ(state.max_sum, before.max_sum);
  EXPECT_EQ(state.epoch, before.epoch);
  recovered->Stop();
  CleanUp(options);
}

TEST(PagedCheckpointRecovery, MissingCheckpointFileFallsBackToFullReplay) {
  const ServiceOptions options = DurableOptions("svc_paged_missing");
  const Instance instance = SmallInstance(23);
  FinalState before;
  {
    ArrangementService service(instance, options);
    DriveMutations(&service, 60, 13);
    before = StateOf(service);
  }
  std::remove(options.paged_checkpoint_path.c_str());

  std::string error;
  auto recovered = ArrangementService::Recover(options, &error);
  ASSERT_NE(recovered, nullptr) << error;
  const FinalState state = StateOf(*recovered);
  EXPECT_EQ(state.pairs, before.pairs);
  EXPECT_EQ(state.max_sum, before.max_sum);
  recovered->Stop();
  CleanUp(options);
}

TEST(PagedCheckpointRecovery, SuffixOnlyReplayAfterStopCheckpoint) {
  // Stop() writes a final checkpoint covering every WAL mutation, so the
  // next recovery replays an empty suffix — applied_seq equals the WAL
  // mutation count exactly.
  const ServiceOptions options = DurableOptions("svc_paged_suffix");
  const Instance instance = SmallInstance(24);
  {
    ArrangementService service(instance, options);
    DriveMutations(&service, 50, 15);
  }

  std::string error;
  auto store = PagedCheckpointStore::Open(options.paged_checkpoint_path, 512,
                                          &error);
  ASSERT_NE(store, nullptr) << error;
  ServiceState state;
  int64_t applied = -1;
  ASSERT_TRUE(store->Read(&state, &applied, &error)) << error;
  std::optional<WalContents> wal = ReadWal(options.wal_path, &error);
  ASSERT_TRUE(wal.has_value()) << error;
  EXPECT_EQ(applied, static_cast<int64_t>(wal->mutations.size()));
  CleanUp(options);
}

}  // namespace
}  // namespace geacc::svc
