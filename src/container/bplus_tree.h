// In-memory B+-tree: sorted multi-key container with linked leaves.
//
// The substrate behind IDistanceIndex — the paper's citation [7] describes
// iDistance as "an adaptive B+-tree based indexing method", keying every
// point by pivot_id · C + distance and answering kNN queries with
// bidirectional leaf scans around a search key. This tree provides exactly
// that access pattern: LowerBound/UpperBound positioning plus
// bidirectional iteration over doubly-linked leaves.
//
// Properties:
//   * duplicate keys allowed (Insert places new equal keys after existing
//     ones; BulkLoad preserves the input order of equal keys);
//   * BulkLoad builds packed leaves from sorted input in O(n);
//   * Insert splits upward, standard B+-tree;
//   * iterators are bidirectional and remain valid until the next
//     mutation.
//
// Iterator invalidation contract: ANY mutation (Insert, BulkLoad)
// invalidates ALL outstanding iterators, including end(). Leaf splits
// move entries between nodes and BulkLoad frees the whole node graph, so
// a stale iterator is not merely mispositioned — it dangles. Re-acquire
// positions via LowerBound/UpperBound after mutating; for key-ordered
// cursors that must survive interleaved inserts, re-seek with
// UpperBound(last_key_seen). Debug builds enforce the contract: every
// iterator carries the tree's mutation version at creation and
// GEACC_DCHECK-fails on any dereference or step after the version moved
// (tests/bplus_cursor_fuzz_test.cc). Release builds carry no stamp cost
// beyond the extra word per iterator. The paged sibling
// (storage/paged_bplus_tree.h) is immutable after Build() and needs no
// such contract.
//
// Header-only because it is templated; deliberately free of GEACC types so
// it is reusable (and testable against std::multimap).

#ifndef GEACC_CONTAINER_BPLUS_TREE_H_
#define GEACC_CONTAINER_BPLUS_TREE_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "util/check.h"

namespace geacc {

template <typename Key, typename Value, int kFanout = 64>
class BPlusTree {
  static_assert(kFanout >= 4, "fanout must be at least 4");

 private:
  struct Node {
    explicit Node(bool leaf) : is_leaf(leaf) {}
    virtual ~Node() = default;
    bool is_leaf;
  };

  struct Leaf final : Node {
    Leaf() : Node(true) {}
    std::vector<Key> keys;
    std::vector<Value> values;
    Leaf* prev = nullptr;
    Leaf* next = nullptr;
  };

  struct Internal final : Node {
    Internal() : Node(false) {}
    // children.size() == separators.size() + 1. separators[i] is the
    // smallest key stored under children[i + 1]; descent goes right past
    // every separator <= key (so equal keys are found by the leaf scan,
    // which also walks back across leaf boundaries for LowerBound).
    std::vector<Key> separators;
    std::vector<Node*> children;
  };

 public:
  BPlusTree() = default;

  // Non-copyable (node graph), movable.
  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;
  BPlusTree(BPlusTree&&) = default;
  BPlusTree& operator=(BPlusTree&&) = default;

  int64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Height of the tree (0 when empty, 1 = a single leaf).
  int height() const { return height_; }

  uint64_t ByteEstimate() const { return byte_estimate_; }

  // Replaces the contents with `entries`, which must be sorted by key.
  void BulkLoad(const std::vector<std::pair<Key, Value>>& entries);

  // Inserts one entry.
  void Insert(const Key& key, const Value& value);

  class ConstIterator {
   public:
    ConstIterator() = default;

    const Key& key() const {
      DcheckNotInvalidated();
      return leaf_->keys[index_];
    }
    const Value& value() const {
      DcheckNotInvalidated();
      return leaf_->values[index_];
    }

    // Advances toward larger keys. Must not be end().
    ConstIterator& operator++() {
      DcheckNotInvalidated();
      GEACC_DCHECK(leaf_ != nullptr);
      if (++index_ >= static_cast<int>(leaf_->keys.size())) {
        leaf_ = leaf_->next;
        index_ = 0;
      }
      return *this;
    }

    // Retreats toward smaller keys. Must not be begin(); decrementing
    // end() yields the last element.
    ConstIterator& operator--() {
      DcheckNotInvalidated();
      if (leaf_ == nullptr) {
        leaf_ = tree_->last_leaf_;
        GEACC_DCHECK(leaf_ != nullptr) << "decremented end() of empty tree";
        index_ = static_cast<int>(leaf_->keys.size()) - 1;
        return *this;
      }
      if (--index_ < 0) {
        leaf_ = leaf_->prev;
        GEACC_DCHECK(leaf_ != nullptr) << "decremented begin()";
        index_ = static_cast<int>(leaf_->keys.size()) - 1;
      }
      return *this;
    }

    bool operator==(const ConstIterator& other) const {
      return leaf_ == other.leaf_ &&
             (leaf_ == nullptr || index_ == other.index_);
    }
    bool operator!=(const ConstIterator& other) const {
      return !(*this == other);
    }

   private:
    friend class BPlusTree;

    ConstIterator(const BPlusTree* tree, const Leaf* leaf, int index)
        : tree_(tree), leaf_(leaf), index_(index), version_(tree->version_) {}

    // The contract above, enforced where GEACC_DCHECK is live: a stamp
    // mismatch means this iterator survived a mutation.
    void DcheckNotInvalidated() const {
      GEACC_DCHECK(tree_ == nullptr || version_ == tree_->version_)
          << "B+-tree iterator used after a mutation invalidated it";
    }

    const BPlusTree* tree_ = nullptr;
    const Leaf* leaf_ = nullptr;  // nullptr = end()
    int index_ = 0;
    uint64_t version_ = 0;  // tree_->version_ at creation
  };

  ConstIterator begin() const { return ConstIterator(this, first_leaf_, 0); }
  ConstIterator end() const { return ConstIterator(this, nullptr, 0); }

  // First position with key() >= key (end() if none).
  ConstIterator LowerBound(const Key& key) const {
    return Bound(key, /*strictly_greater=*/false);
  }
  // First position with key() > key (end() if none).
  ConstIterator UpperBound(const Key& key) const {
    return Bound(key, /*strictly_greater=*/true);
  }

  // Structural invariant check (tests).
  void DebugValidate() const;

 private:
  Leaf* NewLeaf() {
    nodes_.push_back(std::make_unique<Leaf>());
    byte_estimate_ += sizeof(Leaf) + kFanout * (sizeof(Key) + sizeof(Value));
    return static_cast<Leaf*>(nodes_.back().get());
  }

  Internal* NewInternal() {
    nodes_.push_back(std::make_unique<Internal>());
    byte_estimate_ +=
        sizeof(Internal) + kFanout * (sizeof(Key) + sizeof(Node*));
    return static_cast<Internal*>(nodes_.back().get());
  }

  void Clear() {
    nodes_.clear();
    root_ = nullptr;
    first_leaf_ = nullptr;
    last_leaf_ = nullptr;
    size_ = 0;
    height_ = 0;
    byte_estimate_ = 0;
  }

  // Descends to the leaf whose range covers `key` (rightmost leaf whose
  // head is <= key).
  const Leaf* FindLeaf(const Key& key) const {
    const Node* node = root_;
    if (node == nullptr) return nullptr;
    while (!node->is_leaf) {
      const auto* internal = static_cast<const Internal*>(node);
      size_t child = 0;
      while (child < internal->separators.size() &&
             !(key < internal->separators[child])) {
        ++child;  // separator <= key: go right of it
      }
      node = internal->children[child];
    }
    return static_cast<const Leaf*>(node);
  }

  ConstIterator Bound(const Key& key, bool strictly_greater) const {
    const Leaf* leaf = FindLeaf(key);
    if (leaf == nullptr) return end();
    // For LowerBound, equal keys may extend into preceding leaves when a
    // separator equals `key`; walk back while the previous leaf still
    // ends with a qualifying key.
    if (!strictly_greater) {
      while (leaf->prev != nullptr && !leaf->prev->keys.empty() &&
             !(leaf->prev->keys.back() < key)) {
        leaf = leaf->prev;
      }
    }
    while (leaf != nullptr) {
      const auto& keys = leaf->keys;
      const auto it =
          strictly_greater
              ? std::upper_bound(keys.begin(), keys.end(), key)
              : std::lower_bound(keys.begin(), keys.end(), key);
      if (it != keys.end()) {
        return ConstIterator(this, leaf,
                             static_cast<int>(it - keys.begin()));
      }
      leaf = leaf->next;
    }
    return end();
  }

  // All nodes owned here; raw pointers elsewhere are non-owning.
  std::vector<std::unique_ptr<Node>> nodes_;
  Node* root_ = nullptr;
  Leaf* first_leaf_ = nullptr;
  Leaf* last_leaf_ = nullptr;
  int64_t size_ = 0;
  int height_ = 0;
  uint64_t byte_estimate_ = 0;
  uint64_t version_ = 0;  // mutation count; stamps iterators (see above)
};

template <typename Key, typename Value, int kFanout>
void BPlusTree<Key, Value, kFanout>::BulkLoad(
    const std::vector<std::pair<Key, Value>>& entries) {
  ++version_;  // invalidate all outstanding iterators
  Clear();
  for (size_t i = 1; i < entries.size(); ++i) {
    GEACC_DCHECK(!(entries[i].first < entries[i - 1].first))
        << "BulkLoad input must be sorted";
  }
  if (entries.empty()) return;
  size_ = static_cast<int64_t>(entries.size());

  // Pack leaves to ~7/8 fullness so later Inserts have slack.
  const int per_leaf = std::max(2, kFanout * 7 / 8);
  std::vector<Node*> level;
  std::vector<Key> level_heads;  // smallest key under each node
  Leaf* previous = nullptr;
  for (size_t start = 0; start < entries.size();
       start += static_cast<size_t>(per_leaf)) {
    Leaf* leaf = NewLeaf();
    const size_t stop =
        std::min(entries.size(), start + static_cast<size_t>(per_leaf));
    for (size_t i = start; i < stop; ++i) {
      leaf->keys.push_back(entries[i].first);
      leaf->values.push_back(entries[i].second);
    }
    leaf->prev = previous;
    if (previous != nullptr) previous->next = leaf;
    previous = leaf;
    if (first_leaf_ == nullptr) first_leaf_ = leaf;
    level.push_back(leaf);
    level_heads.push_back(leaf->keys.front());
  }
  last_leaf_ = previous;
  height_ = 1;

  // Build internal levels bottom-up.
  while (level.size() > 1) {
    std::vector<Node*> parents;
    std::vector<Key> parent_heads;
    for (size_t start = 0; start < level.size();
         start += static_cast<size_t>(kFanout)) {
      Internal* parent = NewInternal();
      const size_t stop =
          std::min(level.size(), start + static_cast<size_t>(kFanout));
      for (size_t i = start; i < stop; ++i) {
        parent->children.push_back(level[i]);
        if (i > start) parent->separators.push_back(level_heads[i]);
      }
      parents.push_back(parent);
      parent_heads.push_back(level_heads[start]);
    }
    level = std::move(parents);
    level_heads = std::move(parent_heads);
    ++height_;
  }
  root_ = level.front();
}

template <typename Key, typename Value, int kFanout>
void BPlusTree<Key, Value, kFanout>::Insert(const Key& key,
                                            const Value& value) {
  ++version_;  // invalidate all outstanding iterators
  if (root_ == nullptr) {
    Leaf* leaf = NewLeaf();
    leaf->keys.push_back(key);
    leaf->values.push_back(value);
    root_ = leaf;
    first_leaf_ = last_leaf_ = leaf;
    size_ = 1;
    height_ = 1;
    return;
  }

  // Descend, remembering the path. Equal separators go right so the new
  // entry lands after existing equal keys.
  std::vector<Internal*> path;
  std::vector<int> path_child;
  Node* node = root_;
  while (!node->is_leaf) {
    auto* internal = static_cast<Internal*>(node);
    int child = 0;
    while (child < static_cast<int>(internal->separators.size()) &&
           !(key < internal->separators[child])) {
      ++child;
    }
    path.push_back(internal);
    path_child.push_back(child);
    node = internal->children[child];
  }
  auto* leaf = static_cast<Leaf*>(node);

  // Position within the leaf: after all keys <= key.
  const auto position = std::upper_bound(leaf->keys.begin(),
                                         leaf->keys.end(), key) -
                        leaf->keys.begin();
  leaf->keys.insert(leaf->keys.begin() + position, key);
  leaf->values.insert(leaf->values.begin() + position, value);
  ++size_;
  if (static_cast<int>(leaf->keys.size()) <= kFanout) return;

  // Split the leaf.
  Leaf* right = NewLeaf();
  const int half = static_cast<int>(leaf->keys.size()) / 2;
  right->keys.assign(leaf->keys.begin() + half, leaf->keys.end());
  right->values.assign(leaf->values.begin() + half, leaf->values.end());
  leaf->keys.resize(half);
  leaf->values.resize(half);
  right->next = leaf->next;
  right->prev = leaf;
  if (leaf->next != nullptr) leaf->next->prev = right;
  leaf->next = right;
  if (last_leaf_ == leaf) last_leaf_ = right;

  Key separator = right->keys.front();
  Node* new_child = right;
  // Propagate splits upward.
  for (int depth = static_cast<int>(path.size()) - 1; depth >= 0; --depth) {
    Internal* parent = path[depth];
    const int child = path_child[depth];
    parent->separators.insert(parent->separators.begin() + child, separator);
    parent->children.insert(parent->children.begin() + child + 1, new_child);
    if (static_cast<int>(parent->children.size()) <= kFanout) return;
    // Split the internal node; the middle separator moves up.
    Internal* right_internal = NewInternal();
    const int mid = static_cast<int>(parent->separators.size()) / 2;
    const Key promoted = parent->separators[mid];
    right_internal->separators.assign(parent->separators.begin() + mid + 1,
                                      parent->separators.end());
    right_internal->children.assign(parent->children.begin() + mid + 1,
                                    parent->children.end());
    parent->separators.resize(mid);
    parent->children.resize(mid + 1);
    separator = promoted;
    new_child = right_internal;
  }
  // Root split.
  Internal* new_root = NewInternal();
  new_root->separators.push_back(separator);
  new_root->children.push_back(root_);
  new_root->children.push_back(new_child);
  root_ = new_root;
  ++height_;
}

template <typename Key, typename Value, int kFanout>
void BPlusTree<Key, Value, kFanout>::DebugValidate() const {
  int64_t counted = 0;
  const Leaf* leaf = first_leaf_;
  const Leaf* previous = nullptr;
  while (leaf != nullptr) {
    GEACC_CHECK(leaf->prev == previous);
    GEACC_CHECK_EQ(leaf->keys.size(), leaf->values.size());
    for (size_t i = 1; i < leaf->keys.size(); ++i) {
      GEACC_CHECK(!(leaf->keys[i] < leaf->keys[i - 1]));
    }
    if (previous != nullptr && !previous->keys.empty() &&
        !leaf->keys.empty()) {
      GEACC_CHECK(!(leaf->keys.front() < previous->keys.back()));
    }
    counted += static_cast<int64_t>(leaf->keys.size());
    previous = leaf;
    leaf = leaf->next;
  }
  GEACC_CHECK(previous == last_leaf_);
  GEACC_CHECK_EQ(counted, size_);
}

}  // namespace geacc

#endif  // GEACC_CONTAINER_BPLUS_TREE_H_
