# Empty compiler generated dependencies file for golden_paper_example_test.
# This may be replaced when dependencies are built.
