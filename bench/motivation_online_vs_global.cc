// Motivation experiment (paper Section I): what does the *global* view buy
// over per-arrival assignment?
//
// The paper argues that existing EBSNs arrange each event/user in
// isolation, yielding infeasible or redundant recommendations. This bench
// quantifies the claim on Table III workloads: the online user-at-a-time
// baseline (users commit greedily as they arrive) versus the paper's
// global solvers, across conflict densities, with the two-sided quality
// metrics (seat utilization, user coverage, fairness).

#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "algo/solvers.h"
#include "exp/metrics.h"
#include "gen/synthetic.h"
#include "util/string_util.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  geacc::bench::CommonFlags common;
  geacc::FlagSet flags;
  common.Register(flags);
  flags.Parse(argc, argv);
  geacc::bench::RequireSerial(common, "motivation_online_vs_global");
  geacc::bench::ReportContext report("motivation_online_vs_global", flags,
                                     common);

  const std::vector<std::string> solver_names = common.SolverList(
      {"online-greedy", "greedy", "mincostflow", "random-u"});

  geacc::Table max_sum("Motivation: MaxSum, online arrival vs global view");
  geacc::Table coverage("Motivation: fraction of users with >=1 event");
  geacc::Table fairness("Motivation: Jain fairness of attained interest");
  std::vector<std::string> header = {"rho"};
  for (const auto& name : solver_names) header.push_back(name);
  max_sum.SetHeader(header);
  coverage.SetHeader(header);
  fairness.SetHeader(header);

  for (const double density : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    std::vector<double> sums(solver_names.size(), 0.0);
    std::vector<double> covs(solver_names.size(), 0.0);
    std::vector<double> jains(solver_names.size(), 0.0);
    std::vector<double> times(solver_names.size(), 0.0);
    std::vector<double> cpus(solver_names.size(), 0.0);
    std::vector<std::map<std::string, int64_t>> counters(solver_names.size());
    for (int rep = 0; rep < common.reps; ++rep) {
      geacc::SyntheticConfig synth;  // Table III defaults
      synth.conflict_density = density;
      synth.seed = static_cast<uint64_t>(common.seed) + rep * 7919;
      const geacc::Instance instance = geacc::GenerateSynthetic(synth);
      for (size_t s = 0; s < solver_names.size(); ++s) {
        const auto solver = geacc::CreateSolver(solver_names[s]);
        const geacc::obs::StatsScope scope;
        const geacc::WallTimer wall;
        const geacc::CpuTimer cpu;
        const auto result = solver->Solve(instance);
        times[s] += wall.Seconds();
        cpus[s] += cpu.Seconds();
        for (const auto& [counter, value] : scope.Harvest().counters) {
          counters[s][counter] += value;
        }
        GEACC_CHECK(result.arrangement.Validate(instance).empty());
        const geacc::ArrangementMetrics metrics =
            geacc::ComputeMetrics(instance, result.arrangement);
        sums[s] += metrics.max_sum;
        covs[s] += metrics.user_coverage;
        jains[s] += metrics.jain_fairness;
      }
    }
    const std::string label = geacc::StrFormat("%.2f", density);
    std::vector<std::string> sum_row = {label}, cov_row = {label},
                             jain_row = {label};
    for (size_t s = 0; s < solver_names.size(); ++s) {
      sum_row.push_back(geacc::StrFormat("%.2f", sums[s] / common.reps));
      cov_row.push_back(geacc::StrFormat("%.3f", covs[s] / common.reps));
      jain_row.push_back(geacc::StrFormat("%.3f", jains[s] / common.reps));
    }
    max_sum.AddRow(sum_row);
    coverage.AddRow(cov_row);
    fairness.AddRow(jain_row);

    for (size_t s = 0; s < solver_names.size(); ++s) {
      geacc::obs::BenchPoint point;
      point.label = "rho=" + label;
      point.solver = solver_names[s];
      point.wall_seconds = times[s] / common.reps;
      point.cpu_seconds = cpus[s] / common.reps;
      point.max_sum = sums[s] / common.reps;
      for (const auto& [counter, total] : counters[s]) {
        point.counters[counter] = total / common.reps;
      }
      report.AddPoint(std::move(point));
    }
  }

  max_sum.Print(std::cout);
  coverage.Print(std::cout);
  fairness.Print(std::cout);
  if (common.csv) {
    max_sum.WriteCsv(std::cout);
    coverage.WriteCsv(std::cout);
    fairness.WriteCsv(std::cout);
  }
  report.Write();
  return 0;
}
