file(REMOVE_RECURSE
  "CMakeFiles/scalability_tour.dir/scalability_tour.cpp.o"
  "CMakeFiles/scalability_tour.dir/scalability_tour.cpp.o.d"
  "scalability_tour"
  "scalability_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalability_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
