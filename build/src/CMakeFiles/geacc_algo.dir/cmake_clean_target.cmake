file(REMOVE_RECURSE
  "libgeacc_algo.a"
)
