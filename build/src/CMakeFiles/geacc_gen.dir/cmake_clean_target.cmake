file(REMOVE_RECURSE
  "libgeacc_gen.a"
)
