// Tests for the workload generators: distribution samplers, the Table III
// synthetic generator, and schedule-derived conflicts.

#include <gtest/gtest.h>

#include <cmath>

#include "gen/distributions.h"
#include "gen/schedule.h"
#include "gen/synthetic.h"

namespace geacc {
namespace {

// -------------------------------------------------------- distributions --

TEST(Distributions, UniformRangeAndMean) {
  const Sampler sampler(DistributionSpec::Uniform(2.0, 6.0));
  Rng rng(1);
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double x = sampler.Sample(rng);
    ASSERT_GE(x, 2.0);
    ASSERT_LE(x, 6.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kN, 4.0, 0.05);
}

TEST(Distributions, NormalMoments) {
  const Sampler sampler(DistributionSpec::Normal(25.0, 12.5));
  Rng rng(2);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const double x = sampler.Sample(rng);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kN;
  const double variance = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 25.0, 0.25);
  EXPECT_NEAR(std::sqrt(variance), 12.5, 0.25);
}

TEST(Distributions, ZipfRangeAndSkew) {
  const Sampler sampler(DistributionSpec::Zipf(1.3, 100.0));
  Rng rng(3);
  int64_t rank_one = 0, upper_half = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double x = sampler.Sample(rng);
    ASSERT_GE(x, 1.0);
    ASSERT_LE(x, 100.0);
    ASSERT_DOUBLE_EQ(x, std::floor(x));  // integral ranks
    if (x == 1.0) ++rank_one;
    if (x > 50.0) ++upper_half;
  }
  // With s = 1.3, P(rank 1) ≈ 1/H where H = Σ k^-1.3 ≈ 3.93 → ≈ 25%.
  EXPECT_GT(rank_one, kN / 5);
  EXPECT_LT(upper_half, kN / 10);  // heavy head, light tail
}

TEST(Distributions, ZipfProbabilityRatioMatchesExponent) {
  const Sampler sampler(DistributionSpec::Zipf(2.0, 50.0));
  Rng rng(4);
  int64_t rank1 = 0, rank2 = 0;
  for (int i = 0; i < 100000; ++i) {
    const double x = sampler.Sample(rng);
    if (x == 1.0) ++rank1;
    if (x == 2.0) ++rank2;
  }
  // P(1)/P(2) = 2^2 = 4.
  EXPECT_NEAR(static_cast<double>(rank1) / rank2, 4.0, 0.5);
}

TEST(Distributions, CapacityIsPositiveInteger) {
  // Normal(2, 1) frequently samples below 1; capacities must clamp.
  const Sampler sampler(DistributionSpec::Normal(2.0, 1.0));
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    const int capacity = sampler.SampleCapacity(rng);
    ASSERT_GE(capacity, 1);
  }
}

TEST(Distributions, AttributeClampedToRange) {
  const Sampler sampler(DistributionSpec::Normal(0.0, 100.0));
  Rng rng(6);
  for (int i = 0; i < 5000; ++i) {
    const double x = sampler.SampleAttribute(rng, 50.0);
    ASSERT_GE(x, 0.0);
    ASSERT_LE(x, 50.0);
  }
}

TEST(Distributions, ParseSpecRoundTrip) {
  DistributionSpec spec;
  ASSERT_TRUE(ParseDistributionSpec("uniform:1:50", &spec));
  EXPECT_EQ(spec.kind, DistributionKind::kUniform);
  EXPECT_DOUBLE_EQ(spec.p2, 50.0);
  ASSERT_TRUE(ParseDistributionSpec("normal:25:12.5", &spec));
  EXPECT_EQ(spec.kind, DistributionKind::kNormal);
  ASSERT_TRUE(ParseDistributionSpec("zipf:1.3:10000", &spec));
  EXPECT_EQ(spec.kind, DistributionKind::kZipf);
  EXPECT_FALSE(ParseDistributionSpec("zipf:1.3", &spec));
  EXPECT_FALSE(ParseDistributionSpec("weird:1:2", &spec));
  EXPECT_FALSE(ParseDistributionSpec("uniform:a:b", &spec));
}

TEST(Distributions, DebugStrings) {
  EXPECT_EQ(DistributionSpec::Uniform(1, 50).DebugString(), "uniform[1,50]");
  EXPECT_NE(DistributionSpec::Zipf(1.3, 100).DebugString().find("zipf"),
            std::string::npos);
}

// ------------------------------------------------------------ synthetic --

TEST(Synthetic, DefaultConfigMatchesTableIII) {
  const SyntheticConfig config;
  EXPECT_EQ(config.num_events, 100);
  EXPECT_EQ(config.num_users, 1000);
  EXPECT_EQ(config.dim, 20);
  EXPECT_DOUBLE_EQ(config.max_attribute, 10000.0);
  EXPECT_DOUBLE_EQ(config.conflict_density, 0.25);
}

TEST(Synthetic, GeneratesValidInstanceOfRequestedShape) {
  SyntheticConfig config;
  config.num_events = 30;
  config.num_users = 80;
  config.dim = 5;
  config.seed = 7;
  const Instance instance = GenerateSynthetic(config);
  EXPECT_EQ(instance.num_events(), 30);
  EXPECT_EQ(instance.num_users(), 80);
  EXPECT_EQ(instance.dim(), 5);
  EXPECT_EQ(instance.Validate(), "");
  EXPECT_NEAR(instance.conflicts().Density(), 0.25, 0.01);
  // Capacities within the configured ranges.
  for (EventId v = 0; v < 30; ++v) {
    EXPECT_GE(instance.event_capacity(v), 1);
    EXPECT_LE(instance.event_capacity(v), 50);
  }
  for (UserId u = 0; u < 80; ++u) {
    EXPECT_GE(instance.user_capacity(u), 1);
    EXPECT_LE(instance.user_capacity(u), 4);
  }
}

TEST(Synthetic, DeterministicPerSeed) {
  SyntheticConfig config;
  config.num_events = 10;
  config.num_users = 20;
  config.dim = 4;
  config.seed = 99;
  const Instance a = GenerateSynthetic(config);
  const Instance b = GenerateSynthetic(config);
  config.seed = 100;
  const Instance c = GenerateSynthetic(config);
  double max_diff_ab = 0.0, max_diff_ac = 0.0;
  for (EventId v = 0; v < 10; ++v) {
    for (UserId u = 0; u < 20; ++u) {
      max_diff_ab =
          std::max(max_diff_ab,
                   std::abs(a.Similarity(v, u) - b.Similarity(v, u)));
      max_diff_ac =
          std::max(max_diff_ac,
                   std::abs(a.Similarity(v, u) - c.Similarity(v, u)));
    }
  }
  EXPECT_EQ(max_diff_ab, 0.0);
  EXPECT_GT(max_diff_ac, 0.0);
}

TEST(Synthetic, ZipfVariantSkewsAttributesLow) {
  SyntheticConfig config;
  config.num_events = 50;
  config.num_users = 50;
  config.dim = 10;
  config.WithZipfAttributes();
  const Instance instance = GenerateSynthetic(config);
  // Zipf ranks concentrate near 1, so the mean attribute is far below the
  // uniform mean T/2.
  double sum = 0.0;
  int count = 0;
  const auto& attrs = instance.event_attributes();
  for (int i = 0; i < attrs.rows(); ++i) {
    for (int j = 0; j < attrs.dim(); ++j) {
      sum += attrs.At(i, j);
      ++count;
    }
  }
  EXPECT_LT(sum / count, 0.1 * config.max_attribute);
}

TEST(Synthetic, NormalCapacityVariant) {
  SyntheticConfig config;
  config.num_events = 200;
  config.num_users = 200;
  config.dim = 2;
  config.WithNormalCapacities();
  const Instance instance = GenerateSynthetic(config);
  double mean_cv = 0.0;
  for (EventId v = 0; v < 200; ++v) {
    ASSERT_GE(instance.event_capacity(v), 1);
    mean_cv += instance.event_capacity(v);
  }
  EXPECT_NEAR(mean_cv / 200.0, 25.0, 3.0);
}

TEST(Synthetic, CosineSimilarityOption) {
  SyntheticConfig config;
  config.num_events = 5;
  config.num_users = 5;
  config.dim = 3;
  config.similarity = "cosine";
  const Instance instance = GenerateSynthetic(config);
  EXPECT_EQ(instance.similarity().Name(), "cosine");
}

// ------------------------------------------------------------- schedule --

TEST(Schedule, OverlapConflicts) {
  const ScheduledEvent morning{8.0, 12.0, 0.0, 0.0};
  const ScheduledEvent late_morning{9.0, 11.0, 0.0, 0.0};
  const ScheduledEvent afternoon{13.0, 15.0, 0.0, 0.0};
  EXPECT_TRUE(EventsConflict(morning, late_morning, 0.0));
  EXPECT_FALSE(EventsConflict(morning, afternoon, 0.0));
  // Touching endpoints do not overlap.
  const ScheduledEvent noon{12.0, 13.0, 0.0, 0.0};
  EXPECT_FALSE(EventsConflict(morning, noon, 0.0));
}

TEST(Schedule, TravelTimeConflicts) {
  // 30 km apart, 0.5 h gap: needs 60 km/h; at 40 km/h it conflicts.
  const ScheduledEvent first{9.0, 11.0, 0.0, 0.0};
  const ScheduledEvent second{11.5, 13.0, 30.0, 0.0};
  EXPECT_TRUE(EventsConflict(first, second, 40.0));
  EXPECT_FALSE(EventsConflict(first, second, 80.0));
  EXPECT_TRUE(EventsConflict(second, first, 40.0));  // symmetric
}

TEST(Schedule, GraphFromSchedule) {
  const std::vector<ScheduledEvent> events = {
      {8.0, 12.0, 0.0, 0.0},   // 0: morning at origin
      {9.0, 11.0, 0.0, 0.0},   // 1: overlaps 0
      {13.0, 15.0, 50.0, 0.0}, // 2: afternoon, 50 km away
  };
  const ConflictGraph graph = ConflictsFromSchedule(events, 30.0);
  EXPECT_TRUE(graph.AreConflicting(0, 1));
  // 0 ends 12:00, 2 starts 13:00, 50 km / 30 km/h ≈ 1.67h > 1h gap.
  EXPECT_TRUE(graph.AreConflicting(0, 2));
  // 1 ends 11:00: 2h gap > 1.67h travel.
  EXPECT_FALSE(graph.AreConflicting(1, 2));
}

TEST(Schedule, RandomScheduleWithinHorizon) {
  Rng rng(8);
  const auto events = RandomSchedule(50, 24.0, 1.0, 3.0, 20.0, rng);
  ASSERT_EQ(events.size(), 50u);
  for (const auto& event : events) {
    EXPECT_GE(event.start_hours, 0.0);
    EXPECT_LE(event.end_hours, 24.0 + 1e-9);
    EXPECT_GE(event.end_hours - event.start_hours, 1.0 - 1e-9);
    EXPECT_LE(event.end_hours - event.start_hours, 3.0 + 1e-9);
    EXPECT_GE(event.x_km, 0.0);
    EXPECT_LE(event.y_km, 20.0);
  }
}

}  // namespace
}  // namespace geacc
