# Empty dependencies file for geacc_algo.
# This may be replaced when dependencies are built.
