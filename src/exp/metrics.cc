#include "exp/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/string_util.h"

namespace geacc {

ArrangementMetrics ComputeMetrics(const Instance& instance,
                                  const Arrangement& arrangement) {
  GEACC_CHECK_EQ(instance.num_events(), arrangement.num_events());
  GEACC_CHECK_EQ(instance.num_users(), arrangement.num_users());
  ArrangementMetrics metrics;
  metrics.matched_pairs = arrangement.size();
  metrics.max_sum = arrangement.MaxSum(instance);
  if (metrics.matched_pairs > 0) {
    metrics.mean_matched_similarity =
        metrics.max_sum / static_cast<double>(metrics.matched_pairs);
  }

  const int num_events = instance.num_events();
  if (num_events > 0 && instance.total_event_capacity() > 0) {
    int64_t seats = 0;
    int with_attendees = 0;
    double fill = 0.0;
    for (EventId v = 0; v < num_events; ++v) {
      const int load = arrangement.EventLoad(v);
      seats += load;
      if (load > 0) ++with_attendees;
      fill += static_cast<double>(load) / instance.event_capacity(v);
    }
    metrics.seat_utilization =
        static_cast<double>(seats) /
        static_cast<double>(instance.total_event_capacity());
    metrics.events_with_attendees =
        static_cast<double>(with_attendees) / num_events;
    metrics.mean_event_fill = fill / num_events;
  }

  const int num_users = instance.num_users();
  if (num_users > 0) {
    int covered = 0;
    int64_t load_sum = 0;
    double interest_sum = 0.0, interest_sq_sum = 0.0;
    for (UserId u = 0; u < num_users; ++u) {
      const int load = arrangement.UserLoad(u);
      load_sum += load;
      if (load > 0) ++covered;
      double interest = 0.0;
      for (const EventId v : arrangement.EventsOf(u)) {
        interest += instance.Similarity(v, u);
      }
      interest_sum += interest;
      interest_sq_sum += interest * interest;
    }
    metrics.user_coverage = static_cast<double>(covered) / num_users;
    metrics.mean_user_load = static_cast<double>(load_sum) / num_users;
    if (interest_sq_sum > 0.0) {
      metrics.jain_fairness = interest_sum * interest_sum /
                              (num_users * interest_sq_sum);
    }
  }
  return metrics;
}

std::string ArrangementMetrics::DebugString() const {
  return StrFormat(
      "MaxSum=%.3f pairs=%lld seat_util=%.3f user_cov=%.3f "
      "mean_sim=%.3f jain=%.3f",
      max_sum, (long long)matched_pairs, seat_utilization, user_coverage,
      mean_matched_similarity, jain_fairness);
}

void LatencyRecorder::Record(double seconds) {
  GEACC_CHECK_GE(seconds, 0.0);
  if (!samples_.empty() && seconds < samples_.back()) sorted_ = false;
  samples_.push_back(seconds);
  total_ += seconds;
}

double LatencyRecorder::mean() const {
  return samples_.empty() ? 0.0
                          : total_ / static_cast<double>(samples_.size());
}

double LatencyRecorder::Percentile(double p) const {
  GEACC_CHECK(p >= 0.0 && p <= 100.0) << "percentile out of range: " << p;
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    // `samples_` is logically const here; sorting only changes the order
    // observed by future Percentile calls, never the multiset of values.
    auto& samples = const_cast<std::vector<double>&>(samples_);
    std::sort(samples.begin(), samples.end());
    sorted_ = true;
  }
  const auto n = static_cast<double>(samples_.size());
  const auto rank = static_cast<size_t>(std::ceil(p / 100.0 * n));
  return samples_[rank == 0 ? 0 : rank - 1];
}

double ChurnMetrics::ReassignmentsPerMutation() const {
  return mutations == 0 ? 0.0
                        : static_cast<double>(reassignments) /
                              static_cast<double>(mutations);
}

double ChurnMetrics::OracleRatio() const {
  if (oracle_max_sum <= 0.0) return 1.0;
  return final_max_sum / oracle_max_sum;
}

double ChurnMetrics::SpeedupVsFullSolve() const {
  if (mean_full_solve_seconds <= 0.0 || mean_repair_seconds <= 0.0) {
    return 0.0;
  }
  return mean_full_solve_seconds / mean_repair_seconds;
}

std::string ChurnMetrics::DebugString() const {
  return StrFormat(
      "mutations=%lld reassign/mut=%.2f repairs(mean=%.3fms p50=%.3fms "
      "p90=%.3fms p99=%.3fms) full_solve_mean=%.1fms speedup=%.1fx "
      "resolves=%lld budget_exhausted=%lld infeasible=%lld "
      "maxsum=%.3f oracle=%.3f ratio=%.4f",
      (long long)mutations, ReassignmentsPerMutation(),
      mean_repair_seconds * 1e3, p50_repair_seconds * 1e3,
      p90_repair_seconds * 1e3, p99_repair_seconds * 1e3,
      mean_full_solve_seconds * 1e3, SpeedupVsFullSolve(),
      (long long)full_resolves, (long long)budget_exhausted,
      (long long)infeasible_epochs, final_max_sum, oracle_max_sum,
      OracleRatio());
}

}  // namespace geacc
