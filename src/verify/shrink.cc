#include "verify/shrink.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "util/check.h"

namespace geacc::verify {
namespace {

// All conflict pairs of `instance`, each once with a < b.
std::vector<std::pair<EventId, EventId>> ConflictPairs(
    const Instance& instance) {
  std::vector<std::pair<EventId, EventId>> pairs;
  for (EventId a = 0; a < instance.num_events(); ++a) {
    for (const EventId b : instance.conflicts().ConflictsOf(a)) {
      if (a < b) pairs.emplace_back(a, b);
    }
  }
  return pairs;
}

// Rebuilds `src` keeping only the flagged entities; conflicts are remapped
// (pairs with a removed endpoint drop out) and capacity overrides apply
// pre-removal indices. Attribute rows and the similarity function are
// copied verbatim, so every surviving pair's similarity is unchanged.
Instance Rebuild(const Instance& src, const std::vector<bool>& keep_event,
                 const std::vector<bool>& keep_user,
                 const std::vector<std::pair<EventId, EventId>>& conflicts,
                 const std::vector<int>& event_capacities,
                 const std::vector<int>& user_capacities) {
  std::vector<int> event_map(src.num_events(), -1);
  int next_event = 0;
  for (EventId v = 0; v < src.num_events(); ++v) {
    if (keep_event[v]) event_map[v] = next_event++;
  }
  std::vector<int> user_map(src.num_users(), -1);
  int next_user = 0;
  for (UserId u = 0; u < src.num_users(); ++u) {
    if (keep_user[u]) user_map[u] = next_user++;
  }

  AttributeMatrix events(next_event, src.dim());
  std::vector<int> event_caps;
  event_caps.reserve(next_event);
  for (EventId v = 0; v < src.num_events(); ++v) {
    if (event_map[v] < 0) continue;
    std::copy(src.event_attributes().Row(v),
              src.event_attributes().Row(v) + src.dim(),
              events.MutableRow(event_map[v]));
    event_caps.push_back(event_capacities[v]);
  }
  AttributeMatrix users(next_user, src.dim());
  std::vector<int> user_caps;
  user_caps.reserve(next_user);
  for (UserId u = 0; u < src.num_users(); ++u) {
    if (user_map[u] < 0) continue;
    std::copy(src.user_attributes().Row(u),
              src.user_attributes().Row(u) + src.dim(),
              users.MutableRow(user_map[u]));
    user_caps.push_back(user_capacities[u]);
  }

  ConflictGraph graph(next_event);
  for (const auto& [a, b] : conflicts) {
    if (event_map[a] >= 0 && event_map[b] >= 0) {
      graph.AddConflict(event_map[a], event_map[b]);
    }
  }
  return Instance(std::move(events), std::move(event_caps), std::move(users),
                  std::move(user_caps), std::move(graph),
                  src.similarity().Clone());
}

// The mutable reduction state: which entities survive, which conflicts,
// what capacities. Materialize() produces the candidate instance.
struct Candidate {
  const Instance* base;
  std::vector<bool> keep_event;
  std::vector<bool> keep_user;
  std::vector<bool> keep_conflict;  // into `conflicts`
  std::vector<std::pair<EventId, EventId>> conflicts;
  std::vector<int> event_capacities;
  std::vector<int> user_capacities;

  Instance Materialize() const {
    std::vector<std::pair<EventId, EventId>> kept;
    for (size_t i = 0; i < conflicts.size(); ++i) {
      if (keep_conflict[i]) kept.push_back(conflicts[i]);
    }
    return Rebuild(*base, keep_event, keep_user, kept, event_capacities,
                   user_capacities);
  }
};

class Shrinker {
 public:
  Shrinker(const Instance& start,
           const std::function<bool(const Instance&)>& still_fails,
           const ShrinkOptions& options)
      : still_fails_(still_fails), options_(options) {
    state_.base = &start;
    state_.keep_event.assign(start.num_events(), true);
    state_.keep_user.assign(start.num_users(), true);
    state_.conflicts = ConflictPairs(start);
    state_.keep_conflict.assign(state_.conflicts.size(), true);
    state_.event_capacities.resize(start.num_events());
    for (EventId v = 0; v < start.num_events(); ++v) {
      state_.event_capacities[v] = start.event_capacity(v);
    }
    state_.user_capacities.resize(start.num_users());
    for (UserId u = 0; u < start.num_users(); ++u) {
      state_.user_capacities[u] = start.user_capacity(u);
    }
  }

  Instance Run(ShrinkStats* stats) {
    for (int round = 0; round < options_.max_rounds; ++round) {
      if (stats != nullptr) stats->rounds = round + 1;
      bool changed = false;
      changed |= ShrinkSide(&state_.keep_user);
      changed |= ShrinkSide(&state_.keep_event);
      changed |= ShrinkConflicts();
      changed |= ShrinkCapacities(&state_.event_capacities,
                                  state_.keep_event);
      changed |= ShrinkCapacities(&state_.user_capacities, state_.keep_user);
      if (!changed || OutOfBudget()) break;
    }
    if (stats != nullptr) stats->predicate_calls = predicate_calls_;
    return state_.Materialize();
  }

 private:
  bool OutOfBudget() const {
    return options_.max_predicate_calls > 0 &&
           predicate_calls_ >= options_.max_predicate_calls;
  }

  // True when the candidate built from a tentative edit still fails;
  // callers commit the edit iff so.
  bool StillFails() {
    ++predicate_calls_;
    return still_fails_(state_.Materialize());
  }

  // ddmin over one entity side: try dropping chunks of the survivors,
  // halving the chunk size down to 1.
  bool ShrinkSide(std::vector<bool>* keep) {
    bool changed = false;
    int alive = static_cast<int>(std::count(keep->begin(), keep->end(), true));
    for (int chunk = (alive + 1) / 2; chunk >= 1; chunk /= 2) {
      bool removed_at_this_size = true;
      while (removed_at_this_size && !OutOfBudget()) {
        removed_at_this_size = false;
        // Indices of current survivors, recomputed after every removal.
        std::vector<int> survivors;
        for (size_t i = 0; i < keep->size(); ++i) {
          if ((*keep)[i]) survivors.push_back(static_cast<int>(i));
        }
        for (size_t begin = 0; begin < survivors.size() && !OutOfBudget();
             begin += chunk) {
          const size_t end =
              std::min(survivors.size(), begin + static_cast<size_t>(chunk));
          for (size_t i = begin; i < end; ++i) {
            (*keep)[survivors[i]] = false;
          }
          if (StillFails()) {
            changed = true;
            removed_at_this_size = true;
          } else {
            for (size_t i = begin; i < end; ++i) {
              (*keep)[survivors[i]] = true;
            }
          }
        }
      }
    }
    return changed;
  }

  bool ShrinkConflicts() {
    bool changed = false;
    for (size_t i = 0; i < state_.conflicts.size() && !OutOfBudget(); ++i) {
      if (!state_.keep_conflict[i]) continue;
      state_.keep_conflict[i] = false;
      if (StillFails()) {
        changed = true;
      } else {
        state_.keep_conflict[i] = true;
      }
    }
    return changed;
  }

  bool ShrinkCapacities(std::vector<int>* capacities,
                        const std::vector<bool>& keep) {
    bool changed = false;
    for (size_t i = 0; i < capacities->size() && !OutOfBudget(); ++i) {
      if (!keep[i] || (*capacities)[i] <= 1) continue;
      const int saved = (*capacities)[i];
      (*capacities)[i] = 1;
      if (StillFails()) {
        changed = true;
      } else {
        (*capacities)[i] = saved;
      }
    }
    return changed;
  }

  const std::function<bool(const Instance&)>& still_fails_;
  const ShrinkOptions& options_;
  Candidate state_;
  int64_t predicate_calls_ = 0;
};

}  // namespace

Instance ShrinkInstance(const Instance& start,
                        const std::function<bool(const Instance&)>& still_fails,
                        const ShrinkOptions& options, ShrinkStats* stats) {
  GEACC_CHECK(still_fails(start))
      << "ShrinkInstance: the starting instance does not fail the predicate";
  Shrinker shrinker(start, still_fails, options);
  return shrinker.Run(stats);
}

}  // namespace geacc::verify
