// Greedy conflict resolution (step 2 of MinCostFlow-GEACC).
//
// Given the events tentatively assigned to one user, selecting the best
// non-conflicting subset is a maximum-weight independent set on the
// conflict subgraph (NP-hard), so Algorithm 1 lines 9–14 pick greedily:
// scan the user's events in non-increasing similarity and keep each event
// that conflicts with nothing kept so far.
//
// Complexity: O(k log k + k²) for a user with k tentative events (sort
// plus pairwise conflict checks); the exact variant is O(2^k · k) and
// capped by its caller. Thread-safety: free functions with no shared
// state. Counters reported: resolve.greedy_evictions,
// resolve.exact_evictions, resolve.exact_subsets_scanned.

#ifndef GEACC_ALGO_CONFLICT_RESOLUTION_H_
#define GEACC_ALGO_CONFLICT_RESOLUTION_H_

#include <vector>

#include "core/instance.h"
#include "core/types.h"

namespace geacc {

// Returns the greedily selected subset of `candidates` for user `u`,
// non-conflicting under instance.conflicts(). Deterministic: candidates are
// ranked by (similarity desc, id asc).
std::vector<EventId> GreedySelectNonConflicting(
    const Instance& instance, UserId u, std::vector<EventId> candidates);

// Exact maximum-weight independent set over `candidates` (weights =
// similarity to `u`) by subset enumeration — never worse than the greedy
// rule, exponential only in |candidates| ≤ c_u, which the paper's
// configurations keep ≤ 10. Aborts above 25 candidates. Ties are broken
// toward the lexicographically smallest event set. Extension beyond the
// paper (which argues greedy via MWIS NP-hardness); quantified as an
// ablation in bench/micro_solvers and tests.
std::vector<EventId> ExactSelectNonConflicting(
    const Instance& instance, UserId u, std::vector<EventId> candidates);

}  // namespace geacc

#endif  // GEACC_ALGO_CONFLICT_RESOLUTION_H_
