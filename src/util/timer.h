// Wall-clock and CPU timing helpers for benchmarks and solver statistics.

#ifndef GEACC_UTIL_TIMER_H_
#define GEACC_UTIL_TIMER_H_

#include <chrono>
#include <ctime>

namespace geacc {

// Monotonic stopwatch. Starts running on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  // Seconds elapsed since construction or the last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Process-CPU stopwatch (user + system time of the whole process, all
// threads). Pairs with WallTimer in bench reports: wall ≫ cpu means the
// run was blocked, cpu ≫ wall means it went parallel.
class CpuTimer {
 public:
  CpuTimer() : start_(Now()) {}

  void Restart() { start_ = Now(); }

  double Seconds() const { return Now() - start_; }

 private:
  static double Now() {
#if defined(CLOCK_PROCESS_CPUTIME_ID)
    timespec ts{};
    if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0) {
      return static_cast<double>(ts.tv_sec) +
             static_cast<double>(ts.tv_nsec) * 1e-9;
    }
#endif
    return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
  }

  double start_;
};

}  // namespace geacc

#endif  // GEACC_UTIL_TIMER_H_
