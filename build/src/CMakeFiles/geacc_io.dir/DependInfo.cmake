
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/instance_io.cc" "src/CMakeFiles/geacc_io.dir/io/instance_io.cc.o" "gcc" "src/CMakeFiles/geacc_io.dir/io/instance_io.cc.o.d"
  "/root/repo/src/io/tag_import.cc" "src/CMakeFiles/geacc_io.dir/io/tag_import.cc.o" "gcc" "src/CMakeFiles/geacc_io.dir/io/tag_import.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/geacc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geacc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
