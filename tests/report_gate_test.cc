// The perf-gate regression predicate (bench/report_gate.h).
//
// Regression coverage for the noise-floor bug: the gate used
// max(baseline, current) against the floor, so a sub-floor baseline
// (pure scheduler jitter) whose current side happened to clear the floor
// flagged a phantom regression with an arbitrarily large ratio. The
// documented semantics — a point is gated only when BOTH sides are at or
// above the floor — are what these crafted report pairs pin down.

#include "bench/report_gate.h"

#include "gtest/gtest.h"

namespace geacc::bench {
namespace {

GatePolicy Policy(double tolerance = 0.25, double min_seconds = 0.02) {
  GatePolicy policy;
  policy.tolerance = tolerance;
  policy.min_seconds = min_seconds;
  return policy;
}

TEST(ReportGateTest, GrowthBeyondToleranceRegresses) {
  EXPECT_TRUE(Regressed(0.10, 0.20, Policy()));   // +100%
  EXPECT_TRUE(Regressed(1.00, 1.26, Policy()));   // just past +25%
}

TEST(ReportGateTest, GrowthWithinToleranceIsOk) {
  EXPECT_FALSE(Regressed(0.10, 0.12, Policy()));  // +20%
  EXPECT_FALSE(Regressed(1.00, 1.25, Policy()));  // exactly +25%
}

TEST(ReportGateTest, ImprovementIsNeverARegression) {
  EXPECT_FALSE(Regressed(0.50, 0.10, Policy()));
  EXPECT_FALSE(Regressed(0.50, 0.50, Policy()));
}

// The fixed bug: a baseline below the noise floor must not gate, no
// matter how large the apparent blow-up.
TEST(ReportGateTest, SubFloorBaselineNeverRegresses) {
  EXPECT_FALSE(Regressed(0.001, 0.50, Policy()));   // "500x slower"
  EXPECT_FALSE(Regressed(0.019, 10.0, Policy()));   // just under the floor
}

TEST(ReportGateTest, SubFloorCurrentNeverRegresses) {
  EXPECT_FALSE(Regressed(0.001, 0.019, Policy()));
}

TEST(ReportGateTest, BothSidesAtTheFloorAreGated) {
  // min(was, now) == floor is above the noise band, so the tolerance
  // applies: 0.02 -> 0.05 is +150%.
  EXPECT_TRUE(Regressed(0.02, 0.05, Policy()));
  EXPECT_FALSE(Regressed(0.02, 0.024, Policy()));
}

TEST(ReportGateTest, PolicyKnobsAreRespected) {
  EXPECT_FALSE(Regressed(0.10, 0.20, Policy(/*tolerance=*/1.5)));
  EXPECT_TRUE(Regressed(0.10, 0.26, Policy(/*tolerance=*/1.5)));
  // Raising the floor above both sides silences the point entirely.
  EXPECT_FALSE(Regressed(0.10, 0.26, Policy(0.25, /*min_seconds=*/0.5)));
}

}  // namespace
}  // namespace geacc::bench
