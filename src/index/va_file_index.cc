#include "index/va_file_index.h"

#include <algorithm>
#include <queue>

#include "obs/stats.h"
#include "simd/kernels.h"
#include "simd/simd.h"
#include "util/arena.h"
#include "util/check.h"
#include "util/memory.h"

namespace geacc {
namespace {

// Refinement-queue entry: a point with either its cheap lower bound
// (approximate) or its exact distance. Ordered by (distance, exactness,
// id) — at equal key, exact entries come out first so emission is
// deterministic.
struct RefineEntry {
  double distance_sq;
  bool is_exact;
  int id;

  bool operator>(const RefineEntry& other) const {
    if (distance_sq != other.distance_sq) {
      return distance_sq > other.distance_sq;
    }
    if (is_exact != other.is_exact) return !is_exact;  // exact first
    return id > other.id;
  }
};

}  // namespace

class VaFileCursor final : public NnCursor {
 public:
  VaFileCursor(const VaFileIndex& index, const double* query)
      : index_(index), query_(query) {
    // Phase 1: one scan of the signatures seeds the queue with lower
    // bounds (this is the sequential approximation-file scan), batched
    // through the SIMD table scan into this worker's scratch arena.
    const int n = index_.num_points();
    Arena& arena = GetScratchArena();
    ScratchScope scratch(arena);
    double* bounds = arena.Alloc<double>(n);
    index_.BatchedLowerBounds(query_, bounds);
    for (int i = 0; i < n; ++i) {
      queue_.push({bounds[i], false, i});
    }
  }

  // Per-step counts are batched into members and flushed once here —
  // Next() is too hot for a registry touch per call (DESIGN.md §9.1).
  ~VaFileCursor() override {
    GEACC_STATS_ADD("index.vafile.cursor_steps", steps_);
    GEACC_STATS_ADD("index.vafile.refinements", refinements_);
  }

  std::optional<Neighbor> Next() override {
    ++steps_;
    while (!queue_.empty()) {
      const RefineEntry top = queue_.top();
      queue_.pop();
      if (top.is_exact) {
        const double* point = index_.points_.Row(top.id);
        return Neighbor{top.id,
                        index_.similarity_.Compute(point, query_,
                                                   index_.points_.dim())};
      }
      // Phase 2 (lazy): replace the lower bound with the exact distance.
      ++refinements_;
      queue_.push({SquaredEuclideanDistance(index_.points_.Row(top.id),
                                            query_, index_.points_.dim()),
                   true, top.id});
    }
    return std::nullopt;
  }

 private:
  const VaFileIndex& index_;
  const double* query_;
  std::priority_queue<RefineEntry, std::vector<RefineEntry>,
                      std::greater<RefineEntry>>
      queue_;
  int64_t steps_ = 0;
  int64_t refinements_ = 0;
};

VaFileIndex::VaFileIndex(const AttributeMatrix& points,
                         const SimilarityFunction& similarity, int bits)
    : KnnIndex(points.rows()), points_(points), similarity_(similarity),
      bits_(bits) {
  GEACC_CHECK(similarity.IsEuclideanMonotone())
      << "VA-File ordering requires a Euclidean-monotone similarity; got "
      << similarity.Name();
  GEACC_CHECK(bits >= 1 && bits <= 8) << "bits per dim must be in [1,8]";
  cells_ = 1 << bits_;
  const int dim = points.dim();
  box_min_.assign(dim, 0.0);
  cell_width_.assign(dim, 0.0);
  if (points.rows() == 0) return;

  // Bounding box of the data, per dimension.
  std::vector<double> box_max(dim, 0.0);
  for (int j = 0; j < dim; ++j) {
    box_min_[j] = points.At(0, j);
    box_max[j] = points.At(0, j);
  }
  for (int i = 1; i < points.rows(); ++i) {
    const double* row = points.Row(i);
    for (int j = 0; j < dim; ++j) {
      box_min_[j] = std::min(box_min_[j], row[j]);
      box_max[j] = std::max(box_max[j], row[j]);
    }
  }
  for (int j = 0; j < dim; ++j) {
    cell_width_[j] = (box_max[j] - box_min_[j]) / cells_;
  }

  // Signatures: each coordinate's cell id, clamped to the last cell so the
  // maximum lands inside the grid.
  signatures_.resize(static_cast<size_t>(points.rows()) * dim);
  for (int i = 0; i < points.rows(); ++i) {
    const double* row = points.Row(i);
    uint8_t* signature = signatures_.data() + static_cast<size_t>(i) * dim;
    for (int j = 0; j < dim; ++j) {
      int cell = 0;
      if (cell_width_[j] > 0.0) {
        cell = static_cast<int>((row[j] - box_min_[j]) / cell_width_[j]);
        cell = std::clamp(cell, 0, cells_ - 1);
      }
      signature[j] = static_cast<uint8_t>(cell);
    }
  }

  // Blocked mirror for the batched scan; padded lanes stay cell 0 (always
  // a valid table index).
  const int64_t num_blocks = simd::NumBlocks(points.rows());
  sig_blocked_.assign(
      static_cast<size_t>(num_blocks) * dim * simd::kBlockRows, 0);
  for (int i = 0; i < points.rows(); ++i) {
    const uint8_t* signature = signatures_.data() + static_cast<size_t>(i) * dim;
    const int64_t block = i / simd::kBlockRows;
    const int64_t lane = i % simd::kBlockRows;
    uint8_t* dst =
        sig_blocked_.data() +
        (block * static_cast<int64_t>(dim)) * simd::kBlockRows + lane;
    for (int j = 0; j < dim; ++j) {
      dst[static_cast<int64_t>(j) * simd::kBlockRows] = signature[j];
    }
  }
}

double VaFileIndex::CellLowerBoundSq(const double* query, int i) const {
  const int dim = points_.dim();
  const uint8_t* signature = signatures_.data() + static_cast<size_t>(i) * dim;
  double sum = 0.0;
  for (int j = 0; j < dim; ++j) {
    if (cell_width_[j] <= 0.0) continue;  // degenerate dim: bound 0
    const double lo = box_min_[j] + signature[j] * cell_width_[j];
    const double hi = lo + cell_width_[j];
    double diff = 0.0;
    if (query[j] < lo) {
      diff = lo - query[j];
    } else if (query[j] > hi) {
      diff = query[j] - hi;
    }
    sum += diff * diff;
  }
  return sum;
}

// The table entry for (dimension j, cell c) is computed with exactly the
// arithmetic CellLowerBoundSq uses for a point sitting in that cell, and
// the batched kernel accumulates entries in the same ascending-j order
// (degenerate dims contribute +0.0, which cannot change a non-negative
// sum), so the batched bounds are bit-identical to the per-point loop.
void VaFileIndex::BatchedLowerBounds(const double* query, double* out) const {
  const int dim = points_.dim();
  const int64_t n = num_points();
  if (n == 0) return;
  Arena& arena = GetScratchArena();
  ScratchScope scratch(arena);
  double* table = arena.Alloc<double>(static_cast<size_t>(dim) * cells_);
  for (int j = 0; j < dim; ++j) {
    double* row = table + static_cast<size_t>(j) * cells_;
    if (cell_width_[j] <= 0.0) {
      std::fill(row, row + cells_, 0.0);
      continue;
    }
    for (int c = 0; c < cells_; ++c) {
      const double lo = box_min_[j] + c * cell_width_[j];
      const double hi = lo + cell_width_[j];
      double diff = 0.0;
      if (query[j] < lo) {
        diff = lo - query[j];
      } else if (query[j] > hi) {
        diff = query[j] - hi;
      }
      row[c] = diff * diff;
    }
  }
  GEACC_STATS_ADD("index.vafile.batched_bounds", n);
  simd::BatchVaLowerBound(simd::ActiveLevel(), table, cells_,
                          sig_blocked_.data(), dim, n, out);
}

std::vector<Neighbor> VaFileIndex::Query(const double* query, int k) const {
  std::vector<Neighbor> result;
  if (k <= 0 || num_points() == 0) {
    last_refinement_ = 0.0;
    return result;
  }
  // Two-phase VA-file kNN: scan bounds, keep the k best exact distances
  // found so far, skip any point whose lower bound exceeds the current
  // k-th distance. Scanning in ascending-id order keeps ties
  // deterministic; the final sort matches the cursor order.
  struct Exact {
    double distance_sq;
    int id;
  };
  auto worse = [](const Exact& a, const Exact& b) {
    if (a.distance_sq != b.distance_sq) return a.distance_sq < b.distance_sq;
    return a.id < b.id;
  };
  std::vector<Exact> best;  // max-heap by `worse` (worst kept on top)
  int refined = 0;
  Arena& arena = GetScratchArena();
  ScratchScope scratch(arena);
  double* bounds = arena.Alloc<double>(num_points());
  BatchedLowerBounds(query, bounds);
  for (int i = 0; i < num_points(); ++i) {
    const double bound = bounds[i];
    if (static_cast<int>(best.size()) == k &&
        bound > best.front().distance_sq) {
      continue;  // cannot beat the current k-th nearest
    }
    const double exact = SquaredEuclideanDistance(
        points_.Row(i), query, points_.dim());
    ++refined;
    const Exact candidate{exact, i};
    if (static_cast<int>(best.size()) < k) {
      best.push_back(candidate);
      std::push_heap(best.begin(), best.end(), worse);
    } else if (worse(candidate, best.front())) {
      std::pop_heap(best.begin(), best.end(), worse);
      best.back() = candidate;
      std::push_heap(best.begin(), best.end(), worse);
    }
  }
  last_refinement_ = static_cast<double>(refined) / num_points();
  std::sort_heap(best.begin(), best.end(), worse);
  result.reserve(best.size());
  for (const Exact& e : best) {
    result.push_back({e.id, similarity_.Compute(points_.Row(e.id), query,
                                                points_.dim())});
  }
  return result;
}

std::unique_ptr<NnCursor> VaFileIndex::CreateCursor(
    const double* query) const {
  return std::make_unique<VaFileCursor>(*this, query);
}

uint64_t VaFileIndex::ByteEstimate() const {
  return VectorBytes(signatures_) + VectorBytes(sig_blocked_) +
         VectorBytes(box_min_) + VectorBytes(cell_width_);
}

}  // namespace geacc
