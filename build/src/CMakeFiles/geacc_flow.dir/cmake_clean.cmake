file(REMOVE_RECURSE
  "CMakeFiles/geacc_flow.dir/flow/graph.cc.o"
  "CMakeFiles/geacc_flow.dir/flow/graph.cc.o.d"
  "CMakeFiles/geacc_flow.dir/flow/min_cost_flow.cc.o"
  "CMakeFiles/geacc_flow.dir/flow/min_cost_flow.cc.o.d"
  "CMakeFiles/geacc_flow.dir/flow/spfa_min_cost_flow.cc.o"
  "CMakeFiles/geacc_flow.dir/flow/spfa_min_cost_flow.cc.o.d"
  "libgeacc_flow.a"
  "libgeacc_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geacc_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
