// End-to-end integration tests: generators → solvers → validation, at
// small paper-like scales, including the EBSN simulator and schedule-based
// conflict structure.

#include <gtest/gtest.h>

#include <memory>

#include "algo/solvers.h"
#include "core/instance.h"
#include "gen/ebsn.h"
#include "gen/schedule.h"
#include "gen/synthetic.h"

namespace geacc {
namespace {

// A reduced Table III default: same distributions, smaller cardinalities.
SyntheticConfig ReducedDefaults(uint64_t seed) {
  SyntheticConfig config;
  config.num_events = 20;
  config.num_users = 150;
  config.dim = 20;
  config.seed = seed;
  return config;
}

TEST(Integration, SyntheticPipelineAllSolversFeasibleAndOrdered) {
  const Instance instance = GenerateSynthetic(ReducedDefaults(3));
  double greedy = 0.0, mcf = 0.0, random_v = 0.0;
  for (const char* name : {"greedy", "mincostflow", "random-v", "random-u"}) {
    const SolveResult result = CreateSolver(name)->Solve(instance);
    ASSERT_EQ(result.arrangement.Validate(instance), "") << name;
    if (std::string(name) == "greedy") {
      greedy = result.arrangement.MaxSum(instance);
    }
    if (std::string(name) == "mincostflow") {
      mcf = result.arrangement.MaxSum(instance);
    }
    if (std::string(name) == "random-v") {
      random_v = result.arrangement.MaxSum(instance);
    }
  }
  // The paper's headline ordering at default-ish settings: the informed
  // algorithms dominate the random baselines.
  EXPECT_GT(greedy, random_v);
  EXPECT_GT(mcf, random_v);
}

TEST(Integration, EbsnPipeline) {
  EbsnConfig config = EbsnCityPreset("auckland");
  config.seed = 11;
  const Instance instance = GenerateEbsn(config);
  const SolveResult greedy = CreateSolver("greedy")->Solve(instance);
  const SolveResult mcf = CreateSolver("mincostflow")->Solve(instance);
  EXPECT_EQ(greedy.arrangement.Validate(instance), "");
  EXPECT_EQ(mcf.arrangement.Validate(instance), "");
  EXPECT_GT(greedy.arrangement.size(), 0);
  // Real-data pattern (Fig. 4 col 4): greedy ≥ mincostflow on MaxSum.
  EXPECT_GE(greedy.arrangement.MaxSum(instance),
            mcf.arrangement.MaxSum(instance) * 0.95);
}

TEST(Integration, ScheduleDerivedConflictsRespectedEndToEnd) {
  // A Sunday of 8 events in a 20 km city; users pick by taste vectors.
  Rng rng(9);
  const auto schedule = RandomSchedule(8, 16.0, 1.5, 4.0, 20.0, rng);
  ConflictGraph conflicts = ConflictsFromSchedule(schedule, 30.0);

  SyntheticConfig config;
  config.num_events = 8;
  config.num_users = 12;
  config.dim = 4;
  config.max_attribute = 10.0;
  config.event_attribute = DistributionSpec::Uniform(0.0, 10.0);
  config.user_attribute = DistributionSpec::Uniform(0.0, 10.0);
  config.event_capacity = DistributionSpec::Uniform(1.0, 6.0);
  config.user_capacity = DistributionSpec::Uniform(1.0, 2.0);
  config.conflict_density = 0.0;
  config.seed = 10;
  const Instance base = GenerateSynthetic(config);

  // Rebuild the instance with the schedule-derived conflicts.
  AttributeMatrix events = base.event_attributes();
  AttributeMatrix users = base.user_attributes();
  std::vector<int> event_caps(base.num_events());
  std::vector<int> user_caps(base.num_users());
  for (EventId v = 0; v < base.num_events(); ++v) {
    event_caps[v] = base.event_capacity(v);
  }
  for (UserId u = 0; u < base.num_users(); ++u) {
    user_caps[u] = base.user_capacity(u);
  }
  const Instance instance(std::move(events), std::move(event_caps),
                          std::move(users), std::move(user_caps),
                          std::move(conflicts), base.similarity().Clone());

  // The exact search can be slow on adversarial conflict structure; the
  // assertions below are about feasibility, so a truncated run is fine.
  SolverOptions bounded;
  bounded.max_search_invocations = 5'000'000;
  for (const char* name : {"greedy", "mincostflow", "prune"}) {
    const SolveResult result = CreateSolver(name, bounded)->Solve(instance);
    ASSERT_EQ(result.arrangement.Validate(instance), "") << name;
    // Explicitly re-check against the raw schedule: no user attends two
    // events they could not physically combine.
    for (UserId u = 0; u < instance.num_users(); ++u) {
      const auto& attended = result.arrangement.EventsOf(u);
      for (size_t i = 0; i < attended.size(); ++i) {
        for (size_t j = i + 1; j < attended.size(); ++j) {
          ASSERT_FALSE(EventsConflict(schedule[attended[i]],
                                      schedule[attended[j]], 30.0))
              << name << " double-booked user " << u;
        }
      }
    }
  }
}

TEST(Integration, ConflictDensityMonotonicallyReducesGreedyMaxSum) {
  // Fig. 3 col 4 trend: more conflicts → lower MaxSum (weakly).
  double previous = 1e18;
  for (const double density : {0.0, 0.5, 1.0}) {
    SyntheticConfig config = ReducedDefaults(21);
    config.conflict_density = density;
    const Instance instance = GenerateSynthetic(config);
    const double max_sum = CreateSolver("greedy")
                               ->Solve(instance)
                               .arrangement.MaxSum(instance);
    EXPECT_LE(max_sum, previous + 1e-9) << "density " << density;
    previous = max_sum;
  }
}

TEST(Integration, ExactSolverOnPaperScaleEffectivenessSetting) {
  // Fig. 5c setting (reduced reps): |V| = 5, |U| = 15, c_v ~ U[1,10].
  SyntheticConfig config;
  config.num_events = 5;
  config.num_users = 15;
  config.dim = 20;
  config.event_capacity = DistributionSpec::Uniform(1.0, 10.0);
  config.user_capacity = DistributionSpec::Uniform(1.0, 2.0);
  config.conflict_density = 0.25;
  config.seed = 31;
  const Instance instance = GenerateSynthetic(config);
  const double optimum =
      CreateSolver("prune")->Solve(instance).arrangement.MaxSum(instance);
  const double greedy =
      CreateSolver("greedy")->Solve(instance).arrangement.MaxSum(instance);
  const double mcf = CreateSolver("mincostflow")
                         ->Solve(instance)
                         .arrangement.MaxSum(instance);
  EXPECT_LE(greedy, optimum + 1e-9);
  EXPECT_LE(mcf, optimum + 1e-9);
  // Paper: "the MaxSums returned by Greedy-GEACC are quite close to the
  // optimal ones" — assert the qualitative gap, far above the worst case.
  EXPECT_GT(greedy, 0.8 * optimum);
}

}  // namespace
}  // namespace geacc
