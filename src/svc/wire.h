// Binary framing for the arrangement service's TCP protocol
// (DESIGN.md §11).
//
// Every message travels as one length-prefixed frame:
//
//   u32 length (LE) | u8 version | u8 type | body
//
// where `length` counts everything after itself (version byte included)
// and is capped at kMaxFrameBytes so a hostile peer cannot make either
// side allocate unbounded memory. Integers are little-endian two's
// complement; doubles are IEEE-754 bit patterns memcpy'd through a u64.
//
// Mutations ride the wire as their trace_io text line (io/trace_io
// FormatMutationLine / ParseMutationLine) inside a kMutate frame — one
// mutation codec for trace files, the WAL, and the network, so hardening
// the parser hardens all three.
//
// Decoding is strict: unknown version or type, truncated bodies, trailing
// bytes, and out-of-bounds counts all fail with a diagnostic instead of
// guessing. Encode*Frame produce full frames (length prefix included);
// Decode* consume exactly the bytes after the prefix, which is what a
// socket loop that reads the prefix first naturally has in hand.

#ifndef GEACC_SVC_WIRE_H_
#define GEACC_SVC_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "svc/service.h"
#include "svc/snapshot.h"

namespace geacc::svc {

inline constexpr uint8_t kWireVersion = 1;

// Hard cap on `length`: bodies are id lists and one-line mutations, so
// 1 MiB is generous headroom, not a real limit.
inline constexpr uint32_t kMaxFrameBytes = 1 << 20;

enum class MsgType : uint8_t {
  // Requests.
  kPing = 1,
  kGetAssignments = 2,  // body: i32 user
  kGetAttendees = 3,    // body: i32 event
  kTopK = 4,            // body: i32 user, i32 k
  kStats = 5,
  kMutate = 6,  // body: u32 len, trace_io mutation line (no newline)
  // Shard protocol (DESIGN.md §16). kCandidates streams a shard's scoring
  // edges to the coordinator's repair pass; kInstallArrangement pushes the
  // globally admitted slice back; kShardStats asks a coordinator for its
  // per-shard breakdown (a plain shard answers kError).
  kCandidates = 7,           // body: i32 first_user, i32 user_count
  kInstallArrangement = 8,   // body: u64 max_sum_bits, u32 count,
                             //       count × (i32 event, i32 user)
  kShardStats = 9,

  // Responses.
  kPong = 64,
  kIdList = 65,      // body: u32 count, count × i32
  kScoredList = 66,  // body: u32 count, count × (i32 id, f64 similarity)
  kStatsReply = 67,  // body: ServiceStatsView fields, fixed layout
  kMutateAck = 68,   // body: i64 ticket
  kOverloaded = 69,  // queue full — retry later
  kError = 70,       // body: u32 len, diagnostic bytes
  kCandidateList = 71,   // body: u32 count, count × (i32 user, i32 event,
                         //       f64 similarity)
  kShardStatsReply = 72, // body: ShardTopologyStats, fixed layout
};

const char* MsgTypeName(MsgType type);

// Per-shard line of a coordinator's kShardStatsReply: the shard's own
// ServiceStatsView plus the coordinator-observed RPC traffic to it.
struct ShardStatsEntry {
  int32_t shard = 0;
  ServiceStatsView stats;
  int64_t rpc_requests = 0;
  int64_t rpc_errors = 0;
  double rpc_p50_ms = 0.0;
  double rpc_p95_ms = 0.0;
  double rpc_p99_ms = 0.0;
};

// Coordinator-level stats for kShardStatsReply: global repair-pass
// counters plus one ShardStatsEntry per shard.
struct ShardTopologyStats {
  int32_t shard_count = 0;
  int64_t repair_epoch = 0;        // completed repair passes
  double global_max_sum = 0.0;     // Σ sim admitted by the last pass
  int64_t repair_candidates = 0;   // edges scanned, cumulative
  int64_t repair_admitted = 0;
  int64_t repair_rejected_capacity = 0;
  int64_t repair_rejected_conflict = 0;
  // Conflict rejections attributed to an edge whose owner shard (lowest
  // endpoint home) differs from the candidate user's shard.
  int64_t cross_edge_rejects = 0;
  std::vector<ShardStatsEntry> shards;
};

// One decoded request. Only the fields for `type` are meaningful: `id`
// for GetAssignments/GetAttendees/TopK (and first_user for Candidates),
// `k` for TopK (user_count for Candidates), `payload` (the mutation line)
// for Mutate, `pairs`/`max_sum_bits` for InstallArrangement.
struct WireRequest {
  MsgType type = MsgType::kPing;
  int32_t id = -1;
  int32_t k = 0;
  std::string payload;
  std::vector<std::pair<int32_t, int32_t>> pairs;  // (event, user)
  uint64_t max_sum_bits = 0;
};

// One decoded response; per-type fields as in WireRequest. `stats` for
// kStatsReply, `ids` for kIdList, `scored` for kScoredList, `ticket` for
// kMutateAck, `message` for kError, `candidates` for kCandidateList,
// `shard_stats` for kShardStatsReply.
struct WireResponse {
  MsgType type = MsgType::kPong;
  std::vector<int32_t> ids;
  std::vector<ScoredEvent> scored;
  ServiceStatsView stats;
  int64_t ticket = -1;
  std::string message;
  std::vector<ScoredCandidate> candidates;
  ShardTopologyStats shard_stats;
};

// Serialize a full frame, length prefix included, ready for write().
std::string EncodeRequestFrame(const WireRequest& request);
std::string EncodeResponseFrame(const WireResponse& response);

// Parse the bytes *after* the length prefix (version | type | body).
// False with a diagnostic on any malformation; `out` is unspecified then.
bool DecodeRequest(const uint8_t* data, size_t size, WireRequest* out,
                   std::string* error = nullptr);
bool DecodeResponse(const uint8_t* data, size_t size, WireResponse* out,
                    std::string* error = nullptr);

}  // namespace geacc::svc

#endif  // GEACC_SVC_WIRE_H_
