#include "algo/solvers.h"

#include "algo/brute_force_solver.h"
#include "algo/greedy_solver.h"
#include "algo/min_cost_flow_solver.h"
#include "algo/prune_solver.h"
#include "algo/online_greedy_solver.h"
#include "algo/random_solvers.h"
#include "algo/sort_all_greedy_solver.h"
#include "util/check.h"

namespace geacc {

std::unique_ptr<Solver> CreateSolver(const std::string& name,
                                     SolverOptions options) {
  const std::string options_error = ValidateSolverOptions(options);
  GEACC_CHECK(options_error.empty()) << options_error;
  if (name == "greedy") return std::make_unique<GreedySolver>(options);
  if (name == "greedy-sortall") {
    return std::make_unique<SortAllGreedySolver>(options);
  }
  if (name == "online-greedy") {
    return std::make_unique<OnlineGreedySolver>(options);
  }
  if (name == "mincostflow") {
    return std::make_unique<MinCostFlowSolver>(options);
  }
  if (name == "prune") {
    options.enable_pruning = true;
    return std::make_unique<PruneSolver>(options);
  }
  if (name == "exhaustive") {
    options.enable_pruning = false;
    return std::make_unique<PruneSolver>(options);
  }
  if (name == "bruteforce") {
    return std::make_unique<BruteForceSolver>(options);
  }
  if (name == "random-v") return std::make_unique<RandomVSolver>(options);
  if (name == "random-u") return std::make_unique<RandomUSolver>(options);
  return nullptr;
}

std::vector<std::string> SolverNames() {
  return {"greedy",     "greedy-sortall", "online-greedy",
          "mincostflow", "prune",          "exhaustive",
          "bruteforce", "random-v",       "random-u"};
}

}  // namespace geacc
