file(REMOVE_RECURSE
  "CMakeFiles/geacc_exp.dir/exp/experiment.cc.o"
  "CMakeFiles/geacc_exp.dir/exp/experiment.cc.o.d"
  "CMakeFiles/geacc_exp.dir/exp/metrics.cc.o"
  "CMakeFiles/geacc_exp.dir/exp/metrics.cc.o.d"
  "libgeacc_exp.a"
  "libgeacc_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geacc_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
