
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/conference_scheduler.cpp" "examples/CMakeFiles/conference_scheduler.dir/conference_scheduler.cpp.o" "gcc" "examples/CMakeFiles/conference_scheduler.dir/conference_scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/geacc_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geacc_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geacc_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geacc_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geacc_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geacc_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geacc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geacc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
